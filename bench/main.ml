(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6), plus the ablation called out in DESIGN.md.

   Usage:
     dune exec bench/main.exe                 -- all experiments, scaled sizes
     dune exec bench/main.exe -- --full       -- paper-scale sizes (slow)
     dune exec bench/main.exe -- fig6a fig9   -- selected experiments
     dune exec bench/main.exe -- micro        -- bechamel micro-benchmarks

   Absolute times differ from the paper (2002 Xeon + C vs. this container +
   OCaml); the reproduced quantities are scaling shapes and algorithm
   orderings. EXPERIMENTS.md records paper-vs-measured per experiment. *)

open Pf_workload
module B = Pf_bench.Bench_util
module J = Pf_obs.Json

let full = ref false
let seed = ref 7

(* ------------------------------------------------------------------ *)
(* Machine-readable results: every experiment records key/value pairs
   under its own name; the driver writes them all to BENCH_results.json
   so runs can be diffed and plotted without scraping the tables. *)

let current_exp = ref ""
let recorded : (string * (string * J.t) list ref) list ref = ref []

let record key v =
  match List.assoc_opt !current_exp !recorded with
  | Some l -> l := (key, v) :: !l
  | None -> recorded := (!current_exp, ref [ key, v ]) :: !recorded

let recorded_has key =
  match List.assoc_opt !current_exp !recorded with
  | Some l -> List.mem_assoc key !l
  | None -> false

(* Latency-percentile snapshot of one quantile histogram in [reg], as the
   compact JSON object Export.registry_json produces for it. *)
let latency_json reg name =
  match Pf_obs.Export.registry_json reg with
  | J.Obj fields -> (
    match List.assoc_opt name fields with Some v -> v | None -> J.Null)
  | _ -> J.Null

let json_of_series (s : B.series) =
  J.Obj
    [
      "label", J.String s.B.label;
      ( "points",
        J.List (List.map (fun (x, y) -> J.List [ J.Float x; J.Float y ]) s.B.points) );
    ]

let record_series key series = record key (J.List (List.map json_of_series series))

let write_results path =
  let experiments =
    List.rev_map (fun (name, fields) -> name, J.Obj (List.rev !fields)) !recorded
  in
  let doc =
    J.Obj
      [
        "schema", J.String "predfilter-bench/1";
        "scale", J.String (if !full then "paper" else "scaled");
        "seed", J.Int !seed;
        "experiments", J.Obj experiments;
      ]
  in
  let oc = open_out path in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nresults written to %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Workload construction *)

let queries dtd ?(distinct = true) ?(w = 0.2) ?(dop = 0.2) ?(filters = 0) count =
  Xpath_gen.generate dtd
    {
      Presets.paper_queries with
      Xpath_gen.count;
      distinct;
      wildcard_prob = w;
      descendant_prob = dop;
      filters_per_path = filters;
      seed = !seed;
    }

let documents dtd_name n =
  let dtd = match Dtd.by_name dtd_name with Some d -> d | None -> assert false in
  Xml_gen.generate_many dtd
    { (Presets.documents_for dtd_name) with Xml_gen.seed = !seed + 1000 }
    n

let dtd_of = function
  | "nitf" -> Dtd.nitf_like ()
  | "psd" -> Dtd.psd_like ()
  | _ -> assert false

let build (algo : B.algorithm) qs =
  List.iter algo.B.add qs;
  algo.B.finish_build ()

let match_percentage (algo : B.algorithm) docs nexprs =
  let total = List.fold_left (fun acc d -> acc + algo.B.match_doc d) 0 docs in
  100. *. float total /. float (nexprs * List.length docs)

(* ------------------------------------------------------------------ *)
(* Table 1: the predicate matching example *)

let table1 () =
  Printf.printf "\n== Table 1: predicate matching results ==\n";
  Printf.printf "   XML path: (a,b,c,a,b,c); XPEs: a//b/c and c//b//a\n\n";
  let idx = Pf_core.Predicate_index.create () in
  let exprs = [ "a//b/c"; "c//b//a" ] in
  let encoded =
    List.map
      (fun src ->
        ( src,
          Array.map
            (fun p -> p, Pf_core.Predicate_index.intern idx p)
            (Pf_core.Encoder.encode_string src).Pf_core.Encoder.preds ))
      exprs
  in
  let res = Pf_core.Predicate_index.create_results () in
  Pf_core.Predicate_index.run idx res
    (Pf_core.Publication.of_tags [ "a"; "b"; "c"; "a"; "b"; "c" ]);
  List.iter
    (fun (src, preds) ->
      Array.iteri
        (fun i (pred, pid) ->
          let pairs =
            List.sort compare (Pf_core.Predicate_index.get res pid)
            |> List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b)
            |> String.concat ", "
          in
          Format.printf "  %-9s %-22s %s@."
            (if i = 0 then src else "")
            (Format.asprintf "%a" Pf_core.Predicate.pp pred)
            pairs)
        preds;
      (* occurrence determination verdict, as in Example 2 *)
      let rs = Array.map (fun (_, pid) -> Pf_core.Predicate_index.get res pid) preds in
      Printf.printf "  %-9s => %s\n" ""
        (if Pf_core.Occurrence.matches rs then "match" else "noMatch"))
    encoded

(* ------------------------------------------------------------------ *)
(* Figure 6: varying the number of distinct XPEs *)

let sweep_algorithms ~algos ~counts ~make_queries ~docs ~title ~x_label =
  (* generate each workload size once and share it across algorithms *)
  let columns =
    List.map
      (fun count ->
        let qs = make_queries count in
        ( float count,
          List.map
            (fun make_algo ->
              let algo = make_algo () in
              build algo qs;
              let ms = B.filter_time_ms algo docs in
              algo.B.name, (ms, latency_json algo.B.metrics "doc_latency_ns"))
            algos ))
      counts
  in
  let labels = List.map (fun make_algo -> (make_algo ()).B.name) algos in
  let series =
    List.map
      (fun label ->
        {
          B.label;
          points = List.map (fun (x, cells) -> x, fst (List.assoc label cells)) columns;
        })
      labels
  in
  (* per-engine latency percentiles at each sweep point, for the compare
     gate (the series points above are means) *)
  record "latency_ns_by_engine"
    (J.List
       (List.map
          (fun (x, cells) ->
            J.Obj
              [
                "count", J.Float x;
                "engines", J.Obj (List.map (fun (name, (_, lat)) -> name, lat) cells);
              ])
          columns));
  B.print_table ~title ~x_label ~y_label:"ms per document" series;
  series

let paper_algos =
  [
    (fun () -> B.predicate_engine ~variant:Pf_core.Expr_index.Basic ());
    (fun () -> B.predicate_engine ~variant:Pf_core.Expr_index.Prefix_covering ());
    (fun () -> B.predicate_engine ~variant:Pf_core.Expr_index.Access_predicate ());
    (fun () -> B.yfilter ());
    (fun () -> B.index_filter ());
  ]

let fig6 name dtd_name counts ndocs =
  let dtd = dtd_of dtd_name in
  let docs = documents dtd_name ndocs in
  (* report the workload's match percentage (the regime driver) *)
  let probe_count = List.nth counts (List.length counts - 1) in
  let probe = B.predicate_engine () in
  let probe_qs = queries dtd probe_count in
  build probe probe_qs;
  let pct = match_percentage probe docs (List.length probe_qs) in
  record "dtd" (J.String dtd_name);
  record "documents" (J.Int ndocs);
  record "match_percentage" (J.Float pct);
  record "probe_engine_counters" (Pf_obs.Export.registry_json probe.B.metrics);
  B.print_kv
    ~title:(Printf.sprintf "%s setup (%s)" name dtd_name)
    [
      "documents", string_of_int ndocs;
      "avg tags/document",
      string_of_int
        (List.fold_left (fun a d -> a + Pf_xml.Tree.count_elements d) 0 docs / ndocs);
      "L, W, DO, D", "6, 0.2, 0.2, distinct";
      "match percentage", Printf.sprintf "%.1f%%" pct;
    ];
  record_series "series"
    (sweep_algorithms ~algos:paper_algos ~counts
       ~make_queries:(fun c -> queries dtd c)
       ~docs
       ~title:
         (Printf.sprintf "%s: distinct XPEs, %s DTD (paper Figure 6%s)" name
            (String.uppercase_ascii dtd_name)
            (if dtd_name = "nitf" then "a" else "b"))
       ~x_label:"#XPEs")

let fig6a () =
  let counts = if !full then [ 25_000; 50_000; 75_000; 100_000; 125_000 ] else [ 5_000; 15_000; 30_000; 50_000 ] in
  fig6 "fig6a" "nitf" counts (if !full then 500 else 60)

let fig6b () =
  let counts = if !full then [ 1_000; 2_500; 5_000; 7_500; 10_000 ] else [ 1_000; 2_500; 5_000; 10_000 ] in
  fig6 "fig6b" "psd" counts (if !full then 500 else 60)

(* ------------------------------------------------------------------ *)
(* Figure 7: duplicate expression workloads *)

let fig7 () =
  let counts =
    if !full then [ 500_000; 1_000_000; 2_000_000; 3_500_000; 5_000_000 ]
    else [ 50_000; 100_000; 200_000 ]
  in
  let dtd = dtd_of "psd" in
  let ndocs = if !full then 500 else 20 in
  let docs = documents "psd" ndocs in
  let qs_of c = queries dtd ~distinct:false c in
  let largest = qs_of (List.nth counts (List.length counts - 1)) in
  B.print_kv ~title:"fig7 setup (PSD, duplicates)"
    [
      "documents", string_of_int ndocs;
      "D", "false (duplicates kept)";
      "distinct at largest size",
      string_of_int (Xpath_gen.distinct_count largest);
    ];
  record "documents" (J.Int ndocs);
  record "distinct_at_largest" (J.Int (Xpath_gen.distinct_count largest));
  record_series "series"
    (sweep_algorithms ~algos:paper_algos ~counts ~make_queries:qs_of ~docs
       ~title:"fig7: duplicate XPEs, PSD DTD (paper Figure 7)"
       ~x_label:"#XPEs")

(* ------------------------------------------------------------------ *)
(* Figure 8: wildcard and descendant probability sweeps *)

let fig8_sweep ~vary () =
  let count = if !full then 2_000_000 else 100_000 in
  let probs = [ 0.0; 0.2; 0.4; 0.6; 0.8; 0.9 ] in
  let dtd = dtd_of "nitf" in
  let ndocs = if !full then 500 else 20 in
  let docs = documents "nitf" ndocs in
  (* the paper omits Index-Filter from the wildcard sweep (its index
     streams degenerate under wildcards); we keep it for the DO sweep *)
  let algos =
    [
      (fun () -> B.predicate_engine ~variant:Pf_core.Expr_index.Access_predicate ());
      (fun () -> B.yfilter ());
    ]
    @ (if vary = `Descendant then [ (fun () -> B.index_filter ()) ] else [])
  in
  let make_queries p =
    match vary with
    | `Wildcard -> queries dtd ~distinct:false ~w:p count
    | `Descendant -> queries dtd ~distinct:false ~dop:p count
  in
  let name, what =
    match vary with
    | `Wildcard -> "fig8", "wildcard probability W"
    | `Descendant -> "fig8-do", "descendant probability DO"
  in
  (* also report distinct predicate counts across the sweep: the paper
     explains the curve by the rise-then-fall of distinct predicates *)
  let distinct_preds =
    List.map
      (fun p ->
        let e = Pf_core.Engine.create () in
        List.iter (fun q -> ignore (Pf_core.Engine.add e q)) (make_queries p);
        p, Pf_core.Engine.distinct_predicate_count e)
      probs
  in
  B.print_kv
    ~title:(Printf.sprintf "%s: distinct predicates vs %s" name what)
    (List.map (fun (p, n) -> Printf.sprintf "%.1f" p, string_of_int n) distinct_preds);
  record "distinct_predicates"
    (J.List (List.map (fun (p, n) -> J.List [ J.Float p; J.Int n ]) distinct_preds));
  let lat_cells = ref [] in
  let series =
    List.map
      (fun make_algo ->
        let label = (make_algo ()).B.name in
        let points =
          List.map
            (fun p ->
              let algo = make_algo () in
              build algo (make_queries p);
              let ms = B.filter_time_ms algo docs in
              lat_cells :=
                J.Obj
                  [
                    "engine", J.String label;
                    "prob", J.Float p;
                    "latency_ns", latency_json algo.B.metrics "doc_latency_ns";
                  ]
                :: !lat_cells;
              p, ms)
            probs
        in
        { B.label; points })
      algos
  in
  record "latency_ns_by_engine" (J.List (List.rev !lat_cells));
  B.print_table
    ~title:(Printf.sprintf "%s: varying %s, NITF, %d XPEs (paper Figure 8)" name what count)
    ~x_label:what ~y_label:"ms per document" series;
  record_series "series" series

let fig8 () = fig8_sweep ~vary:`Wildcard ()
let fig8_do () = fig8_sweep ~vary:`Descendant ()

(* ------------------------------------------------------------------ *)
(* Figure 9: attribute-based filters, inline vs selection postponed *)

let fig9_one dtd_name () =
  let dtd = dtd_of dtd_name in
  let counts = if !full then [ 25_000; 50_000; 100_000 ] else [ 10_000; 25_000 ] in
  let ndocs = if !full then 200 else 20 in
  let docs = documents dtd_name ndocs in
  let algos =
    [
      ( "inline-1",
        fun () -> B.predicate_engine ~attr_mode:Pf_core.Engine.Inline () );
      ( "inline-2",
        fun () -> B.predicate_engine ~attr_mode:Pf_core.Engine.Inline () );
      ( "sp-1",
        fun () -> B.predicate_engine ~attr_mode:Pf_core.Engine.Postponed () );
      ( "sp-2",
        fun () -> B.predicate_engine ~attr_mode:Pf_core.Engine.Postponed () );
      ("yfilter-sp-1", fun () -> B.yfilter ());
      ("yfilter-sp-2", fun () -> B.yfilter ());
    ]
  in
  let filters_of label = if String.length label > 0 && label.[String.length label - 1] = '2' then 2 else 1 in
  let lat_cells = ref [] in
  let series =
    List.map
      (fun (label, make_algo) ->
        let points =
          List.map
            (fun count ->
              let qs = queries dtd ~filters:(filters_of label) count in
              let algo = make_algo () in
              build algo qs;
              let ms = B.filter_time_ms algo docs in
              lat_cells :=
                J.Obj
                  [
                    "engine", J.String label;
                    "count", J.Int count;
                    "latency_ns", latency_json algo.B.metrics "doc_latency_ns";
                  ]
                :: !lat_cells;
              float count, ms)
            counts
        in
        { B.label; points })
      algos
  in
  record
    (Printf.sprintf "latency_ns_by_engine_%s" dtd_name)
    (J.List (List.rev !lat_cells));
  B.print_table
    ~title:
      (Printf.sprintf
         "fig9 (%s): attribute filters per path, inline vs selection postponed (paper Figure 9)"
         (String.uppercase_ascii dtd_name))
    ~x_label:"#XPEs" ~y_label:"ms per document" series;
  record_series (Printf.sprintf "series_%s" dtd_name) series

let fig9 () =
  fig9_one "nitf" ();
  fig9_one "psd" ()

(* ------------------------------------------------------------------ *)
(* Figure 10: matching cost breakdown *)

let fig10 () =
  let counts =
    if !full then [ 1_000_000; 2_000_000; 3_000_000; 4_000_000; 5_000_000 ]
    else [ 100_000; 250_000; 500_000 ]
  in
  let dtd = dtd_of "nitf" in
  let ndocs = if !full then 200 else 15 in
  let docs = documents "nitf" ndocs in
  (* parse time, reported separately as in the paper *)
  let sources = List.map Pf_xml.Print.to_string docs in
  let (), parse_ms =
    B.time_ms (fun () -> List.iter (fun s -> ignore (Pf_xml.Sax.parse_document s)) sources)
  in
  Printf.printf "\n-- fig10: average parse time: %.0f microseconds/document --\n"
    (1000. *. parse_ms /. float ndocs);
  record "parse_us_per_doc" (J.Float (1000. *. parse_ms /. float ndocs));
  let lat_cells = ref [] in
  let rows =
    List.map
      (fun count ->
        let e =
          Pf_core.Engine.create ~variant:Pf_core.Expr_index.Access_predicate
            ~collect_stats:true ()
        in
        List.iter
          (fun q -> ignore (Pf_core.Engine.add e q))
          (queries dtd ~distinct:false count);
        List.iter (fun d -> ignore (Pf_core.Engine.match_document e d)) docs;
        lat_cells :=
          J.Obj
            [
              "xpes", J.Int count;
              "latency_ns", latency_json (Pf_core.Engine.metrics e) "doc_latency_ns";
            ]
          :: !lat_cells;
        let st = Pf_core.Engine.stats e in
        let per_doc ns = ns /. 1e6 /. float ndocs in
        ( count,
          per_doc st.Pf_core.Engine.predicate_ns,
          per_doc st.Pf_core.Engine.expr_ns,
          per_doc st.Pf_core.Engine.collect_ns,
          Pf_core.Engine.distinct_predicate_count e ))
      counts
  in
  record "latency_ns_by_count" (J.List (List.rev !lat_cells));
  B.print_table
    ~title:"fig10: cost breakdown, NITF duplicates (paper Figure 10)"
    ~x_label:"#XPEs" ~y_label:"ms per document"
    [
      { B.label = "predicate-matching";
        points = List.map (fun (c, p, _, _, _) -> float c, p) rows };
      { B.label = "expr-matching";
        points = List.map (fun (c, _, x, _, _) -> float c, x) rows };
      { B.label = "collect/other";
        points = List.map (fun (c, _, _, o, _) -> float c, o) rows };
    ];
  B.print_kv ~title:"fig10: distinct predicates stored"
    (List.map
       (fun (c, _, _, _, n) -> Printf.sprintf "%d XPEs" c, string_of_int n)
       rows);
  record "rows"
    (J.List
       (List.map
          (fun (c, p, x, o, n) ->
            J.Obj
              [
                "xpes", J.Int c;
                "predicate_ms_per_doc", J.Float p;
                "expr_ms_per_doc", J.Float x;
                "collect_ms_per_doc", J.Float o;
                "distinct_predicates", J.Int n;
              ])
          rows))

(* ------------------------------------------------------------------ *)
(* Ablation: occurrence-run sharing (our extension) *)

let ablation () =
  let count = if !full then 500_000 else 50_000 in
  List.iter
    (fun dtd_name ->
      let dtd = dtd_of dtd_name in
      let docs = documents dtd_name (if !full then 200 else 20) in
      let qs = queries dtd count in
      let run name variant dedup_paths =
        let e = Pf_core.Engine.create ~variant ~dedup_paths () in
        List.iter (fun q -> ignore (Pf_core.Engine.add e q)) qs;
        let (), ms =
          B.time_ms (fun () ->
              List.iter (fun d -> ignore (Pf_core.Engine.match_document e d)) docs)
        in
        ( name,
          ms /. float (List.length docs),
          Pf_core.Engine.occurrence_runs e,
          Pf_obs.Export.registry_json (Pf_core.Engine.metrics e) )
      in
      let rows =
        List.map
          (fun variant ->
            run (Pf_core.Expr_index.variant_name variant) variant false)
          Pf_core.Expr_index.[ Basic; Prefix_covering; Access_predicate; Shared ]
        @ [
            run "basic-pc-ap+dedup" Pf_core.Expr_index.Access_predicate true;
            run "shared+dedup" Pf_core.Expr_index.Shared true;
          ]
      in
      Printf.printf "\n== ablation (%s, %d XPEs): occurrence determination runs ==\n"
        (String.uppercase_ascii dtd_name) (List.length qs);
      Printf.printf "%16s %14s %16s\n" "variant" "ms/doc" "occurrence runs";
      List.iter
        (fun (name, ms, runs, _) -> Printf.printf "%16s %14.3f %16d\n" name ms runs)
        rows;
      record (Printf.sprintf "rows_%s" dtd_name)
        (J.List
           (List.map
              (fun (name, ms, runs, counters) ->
                J.Obj
                  [
                    "variant", J.String name;
                    "ms_per_doc", J.Float ms;
                    "occurrence_runs", J.Int runs;
                    "counters", counters;
                  ])
              rows)))
    [ "nitf"; "psd" ]

(* ------------------------------------------------------------------ *)
(* Insertion throughput (extension): the paper notes "XPath insertion time
   is an interesting metric, but not considered here" and argues its
   insertions are constant-time per predicate; this experiment measures
   registration throughput across all engines, plus removal for ours. *)

let insertion () =
  let count = if !full then 500_000 else 100_000 in
  let dtd = dtd_of "nitf" in
  let qs = queries dtd count in
  let n = List.length qs in
  Printf.printf "\n== insertion: registering %d distinct NITF expressions ==\n" n;
  Printf.printf "%16s %12s %16s\n" "engine" "total (ms)" "per expr (us)";
  List.iter
    (fun make_algo ->
      let algo : B.algorithm = make_algo () in
      let (), ms = B.time_ms (fun () -> build algo qs) in
      Printf.printf "%16s %12.1f %16.2f\n" algo.B.name ms (1000. *. ms /. float n);
      record algo.B.name
        (J.Obj [ "total_ms", J.Float ms; "us_per_expr", J.Float (1000. *. ms /. float n) ]))
    paper_algos;
  (* removal: constant-time per expression (trie sid-list update) *)
  let e = Pf_core.Engine.create () in
  let sids = List.map (Pf_core.Engine.add e) qs in
  let (), ms =
    B.time_ms (fun () -> List.iter (fun sid -> ignore (Pf_core.Engine.remove e sid)) sids)
  in
  Printf.printf "%16s %12.1f %16.2f   (Engine.remove)\n" "removal" ms
    (1000. *. ms /. float n);
  record "removal"
    (J.Obj [ "total_ms", J.Float ms; "us_per_expr", J.Float (1000. *. ms /. float n) ])

(* ------------------------------------------------------------------ *)
(* Service throughput (extension): the dissemination scenario scaled out
   over domains. One engine, one subscription set, the same document
   stream — filtered sequentially and then through Pf_service in both
   parallelism modes (document-replicated and expression-sharded) at 1, 2
   and 4 worker domains. Documents/second per configuration, with a
   match-set identity check against the sequential run (the speedup must
   not come from answering differently). Speedups depend on available
   cores: with [hardware_cores] = 1 every configuration collapses to
   sequential throughput minus coordination overhead, and the recorded
   ["bound"] names the stage that caps scaling. *)

let service () =
  let count = if !full then 100_000 else 20_000 in
  let ndocs = if !full then 400 else 120 in
  let dtd = dtd_of "nitf" in
  let qs = queries dtd count in
  let docs = documents "nitf" ndocs in
  let eng = Pf_core.Engine.create () in
  List.iter (fun q -> ignore (Pf_core.Engine.add eng q)) qs;
  let expected = List.map (Pf_core.Engine.match_document eng) docs in
  let (), seq_ms =
    B.time_ms (fun () ->
        List.iter (fun d -> ignore (Pf_core.Engine.match_document eng d)) docs)
  in
  let throughput ms = float ndocs /. (ms /. 1000.) in
  let cores = Domain.recommended_domain_count () in
  record "xpes" (J.Int (List.length qs));
  record "documents" (J.Int ndocs);
  record "hardware_cores" (J.Int cores);
  record "shard_mode" (J.String "doc+expr");
  record "sequential"
    (J.Obj
       [
         "ms", J.Float seq_ms;
         "docs_per_s", J.Float (throughput seq_ms);
         "latency_ns", latency_json (Pf_core.Engine.metrics eng) "doc_latency_ns";
       ]);
  let rows =
    List.concat_map
      (fun mode ->
        List.map
          (fun domains ->
            let svc =
              Pf_service.create ~mode ~domains ~batch:8
                (Pf_core.Engine.filter () :> Pf_intf.filter)
            in
            List.iter (fun q -> ignore (Pf_service.subscribe svc q)) qs;
            (* first pass doubles as warm-up and as the identity check *)
            let identical = Pf_service.filter_batch svc docs = expected in
            (* reset so the recorded submit-to-delivery percentiles cover
               the timed pass only, not the warm-up; drain first — it
               returns only once every worker has flushed its latency
               batch, so no warm-up stragglers land after the reset *)
            Pf_service.drain svc;
            Pf_obs.Registry.reset (Pf_service.metrics svc);
            let (), ms =
              B.time_ms (fun () -> ignore (Pf_service.filter_batch svc docs))
            in
            Pf_service.shutdown svc;
            (* read after shutdown: workers flush their latency batches
               before exiting, so the histogram covers every document *)
            let lat = latency_json (Pf_service.metrics svc) "latency_ns" in
            mode, domains, ms, identical, lat)
          [ 1; 2; 4 ])
      [ Pf_service.Doc; Pf_service.Expr ]
  in
  Printf.printf "\n== service: %d XPEs, %d documents, NITF (sequential: %.0f docs/s) ==\n"
    (List.length qs) ndocs (throughput seq_ms);
  Printf.printf "%8s %8s %12s %14s %12s %12s\n" "mode" "domains" "ms" "docs/s" "vs seq"
    "identical";
  List.iter
    (fun (mode, domains, ms, identical, _) ->
      Printf.printf "%8s %8d %12.1f %14.0f %11.2fx %12b\n" (Pf_service.mode_name mode)
        domains ms (throughput ms) (seq_ms /. ms) identical)
    rows;
  (* the recommendation comes from the rows just measured, not from the
     core count: the best configuration that actually beat sequential, or
     "stay sequential" (1) when none did *)
  let best_mode, best_domains, best_ms, _, _ =
    List.fold_left
      (fun (bm, bd, bms, bi, bl) (m, d, ms, i, l) ->
        if ms < bms then m, d, ms, i, l else bm, bd, bms, bi, bl)
      (List.hd rows) (List.tl rows)
  in
  let recommended = if best_ms < seq_ms then best_domains else 1 in
  record "recommended_domains" (J.Int recommended);
  record "recommended_mode"
    (J.String (if best_ms < seq_ms then Pf_service.mode_name best_mode else "sequential"));
  let bound =
    if cores <= 1 then
      Printf.sprintf
        "matching is CPU-bound and the host exposes %d hardware core(s): all domains \
         time-share one core, so parallel speedup is structurally capped at 1.0x and \
         every configuration pays queue+merge coordination on top of sequential work; \
         re-run on a multi-core host for scaling"
        cores
    else if best_ms >= seq_ms then
      "coordination (queue lock + per-document delivery) outweighs per-domain matching \
       work at this workload size"
    else
      Printf.sprintf "best measured: %s mode at %d domains, %.2fx vs sequential"
        (Pf_service.mode_name best_mode) best_domains (seq_ms /. best_ms)
  in
  Printf.printf "   bound: %s\n" bound;
  Printf.printf "   recommended: %s\n"
    (if recommended = 1 && best_ms >= seq_ms then "sequential (1 domain)"
     else Printf.sprintf "%s mode, %d domains" (Pf_service.mode_name best_mode) recommended);
  record "bound" (J.String bound);
  record "rows"
    (J.List
       (List.map
          (fun (mode, domains, ms, identical, lat) ->
            J.Obj
              [
                "mode", J.String (Pf_service.mode_name mode);
                "domains", J.Int domains;
                "ms", J.Float ms;
                "docs_per_s", J.Float (throughput ms);
                "speedup_vs_sequential", J.Float (seq_ms /. ms);
                "identical_matches", J.Bool identical;
                "latency_ns", lat;
              ])
          rows));
  if List.exists (fun (_, _, _, identical, _) -> not identical) rows then begin
    Printf.printf "service: MATCH-SET MISMATCH against sequential engine\n";
    exit 1
  end;
  (* subscription-heavy sweep: the regime the batched match path and
     expr-mode sharding target — the Presets.heavy_subscriptions table
     (duplicates allowed) against the skewed NITF stream, where the
     per-replica working set is what limits throughput. Recorded under
     "heavy"; on multi-core hosts CI asserts expr mode keeps up with doc
     mode at the top domain count here. *)
  let hqs =
    Xpath_gen.generate dtd { Presets.heavy_subscriptions with Xpath_gen.seed = !seed }
  in
  let hndocs = if !full then 120 else 40 in
  let hdocs = documents "nitf" hndocs in
  let heng = Pf_core.Engine.create () in
  List.iter (fun q -> ignore (Pf_core.Engine.add heng q)) hqs;
  let hexpected = List.map (Pf_core.Engine.match_document heng) hdocs in
  let (), hseq_ms =
    B.time_ms (fun () ->
        List.iter (fun d -> ignore (Pf_core.Engine.match_document heng d)) hdocs)
  in
  let hthroughput ms = float hndocs /. (ms /. 1000.) in
  let hrows =
    List.concat_map
      (fun mode ->
        List.map
          (fun domains ->
            let svc =
              Pf_service.create ~mode ~domains ~batch:8
                (Pf_core.Engine.filter () :> Pf_intf.filter)
            in
            List.iter (fun q -> ignore (Pf_service.subscribe svc q)) hqs;
            let identical = Pf_service.filter_batch svc hdocs = hexpected in
            Pf_service.drain svc;
            Pf_obs.Registry.reset (Pf_service.metrics svc);
            let (), ms =
              B.time_ms (fun () -> ignore (Pf_service.filter_batch svc hdocs))
            in
            Pf_service.shutdown svc;
            (* how many documents the workers matched through grouped
               match_batch calls during the timed pass — shows the
               batching actually engaged *)
            let batched = latency_json (Pf_service.metrics svc) "batched_documents" in
            mode, domains, ms, identical, batched)
          [ 1; 2; 4 ])
      [ Pf_service.Doc; Pf_service.Expr ]
  in
  Printf.printf
    "\n== service (heavy): %d XPEs, %d documents, NITF (sequential: %.0f docs/s) ==\n"
    (List.length hqs) hndocs (hthroughput hseq_ms);
  Printf.printf "%8s %8s %12s %14s %12s %12s\n" "mode" "domains" "ms" "docs/s" "vs seq"
    "identical";
  List.iter
    (fun (mode, domains, ms, identical, _) ->
      Printf.printf "%8s %8d %12.1f %14.0f %11.2fx %12b\n" (Pf_service.mode_name mode)
        domains ms (hthroughput ms) (hseq_ms /. ms) identical)
    hrows;
  let ms_of want_mode want_domains =
    List.find_map
      (fun (m, d, ms, _, _) -> if m = want_mode && d = want_domains then Some ms else None)
      hrows
  in
  let expr_vs_doc =
    match ms_of Pf_service.Expr 4, ms_of Pf_service.Doc 4 with
    | Some e, Some d -> d /. e
    | _ -> 0.
  in
  let hbound =
    if cores <= 1 then
      Printf.sprintf
        "single hardware core (%d): all domains time-share, shard-mode comparison is \
         meaningless here; re-run on a multi-core host"
        cores
    else
      Printf.sprintf "expr/doc throughput ratio at 4 domains: %.2fx" expr_vs_doc
  in
  Printf.printf "   bound: %s\n" hbound;
  record "heavy"
    (J.Obj
       [
         "xpes", J.Int (List.length hqs);
         "documents", J.Int hndocs;
         "sequential_ms", J.Float hseq_ms;
         "expr_vs_doc_at_4_domains", J.Float expr_vs_doc;
         "bound", J.String hbound;
         ( "rows",
           J.List
             (List.map
                (fun (mode, domains, ms, identical, batched) ->
                  J.Obj
                    [
                      "mode", J.String (Pf_service.mode_name mode);
                      "domains", J.Int domains;
                      "ms", J.Float ms;
                      "docs_per_s", J.Float (hthroughput ms);
                      "speedup_vs_sequential", J.Float (hseq_ms /. ms);
                      "identical_matches", J.Bool identical;
                      "batched_documents", batched;
                    ])
                hrows) );
       ]);
  if List.exists (fun (_, _, _, identical, _) -> not identical) hrows then begin
    Printf.printf "service (heavy): MATCH-SET MISMATCH against sequential engine\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Occurrence-determination allocation (extension): the packed arena must
   make the occurrence stage allocation-free in steady state. Three
   passes over the same publications — predicate matching alone, plus
   packed-arena occurrence determination, plus list-based occurrence
   determination — measured in minor-heap words per document. The
   difference (packed - run_only) is the occurrence stage's own
   allocation, which should be ~0; the list variant shows what the arena
   replaced. *)

let occurrence_alloc () =
  let dtd = dtd_of "nitf" in
  let idx = Pf_core.Predicate_index.create () in
  let exprs =
    List.filter_map
      (fun q ->
        match Pf_core.Encoder.encode q with
        | enc ->
          Some (Array.map (fun p -> Pf_core.Predicate_index.intern idx p) enc.Pf_core.Encoder.preds)
        | exception _ -> None)
      (queries dtd (if !full then 5_000 else 2_000))
  in
  let pubs =
    List.concat_map
      (fun d -> List.map Pf_core.Publication.of_path (Pf_xml.Path.of_document d))
      (documents "nitf" (if !full then 50 else 20))
  in
  let npubs = List.length pubs in
  let res = Pf_core.Predicate_index.create_results () in
  let arena = Pf_core.Occurrence.create_arena () in
  (* closure-free row filling, as in the engines: partial applications in
     this loop would dominate exactly the allocation being measured *)
  let fill_row i pid =
    Pf_core.Occurrence.start_row arena i;
    Pf_core.Occurrence.push_chain arena
      (Pf_core.Predicate_index.cells res)
      (Pf_core.Predicate_index.head res pid);
    Pf_core.Occurrence.row_len arena i > 0
  in
  let rec fill_rows pids n i = i >= n || (fill_row i pids.(i) && fill_rows pids n (i + 1)) in
  let match_one pids =
    Pf_core.Occurrence.clear arena;
    if fill_rows pids (Array.length pids) 0 then
      ignore (Pf_core.Occurrence.matches_packed arena : bool)
  in
  let pass_run_only () =
    List.iter (fun pub -> Pf_core.Predicate_index.run idx res pub) pubs
  in
  let pass_packed () =
    List.iter
      (fun pub ->
        Pf_core.Predicate_index.run idx res pub;
        List.iter match_one exprs)
      pubs
  in
  let pass_list () =
    List.iter
      (fun pub ->
        Pf_core.Predicate_index.run idx res pub;
        List.iter
          (fun pids ->
            let rs = Array.map (fun pid -> Pf_core.Predicate_index.get res pid) pids in
            ignore (Pf_core.Occurrence.matches rs : bool))
          exprs)
      pubs
  in
  (* warm-up grows the scratch structures to their steady-state size *)
  pass_packed ();
  pass_list ();
  let minor_per_doc pass =
    let reps = 3 in
    let before = Gc.minor_words () in
    for _ = 1 to reps do
      pass ()
    done;
    (Gc.minor_words () -. before) /. float (reps * npubs)
  in
  let run_only = minor_per_doc pass_run_only in
  let packed = minor_per_doc pass_packed in
  let listed = minor_per_doc pass_list in
  Printf.printf
    "\n== occurrence-alloc: %d XPE predicate rows, %d publications (minor words/doc) ==\n"
    (List.length exprs) npubs;
  Printf.printf "%24s %18.1f\n" "predicate-run only" run_only;
  Printf.printf "%24s %18.1f   (occurrence stage: %.1f)\n" "run + packed arena" packed
    (packed -. run_only);
  Printf.printf "%24s %18.1f   (occurrence stage: %.1f)\n" "run + list-based" listed
    (listed -. run_only);
  record "publications" (J.Int npubs);
  record "exprs" (J.Int (List.length exprs));
  record "minor_words_per_doc_run_only" (J.Float run_only);
  record "minor_words_per_doc_packed" (J.Float packed);
  record "minor_words_per_doc_list" (J.Float listed);
  record "occurrence_stage_minor_words_per_doc_packed" (J.Float (packed -. run_only));
  record "occurrence_stage_minor_words_per_doc_list" (J.Float (listed -. run_only))

(* ------------------------------------------------------------------ *)
(* Predicate-match (extension): the cache-flat predicate image, measured
   single-run vs batched. One pass per plan over the same publications,
   reporting probes and hits per document (scale-free — CI gates them),
   minor-heap words per document for both plans (the batched plan must be
   allocation-free in steady state) and ns per document. run_batch must
   reproduce the per-run match sets exactly; a mismatch fails the run. *)

let predicate_match () =
  let module PI = Pf_core.Predicate_index in
  let dtd = dtd_of "nitf" in
  let m = PI.make_metrics () in
  let idx = PI.create ~metrics:m () in
  List.iter
    (fun q ->
      match Pf_core.Encoder.encode q with
      | enc -> Array.iter (fun p -> ignore (PI.intern idx p : int)) enc.Pf_core.Encoder.preds
      | exception _ -> ())
    (queries dtd (if !full then 5_000 else 2_000));
  let pubs =
    Array.of_list
      (List.concat_map
         (fun d -> List.map Pf_core.Publication.of_path (Pf_xml.Path.of_document d))
         (documents "nitf" (if !full then 50 else 20)))
  in
  let npubs = Array.length pubs in
  let npids = PI.size idx in
  let res = PI.create_results () in
  (* the chunked results pool and the chunk arrays are pre-built so the
     measured batched pass is pure run_batch work *)
  let chunk = 16 in
  let pool = Array.init (min chunk npubs) (fun _ -> PI.create_results ()) in
  let chunks =
    let acc = ref [] in
    let i = ref 0 in
    while !i < npubs do
      let len = min chunk (npubs - !i) in
      let cres = if len = chunk then pool else Array.sub pool 0 len in
      acc := (cres, Array.sub pubs !i len) :: !acc;
      i := !i + len
    done;
    List.rev !acc
  in
  let pass_single () =
    Array.iter (fun pub -> PI.run idx res pub) pubs
  in
  let pass_batched () =
    List.iter (fun (cres, cpubs) -> PI.run_batch idx cres cpubs) chunks
  in
  (* identity: every batched slot must equal a fresh per-publication run *)
  let snapshot r =
    List.filter_map
      (fun pid -> if PI.is_matched r pid then Some (pid, PI.get_packed r pid) else None)
      (List.init npids Fun.id)
  in
  let identical = ref true in
  List.iter
    (fun (cres, cpubs) ->
      PI.run_batch idx cres cpubs;
      Array.iteri
        (fun i pub ->
          PI.run idx res pub;
          if snapshot cres.(i) <> snapshot res then identical := false)
        cpubs)
    chunks;
  (* probe/hit profile of one pass over the stream (plan-independent:
     run_batch's totals are checked equal by the test suite) *)
  let probes0 = Pf_obs.Counter.get m.PI.probes and hits0 = Pf_obs.Counter.get m.PI.hits in
  pass_single ();
  let probes_per_doc =
    float (Pf_obs.Counter.get m.PI.probes - probes0) /. float npubs
  and hits_per_doc = float (Pf_obs.Counter.get m.PI.hits - hits0) /. float npubs in
  (* warm-up above grew every scratch structure; measure steady state *)
  let reps = 3 in
  let minor_per_doc pass =
    pass ();
    let before = Gc.minor_words () in
    for _ = 1 to reps do
      pass ()
    done;
    (Gc.minor_words () -. before) /. float (reps * npubs)
  in
  let single_words = minor_per_doc pass_single in
  let batched_words = minor_per_doc pass_batched in
  let ns_per_doc pass =
    let (), ms = B.time_ms (fun () -> for _ = 1 to reps do pass () done) in
    ms *. 1e6 /. float (reps * npubs)
  in
  let single_ns = ns_per_doc pass_single in
  let batched_ns = ns_per_doc pass_batched in
  Printf.printf
    "\n== predicate-match: %d predicates, %d publications (flat image) ==\n" npids npubs;
  Printf.printf "%18s %14.1f\n" "probes/doc" probes_per_doc;
  Printf.printf "%18s %14.1f\n" "hits/doc" hits_per_doc;
  Printf.printf "%18s %14s %14s\n" "" "single" "batched";
  Printf.printf "%18s %14.1f %14.1f\n" "minor words/doc" single_words batched_words;
  Printf.printf "%18s %14.0f %14.0f\n" "ns/doc" single_ns batched_ns;
  Printf.printf "%18s %14b\n" "identical" !identical;
  record "publications" (J.Int npubs);
  record "predicates" (J.Int npids);
  record "probes_per_doc" (J.Float probes_per_doc);
  record "hits_per_doc" (J.Float hits_per_doc);
  record "minor_words_per_doc_single" (J.Float single_words);
  record "minor_words_per_doc_batched" (J.Float batched_words);
  record "ns_per_doc_single" (J.Float single_ns);
  record "ns_per_doc_batched" (J.Float batched_ns);
  record "identical_matches" (J.Bool !identical);
  if not !identical then begin
    Printf.printf "predicate-match: BATCHED MATCH-SET MISMATCH against per-run results\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Document-ingest allocation (extension): the zero-copy SAX driver and
   the arena-backed path scanner must bring the ingest side near the
   allocation floor the occurrence stage already reached. Two passes over
   the same serialized documents — tree ingest (parse_document +
   of_document, what match_document costs) and streaming scan (the
   reusable scanner behind match_stream) — in minor-heap words per
   document. fold_of_string is reported too: it shows what the per-path
   snapshots cost on top of the scan. *)

let ingest_alloc () =
  let ndocs = if !full then 50 else 20 in
  let docs = documents "nitf" ndocs in
  let sources = List.map Pf_xml.Print.to_string docs in
  let paths_seen = ref 0 in
  let scanner = Pf_xml.Path.create_scanner () in
  let pass_tree () =
    List.iter
      (fun s ->
        List.iter
          (fun _ -> incr paths_seen)
          (Pf_xml.Path.of_document (Pf_xml.Sax.parse_document s)))
      sources
  in
  let pass_fold () =
    List.iter
      (fun s ->
        Pf_xml.Path.fold_of_string s ~init:() ~f:(fun () _ -> incr paths_seen))
      sources
  in
  let pass_scan () =
    List.iter (fun s -> Pf_xml.Path.scan scanner s ~f:(fun _ -> incr paths_seen)) sources
  in
  let noop_handler =
    {
      Pf_xml.Sax.zc_start = (fun _ _ -> ());
      zc_end = (fun _ -> ());
      zc_text = (fun _ _ _ -> ());
    }
  in
  let pass_sax () = List.iter (fun s -> Pf_xml.Sax.fold_zc s noop_handler) sources in
  (* warm-up: grow the scanner arenas and intern the vocabulary *)
  pass_tree ();
  pass_scan ();
  paths_seen := 0;
  pass_scan ();
  let paths_per_doc = float !paths_seen /. float ndocs in
  let minor_per_doc pass =
    let reps = 3 in
    let before = Gc.minor_words () in
    for _ = 1 to reps do
      pass ()
    done;
    (Gc.minor_words () -. before) /. float (reps * ndocs)
  in
  let tree = minor_per_doc pass_tree in
  let folded = minor_per_doc pass_fold in
  let scanned = minor_per_doc pass_scan in
  let sax = minor_per_doc pass_sax in
  let ratio = if tree > 0. then scanned /. tree else 0. in
  (* stream-match: the pipeline end-to-end with expressions registered —
     tree-mode matching (parse + of_document + match) against the fully
     streaming mode (arena publications refilled off the event stream).
     Match sets must be identical; the streaming side's minor words per
     document are the whole point of the mode, so both are recorded and
     the ratio is gated in CI perf-smoke (<= 10% of tree). *)
  let qs = queries (dtd_of "nitf") 200 in
  let tree_eng = Pf_core.Engine.create () in
  let stream_eng = Pf_core.Engine.create () in
  List.iter (fun q -> ignore (Pf_core.Engine.add tree_eng q)) qs;
  List.iter (fun q -> ignore (Pf_core.Engine.add stream_eng q)) qs;
  let identical =
    List.for_all
      (fun s ->
        Pf_core.Engine.match_string tree_eng s
        = Pf_core.Engine.match_stream stream_eng s)
      sources
  in
  let pass_match_tree () =
    List.iter (fun s -> ignore (Pf_core.Engine.match_string tree_eng s)) sources
  in
  let pass_match_stream () =
    List.iter (fun s -> ignore (Pf_core.Engine.match_stream stream_eng s)) sources
  in
  (* the identity pass above doubled as warm-up for both engines *)
  let match_tree = minor_per_doc pass_match_tree in
  let match_stream = minor_per_doc pass_match_stream in
  let match_ratio = if match_tree > 0. then match_stream /. match_tree else 0. in
  Printf.printf
    "\n== ingest-alloc: %d NITF documents, %.1f paths/doc (minor words/doc) ==\n" ndocs
    paths_per_doc;
  Printf.printf "%28s %18.1f\n" "tree (parse + of_document)" tree;
  Printf.printf "%28s %18.1f\n" "fold_of_string" folded;
  Printf.printf "%28s %18.1f\n" "sax (fold_zc, no-op)" sax;
  Printf.printf "%28s %18.1f   (%.2f%% of tree)\n" "scan (reused scanner)" scanned
    (100. *. ratio);
  Printf.printf "%28s %18.1f   (%d XPEs)\n" "match, tree mode" match_tree
    (List.length qs);
  Printf.printf "%28s %18.1f   (%.2f%% of tree, identical %b)\n" "match, streaming"
    match_stream
    (100. *. match_ratio)
    identical;
  record "documents" (J.Int ndocs);
  record "paths_per_doc" (J.Float paths_per_doc);
  record "minor_words_per_doc_tree" (J.Float tree);
  record "minor_words_per_doc_fold" (J.Float folded);
  record "minor_words_per_doc_sax" (J.Float sax);
  record "minor_words_per_doc_scan" (J.Float scanned);
  record "scan_over_tree_ratio" (J.Float ratio);
  record "stream_match"
    (J.Obj
       [
         "xpes", J.Int (List.length qs);
         "minor_words_per_doc_tree_match", J.Float match_tree;
         "minor_words_per_doc_stream_match", J.Float match_stream;
         "stream_over_tree_match_ratio", J.Float match_ratio;
         "identical_matches", J.Bool identical;
       ]);
  if not identical then begin
    Printf.printf "  FAILED: streaming match sets diverge from tree mode\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Path-result cache (extension): DTD-driven streams repeat root-to-leaf
   paths across documents, so the cross-document cache should convert
   most per-path predicate+occurrence work into one hashtable probe. The
   cache on/off sweep runs over the nitf and psd workloads; every
   configuration's match sets are checked byte-identical against the
   uncached sequential engine, including the cached engine behind both
   Pf_service shard modes at 1/2/4 domains. *)

let path_cache_exp () =
  let timed_with_gc f =
    let s0 = Gc.quick_stat () in
    let (), ms = B.time_ms f in
    let s1 = Gc.quick_stat () in
    ms, s1.Gc.minor_words -. s0.Gc.minor_words, s1.Gc.major_words -. s0.Gc.major_words
  in
  let failed = ref false in
  (* the service rows below exercise both shard modes *)
  record "shard_mode" (J.String "doc+expr");
  List.iter
    (fun (dtd_name, count, ndocs) ->
      let dtd = dtd_of dtd_name in
      let qs = queries dtd count in
      let docs = documents dtd_name ndocs in
      let throughput ms = float ndocs /. (ms /. 1000.) in
      (* uncached baseline: expected match sets + timing *)
      let base = Pf_core.Engine.create () in
      List.iter (fun q -> ignore (Pf_core.Engine.add base q)) qs;
      let expected = List.map (Pf_core.Engine.match_document base) docs in
      let base_ms, base_minor, base_major =
        timed_with_gc (fun () ->
            List.iter (fun d -> ignore (Pf_core.Engine.match_document base d)) docs)
      in
      (* cached engine: the identity check runs from a cold cache (misses
         populate it), the timed pass then measures the warm steady state *)
      let cached = Pf_core.Engine.create ~path_cache:true () in
      List.iter (fun q -> ignore (Pf_core.Engine.add cached q)) qs;
      let identical_cold =
        List.map (Pf_core.Engine.match_document cached) docs = expected
      in
      let cache_ms, cache_minor, cache_major =
        timed_with_gc (fun () ->
            List.iter (fun d -> ignore (Pf_core.Engine.match_document cached d)) docs)
      in
      let counter name =
        Option.value ~default:0
          (Pf_obs.Registry.find_counter (Pf_core.Engine.metrics cached) name)
      in
      let hits = counter "path_cache_hits" and misses = counter "path_cache_misses" in
      let hit_ratio =
        if hits + misses = 0 then 0. else float hits /. float (hits + misses)
      in
      (* the cached engine behind the service: every shard mode and domain
         count must still answer exactly like the sequential uncached
         engine (replica caches are private; expression shards cache their
         shard-local results) *)
      let svc_rows =
        List.concat_map
          (fun mode ->
            List.map
              (fun domains ->
                let svc =
                  Pf_service.create ~mode ~domains ~batch:8
                    (Pf_core.Engine.filter ~path_cache:true () :> Pf_intf.filter)
                in
                List.iter (fun q -> ignore (Pf_service.subscribe svc q)) qs;
                let identical = Pf_service.filter_batch svc docs = expected in
                let (), ms =
                  B.time_ms (fun () -> ignore (Pf_service.filter_batch svc docs))
                in
                Pf_service.shutdown svc;
                mode, domains, ms, identical)
              [ 1; 2; 4 ])
          [ Pf_service.Doc; Pf_service.Expr ]
      in
      Printf.printf
        "\n== path-cache (%s): %d XPEs, %d documents ==\n"
        (String.uppercase_ascii dtd_name)
        (List.length qs) ndocs;
      Printf.printf "%14s %12s %14s %14s %12s\n" "engine" "ms" "docs/s" "minor w/doc"
        "identical";
      Printf.printf "%14s %12.1f %14.0f %14.0f %12s\n" "uncached" base_ms
        (throughput base_ms)
        (base_minor /. float ndocs)
        "-";
      Printf.printf "%14s %12.1f %14.0f %14.0f %12b\n" "cached" cache_ms
        (throughput cache_ms)
        (cache_minor /. float ndocs)
        identical_cold;
      Printf.printf "   speedup %.2fx, hit ratio %.3f (%d hits / %d misses)\n"
        (base_ms /. cache_ms) hit_ratio hits misses;
      Printf.printf "%8s %8s %12s %14s %12s\n" "mode" "domains" "ms" "docs/s" "identical";
      List.iter
        (fun (mode, domains, ms, identical) ->
          Printf.printf "%8s %8d %12.1f %14.0f %12b\n" (Pf_service.mode_name mode)
            domains ms (throughput ms) identical)
        svc_rows;
      record (Printf.sprintf "%s" dtd_name)
        (J.Obj
           [
             "xpes", J.Int (List.length qs);
             "documents", J.Int ndocs;
             ( "uncached",
               J.Obj
                 [
                   "ms", J.Float base_ms;
                   "docs_per_s", J.Float (throughput base_ms);
                   "minor_words", J.Float base_minor;
                   "major_words", J.Float base_major;
                   "latency_ns", latency_json (Pf_core.Engine.metrics base) "doc_latency_ns";
                 ] );
             ( "cached",
               J.Obj
                 [
                   "ms", J.Float cache_ms;
                   "docs_per_s", J.Float (throughput cache_ms);
                   "minor_words", J.Float cache_minor;
                   "major_words", J.Float cache_major;
                   "hits", J.Int hits;
                   "misses", J.Int misses;
                   "hit_ratio", J.Float hit_ratio;
                   "invalidations", J.Int (counter "path_cache_invalidations");
                   "identical_matches", J.Bool identical_cold;
                   ( "latency_ns",
                     latency_json (Pf_core.Engine.metrics cached) "doc_latency_ns" );
                 ] );
             "speedup_cached_vs_uncached", J.Float (base_ms /. cache_ms);
             ( "service_rows",
               J.List
                 (List.map
                    (fun (mode, domains, ms, identical) ->
                      J.Obj
                        [
                          "mode", J.String (Pf_service.mode_name mode);
                          "domains", J.Int domains;
                          "ms", J.Float ms;
                          "docs_per_s", J.Float (throughput ms);
                          "identical_matches", J.Bool identical;
                        ])
                    svc_rows) );
           ]);
      if
        (not identical_cold)
        || List.exists (fun (_, _, _, identical) -> not identical) svc_rows
      then failed := true)
    (if !full then [ "nitf", 50_000, 300; "psd", 10_000, 300 ]
     else [ "nitf", 10_000, 80; "psd", 3_000, 80 ]);
  if !failed then begin
    Printf.printf "path-cache: MATCH-SET MISMATCH against the uncached engine\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure, exercising
   the per-document kernel of the corresponding experiment. *)

let micro () =
  let open Bechamel in
  let mk_engine variant dtd_name count =
    let e = Pf_core.Engine.create ~variant () in
    List.iter (fun q -> ignore (Pf_core.Engine.add e q)) (queries (dtd_of dtd_name) count);
    e
  in
  let doc_of name = List.hd (documents name 1) in
  let nitf_doc = doc_of "nitf" and psd_doc = doc_of "psd" in
  let engine_nitf = mk_engine Pf_core.Expr_index.Access_predicate "nitf" 25_000 in
  let engine_psd = mk_engine Pf_core.Expr_index.Access_predicate "psd" 5_000 in
  let engine_shared = mk_engine Pf_core.Expr_index.Shared "psd" 5_000 in
  let yf = B.yfilter () in
  build yf (queries (dtd_of "nitf") 25_000);
  let idxf = B.index_filter () in
  build idxf (queries (dtd_of "nitf") 25_000);
  let attr_engine =
    let e = Pf_core.Engine.create ~attr_mode:Pf_core.Engine.Inline () in
    List.iter
      (fun q -> ignore (Pf_core.Engine.add e q))
      (queries (dtd_of "nitf") ~filters:1 25_000);
    e
  in
  let table1_idx = Pf_core.Predicate_index.create () in
  List.iter
    (fun src ->
      Array.iter
        (fun p -> ignore (Pf_core.Predicate_index.intern table1_idx p))
        (Pf_core.Encoder.encode_string src).Pf_core.Encoder.preds)
    [ "a//b/c"; "c//b//a" ];
  let table1_res = Pf_core.Predicate_index.create_results () in
  let table1_pub = Pf_core.Publication.of_tags [ "a"; "b"; "c"; "a"; "b"; "c" ] in
  let tests =
    [
      Test.make ~name:"table1:predicate-matching"
        (Staged.stage (fun () ->
             Pf_core.Predicate_index.run table1_idx table1_res table1_pub));
      Test.make ~name:"fig6a:pc-ap-nitf-25k"
        (Staged.stage (fun () -> Pf_core.Engine.match_document engine_nitf nitf_doc));
      Test.make ~name:"fig6a:yfilter-nitf-25k"
        (Staged.stage (fun () -> yf.B.match_doc nitf_doc));
      Test.make ~name:"fig6a:index-filter-nitf-25k"
        (Staged.stage (fun () -> idxf.B.match_doc nitf_doc));
      Test.make ~name:"fig6b:pc-ap-psd-5k"
        (Staged.stage (fun () -> Pf_core.Engine.match_document engine_psd psd_doc));
      Test.make ~name:"fig9:inline-attrs-nitf-25k"
        (Staged.stage (fun () -> Pf_core.Engine.match_document attr_engine nitf_doc));
      Test.make ~name:"ablation:shared-psd-5k"
        (Staged.stage (fun () -> Pf_core.Engine.match_document engine_shared psd_doc));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Printf.printf "\n== bechamel micro-benchmarks (per-document kernels) ==\n";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let stats = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            Printf.printf "  %-32s %12.0f ns/run\n" name est;
            record name (J.Float est)
          | _ -> Printf.printf "  %-32s (no estimate)\n" name)
        stats)
    tests;
  flush stdout

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Subsumption (extension): the redundancy-skewed workload against the
   subsumption index. A base pool of distinct expressions is re-drawn
   with respelling/widening/narrowing mutations (Presets.
   redundant_subscriptions), the regime real subscription tables live in.
   One engine takes the workload directly; one takes it behind
   Subsume.Make. Reported: physical/logical ratio (the sharing the
   canonicalizer + alias probes recover), subscribe throughput, match
   throughput (the subsumed engine matches shapes, not subscriptions),
   and the covers-probe count per expression (must stay O(1) — the probe
   is capped, so total probes are linear, not quadratic). The fan-out
   must be byte-identical to the unsubsumed engine on every document;
   a mismatch fails the run. *)

let subsumption_exp () =
  let count = if !full then 100_000 else 20_000 in
  let ndocs = if !full then 200 else 60 in
  let dtd = dtd_of "nitf" in
  let qs =
    Xpath_gen.generate_redundant dtd
      { Presets.redundant_subscriptions with Xpath_gen.count }
  in
  let n = List.length qs in
  let docs = documents "nitf" ndocs in
  let throughput ms = float ndocs /. (ms /. 1000.) in
  (* unsubsumed baseline: one engine expression per subscription *)
  let base = Pf_core.Engine.create () in
  let (), base_sub_ms =
    B.time_ms (fun () -> List.iter (fun q -> ignore (Pf_core.Engine.add base q)) qs)
  in
  (* subsumed: the same engine behind the shape table *)
  let module Sub = Pf_core.Subsume.Make (Pf_core.Engine.Filter) in
  let sub = Sub.create () in
  let (), sub_sub_ms =
    B.time_ms (fun () -> List.iter (fun q -> ignore (Sub.add sub q)) qs)
  in
  (* fan-out identity, one document at a time — retaining both full
     match-set lists across the timed passes below would hand them GC
     pressure that isn't theirs; this pass doubles as warm-up *)
  let identical =
    List.for_all
      (fun d -> Sub.match_document sub d = Pf_core.Engine.match_document base d)
      docs
  in
  (* the physical floor: a plain engine holding one expression per
     distinct canonical form — what the subsumed engine's inner matching
     costs without the fan-out translation *)
  let floor_eng = Pf_core.Engine.create () in
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun q ->
      let key = Pf_xpath.Canonical.key q in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        ignore (Pf_core.Engine.add floor_eng (Pf_xpath.Canonical.normalize q))
      end)
    qs;
  List.iter (fun d -> ignore (Pf_core.Engine.match_document floor_eng d)) docs;
  Gc.compact ();
  (* three repetitions, timed per document with the engines interleaved:
     this host's background load drifts by tens of percent over
     multi-second spans, so whole-pass timings compare different load
     regimes. Matching the same document on all three engines
     back-to-back exposes every engine to the same ~100ms load window;
     the per-engine repetition minimum then discards loaded repetitions *)
  let base_ms = ref infinity and sub_ms = ref infinity and floor_ms = ref infinity in
  for _ = 1 to 3 do
    let acc = [| 0.; 0.; 0. |] in
    let timed slot f =
      let t0 = Unix.gettimeofday () in
      f ();
      acc.(slot) <- acc.(slot) +. (Unix.gettimeofday () -. t0)
    in
    let cur = ref (List.hd docs) in
    let run = function
      | 0 -> timed 0 (fun () -> ignore (Pf_core.Engine.match_document base !cur))
      | 1 -> timed 1 (fun () -> ignore (Sub.match_document sub !cur))
      | _ -> timed 2 (fun () -> ignore (Pf_core.Engine.match_document floor_eng !cur))
    in
    (* rotate the engine order per document: the engines' working sets
       evict each other between matches, so a fixed order would charge
       the cold-cache penalty to whichever engine always runs after the
       100k-expression baseline trie *)
    List.iteri
      (fun i d ->
        cur := d;
        run (i mod 3);
        run ((i + 1) mod 3);
        run ((i + 2) mod 3))
      docs;
    base_ms := Float.min !base_ms (acc.(0) *. 1000.);
    sub_ms := Float.min !sub_ms (acc.(1) *. 1000.);
    floor_ms := Float.min !floor_ms (acc.(2) *. 1000.)
  done;
  let base_ms = !base_ms and sub_ms = !sub_ms and floor_ms = !floor_ms in
  let st = Sub.stats sub in
  let ratio = float st.Pf_core.Subsume.shapes /. float st.Pf_core.Subsume.logical in
  let probes_per_expr = float st.Pf_core.Subsume.covers_probes /. float n in
  let speedup = base_ms /. sub_ms in
  Printf.printf
    "\n== subsumption: %d redundant NITF XPEs, %d documents ==\n" n ndocs;
  Printf.printf "   shapes %d / logical %d = %.3f physical/logical\n"
    st.Pf_core.Subsume.shapes st.Pf_core.Subsume.logical ratio;
  Printf.printf
    "   dedup %d, alias %d, dag edges %d, covered shapes %d, promotions/retirements 0/0\n"
    st.Pf_core.Subsume.dedup_hits st.Pf_core.Subsume.alias_hits
    st.Pf_core.Subsume.dag_edges st.Pf_core.Subsume.covered_shapes;
  Printf.printf "   covers probes %d (%.1f per expr, %d truncated inserts)\n"
    st.Pf_core.Subsume.covers_probes probes_per_expr
    st.Pf_core.Subsume.probe_truncations;
  Printf.printf "%14s %14s %14s %14s %12s\n" "engine" "subscribe ms" "match ms"
    "docs/s" "identical";
  Printf.printf "%14s %14.1f %14.1f %14.0f %12s\n" "unsubsumed" base_sub_ms base_ms
    (throughput base_ms) "-";
  Printf.printf "%14s %14.1f %14.1f %14.0f %12b\n" "subsumed" sub_sub_ms sub_ms
    (throughput sub_ms) identical;
  Printf.printf "%14s %14s %14.1f %14.0f %12s\n" "shape floor" "-" floor_ms
    (throughput floor_ms) "-";
  Printf.printf "   match speedup %.2fx (fan-out overhead %.1f ms)\n" speedup
    (sub_ms -. floor_ms);
  record "xpes" (J.Int n);
  record "documents" (J.Int ndocs);
  record "shapes" (J.Int st.Pf_core.Subsume.shapes);
  record "logical" (J.Int st.Pf_core.Subsume.logical);
  record "physical_over_logical" (J.Float ratio);
  record "dedup_hits" (J.Int st.Pf_core.Subsume.dedup_hits);
  record "alias_hits" (J.Int st.Pf_core.Subsume.alias_hits);
  record "dag_edges" (J.Int st.Pf_core.Subsume.dag_edges);
  record "covered_shapes" (J.Int st.Pf_core.Subsume.covered_shapes);
  record "covers_probes" (J.Int st.Pf_core.Subsume.covers_probes);
  record "covers_probes_per_expr" (J.Float probes_per_expr);
  record "probe_truncations" (J.Int st.Pf_core.Subsume.probe_truncations);
  record "subscribe_ms_unsubsumed" (J.Float base_sub_ms);
  record "subscribe_ms_subsumed" (J.Float sub_sub_ms);
  record "match_ms_unsubsumed" (J.Float base_ms);
  record "match_ms_subsumed" (J.Float sub_ms);
  record "match_ms_shape_floor" (J.Float floor_ms);
  record "docs_per_s_unsubsumed" (J.Float (throughput base_ms));
  record "docs_per_s_subsumed" (J.Float (throughput sub_ms));
  record "match_speedup_subsumed" (J.Float speedup);
  record "identical_matches" (J.Bool identical);
  record "latency_ns_unsubsumed"
    (latency_json (Pf_core.Engine.metrics base) "doc_latency_ns");
  record "latency_ns_subsumed" (latency_json (Sub.metrics sub) "doc_latency_ns");
  if not identical then begin
    Printf.printf "subsumption: FAN-OUT MISMATCH against the unsubsumed engine\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* net-broker: the networked dissemination path end to end. A durable
   wire server (WAL + snapshot in a temp dir) over a Unix socket,
   NITF workload: subscriptions registered through SUBSCRIBE frames,
   documents published through a pipelined window of PUBLISH frames.
   Latency percentiles come from the server's net_publish_latency_ns
   histogram (submit to delivery resolution). Two identity gates:
   every wire delivery must equal what an in-process broker answers
   for the same document, and a stop/recover cycle over the same data
   dir must reproduce the deliveries exactly. p50/p99 land in
   BENCH_results.json so `bench -- compare` SLO-gates the wire path
   like any other experiment. *)

let net_broker () =
  let dtd_name = "nitf" in
  let nexprs, ndocs = if !full then 10_000, 400 else 2_000, 120 in
  let window = 32 in
  let qs = queries (dtd_of dtd_name) nexprs in
  let exprs = List.map Pf_xpath.Parser.to_string qs in
  let docs =
    List.map (fun d -> Pf_xml.Print.to_string ~decl:false d) (documents dtd_name ndocs)
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pfbench-net-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let rm_rf () =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  Fun.protect ~finally:rm_rf @@ fun () ->
  let sock = Filename.concat dir "broker.sock" in
  let start () =
    Pf_net.Server.start
      (Pf_net.Server.config ~data_dir:dir ~domains:2 (Pf_net.Server.Unix_sock sock))
  in
  (* publish every document through a pipelined window; deliveries per
     document index, total wall time *)
  let publish_all c =
    let deliveries = Array.make (List.length docs) [] in
    let inflight = Queue.create () in
    let settle () =
      let req, i = Queue.pop inflight in
      match Pf_net.Client.await c req with
      | Ok ds -> deliveries.(i) <- ds
      | Error e -> failwith (Pf_intf.error_message e)
    in
    let (), ms =
      B.time_ms (fun () ->
          List.iteri
            (fun i doc ->
              if Queue.length inflight >= window then settle ();
              Queue.add (Pf_net.Client.publish_async c doc, i) inflight)
            docs;
          while not (Queue.is_empty inflight) do
            settle ()
          done)
    in
    deliveries, ms
  in
  (* pass 1: subscribe over the wire, publish, read the latency histogram *)
  let srv = start () in
  let c = Pf_net.Client.connect (Pf_net.Server.listen_address srv) in
  let suppressed = ref 0 and rejected = ref 0 in
  let (), sub_ms =
    B.time_ms (fun () ->
        List.iteri
          (fun i expr ->
            match
              Pf_net.Client.subscribe c ~subscriber:(Printf.sprintf "s%d" (i mod 97)) expr
            with
            | Ok (_, sup) -> if sup then incr suppressed
            | Error _ -> incr rejected)
          exprs)
  in
  let wire, pub_ms = publish_all c in
  let wire_latency = latency_json (Pf_net.Server.metrics srv) "net_publish_latency_ns" in
  let wal_bytes, snapshots =
    match Pf_net.Server.store srv with
    | Some st -> Pf_net.Store.wal_size st, Pf_net.Store.snapshots_taken st
    | None -> 0, 0
  in
  Pf_net.Client.close c;
  Pf_net.Server.stop srv;
  (* pass 2: recover from snapshot + WAL, republish without resubscribing *)
  let srv2 = start () in
  let recovered =
    match Pf_net.Server.store srv2 with Some st -> Pf_net.Store.recovered_records st | None -> 0
  in
  let c2 = Pf_net.Client.connect (Pf_net.Server.listen_address srv2) in
  let wire2, pub2_ms = publish_all c2 in
  Pf_net.Client.close c2;
  Pf_net.Server.stop srv2;
  let identical_after_restart = wire = wire2 in
  (* identity gate: an in-process broker over the same engine must
     produce the same deliveries document for document *)
  let b = Pf_broker.Broker.create () in
  List.iteri
    (fun i expr ->
      ignore
        (Pf_broker.Broker.apply b
           (Pf_broker.Broker.Subscribe
              { ns = ""; subscriber = Printf.sprintf "s%d" (i mod 97); expr })))
    exprs;
  let inprocess =
    List.map
      (fun doc ->
        match Pf_broker.Broker.apply b (Pf_broker.Broker.Publish { ns = ""; doc }) with
        | [ Pf_broker.Broker.Delivered { deliveries } ] -> deliveries
        | _ -> assert false)
      docs
  in
  let identical_vs_inprocess = Array.to_list wire = inprocess in
  let throughput ms = float ndocs /. (ms /. 1000.) in
  Printf.printf "\n== net-broker (%s): %d XPEs over the wire, %d documents ==\n"
    (String.uppercase_ascii dtd_name) (List.length exprs) ndocs;
  Printf.printf "   subscribe %.1f ms (%d suppressed, %d rejected), WAL %d B, %d snapshot(s)\n"
    sub_ms !suppressed !rejected wal_bytes snapshots;
  Printf.printf "%18s %12s %14s %12s\n" "pass" "ms" "docs/s" "identical";
  Printf.printf "%18s %12.1f %14.0f %12s\n" "wire" pub_ms (throughput pub_ms) "-";
  Printf.printf "%18s %12.1f %14.0f %12b\n" "wire (recovered)" pub2_ms (throughput pub2_ms)
    identical_after_restart;
  Printf.printf "   recovery replayed %d WAL record(s); in-process identity %b\n" recovered
    identical_vs_inprocess;
  record "experiment"
    (J.Obj
       [
         "xpes", J.Int (List.length exprs);
         "documents", J.Int ndocs;
         "window", J.Int window;
         "suppressed", J.Int !suppressed;
         "rejected", J.Int !rejected;
         "subscribe_ms", J.Float sub_ms;
         "publish_ms", J.Float pub_ms;
         "docs_per_s", J.Float (throughput pub_ms);
         "publish_ms_recovered", J.Float pub2_ms;
         "wal_bytes", J.Int wal_bytes;
         "snapshots", J.Int snapshots;
         "recovered_records", J.Int recovered;
         "identical_after_restart", J.Bool identical_after_restart;
         "identical_vs_inprocess", J.Bool identical_vs_inprocess;
         "latency_ns", wire_latency;
       ]);
  if not (identical_after_restart && identical_vs_inprocess) then begin
    Printf.printf "net-broker: DELIVERY MISMATCH\n";
    exit 1
  end

let experiments =
  [
    "table1", table1;
    "fig6a", fig6a;
    "fig6b", fig6b;
    "fig7", fig7;
    "fig8", fig8;
    "fig8-do", fig8_do;
    "fig9", fig9;
    "fig10", fig10;
    "ablation", ablation;
    "insertion", insertion;
    "service", service;
    "occurrence-alloc", occurrence_alloc;
    "predicate-match", predicate_match;
    "ingest-alloc", ingest_alloc;
    "path-cache", path_cache_exp;
    "subsumption", subsumption_exp;
    "net-broker", net_broker;
    "micro", micro;
  ]

(* `bench -- compare old.json new.json` — regression-gate one results
   file against another; see Bench_compare for classification rules. *)
let compare_cli argv =
  let threshold = ref 0.30 and gate_timing = ref true and files = ref [] in
  let n = Array.length argv in
  let bad msg =
    Printf.eprintf
      "compare: %s\nusage: compare OLD.json NEW.json [--threshold T] [--gate-timing on|off]\n"
      msg;
    exit 2
  in
  let i = ref 2 in
  while !i < n do
    (match argv.(!i) with
    | "--threshold" ->
      if !i + 1 >= n then bad "--threshold needs a value";
      (match float_of_string_opt argv.(!i + 1) with
      | Some t when t > 0. -> threshold := t
      | _ -> bad (Printf.sprintf "bad threshold %S" argv.(!i + 1)));
      incr i
    | "--gate-timing" ->
      if !i + 1 >= n then bad "--gate-timing needs on or off";
      (match argv.(!i + 1) with
      | "on" -> gate_timing := true
      | "off" -> gate_timing := false
      | s -> bad (Printf.sprintf "bad --gate-timing %S (try on or off)" s));
      incr i
    | f -> files := f :: !files);
    incr i
  done;
  match List.rev !files with
  | [ old_path; new_path ] ->
    exit
      (Pf_bench.Bench_compare.run ~threshold:!threshold ~gate_timing:!gate_timing
         old_path new_path)
  | _ -> bad "expected exactly two results files"

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "compare" then compare_cli Sys.argv;
  let selected = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--full" -> full := true
        | "--seed" -> ()
        | arg when List.mem_assoc arg experiments -> selected := arg :: !selected
        | arg when int_of_string_opt arg <> None -> seed := int_of_string arg
        | arg ->
          Printf.eprintf "unknown experiment %S; available: %s\n" arg
            (String.concat ", " (List.map fst experiments));
          exit 2)
    Sys.argv;
  let to_run =
    if !selected = [] then experiments
    else List.filter (fun (n, _) -> List.mem n !selected) experiments
  in
  Printf.printf "predfilter benchmark harness (%s scale, seed %d)\n"
    (if !full then "paper" else "scaled")
    !seed;
  List.iter
    (fun (name, f) ->
      current_exp := name;
      let s0 = Gc.quick_stat () in
      let (), s = B.time f in
      (* allocation pressure per experiment: words allocated on the minor
         heap and promoted/allocated on the major heap while it ran *)
      let s1 = Gc.quick_stat () in
      record "gc_minor_words" (J.Float (s1.Gc.minor_words -. s0.Gc.minor_words));
      record "gc_major_words" (J.Float (s1.Gc.major_words -. s0.Gc.major_words));
      record "elapsed_s" (J.Float s);
      (* host identity, so `compare` can refuse timing diffs across
         incomparable machines; experiments that shard record their own *)
      if not (recorded_has "hardware_cores") then
        record "hardware_cores" (J.Int (Domain.recommended_domain_count ()));
      if not (recorded_has "shard_mode") then
        record "shard_mode" (J.String "sequential");
      Printf.printf "\n[%s completed in %.1f s]\n%!" name s)
    to_run;
  write_results "BENCH_results.json"
