(* Tests for nested path filters (Section 5): decomposition shape and
   end-to-end agreement with the reference evaluator. *)

open Pf_core

let test_paper_decomposition_count () =
  (* /a[*/c[d]/e]//c[d]/e decomposes into four sub-expressions (Fig. 3) *)
  let idx = Predicate_index.create () in
  let n = Nested.create idx in
  Nested.add n ~sid:0 (Pf_xpath.Parser.parse "/a[*/c[d]/e]//c[d]/e");
  Alcotest.(check int) "four sub-expressions" 4 (Nested.sub_expression_count n);
  Alcotest.(check int) "one expression" 1 (Nested.expression_count n);
  Alcotest.(check bool) "not empty" false (Nested.is_empty n)

let test_single_path_rejected () =
  let idx = Predicate_index.create () in
  let n = Nested.create idx in
  match Nested.add n ~sid:0 (Pf_xpath.Parser.parse "/a/b") with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "single paths belong in the main pipeline"

let test_wildcard_branch_rejected () =
  let e = Engine.create () in
  match Engine.add_string e "/a/*[d]/b" with
  | exception Encoder.Unsupported _ -> ()
  | _ -> Alcotest.fail "nested filter on wildcard should be Unsupported"

let test_rejected_add_leaves_engine_unchanged () =
  (* a rejected add must not consume a sid or register anything — the
     Pf_intf.FILTER contract the sharded service's replicas depend on.
     "/a[b/*[c]]" is the hard case: the root sub-expression decomposes
     fine and only a nested branch raises. *)
  let e = Engine.create () in
  let sid0 = Engine.add_string e "/a" in
  let exprs = Engine.expression_count e in
  let preds = Engine.distinct_predicate_count e in
  List.iter
    (fun src ->
      match Engine.add_string e src with
      | exception Encoder.Unsupported _ -> ()
      | _ -> Alcotest.fail (src ^ " should be Unsupported"))
    [ "/a/*[d]/b"; "/a[b/*[c]]" ];
  Alcotest.(check int) "expression count unchanged" exprs (Engine.expression_count e);
  Alcotest.(check int) "predicate index unchanged" preds
    (Engine.distinct_predicate_count e);
  let sid1 = Engine.add_string e "/a/b[c]" in
  Alcotest.(check int) "sids stay dense" (sid0 + 1) sid1;
  Alcotest.(check (list int)) "matching unaffected" [ sid0; sid1 ]
    (Engine.match_string e "<a><b><c/></b></a>")

let match_bool src doc_src =
  let e = Engine.create () in
  let sid = Engine.add_string e src in
  List.mem sid (Engine.match_string e doc_src)

let check src doc_src =
  let expected =
    Pf_xpath.Eval.matches (Pf_xpath.Parser.parse src) (Pf_xml.Sax.parse_document doc_src)
  in
  Alcotest.(check bool) (src ^ " on " ^ doc_src) expected (match_bool src doc_src)

let test_simple_nested () =
  check "/a[b]/c" "<a><b/><c/></a>";
  check "/a[b]/c" "<a><c/></a>";
  check "/a[b]/c" "<a><b/></a>";
  check "a[b/c]" "<a><b><c/></b></a>";
  check "a[b/c]" "<a><b/><c/></a>";
  check "/a[//d]/b" "<a><b/><c><d/></c></a>";
  check "/a[//d]/b" "<a><b/><c/></a>"

let test_same_branch_allowed () =
  (* standard XPath semantics: the filter match may lie on the same
     root-to-leaf path as the main match *)
  check "a[b/c]/b/c" "<a><b><c/></b></a>";
  check "a[b]/b" "<a><b/></a>"

let test_sibling_discrimination () =
  (* the filter must hold at the same node the main path passes through *)
  check "/a/b[d]/c" "<a><b><d/></b><b><c/></b></a>";  (* no: d and c under different b *)
  check "/a/b[d]/c" "<a><b><d/><c/></b></a>";  (* yes: same b *)
  check "/a/b[d]/c" "<a><b><d/></b></a>"

let test_paper_example_matching () =
  (* the full Section 5 example expression on documents shaped like Fig. 4 *)
  let expr = "/a[*/c[d]/e]//c[d]/e" in
  check expr "<a><x><c><d/><e/></c></x><c><d/><e/></c></a>";
  check expr "<a><x><c><d/><e/></c></x><c><e/></c></a>";
  check expr "<a><x><c><e/></c></x><c><d/><e/></c></a>";
  check expr "<a><c><d/><e/></c></a>"

let test_multiple_filters_one_step () =
  check "/a[b][c]/d" "<a><b/><c/><d/></a>";
  check "/a[b][c]/d" "<a><b/><d/></a>"

let test_nested_with_attrs () =
  check "/a[b[@x = 1]]/c" "<a><b x=\"1\"/><c/></a>";
  check "/a[b[@x = 1]]/c" "<a><b x=\"2\"/><c/></a>"

let test_nested_with_wildcards_and_descendants () =
  check "/a[*/d]//e" "<a><b><d/></b><c><e/></c></a>";
  check "/a[b//d]/c" "<a><b><x><d/></x></b><c/></a>";
  check "/a[b//d]/c" "<a><b><d/></b><c/></a>"

let test_three_level_nesting () =
  check "/a[b[c[d]]]/e" "<a><b><c><d/></c></b><e/></a>";
  check "/a[b[c[d]]]/e" "<a><b><c/></b><e/></a>";
  check "/a[b[c[d]]]/e" "<a><b><c><d/></c></b></a>"

let test_multiple_children_same_step () =
  check "/a[b][c][d]/e" "<a><b/><c/><d/><e/></a>";
  check "/a[b][c][d]/e" "<a><b/><c/><e/></a>";
  check "/a[b[x]][b[y]]/e" "<a><b><x/></b><b><y/></b><e/></a>";
  check "/a[b[x]][b[y]]/e" "<a><b><x/></b><e/></a>"

let test_nested_on_descendant_step () =
  check "/a//c[d]/e" "<a><x><c><d/><e/></c></x></a>";
  check "/a//c[d]/e" "<a><x><c><e/></c></x><c><d/></c></a>";
  check "a//b[c]" "<a><q><b><c/></b></q></a>"

let test_nested_with_repeated_tags () =
  (* occurrence bookkeeping inside nested matching *)
  check "/a[a/a]/a" "<a><a><a/></a></a>";
  check "/a/a[a[a]]" "<a><a><a><a/></a></a></a>";
  check "/a/a[a[a]]" "<a><a><a/></a></a>"

let test_nested_mixed_attr_levels () =
  check "/a[b[@x = 1]/c[@y = 2]]/d" "<a><b x=\"1\"><c y=\"2\"/></b><d/></a>";
  check "/a[b[@x = 1]/c[@y = 2]]/d" "<a><b x=\"1\"><c y=\"3\"/></b><d/></a>";
  check "/a[b[@x = 1]]/d[@z >= 5]" "<a><b x=\"1\"/><d z=\"7\"/></a>";
  check "/a[b[@x = 1]]/d[@z >= 5]" "<a><b x=\"1\"/><d z=\"3\"/></a>"

let test_nested_text_filters () =
  check "/a[b[text() = 5]]/c" "<a><b>5</b><c/></a>";
  check "/a[b[text() = 5]]/c" "<a><b>6</b><c/></a>"

let test_mixed_with_single_paths () =
  let e = Engine.create () in
  let s1 = Engine.add_string e "/a/b" in
  let s2 = Engine.add_string e "/a[c]/b" in
  let s3 = Engine.add_string e "/a[x]/b" in
  let m = Engine.match_string e "<a><b/><c/></a>" in
  Alcotest.(check (list int)) "mixed" [ s1; s2 ] m;
  ignore s3

(* property: engine with nested expressions = oracle *)
let prop_nested_oracle =
  QCheck2.Test.make ~name:"nested expressions = oracle" ~count:400
    ~print:(fun (p, d) -> Gen_helpers.path_print p ^ " on " ^ Gen_helpers.doc_print d)
    QCheck2.Gen.(pair Gen_helpers.any_path_gen Gen_helpers.doc_gen)
    (fun (p, d) ->
      (* skip expressions the engine declares unsupported *)
      let e = Engine.create () in
      match Engine.add e p with
      | exception Encoder.Unsupported _ -> true
      | sid -> List.mem sid (Engine.match_document e d) = Pf_xpath.Eval.matches p d)

(* property: generated nested workloads agree with the oracle *)
let prop_workload_nested_oracle =
  QCheck2.Test.make ~name:"generated nested workload = oracle" ~count:30
    ~print:(fun seed -> string_of_int seed)
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let dtd = Pf_workload.Dtd.psd_like () in
      let qp =
        { Pf_workload.Xpath_gen.default with
          Pf_workload.Xpath_gen.count = 30; nested_prob = 0.4; seed }
      in
      let paths = Pf_workload.Xpath_gen.generate dtd qp in
      let docs =
        Pf_workload.Xml_gen.generate_many dtd
          { Pf_workload.Xml_gen.default with Pf_workload.Xml_gen.seed = seed + 1 }
          3
      in
      let e = Engine.create () in
      let sids = List.map (fun p -> Engine.add e p, p) paths in
      List.for_all
        (fun d ->
          let m = Engine.match_document e d in
          List.for_all
            (fun (sid, p) -> List.mem sid m = Pf_xpath.Eval.matches p d)
            sids)
        docs)

let () =
  Alcotest.run "nested"
    [
      ( "decomposition",
        [
          Alcotest.test_case "paper example count" `Quick test_paper_decomposition_count;
          Alcotest.test_case "single path rejected" `Quick test_single_path_rejected;
          Alcotest.test_case "wildcard branch rejected" `Quick test_wildcard_branch_rejected;
          Alcotest.test_case "rejected add leaves engine unchanged" `Quick
            test_rejected_add_leaves_engine_unchanged;
        ] );
      ( "matching",
        [
          Alcotest.test_case "simple nested" `Quick test_simple_nested;
          Alcotest.test_case "same-branch matches allowed" `Quick test_same_branch_allowed;
          Alcotest.test_case "sibling discrimination" `Quick test_sibling_discrimination;
          Alcotest.test_case "paper example" `Quick test_paper_example_matching;
          Alcotest.test_case "multiple filters on a step" `Quick test_multiple_filters_one_step;
          Alcotest.test_case "nested with attributes" `Quick test_nested_with_attrs;
          Alcotest.test_case "wildcards and descendants" `Quick
            test_nested_with_wildcards_and_descendants;
          Alcotest.test_case "three-level nesting" `Quick test_three_level_nesting;
          Alcotest.test_case "multiple children, one step" `Quick test_multiple_children_same_step;
          Alcotest.test_case "nested on descendant step" `Quick test_nested_on_descendant_step;
          Alcotest.test_case "repeated tags" `Quick test_nested_with_repeated_tags;
          Alcotest.test_case "attrs across levels" `Quick test_nested_mixed_attr_levels;
          Alcotest.test_case "text() inside nested" `Quick test_nested_text_filters;
          Alcotest.test_case "mixed with single paths" `Quick test_mixed_with_single_paths;
        ] );
      ( "properties",
        List.map Gen_helpers.to_alcotest
          [ prop_nested_oracle; prop_workload_nested_oracle ] );
    ]
