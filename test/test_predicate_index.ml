(* Tests for the predicate index (Figure 1) and the predicate matching
   stage (Section 4.1), including Table 1 transcribed verbatim. *)

open Pf_core

let tv = Predicate.tagvar

let sorted_pairs l = List.sort compare l

let check_pairs msg expected actual =
  Alcotest.(check (list (pair int int))) msg (sorted_pairs expected) (sorted_pairs actual)

(* ------------------------------------------------------------------ *)
(* Interning *)

let test_intern_dedup () =
  let idx = Predicate_index.create () in
  let p1 = Predicate.Relative { first = tv "a"; second = tv "b"; op = Predicate.Eq; v = 1 } in
  let p2 = Predicate.Relative { first = tv "a"; second = tv "b"; op = Predicate.Eq; v = 2 } in
  let p3 = Predicate.Relative { first = tv "a"; second = tv "b"; op = Predicate.Ge; v = 1 } in
  let i1 = Predicate_index.intern idx p1 in
  let i1' = Predicate_index.intern idx p1 in
  let i2 = Predicate_index.intern idx p2 in
  let i3 = Predicate_index.intern idx p3 in
  Alcotest.(check int) "same predicate, same pid" i1 i1';
  Alcotest.(check bool) "different value" true (i1 <> i2);
  Alcotest.(check bool) "different op" true (i1 <> i3);
  Alcotest.(check int) "three distinct stored" 3 (Predicate_index.size idx)

let test_intern_constraints_distinct () =
  let idx = Predicate_index.create () in
  let plain = Predicate.Absolute { tag = tv "a"; op = Predicate.Eq; v = 1 } in
  let constrained =
    Predicate.Absolute
      {
        tag = tv ~constraints:[ { Predicate.attr = "x"; cmp = Pf_xpath.Ast.Eq; value = Pf_xpath.Ast.Int 3 } ] "a";
        op = Predicate.Eq;
        v = 1;
      }
  in
  let i1 = Predicate_index.intern idx plain in
  let i2 = Predicate_index.intern idx constrained in
  Alcotest.(check bool) "constraints distinguish predicates" true (i1 <> i2);
  Alcotest.(check int) "constrained re-interned" i2 (Predicate_index.intern idx constrained)

let test_find () =
  let idx = Predicate_index.create () in
  let p = Predicate.Length { v = 3 } in
  Alcotest.(check (option int)) "absent" None (Predicate_index.find idx p);
  let i = Predicate_index.intern idx p in
  Alcotest.(check (option int)) "present" (Some i) (Predicate_index.find idx p);
  Alcotest.(check bool) "predicate recovered" true
    (Predicate.equal (Predicate_index.predicate idx i) p)

(* The paper's overlap example (Section 4.1.2): /a/*/c and */a/*/c/*/*/*
   share (d(p_a,p_c),=,2), stored once *)
let test_shared_predicate () =
  let idx = Predicate_index.create () in
  let e1 = (Encoder.encode_string "/a/*/c").Encoder.preds in
  let e2 = (Encoder.encode_string "*/a/*/c/*/*/*").Encoder.preds in
  let pids1 = Array.map (Predicate_index.intern idx) e1 in
  let pids2 = Array.map (Predicate_index.intern idx) e2 in
  (* /a/*/c = (p_a,=,1) |-> (d(p_a,p_c),=,2)
     */a/*/c/*/*/* = (p_a,>=,2) |-> (d(p_a,p_c),=,2) |-> (p_c-|,>=,3) *)
  Alcotest.(check int) "shared relative pid" pids1.(1) pids2.(1);
  (* (p_a,=,1), (d(p_a,p_c),=,2) shared, (p_a,>=,2), (p_c-|,>=,3) *)
  Alcotest.(check int) "four distinct predicates" 4 (Predicate_index.size idx)

(* ------------------------------------------------------------------ *)
(* Matching rules (Section 4.1.1) *)

let run_on idx tags =
  let res = Predicate_index.create_results () in
  Predicate_index.run idx res (Publication.of_tags tags);
  res

let test_absolute_matching () =
  let idx = Predicate_index.create () in
  let eq2 = Predicate_index.intern idx (Predicate.Absolute { tag = tv "b"; op = Predicate.Eq; v = 2 }) in
  let ge2 = Predicate_index.intern idx (Predicate.Absolute { tag = tv "b"; op = Predicate.Ge; v = 2 }) in
  let eq3 = Predicate_index.intern idx (Predicate.Absolute { tag = tv "b"; op = Predicate.Eq; v = 3 }) in
  let res = run_on idx [ "a"; "b"; "c"; "b" ] in
  check_pairs "(p_b,=,2)" [ 1, 1 ] (Predicate_index.get res eq2);
  check_pairs "(p_b,>=,2)" [ 1, 1; 2, 2 ] (Predicate_index.get res ge2);
  check_pairs "(p_b,=,3)" [] (Predicate_index.get res eq3);
  Alcotest.(check bool) "is_matched" true (Predicate_index.is_matched res eq2);
  Alcotest.(check bool) "not matched" false (Predicate_index.is_matched res eq3)

let test_relative_matching () =
  let idx = Predicate_index.create () in
  let d1 = Predicate_index.intern idx (Predicate.Relative { first = tv "a"; second = tv "b"; op = Predicate.Eq; v = 2 }) in
  let res = run_on idx [ "a"; "c"; "b"; "b" ] in
  (* only (a^1 at 1, b^1 at 3) has distance exactly 2 *)
  check_pairs "(d(p_a,p_b),=,2)" [ 1, 1 ] (Predicate_index.get res d1)

let test_relative_order_matters () =
  let idx = Predicate_index.create () in
  let d = Predicate_index.intern idx (Predicate.Relative { first = tv "b"; second = tv "a"; op = Predicate.Ge; v = 1 }) in
  let res = run_on idx [ "a"; "b" ] in
  check_pairs "b before a required" [] (Predicate_index.get res d)

let test_end_of_path_matching () =
  let idx = Predicate_index.create () in
  let e2 = Predicate_index.intern idx (Predicate.End_of_path { tag = tv "a"; v = 2 }) in
  let res = run_on idx [ "a"; "b"; "a"; "c" ] in
  (* a^1 at pos 1: 4-1>=2 ok; a^2 at pos 3: 4-3=1 < 2 *)
  check_pairs "(p_a-|,>=,2)" [ 1, 1 ] (Predicate_index.get res e2)

let test_length_matching () =
  let idx = Predicate_index.create () in
  let l3 = Predicate_index.intern idx (Predicate.Length { v = 3 }) in
  let l4 = Predicate_index.intern idx (Predicate.Length { v = 4 }) in
  let res = run_on idx [ "a"; "b"; "c" ] in
  check_pairs "(length,>=,3)" [ 0, 0 ] (Predicate_index.get res l3);
  check_pairs "(length,>=,4)" [] (Predicate_index.get res l4)

(* Table 1, verbatim: path (a,b,c,a,b,c), XPEs a//b/c and c//b//a *)
let test_table_1 () =
  let idx = Predicate_index.create () in
  let intern p = Array.map (Predicate_index.intern idx) p.Encoder.preds in
  let e1 = intern (Encoder.encode_string "a//b/c") in
  let e2 = intern (Encoder.encode_string "c//b//a") in
  let res = run_on idx [ "a"; "b"; "c"; "a"; "b"; "c" ] in
  check_pairs "(d(p_a,p_b),>=,1)" [ 1, 1; 1, 2; 2, 2 ] (Predicate_index.get res e1.(0));
  check_pairs "(d(p_b,p_c),=,1)" [ 1, 1; 2, 2 ] (Predicate_index.get res e1.(1));
  check_pairs "(d(p_c,p_b),>=,1)" [ 1, 2 ] (Predicate_index.get res e2.(0));
  check_pairs "(d(p_b,p_a),>=,1)" [ 1, 2 ] (Predicate_index.get res e2.(1))

let test_epoch_reset () =
  let idx = Predicate_index.create () in
  let p = Predicate_index.intern idx (Predicate.Absolute { tag = tv "a"; op = Predicate.Eq; v = 1 }) in
  let res = Predicate_index.create_results () in
  Predicate_index.run idx res (Publication.of_tags [ "a" ]);
  Alcotest.(check bool) "matched on first run" true (Predicate_index.is_matched res p);
  Predicate_index.run idx res (Publication.of_tags [ "b" ]);
  Alcotest.(check bool) "previous results discarded" false (Predicate_index.is_matched res p);
  check_pairs "get returns empty" [] (Predicate_index.get res p);
  Alcotest.(check int) "matched_count" 0 (Predicate_index.matched_count res)

let test_inline_constraints () =
  let idx = Predicate_index.create () in
  let c v = { Predicate.attr = "x"; cmp = Pf_xpath.Ast.Ge; value = Pf_xpath.Ast.Int v } in
  let pid = Predicate_index.intern idx
      (Predicate.Absolute { tag = tv ~constraints:[ c 3 ] "a"; op = Predicate.Eq; v = 1 }) in
  let res = Predicate_index.create_results () in
  let pub_of attrs =
    let doc = Pf_xml.Tree.doc (Pf_xml.Tree.element ~attrs "a") in
    match Pf_xml.Path.of_document doc with [ p ] -> Publication.of_path p | _ -> assert false
  in
  Predicate_index.run idx res (pub_of [ "x", "5" ]);
  Alcotest.(check bool) "x=5 satisfies >=3" true (Predicate_index.is_matched res pid);
  Predicate_index.run idx res (pub_of [ "x", "2" ]);
  Alcotest.(check bool) "x=2 fails" false (Predicate_index.is_matched res pid);
  Predicate_index.run idx res (pub_of []);
  Alcotest.(check bool) "missing attribute fails" false (Predicate_index.is_matched res pid)

(* property: matching results obey the Section 4.1.1 rules exactly,
   cross-checked against a naive evaluator over the publication *)
let naive_matches (pred : Predicate.t) (pub : Publication.t) =
  let tuples = Array.to_list pub.Publication.tuples in
  let op_holds op diff v =
    match op with Predicate.Eq -> diff = v | Predicate.Ge -> diff >= v
  in
  match pred with
  | Predicate.Absolute { tag; op; v } ->
    List.filter_map
      (fun tu ->
        if tu.Publication.tag = Symbol.intern tag.Predicate.name
           && op_holds op tu.Publication.pos v
        then Some (tu.Publication.occurrence, tu.Publication.occurrence)
        else None)
      tuples
  | Predicate.Relative { first; second; op; v } ->
    List.concat_map
      (fun t1 ->
        List.filter_map
          (fun t2 ->
            if t1.Publication.tag = Symbol.intern first.Predicate.name
               && t2.Publication.tag = Symbol.intern second.Predicate.name
               && t2.Publication.pos > t1.Publication.pos
               && op_holds op (t2.Publication.pos - t1.Publication.pos) v
            then Some (t1.Publication.occurrence, t2.Publication.occurrence)
            else None)
          tuples)
      tuples
  | Predicate.End_of_path { tag; v } ->
    List.filter_map
      (fun tu ->
        if tu.Publication.tag = Symbol.intern tag.Predicate.name
           && pub.Publication.length - tu.Publication.pos >= v
        then Some (tu.Publication.occurrence, tu.Publication.occurrence)
        else None)
      tuples
  | Predicate.Length { v } -> if pub.Publication.length >= v then [ 0, 0 ] else []

let pred_gen =
  let open QCheck2 in
  Gen.(
    oneof
      [
        (Gen_helpers.tag_gen >>= fun t ->
         oneofl [ Predicate.Eq; Predicate.Ge ] >>= fun op ->
         int_range 1 6 >>= fun v ->
         return (Predicate.Absolute { tag = Predicate.tagvar t; op; v }));
        (Gen_helpers.tag_gen >>= fun t1 ->
         Gen_helpers.tag_gen >>= fun t2 ->
         oneofl [ Predicate.Eq; Predicate.Ge ] >>= fun op ->
         int_range 1 5 >>= fun v ->
         return
           (Predicate.Relative
              { first = Predicate.tagvar t1; second = Predicate.tagvar t2; op; v }));
        (Gen_helpers.tag_gen >>= fun t ->
         int_range 1 5 >>= fun v ->
         return (Predicate.End_of_path { tag = Predicate.tagvar t; v }));
        (int_range 1 6 >>= fun v -> return (Predicate.Length { v }));
      ])

let prop_matching_agrees_with_naive =
  let open QCheck2 in
  let tags_gen = Gen.(list_size (int_range 1 7) Gen_helpers.tag_gen) in
  Test.make ~name:"index matching = naive rule evaluation" ~count:2000
    ~print:(fun (preds, tags) ->
      Format.asprintf "%a on %s" Predicate.pp_list preds (String.concat "/" tags))
    Gen.(pair (list_size (int_range 1 5) pred_gen) tags_gen)
    (fun (preds, tags) ->
      let idx = Predicate_index.create () in
      let pids = List.map (Predicate_index.intern idx) preds in
      let pub = Publication.of_tags tags in
      let res = Predicate_index.create_results () in
      Predicate_index.run idx res pub;
      List.for_all2
        (fun pred pid ->
          sorted_pairs (Predicate_index.get res pid)
          = sorted_pairs (naive_matches pred pub))
        preds pids)

(* ------------------------------------------------------------------ *)
(* Equivalence with the pre-rewrite list-slot implementation
   (Pf_difftest.Predicate_ref): the cache-flat index must be
   byte-identical — same pids, same packed pairs in the same order, same
   probe/hit counter totals — including across re-interning churn (which
   must not perturb anything) and mid-sequence growth (which forces a
   flat-image rebuild between documents). *)

module Pref = Pf_difftest.Predicate_ref

(* like [pred_gen] but a third of the absolute predicates carry attribute
   constraints, so the constraint-bitmap path is exercised *)
let cpred_gen =
  let open QCheck2 in
  let constraint_gen =
    Gen.(
      Gen_helpers.attr_name_gen >>= fun attr ->
      oneofl Pf_xpath.Ast.[ Eq; Ne; Ge; Lt ] >>= fun cmp ->
      int_range 0 3 >>= fun v ->
      return { Predicate.attr; cmp; value = Pf_xpath.Ast.Int v })
  in
  Gen.(
    oneof
      [
        pred_gen;
        pred_gen;
        (Gen_helpers.tag_gen >>= fun t ->
         list_size (int_range 1 2) constraint_gen >>= fun cs ->
         oneofl [ Predicate.Eq; Predicate.Ge ] >>= fun op ->
         int_range 1 4 >>= fun v ->
         return (Predicate.Absolute { tag = Predicate.tagvar ~constraints:cs t; op; v }));
      ])

let pubs_of_docs docs =
  List.concat_map
    (fun d -> List.map Publication.of_path (Pf_xml.Path.of_document d))
    docs

let agree idx res rdx rres pub =
  Predicate_index.run idx res pub;
  Pref.run rdx rres pub;
  Predicate_index.matched_count res = Pref.matched_count rres
  && List.for_all
       (fun pid ->
         Predicate_index.is_matched res pid = Pref.is_matched rres pid
         && Predicate_index.get_packed res pid = Pref.get_packed rres pid)
       (List.init (Predicate_index.size idx) Fun.id)

let equiv_print (batch1, batch2, docs) =
  Format.asprintf "%a then %a on %d docs" Predicate.pp_list batch1 Predicate.pp_list
    batch2 (List.length docs)

let prop_flat_agrees_with_listslot =
  let open QCheck2 in
  Test.make ~name:"flat index = list-slot reference (with churn)" ~count:600
    ~print:equiv_print
    Gen.(
      triple
        (list_size (int_range 1 5) cpred_gen)
        (list_size (int_range 0 4) cpred_gen)
        (list_size (int_range 1 3) Gen_helpers.doc_gen))
    (fun (batch1, batch2, docs) ->
      let m_new = Predicate_index.make_metrics () in
      let m_old = Pref.make_metrics () in
      let idx = Predicate_index.create ~metrics:m_new () in
      let rdx = Pref.create ~metrics:m_old () in
      let pids1 = List.map (Predicate_index.intern idx) batch1 in
      let rpids1 = List.map (Pref.intern rdx) batch1 in
      let res = Predicate_index.create_results () in
      let rres = Pref.create_results () in
      let pubs = pubs_of_docs docs in
      let k = List.length pubs / 2 in
      let before = List.filteri (fun i _ -> i < k) pubs in
      let after = List.filteri (fun i _ -> i >= k) pubs in
      pids1 = rpids1
      && List.for_all (agree idx res rdx rres) before
      && begin
           (* churn: new predicates force a rebuild before the next run;
              re-interning existing ones must change nothing (same pids,
              no divergence) *)
           let pids2 = List.map (Predicate_index.intern idx) batch2 in
           let rpids2 = List.map (Pref.intern rdx) batch2 in
           let again1 = List.map (Predicate_index.intern idx) batch1 in
           let ragain1 = List.map (Pref.intern rdx) batch1 in
           pids2 = rpids2 && again1 = pids1 && ragain1 = rpids1
         end
      && List.for_all (agree idx res rdx rres) after
      && Pf_obs.Counter.get m_new.Predicate_index.probes
         = Pf_obs.Counter.get m_old.Pref.probes
      && Pf_obs.Counter.get m_new.Predicate_index.hits
         = Pf_obs.Counter.get m_old.Pref.hits)

let prop_run_batch_agrees =
  let open QCheck2 in
  Test.make ~name:"run_batch = iterated reference runs" ~count:400
    ~print:(fun (preds, docs) ->
      Format.asprintf "%a on %d docs" Predicate.pp_list preds (List.length docs))
    Gen.(
      pair
        (list_size (int_range 1 6) cpred_gen)
        (list_size (int_range 1 3) Gen_helpers.doc_gen))
    (fun (preds, docs) ->
      let m_new = Predicate_index.make_metrics () in
      let m_old = Pref.make_metrics () in
      let idx = Predicate_index.create ~metrics:m_new () in
      let rdx = Pref.create ~metrics:m_old () in
      let pids = List.map (Predicate_index.intern idx) preds in
      let rpids = List.map (Pref.intern rdx) preds in
      let pubs = Array.of_list (pubs_of_docs docs) in
      let n = Array.length pubs in
      let ress = Array.init n (fun _ -> Predicate_index.create_results ()) in
      Predicate_index.run_batch idx ress pubs;
      let rres = Pref.create_results () in
      pids = rpids
      && Array.for_all Fun.id
           (Array.mapi
              (fun i pub ->
                Pref.run rdx rres pub;
                Predicate_index.matched_count ress.(i) = Pref.matched_count rres
                && List.for_all
                     (fun pid ->
                       Predicate_index.is_matched ress.(i) pid
                       = Pref.is_matched rres pid
                       && Predicate_index.get_packed ress.(i) pid
                          = Pref.get_packed rres pid)
                     (List.init (Predicate_index.size idx) Fun.id))
              pubs)
      && Pf_obs.Counter.get m_new.Predicate_index.probes
         = Pf_obs.Counter.get m_old.Pref.probes
      && Pf_obs.Counter.get m_new.Predicate_index.hits
         = Pf_obs.Counter.get m_old.Pref.hits)

let () =
  Alcotest.run "predicate_index"
    [
      ( "interning",
        [
          Alcotest.test_case "dedup" `Quick test_intern_dedup;
          Alcotest.test_case "constraints distinguish" `Quick test_intern_constraints_distinct;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "sharing example (Fig 1)" `Quick test_shared_predicate;
        ] );
      ( "matching",
        [
          Alcotest.test_case "absolute" `Quick test_absolute_matching;
          Alcotest.test_case "relative" `Quick test_relative_matching;
          Alcotest.test_case "relative order" `Quick test_relative_order_matters;
          Alcotest.test_case "end-of-path" `Quick test_end_of_path_matching;
          Alcotest.test_case "length" `Quick test_length_matching;
          Alcotest.test_case "Table 1" `Quick test_table_1;
          Alcotest.test_case "epoch reset" `Quick test_epoch_reset;
          Alcotest.test_case "inline constraints" `Quick test_inline_constraints;
        ] );
      ( "properties",
        List.map Gen_helpers.to_alcotest
          [
            prop_matching_agrees_with_naive;
            prop_flat_agrees_with_listslot;
            prop_run_batch_agrees;
          ] );
    ]
