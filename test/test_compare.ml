(* Bench_compare: the regression gate over two BENCH_results.json
   documents — metric classification, thresholds, host comparability. *)

module J = Pf_obs.Json
module C = Pf_bench.Bench_compare

(* A miniature results document in the predfilter-bench/1 schema; the
   interesting leaves mirror what bench/main.exe records. *)
let doc ?(cores = 1) ?(p99 = 300_000) ?(ms = 10.) ?(docs_per_s = 8_000.)
    ?(hit_ratio = 0.95) ?(identical = true) ?(minor_words = 1e6) () =
  J.Obj
    [
      "schema", J.String "predfilter-bench/1";
      "scale", J.String "scaled";
      "seed", J.Int 7;
      ( "experiments",
        J.Obj
          [
            ( "path-cache",
              J.Obj
                [
                  "hardware_cores", J.Int cores;
                  "shard_mode", J.String "doc+expr";
                  ( "nitf",
                    J.Obj
                      [
                        ( "cached",
                          J.Obj
                            [
                              "ms", J.Float ms;
                              "docs_per_s", J.Float docs_per_s;
                              "hit_ratio", J.Float hit_ratio;
                              "minor_words", J.Float minor_words;
                              "identical_matches", J.Bool identical;
                              ( "latency_ns",
                                J.Obj
                                  [
                                    "count", J.Int 80;
                                    "p50", J.Int 90_000;
                                    "p99", J.Int p99;
                                  ] );
                            ] );
                      ] );
                ] );
          ] );
    ]

let check_ok msg expected v =
  Alcotest.(check bool) msg expected (C.ok v);
  if not expected then
    Alcotest.(check bool) (msg ^ ": something was reported") true
      (v.C.failures <> [] || v.C.incomparable <> [])

let test_identical () =
  let d = doc () in
  let v = C.compare_json d d in
  check_ok "identical runs pass" true v;
  Alcotest.(check (list string)) "no failures" [] v.C.failures;
  Alcotest.(check (list string)) "no incomparability" [] v.C.incomparable

let test_p99_regression () =
  (* doubled p99 must trip the default 30% gate *)
  let v = C.compare_json (doc ()) (doc ~p99:600_000 ()) in
  check_ok "p99 regression fails" false v;
  Alcotest.(check bool) "failure names the leaf" true
    (List.exists
       (fun line ->
         String.length line > 0
         &&
         let has sub =
           let n = String.length sub and m = String.length line in
           let rec go i = i + n <= m && (String.sub line i n = sub || go (i + 1)) in
           go 0
         in
         has "latency_ns/p99")
       v.C.failures)

let test_within_threshold () =
  (* +20% sits inside the default 30% band; improvements never gate *)
  check_ok "small drift passes" true (C.compare_json (doc ()) (doc ~p99:360_000 ()));
  check_ok "improvement passes" true
    (C.compare_json (doc ()) (doc ~p99:100_000 ~ms:5. ~docs_per_s:16_000. ()));
  (* tighter threshold catches the same drift *)
  check_ok "tight threshold catches it" false
    (C.compare_json ~threshold:0.10 (doc ()) (doc ~p99:360_000 ()))

let test_throughput_regression () =
  (* docs_per_s is higher-is-better *)
  check_ok "throughput drop fails" false
    (C.compare_json (doc ()) (doc ~docs_per_s:4_000. ()))

let test_must_hold () =
  (* a broken identity check gates no matter what *)
  let v =
    C.compare_json ~gate_timing:false (doc ()) (doc ~identical:false ())
  in
  check_ok "identity break fails even without timing gate" false v

let test_host_mismatch () =
  let v = C.compare_json (doc ~cores:1 ()) (doc ~cores:8 ()) in
  Alcotest.(check bool) "core-count change is incomparable" true
    (v.C.incomparable <> []);
  Alcotest.(check bool) "not ok" false (C.ok v)

let test_gate_timing_off () =
  (* across hosts, timing regressions downgrade to warnings but the
     scale-free metrics still gate *)
  let old_d = doc ~cores:1 () in
  let timing_worse = doc ~cores:8 ~p99:900_000 ~ms:40. () in
  let v = C.compare_json ~gate_timing:false old_d timing_worse in
  Alcotest.(check (list string)) "timing not gated" [] v.C.failures;
  Alcotest.(check bool) "but warned about" true (v.C.warnings <> []);
  let free_worse = doc ~cores:8 ~hit_ratio:0.4 ~minor_words:3e6 () in
  let v = C.compare_json ~gate_timing:false old_d free_worse in
  Alcotest.(check bool) "hit ratio still gates" true
    (List.exists
       (fun line ->
         let has sub =
           let n = String.length sub and m = String.length line in
           let rec go i = i + n <= m && (String.sub line i n = sub || go (i + 1)) in
           go 0
         in
         has "hit_ratio")
       v.C.failures);
  Alcotest.(check bool) "allocation still gates" true
    (List.exists
       (fun line ->
         let has sub =
           let n = String.length sub and m = String.length line in
           let rec go i = i + n <= m && (String.sub line i n = sub || go (i + 1)) in
           go 0
         in
         has "minor_words")
       v.C.failures)

let test_run_exit_codes () =
  let write d =
    let path = Filename.temp_file "pf_compare" ".json" in
    let oc = open_out path in
    output_string oc (J.to_string d);
    close_out oc;
    path
  in
  let old_p = write (doc ()) in
  let bad_p = write (doc ~p99:900_000 ()) in
  let alien_p = write (doc ~cores:8 ()) in
  let missing_p = Filename.temp_file "pf_compare" ".json" in
  Sys.remove missing_p;
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove [ old_p; bad_p; alien_p ])
    (fun () ->
      Alcotest.(check int) "clean run exits 0" 0 (C.run old_p old_p);
      Alcotest.(check int) "regression exits 1" 1 (C.run old_p bad_p);
      Alcotest.(check int) "unreadable exits 2" 2 (C.run old_p missing_p);
      Alcotest.(check int) "host mismatch exits 3" 3 (C.run old_p alien_p);
      Alcotest.(check int) "host mismatch ungated exits 0" 0
        (C.run ~gate_timing:false old_p alien_p))

let () =
  Alcotest.run "compare"
    [
      ( "compare",
        [
          Alcotest.test_case "identical" `Quick test_identical;
          Alcotest.test_case "p99 regression" `Quick test_p99_regression;
          Alcotest.test_case "threshold band" `Quick test_within_threshold;
          Alcotest.test_case "throughput regression" `Quick test_throughput_regression;
          Alcotest.test_case "identity invariant" `Quick test_must_hold;
          Alcotest.test_case "host mismatch" `Quick test_host_mismatch;
          Alcotest.test_case "gate-timing off" `Quick test_gate_timing_off;
          Alcotest.test_case "run exit codes" `Quick test_run_exit_codes;
        ] );
    ]
