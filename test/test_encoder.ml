(* Tests for the XPE -> ordered predicate encoding (Section 3.2). The
   paper's three mapping tables (simple XPEs, wildcards, descendants) are
   transcribed verbatim as test vectors. *)

open Pf_core

let enc_string src =
  Format.asprintf "%a" Predicate.pp_list
    (Array.to_list (Encoder.encode_string src).Encoder.preds)

let check src expected =
  Alcotest.(check string) src expected (enc_string src)

(* Table "Simple XPEs" (s1-s3) *)
let test_simple_table () =
  check "/a/b/b" "(p_a,=,1) |-> (d(p_a,p_b),=,1) |-> (d(p_b,p_b),=,1)";
  check "a" "(p_a,>=,1)";
  check "a/a/b/c" "(d(p_a,p_a),=,1) |-> (d(p_a,p_b),=,1) |-> (d(p_b,p_c),=,1)"

(* Table "Wildcards in XPEs" (s4-s11) *)
let test_wildcard_table () =
  check "/a/*/*/b" "(p_a,=,1) |-> (d(p_a,p_b),=,3)";
  check "/a/b/*/*" "(p_a,=,1) |-> (d(p_a,p_b),=,1) |-> (p_b-|,>=,2)";
  check "/*/a/b" "(p_a,=,2) |-> (d(p_a,p_b),=,1)";
  check "/*/*/*/*" "(length,>=,4)";
  check "a/b/*/*" "(d(p_a,p_b),=,1) |-> (p_b-|,>=,2)";
  check "*/*/a/*/b" "(p_a,>=,3) |-> (d(p_a,p_b),=,2)";
  check "a/*/*/b/c" "(d(p_a,p_b),=,3) |-> (d(p_b,p_c),=,1)";
  check "*/*/*/*" "(length,>=,4)"

(* Table "Descendant operator in XPEs" (s12-s15) *)
let test_descendant_table () =
  check "/a//b/c" "(p_a,=,1) |-> (d(p_a,p_b),>=,1) |-> (d(p_b,p_c),=,1)";
  check "/*/b//c/*" "(p_b,=,2) |-> (d(p_b,p_c),>=,1) |-> (p_c-|,>=,1)";
  check "a/b//c" "(d(p_a,p_b),=,1) |-> (d(p_b,p_c),>=,1)";
  check "*/a/*/b//c/*/*"
    "(p_a,>=,2) |-> (d(p_a,p_b),=,2) |-> (d(p_b,p_c),>=,1) |-> (p_c-|,>=,2)"

(* The order-dependence example from the end of Section 3.2 *)
let test_order_dependence () =
  check "a/c/*/a//c" "(d(p_a,p_c),=,1) |-> (d(p_c,p_a),=,2) |-> (d(p_a,p_c),>=,1)";
  check "a//c/*/a/c" "(d(p_a,p_c),>=,1) |-> (d(p_c,p_a),=,2) |-> (d(p_a,p_c),=,1)"

(* Edge cases exercising the first-tag rule *)
let test_first_tag_rule () =
  check "//a" "(p_a,>=,1)";
  check "/a" "(p_a,=,1)";
  check "/*//a" "(p_a,>=,2)";
  check "//*/a" "(p_a,>=,2)";
  check "a/*/*" "(p_a-|,>=,2)";
  check "a//*" "(p_a-|,>=,1)";
  check "*//a" "(p_a,>=,2)";
  check "/a//*/b" "(p_a,=,1) |-> (d(p_a,p_b),>=,2)";
  check "a/*//b" "(d(p_a,p_b),>=,2)"

let test_mixed_descendant_distance () =
  (* the proof's k-u+1 distance: wildcards between tags still count under >= *)
  check "/a/*//*/b" "(p_a,=,1) |-> (d(p_a,p_b),>=,3)";
  check "a//*//b" "(d(p_a,p_b),>=,2)"

let test_length_only () =
  check "*" "(length,>=,1)";
  check "/*" "(length,>=,1)";
  check "//*" "(length,>=,1)";
  check "*//*" "(length,>=,2)"

(* Attribute constraints attach to the first predicate occurrence of the
   filtered tag's variable *)
let test_attr_constraints () =
  check "/a[@x = 3]" "(p_a[@x=3],=,1)";
  check "/a[@x = 3]/b" "(p_a[@x=3],=,1) |-> (d(p_a,p_b),=,1)";
  check "a[@x = 3]/b" "(d(p_a[@x=3],p_b),=,1)";
  check "a/b[@y >= 2]" "(d(p_a,p_b[@y>=2]),=,1)";
  check "a/b[@y >= 2]/*" "(d(p_a,p_b[@y>=2]),=,1) |-> (p_b-|,>=,1)";
  (* two filters on one step are sorted into normal form *)
  check "a[@y = 2][@x = 1]/b" "(d(p_a[@x=1][@y=2],p_b),=,1)"

let test_step_vars () =
  let enc = Encoder.encode_string "/a/*/b//c" in
  let vars = enc.Encoder.step_vars in
  Alcotest.(check int) "4 steps" 4 (Array.length vars);
  (match vars.(0) with
  | Some (0, Encoder.First) -> ()
  | _ -> Alcotest.fail "step 0 should be var of predicate 0");
  Alcotest.(check bool) "wildcard has no var" true (vars.(1) = None);
  (match vars.(2) with
  | Some (1, Encoder.Second) -> ()
  | _ -> Alcotest.fail "step 2 should be second var of predicate 1");
  match vars.(3) with
  | Some (2, Encoder.Second) -> ()
  | _ -> Alcotest.fail "step 3 should be second var of predicate 2"

let test_unsupported () =
  (match Encoder.encode_string "a[b]/c" with
  | exception Encoder.Unsupported _ -> ()
  | _ -> Alcotest.fail "nested filter should be Unsupported here");
  match Encoder.encode (Pf_xpath.Parser.parse "/*[@x = 1]/a") with
  | exception Encoder.Unsupported _ -> ()
  | _ -> Alcotest.fail "attr filter on wildcard should be Unsupported"

(* properties *)

let prop_nonempty =
  QCheck2.Test.make ~name:"encoding is non-empty and bounded" ~count:1000
    ~print:Gen_helpers.path_print Gen_helpers.single_path_attr_gen (fun p ->
      let enc = Encoder.encode p in
      let n = Array.length enc.Encoder.preds in
      n >= 1 && n <= Pf_xpath.Ast.num_steps p + 1)

let prop_tag_steps_have_vars =
  QCheck2.Test.make ~name:"every tag step is represented by a variable" ~count:1000
    ~print:Gen_helpers.path_print Gen_helpers.single_path_attr_gen (fun p ->
      let enc = Encoder.encode p in
      let steps = Array.of_list p.Pf_xpath.Ast.steps in
      Array.for_all
        (fun i ->
          match steps.(i).Pf_xpath.Ast.test, enc.Encoder.step_vars.(i) with
          | Pf_xpath.Ast.Tag _, Some _ -> true
          | Pf_xpath.Ast.Tag _, None -> false
          | Pf_xpath.Ast.Wildcard, None -> true
          | Pf_xpath.Ast.Wildcard, Some _ -> false)
        (Array.init (Array.length steps) Fun.id))

(* the chaining invariant the occurrence algorithm relies on: adjacent
   predicates share a tag variable *)
let prop_adjacent_share_var =
  QCheck2.Test.make ~name:"adjacent predicates chain on a shared variable" ~count:1000
    ~print:Gen_helpers.path_print Gen_helpers.single_path_gen (fun p ->
      let enc = Encoder.encode p in
      let preds = enc.Encoder.preds in
      let second_name = function
        | Predicate.Absolute { tag; _ } | Predicate.End_of_path { tag; _ } ->
          Some tag.Predicate.name
        | Predicate.Relative { second; _ } -> Some second.Predicate.name
        | Predicate.Length _ -> None
      in
      let first_name = function
        | Predicate.Absolute { tag; _ } | Predicate.End_of_path { tag; _ } ->
          Some tag.Predicate.name
        | Predicate.Relative { first; _ } -> Some first.Predicate.name
        | Predicate.Length _ -> None
      in
      let ok = ref true in
      for i = 1 to Array.length preds - 1 do
        match second_name preds.(i - 1), first_name preds.(i) with
        | Some a, Some b when String.equal a b -> ()
        | _ -> ok := false
      done;
      !ok)

let prop_stable_under_reparse =
  QCheck2.Test.make ~name:"encoding is stable under print/parse" ~count:800
    ~print:Gen_helpers.path_print Gen_helpers.single_path_attr_gen (fun p ->
      let enc1 = Encoder.encode p in
      let enc2 = Encoder.encode (Pf_xpath.Parser.parse (Pf_xpath.Parser.to_string p)) in
      Array.length enc1.Encoder.preds = Array.length enc2.Encoder.preds
      && Array.for_all2 Predicate.equal enc1.Encoder.preds enc2.Encoder.preds)

let () =
  let qt = List.map Gen_helpers.to_alcotest in
  Alcotest.run "encoder"
    [
      ( "paper tables",
        [
          Alcotest.test_case "simple XPEs (s1-s3)" `Quick test_simple_table;
          Alcotest.test_case "wildcards (s4-s11)" `Quick test_wildcard_table;
          Alcotest.test_case "descendants (s12-s15)" `Quick test_descendant_table;
          Alcotest.test_case "order dependence" `Quick test_order_dependence;
        ] );
      ( "rules",
        [
          Alcotest.test_case "first-tag rule" `Quick test_first_tag_rule;
          Alcotest.test_case "mixed descendant distances" `Quick test_mixed_descendant_distance;
          Alcotest.test_case "length-only" `Quick test_length_only;
          Alcotest.test_case "attribute constraints" `Quick test_attr_constraints;
          Alcotest.test_case "step variables" `Quick test_step_vars;
          Alcotest.test_case "unsupported forms" `Quick test_unsupported;
        ] );
      ( "properties",
        qt
          [
            prop_nonempty;
            prop_tag_steps_have_vars;
            prop_adjacent_share_var;
            prop_stable_under_reparse;
          ] );
    ]
