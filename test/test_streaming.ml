(* The streaming match path (Engine.Stream) never allocates a tree: paths
   are matched straight off the SAX event stream through arena-refilled
   publications. Its contract is byte-identical match sets to the tree
   oracle — under subscription churn, across the paper's DTD workloads,
   sequentially and through both service shard modes — and SAX parse
   errors surfacing with the same positions the tree parser reports. *)

open QCheck2
module E = Pf_core.Engine
module Service = Pf_service
module Dtd = Pf_workload.Dtd
module Xml_gen = Pf_workload.Xml_gen
module Xpath_gen = Pf_workload.Xpath_gen
module Presets = Pf_workload.Presets

(* ------------------------------------------------------------------ *)
(* Workload pools: a handful of documents and queries per DTD world,
   generated once (deterministic in the preset seeds). Queries include
   attribute filters so the constrained path (postponed checks, attr
   cache keys) is exercised, not just structure. *)

let worlds = [ "nitf"; "psd"; "auction" ]

let dtd_of name =
  match Dtd.by_name name with Some d -> d | None -> failwith ("no DTD " ^ name)

let pool name =
  let dtd = dtd_of name in
  let docs =
    Xml_gen.generate_many dtd
      { (Presets.documents_for name) with Xml_gen.seed = 1234 }
      6
  in
  let queries filters seed =
    Xpath_gen.generate dtd
      {
        Presets.paper_queries with
        Xpath_gen.count = 25;
        filters_per_path = filters;
        seed;
      }
  in
  let exprs = queries 0 11 @ queries 1 12 in
  Array.of_list docs, Array.of_list exprs

let pools = List.map (fun w -> w, pool w) worlds

(* ------------------------------------------------------------------ *)
(* Churn scripts: interleaved subscribe / unsubscribe / submit over a
   world's pools, by index — cheap to generate and print. *)

type op = Subscribe of int | Unsubscribe of int | Submit of int

let ops_gen =
  let open Gen in
  oneofl worlds >>= fun world ->
  let op =
    frequency
      [
        3, (int_range 0 49 >|= fun i -> Subscribe i);
        1, (int_range 0 20 >|= fun k -> Unsubscribe k);
        4, (int_range 0 5 >|= fun i -> Submit i);
      ]
  in
  list_size (int_range 8 30) op >|= fun ops -> world, ops

let ops_print (world, ops) =
  world ^ ": "
  ^ String.concat "; "
      (List.map
         (function
           | Subscribe i -> Printf.sprintf "sub %d" i
           | Unsubscribe k -> Printf.sprintf "unsub #%d" k
           | Submit i -> Printf.sprintf "doc %d" i)
         ops)

(* Both runners pick the unsubscribe target the same way: k indexes the
   accepted sids, newest first. *)
let pick sids n k = List.nth sids (k mod n)

(* Drive one engine through a script. [matcher] is how a submitted
   document reaches the engine: the tree oracle gets the parsed tree, the
   streaming runs get the serialized bytes. *)
let run_engine ~create ~matcher (world, ops) =
  let docs, exprs = List.assoc world pools in
  let eng = create () in
  let sids = ref [] and n = ref 0 in
  let results = ref [] in
  List.iter
    (function
      | Subscribe i ->
        sids := E.add eng exprs.(i mod Array.length exprs) :: !sids;
        incr n
      | Unsubscribe k -> if !n > 0 then ignore (E.remove eng (pick !sids !n k))
      | Submit i -> results := matcher eng docs.(i mod Array.length docs) :: !results)
    ops;
  List.rev !results

let tree_run script =
  run_engine ~create:(fun () -> E.create ()) ~matcher:E.match_document script

let source_of doc = Pf_xml.Print.to_string ~decl:false doc

(* streaming = tree, sequentially, with churn between documents *)
let streaming_equals_tree =
  Test.make ~count:60 ~name:"stream: match sets = tree oracle under churn"
    ~print:ops_print ops_gen (fun script ->
      let expected = tree_run script in
      let stream =
        run_engine
          ~create:(fun () -> E.create ())
          ~matcher:(fun e d -> E.match_stream e (source_of d))
          script
      in
      let scan =
        run_engine
          ~create:(fun () -> E.create ())
          ~matcher:(fun e d -> E.match_scan e (source_of d))
          script
      in
      if stream <> expected then Test.fail_report "streaming diverged from tree"
      else if scan <> expected then Test.fail_report "scan diverged from tree"
      else true)

(* streaming + cross-document path cache: churn invalidates epochs, the
   arena refills publications — cached results must stay identical *)
let streaming_cached_equals_tree =
  Test.make ~count:40 ~name:"stream: path cache on = tree oracle under churn"
    ~print:ops_print ops_gen (fun script ->
      let expected = tree_run script in
      let got =
        run_engine
          ~create:(fun () -> E.create ~path_cache:true ())
          ~matcher:(fun e d -> E.match_stream e (source_of d))
          script
      in
      got = expected)

(* ------------------------------------------------------------------ *)
(* Service: the raw-payload path hands bytes to the worker domains and the
   streaming engines match off the event stream. Both shard modes at
   1/2/4 domains must equal the sequential tree engine. *)

let run_service ~mode ~domains (world, ops) =
  let docs, exprs = List.assoc world pools in
  let svc =
    Service.create ~mode ~domains ~batch:4
      (E.filter ~stream:E.Stream () :> Pf_intf.filter)
  in
  let n_docs = List.length (List.filter (function Submit _ -> true | _ -> false) ops) in
  let results = Array.make n_docs [] in
  let next = ref 0 in
  let sids = ref [] and n = ref 0 in
  List.iter
    (function
      | Subscribe i ->
        sids := Service.subscribe svc exprs.(i mod Array.length exprs) :: !sids;
        incr n
      | Unsubscribe k -> if !n > 0 then ignore (Service.unsubscribe svc (pick !sids !n k))
      | Submit i ->
        let slot = !next in
        incr next;
        Service.submit_raw svc (source_of docs.(i mod Array.length docs)) (fun r ->
            results.(slot) <- r))
    ops;
  Service.drain svc;
  Service.shutdown svc;
  Array.to_list results

let service_streaming_equals_tree =
  Test.make ~count:12
    ~name:"stream: service raw path, both modes x 1/2/4 domains = tree oracle"
    ~print:ops_print ops_gen (fun script ->
      let expected = tree_run script in
      List.for_all
        (fun (mode, domains) ->
          let got = run_service ~mode ~domains script in
          if got <> expected then
            Test.fail_reportf "mode=%s domains=%d diverged"
              (Service.mode_name mode) domains
          else true)
        [
          Service.Doc, 1; Service.Doc, 2; Service.Doc, 4;
          Service.Expr, 1; Service.Expr, 2; Service.Expr, 4;
        ])

(* ------------------------------------------------------------------ *)
(* SAX parse errors mid-stream: the streaming engine consumes events as
   they are produced, so a malformed tail is hit after earlier paths were
   already matched — the raised position must be exactly the tree
   parser's. *)

let malformed =
  [
    "<a><b></a>";  (* mismatched end tag *)
    "<a><b/>";  (* truncated: a never closes *)
    "<a><b x=1/></a>";  (* unquoted attribute *)
    "<a>text<b></b><c attr=\"v\"></d></a>";  (* error after matchable paths *)
    "";  (* empty input *)
  ]

let test_error_positions () =
  List.iter
    (fun src ->
      let from_tree =
        try
          ignore (Pf_xml.Sax.parse_document src);
          None
        with Pf_xml.Sax.Parse_error (pos, msg) -> Some (pos, msg)
      in
      let eng = E.create () in
      ignore (E.add_string eng "/a/b");
      let from_stream =
        try
          ignore (E.match_stream eng src);
          None
        with Pf_xml.Sax.Parse_error (pos, msg) -> Some (pos, msg)
      in
      match from_tree, from_stream with
      | None, None -> Alcotest.failf "input unexpectedly parsed: %s" src
      | Some (p1, m1), Some (p2, m2) ->
        Alcotest.(check bool)
          (Printf.sprintf "same error for %S (tree %s, stream %s)" src m1 m2)
          true
          (p1 = p2 && m1 = m2)
      | Some _, None -> Alcotest.failf "stream accepted what tree rejected: %s" src
      | None, Some _ -> Alcotest.failf "stream rejected what tree accepted: %s" src)
    malformed

let test_service_error_delivery () =
  (* a malformed streamed document delivers [] and the first Parse_error
     surfaces at shutdown; well-formed documents around it are unaffected *)
  let svc =
    Service.create ~domains:2 (E.filter ~stream:E.Stream () :> Pf_intf.filter)
  in
  let sid = Service.subscribe_string svc "/a/b" in
  let good = ref [] and bad = ref [ -1 ] in
  Service.submit_raw svc "<a><b/></a>" (fun r -> good := r);
  Service.submit_raw svc "<a><b></a>" (fun r -> bad := r);
  Service.drain svc;
  Alcotest.(check (list int)) "well-formed document matched" [ sid ] !good;
  Alcotest.(check (list int)) "malformed document delivered []" [] !bad;
  Alcotest.check_raises "parse error re-raised at shutdown"
    (Pf_xml.Sax.Parse_error
       ( (try
            ignore (Pf_xml.Sax.parse_document "<a><b></a>");
            assert false
          with Pf_xml.Sax.Parse_error (pos, _) -> pos),
         (try
            ignore (Pf_xml.Sax.parse_document "<a><b></a>");
            assert false
          with Pf_xml.Sax.Parse_error (_, msg) -> msg) ))
    (fun () -> Service.shutdown svc)

(* ------------------------------------------------------------------ *)

let qcheck = Gen_helpers.to_alcotest

let () =
  Alcotest.run "streaming"
    [
      ( "equivalence",
        [
          qcheck streaming_equals_tree;
          qcheck streaming_cached_equals_tree;
          qcheck service_streaming_equals_tree;
        ] );
      ( "errors",
        [
          Alcotest.test_case "SAX error positions identical mid-stream" `Quick
            test_error_positions;
          Alcotest.test_case "service delivers [] and re-raises at shutdown" `Quick
            test_service_error_delivery;
        ] );
    ]
