(* Tests for the XML substrate: SAX parser, tree model, path extraction,
   serialization. *)

open Pf_xml

let parse = Sax.parse_document

let check_tags msg expected doc =
  let rec tags (e : Tree.element) =
    e.Tree.tag :: List.concat_map tags (Tree.element_children e)
  in
  Alcotest.(check (list string)) msg expected (tags doc.Tree.root)

(* ------------------------------------------------------------------ *)
(* Parser unit tests *)

let test_simple () =
  let doc = parse "<a><b/><c></c></a>" in
  check_tags "pre-order tags" [ "a"; "b"; "c" ] doc

let test_attributes () =
  let doc = parse {|<a x="1" y='two'><b z="a&amp;b"/></a>|} in
  Alcotest.(check (option string)) "x" (Some "1") (Tree.attr doc.Tree.root "x");
  Alcotest.(check (option string)) "y" (Some "two") (Tree.attr doc.Tree.root "y");
  (match Tree.element_children doc.Tree.root with
  | [ b ] -> Alcotest.(check (option string)) "z entity" (Some "a&b") (Tree.attr b "z")
  | _ -> Alcotest.fail "expected one child");
  Alcotest.(check (option string)) "missing" None (Tree.attr doc.Tree.root "w")

let test_text_and_entities () =
  let doc = parse "<a>x &lt;&gt;&amp;&apos;&quot; y</a>" in
  match doc.Tree.root.Tree.children with
  | [ Tree.Text t ] -> Alcotest.(check string) "decoded" "x <>&'\" y" t
  | _ -> Alcotest.fail "expected one text node"

let test_numeric_entities () =
  let doc = parse "<a>&#65;&#x42;&#233;</a>" in
  match doc.Tree.root.Tree.children with
  | [ Tree.Text t ] -> Alcotest.(check string) "decoded" "AB\xc3\xa9" t
  | _ -> Alcotest.fail "expected one text node"

let test_cdata () =
  let doc = parse "<a><![CDATA[<raw> & stuff]]></a>" in
  match doc.Tree.root.Tree.children with
  | [ Tree.Text t ] -> Alcotest.(check string) "cdata" "<raw> & stuff" t
  | _ -> Alcotest.fail "expected one text node"

let test_comments_and_pis () =
  let doc = parse "<?xml version=\"1.0\"?><!-- hello --><a><?pi data?><!--x--><b/></a>" in
  check_tags "structure survives" [ "a"; "b" ] doc

let test_doctype () =
  let doc =
    parse
      {|<!DOCTYPE a [ <!ELEMENT a (b)> <!ENTITY e "v"> ]><a><b/></a>|}
  in
  check_tags "doctype skipped" [ "a"; "b" ] doc

let test_whitespace_dropped () =
  let doc = parse "<a>\n  <b/>\n  <c/>\n</a>" in
  Alcotest.(check int) "only element children" 2
    (List.length doc.Tree.root.Tree.children)

let test_deep_nesting () =
  let deep = String.concat "" (List.init 200 (fun _ -> "<a>")) ^ String.concat "" (List.init 200 (fun _ -> "</a>")) in
  let doc = parse deep in
  Alcotest.(check int) "depth" 200 (Tree.depth doc);
  Alcotest.(check int) "count" 200 (Tree.count_elements doc)

let expect_error msg s =
  match parse s with
  | exception Sax.Parse_error _ -> ()
  | _ -> Alcotest.fail (msg ^ ": expected a parse error")

let test_errors () =
  expect_error "mismatched" "<a><b></a></b>";
  expect_error "unclosed" "<a><b>";
  expect_error "no root" "   ";
  expect_error "stray end" "</a>";
  expect_error "bad entity" "<a>&bogus;</a>";
  expect_error "unterminated attr" "<a x=\"1><b/></a>";
  expect_error "lt in attr" "<a x=\"<\"/>";
  expect_error "two roots" "<a/><b/>";
  expect_error "unterminated comment" "<a><!-- foo</a>";
  expect_error "unterminated cdata" "<a><![CDATA[x</a>"

(* Error paths, with exact positions: the reported (line, column) is part
   of the parser's contract — error messages that point at the wrong place
   are almost as bad as no message. *)
let expect_error_at name ~line ~column ~msg s =
  match parse s with
  | exception Sax.Parse_error (pos, m) ->
    Alcotest.(check string) (name ^ ": message") msg m;
    Alcotest.(check (pair int int))
      (name ^ ": position") (line, column) (pos.Sax.line, pos.Sax.column)
  | _ -> Alcotest.fail (name ^ ": expected a parse error")

let test_error_unterminated_tags () =
  expect_error_at "unclosed element" ~line:1 ~column:7 ~msg:"unclosed element <b>"
    "<a><b>";
  expect_error_at "eof in start tag" ~line:1 ~column:3 ~msg:"expected a name" "<a";
  expect_error_at "eof before attr value" ~line:1 ~column:6
    ~msg:"expected quoted attribute value" "<a x=";
  expect_error_at "eof in comment" ~line:1 ~column:8
    ~msg:{|unterminated construct, expected "-->"|} "<a><!-- foo</a>";
  expect_error_at "eof in cdata" ~line:1 ~column:13
    ~msg:{|unterminated construct, expected "]]>"|} "<a><![CDATA[x</a>";
  expect_error_at "eof in pi" ~line:1 ~column:3
    ~msg:{|unterminated construct, expected "?>"|} "<?pi";
  expect_error_at "eof in doctype" ~line:1 ~column:12 ~msg:"unterminated DOCTYPE"
    "<!DOCTYPE a"

let test_error_references () =
  expect_error_at "unknown entity" ~line:1 ~column:11 ~msg:"unknown entity &bogus;"
    "<a>&bogus;</a>";
  expect_error_at "bad character reference" ~line:1 ~column:9
    ~msg:"bad character reference &#zz;" "<a>&#zz;</a>";
  expect_error_at "unterminated character reference" ~line:1 ~column:5
    ~msg:{|unterminated construct, expected ";"|} "<a>&#12</a>";
  expect_error_at "bare ampersand" ~line:1 ~column:5
    ~msg:{|unterminated construct, expected ";"|} "<a>& b</a>"

let test_error_mismatched_tags () =
  expect_error_at "crossed nesting" ~line:1 ~column:11
    ~msg:"mismatched end tag </a>, expected </b>" "<a><b></a></b>";
  expect_error_at "position on line 3" ~line:3 ~column:5
    ~msg:"mismatched end tag </c>, expected </b>" "<a>\n<b>\n</c>\n</a>";
  expect_error_at "stray end tag" ~line:1 ~column:5 ~msg:"unexpected end tag </a>"
    "</a>";
  expect_error_at "no root" ~line:1 ~column:4 ~msg:"no root element" "   ";
  expect_error_at "empty input" ~line:1 ~column:1 ~msg:"no root element" "";
  expect_error_at "two roots" ~line:1 ~column:9 ~msg:"content after the root element"
    "<a/><b/>"

let test_error_attributes () =
  expect_error_at "missing =" ~line:1 ~column:5 ~msg:"expected '='" "<a x";
  expect_error_at "unquoted value" ~line:1 ~column:6
    ~msg:"expected quoted attribute value" "<a x=1/>";
  expect_error_at "unterminated value" ~line:1 ~column:10
    ~msg:"unterminated attribute value" "<a x=\"1/>";
  expect_error_at "unterminated value across lines" ~line:4 ~column:1
    ~msg:"unterminated attribute value" "<a>\n  <b x=\"y\n\n";
  expect_error_at "lt in value" ~line:1 ~column:7 ~msg:"'<' in attribute value"
    "<a x=\"<\"/>";
  expect_error_at "name starts with digit" ~line:1 ~column:2 ~msg:"expected a name"
    "<1a/>";
  expect_error_at "space before name" ~line:1 ~column:2 ~msg:"expected a name"
    "< a/>";
  expect_error_at "space before slash-gt" ~line:1 ~column:5 ~msg:"expected '>'"
    "<a / >"

let test_duplicate_attributes () =
  (* the parser keeps both occurrences in document order; lookups see the
     first (XML well-formedness would reject this, but filtering inputs are
     machine-generated and the lenient behavior is deterministic) *)
  let doc = parse "<a x=\"1\" x=\"2\"/>" in
  Alcotest.(check (list (pair string string)))
    "both kept" [ "x", "1"; "x", "2" ] doc.Tree.root.Tree.attrs;
  Alcotest.(check (option string)) "first wins" (Some "1") (Tree.attr doc.Tree.root "x")

let test_cdata_tricky () =
  (* "]]" inside CDATA, and "]]>" split across text *)
  let doc = parse "<a><![CDATA[x ]] y]]></a>" in
  (match doc.Tree.root.Tree.children with
  | [ Tree.Text t ] -> Alcotest.(check string) "brackets kept" "x ]] y" t
  | _ -> Alcotest.fail "expected one text node");
  let doc = parse "<a><![CDATA[]]]></a>" in
  match doc.Tree.root.Tree.children with
  | [ Tree.Text t ] -> Alcotest.(check string) "single bracket" "]" t
  | _ -> Alcotest.fail "expected one text node"

let test_utf8_passthrough () =
  let doc = parse "<a t=\"caf\xc3\xa9\">na\xc3\xafve</a>" in
  Alcotest.(check (option string)) "attr" (Some "caf\xc3\xa9") (Tree.attr doc.Tree.root "t");
  match doc.Tree.root.Tree.children with
  | [ Tree.Text t ] -> Alcotest.(check string) "text" "na\xc3\xafve" t
  | _ -> Alcotest.fail "expected one text node"

let test_text_content () =
  let doc = parse "<a> x <b>inner</b> y </a>" in
  Alcotest.(check string) "immediate text only, trimmed" "x  y"
    (Tree.text_content doc.Tree.root);
  (match Tree.element_children doc.Tree.root with
  | [ b ] -> Alcotest.(check string) "inner" "inner" (Tree.text_content b)
  | _ -> Alcotest.fail "one child expected");
  Alcotest.(check string) "empty" "" (Tree.text_content (Tree.element "e"))

let test_error_position () =
  match parse "<a>\n<b>\n</c>\n</a>" with
  | exception Sax.Parse_error (pos, _) ->
    Alcotest.(check int) "line" 3 pos.Sax.line
  | _ -> Alcotest.fail "expected error"

let test_event_order () =
  let events = ref [] in
  Sax.fold_events "<a x=\"1\"><b>t</b></a>" ~init:() ~f:(fun () ev ->
      events := ev :: !events);
  match List.rev !events with
  | [ Sax.Start_element ("a", [ ("x", "1") ]);
      Sax.Start_element ("b", []);
      Sax.Chars "t";
      Sax.End_element "b";
      Sax.End_element "a" ] -> ()
  | _ -> Alcotest.fail "unexpected event sequence"

(* ------------------------------------------------------------------ *)
(* Tree utilities *)

let test_tree_stats () =
  let doc = parse "<a><b><c/></b><b/></a>" in
  Alcotest.(check int) "count" 4 (Tree.count_elements doc);
  Alcotest.(check int) "depth" 3 (Tree.depth doc);
  Alcotest.(check bool) "leaf" true (Tree.is_leaf (Tree.element "x"));
  Alcotest.(check bool) "not leaf" false (Tree.is_leaf doc.Tree.root)

let test_tree_equal () =
  let d1 = parse "<a><b x=\"1\"/></a>" and d2 = parse "<a><b x=\"1\"></b></a>" in
  Alcotest.(check bool) "equal" true (Tree.equal d1 d2);
  let d3 = parse "<a><b x=\"2\"/></a>" in
  Alcotest.(check bool) "not equal" false (Tree.equal d1 d3)

(* ------------------------------------------------------------------ *)
(* Path extraction *)

let path_tags p = Path.tags p

let test_paths_simple () =
  let doc = parse "<a><b><c/><d/></b><e/></a>" in
  let paths = Path.of_document doc in
  Alcotest.(check (list (list string)))
    "three root-to-leaf paths"
    [ [ "a"; "b"; "c" ]; [ "a"; "b"; "d" ]; [ "a"; "e" ] ]
    (List.map path_tags paths)

let test_paths_single_element () =
  let paths = Path.of_document (parse "<a/>") in
  Alcotest.(check (list (list string))) "one path" [ [ "a" ] ] (List.map path_tags paths)

let test_occurrence_numbers () =
  (* the paper's Example 1: (a,b,c,a,b,c) -> a^1 b^1 c^1 a^2 b^2 c^2 *)
  let doc = parse "<a><b><c><a><b><c/></b></a></c></b></a>" in
  match Path.of_document doc with
  | [ p ] ->
    Alcotest.(check (list int))
      "occurrences" [ 1; 1; 1; 2; 2; 2 ]
      (Array.to_list (Array.map (fun s -> s.Path.occurrence) p.Path.steps))
  | _ -> Alcotest.fail "expected a single path"

let test_occurrence_reset_between_branches () =
  (* occurrence numbers are per path, not per document *)
  let doc = parse "<a><b/><b/></a>" in
  let occs =
    List.map
      (fun p -> (p.Path.steps.(1)).Path.occurrence)
      (Path.of_document doc)
  in
  Alcotest.(check (list int)) "each path has b^1" [ 1; 1 ] occs

let test_child_indices () =
  let doc = parse "<a><b><c/></b><b><c/><d/></b></a>" in
  let structs = List.map (fun p -> Array.to_list (Path.structure p)) (Path.of_document doc) in
  Alcotest.(check (list (list int)))
    "structure tuples"
    [ [ 1; 1; 1 ]; [ 1; 2; 1 ]; [ 1; 2; 2 ] ]
    structs

let test_path_attrs () =
  let doc = parse "<a x=\"1\"><b y=\"2\"/></a>" in
  match Path.of_document doc with
  | [ p ] ->
    Alcotest.(check (list (pair string string))) "root attrs" [ "x", "1" ] (p.Path.steps.(0)).Path.attrs;
    Alcotest.(check (list (pair string string))) "leaf attrs" [ "y", "2" ] (p.Path.steps.(1)).Path.attrs
  | _ -> Alcotest.fail "expected a single path"

let test_streaming_extraction () =
  let src = "<a x=\"1\"><b><c/><d/></b><e/></a>" in
  let via_tree = Path.of_document (parse src) in
  let via_stream = Path.of_string src in
  Alcotest.(check int) "same count" (List.length via_tree) (List.length via_stream);
  List.iter2
    (fun p1 p2 ->
      Alcotest.(check (list string)) "tags" (Path.tags p1) (Path.tags p2);
      Alcotest.(check (list int)) "structure"
        (Array.to_list (Path.structure p1))
        (Array.to_list (Path.structure p2)))
    via_tree via_stream

(* The documented best-effort divergence on mixed content (path.mli): the
   streaming extractor's [#text] on a {e non-leaf} step covers only the
   text preceding the emitted leaf, while tree extraction sees all of the
   element's immediate text. A leaf's own text is always complete in both
   modes. Pinned explicitly so the zero-copy rewrite cannot silently
   change either side; the agreeing forms are additionally pinned as a
   difftest corpus case (pin-mixed-content.case). *)
let step_text (s : Path.step) = List.assoc_opt "#text" s.Path.attrs

let test_mixed_content_divergence () =
  let src = "<a>pre<b>leaf</b>post</a>" in
  let via_tree = List.hd (Path.of_document (parse src)) in
  let via_stream = List.hd (Path.of_string src) in
  Alcotest.(check (option string))
    "leaf text, tree" (Some "leaf")
    (step_text via_tree.Path.steps.(1));
  Alcotest.(check (option string))
    "leaf text, stream" (Some "leaf")
    (step_text via_stream.Path.steps.(1));
  (* the mixed-content ancestor diverges: all immediate text vs only the
     text preceding the leaf *)
  Alcotest.(check (option string))
    "ancestor text, tree" (Some "prepost")
    (step_text via_tree.Path.steps.(0));
  Alcotest.(check (option string))
    "ancestor text, stream" (Some "pre")
    (step_text via_stream.Path.steps.(0))

let test_mixed_content_accumulates () =
  (* inter-element text accumulates: a later leaf sees the text runs
     before it, so once every text run precedes the last leaf the two
     modes agree on that leaf's path *)
  let src = "<r>x<b/>y<c/></r>" in
  let via_tree = Path.of_document (parse src) in
  let via_stream = Path.of_string src in
  match (via_tree, via_stream) with
  | [ tb; tc ], [ sb; sc ] ->
    Alcotest.(check (option string)) "tree root at b" (Some "xy") (step_text tb.Path.steps.(0));
    Alcotest.(check (option string)) "stream root at b" (Some "x") (step_text sb.Path.steps.(0));
    Alcotest.(check (option string)) "tree root at c" (Some "xy") (step_text tc.Path.steps.(0));
    Alcotest.(check (option string)) "stream root at c" (Some "xy") (step_text sc.Path.steps.(0))
  | _ -> Alcotest.fail "expected exactly two paths from each extractor"

let prop_streaming_agrees =
  QCheck2.Test.make ~name:"streaming path extraction = tree extraction" ~count:300
    ~print:Gen_helpers.doc_print Gen_helpers.doc_gen (fun doc ->
      let src = Print.to_string doc in
      let via_tree = Path.of_document (parse src) in
      let via_stream = Path.of_string src in
      List.length via_tree = List.length via_stream
      && List.for_all2
           (fun (p1 : Path.t) (p2 : Path.t) -> p1.Path.steps = p2.Path.steps)
           via_tree via_stream)

let test_of_tags () =
  let p = Path.of_tags [ "a"; "b"; "a" ] in
  Alcotest.(check int) "length" 3 (Path.length p);
  Alcotest.(check int) "second a occurrence" 2 (p.Path.steps.(2)).Path.occurrence

(* The lowest-level streaming driver: [Path.stream] hands out the raw
   per-depth step stack at each leaf end-tag. Its view must agree with
   tree extraction step-for-step — tags, occurrences, attributes and
   leaf text spans — including under inter-element whitespace, which the
   tree builder drops and the streaming trimmer must drop identically. *)
let test_stream_driver_agrees () =
  List.iter
    (fun src ->
      let sk = Path.create_scanner () in
      let streamed = ref [] in
      Path.stream sk src ~f:(fun steps n ->
          streamed :=
            List.init n (fun i ->
                let s = steps.(i) in
                s.Path.tag, s.Path.occurrence, s.Path.attrs)
            :: !streamed);
      let expected =
        List.map
          (fun (p : Path.t) ->
            List.map
              (fun (s : Path.step) -> s.Path.tag, s.Path.occurrence, s.Path.attrs)
              (Array.to_list p.Path.steps))
          (Path.of_document (parse src))
      in
      Alcotest.(check (list (list (triple string int (list (pair string string))))))
        ("stream = tree for " ^ src) expected (List.rev !streamed))
    [
      "<a x=\"1\"><b><c/><d/></b><e/></a>";
      "<a>\n  <b k=\"1\"/>\n  <b k=\"2\"/>\n</a>";  (* whitespace + attr refill *)
      "<r><s>  </s><t>v</t></r>";  (* blank-only text trimmed on both sides *)
      "<r>pre<b>leaf</b></r>";  (* agreeing mixed-content form *)
    ]

(* Streaming error positions: [Path.stream] consumes SAX events as they
   are produced, so malformed input raises mid-stream after earlier paths
   were already emitted. Positions and messages must be byte-identical to
   the tree parser's, including the document-level errors (no root,
   content after the root) the stream driver checks itself. *)
let test_stream_error_positions () =
  List.iter
    (fun src ->
      let tree_err =
        match parse src with
        | exception Sax.Parse_error (pos, msg) -> Some (pos, msg)
        | _ -> None
      in
      let emitted = ref 0 in
      let stream_err =
        match Path.scan_string src ~f:(fun _ -> incr emitted) with
        | exception Sax.Parse_error (pos, msg) -> Some (pos, msg)
        | () -> None
      in
      match (tree_err, stream_err) with
      | None, None -> ()
      | Some (p1, m1), Some (p2, m2) ->
        Alcotest.(check bool)
          (Printf.sprintf "same error for %S (%s vs %s)" src m1 m2)
          true
          (p1 = p2 && m1 = m2)
      | Some (_, m), None ->
        Alcotest.failf "stream accepted %S which tree rejects (%s)" src m
      | None, Some (_, m) ->
        Alcotest.failf "stream rejected %S which tree accepts (%s)" src m)
    [
      "<a><b/><b></a>";  (* mismatch after a path was emitted *)
      "<a><b/><c x=1/></a>";  (* attr error mid-document *)
      "<a><b/>";  (* truncated after a leaf *)
      "";  (* no root element *)
      "   ";  (* blank: still no root *)
      "<a/><b/>";  (* content after the root element *)
      "<a/>text";  (* trailing text is fine in both (blank-insensitive?) *)
      "<a><b>t</b><!-- c --><?pi?></a>";  (* well-formed controls *)
    ]

(* ------------------------------------------------------------------ *)
(* Serialization *)

let test_print_escapes () =
  let doc = Tree.doc (Tree.element ~attrs:[ "k", "a\"<&" ] ~children:[ Tree.Text "<&>" ] "t") in
  let s = Print.to_string ~decl:false doc in
  Alcotest.(check string) "escaped" "<t k=\"a&quot;&lt;&amp;\">&lt;&amp;&gt;</t>" s

let test_roundtrip_unit () =
  let src = "<a x=\"1\"><b><c y=\"2\"/></b><d/></a>" in
  let doc = parse src in
  let doc' = parse (Print.to_string doc) in
  Alcotest.(check bool) "roundtrip" true (Tree.equal doc doc')

(* fuzzing: mutated well-formed documents must either parse or raise
   Parse_error — never crash or loop *)
let prop_fuzz_no_crash =
  let open QCheck2 in
  Test.make ~name:"mutated input: parse or Parse_error, never crash" ~count:1000
    ~print:(fun (d, muts) ->
      Gen_helpers.doc_print d ^ " with "
      ^ String.concat ";"
          (List.map (fun (i, c) -> Printf.sprintf "%d:%C" i c) muts))
    Gen.(
      pair Gen_helpers.doc_gen
        (list_size (int_range 1 4)
           (pair (int_range 0 200) (oneofl [ '<'; '>'; '&'; '"'; '/'; 'x'; '\000'; ']' ]))))
    (fun (d, muts) ->
      let src = Bytes.of_string (Pf_xml.Print.to_string d) in
      List.iter
        (fun (i, c) -> if i < Bytes.length src then Bytes.set src i c)
        muts;
      match parse (Bytes.to_string src) with
      | _ -> true
      | exception Sax.Parse_error _ -> true)

let prop_random_garbage =
  QCheck2.Test.make ~name:"random bytes: parse or Parse_error" ~count:1000
    ~print:(fun s -> String.escaped s)
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 60))
    (fun src ->
      match parse src with _ -> true | exception Sax.Parse_error _ -> true)

(* property: print/parse round-trip on random documents *)
let prop_roundtrip =
  QCheck2.Test.make ~name:"print/parse roundtrip" ~count:300
    ~print:Gen_helpers.doc_print Gen_helpers.doc_gen (fun doc ->
      let doc' = parse (Print.to_string doc) in
      Tree.equal doc doc')

let prop_roundtrip_deep =
  QCheck2.Test.make ~name:"print/parse roundtrip (deep/narrow documents)" ~count:300
    ~print:Gen_helpers.doc_print Gen_helpers.deep_doc_gen (fun doc ->
      let doc' = parse (Print.to_string doc) in
      Tree.equal doc doc')

let prop_paths_count =
  QCheck2.Test.make ~name:"#paths = #leaves" ~count:300 ~print:Gen_helpers.doc_print
    Gen_helpers.doc_gen (fun doc ->
      let rec leaves (e : Tree.element) =
        match Tree.element_children e with
        | [] -> 1
        | cs -> List.fold_left (fun acc c -> acc + leaves c) 0 cs
      in
      List.length (Path.of_document doc) = leaves doc.Tree.root)

let prop_occurrences_consistent =
  QCheck2.Test.make ~name:"occurrence numbers count prefix tags" ~count:300
    ~print:Gen_helpers.doc_print Gen_helpers.doc_gen (fun doc ->
      List.for_all
        (fun (p : Path.t) ->
          let ok = ref true in
          Array.iteri
            (fun i (s : Path.step) ->
              let expected = ref 0 in
              for j = 0 to i do
                if String.equal (p.Path.steps.(j)).Path.tag s.Path.tag then incr expected
              done;
              if s.Path.occurrence <> !expected then ok := false)
            p.Path.steps;
          !ok)
        (Path.of_document doc))

(* The global tag interner must behave as one table no matter which domain
   interns first: the same name gets the same symbol everywhere (stable),
   distinct names get distinct symbols (injective — witnessed by the name
   round-trip), concurrently. *)
let prop_symbol_cross_domain =
  QCheck2.Test.make ~name:"Symbol.intern stable and injective across domains"
    ~count:30
    ~print:(fun names -> String.concat "," names)
    QCheck2.Gen.(
      list_size (int_range 1 20)
        (string_size ~gen:(char_range 'a' 'z') (int_range 1 10)))
    (fun names ->
      let here = List.map Symbol.intern names in
      let spawned =
        List.init 4 (fun _ -> Domain.spawn (fun () -> List.map Symbol.intern names))
      in
      let elsewhere = List.map Domain.join spawned in
      List.for_all (fun syms -> syms = here) elsewhere
      && List.for_all2 (fun n s -> String.equal (Symbol.name s) n) names here)

let () =
  let qt = List.map Gen_helpers.to_alcotest in
  Alcotest.run "xml"
    [
      ( "sax",
        [
          Alcotest.test_case "simple" `Quick test_simple;
          Alcotest.test_case "attributes" `Quick test_attributes;
          Alcotest.test_case "text and entities" `Quick test_text_and_entities;
          Alcotest.test_case "numeric entities" `Quick test_numeric_entities;
          Alcotest.test_case "cdata" `Quick test_cdata;
          Alcotest.test_case "comments and PIs" `Quick test_comments_and_pis;
          Alcotest.test_case "doctype" `Quick test_doctype;
          Alcotest.test_case "whitespace dropped" `Quick test_whitespace_dropped;
          Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "error positions: unterminated tags" `Quick
            test_error_unterminated_tags;
          Alcotest.test_case "error positions: references" `Quick
            test_error_references;
          Alcotest.test_case "error positions: mismatched tags" `Quick
            test_error_mismatched_tags;
          Alcotest.test_case "error positions: attributes" `Quick
            test_error_attributes;
          Alcotest.test_case "duplicate attributes" `Quick test_duplicate_attributes;
          Alcotest.test_case "tricky cdata" `Quick test_cdata_tricky;
          Alcotest.test_case "utf8 passthrough" `Quick test_utf8_passthrough;
          Alcotest.test_case "text_content" `Quick test_text_content;
          Alcotest.test_case "error position" `Quick test_error_position;
          Alcotest.test_case "event order" `Quick test_event_order;
        ] );
      ( "tree",
        [
          Alcotest.test_case "stats" `Quick test_tree_stats;
          Alcotest.test_case "equal" `Quick test_tree_equal;
        ] );
      ( "paths",
        [
          Alcotest.test_case "simple" `Quick test_paths_simple;
          Alcotest.test_case "single element" `Quick test_paths_single_element;
          Alcotest.test_case "occurrence numbers (Example 1)" `Quick test_occurrence_numbers;
          Alcotest.test_case "occurrences reset between branches" `Quick
            test_occurrence_reset_between_branches;
          Alcotest.test_case "child indices" `Quick test_child_indices;
          Alcotest.test_case "attributes on steps" `Quick test_path_attrs;
          Alcotest.test_case "streaming extraction" `Quick test_streaming_extraction;
          Alcotest.test_case "mixed content: non-leaf #text divergence" `Quick
            test_mixed_content_divergence;
          Alcotest.test_case "mixed content: text accumulates to later leaves" `Quick
            test_mixed_content_accumulates;
          Alcotest.test_case "of_tags" `Quick test_of_tags;
          Alcotest.test_case "stream driver = tree extraction (steps, attrs, text)"
            `Quick test_stream_driver_agrees;
          Alcotest.test_case "stream error positions = tree parser" `Quick
            test_stream_error_positions;
        ] );
      ( "print",
        [
          Alcotest.test_case "escapes" `Quick test_print_escapes;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_unit;
        ] );
      ( "properties",
        qt
          [
            prop_roundtrip;
            prop_roundtrip_deep;
            prop_paths_count;
            prop_occurrences_consistent;
            prop_streaming_agrees;
            prop_fuzz_no_crash;
            prop_random_garbage;
            prop_symbol_cross_domain;
          ] );
    ]
