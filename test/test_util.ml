(* Tests for the small supporting modules: Vec and the Predicate helpers. *)

open Pf_core

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_push_get () =
  let v = Vec.create ~dummy:(-1) () in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  let i0 = Vec.push v 10 in
  let i1 = Vec.push v 20 in
  Alcotest.(check int) "index 0" 0 i0;
  Alcotest.(check int) "index 1" 1 i1;
  Alcotest.(check int) "get" 20 (Vec.get v 1);
  Vec.set v 0 99;
  Alcotest.(check int) "set" 99 (Vec.get v 0);
  Alcotest.(check (list int)) "to_list" [ 99; 20 ] (Vec.to_list v)

let test_vec_bounds () =
  let v = Vec.create ~dummy:0 () in
  ignore (Vec.push v 1);
  (match Vec.get v 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out of bounds get");
  match Vec.set v (-1) 0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative set"

let test_vec_growth () =
  let v = Vec.create ~capacity:1 ~dummy:0 () in
  for i = 0 to 999 do
    ignore (Vec.push v i)
  done;
  Alcotest.(check int) "length" 1000 (Vec.length v);
  Alcotest.(check int) "spot" 567 (Vec.get v 567);
  let sum = Vec.fold_left ( + ) 0 v in
  Alcotest.(check int) "fold" (999 * 1000 / 2) sum

let test_vec_ensure () =
  let v = Vec.create ~dummy:"x" () in
  Vec.ensure v 5;
  Alcotest.(check int) "ensured" 5 (Vec.length v);
  Alcotest.(check string) "dummy filled" "x" (Vec.get v 4);
  Vec.ensure v 3;
  Alcotest.(check int) "never shrinks" 5 (Vec.length v)

let test_vec_clear_iter () =
  let v = Vec.create ~dummy:0 () in
  List.iter (fun x -> ignore (Vec.push v x)) [ 1; 2; 3 ];
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check (list (pair int int))) "iteri" [ 2, 3; 1, 2; 0, 1 ] !acc;
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

(* ------------------------------------------------------------------ *)
(* Predicate helpers *)

let c attr cmp v = { Predicate.attr; cmp; value = Pf_xpath.Ast.Int v }

let test_tagvar_normalization () =
  let tv1 = Predicate.tagvar ~constraints:[ c "y" Pf_xpath.Ast.Eq 1; c "x" Pf_xpath.Ast.Eq 2 ] "a" in
  let tv2 = Predicate.tagvar ~constraints:[ c "x" Pf_xpath.Ast.Eq 2; c "y" Pf_xpath.Ast.Eq 1 ] "a" in
  Alcotest.(check bool) "order-insensitive" true (tv1 = tv2);
  let tv3 = Predicate.tagvar ~constraints:[ c "x" Pf_xpath.Ast.Eq 2; c "x" Pf_xpath.Ast.Eq 2 ] "a" in
  Alcotest.(check int) "duplicates collapsed" 1 (List.length tv3.Predicate.constraints)

let test_strip () =
  let p =
    Predicate.Relative
      {
        first = Predicate.tagvar ~constraints:[ c "x" Pf_xpath.Ast.Ge 1 ] "a";
        second = Predicate.tagvar ~constraints:[ c "y" Pf_xpath.Ast.Le 2 ] "b";
        op = Predicate.Eq;
        v = 1;
      }
  in
  Alcotest.(check bool) "has constraints" true (Predicate.has_constraints p);
  let s = Predicate.strip p in
  Alcotest.(check bool) "stripped" false (Predicate.has_constraints s);
  Alcotest.(check bool) "length unchanged by strip" true
    (Predicate.strip (Predicate.Length { v = 3 }) = Predicate.Length { v = 3 })

let test_constraints_of () =
  let cs = [ c "x" Pf_xpath.Ast.Eq 1 ] in
  let tv = Predicate.tagvar ~constraints:cs "a" in
  let c1, c2 = Predicate.constraints_of (Predicate.Absolute { tag = tv; op = Predicate.Eq; v = 1 }) in
  Alcotest.(check bool) "duplicated for one-var" true (c1 = cs && c2 = cs);
  let c1, c2 = Predicate.constraints_of (Predicate.Length { v = 2 }) in
  Alcotest.(check bool) "length has none" true (c1 = [] && c2 = [])

let test_check_constraints () =
  let cs = [ c "x" Pf_xpath.Ast.Ge 2; c "y" Pf_xpath.Ast.Lt 5 ] in
  Alcotest.(check bool) "both hold" true
    (Predicate.check_constraints cs [ "x", "3"; "y", "4" ]);
  Alcotest.(check bool) "one fails" false
    (Predicate.check_constraints cs [ "x", "1"; "y", "4" ]);
  Alcotest.(check bool) "missing attr" false (Predicate.check_constraints cs [ "x", "3" ]);
  Alcotest.(check bool) "empty constraints" true (Predicate.check_constraints [] [])

let test_pp_notation () =
  let show p = Format.asprintf "%a" Predicate.pp p in
  Alcotest.(check string) "absolute" "(p_a,=,1)"
    (show (Predicate.Absolute { tag = Predicate.tagvar "a"; op = Predicate.Eq; v = 1 }));
  Alcotest.(check string) "relative" "(d(p_a,p_b),>=,2)"
    (show
       (Predicate.Relative
          { first = Predicate.tagvar "a"; second = Predicate.tagvar "b"; op = Predicate.Ge; v = 2 }));
  Alcotest.(check string) "end-of-path" "(p_a-|,>=,1)"
    (show (Predicate.End_of_path { tag = Predicate.tagvar "a"; v = 1 }));
  Alcotest.(check string) "length" "(length,>=,3)" (show (Predicate.Length { v = 3 }));
  Alcotest.(check string) "with constraint" "(p_a[@x=3],=,1)"
    (show
       (Predicate.Absolute
          { tag = Predicate.tagvar ~constraints:[ c "x" Pf_xpath.Ast.Eq 3 ] "a";
            op = Predicate.Eq;
            v = 1 }))

(* packing round-trip used by the hot path *)
let prop_pack_roundtrip =
  QCheck2.Test.make ~name:"pack/unpack roundtrip" ~count:1000
    ~print:(fun (a, b) -> Printf.sprintf "(%d,%d)" a b)
    QCheck2.Gen.(pair (int_range 0 65535) (int_range 0 65535))
    (fun (o1, o2) ->
      let p = Predicate_index.pack o1 o2 in
      Predicate_index.packed_first p = o1 && Predicate_index.packed_second p = o2)

let () =
  Alcotest.run "util"
    [
      ( "vec",
        [
          Alcotest.test_case "push/get/set" `Quick test_vec_push_get;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "growth" `Quick test_vec_growth;
          Alcotest.test_case "ensure" `Quick test_vec_ensure;
          Alcotest.test_case "clear/iter" `Quick test_vec_clear_iter;
        ] );
      ( "predicate",
        [
          Alcotest.test_case "tagvar normalization" `Quick test_tagvar_normalization;
          Alcotest.test_case "strip" `Quick test_strip;
          Alcotest.test_case "constraints_of" `Quick test_constraints_of;
          Alcotest.test_case "check_constraints" `Quick test_check_constraints;
          Alcotest.test_case "paper notation" `Quick test_pp_notation;
        ] );
      "packing", List.map Gen_helpers.to_alcotest [ prop_pack_roundtrip ];
    ]
