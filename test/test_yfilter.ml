(* Tests for the YFilter baseline. *)

let add = Pf_yfilter.Yfilter.add_string

let test_basic () =
  let y = Pf_yfilter.Yfilter.create () in
  let s1 = add y "/a/b" in
  let s2 = add y "/a/c" in
  let s3 = add y "a//b" in
  let m = Pf_yfilter.Yfilter.match_string y "<a><b/></a>" in
  Alcotest.(check (list int)) "matches" [ s1; s3 ] m;
  ignore s2

let test_prefix_sharing () =
  let y = Pf_yfilter.Yfilter.create () in
  let n0 = Pf_yfilter.Yfilter.state_count y in
  let _ = add y "/a/b/c" in
  let n1 = Pf_yfilter.Yfilter.state_count y in
  let _ = add y "/a/b/d" in
  let n2 = Pf_yfilter.Yfilter.state_count y in
  Alcotest.(check int) "three states for /a/b/c" 3 (n1 - n0);
  Alcotest.(check int) "one extra state for shared prefix" 1 (n2 - n1)

let test_descendant_loop () =
  let y = Pf_yfilter.Yfilter.create () in
  let s = add y "/a//d" in
  Alcotest.(check (list int)) "deep" [ s ]
    (Pf_yfilter.Yfilter.match_string y "<a><b><c><d/></c></b></a>");
  Alcotest.(check (list int)) "direct child also matches //" [ s ]
    (Pf_yfilter.Yfilter.match_string y "<a><d/></a>");
  Alcotest.(check (list int)) "root does not match" []
    (Pf_yfilter.Yfilter.match_string y "<d><a/></d>")

let test_wildcards () =
  let y = Pf_yfilter.Yfilter.create () in
  let s1 = add y "/*/b" in
  let s2 = add y "/a/*" in
  let s3 = add y "/*/*/*" in
  let m = Pf_yfilter.Yfilter.match_string y "<a><b/></a>" in
  Alcotest.(check (list int)) "wildcards" [ s1; s2 ] m;
  ignore s3

let test_attr_filters_postponed () =
  let y = Pf_yfilter.Yfilter.create () in
  let s1 = add y "/a/b[@x = 1]" in
  let _s2 = add y "/a/b[@x = 2]" in
  let m = Pf_yfilter.Yfilter.match_string y "<a><b x=\"1\"/></a>" in
  Alcotest.(check (list int)) "filtered" [ s1 ] m

let test_nested_rejected () =
  let y = Pf_yfilter.Yfilter.create () in
  match add y "/a[b]/c" with
  | exception Pf_intf.Unsupported _ -> ()
  | _ -> Alcotest.fail "nested paths unsupported in the baseline"

let test_duplicate_expressions () =
  let y = Pf_yfilter.Yfilter.create () in
  let s1 = add y "/a/b" in
  let s2 = add y "/a/b" in
  Alcotest.(check (list int)) "both sids accept" [ s1; s2 ]
    (Pf_yfilter.Yfilter.match_string y "<a><b/></a>")

let prop_oracle =
  QCheck2.Test.make ~name:"yfilter = oracle" ~count:600
    ~print:(fun (paths, d) ->
      String.concat " ; " (List.map Gen_helpers.path_print paths)
      ^ " on " ^ Gen_helpers.doc_print d)
    QCheck2.Gen.(
      pair (list_size (int_range 1 8) Gen_helpers.single_path_attr_gen) Gen_helpers.doc_gen)
    (fun (paths, d) ->
      let y = Pf_yfilter.Yfilter.create () in
      let sids = List.map (fun p -> Pf_yfilter.Yfilter.add y p, p) paths in
      let m = Pf_yfilter.Yfilter.match_document y d in
      List.for_all (fun (sid, p) -> List.mem sid m = Pf_xpath.Eval.matches p d) sids)

let prop_agrees_with_engine =
  QCheck2.Test.make ~name:"yfilter = predicate engine" ~count:400
    ~print:(fun (paths, d) ->
      String.concat " ; " (List.map Gen_helpers.path_print paths)
      ^ " on " ^ Gen_helpers.doc_print d)
    QCheck2.Gen.(
      pair (list_size (int_range 1 8) Gen_helpers.single_path_gen) Gen_helpers.doc_gen)
    (fun (paths, d) ->
      let y = Pf_yfilter.Yfilter.create () in
      let e = Pf_core.Engine.create () in
      List.iter (fun p -> ignore (Pf_yfilter.Yfilter.add y p)) paths;
      List.iter (fun p -> ignore (Pf_core.Engine.add e p)) paths;
      Pf_yfilter.Yfilter.match_document y d = Pf_core.Engine.match_document e d)

let () =
  Alcotest.run "yfilter"
    [
      ( "unit",
        [
          Alcotest.test_case "basics" `Quick test_basic;
          Alcotest.test_case "prefix sharing" `Quick test_prefix_sharing;
          Alcotest.test_case "descendant loop" `Quick test_descendant_loop;
          Alcotest.test_case "wildcards" `Quick test_wildcards;
          Alcotest.test_case "attr filters (selection postponed)" `Quick
            test_attr_filters_postponed;
          Alcotest.test_case "nested rejected" `Quick test_nested_rejected;
          Alcotest.test_case "duplicates" `Quick test_duplicate_expressions;
        ] );
      ( "properties",
        List.map Gen_helpers.to_alcotest [ prop_oracle; prop_agrees_with_engine ] );
    ]
