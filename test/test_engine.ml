(* End-to-end tests for the engine: every variant and attribute mode must
   agree with the reference XPath evaluator on arbitrary expressions and
   documents. *)

open Pf_core

let variants = Expr_index.[ Basic; Prefix_covering; Access_predicate; Shared ]
let modes = Engine.[ Inline; Postponed ]

let all_configs =
  List.concat_map (fun v -> List.map (fun m -> v, m) modes) variants

let doc = Pf_xml.Sax.parse_document "<a><b n=\"1\"><c/></b><b n=\"2\"><d/></b></a>"

let test_basic_api () =
  let e = Engine.create () in
  let s1 = Engine.add_string e "/a/b/c" in
  let s2 = Engine.add_string e "/a/b/d" in
  let s3 = Engine.add_string e "/a/x" in
  Alcotest.(check int) "dense sids" 1 s2;
  Alcotest.(check int) "expression count" 3 (Engine.expression_count e);
  Alcotest.(check (list int)) "matches" [ s1; s2 ] (Engine.match_document e doc);
  Alcotest.(check (list int)) "no match for s3" [ s1; s2 ]
    (Engine.match_document e doc);
  ignore s3;
  Alcotest.(check string) "expression recovered" "/a/x"
    (Pf_xpath.Parser.to_string (Engine.expression e s3))

let test_match_string () =
  let e = Engine.create () in
  let s = Engine.add_string e "b[@n = 2]" in
  Alcotest.(check (list int)) "match_string" [ s ]
    (Engine.match_string e "<a><b n=\"2\"/></a>")

let test_match_path () =
  let e = Engine.create () in
  let s1 = Engine.add_string e "a/b" in
  let _s2 = Engine.add_string e "b/a" in
  Alcotest.(check (list int)) "path match" [ s1 ]
    (Engine.match_path e (Pf_xml.Path.of_tags [ "a"; "b" ]))

let test_duplicate_sids () =
  let e = Engine.create () in
  let s1 = Engine.add_string e "/a/b" in
  let s2 = Engine.add_string e "/a/b" in
  Alcotest.(check bool) "distinct sids" true (s1 <> s2);
  Alcotest.(check (list int)) "both reported" [ s1; s2 ]
    (Engine.match_string e "<a><b/></a>")

let test_attr_modes_agree_unit () =
  List.iter
    (fun mode ->
      let e = Engine.create ~attr_mode:mode () in
      let s1 = Engine.add_string e "/a/b[@n = 1]/c" in
      let _ = Engine.add_string e "/a/b[@n = 3]/c" in
      let s3 = Engine.add_string e "b[@n >= 2]" in
      Alcotest.(check (list int)) "inline/postponed" [ s1; s3 ] (Engine.match_document e doc))
    modes

let test_multiple_docs_reset () =
  let e = Engine.create () in
  let s1 = Engine.add_string e "/a/b" in
  let s2 = Engine.add_string e "/x" in
  Alcotest.(check (list int)) "doc 1" [ s1 ] (Engine.match_string e "<a><b/></a>");
  Alcotest.(check (list int)) "doc 2" [ s2 ] (Engine.match_string e "<x/>");
  Alcotest.(check (list int)) "doc 3" [] (Engine.match_string e "<y/>")

let test_stats () =
  let e = Engine.create ~collect_stats:true () in
  let _ = Engine.add_string e "/a/b" in
  ignore (Engine.match_document e doc);
  let st = Engine.stats e in
  Alcotest.(check int) "documents" 1 st.Engine.documents;
  Alcotest.(check int) "paths" 2 st.Engine.paths;
  Alcotest.(check bool) "timed" true (st.Engine.predicate_ns >= 0.);
  Engine.reset_stats e;
  Alcotest.(check int) "reset" 0 (Engine.stats e).Engine.documents

(* reset_stats must zero the whole registry atomically: occurrence_runs as
   reported by the accessor and by the registry counter always agree *)
let test_reset_registry_agreement () =
  let e = Engine.create () in
  let _ = Engine.add_string e "/a/b" in
  let _ = Engine.add_string e "//c" in
  ignore (Engine.match_document e doc);
  let registry_runs () =
    match Pf_obs.Registry.find_counter (Engine.metrics e) "occurrence_runs" with
    | Some n -> n
    | None -> Alcotest.fail "occurrence_runs counter not registered"
  in
  Alcotest.(check bool) "runs nonzero" true (Engine.occurrence_runs e > 0);
  Alcotest.(check int) "accessor = registry" (Engine.occurrence_runs e) (registry_runs ());
  Engine.reset_stats e;
  Alcotest.(check int) "accessor zero after reset" 0 (Engine.occurrence_runs e);
  Alcotest.(check int) "registry zero after reset" 0 (registry_runs ())

let test_predicate_sharing_across_expressions () =
  let e = Engine.create () in
  let _ = Engine.add_string e "/a/b/c/d" in
  let n1 = Engine.distinct_predicate_count e in
  let _ = Engine.add_string e "b/c" in
  (* b/c encodes to (d(p_b,p_c),=,1), already stored *)
  Alcotest.(check int) "no new predicate" n1 (Engine.distinct_predicate_count e)

let test_remove () =
  List.iter
    (fun variant ->
      let e = Engine.create ~variant () in
      let s1 = Engine.add_string e "/a/b" in
      let s2 = Engine.add_string e "/a/b" in
      let s3 = Engine.add_string e "/a/b/c" in
      Alcotest.(check bool) "remove s1" true (Engine.remove e s1);
      Alcotest.(check bool) "s1 inactive" false (Engine.is_active e s1);
      Alcotest.(check bool) "double remove" false (Engine.remove e s1);
      Alcotest.(check (list int)) "duplicate s2 and s3 still match" [ s2; s3 ]
        (Engine.match_string e "<a><b><c/></b></a>");
      Alcotest.(check bool) "remove s2" true (Engine.remove e s2);
      Alcotest.(check (list int)) "only s3 now" [ s3 ]
        (Engine.match_string e "<a><b><c/></b></a>");
      let s4 = Engine.add_string e "/a/b" in
      Alcotest.(check (list int)) "re-added matches again" [ s3; s4 ]
        (Engine.match_string e "<a><b><c/></b></a>"))
    variants

let test_remove_nested () =
  let e = Engine.create () in
  let s1 = Engine.add_string e "/a[b]/c" in
  let s2 = Engine.add_string e "/a/c" in
  Alcotest.(check (list int)) "both" [ s1; s2 ] (Engine.match_string e "<a><b/><c/></a>");
  Alcotest.(check bool) "remove nested" true (Engine.remove e s1);
  Alcotest.(check (list int)) "nested gone" [ s2 ] (Engine.match_string e "<a><b/><c/></a>")

let test_text_filters_end_to_end () =
  List.iter
    (fun mode ->
      let e = Engine.create ~attr_mode:mode () in
      let s1 = Engine.add_string e "/stock/quote[text() >= 100]" in
      let s2 = Engine.add_string e "quote[text() < 100]" in
      let s3 = Engine.add_string e "/stock/quote[@sym = 1][text() >= 100]" in
      let doc = "<stock><quote sym=\"1\">142</quote></stock>" in
      Alcotest.(check (list int)) "tree" [ s1; s3 ] (Engine.match_string e doc);
      Alcotest.(check (list int)) "stream" [ s1; s3 ] (Engine.match_stream e doc);
      ignore s2)
    modes

let test_match_stream () =
  let e = Engine.create () in
  let s1 = Engine.add_string e "/a/b/c" in
  let _ = Engine.add_string e "/a/x" in
  let s3 = Engine.add_string e "b[@n = 1]" in
  let src = "<a><b n=\"1\"><c/></b></a>" in
  Alcotest.(check (list int)) "stream = string" [ s1; s3 ] (Engine.match_stream e src);
  Alcotest.(check (list int)) "agrees with tree path" (Engine.match_string e src)
    (Engine.match_stream e src)

let prop_dedup_agrees =
  QCheck2.Test.make ~name:"dedup_paths on = off" ~count:300
    ~print:(fun (paths, d) ->
      String.concat " ; " (List.map Gen_helpers.path_print paths)
      ^ " on " ^ Gen_helpers.doc_print d)
    QCheck2.Gen.(
      pair (list_size (int_range 1 8) Gen_helpers.single_path_gen) Gen_helpers.doc_gen)
    (fun (paths, d) ->
      let run dedup_paths =
        let e = Engine.create ~dedup_paths () in
        List.iter (fun p -> ignore (Engine.add e p)) paths;
        Engine.match_document e d
      in
      run true = run false)

let prop_stream_equals_tree =
  QCheck2.Test.make ~name:"match_stream = match_string" ~count:300
    ~print:(fun (paths, d) ->
      String.concat " ; " (List.map Gen_helpers.path_print paths)
      ^ " on " ^ Gen_helpers.doc_print d)
    QCheck2.Gen.(
      pair (list_size (int_range 1 8) Gen_helpers.single_path_attr_gen) Gen_helpers.doc_gen)
    (fun (paths, d) ->
      let e = Engine.create () in
      List.iter (fun p -> ignore (Engine.add e p)) paths;
      let src = Pf_xml.Print.to_string d in
      Engine.match_string e src = Engine.match_stream e src)

let test_explain () =
  List.iter
    (fun mode ->
      let e = Engine.create ~attr_mode:mode () in
      let s1 = Engine.add_string e "a//b[@n = 2]" in
      let s2 = Engine.add_string e "/a/x" in
      (match Engine.explain e doc s1 with
      | Some { Engine.expl_path; expl_chain } ->
        Alcotest.(check (list string)) "witness path" [ "a"; "b"; "d" ]
          (Pf_xml.Path.tags expl_path);
        Alcotest.(check int) "one predicate" 1 (List.length expl_chain);
        (match expl_chain with
        | [ (_, (o1, o2)) ] ->
          Alcotest.(check (pair int int)) "occurrences" (1, 1) (o1, o2)
        | _ -> Alcotest.fail "unexpected chain")
      | None -> Alcotest.fail "expected a witness");
      Alcotest.(check bool) "no witness for a non-match" true (Engine.explain e doc s2 = None);
      ignore (Engine.remove e s1);
      Alcotest.(check bool) "no witness after removal" true (Engine.explain e doc s1 = None))
    modes

let test_explain_consistent_with_match () =
  let e = Engine.create () in
  let sids = List.map (Engine.add_string e) [ "/a/b/c"; "b/c"; "/a/b[@n = 1]"; "/x" ] in
  let matched = Engine.match_document e doc in
  List.iter
    (fun sid ->
      Alcotest.(check bool)
        (Printf.sprintf "explain sid %d iff matched" sid)
        (List.mem sid matched)
        (Engine.explain e doc sid <> None))
    sids

let test_unsupported_propagates () =
  let e = Engine.create () in
  match Engine.add_string e "/*[@x = 1]/a" with
  | exception Encoder.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

(* ------------------------------------------------------------------ *)
(* Oracle agreement properties *)

let check_against_oracle paths docs (variant, mode) =
  let e = Engine.create ~variant ~attr_mode:mode () in
  let sids = List.map (fun p -> Engine.add e p, p) paths in
  List.for_all
    (fun d ->
      let matched = Engine.match_document e d in
      List.for_all
        (fun (sid, p) -> List.mem sid matched = Pf_xpath.Eval.matches p d)
        sids)
    docs

let prop_oracle_single_paths =
  QCheck2.Test.make ~name:"engine = oracle (single paths, all configs)" ~count:300
    ~print:(fun (paths, docs) ->
      String.concat " ; " (List.map Gen_helpers.path_print paths)
      ^ " on " ^ String.concat " % " (List.map Gen_helpers.doc_print docs))
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 8) Gen_helpers.single_path_gen)
        (list_size (int_range 1 3) Gen_helpers.doc_gen))
    (fun (paths, docs) -> List.for_all (check_against_oracle paths docs) all_configs)

let prop_oracle_attr_filters =
  QCheck2.Test.make ~name:"engine = oracle (attribute filters, all configs)" ~count:300
    ~print:(fun (paths, docs) ->
      String.concat " ; " (List.map Gen_helpers.path_print paths)
      ^ " on " ^ String.concat " % " (List.map Gen_helpers.doc_print docs))
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 6) Gen_helpers.single_path_attr_gen)
        (list_size (int_range 1 3) Gen_helpers.doc_gen))
    (fun (paths, docs) -> List.for_all (check_against_oracle paths docs) all_configs)

let prop_inline_postponed_agree =
  QCheck2.Test.make ~name:"inline = postponed match sets" ~count:400
    ~print:(fun (paths, d) ->
      String.concat " ; " (List.map Gen_helpers.path_print paths)
      ^ " on " ^ Gen_helpers.doc_print d)
    QCheck2.Gen.(
      pair (list_size (int_range 1 8) Gen_helpers.single_path_attr_gen) Gen_helpers.doc_gen)
    (fun (paths, d) ->
      let run mode =
        let e = Engine.create ~attr_mode:mode () in
        List.iter (fun p -> ignore (Engine.add e p)) paths;
        Engine.match_document e d
      in
      run Engine.Inline = run Engine.Postponed)

let () =
  Alcotest.run "engine"
    [
      ( "api",
        [
          Alcotest.test_case "basics" `Quick test_basic_api;
          Alcotest.test_case "match_string" `Quick test_match_string;
          Alcotest.test_case "match_path" `Quick test_match_path;
          Alcotest.test_case "duplicates get distinct sids" `Quick test_duplicate_sids;
          Alcotest.test_case "attr modes agree" `Quick test_attr_modes_agree_unit;
          Alcotest.test_case "state resets between documents" `Quick test_multiple_docs_reset;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "reset agrees with registry" `Quick
            test_reset_registry_agreement;
          Alcotest.test_case "predicate sharing" `Quick test_predicate_sharing_across_expressions;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "remove nested" `Quick test_remove_nested;
          Alcotest.test_case "match_stream" `Quick test_match_stream;
          Alcotest.test_case "text() filters end to end" `Quick test_text_filters_end_to_end;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "explain iff matched" `Quick test_explain_consistent_with_match;
          Alcotest.test_case "unsupported propagates" `Quick test_unsupported_propagates;
        ] );
      ( "oracle",
        List.map Gen_helpers.to_alcotest
          [
            prop_oracle_single_paths;
            prop_oracle_attr_filters;
            prop_inline_postponed_agree;
            prop_stream_equals_tree;
            prop_dedup_agrees;
          ] );
    ]
