(* The differential harness testing itself: replay the committed corpus,
   round-trip the case format, verify the shrinker actually minimizes, and
   run a short in-process fuzzing campaign. *)

open QCheck2
module Case = Pf_difftest.Case
module Difftest = Pf_difftest.Difftest
module Engines = Pf_difftest.Engines
module Shrink = Pf_difftest.Shrink
module FG = Pf_difftest.Feature_gen
module Ast = Pf_xpath.Ast
module Tree = Pf_xml.Tree

let corpus_dir =
  (* `dune runtest` runs from _build/default/test/ (the corpus is declared
     as a dep there); `dune exec test/test_difftest.exe` runs from the
     project root *)
  if Sys.file_exists "corpus/difftest" then "corpus/difftest"
  else "test/corpus/difftest"

(* ------------------------------------------------------------------ *)
(* Corpus replay: every committed case must pass on the full roster. *)

let test_corpus_nonempty () =
  let cases = Case.load_dir corpus_dir in
  Alcotest.(check bool)
    "committed corpus present" true
    (List.length cases >= 6)

let test_corpus_replay () =
  let cases = Case.load_dir corpus_dir in
  List.iter
    (fun (c : Case.t) ->
      match Difftest.check_case ~all_variants:true c with
      | [] -> ()
      | divs ->
        Alcotest.failf "case %s: %s" c.Case.name
          (String.concat "; "
             (List.map
                (fun d -> Format.asprintf "%a" Difftest.pp_divergence d)
                divs)))
    cases

(* ------------------------------------------------------------------ *)
(* Case format round-trip *)

let case_gen =
  let open Gen in
  list_size (int_range 1 4) (FG.path_gen FG.all_features) >>= fun exprs ->
  list_size (int_range 1 3) (FG.doc_gen FG.all_features) >>= fun docs ->
  return (Case.make ~name:"roundtrip" ~notes:[ "generated"; "two notes" ] ~exprs ~docs ())

let prop_case_roundtrip =
  Test.make ~name:"of_string (to_string c) = c" ~count:200
    ~print:(fun c -> Case.to_string c)
    case_gen
    (fun c ->
      let c' = Case.of_string ~name:c.Case.name (Case.to_string c) in
      Case.equal c c' && c'.Case.notes = c.Case.notes)

let prop_case_expect_is_oracle =
  Test.make ~name:"stored expectations = oracle verdicts" ~count:200
    ~print:(fun c -> Case.to_string c)
    case_gen
    (fun c -> Difftest.check_case c = [])

(* ------------------------------------------------------------------ *)
(* The shrinker, driven by a deliberately buggy engine. *)

(* An engine that evaluates every descendant axis as a child axis: it
   diverges from the oracle exactly on expressions where // matters. Built
   by wrapping the reference FILTER module — the roster takes any
   first-class module, buggy ones included. *)
let rec flatten_path (p : Ast.path) = { p with Ast.steps = List.map flatten_step p.Ast.steps }

and flatten_step (s : Ast.step) =
  {
    Ast.axis = Ast.Child;
    test = s.Ast.test;
    filters =
      List.map
        (function Ast.Nested p -> Ast.Nested (flatten_path p) | f -> f)
        s.Ast.filters;
  }

module Flatten_descendants : Pf_intf.FILTER = struct
  include Pf_intf.Reference

  let add t p = Pf_intf.Reference.add t (flatten_path p)
  let add_string t s = add t (Pf_xpath.Parser.parse s)
end

let flatten_descendants_engine : Engines.engine =
  {
    Engines.ename = "buggy-no-descendant";
    filter = (module Flatten_descendants);
    supports = (fun _ -> true);
    finalize = ignore;
  }

let test_shrinker_minimizes () =
  (* a workload where only one expression on one document exposes the bug *)
  let parse s = Pf_xpath.Parser.parse s in
  let doc s = Pf_xml.Sax.parse_document s in
  let exprs =
    [| parse "/a/b"; parse "/a//c"; parse "/a/b[@x = 1]"; parse "//e" |]
  in
  let docs =
    [|
      doc "<a><b x=\"1\"><d><c/></d></b></a>";
      doc "<e><e/></e>";
    |]
  in
  let engines = [ Engines.oracle; flatten_descendants_engine ] in
  let failing es ds = Difftest.check ~engines es ds <> [] in
  Alcotest.(check bool) "initial workload diverges" true (failing exprs docs);
  let exprs', docs', steps = Shrink.minimize ~failing exprs docs in
  Alcotest.(check bool) "shrunk workload still diverges" true (failing exprs' docs');
  Alcotest.(check int) "one expression left" 1 (Array.length exprs');
  Alcotest.(check int) "one document left" 1 (Array.length docs');
  Alcotest.(check bool) "made progress" true (steps > 0);
  (* 1-minimality: no single further reduction may still fail *)
  Array.iteri
    (fun i e ->
      List.iter
        (fun e' ->
          let exprs'' = Array.copy exprs' in
          exprs''.(i) <- e';
          Alcotest.(check bool)
            (Printf.sprintf "expr reduction %s still failing"
               (Pf_xpath.Parser.to_string e'))
            false (failing exprs'' docs'))
        (Shrink.path_reductions e))
    exprs';
  Array.iteri
    (fun i d ->
      List.iter
        (fun d' ->
          let docs'' = Array.copy docs' in
          docs''.(i) <- d';
          Alcotest.(check bool) "doc reduction still failing" false
            (failing exprs' docs''))
        (Shrink.doc_reductions d))
    docs'

let test_shrinker_bounded () =
  (* with a tiny attempt budget the shrinker still returns a failing pair *)
  let parse s = Pf_xpath.Parser.parse s in
  let doc s = Pf_xml.Sax.parse_document s in
  let exprs = [| parse "/a//b"; parse "//c" |] in
  let docs = [| doc "<a><d><b/></d></a>" |] in
  let engines = [ Engines.oracle; flatten_descendants_engine ] in
  let failing es ds = Difftest.check ~engines es ds <> [] in
  let exprs', docs', _ = Shrink.minimize ~max_attempts:3 ~failing exprs docs in
  Alcotest.(check bool) "still failing" true (failing exprs' docs')

(* ------------------------------------------------------------------ *)
(* In-process smoke campaign: the engines agree on a short seeded run. *)

let test_smoke_campaign () =
  let config =
    {
      Difftest.default_config with
      Difftest.cases = 60;
      seed = 1;
      max_exprs = 12;
      max_docs = 2;
    }
  in
  let report = Difftest.run config in
  Alcotest.(check int) "cases run" 60 report.Difftest.cases_run;
  match report.Difftest.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "engines diverged:\n%s" (Case.to_string f.Difftest.shrunk)

let test_smoke_deterministic () =
  let config =
    { Difftest.default_config with Difftest.cases = 20; seed = 7; max_exprs = 6 }
  in
  let r1 = Difftest.run config and r2 = Difftest.run config in
  Alcotest.(check int) "same cases" r1.Difftest.cases_run r2.Difftest.cases_run;
  Alcotest.(check int) "same failures" 0
    (List.length r1.Difftest.failures + List.length r2.Difftest.failures)

(* ------------------------------------------------------------------ *)
(* Feature gating: a disabled feature never appears in generated output. *)

let rec path_uses_feature pred (p : Ast.path) =
  List.exists
    (fun (s : Ast.step) ->
      pred s
      || List.exists
           (function Ast.Nested p' -> path_uses_feature pred p' | Ast.Attr _ -> false)
           s.Ast.filters)
    p.Ast.steps

let has_wildcard (s : Ast.step) = s.Ast.test = Ast.Wildcard
let has_descendant (s : Ast.step) = s.Ast.axis = Ast.Descendant

let has_filter (s : Ast.step) =
  List.exists (function Ast.Attr _ -> true | Ast.Nested _ -> false) s.Ast.filters

let has_nested (s : Ast.step) =
  List.exists (function Ast.Nested _ -> true | Ast.Attr _ -> false) s.Ast.filters

let prop_structure_only_paths =
  Test.make ~name:"structure_only paths have no wildcard/descendant/filter"
    ~count:300 ~print:FG.path_print
    (FG.path_gen FG.structure_only)
    (fun p ->
      (not (path_uses_feature has_wildcard p))
      && (not (path_uses_feature has_descendant p))
      && (not (path_uses_feature has_filter p))
      && not (path_uses_feature has_nested p))

let prop_no_nested_paths =
  Test.make ~name:"nested=false paths are single paths" ~count:300
    ~print:FG.path_print
    (FG.path_gen { FG.all_features with FG.nested = false })
    (fun p -> Ast.is_single_path p)

let rec node_has_attr = function
  | Tree.Text _ -> false
  | Tree.Element e -> e.Tree.attrs <> [] || List.exists node_has_attr e.Tree.children

let rec node_has_text = function
  | Tree.Text _ -> true
  | Tree.Element e -> List.exists node_has_text e.Tree.children

let prop_structure_only_docs =
  Test.make ~name:"structure_only docs have no attrs/text" ~count:300
    ~print:FG.doc_print
    (FG.doc_gen FG.structure_only)
    (fun d ->
      (not (node_has_attr (Tree.Element d.Tree.root)))
      && not (node_has_text (Tree.Element d.Tree.root)))

let prop_deep_shape_docs =
  Test.make ~name:"deep_shape docs are deep and narrow" ~count:300
    ~print:FG.doc_print
    (FG.doc_gen ~shape:FG.deep_shape FG.structure_only)
    (fun d ->
      let rec max_fanout e =
        let kids = Tree.element_children e in
        List.fold_left (fun m k -> max m (max_fanout k)) (List.length kids) kids
      in
      Tree.depth d <= 12 && max_fanout d.Tree.root <= 2)

(* ------------------------------------------------------------------ *)

let qcheck = Gen_helpers.to_alcotest

let () =
  Alcotest.run "difftest"
    [
      ( "corpus",
        [
          Alcotest.test_case "corpus is non-empty" `Quick test_corpus_nonempty;
          Alcotest.test_case "replay committed cases" `Quick test_corpus_replay;
        ] );
      ( "case format",
        [ qcheck prop_case_roundtrip; qcheck prop_case_expect_is_oracle ] );
      ( "shrinker",
        [
          Alcotest.test_case "minimizes to 1 expr x 1 doc" `Quick
            test_shrinker_minimizes;
          Alcotest.test_case "bounded attempts still fail" `Quick
            test_shrinker_bounded;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "60-case smoke run is clean" `Quick test_smoke_campaign;
          Alcotest.test_case "runs are deterministic" `Quick
            test_smoke_deterministic;
        ] );
      ( "feature gating",
        [
          qcheck prop_structure_only_paths;
          qcheck prop_no_nested_paths;
          qcheck prop_structure_only_docs;
          qcheck prop_deep_shape_docs;
        ] );
    ]
