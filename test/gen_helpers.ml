(* Shared QCheck generators for property tests.

   The generators themselves live in Pf_difftest.Feature_gen — one home for
   the feature-weighted generation logic used by both the QCheck suites and
   the differential fuzzing harness. A deliberately small tag alphabet
   (a..e) maximizes collisions: repeated tags on one path exercise
   occurrence numbers, and overlapping query fragments exercise predicate
   sharing. *)

open QCheck2
module FG = Pf_difftest.Feature_gen

(* ------------------------------------------------------------------ *)
(* Reproducibility: every suite converts QCheck properties through
   [to_alcotest], which pins the generator seed so `dune runtest` is
   deterministic. Override with QCHECK_SEED=<n> to explore. *)

let qcheck_seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> ( try int_of_string s with Failure _ -> 0x5eedba5e)
  | None -> 0x5eedba5e

let to_alcotest t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| qcheck_seed |]) t

(* ------------------------------------------------------------------ *)
(* Basic alphabet *)

let tag_gen = FG.tag_gen
let attr_name_gen = FG.attr_name_gen
let attr_value_gen = FG.attr_value_gen

(* ------------------------------------------------------------------ *)
(* Documents *)

let doc_gen = FG.doc_gen FG.all_features

let deep_doc_gen = FG.doc_gen ~shape:FG.deep_shape FG.all_features
(* deep/narrow documents: long root-to-leaf paths, fanout <= 2 *)

let doc_print = FG.doc_print

(* ------------------------------------------------------------------ *)
(* XPath expressions *)

let comparison_gen = Gen.oneofl Pf_xpath.Ast.[ Eq; Ne; Lt; Le; Gt; Ge ]

let attr_filter_gen =
  let open Gen in
  frequency [ 3, attr_name_gen; 1, return Pf_xpath.Ast.text_attr ] >>= fun attr ->
  comparison_gen >>= fun cmp ->
  int_range 0 5 >>= fun v ->
  return (Pf_xpath.Ast.Attr { Pf_xpath.Ast.attr; cmp; value = Pf_xpath.Ast.Int v })

let single_path_gen = FG.path_gen FG.structure_axes

let single_path_attr_gen = FG.path_gen { FG.all_features with FG.nested = false }

let any_path_gen = FG.path_gen FG.all_features

let descendant_heavy_path_gen =
  (* wildcard runs and descendant axes only — worst case for the predicate
     index's position constraints *)
  FG.path_gen ~max_steps:6 FG.structure_axes

let path_gen_with_features = FG.path_gen

let path_print p = Pf_xpath.Parser.to_string p

(* Repeated-tag worlds: tiny alphabet {a,b} so document paths and
   expressions collide constantly — backtracking-heavy occurrence
   determination. *)

let repeated_tag_doc_path_gen =
  Gen.(list_size (int_range 1 8) (oneofl [ "a"; "b" ]) >|= Pf_xml.Path.of_tags)

let repeated_tag_path_gen =
  let open Gen in
  let step =
    oneofl Pf_xpath.Ast.[ Child; Child; Descendant ] >>= fun axis ->
    oneofl [ "a"; "b" ] >>= fun t ->
    return { Pf_xpath.Ast.axis; test = Pf_xpath.Ast.Tag t; filters = [] }
  in
  bool >>= fun absolute ->
  list_size (int_range 1 5) step >>= fun steps ->
  return { Pf_xpath.Ast.absolute; steps }

(* ------------------------------------------------------------------ *)

(* Occurrence-pair result sets for the occurrence determination tests. *)
let results_gen =
  let open Gen in
  let pair_gen = pair (int_range 1 4) (int_range 1 4) in
  list_size (int_range 1 5) (list_size (int_range 0 4) pair_gen)
  >>= fun rs -> return (Array.of_list rs)

(* Backtracking-heavy variant: longer chains over a dense occurrence range
   1..3, so most pairs connect and dead ends appear deep in the search. *)
let dense_results_gen =
  let open Gen in
  let pair_gen = pair (int_range 1 3) (int_range 1 3) in
  list_size (int_range 3 6) (list_size (int_range 1 5) pair_gen)
  >>= fun rs -> return (Array.of_list rs)

let results_print rs =
  String.concat " | "
    (Array.to_list
       (Array.map
          (fun l ->
            String.concat ","
              (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) l))
          rs))
