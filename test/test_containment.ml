(* Tests for the covering / containment analysis (the paper's Section 4.2.2
   covering relation, generalized beyond prefixes). *)

open Pf_core

let p = Pf_xpath.Parser.parse

let check_covers expected s1 s2 =
  Alcotest.(check bool)
    (Printf.sprintf "%s covers %s" s1 s2)
    expected
    (Containment.covers (p s1) (p s2))

let test_reflexive () =
  List.iter
    (fun s -> check_covers true s s)
    [ "/a/b"; "a//b"; "/*/a"; "a[@x = 3]"; "//a/*/b" ]

let test_prefix_covering () =
  (* the special case the engine's trie exploits *)
  check_covers true "/a/b" "/a/b/c";
  check_covers true "/a" "/a/b/c";
  check_covers true "a/b" "a/b/c";
  check_covers false "/a/b/c" "/a/b"

let test_suffix_covering () =
  (* the paper's "future work" case: a suffix of a relative expression *)
  check_covers true "b/c" "a/b/c";
  check_covers true "c" "a/b/c";
  check_covers true "b/c" "/a/b/c";
  check_covers false "/b/c" "/a/b/c"

let test_contained_covering () =
  check_covers true "b" "a/b/c";
  check_covers true "a//c" "a/b/c";
  check_covers true "a//c" "a/b//c/d";
  check_covers true "/a//c" "/a/b/c";
  check_covers false "a/c" "a/b/c"

let test_wildcards () =
  check_covers true "/a/*/c" "/a/b/c";
  check_covers false "/a/b/c" "/a/*/c";
  check_covers true "/*/b" "/a/b";
  check_covers true "a/*" "a/b/c";
  check_covers true "*/b" "a/b";
  check_covers true "/*" "/a/b";
  check_covers true "*/*" "a/b";
  check_covers false "*/*/*" "a/b"

let test_descendants () =
  check_covers true "a//b" "a/b";
  check_covers true "a//b" "a/x/b";
  check_covers false "a/b" "a//b";
  check_covers true "a//c" "a//b/c";
  check_covers true "//b" "/a/b";
  check_covers false "/a/b" "/a//b"

let test_attr_filters () =
  check_covers true "a[@x >= 3]" "a[@x >= 5]";
  check_covers false "a[@x >= 5]" "a[@x >= 3]";
  check_covers true "a[@x >= 3]" "a[@x = 7]";
  check_covers true "a" "a[@x = 7]";
  check_covers false "a[@x = 7]" "a";
  check_covers true "a[@x != 2]" "a[@x >= 3]";
  check_covers true "a[@x <= 4]" "a[@x < 5]";
  check_covers false "a[@x <= 4]" "a[@y <= 4]"

let test_implied_filter () =
  let f attr cmp value = { Pf_xpath.Ast.attr; cmp; value = Pf_xpath.Ast.Int value } in
  let imp a b = Containment.implied_filter a b in
  Alcotest.(check bool) "ge/ge" true (imp (f "x" Pf_xpath.Ast.Ge 3) (f "x" Pf_xpath.Ast.Ge 5));
  Alcotest.(check bool) "lt adjacency" true (imp (f "x" Pf_xpath.Ast.Le 4) (f "x" Pf_xpath.Ast.Lt 5));
  Alcotest.(check bool) "gt adjacency" true (imp (f "x" Pf_xpath.Ast.Ge 5) (f "x" Pf_xpath.Ast.Gt 4));
  Alcotest.(check bool) "ne from eq" true (imp (f "x" Pf_xpath.Ast.Ne 2) (f "x" Pf_xpath.Ast.Eq 3));
  Alcotest.(check bool) "eq needs eq" false (imp (f "x" Pf_xpath.Ast.Eq 3) (f "x" Pf_xpath.Ast.Ge 3));
  Alcotest.(check bool) "different attrs" false (imp (f "x" Pf_xpath.Ast.Ge 1) (f "y" Pf_xpath.Ast.Ge 5))

let test_redundant () =
  let exprs = List.map p [ "/a/b/c"; "/a/b"; "x/y"; "/a/*/c" ] in
  let pairs = Containment.redundant exprs in
  (* /a/b covers /a/b/c; /a/*/c covers /a/b/c *)
  Alcotest.(check bool) "prefix pair" true (List.mem (1, 0) pairs);
  Alcotest.(check bool) "wildcard pair" true (List.mem (3, 0) pairs);
  Alcotest.(check bool) "no reverse" false (List.mem (0, 1) pairs);
  Alcotest.(check bool) "unrelated" false (List.exists (fun (i, j) -> i = 2 || j = 2) pairs)

let test_text_filter_covering () =
  check_covers true "b[text() >= 3]" "b[text() >= 5]";
  check_covers false "b[text() >= 5]" "b[text() >= 3]";
  check_covers true "b" "b[text() = 4]";
  (* a text() filter and an attribute filter never imply each other *)
  check_covers false "b[text() >= 3]" "b[@x >= 5]"

let test_absolute_relative_interplay () =
  check_covers true "//a" "a";
  check_covers true "a" "//a";
  check_covers true "a/b" "//a/b";
  check_covers false "/a/b" "a/b";
  check_covers true "//a//b" "/a/b"

let test_transitivity_spot () =
  (* a//c covers a/b/c covers /x... chain sample: if covers p q and covers
     q r then covers p r should hold for these concrete cases *)
  let p = p "a//c" and q = Pf_xpath.Parser.parse "a/*/c" and r = Pf_xpath.Parser.parse "a/b/c" in
  Alcotest.(check bool) "p covers q" true (Containment.covers p q);
  Alcotest.(check bool) "q covers r" true (Containment.covers q r);
  Alcotest.(check bool) "p covers r" true (Containment.covers p r)

let test_nested_rejected () =
  match Containment.covers (p "a[b]") (p "a[b]/c") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nested paths should be rejected"

(* Soundness: whenever [covers s1 s2] claims containment, no random
   document may match s2 but not s1. *)
let prop_soundness =
  QCheck2.Test.make ~name:"covers is sound (no counterexample document)" ~count:1500
    ~print:(fun (s1, s2, d) ->
      Gen_helpers.path_print s1 ^ " covers? " ^ Gen_helpers.path_print s2 ^ " on "
      ^ Gen_helpers.doc_print d)
    QCheck2.Gen.(
      triple Gen_helpers.single_path_attr_gen Gen_helpers.single_path_attr_gen
        Gen_helpers.doc_gen)
    (fun (s1, s2, d) ->
      (not (Containment.covers s1 s2))
      || (not (Pf_xpath.Eval.matches s2 d))
      || Pf_xpath.Eval.matches s1 d)

(* The trie's prefix relation is always confirmed. *)
let prop_prefix_complete =
  QCheck2.Test.make ~name:"prefixes are always covered" ~count:800
    ~print:Gen_helpers.path_print Gen_helpers.single_path_gen (fun s ->
      let n = Pf_xpath.Ast.num_steps s in
      n < 2
      ||
      let prefix =
        { s with Pf_xpath.Ast.steps = List.filteri (fun i _ -> i < n - 1) s.Pf_xpath.Ast.steps }
      in
      Containment.covers prefix s)

let () =
  Alcotest.run "containment"
    [
      ( "unit",
        [
          Alcotest.test_case "reflexive" `Quick test_reflexive;
          Alcotest.test_case "prefix covering" `Quick test_prefix_covering;
          Alcotest.test_case "suffix covering" `Quick test_suffix_covering;
          Alcotest.test_case "contained covering" `Quick test_contained_covering;
          Alcotest.test_case "wildcards" `Quick test_wildcards;
          Alcotest.test_case "descendants" `Quick test_descendants;
          Alcotest.test_case "attribute filters" `Quick test_attr_filters;
          Alcotest.test_case "implied_filter" `Quick test_implied_filter;
          Alcotest.test_case "redundant" `Quick test_redundant;
          Alcotest.test_case "text() covering" `Quick test_text_filter_covering;
          Alcotest.test_case "absolute/relative" `Quick test_absolute_relative_interplay;
          Alcotest.test_case "transitivity spot-check" `Quick test_transitivity_spot;
          Alcotest.test_case "nested rejected" `Quick test_nested_rejected;
        ] );
      ( "properties",
        List.map Gen_helpers.to_alcotest [ prop_soundness; prop_prefix_complete ] );
    ]
