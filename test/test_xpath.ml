(* Tests for the XPath subset: parser, printer, reference evaluator. *)

open Pf_xpath

let parse = Parser.parse

let check_print msg expected src =
  Alcotest.(check string) msg expected (Parser.to_string (parse src))

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_shapes () =
  let p = parse "/a/b" in
  Alcotest.(check bool) "absolute" true p.Ast.absolute;
  Alcotest.(check int) "steps" 2 (Ast.num_steps p);
  let p = parse "a//b" in
  Alcotest.(check bool) "relative" false p.Ast.absolute;
  (match p.Ast.steps with
  | [ s1; s2 ] ->
    Alcotest.(check bool) "first child" true (s1.Ast.axis = Ast.Child);
    Alcotest.(check bool) "second descendant" true (s2.Ast.axis = Ast.Descendant)
  | _ -> Alcotest.fail "two steps expected");
  let p = parse "//a" in
  Alcotest.(check bool) "leading // absolute" true p.Ast.absolute;
  match p.Ast.steps with
  | [ s ] -> Alcotest.(check bool) "descendant" true (s.Ast.axis = Ast.Descendant)
  | _ -> Alcotest.fail "one step expected"

let test_parse_wildcards () =
  let p = parse "/*/a/*" in
  match p.Ast.steps with
  | [ s1; s2; s3 ] ->
    Alcotest.(check bool) "w1" true (s1.Ast.test = Ast.Wildcard);
    Alcotest.(check bool) "tag" true (s2.Ast.test = Ast.Tag "a");
    Alcotest.(check bool) "w3" true (s3.Ast.test = Ast.Wildcard)
  | _ -> Alcotest.fail "three steps expected"

let test_parse_attr_filters () =
  let p = parse "/a[@x = 3]/b[@y >= 10][@z != \"s\"]" in
  match p.Ast.steps with
  | [ s1; s2 ] ->
    (match s1.Ast.filters with
    | [ Ast.Attr { attr = "x"; cmp = Ast.Eq; value = Ast.Int 3 } ] -> ()
    | _ -> Alcotest.fail "bad filter on a");
    (match s2.Ast.filters with
    | [ Ast.Attr { attr = "y"; cmp = Ast.Ge; value = Ast.Int 10 };
        Ast.Attr { attr = "z"; cmp = Ast.Ne; value = Ast.Str "s" } ] -> ()
    | _ -> Alcotest.fail "bad filters on b")
  | _ -> Alcotest.fail "two steps expected"

let test_parse_all_comparisons () =
  List.iter
    (fun (src, cmp) ->
      match (parse (Printf.sprintf "a[@x %s 1]" src)).Ast.steps with
      | [ { Ast.filters = [ Ast.Attr f ]; _ } ] ->
        Alcotest.(check bool) src true (f.Ast.cmp = cmp)
      | _ -> Alcotest.fail "expected one attr filter")
    [ "=", Ast.Eq; "!=", Ast.Ne; "<", Ast.Lt; "<=", Ast.Le; ">", Ast.Gt; ">=", Ast.Ge ]

let test_parse_nested () =
  let p = parse "/a[*/c[d]/e]//c[d]/e" in
  Alcotest.(check bool) "not single path" false (Ast.is_single_path p);
  match p.Ast.steps with
  | [ s1; s2; _s3 ] ->
    (match s1.Ast.filters with
    | [ Ast.Nested q ] ->
      Alcotest.(check int) "nested steps" 3 (List.length q.Ast.steps)
    | _ -> Alcotest.fail "expected nested filter on a");
    (match s2.Ast.filters with
    | [ Ast.Nested q ] -> Alcotest.(check int) "nested d" 1 (List.length q.Ast.steps)
    | _ -> Alcotest.fail "expected nested filter on c")
  | _ -> Alcotest.fail "three steps expected"

let test_parse_nested_descendant () =
  let p = parse "a[//d]" in
  match p.Ast.steps with
  | [ { Ast.filters = [ Ast.Nested { Ast.steps = [ s ]; _ } ]; _ } ] ->
    Alcotest.(check bool) "descendant nested" true (s.Ast.axis = Ast.Descendant)
  | _ -> Alcotest.fail "bad shape"

let test_parse_negative_value () =
  match (parse "a[@x = -3]").Ast.steps with
  | [ { Ast.filters = [ Ast.Attr { value = Ast.Int (-3); _ } ]; _ } ] -> ()
  | _ -> Alcotest.fail "expected -3"

let expect_error src =
  match parse src with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.fail (src ^ ": expected a parse error")

let test_parse_errors () =
  List.iter expect_error
    [ ""; "/"; "a/"; "a["; "a[]"; "a[@x]"; "a[@x ~ 3]"; "a[@x = ]"; "a]"; "a b";
      "a[@x = 'unterminated]"; "a//"; "///a"; "a[[b]]" ]

(* ------------------------------------------------------------------ *)
(* Printer *)

let test_print_forms () =
  check_print "absolute" "/a/b" "/a/b";
  check_print "descendant" "/a//b" "/a//b";
  check_print "relative" "a/b" "a/b";
  check_print "wildcards" "/*/a/*" "/*/a/*";
  check_print "leading //" "//a" "//a";
  check_print "attr" "a[@x = 3]" "a[@x=3]";
  check_print "nested" "/a[b/c]//d" "/a[b/c]//d"

let prop_roundtrip =
  QCheck2.Test.make ~name:"parse(print(p)) = p (modulo // normalization)" ~count:500
    ~print:Gen_helpers.path_print Gen_helpers.any_path_gen (fun p ->
      (* a relative path whose first step is a descendant prints as "//x",
         which reparses as absolute; normalize before comparing *)
      let normalize (p : Ast.path) =
        match p.Ast.steps with
        | { Ast.axis = Ast.Descendant; _ } :: _ -> { p with Ast.absolute = true }
        | _ -> p
      in
      Ast.equal (normalize p) (Parser.parse (Parser.to_string p)))

(* ------------------------------------------------------------------ *)
(* Reference evaluator *)

let doc = Pf_xml.Sax.parse_document "<a><b n=\"1\"><c/><c k=\"5\"/></b><d><b n=\"2\"><e/></b></d></a>"

let check_match expected src =
  Alcotest.(check bool) src expected (Eval.matches (parse src) doc)

let test_eval_absolute () =
  check_match true "/a";
  check_match true "/a/b/c";
  check_match false "/b";
  check_match false "/a/c";
  check_match true "/a/d/b/e";
  check_match false "/a/b/e"

let test_eval_relative () =
  check_match true "b/c";
  check_match true "d/b";
  check_match true "b/e";
  check_match false "c/b";
  check_match true "e"

let test_eval_wildcards () =
  check_match true "/*";
  check_match true "/a/*/c";
  check_match true "/*/*/*";
  check_match false "/*/*/*/*/*";
  check_match true "/a/*/*/e";
  check_match false "/a/*/*/c"

let test_eval_descendant () =
  check_match true "//c";
  check_match true "/a//e";
  check_match true "a//c";
  check_match true "/a//b/e";
  check_match false "/a//c/e";
  check_match true "//b//e";
  check_match false "//c//e"

let test_eval_attr () =
  check_match true "/a/b[@n = 1]";
  check_match false "/a/b[@n = 3]";
  check_match true "b[@n >= 2]";
  check_match true "b[@n != 1]";
  check_match true "/a/b/c[@k < 6]";
  check_match false "/a/b/c[@k < 5]";
  check_match false "c[@missing = 1]"

let test_eval_nested () =
  check_match true "/a[b/c]";
  check_match true "/a[d]/b";
  check_match false "/a[e]";
  check_match true "/a[//e]";
  check_match true "/a/d[b[e]]";
  check_match false "/a/d[b[c]]";
  check_match false "a[b[@n = 2]]";
  (* that b sits under d, not directly under a *)
  check_match true "a[//b[@n = 2]]";
  check_match true "d[b[@n = 2]]"

let test_eval_select_counts () =
  Alcotest.(check int) "two c nodes" 2 (List.length (Eval.select (parse "//c") doc));
  Alcotest.(check int) "two b nodes" 2 (List.length (Eval.select (parse "//b") doc));
  Alcotest.(check int) "dedup under //" 1 (List.length (Eval.select (parse "//e") doc))

let test_text_filters () =
  let d = Pf_xml.Sax.parse_document "<a><b>42</b><c>hello</c><d/></a>" in
  let m src = Eval.matches (parse src) d in
  Alcotest.(check bool) "numeric text eq" true (m "b[text() = 42]");
  Alcotest.(check bool) "numeric text ge" true (m "b[text() >= 40]");
  Alcotest.(check bool) "numeric text wrong" false (m "b[text() = 7]");
  Alcotest.(check bool) "string text" true (m "c[text() = \"hello\"]");
  Alcotest.(check bool) "empty text never matches" false (m "d[text() = \"\"]");
  Alcotest.(check bool) "with structure" true (m "/a/b[text() < 50]");
  (* printer round-trip *)
  Alcotest.(check string) "printed" "b[text() = 42]"
    (Parser.to_string (parse "b[text()=42]"));
  (* whitespace around content is trimmed *)
  let d2 = Pf_xml.Sax.parse_document "<a><b>  7 </b></a>" in
  Alcotest.(check bool) "trimmed" true (Eval.matches (parse "b[text() = 7]") d2)

let test_eval_string_attr () =
  let d = Pf_xml.Sax.parse_document "<a><b s=\"hello\"/></a>" in
  Alcotest.(check bool) "string eq" true (Eval.matches (parse "b[@s = \"hello\"]") d);
  Alcotest.(check bool) "string ne" false (Eval.matches (parse "b[@s = \"world\"]") d);
  Alcotest.(check bool) "int vs non-int attr" false (Eval.matches (parse "b[@s = 3]") d)

(* matches_doc_path agrees with matches on linear documents *)
let prop_doc_path_agrees =
  let open QCheck2 in
  let linear_doc_gen =
    Gen.(
      list_size (int_range 1 6)
        (pair Gen_helpers.tag_gen
           (list_size (int_range 0 2) (pair Gen_helpers.attr_name_gen Gen_helpers.attr_value_gen))))
  in
  Test.make ~name:"matches_doc_path = matches on linear docs" ~count:1000
    ~print:(fun (p, steps) ->
      Gen_helpers.path_print p ^ " on "
      ^ String.concat "/" (List.map fst steps))
    Gen.(pair Gen_helpers.single_path_attr_gen linear_doc_gen)
    (fun (p, steps) ->
      let rec build = function
        | [] -> assert false
        | [ (tag, attrs) ] -> Pf_xml.Tree.element ~attrs tag
        | (tag, attrs) :: rest ->
          Pf_xml.Tree.element ~attrs ~children:[ Pf_xml.Tree.Element (build rest) ] tag
      in
      let tree = Pf_xml.Tree.doc (build steps) in
      let path =
        match Pf_xml.Path.of_document tree with [ p ] -> p | _ -> assert false
      in
      Eval.matches_doc_path p path = Eval.matches p tree)

(* single-path matching over a tree is the disjunction over its paths *)
let prop_tree_is_disjunction_of_paths =
  QCheck2.Test.make ~name:"matches(tree) = exists path matched" ~count:500
    ~print:(fun (p, d) -> Gen_helpers.path_print p ^ " on " ^ Gen_helpers.doc_print d)
    QCheck2.Gen.(pair Gen_helpers.single_path_attr_gen Gen_helpers.doc_gen)
    (fun (p, d) ->
      let by_paths =
        List.exists (Eval.matches_doc_path p) (Pf_xml.Path.of_document d)
      in
      by_paths = Eval.matches p d)

let () =
  let qt = List.map Gen_helpers.to_alcotest in
  Alcotest.run "xpath"
    [
      ( "parser",
        [
          Alcotest.test_case "shapes" `Quick test_parse_shapes;
          Alcotest.test_case "wildcards" `Quick test_parse_wildcards;
          Alcotest.test_case "attr filters" `Quick test_parse_attr_filters;
          Alcotest.test_case "all comparisons" `Quick test_parse_all_comparisons;
          Alcotest.test_case "nested (paper example)" `Quick test_parse_nested;
          Alcotest.test_case "nested descendant" `Quick test_parse_nested_descendant;
          Alcotest.test_case "negative value" `Quick test_parse_negative_value;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      "printer", Alcotest.test_case "forms" `Quick test_print_forms :: qt [ prop_roundtrip ];
      ( "eval",
        [
          Alcotest.test_case "absolute" `Quick test_eval_absolute;
          Alcotest.test_case "relative" `Quick test_eval_relative;
          Alcotest.test_case "wildcards" `Quick test_eval_wildcards;
          Alcotest.test_case "descendant" `Quick test_eval_descendant;
          Alcotest.test_case "attributes" `Quick test_eval_attr;
          Alcotest.test_case "nested" `Quick test_eval_nested;
          Alcotest.test_case "select counts" `Quick test_eval_select_counts;
          Alcotest.test_case "string attributes" `Quick test_eval_string_attr;
          Alcotest.test_case "text() filters" `Quick test_text_filters;
        ] );
      "properties", qt [ prop_doc_path_agrees; prop_tree_is_disjunction_of_paths ];
    ]
