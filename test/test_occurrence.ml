(* Tests for the occurrence determination algorithm (Algorithm 1). *)

open Pf_core

let test_table_1_chains () =
  (* a//b/c on (a,b,c,a,b,c): R1 = {(1,1),(1,2),(2,2)}, R2 = {(1,1),(2,2)} —
     the boldface combination (1,1),(1,1) is a true match *)
  let rs = [| [ 1, 1; 1, 2; 2, 2 ]; [ 1, 1; 2, 2 ] |] in
  Alcotest.(check bool) "match" true (Occurrence.matches rs);
  Alcotest.(check bool) "faithful agrees" true (Occurrence.matches_faithful rs);
  (* c//b//a: R1 = {(1,2)}, R2 = {(1,2)} — 2 <> 1, no chain *)
  let rs = [| [ 1, 2 ]; [ 1, 2 ] |] in
  Alcotest.(check bool) "no match" false (Occurrence.matches rs);
  Alcotest.(check bool) "faithful agrees (no)" false (Occurrence.matches_faithful rs)

let test_empty_cases () =
  Alcotest.(check bool) "no predicates" false (Occurrence.matches [||]);
  Alcotest.(check bool) "faithful no predicates" false (Occurrence.matches_faithful [||]);
  Alcotest.(check bool) "empty R_i" false (Occurrence.matches [| [ 1, 1 ]; [] |]);
  Alcotest.(check bool) "faithful empty R_i" false
    (Occurrence.matches_faithful [| [ 1, 1 ]; [] |]);
  Alcotest.(check bool) "single" true (Occurrence.matches [| [ 3, 4 ] |]);
  Alcotest.(check bool) "faithful single" true (Occurrence.matches_faithful [| [ 3, 4 ] |])

let test_backtracking_needed () =
  (* the first choice (1,2) dead-ends; backtracking must find (1,1)->(1,3) *)
  let rs = [| [ 1, 2; 1, 1 ]; [ 1, 3 ] |] in
  Alcotest.(check bool) "backtrack" true (Occurrence.matches rs);
  Alcotest.(check bool) "faithful backtrack" true (Occurrence.matches_faithful rs);
  (* deep backtracking across three levels *)
  let rs = [| [ 1, 1; 1, 2 ]; [ 1, 5; 2, 3 ]; [ 3, 4 ] |] in
  Alcotest.(check bool) "deep" true (Occurrence.matches rs);
  Alcotest.(check bool) "faithful deep" true (Occurrence.matches_faithful rs)

let test_discontinuous () =
  (* the paper's pruning example: (1,1) then (2,3) is not a candidate *)
  let rs = [| [ 1, 1 ]; [ 2, 3 ] |] in
  Alcotest.(check bool) "discontinuous" false (Occurrence.matches rs)

let test_iter_chains_enumerates () =
  let rs = [| [ 1, 1; 1, 2 ]; [ 1, 3; 2, 3; 2, 4 ] |] in
  let chains = ref [] in
  let found =
    Occurrence.iter_chains rs (fun c ->
        chains := Array.to_list c :: !chains;
        false)
  in
  Alcotest.(check bool) "no chain accepted" false found;
  Alcotest.(check (list (list (pair int int))))
    "all valid chains enumerated"
    [ [ 1, 1; 1, 3 ]; [ 1, 2; 2, 3 ]; [ 1, 2; 2, 4 ] ]
    (List.rev !chains)

let test_iter_chains_stops_on_accept () =
  let rs = [| [ 1, 1; 1, 2 ]; [ 1, 3; 2, 3 ] |] in
  let count = ref 0 in
  let found =
    Occurrence.iter_chains rs (fun _ ->
        incr count;
        true)
  in
  Alcotest.(check bool) "accepted" true found;
  Alcotest.(check int) "stopped after first" 1 !count

let prop_implementations_agree =
  QCheck2.Test.make ~name:"DFS = faithful Algorithm 1" ~count:5000
    ~print:Gen_helpers.results_print Gen_helpers.results_gen (fun rs ->
      Occurrence.matches rs = Occurrence.matches_faithful rs)

let prop_matches_iff_chain_exists =
  QCheck2.Test.make ~name:"matches <=> a valid chain exists (brute force)" ~count:3000
    ~print:Gen_helpers.results_print Gen_helpers.results_gen (fun rs ->
      (* brute force: try all combinations *)
      let n = Array.length rs in
      let rec brute i prev =
        if i >= n then true
        else
          List.exists (fun (o1, o2) -> (i = 0 || o1 = prev) && brute (i + 1) o2) rs.(i)
      in
      Occurrence.matches rs = (n > 0 && brute 0 (-1)))

let prop_iter_chains_consistent =
  QCheck2.Test.make ~name:"iter_chains finds a chain iff matches" ~count:3000
    ~print:Gen_helpers.results_print Gen_helpers.results_gen (fun rs ->
      let found = Occurrence.iter_chains rs (fun _ -> true) in
      found = Occurrence.matches rs)

(* ------------------------------------------------------------------ *)
(* Brute-force oracle: enumerate the full cartesian product of occurrence
   assignments — one pair from each R_i, no pruning, no sharing — and test
   the chain constraint on each assignment. Exponential, but exact; the
   generators keep |R_1| * ... * |R_n| small enough to enumerate. *)

let all_assignments rs =
  let n = Array.length rs in
  let acc = ref [] in
  let rec go i chain =
    if i = n then acc := List.rev chain :: !acc
    else List.iter (fun p -> go (i + 1) (p :: chain)) rs.(i)
  in
  if n > 0 then go 0 [];
  List.rev !acc

let chain_ok chain =
  let rec ok = function
    | (_, o2) :: ((o1', _) :: _ as rest) -> o2 = o1' && ok rest
    | _ -> true
  in
  ok chain

let brute_matches rs = List.exists chain_ok (all_assignments rs)

let prop_cartesian_oracle =
  QCheck2.Test.make ~name:"matches = naive cartesian enumeration" ~count:3000
    ~print:Gen_helpers.results_print Gen_helpers.results_gen (fun rs ->
      Occurrence.matches rs = brute_matches rs)

let prop_cartesian_oracle_dense =
  (* longer chains over a dense occurrence range: most pairs connect, so
     dead ends appear deep and the backtracking is heavily exercised *)
  QCheck2.Test.make ~name:"dense repeated-tag results: all implementations = oracle"
    ~count:1000 ~print:Gen_helpers.results_print Gen_helpers.dense_results_gen
    (fun rs ->
      let want = brute_matches rs in
      Occurrence.matches rs = want && Occurrence.matches_faithful rs = want)

let prop_iter_chains_complete =
  (* iter_chains must enumerate exactly the valid assignments, in order *)
  QCheck2.Test.make ~name:"iter_chains = the valid cartesian assignments"
    ~count:1000 ~print:Gen_helpers.results_print Gen_helpers.dense_results_gen
    (fun rs ->
      let enumerated = ref [] in
      ignore
        (Occurrence.iter_chains rs (fun c ->
             enumerated := Array.to_list c :: !enumerated;
             false));
      List.rev !enumerated = List.filter chain_ok (all_assignments rs))

(* Repeated-tag document paths: a tiny {a,b} alphabet makes the same tag
   recur along one path, so occurrence numbers repeat and the engine's
   occurrence determination must backtrack. The reference evaluator on
   document paths is the oracle. *)
let prop_engine_matches_eval_on_repeated_tags =
  let open QCheck2 in
  let gen =
    Gen.pair
      (Gen.list_size (Gen.int_range 1 6) Gen_helpers.repeated_tag_path_gen)
      (Gen.list_size (Gen.int_range 1 4) Gen_helpers.repeated_tag_doc_path_gen)
  in
  let print (exprs, dps) =
    String.concat " ; " (List.map Gen_helpers.path_print exprs)
    ^ " @ "
    ^ String.concat " ; "
        (List.map
           (fun dp ->
             String.concat "/"
               (Array.to_list
                  (Array.map (fun (s : Pf_xml.Path.step) -> s.Pf_xml.Path.tag)
                     dp.Pf_xml.Path.steps)))
           dps)
  in
  Test.make ~name:"engine = eval on repeated-tag document paths" ~count:1000 ~print gen
    (fun (exprs, dps) ->
      List.for_all
        (fun variant ->
          let eng = Engine.create ~variant () in
          let ids = List.map (Engine.add eng) exprs in
          List.for_all
            (fun dp ->
              let matched = Engine.match_path eng dp in
              List.for_all2
                (fun id e ->
                  List.mem id matched = Pf_xpath.Eval.matches_doc_path e dp)
                ids exprs)
            dps)
        [ Expr_index.Basic; Expr_index.Access_predicate ])

(* ------------------------------------------------------------------ *)
(* Packed arena: the flat reusable representation must agree with the
   list-based implementations on every entry point. One arena shared by
   all cases exercises the cross-document reuse (epoch/cursor reset), not
   just a fresh structure. *)

let shared_arena = Occurrence.create_arena ()

let prop_packed_agrees_with_lists =
  QCheck2.Test.make ~name:"packed arena = list matches (both algorithms)" ~count:5000
    ~print:Gen_helpers.results_print Gen_helpers.results_gen (fun rs ->
      let a = shared_arena in
      Occurrence.load a rs;
      Occurrence.matches_packed a = Occurrence.matches rs
      && Occurrence.matches_faithful_packed a = Occurrence.matches_faithful rs)

let prop_packed_agrees_dense =
  QCheck2.Test.make ~name:"packed arena = list matches (dense repeated tags)"
    ~count:1000 ~print:Gen_helpers.results_print Gen_helpers.dense_results_gen
    (fun rs ->
      let a = shared_arena in
      Occurrence.load a rs;
      Occurrence.matches_packed a = Occurrence.matches rs
      && Occurrence.matches_faithful_packed a = Occurrence.matches_faithful rs)

let prop_iter_chains_packed_agrees =
  QCheck2.Test.make ~name:"packed chain enumeration = list enumeration" ~count:2000
    ~print:Gen_helpers.results_print Gen_helpers.results_gen (fun rs ->
      let a = shared_arena in
      Occurrence.load a rs;
      let packed = ref [] in
      ignore
        (Occurrence.iter_chains_packed a (fun c n ->
             packed :=
               List.init n (fun i -> c.(i) lsr 16, c.(i) land 0xffff) :: !packed;
             false));
      let listed = ref [] in
      ignore
        (Occurrence.iter_chains rs (fun c ->
             listed := Array.to_list c :: !listed;
             false));
      List.rev !packed = List.rev !listed)

let prop_chains_are_valid =
  QCheck2.Test.make ~name:"every enumerated chain satisfies the constraints" ~count:2000
    ~print:Gen_helpers.results_print Gen_helpers.results_gen (fun rs ->
      let ok = ref true in
      ignore
        (Occurrence.iter_chains rs (fun chain ->
             for i = 1 to Array.length chain - 1 do
               if fst chain.(i) <> snd chain.(i - 1) then ok := false
             done;
             Array.iteri (fun i pair -> if not (List.mem pair rs.(i)) then ok := false) chain;
             false));
      !ok)

let () =
  Alcotest.run "occurrence"
    [
      ( "unit",
        [
          Alcotest.test_case "Table 1 chains (Example 2)" `Quick test_table_1_chains;
          Alcotest.test_case "empty cases" `Quick test_empty_cases;
          Alcotest.test_case "backtracking" `Quick test_backtracking_needed;
          Alcotest.test_case "discontinuous occurrences" `Quick test_discontinuous;
          Alcotest.test_case "iter_chains enumerates" `Quick test_iter_chains_enumerates;
          Alcotest.test_case "iter_chains stops on accept" `Quick test_iter_chains_stops_on_accept;
        ] );
      ( "properties",
        List.map Gen_helpers.to_alcotest
          [
            prop_implementations_agree;
            prop_matches_iff_chain_exists;
            prop_iter_chains_consistent;
            prop_chains_are_valid;
            prop_packed_agrees_with_lists;
            prop_packed_agrees_dense;
            prop_iter_chains_packed_agrees;
          ] );
      ( "brute-force oracle",
        List.map Gen_helpers.to_alcotest
          [
            prop_cartesian_oracle;
            prop_cartesian_oracle_dense;
            prop_iter_chains_complete;
            prop_engine_matches_eval_on_repeated_tags;
          ] );
    ]
