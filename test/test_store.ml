(* Durability tests: WAL append/replay, snapshot codec, and the
   crash-recovery property — a snapshot plus a WAL truncated at an
   arbitrary byte recovers to exactly the state of an in-memory broker
   that replayed the surviving command prefix. *)

open Pf_net
module Broker = Pf_broker.Broker

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pfstore-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let make_broker () = Broker.create ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      b)

let write_file path bytes =
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc

(* Broker state equality: the snapshot is the canonical serializable
   image (ids, namespaces, suppression links, next id). *)
let same_state a b = Broker.snapshot a = Broker.snapshot b

(* {1 WAL} *)

let test_wal_roundtrip () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "w.wal" in
  let cmds =
    [
      Broker.Subscribe { ns = ""; subscriber = "alice"; expr = "/a/b" };
      Broker.Unsubscribe { ns = ""; id = 0 };
      Broker.Drop_subscriber { ns = "t"; subscriber = "bob" };
    ]
  in
  let wal, recovered = Wal.open_log path in
  Alcotest.(check int) "fresh log is empty" 0 (List.length recovered);
  List.iter (fun c -> ignore (Wal.append wal c : int)) cmds;
  Wal.sync wal;
  Wal.close wal;
  let wal, recovered = Wal.open_log path in
  Wal.close wal;
  Alcotest.(check bool) "records round-trip in order" true
    (List.map snd recovered = cmds);
  Alcotest.(check (list int)) "sequence numbers" [ 1; 2; 3 ] (List.map fst recovered)

let test_wal_torn_tail () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "w.wal" in
  let wal, _ = Wal.open_log path in
  for i = 0 to 4 do
    ignore
      (Wal.append wal
         (Broker.Subscribe
            { ns = ""; subscriber = "s"; expr = Printf.sprintf "/a/b%d" i })
        : int)
  done;
  Wal.sync wal;
  Wal.close wal;
  let whole = read_file path in
  (* chop one byte off: the last record is torn and must be dropped *)
  write_file path (Bytes.sub whole 0 (Bytes.length whole - 1));
  let wal, recovered = Wal.open_log path in
  Alcotest.(check int) "one record lost" 4 (List.length recovered);
  (* the truncated file accepts appends again *)
  ignore (Wal.append wal (Broker.Unsubscribe { ns = ""; id = 0 }) : int);
  Wal.sync wal;
  Wal.close wal;
  let wal, recovered = Wal.open_log path in
  Wal.close wal;
  Alcotest.(check int) "append after truncation" 5 (List.length recovered);
  (* the torn record's sequence number was never acknowledged, so the
     next append takes it over *)
  Alcotest.(check int) "sequence continues from the surviving prefix" 5
    (fst (List.nth recovered 4))

let test_wal_corrupt_header () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "w.wal" in
  let wal, _ = Wal.open_log path in
  ignore (Wal.append wal (Broker.Subscribe { ns = ""; subscriber = "a"; expr = "/x" }) : int);
  Wal.sync wal;
  Wal.close wal;
  (* smash the magic: the log is unreadable and must restart fresh — in
     particular the bad header has to be rewritten, or records appended
     after it would be invisible to every future recovery *)
  let whole = read_file path in
  Bytes.set whole 0 '\xff';
  write_file path whole;
  let wal, recovered = Wal.open_log path in
  Alcotest.(check int) "corrupt-header log recovers nothing" 0 (List.length recovered);
  ignore (Wal.append wal (Broker.Subscribe { ns = ""; subscriber = "b"; expr = "/y" }) : int);
  Wal.sync wal;
  Wal.close wal;
  let wal, recovered = Wal.open_log path in
  Wal.close wal;
  Alcotest.(check bool) "appends after a corrupt header survive reopen" true
    (List.map snd recovered = [ Broker.Subscribe { ns = ""; subscriber = "b"; expr = "/y" } ])

let test_wal_corrupt_crc () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "w.wal" in
  let wal, _ = Wal.open_log path in
  ignore (Wal.append wal (Broker.Subscribe { ns = ""; subscriber = "a"; expr = "/x" }) : int);
  ignore (Wal.append wal (Broker.Subscribe { ns = ""; subscriber = "b"; expr = "/y" }) : int);
  Wal.sync wal;
  Wal.close wal;
  let whole = read_file path in
  (* flip a byte in the second record's payload: crc rejects it *)
  let pos = Bytes.length whole - 1 in
  Bytes.set whole pos (Char.chr (Char.code (Bytes.get whole pos) lxor 0xff));
  write_file path whole;
  let wal, recovered = Wal.open_log path in
  Wal.close wal;
  Alcotest.(check int) "corrupt record dropped" 1 (List.length recovered)

(* {1 Snapshot codec} *)

let test_snapshot_codec () =
  let b = Broker.create () in
  ignore (Broker.subscribe_exn b ~subscriber:"alice" "/a//c");
  ignore (Broker.subscribe_exn b ~subscriber:"alice" "/a/b/c");
  ignore (Broker.subscribe_exn b ~ns:"t2" ~subscriber:"bob" "/a/d[@k = 'v']");
  let snap = Broker.snapshot b in
  let bytes = Store.encode_snapshot ~seq:17 snap in
  (match Store.decode_snapshot bytes with
  | Ok (seq, decoded) ->
      Alcotest.(check int) "seq" 17 seq;
      Alcotest.(check bool) "snapshot round-trips" true (decoded = snap)
  | Error e -> Alcotest.failf "rejected: %s" e);
  (* any single-byte corruption is caught *)
  let corrupt = Bytes.copy bytes in
  let pos = Bytes.length corrupt / 2 in
  Bytes.set corrupt pos (Char.chr (Char.code (Bytes.get corrupt pos) lxor 0x01));
  match Store.decode_snapshot corrupt with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt snapshot accepted"

(* {1 Store recovery} *)

let mutations =
  [
    Broker.Subscribe { ns = ""; subscriber = "alice"; expr = "/a//c" };
    Broker.Subscribe { ns = ""; subscriber = "alice"; expr = "/a/b/c" };
    Broker.Subscribe { ns = "t2"; subscriber = "bob"; expr = "/a/d" };
    Broker.Unsubscribe { ns = ""; id = 0 };
    Broker.Subscribe { ns = ""; subscriber = "carol"; expr = "/a/d" };
    Broker.Drop_subscriber { ns = "t2"; subscriber = "bob" };
  ]

let test_store_reopen () =
  with_dir @@ fun dir ->
  let st = Store.open_store ~dir make_broker in
  List.iter (fun c -> ignore (Store.log st c : Broker.event list)) mutations;
  Store.close st;
  let st2 = Store.open_store ~dir make_broker in
  let reference = Broker.create () in
  List.iter (fun c -> ignore (Broker.apply reference c)) mutations;
  Alcotest.(check bool) "reopened state matches replay" true
    (same_state (Store.broker st2) reference);
  Alcotest.(check int) "all records replayed" (List.length mutations)
    (Store.recovered_records st2);
  Store.close st2

let test_store_snapshot_cycle () =
  with_dir @@ fun dir ->
  (* snapshot every 2 mutations: 6 commands → 3 snapshots, empty tail *)
  let st = Store.open_store ~snapshot_every:2 ~dir make_broker in
  List.iter (fun c -> ignore (Store.log st c : Broker.event list)) mutations;
  Alcotest.(check int) "snapshots taken" 3 (Store.snapshots_taken st);
  Store.close st;
  let st2 = Store.open_store ~dir make_broker in
  Alcotest.(check int) "nothing to replay after snapshot" 0 (Store.recovered_records st2);
  let reference = Broker.create () in
  List.iter (fun c -> ignore (Broker.apply reference c)) mutations;
  Alcotest.(check bool) "state preserved via snapshot" true
    (same_state (Store.broker st2) reference);
  Store.close st2

let test_failed_commands_not_logged () =
  with_dir @@ fun dir ->
  let st = Store.open_store ~dir make_broker in
  ignore (Store.log st (Broker.Subscribe { ns = ""; subscriber = "a"; expr = "/a/b" }));
  ignore (Store.log st (Broker.Subscribe { ns = ""; subscriber = "a"; expr = "broken[" }));
  ignore (Store.log st (Broker.Unsubscribe { ns = ""; id = 77 }));
  (* publishes are not mutations and never hit the log *)
  ignore (Store.log st (Broker.Publish { ns = ""; doc = "<a><b/></a>" }));
  Alcotest.(check int) "only the successful mutation logged" 1 (Store.wal_seq st);
  Store.close st

(* {1 Crash-recovery property}

   Drive a store with [n] always-successful mutations (snapshotting
   every [snap_every]), then cut the WAL at an arbitrary byte. The
   surviving state must be byte-identical (same snapshot image) to an
   in-memory broker that applied the prefix of commands the snapshot
   covers plus the WAL records that survived the cut — for every cut
   point and snapshot cadence. *)

let gen_commands paths =
  (* every command succeeds: subscribes parse (generated paths), and
     unsubscribes target previously-issued ids (idempotent Ok false is
     still a success) *)
  List.concat
    (List.mapi
       (fun i p ->
         let expr = Pf_xpath.Parser.to_string p in
         let sub =
           Broker.Subscribe
             { ns = (if i mod 4 = 3 then "t2" else "");
               subscriber = Printf.sprintf "s%d" (i mod 3);
               expr }
         in
         if i mod 5 = 4 then begin
           (* target an id that exists, in the namespace it was issued
              under, so the unsubscribe never fails (and stays logged) *)
           let j = i / 2 in
           [ sub; Broker.Unsubscribe { ns = (if j mod 4 = 3 then "t2" else ""); id = j } ]
         end
         else [ sub ])
       paths)

let wal_record_ends bytes =
  (* record boundaries of a well-formed WAL: magic, then u32 len + u32
     crc + payload per record *)
  let header = 8 in
  let ends = ref [] in
  let pos = ref header in
  let len = Bytes.length bytes in
  (try
     while !pos < len do
       let b i = Char.code (Bytes.get bytes (!pos + i)) in
       let rlen = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
       pos := !pos + 8 + rlen;
       if !pos > len then raise Exit;
       ends := !pos :: !ends
     done
   with Exit -> ());
  List.rev !ends

let crash_recovery_case (paths, cut_frac, snap_every) =
  let cmds = gen_commands paths in
  with_dir @@ fun dir ->
  let st = Store.open_store ~snapshot_every:snap_every ~dir make_broker in
  List.iter (fun c -> ignore (Store.log st c : Broker.event list)) cmds;
  Store.close st;
  let wal_path = Filename.concat dir "broker.wal" in
  let snap_path = Filename.concat dir "broker.snap" in
  let covered_seq =
    if Sys.file_exists snap_path then
      match Store.decode_snapshot (read_file snap_path) with
      | Ok (seq, _) -> seq
      | Error e -> Alcotest.failf "snapshot unreadable: %s" e
    else 0
  in
  let wal = read_file wal_path in
  (* cut the WAL at an arbitrary byte of its tail *)
  let cut = 8 + int_of_float (cut_frac *. float_of_int (max 0 (Bytes.length wal - 8))) in
  let cut = min cut (Bytes.length wal) in
  write_file wal_path (Bytes.sub wal 0 cut);
  let surviving_tail =
    List.length (List.filter (fun e -> e <= cut) (wal_record_ends wal))
  in
  let surviving = covered_seq + surviving_tail in
  let st2 = Store.open_store ~snapshot_every:snap_every ~dir make_broker in
  let reference = Broker.create () in
  List.iteri (fun i c -> if i < surviving then ignore (Broker.apply reference c)) cmds;
  let ok = same_state (Store.broker st2) reference in
  Store.close st2;
  ok

let prop_crash_recovery =
  QCheck2.Test.make ~name:"snapshot + truncated WAL recovers the logged prefix" ~count:60
    ~print:(fun (paths, frac, snap_every) ->
      Printf.sprintf "%d paths, cut at %.2f of the log, snapshot every %d"
        (List.length paths) frac snap_every)
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 12) Gen_helpers.single_path_gen)
        (float_bound_inclusive 1.0)
        (oneofl [ 2; 5; 1000 ]))
    crash_recovery_case

let test_crash_recovery_edges () =
  (* deterministic corners: cut everything, cut nothing, tiny cadence *)
  List.iter
    (fun (frac, snap_every) ->
      let paths =
        List.map
          (fun s -> Pf_xpath.Parser.parse s)
          [ "/a/b/c"; "/a//c"; "//d"; "/a/b"; "/a/d[@k = '1']" ]
      in
      Alcotest.(check bool)
        (Printf.sprintf "cut %.1f snap %d" frac snap_every)
        true
        (crash_recovery_case (paths, frac, snap_every)))
    [ (0.0, 1000); (1.0, 1000); (0.5, 1); (0.3, 2); (0.9, 2) ]

let () =
  Alcotest.run "store"
    [
      ( "wal",
        [
          Alcotest.test_case "round-trip" `Quick test_wal_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_wal_torn_tail;
          Alcotest.test_case "corrupt header" `Quick test_wal_corrupt_header;
          Alcotest.test_case "corrupt crc" `Quick test_wal_corrupt_crc;
        ] );
      ( "snapshot",
        [ Alcotest.test_case "codec + corruption" `Quick test_snapshot_codec ] );
      ( "store",
        [
          Alcotest.test_case "reopen" `Quick test_store_reopen;
          Alcotest.test_case "snapshot cycle" `Quick test_store_snapshot_cycle;
          Alcotest.test_case "failed commands unlogged" `Quick test_failed_commands_not_logged;
          Alcotest.test_case "crash recovery edges" `Quick test_crash_recovery_edges;
        ] );
      ("properties", List.map Gen_helpers.to_alcotest [ prop_crash_recovery ]);
    ]
