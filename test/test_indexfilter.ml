(* Tests for the Index-Filter baseline. *)

let add = Pf_indexfilter.Index_filter.add_string

let test_basic () =
  let f = Pf_indexfilter.Index_filter.create () in
  let s1 = add f "/a/b" in
  let s2 = add f "/a/c" in
  let s3 = add f "b" in
  let m = Pf_indexfilter.Index_filter.match_string f "<a><b/></a>" in
  Alcotest.(check (list int)) "matches" [ s1; s3 ] m;
  ignore s2

let test_prefix_tree_sharing () =
  let f = Pf_indexfilter.Index_filter.create () in
  let _ = add f "/a/b/c" in
  let n1 = Pf_indexfilter.Index_filter.node_count f in
  let _ = add f "/a/b/d" in
  let n2 = Pf_indexfilter.Index_filter.node_count f in
  Alcotest.(check int) "three nodes" 3 n1;
  Alcotest.(check int) "one more node" 4 n2

let test_containment_axes () =
  let f = Pf_indexfilter.Index_filter.create () in
  let child = add f "/a/d" in
  let desc = add f "/a//d" in
  Alcotest.(check (list int)) "child fails, descendant holds" [ desc ]
    (Pf_indexfilter.Index_filter.match_string f "<a><b><d/></b></a>");
  Alcotest.(check (list int)) "both hold on direct child" [ child; desc ]
    (Pf_indexfilter.Index_filter.match_string f "<a><d/></a>")

let test_wildcards_match_any () =
  let f = Pf_indexfilter.Index_filter.create () in
  let s = add f "/a/*/c" in
  Alcotest.(check (list int)) "wildcard" [ s ]
    (Pf_indexfilter.Index_filter.match_string f "<a><b><c/></b></a>");
  Alcotest.(check (list int)) "too shallow" []
    (Pf_indexfilter.Index_filter.match_string f "<a><c/></a>")

let test_attr_filters () =
  let f = Pf_indexfilter.Index_filter.create () in
  let s1 = add f "/a/b[@x >= 2]" in
  Alcotest.(check (list int)) "holds" [ s1 ]
    (Pf_indexfilter.Index_filter.match_string f "<a><b x=\"3\"/></a>");
  Alcotest.(check (list int)) "fails" []
    (Pf_indexfilter.Index_filter.match_string f "<a><b x=\"1\"/></a>")

let test_nested_rejected () =
  let f = Pf_indexfilter.Index_filter.create () in
  match add f "/a[b]/c" with
  | exception Pf_intf.Unsupported _ -> ()
  | _ -> Alcotest.fail "nested paths unsupported in the baseline"

let test_repeated_tags () =
  let f = Pf_indexfilter.Index_filter.create () in
  let s = add f "/a//a/b" in
  Alcotest.(check (list int)) "nested same tag" [ s ]
    (Pf_indexfilter.Index_filter.match_string f "<a><c><a><b/></a></c></a>");
  Alcotest.(check (list int)) "no inner a" []
    (Pf_indexfilter.Index_filter.match_string f "<a><b/></a>")

let prop_oracle =
  QCheck2.Test.make ~name:"index-filter = oracle" ~count:600
    ~print:(fun (paths, d) ->
      String.concat " ; " (List.map Gen_helpers.path_print paths)
      ^ " on " ^ Gen_helpers.doc_print d)
    QCheck2.Gen.(
      pair (list_size (int_range 1 8) Gen_helpers.single_path_attr_gen) Gen_helpers.doc_gen)
    (fun (paths, d) ->
      let f = Pf_indexfilter.Index_filter.create () in
      let sids = List.map (fun p -> Pf_indexfilter.Index_filter.add f p, p) paths in
      let m = Pf_indexfilter.Index_filter.match_document f d in
      List.for_all (fun (sid, p) -> List.mem sid m = Pf_xpath.Eval.matches p d) sids)

let prop_agrees_with_engine =
  QCheck2.Test.make ~name:"index-filter = predicate engine" ~count:400
    ~print:(fun (paths, d) ->
      String.concat " ; " (List.map Gen_helpers.path_print paths)
      ^ " on " ^ Gen_helpers.doc_print d)
    QCheck2.Gen.(
      pair (list_size (int_range 1 8) Gen_helpers.single_path_gen) Gen_helpers.doc_gen)
    (fun (paths, d) ->
      let f = Pf_indexfilter.Index_filter.create () in
      let e = Pf_core.Engine.create () in
      List.iter (fun p -> ignore (Pf_indexfilter.Index_filter.add f p)) paths;
      List.iter (fun p -> ignore (Pf_core.Engine.add e p)) paths;
      Pf_indexfilter.Index_filter.match_document f d = Pf_core.Engine.match_document e d)

let () =
  Alcotest.run "indexfilter"
    [
      ( "unit",
        [
          Alcotest.test_case "basics" `Quick test_basic;
          Alcotest.test_case "prefix tree sharing" `Quick test_prefix_tree_sharing;
          Alcotest.test_case "containment axes" `Quick test_containment_axes;
          Alcotest.test_case "wildcards" `Quick test_wildcards_match_any;
          Alcotest.test_case "attr filters" `Quick test_attr_filters;
          Alcotest.test_case "nested rejected" `Quick test_nested_rejected;
          Alcotest.test_case "repeated tags" `Quick test_repeated_tags;
        ] );
      ( "properties",
        List.map Gen_helpers.to_alcotest [ prop_oracle; prop_agrees_with_engine ] );
    ]
