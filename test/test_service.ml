(* Pf_service: the domain-parallel service must be observationally identical
   to a sequential engine fed the same operation order — for any number of
   domains and any interleaving of subscribe/unsubscribe/submit. The QCheck
   property below drives exactly that comparison; the unit tests cover the
   lifecycle edges (backpressure under shutdown, post-shutdown rejection,
   metric totals). *)

open QCheck2
module FG = Pf_difftest.Feature_gen
module Service = Pf_service

(* ------------------------------------------------------------------ *)
(* Operation sequences: the service's whole API surface, interleaved *)

type op =
  | Subscribe of Pf_xpath.Ast.path
  | Unsubscribe of int  (* index into the sids accepted so far, mod count *)
  | Submit of Pf_xml.Tree.t

let op_gen =
  let open Gen in
  frequency
    [
      (2, FG.path_gen FG.all_features >|= fun p -> Subscribe p);
      (1, int_range 0 20 >|= fun k -> Unsubscribe k);
      (4, FG.doc_gen FG.all_features >|= fun d -> Submit d);
    ]

let ops_gen = Gen.list_size (Gen.int_range 5 30) op_gen

let op_print = function
  | Subscribe p -> "subscribe " ^ FG.path_print p
  | Unsubscribe k -> Printf.sprintf "unsubscribe #%d" k
  | Submit d -> "submit " ^ FG.doc_print d

let ops_print ops = String.concat "\n" (List.map op_print ops)

(* Both runners pick the unsubscribe target the same way: k indexes the
   accepted sids, newest first. *)
let pick sids n k = List.nth sids (k mod n)

let run_sequential ops =
  let module E = Pf_core.Engine in
  let eng = E.create () in
  let sids = ref [] and n = ref 0 in
  let results = ref [] in
  List.iter
    (function
      | Subscribe p ->
        sids := E.add eng p :: !sids;
        incr n
      | Unsubscribe k -> if !n > 0 then ignore (E.remove eng (pick !sids !n k))
      | Submit doc -> results := E.match_document eng doc :: !results)
    ops;
  List.rev !results

let run_service ?mode ~domains ops =
  let svc =
    Service.create ?mode ~domains ~batch:4 (Pf_core.Engine.filter () :> Pf_intf.filter)
  in
  let n_docs =
    List.length (List.filter (function Submit _ -> true | _ -> false) ops)
  in
  let results = Array.make n_docs [] in
  let next = ref 0 in
  let sids = ref [] and n = ref 0 in
  List.iter
    (function
      | Subscribe p ->
        sids := Service.subscribe svc p :: !sids;
        incr n
      | Unsubscribe k -> if !n > 0 then ignore (Service.unsubscribe svc (pick !sids !n k))
      | Submit doc ->
        let slot = !next in
        incr next;
        (* distinct slots; the drain below synchronizes the reads *)
        Service.submit svc doc (fun r -> results.(slot) <- r))
    ops;
  Service.drain svc;
  Service.shutdown svc;
  Array.to_list results

let service_equals_sequential =
  Test.make ~count:30 ~name:"service: any domain count = sequential engine"
    ~print:ops_print ops_gen (fun ops ->
      let expected = run_sequential ops in
      List.for_all
        (fun (mode, domains) ->
          let got = run_service ~mode ~domains ops in
          if got <> expected then
            Test.fail_reportf "mode=%s domains=%d:\nexpected %s\ngot      %s"
              (Service.mode_name mode) domains
              (String.concat "; "
                 (List.map (fun l -> String.concat "," (List.map string_of_int l)) expected))
              (String.concat "; "
                 (List.map (fun l -> String.concat "," (List.map string_of_int l)) got))
          else true)
        [
          Service.Doc, 1; Service.Doc, 2; Service.Doc, 4;
          Service.Expr, 1; Service.Expr, 2; Service.Expr, 4;
        ])

(* filter_batch is just submit + barrier: same answers, input order kept *)
let filter_batch_equals_sequential =
  Test.make ~count:20 ~name:"service: filter_batch = sequential engine"
    ~print:ops_print ops_gen (fun ops ->
      let svc = Service.create ~domains:2 ~batch:2 (Pf_core.Engine.filter () :> Pf_intf.filter) in
      let sids = ref [] and n = ref 0 in
      (* filter_batch needs all documents at once, so compare against the
         sequential run of the reordered sequence: subscriptions first *)
      let subs, docs =
        List.partition (function Submit _ -> false | _ -> true) ops
      in
      let expected = run_sequential (subs @ docs) in
      List.iter
        (function
          | Subscribe p ->
            sids := Service.subscribe svc p :: !sids;
            incr n
          | Unsubscribe k ->
            if !n > 0 then ignore (Service.unsubscribe svc (pick !sids !n k))
          | Submit _ -> ())
        subs;
      let got =
        Service.filter_batch svc
          (List.filter_map (function Submit d -> Some d | _ -> None) docs)
      in
      Service.shutdown svc;
      got = expected)

(* ------------------------------------------------------------------ *)
(* Lifecycle unit tests *)

let doc_a = Pf_xml.Sax.parse_document "<a><b/></a>"

let test_shutdown_under_load () =
  (* tiny queue, many documents: submissions block on backpressure, then
     shutdown must still deliver every accepted document exactly once *)
  let svc =
    Service.create ~domains:2 ~queue_capacity:2 ~batch:1 (Pf_core.Engine.filter () :> Pf_intf.filter)
  in
  let sid = Service.subscribe_string svc "/a" in
  let hits = Atomic.make 0 in
  let total = 200 in
  for _ = 1 to total do
    Service.submit svc doc_a (fun r ->
        if r = [ sid ] then Atomic.incr hits)
  done;
  Service.shutdown svc;
  Alcotest.(check int) "every document delivered, correctly matched" total
    (Atomic.get hits);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pf_service.submit: service is shut down") (fun () ->
      Service.submit svc doc_a ignore);
  Alcotest.check_raises "subscribe after shutdown"
    (Invalid_argument "Pf_service.subscribe: service is shut down") (fun () ->
      ignore (Service.subscribe_string svc "/a"));
  (* idempotent *)
  Service.shutdown svc;
  let waits =
    match Pf_obs.Registry.find_counter (Service.metrics svc) "submit_waits" with
    | Some n -> n
    | None -> 0
  in
  Alcotest.(check bool) "backpressure engaged at least once" true (waits > 0)

let test_unsupported_leaves_service_unchanged () =
  (* YFilter rejects nested path filters: the subscribe must raise and the
     service must keep working as if nothing happened *)
  let svc = Service.create ~domains:2 ((module Pf_yfilter.Yfilter) : Pf_intf.filter) in
  let sid = Service.subscribe_string svc "/a" in
  (try
     ignore (Service.subscribe_string svc "/a[b/c]");
     Alcotest.fail "nested path filter should be Unsupported"
   with Pf_intf.Unsupported _ -> ());
  Alcotest.(check int) "rejected subscribe not counted" 1
    (Service.subscription_count svc);
  let results = Service.filter_batch svc [ doc_a; doc_a ] in
  Alcotest.(check (list (list int))) "replicas still aligned" [ [ sid ]; [ sid ] ]
    results;
  Service.shutdown svc

let test_unsupported_nested_keeps_replicas_aligned () =
  (* The predicate engine rejects nested filters on wildcard steps from
     deep inside Nested.add's decomposition — after subscribe has already
     started. The rejection must not consume a sid on the primary, or the
     primary would run one sid ahead of the worker replicas and every
     later subscribe would report sids the workers disagree with. *)
  let svc = Service.create ~domains:2 (Pf_core.Engine.filter () :> Pf_intf.filter) in
  let sid_a = Service.subscribe_string svc "/a" in
  (try
     ignore (Service.subscribe_string svc "/a/*[b]");
     Alcotest.fail "nested filter on a wildcard step should be Unsupported"
   with Pf_intf.Unsupported _ -> ());
  Alcotest.(check int) "rejected subscribe not counted" 1
    (Service.subscription_count svc);
  let sid_b = Service.subscribe_string svc "/a/b" in
  Alcotest.(check int) "sids stay dense after a rejected subscribe" (sid_a + 1) sid_b;
  let results = Service.filter_batch svc [ doc_a; doc_a ] in
  Alcotest.(check (list (list int))) "replicas aligned with the primary's sids"
    [ [ sid_a; sid_b ]; [ sid_a; sid_b ] ]
    results;
  Service.shutdown svc

let test_concurrent_shutdown () =
  (* exactly one caller joins the workers; the others must block until it
     is done, and nobody joins a domain twice *)
  let svc = Service.create ~domains:2 (Pf_core.Engine.filter () :> Pf_intf.filter) in
  ignore (Service.subscribe_string svc "/a");
  for _ = 1 to 50 do
    Service.submit svc doc_a ignore
  done;
  let callers = Array.init 3 (fun _ -> Domain.spawn (fun () -> Service.shutdown svc)) in
  Service.shutdown svc;
  Array.iter Domain.join callers;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pf_service.submit: service is shut down") (fun () ->
      Service.submit svc doc_a ignore)

let test_metrics () =
  let svc = Service.create ~domains:2 (Pf_core.Engine.filter () :> Pf_intf.filter) in
  let sid_a = Service.subscribe_string svc "/a" in
  let sid_b = Service.subscribe_string svc "//b" in
  ignore (Service.unsubscribe svc sid_b);
  let docs = List.init 20 (fun _ -> doc_a) in
  let results = Service.filter_batch svc docs in
  List.iter
    (fun r -> Alcotest.(check (list int)) "only /a matches" [ sid_a ] r)
    results;
  Service.shutdown svc;
  Alcotest.(check int) "domains" 2 (Service.domains svc);
  Alcotest.(check int) "subscription_count counts accepted sids" 2
    (Service.subscription_count svc);
  let find name =
    match Pf_obs.Registry.find_counter (Service.metrics svc) name with
    | Some n -> n
    | None -> Alcotest.failf "service counter %s missing" name
  in
  Alcotest.(check int) "documents" 20 (find "documents");
  Alcotest.(check int) "subscribes" 2 (find "subscribes");
  Alcotest.(check int) "unsubscribes" 1 (find "unsubscribes");
  Alcotest.(check bool) "batches recorded" true (find "batches" > 0);
  (* merged engine view: the worker replicas together processed all 20
     documents; the primary processed none *)
  let merged = Pf_service.engine_metrics svc in
  Alcotest.(check string) "merged scope" "service-engines"
    (Pf_obs.Registry.scope merged);
  Alcotest.(check (option int)) "engine documents sum across replicas" (Some 20)
    (Pf_obs.Registry.find_counter merged "documents")

let test_expr_mode_under_load () =
  (* expression-sharded: every worker sees every document; delivery still
     happens exactly once per document, even with backpressure engaged *)
  let svc =
    Service.create ~mode:Service.Expr ~domains:4 ~queue_capacity:2 ~batch:3
      (Pf_core.Engine.filter () :> Pf_intf.filter)
  in
  (* sids 0..5 spread over the 4 shards: 0,4 -> w0; 1,5 -> w1; 2 -> w2; 3 -> w3 *)
  let subs = [ "/a"; "//b"; "/a/b"; "/c"; "//a"; "/a[@x='1']" ] in
  let sids = List.map (Service.subscribe_string svc) subs in
  Alcotest.(check (list int)) "dense global sids" [ 0; 1; 2; 3; 4; 5 ] sids;
  let expected = [ 0; 1; 2; 4 ] in
  let hits = Atomic.make 0 in
  let total = 200 in
  for _ = 1 to total do
    Service.submit svc doc_a (fun r -> if r = expected then Atomic.incr hits)
  done;
  Service.shutdown svc;
  Alcotest.(check int) "every document delivered once, shards merged sorted" total
    (Atomic.get hits);
  let find name =
    match Pf_obs.Registry.find_counter (Service.metrics svc) name with
    | Some n -> n
    | None -> Alcotest.failf "service counter %s missing" name
  in
  Alcotest.(check int) "documents counted once each" total (find "documents");
  Alcotest.(check int) "one merge per document" total (find "merges");
  (* every worker replica matched every document *)
  let merged = Service.engine_metrics svc in
  Alcotest.(check (option int)) "engine documents = total * domains"
    (Some (total * 4))
    (Pf_obs.Registry.find_counter merged "documents")

let test_expr_mode_unsubscribe_routing () =
  (* removing a sid must reach the shard that owns it, and only that shard *)
  let svc =
    Service.create ~mode:Service.Expr ~domains:2
      (Pf_core.Engine.filter () :> Pf_intf.filter)
  in
  let sid_a = Service.subscribe_string svc "/a" in
  let sid_b = Service.subscribe_string svc "/a/b" in
  let r1 = Service.filter_batch svc [ doc_a ] in
  Alcotest.(check (list (list int))) "both match" [ [ sid_a; sid_b ] ] r1;
  Alcotest.(check bool) "remove owned by worker 0" true (Service.unsubscribe svc sid_a);
  let r2 = Service.filter_batch svc [ doc_a ] in
  Alcotest.(check (list (list int))) "only b after removal" [ [ sid_b ] ] r2;
  Service.shutdown svc

let () =
  Alcotest.run "service"
    [
      ( "equivalence",
        [
          Gen_helpers.to_alcotest service_equals_sequential;
          Gen_helpers.to_alcotest filter_batch_equals_sequential;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "shutdown under load" `Quick test_shutdown_under_load;
          Alcotest.test_case "unsupported subscribe leaves service unchanged" `Quick
            test_unsupported_leaves_service_unchanged;
          Alcotest.test_case "unsupported nested subscribe keeps replicas aligned"
            `Quick test_unsupported_nested_keeps_replicas_aligned;
          Alcotest.test_case "concurrent shutdown" `Quick test_concurrent_shutdown;
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "expression-sharded under load" `Quick
            test_expr_mode_under_load;
          Alcotest.test_case "expression-sharded unsubscribe routing" `Quick
            test_expr_mode_unsubscribe_routing;
        ] );
    ]
