(* End-to-end tests of the wire server: subscribe/publish over a Unix
   socket, multi-tenant isolation, error replies, protocol enforcement,
   pipelining, and durable restart. *)

open Pf_net
module Broker = Pf_broker.Broker

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pfnet-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_server ?data_dir ?(domains = 1) ?validate_documents f =
  let dir = fresh_dir () in
  let sock = Filename.concat dir "broker.sock" in
  let cfg = Server.config ?data_dir ?validate_documents ~domains (Server.Unix_sock sock) in
  let srv = Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      rm_rf dir)
    (fun () -> f srv)

let doc = "<a><b n=\"1\"><c/></b><d/></a>"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Pf_intf.error_message e)

let test_subscribe_publish () =
  with_server @@ fun srv ->
  let c = Client.connect (Server.listen_address srv) in
  let id_a, sup_a = ok (Client.subscribe c ~subscriber:"alice" "/a/b/c") in
  Alcotest.(check (pair int bool)) "alice's id" (0, false) (id_a, sup_a);
  let id_b, _ = ok (Client.subscribe c ~subscriber:"bob" "/a/x") in
  Alcotest.(check int) "bob's id" 1 id_b;
  Alcotest.(check bool) "deliveries" true
    (ok (Client.publish c doc) = [ ("alice", [ 0 ]) ]);
  Alcotest.(check bool) "unsubscribe" true (ok (Client.unsubscribe c id_a));
  Alcotest.(check bool) "idempotent retry" false (ok (Client.unsubscribe c id_a));
  Alcotest.(check bool) "nobody left" true (ok (Client.publish c doc) = []);
  Client.close c

let test_error_replies () =
  with_server @@ fun srv ->
  let c = Client.connect (Server.listen_address srv) in
  (match Client.subscribe c ~subscriber:"alice" "/a[" with
  | Error (Pf_intf.Bad_expression _) -> ()
  | _ -> Alcotest.fail "expected Bad_expression");
  (match Client.unsubscribe c 99 with
  | Error (Pf_intf.Unknown_subscription 99) -> ()
  | _ -> Alcotest.fail "expected Unknown_subscription");
  (match Client.publish c "<broken" with
  | Error (Pf_intf.Bad_document _) -> ()
  | _ -> Alcotest.fail "expected Bad_document");
  (* the connection survives error replies *)
  let id, _ = ok (Client.subscribe c ~subscriber:"alice" "/a/d") in
  Alcotest.(check bool) "still usable" true
    (ok (Client.publish c doc) = [ ("alice", [ id ]) ]);
  Client.close c

let test_multi_tenant () =
  with_server @@ fun srv ->
  let addr = Server.listen_address srv in
  let c1 = Client.connect ~ns:"tenant-1" addr in
  let c2 = Client.connect ~ns:"tenant-2" addr in
  let id1, _ = ok (Client.subscribe c1 ~subscriber:"alice" "/a/b/c") in
  let id2, _ = ok (Client.subscribe c2 ~subscriber:"alice" "/a/b/c") in
  Alcotest.(check bool) "ids are global across tenants" true (id1 <> id2);
  Alcotest.(check bool) "tenant-1 delivery" true
    (ok (Client.publish c1 doc) = [ ("alice", [ id1 ]) ]);
  Alcotest.(check bool) "tenant-2 delivery" true
    (ok (Client.publish c2 doc) = [ ("alice", [ id2 ]) ]);
  (* one tenant cannot cancel the other's subscription *)
  (match Client.unsubscribe c2 id1 with
  | Error (Pf_intf.Unknown_subscription _) -> ()
  | _ -> Alcotest.fail "cross-tenant cancel must fail");
  Client.close c1;
  Client.close c2

let test_covering_over_the_wire () =
  with_server @@ fun srv ->
  let c = Client.connect (Server.listen_address srv) in
  let _, sup1 = ok (Client.subscribe c ~subscriber:"alice" "/a//c") in
  let _, sup2 = ok (Client.subscribe c ~subscriber:"alice" "/a/b/c") in
  Alcotest.(check (pair bool bool)) "second is suppressed" (false, true) (sup1, sup2);
  Client.close c

let test_pipelined_publishes () =
  with_server ~domains:2 @@ fun srv ->
  let c = Client.connect (Server.listen_address srv) in
  let id, _ = ok (Client.subscribe c ~subscriber:"alice" "/a/b/c") in
  let n = 64 in
  let reqs = List.init n (fun _ -> Client.publish_async c doc) in
  let results = List.map (fun r -> ok (Client.await c r)) reqs in
  Alcotest.(check int) "all resolved" n (List.length results);
  Alcotest.(check bool) "every delivery correct" true
    (List.for_all (fun d -> d = [ ("alice", [ id ]) ]) results);
  Client.close c

let test_unvalidated_publish () =
  with_server ~validate_documents:false @@ fun srv ->
  let c = Client.connect (Server.listen_address srv) in
  let id, _ = ok (Client.subscribe c ~subscriber:"alice" "/a/b/c") in
  Alcotest.(check bool) "well-formed still delivers" true
    (ok (Client.publish c doc) = [ ("alice", [ id ]) ]);
  (* malformed documents silently deliver to nobody in streaming mode *)
  Alcotest.(check bool) "malformed delivers empty" true (ok (Client.publish c "<broken") = []);
  Client.close c

(* Raw-socket probe for protocol enforcement: the server must reply with
   a PROTOCOL error frame and close. *)
let raw_roundtrip srv frame =
  let sock =
    match Server.listen_address srv with
    | Server.Unix_sock path -> path
    | Server.Tcp _ -> Alcotest.fail "expected unix socket"
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX sock);
      let rec write_all off =
        if off < Bytes.length frame then
          write_all (off + Unix.write fd frame off (Bytes.length frame - off))
      in
      write_all 0;
      (* read whatever comes back until EOF *)
      let buf = Bytes.create 4096 in
      let fill = ref 0 in
      let rec drain () =
        let n = Unix.read fd buf !fill (Bytes.length buf - !fill) in
        if n > 0 then begin
          fill := !fill + n;
          drain ()
        end
      in
      drain ();
      (!fill, buf))

let expect_protocol_error (fill, buf) =
  match Wire.decode buf ~off:0 ~len:fill with
  | `Frame (_, _, Wire.Event (Broker.Failed { error = Pf_intf.Protocol_error _ })) -> ()
  | `Frame (_, _, _) -> Alcotest.fail "expected a PROTOCOL error frame"
  | `Need _ -> Alcotest.fail "server closed without replying"
  | `Error e -> Alcotest.failf "unreadable reply: %s" (Format.asprintf "%a" Wire.pp_error e)

let test_requires_hello () =
  with_server @@ fun srv ->
  let b = Buffer.create 64 in
  Wire.encode b ~req_id:1
    (Wire.Command (Broker.Subscribe { ns = ""; subscriber = "x"; expr = "/a" }));
  expect_protocol_error (raw_roundtrip srv (Buffer.to_bytes b))

let test_rejects_garbage () =
  with_server @@ fun srv ->
  (* a frame with a bogus version byte *)
  let b = Buffer.create 64 in
  Wire.encode b ~req_id:1 (Wire.Hello { version = Wire.version; ns = "" });
  let frame = Buffer.to_bytes b in
  Bytes.set frame 4 '\x09';
  expect_protocol_error (raw_roundtrip srv frame)

let test_durable_restart () =
  let dir = fresh_dir () in
  let data = Filename.concat dir "data" in
  let deliveries_before, id_alice =
    with_server ~data_dir:data @@ fun srv ->
    let c = Client.connect (Server.listen_address srv) in
    let id, _ = ok (Client.subscribe c ~subscriber:"alice" "/a/b/c") in
    let _ = ok (Client.subscribe c ~subscriber:"alice" "/a//c") in
    let _ = ok (Client.subscribe c ~subscriber:"bob" "/a/x") in
    let ds = ok (Client.publish c doc) in
    Client.close c;
    (ds, id)
  in
  (* the server was stopped; a new one over the same data directory must
     resume with identical subscriptions, ids and deliveries *)
  (Fun.protect ~finally:(fun () -> rm_rf data; rm_rf dir)) @@ fun () ->
  with_server ~data_dir:data @@ fun srv ->
  let c = Client.connect (Server.listen_address srv) in
  Alcotest.(check bool) "deliveries survive restart" true
    (ok (Client.publish c doc) = deliveries_before);
  (* ids keep counting from where the previous incarnation stopped *)
  let id_new, _ = ok (Client.subscribe c ~subscriber:"carol" "/a/d") in
  Alcotest.(check int) "id continuity" 3 id_new;
  Alcotest.(check bool) "old id still cancellable" true (ok (Client.unsubscribe c id_alice));
  Client.close c

let test_tcp_listener () =
  let cfg = Server.config (Server.Tcp ("127.0.0.1", 0)) in
  let srv = Server.start cfg in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      (match Server.listen_address srv with
      | Server.Tcp (_, port) -> Alcotest.(check bool) "ephemeral port" true (port > 0)
      | Server.Unix_sock _ -> Alcotest.fail "expected tcp");
      let c = Client.connect (Server.listen_address srv) in
      let id, _ = ok (Client.subscribe c ~subscriber:"alice" "/a/b/c") in
      Alcotest.(check bool) "tcp delivery" true
        (ok (Client.publish c doc) = [ ("alice", [ id ]) ]);
      Client.close c)

let test_metrics () =
  with_server @@ fun srv ->
  let c = Client.connect (Server.listen_address srv) in
  let _ = ok (Client.subscribe c ~subscriber:"alice" "/a/b/c") in
  let _ = ok (Client.publish c doc) in
  let reg = Server.metrics srv in
  let counter name =
    match Pf_obs.Registry.find_counter reg name with
    | Some v -> v
    | None -> Alcotest.fail ("missing counter " ^ name)
  in
  Alcotest.(check int) "connections" 1 (counter "net_connections");
  Alcotest.(check int) "publishes" 1 (counter "net_publishes");
  Alcotest.(check int) "mutations" 1 (counter "net_mutations");
  Alcotest.(check bool) "frames flowed" true (counter "net_frames_in" >= 3);
  Client.close c

let () =
  Alcotest.run "net"
    [
      ( "e2e",
        [
          Alcotest.test_case "subscribe/publish" `Quick test_subscribe_publish;
          Alcotest.test_case "error replies" `Quick test_error_replies;
          Alcotest.test_case "multi-tenant isolation" `Quick test_multi_tenant;
          Alcotest.test_case "covering over the wire" `Quick test_covering_over_the_wire;
          Alcotest.test_case "pipelined publishes" `Quick test_pipelined_publishes;
          Alcotest.test_case "unvalidated publish" `Quick test_unvalidated_publish;
          Alcotest.test_case "tcp listener" `Quick test_tcp_listener;
          Alcotest.test_case "metrics" `Quick test_metrics;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "requires HELLO" `Quick test_requires_hello;
          Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
        ] );
      ( "durability",
        [ Alcotest.test_case "durable restart" `Quick test_durable_restart ] );
    ]
