(* Wire codec tests: round-trips, incremental decoding, and exact-offset
   rejection of short and overlong frames. *)

open Pf_net
module Broker = Pf_broker.Broker

let encode_frame ~req_id msg =
  let b = Buffer.create 64 in
  Wire.encode b ~req_id msg;
  Buffer.to_bytes b

let check_roundtrip ?(req_id = 7) msg =
  let buf = encode_frame ~req_id msg in
  match Wire.decode buf ~off:0 ~len:(Bytes.length buf) with
  | `Frame (consumed, rid, decoded) ->
      Alcotest.(check int) "consumed whole buffer" (Bytes.length buf) consumed;
      Alcotest.(check int) "request id" req_id rid;
      Alcotest.(check bool) "message round-trips" true (decoded = msg)
  | `Need n -> Alcotest.failf "incomplete: need %d" n
  | `Error e -> Alcotest.failf "rejected: %s" (Format.asprintf "%a" Wire.pp_error e)

let test_roundtrips () =
  List.iter check_roundtrip
    [
      Wire.Hello { version = Wire.version; ns = "tenant-1" };
      Wire.Welcome { version = Wire.version; server = "pf-broker" };
      Wire.Command (Broker.Subscribe { ns = ""; subscriber = "alice"; expr = "/a/b[@x = 1]" });
      Wire.Command (Broker.Unsubscribe { ns = "t"; id = 12345 });
      Wire.Command (Broker.Drop_subscriber { ns = ""; subscriber = "bob" });
      Wire.Command (Broker.Publish { ns = "t"; doc = "<a><b/></a>" });
      Wire.Event (Broker.Subscribed { id = 0; suppressed = true });
      Wire.Event (Broker.Unsubscribed { id = 300; existed = false });
      Wire.Event (Broker.Dropped { count = 0 });
      Wire.Event (Broker.Delivered { deliveries = [] });
      Wire.Event
        (Broker.Delivered { deliveries = [ ("alice", [ 0; 2; 129 ]); ("bob", []) ] });
      Wire.Event (Broker.Failed { error = Pf_intf.Bad_expression "nope" });
      Wire.Event (Broker.Failed { error = Pf_intf.Unknown_subscription 42 });
      Wire.Event (Broker.Failed { error = Pf_intf.Protocol_error "" });
    ]

let test_decode_at_offset () =
  let msg = Wire.Command (Broker.Publish { ns = ""; doc = "<a/>" }) in
  let frame = encode_frame ~req_id:9 msg in
  let pad = 13 in
  let buf = Bytes.make (pad + Bytes.length frame) '\xff' in
  Bytes.blit frame 0 buf pad (Bytes.length frame);
  match Wire.decode buf ~off:pad ~len:(Bytes.length buf) with
  | `Frame (consumed, rid, decoded) ->
      Alcotest.(check int) "consumed" (Bytes.length frame) consumed;
      Alcotest.(check int) "req id" 9 rid;
      Alcotest.(check bool) "msg" true (decoded = msg)
  | _ -> Alcotest.fail "decode at offset failed"

(* Every strict prefix must report exactly how many bytes are missing:
   header-relative before the length field arrives, frame-relative
   after. *)
let check_incremental msg =
  let buf = encode_frame ~req_id:1 msg in
  let total = Bytes.length buf in
  let ok = ref true in
  for k = 0 to total - 1 do
    let expected = if k < 4 then 4 - k else total - k in
    (match Wire.decode buf ~off:0 ~len:k with
    | `Need n -> if n <> expected then ok := false
    | `Frame _ | `Error _ -> ok := false);
    ()
  done;
  !ok

let test_incremental () =
  Alcotest.(check bool) "prefixes of a subscribe frame" true
    (check_incremental
       (Wire.Command (Broker.Subscribe { ns = "t"; subscriber = "alice"; expr = "/a/b" })));
  Alcotest.(check bool) "prefixes of a results frame" true
    (check_incremental
       (Wire.Event (Broker.Delivered { deliveries = [ ("alice", [ 1; 2; 3 ]) ] })))

let set_u32 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set buf (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set buf (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set buf (off + 3) (Char.chr (v land 0xff))

let expect_error buf ~len ~offset what =
  match Wire.decode buf ~off:0 ~len with
  | `Error e ->
      Alcotest.(check int) (what ^ " offset") offset e.Wire.offset;
      true
  | `Frame _ -> Alcotest.failf "%s: frame accepted" what
  | `Need n -> Alcotest.failf "%s: need %d" what n

(* Subscribe {ns = "t"; subscriber = "alice"; expr = "/a/b"}: payload is
   str "t" (2 bytes at offset 10), str "alice" (6 bytes at 12), str
   "/a/b" (5 bytes at 18). Frame length field n = 6 + 13 = 19, whole
   frame 23 bytes. *)
let subscribe_frame () =
  encode_frame ~req_id:1
    (Wire.Command (Broker.Subscribe { ns = "t"; subscriber = "alice"; expr = "/a/b" }))

let test_short_frame () =
  let buf = subscribe_frame () in
  Alcotest.(check int) "fixture size" 23 (Bytes.length buf);
  (* declared length 18 instead of 19: the expr string (whose length
     varint sits at absolute offset 18) runs past the frame end *)
  set_u32 buf 0 18;
  ignore (expect_error buf ~len:22 ~offset:18 "short expr");
  (* declared length 12: the subscriber string at offset 12 is cut *)
  let buf = subscribe_frame () in
  set_u32 buf 0 12;
  ignore (expect_error buf ~len:16 ~offset:12 "short subscriber");
  (* declared length 6: an empty payload fails on the first field *)
  let buf = subscribe_frame () in
  set_u32 buf 0 6;
  ignore (expect_error buf ~len:10 ~offset:10 "empty payload")

let test_overlong_frame () =
  let buf0 = subscribe_frame () in
  (* declare one extra byte and supply it: the payload decodes fully at
     offset 23 with one unconsumed byte *)
  let buf = Bytes.make 24 '\x00' in
  Bytes.blit buf0 0 buf 0 23;
  set_u32 buf 0 20;
  ignore (expect_error buf ~len:24 ~offset:23 "overlong")

let test_header_rejections () =
  let buf = subscribe_frame () in
  (* length below the 6-byte fixed part *)
  set_u32 buf 0 5;
  ignore (expect_error buf ~len:23 ~offset:0 "undersized length");
  let buf = subscribe_frame () in
  set_u32 buf 0 (Wire.max_frame + 1);
  ignore (expect_error buf ~len:23 ~offset:0 "oversized length");
  (* wrong protocol version, rejected at the version byte *)
  let buf = subscribe_frame () in
  Bytes.set buf 4 '\x02';
  ignore (expect_error buf ~len:23 ~offset:4 "bad version");
  (* unknown tag, rejected at the tag byte *)
  let buf = subscribe_frame () in
  Bytes.set buf 5 '\x7f';
  ignore (expect_error buf ~len:23 ~offset:5 "unknown tag")

(* A nine-byte varint whose ninth byte spills past the low 6 bits would
   set OCaml's sign bit — once upon a time that produced a negative
   length that escaped the decoder as Invalid_argument. It must be a
   clean [`Error]. *)
let test_varint_overflow () =
  let b = Buffer.create 32 in
  Buffer.add_string b "\x00\x00\x00\x11";  (* n = 6 + 2 + 9 *)
  Buffer.add_char b '\x01';                (* version *)
  Buffer.add_char b '\x04';                (* UNSUBSCRIBE *)
  Buffer.add_string b "\x00\x00\x00\x01";  (* request id *)
  Buffer.add_string b "\x01t";             (* ns "t" *)
  Buffer.add_string b "\xff\xff\xff\xff\xff\xff\xff\xff\x7f";  (* id: bit 62 set *)
  let buf = Buffer.to_bytes b in
  (match Wire.decode buf ~off:0 ~len:(Bytes.length buf) with
  | `Error _ -> ()
  | `Frame _ -> Alcotest.fail "overflowing varint accepted"
  | `Need n -> Alcotest.failf "incomplete: need %d" n);
  (* the largest encodable id still round-trips *)
  check_roundtrip (Wire.Command (Broker.Unsubscribe { ns = "t"; id = max_int }))

let test_crc32 () =
  (* the standard check vector *)
  Alcotest.(check int) "crc32(123456789)" 0xCBF43926
    (Wire.crc32 (Bytes.of_string "123456789") ~pos:0 ~len:9);
  Alcotest.(check int) "crc32 empty" 0 (Wire.crc32 Bytes.empty ~pos:0 ~len:0)

let test_command_codec () =
  let cmd = Broker.Subscribe { ns = "t"; subscriber = "alice"; expr = "/a/b" } in
  let b = Buffer.create 32 in
  Wire.encode_command b cmd;
  let bytes = Buffer.to_bytes b in
  (match Wire.decode_command bytes ~pos:0 ~limit:(Bytes.length bytes) with
  | Ok (decoded, fin) ->
      Alcotest.(check bool) "command round-trips" true (decoded = cmd);
      Alcotest.(check int) "consumed all" (Bytes.length bytes) fin
  | Error e -> Alcotest.failf "rejected: %s" (Format.asprintf "%a" Wire.pp_error e));
  (* a trailing byte inside the declared extent is an error *)
  let padded = Bytes.cat bytes (Bytes.make 1 '\x00') in
  match Wire.decode_command padded ~pos:0 ~limit:(Bytes.length padded) with
  | Error e -> Alcotest.(check int) "trailing offset" (Bytes.length bytes) e.Wire.offset
  | Ok _ -> Alcotest.fail "trailing byte accepted"

(* {1 Properties} *)

open QCheck2

let byte_str = Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 12))
let small_id = Gen.(int_range 0 100_000)

let command_gen =
  Gen.(
    oneof
      [
        map3
          (fun ns subscriber expr -> Broker.Subscribe { ns; subscriber; expr })
          byte_str byte_str byte_str;
        map2 (fun ns id -> Broker.Unsubscribe { ns; id }) byte_str small_id;
        map2 (fun ns subscriber -> Broker.Drop_subscriber { ns; subscriber }) byte_str byte_str;
        map2 (fun ns doc -> Broker.Publish { ns; doc }) byte_str byte_str;
      ])

let error_gen =
  Gen.(
    oneof
      [
        map (fun m -> Pf_intf.Bad_expression m) byte_str;
        map (fun m -> Pf_intf.Unsupported_expression m) byte_str;
        map (fun id -> Pf_intf.Unknown_subscription id) small_id;
        map (fun m -> Pf_intf.Bad_document m) byte_str;
        map (fun m -> Pf_intf.Protocol_error m) byte_str;
      ])

let event_gen =
  Gen.(
    oneof
      [
        map2 (fun id suppressed -> Broker.Subscribed { id; suppressed }) small_id bool;
        map2 (fun id existed -> Broker.Unsubscribed { id; existed }) small_id bool;
        map (fun count -> Broker.Dropped { count }) small_id;
        map
          (fun deliveries -> Broker.Delivered { deliveries })
          (list_size (int_range 0 4) (pair byte_str (list_size (int_range 0 5) small_id)));
        map (fun error -> Broker.Failed { error }) error_gen;
      ])

let msg_gen =
  Gen.(
    oneof
      [
        map (fun ns -> Wire.Hello { version = Wire.version; ns }) byte_str;
        map (fun server -> Wire.Welcome { version = Wire.version; server }) byte_str;
        map (fun c -> Wire.Command c) command_gen;
        map (fun e -> Wire.Event e) event_gen;
      ])

let msg_print m =
  match m with
  | Wire.Hello { ns; _ } -> Printf.sprintf "Hello %S" ns
  | Wire.Welcome { server; _ } -> Printf.sprintf "Welcome %S" server
  | Wire.Command c -> Format.asprintf "Command (%a)" Broker.pp_command c
  | Wire.Event e -> Format.asprintf "Event (%a)" Broker.pp_event e

let prop_roundtrip =
  Test.make ~name:"decode (encode m) = m" ~count:500 ~print:msg_print msg_gen (fun msg ->
      let buf = encode_frame ~req_id:42 msg in
      match Wire.decode buf ~off:0 ~len:(Bytes.length buf) with
      | `Frame (consumed, 42, decoded) -> consumed = Bytes.length buf && decoded = msg
      | _ -> false)

let prop_incremental =
  Test.make ~name:"every strict prefix reports exact missing bytes" ~count:200
    ~print:msg_print msg_gen check_incremental

let prop_command_roundtrip =
  Test.make ~name:"decode_command (encode_command c) = c" ~count:500
    ~print:(Format.asprintf "%a" Broker.pp_command) command_gen (fun cmd ->
      let b = Buffer.create 32 in
      Wire.encode_command b cmd;
      let bytes = Buffer.to_bytes b in
      match Wire.decode_command bytes ~pos:0 ~limit:(Bytes.length bytes) with
      | Ok (decoded, fin) -> decoded = cmd && fin = Bytes.length bytes
      | Error _ -> false)

let () =
  Alcotest.run "wire"
    [
      ( "unit",
        [
          Alcotest.test_case "round-trips" `Quick test_roundtrips;
          Alcotest.test_case "decode at offset" `Quick test_decode_at_offset;
          Alcotest.test_case "incremental need" `Quick test_incremental;
          Alcotest.test_case "short frames" `Quick test_short_frame;
          Alcotest.test_case "overlong frames" `Quick test_overlong_frame;
          Alcotest.test_case "header rejections" `Quick test_header_rejections;
          Alcotest.test_case "varint overflow" `Quick test_varint_overflow;
          Alcotest.test_case "crc32 vector" `Quick test_crc32;
          Alcotest.test_case "command codec" `Quick test_command_codec;
        ] );
      ( "properties",
        List.map Gen_helpers.to_alcotest
          [ prop_roundtrip; prop_incremental; prop_command_roundtrip ] );
    ]
