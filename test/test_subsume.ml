(* Tests for the subsumption index: the canonicalizer (Pf_xpath.Canonical),
   the shape table / containment DAG (Pf_core.Subsume) and the
   redundancy-skewed workload generator that feeds them. *)

open Pf_core

let p = Pf_xpath.Parser.parse
let print = Pf_xpath.Parser.to_string
let canon s = print (Pf_xpath.Canonical.normalize (p s))

(* ------------------------------------------------------------------ *)
(* Canonicalizer units *)

let check_canon expected input =
  Alcotest.(check string) (Printf.sprintf "normalize %s" input) expected (canon input)

let test_canonical_forms () =
  (* relative = absolute-descendant *)
  check_canon (canon "//a/b") "a/b";
  check_canon (canon "//a") "a";
  (* trailing gaps are exact-depth: a descendant at depth >= k exists iff
     one at exactly k does *)
  check_canon (canon "/a/*") "/a//*";
  check_canon (canon "/a/*/*") "/a//*//*";
  (* interior gap with a descendant edge: child wildcards + descendant
     axis on the next anchor *)
  check_canon (canon "/a/*//b") "/a//*/b";
  check_canon (canon "/a/*//b") "/a//*//b";
  (* all-child interior gaps are exact distances and must NOT merge with
     the descendant spelling *)
  Alcotest.(check bool) "exact distance preserved" false (canon "/a/*/b" = canon "/a/*//b");
  (* integer adjacency *)
  check_canon (canon "/a[@x <= 4]") "/a[@x < 5]";
  check_canon (canon "/a[@x >= 5]") "/a[@x > 4]";
  (* filter dedup, implication and ordering *)
  check_canon (canon "/a[@x >= 5]") "/a[@x >= 3][@x >= 5]";
  check_canon (canon "/a[@x >= 5]") "/a[@x >= 5][@x >= 5]";
  check_canon (canon "/a[@x = 1][@y = 2]") "/a[@y = 2][@x = 1]";
  (* all-wild paths are pure depth constraints *)
  check_canon (canon "/*/*") "*/*";
  (* nested paths are anchored at their element: leading gap follows the
     interior rule, and the nested absolute flag is ignored by Eval *)
  check_canon (canon "//a[b//c]") "a[b//c]";
  check_canon (canon "//a[*//b]") "a[//*/b]"

let test_canonical_distinct () =
  (* pairs that must NOT collapse *)
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) (Printf.sprintf "%s /= %s" a b) false (canon a = canon b))
    [
      "/a/b", "/a//b";
      "/a", "//a";
      "/a[@x >= 3]", "/a[@x >= 4]";
      "/a[@x = 3]", "/a";
      "/a/b", "/a/b/c";
      "/*/a", "//a";
    ]

(* ------------------------------------------------------------------ *)
(* Canonicalizer properties *)

let prop_canonical_idempotent =
  QCheck2.Test.make ~name:"normalize is idempotent" ~count:2000
    ~print:Gen_helpers.path_print Gen_helpers.any_path_gen (fun path ->
      let c = Pf_xpath.Canonical.normalize path in
      Pf_xpath.Ast.equal c (Pf_xpath.Canonical.normalize c))

let prop_canonical_semantics =
  QCheck2.Test.make ~name:"normalize preserves Eval semantics" ~count:3000
    ~print:(fun (path, d) ->
      Gen_helpers.path_print path ^ " on " ^ Gen_helpers.doc_print d)
    QCheck2.Gen.(pair Gen_helpers.any_path_gen Gen_helpers.doc_gen)
    (fun (path, d) ->
      Pf_xpath.Eval.matches path d
      = Pf_xpath.Eval.matches (Pf_xpath.Canonical.normalize path) d)

let prop_canonical_single_preserved =
  QCheck2.Test.make ~name:"normalize preserves is_single_path" ~count:1000
    ~print:Gen_helpers.path_print Gen_helpers.any_path_gen (fun path ->
      Pf_xpath.Ast.is_single_path path
      = Pf_xpath.Ast.is_single_path (Pf_xpath.Canonical.normalize path))

(* A canonical-form collision IS a semantic equivalence: documents cannot
   tell two expressions with equal canonical forms apart. Indirectly
   covered by the fan-out identity below, but this pins the direction the
   hash-consing relies on. *)
let prop_canonical_collision_sound =
  QCheck2.Test.make ~name:"equal canonical forms match alike" ~count:2000
    ~print:(fun (s1, s2, d) ->
      Gen_helpers.path_print s1 ^ " ~ " ^ Gen_helpers.path_print s2 ^ " on "
      ^ Gen_helpers.doc_print d)
    QCheck2.Gen.(
      triple Gen_helpers.any_path_gen Gen_helpers.any_path_gen Gen_helpers.doc_gen)
    (fun (s1, s2, d) ->
      (not
         (Pf_xpath.Ast.equal
            (Pf_xpath.Canonical.normalize s1)
            (Pf_xpath.Canonical.normalize s2)))
      || Pf_xpath.Eval.matches s1 d = Pf_xpath.Eval.matches s2 d)

(* ------------------------------------------------------------------ *)
(* DTD-world containment oracle *)

(* covers soundness checked on realistic workloads: expressions generated
   from each DTD, documents generated from the same DTD — a covering
   claim refuted by any document is a bug in covers (and would poison the
   alias/DAG layers built on it). *)
let test_containment_oracle_worlds () =
  List.iter
    (fun world ->
      let dtd = Option.get (Pf_workload.Dtd.by_name world) in
      let exprs =
        Pf_workload.Xpath_gen.generate dtd
          {
            Pf_workload.Presets.paper_queries with
            Pf_workload.Xpath_gen.count = 60;
            filters_per_path = 1;
            seed = 19;
          }
      in
      let docs =
        Pf_workload.Xml_gen.generate_many dtd (Pf_workload.Presets.documents_for world) 20
      in
      let arr = Array.of_list exprs in
      let n = Array.length arr in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if
            i <> j
            && Pf_xpath.Ast.is_single_path arr.(i)
            && Pf_xpath.Ast.is_single_path arr.(j)
            && Containment.covers arr.(i) arr.(j)
          then
            List.iter
              (fun d ->
                if Pf_xpath.Eval.matches arr.(j) d then
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: %s covers %s refuted by document" world
                       (print arr.(i)) (print arr.(j)))
                    true
                    (Pf_xpath.Eval.matches arr.(i) d))
              docs
        done
      done)
    [ "nitf"; "psd"; "auction" ]

(* ------------------------------------------------------------------ *)
(* The index: fan-out identity and DAG invariants under churn *)

module Sub = Subsume.Make (Pf_intf.Reference)

(* Drive the subsumed reference and a plain reference through an
   identical add/remove/match script; every match result must be
   byte-identical and every index invariant must hold throughout. *)
let prop_fanout_identity =
  QCheck2.Test.make ~name:"subsumed fan-out is byte-identical under churn" ~count:120
    ~print:(fun (paths, docs, _) ->
      String.concat " ; " (List.map Gen_helpers.path_print paths)
      ^ " || "
      ^ String.concat " ; " (List.map Gen_helpers.doc_print docs))
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 30) Gen_helpers.any_path_gen)
        (list_size (int_range 1 4) Gen_helpers.doc_gen)
        int)
    (fun (paths, docs, salt) ->
      let sub = Sub.create () in
      let plain = Pf_intf.Reference.create () in
      let sids = ref [] in
      List.iter
        (fun path ->
          let a = Sub.add sub path in
          let b = Pf_intf.Reference.add plain path in
          if a <> b then failwith "sid drift between subsumed and plain";
          sids := a :: !sids)
        paths;
      Sub.validate sub;
      let check_docs () =
        List.iter
          (fun d ->
            let a = Sub.match_document sub d in
            let b = Pf_intf.Reference.match_document plain d in
            if a <> b then
              QCheck2.Test.fail_reportf "fan-out diverged: [%s] vs plain [%s]"
                (String.concat ";" (List.map string_of_int a))
                (String.concat ";" (List.map string_of_int b)))
          docs
      in
      check_docs ();
      (* churn: remove a deterministic subset (including representatives
         — the oldest sid of a duplicated shape goes first when salt is
         even), re-check, then re-add everything again *)
      List.iter
        (fun sid ->
          if (sid + salt) mod 3 = 0 then begin
            let a = Sub.remove sub sid in
            let b = Pf_intf.Reference.remove plain sid in
            if a <> b then failwith "remove verdict drift"
          end)
        (List.rev !sids);
      Sub.validate sub;
      check_docs ();
      List.iter
        (fun path ->
          let a = Sub.add sub path in
          let b = Pf_intf.Reference.add plain path in
          if a <> b then failwith "sid drift after re-add")
        paths;
      Sub.validate sub;
      check_docs ();
      (* double-remove must be false on both *)
      (match !sids with
      | sid :: _ ->
        let a = Sub.remove sub sid in
        let b = Pf_intf.Reference.remove plain sid in
        if a <> b then failwith "remove verdict drift (tail)";
        if Sub.remove sub sid then failwith "double remove succeeded"
      | [] -> ());
      Sub.validate sub;
      true)

let test_sharing_and_promotion () =
  let t = Sub.create () in
  (* three spellings of one shape + one strictly wider and one strictly
     narrower expression *)
  let s0 = Sub.add t (p "/a/b[@x < 5]") in
  let s1 = Sub.add t (p "/a/b[@x <= 4]") in
  let s2 = Sub.add t (p "/a/b[@x <= 4][@x <= 9]") in
  let wide = Sub.add t (p "/a/b") in
  let narrow = Sub.add t (p "/a/b[@x <= 2]") in
  Alcotest.(check (list int)) "dense sids" [ 0; 1; 2; 3; 4 ] [ s0; s1; s2; wide; narrow ];
  let st = Sub.stats t in
  Alcotest.(check int) "three physical shapes" 3 st.Subsume.shapes;
  Alcotest.(check int) "five logicals" 5 st.Subsume.logical;
  Alcotest.(check int) "two dedup hits" 2 st.Subsume.dedup_hits;
  (* /a/b covers both filtered shapes: two edges; narrow is also covered
     by the @x<=4 shape *)
  Alcotest.(check int) "dag edges" 3 st.Subsume.dag_edges;
  Alcotest.(check int) "covered shapes" 2 st.Subsume.covered_shapes;
  Sub.validate t;
  (* removing the representative of the shared shape promotes a survivor *)
  Alcotest.(check bool) "remove rep" true (Sub.remove t s0);
  let st = Sub.stats t in
  Alcotest.(check int) "promotion counted" 1 st.Subsume.promotions;
  Alcotest.(check int) "shape survives" 3 st.Subsume.shapes;
  (* removing the rest of the shape's logicals retires the physical *)
  Alcotest.(check bool) "remove s1" true (Sub.remove t s1);
  Alcotest.(check bool) "remove s2" true (Sub.remove t s2);
  let st = Sub.stats t in
  Alcotest.(check int) "physical retired" 2 st.Subsume.shapes;
  Alcotest.(check int) "one retirement" 1 st.Subsume.retirements;
  Alcotest.(check int) "edges unlinked" 1 st.Subsume.dag_edges;
  Sub.validate t;
  (* matching still fans out to the surviving logicals only *)
  let doc = Pf_xml.Sax.parse_document "<a><b x=\"1\"/></a>" in
  Alcotest.(check (list int)) "fan-out after churn" [ wide; narrow ]
    (Sub.match_document t doc)

module Esub = Subsume.Make (Engine.Filter)

let test_unsupported_atomicity () =
  let t = Esub.create () in
  let ok = Esub.add t (p "/a/b") in
  Alcotest.(check int) "first sid" 0 ok;
  (* the engine rejects filters on wildcard steps; the wrapper must stay
     untouched, consume no sid and keep working *)
  (match Esub.add t (p "/a/*[@x = 1]") with
  | exception Pf_intf.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported");
  Esub.validate t;
  let st = Esub.stats t in
  Alcotest.(check int) "no logical leaked" 1 st.Subsume.logical;
  Alcotest.(check int) "no shape leaked" 1 st.Subsume.shapes;
  Alcotest.(check int) "next sid unchanged" 1 (Esub.add t (p "/a/c"))

(* ------------------------------------------------------------------ *)
(* redundant_indexed *)

let test_redundant_indexed_small () =
  let exprs = List.map p [ "/a/b"; "//a/b"; "a/b"; "/a/b[@x >= 3]"; "/x/y" ] in
  let r = Subsume.redundant_indexed exprs in
  (* //a/b and a/b share a shape; /a/b, /a/b[@x>=3] and /x/y are their own *)
  Alcotest.(check int) "exprs" 5 r.Subsume.red_exprs;
  Alcotest.(check int) "shapes" 4 r.Subsume.red_shapes;
  Alcotest.(check int) "duplicates" 1 r.Subsume.red_duplicates;
  (* //a/b covers /a/b and /a/b[@x>=3]; /a/b covers /a/b[@x>=3] *)
  Alcotest.(check int) "dag edges" 3 r.Subsume.red_dag_edges;
  Alcotest.(check int) "covered shapes" 2 r.Subsume.red_covered_shapes;
  Alcotest.(check bool) "no truncation" true (r.Subsume.red_probe_truncations = 0)

(* exact agreement with a quadratic reference analysis: group distinct
   canonical forms into shapes by mutual containment (the index's alias
   rule), then count shapes, strict-covering shape pairs (= DAG edges)
   and covered shapes. With an unbounded probe cap the index must land on
   the same numbers — its candidate enumeration is complete. *)
let test_redundant_indexed_vs_quadratic () =
  let dtd = Option.get (Pf_workload.Dtd.by_name "psd") in
  let exprs =
    Pf_workload.Xpath_gen.generate dtd
      {
        Pf_workload.Presets.paper_queries with
        Pf_workload.Xpath_gen.count = 80;
        filters_per_path = 1;
        seed = 5;
      }
  in
  let r = Subsume.redundant_indexed ~probe_cap:max_int exprs in
  (* distinct canonical forms, in first-seen order *)
  let seen = Hashtbl.create 64 in
  let forms = ref [] in
  List.iter
    (fun e ->
      let c = Pf_xpath.Canonical.normalize e in
      let k = print c in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        forms := c :: !forms
      end)
    exprs;
  let forms = Array.of_list (List.rev !forms) in
  let m = Array.length forms in
  let single = Array.map Pf_xpath.Ast.is_single_path forms in
  let covers i j =
    single.(i) && single.(j) && Containment.covers forms.(i) forms.(j)
  in
  (* mutual containment is an equivalence (covers is transitive): greedy
     class assignment to the earliest mutually-covering form *)
  let cls = Array.init m Fun.id in
  for i = 0 to m - 1 do
    (try
       for j = 0 to i - 1 do
         if cls.(j) = j && covers i j && covers j i then begin
           cls.(i) <- j;
           raise Exit
         end
       done
     with Exit -> ())
  done;
  let reps = Array.to_list cls |> List.sort_uniq compare in
  let strict a b = covers a b && not (covers b a) in
  let edges =
    List.concat_map (fun a -> List.filter (fun b -> a <> b && strict a b) reps) reps
  in
  let covered = List.filter (fun b -> List.exists (fun a -> a <> b && strict a b) reps) reps in
  Alcotest.(check int) "shapes agree" (List.length reps) r.Subsume.red_shapes;
  Alcotest.(check int) "dag edges agree" (List.length edges) r.Subsume.red_dag_edges;
  Alcotest.(check int) "covered shapes agree" (List.length covered)
    r.Subsume.red_covered_shapes

(* ------------------------------------------------------------------ *)
(* The redundant workload *)

let small_redundant count =
  {
    Pf_workload.Presets.redundant_subscriptions with
    Pf_workload.Xpath_gen.count;
  }

let test_redundant_workload_deterministic () =
  let dtd = Option.get (Pf_workload.Dtd.by_name "nitf") in
  let a = Pf_workload.Xpath_gen.generate_redundant dtd (small_redundant 500) in
  let b = Pf_workload.Xpath_gen.generate_redundant dtd (small_redundant 500) in
  Alcotest.(check (list string)) "deterministic in rseed" (List.map print a)
    (List.map print b);
  Alcotest.(check int) "count honored" 500 (List.length a);
  Alcotest.(check bool) "single paths only" true
    (List.for_all Pf_xpath.Ast.is_single_path a)

let test_redundant_workload_ratio () =
  (* a scaled-down sample of the 100k preset; the bench gates the full
     size. The physical/logical ratio must stay well under the 25%
     acceptance bar, and probe work must stay linear-ish: the per-insert
     probe is capped, so total covers tests are O(count * cap), not
     O(count^2). *)
  let dtd = Option.get (Pf_workload.Dtd.by_name "nitf") in
  let count = 20_000 in
  let exprs = Pf_workload.Xpath_gen.generate_redundant dtd (small_redundant count) in
  let r = Subsume.redundant_indexed exprs in
  let ratio = float_of_int r.Subsume.red_shapes /. float_of_int r.Subsume.red_exprs in
  Alcotest.(check bool)
    (Printf.sprintf "physical/logical ratio %.3f <= 0.25" ratio)
    true (ratio <= 0.25);
  Alcotest.(check bool)
    (Printf.sprintf "covers probes %d sub-quadratic" r.Subsume.red_covers_probes)
    true
    (r.Subsume.red_covers_probes < count * 200);
  Alcotest.(check bool) "mutants produce dag edges" true (r.Subsume.red_dag_edges > 0)

(* ------------------------------------------------------------------ *)
(* Broker integration: probe-backed suppression *)

let broker_counter t name =
  match Pf_obs.Registry.find_counter (Pf_broker.Broker.metrics t) name with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "broker counter %s missing" name)

let test_broker_probe_suppression () =
  let b = Pf_broker.Broker.create () in
  let sub_wide = Pf_broker.Broker.subscribe_path_exn b ~subscriber:"u" (p "/a/b") in
  let sub_narrow =
    Pf_broker.Broker.subscribe_path_exn b ~subscriber:"u" (p "/a/b[@x >= 3]")
  in
  Alcotest.(check bool) "narrow suppressed" true
    (Pf_broker.Broker.is_suppressed b sub_narrow);
  Alcotest.(check bool) "probe was used" true (broker_counter b "covers_probes" > 0);
  (* an unrelated subscriber is not probed into suppression *)
  let other =
    Pf_broker.Broker.subscribe_path_exn b ~subscriber:"v" (p "/a/b[@x >= 3]")
  in
  Alcotest.(check bool) "other subscriber active" false
    (Pf_broker.Broker.is_suppressed b other);
  (* cancelling the cover promotes the dependent *)
  Alcotest.(check bool) "unsubscribe wide" true
    (Pf_broker.Broker.unsubscribe b sub_wide);
  Alcotest.(check bool) "narrow re-activated" false
    (Pf_broker.Broker.is_suppressed b sub_narrow);
  Alcotest.(check int) "promotion counted" 1 (broker_counter b "promotions");
  (* the re-activated subscription delivers *)
  let deliveries =
    Pf_broker.Broker.publish b (Pf_xml.Sax.parse_document "<a><b x=\"7\"/></a>")
  in
  Alcotest.(check bool) "delivery to u" true
    (List.exists (fun d -> d.Pf_broker.Broker.subscriber = "u") deliveries)

(* The probe must reproduce the former linear scan's choice: the newest
   (largest-uid) active cover — WAL replay determinism depends on it. *)
let test_broker_probe_picks_newest_cover () =
  let b = Pf_broker.Broker.create () in
  let c1 = Pf_broker.Broker.subscribe_path_exn b ~subscriber:"u" (p "/a//b") in
  let c2 = Pf_broker.Broker.subscribe_path_exn b ~subscriber:"u" (p "//a/b") in
  let dep = Pf_broker.Broker.subscribe_path_exn b ~subscriber:"u" (p "/a/b") in
  Alcotest.(check bool) "dep suppressed" true (Pf_broker.Broker.is_suppressed b dep);
  (* cancelling the older cover must not touch the dependent: it is held
     by the newest cover *)
  ignore (Pf_broker.Broker.unsubscribe b c1 : bool);
  Alcotest.(check bool) "still suppressed by newest" true
    (Pf_broker.Broker.is_suppressed b dep);
  ignore (Pf_broker.Broker.unsubscribe b c2 : bool);
  Alcotest.(check bool) "now active" false (Pf_broker.Broker.is_suppressed b dep)

let test_broker_redundant_subscribe_scaling () =
  (* the o(n^2) acceptance angle, scaled down for the test suite: the
     per-subscriber probe means covers tests stay near-linear in the
     subscription count for the redundant workload *)
  let dtd = Option.get (Pf_workload.Dtd.by_name "nitf") in
  let n = 4000 in
  let exprs = Pf_workload.Xpath_gen.generate_redundant dtd (small_redundant n) in
  let b = Pf_broker.Broker.create () in
  List.iteri
    (fun i e ->
      ignore
        (Pf_broker.Broker.subscribe_path_exn b
           ~subscriber:(Printf.sprintf "user-%d" (i mod 40))
           e))
    exprs;
  let probes = broker_counter b "covers_probes" in
  Alcotest.(check bool)
    (Printf.sprintf "%d probes for %d subscribes is o(n^2)" probes n)
    true
    (probes < n * 120);
  Alcotest.(check bool) "suppressions happened" true
    (broker_counter b "covering_suppressions" > 0)

let () =
  Alcotest.run "subsume"
    [
      ( "canonical",
        [
          Alcotest.test_case "rewrite rules" `Quick test_canonical_forms;
          Alcotest.test_case "distinct shapes stay distinct" `Quick test_canonical_distinct;
        ] );
      ( "canonical-properties",
        List.map Gen_helpers.to_alcotest
          [
            prop_canonical_idempotent;
            prop_canonical_semantics;
            prop_canonical_single_preserved;
            prop_canonical_collision_sound;
          ] );
      ( "containment-oracle",
        [ Alcotest.test_case "DTD worlds" `Slow test_containment_oracle_worlds ] );
      ( "index",
        [
          Alcotest.test_case "sharing, promotion, retirement" `Quick
            test_sharing_and_promotion;
          Alcotest.test_case "Unsupported is atomic" `Quick test_unsupported_atomicity;
        ] );
      ("index-properties", List.map Gen_helpers.to_alcotest [ prop_fanout_identity ]);
      ( "redundant-indexed",
        [
          Alcotest.test_case "small workload" `Quick test_redundant_indexed_small;
          Alcotest.test_case "vs quadratic analysis" `Quick
            test_redundant_indexed_vs_quadratic;
        ] );
      ( "workload",
        [
          Alcotest.test_case "deterministic" `Quick test_redundant_workload_deterministic;
          Alcotest.test_case "ratio and probe bounds" `Slow test_redundant_workload_ratio;
        ] );
      ( "broker",
        [
          Alcotest.test_case "probe-backed suppression" `Quick
            test_broker_probe_suppression;
          Alcotest.test_case "newest cover wins" `Quick
            test_broker_probe_picks_newest_cover;
          Alcotest.test_case "redundant subscribe scaling" `Slow
            test_broker_redundant_subscribe_scaling;
        ] );
    ]
