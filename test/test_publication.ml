(* Tests for the publication encoding of document paths (Section 3.3). *)

open Pf_core

(* Example 1: e = (a,b,c,a,b,c) ->
   (length,6),(a^1,1),(b^1,2),(c^1,3),(a^2,4),(b^2,5),(c^2,6) *)
let test_example_1 () =
  let pub = Publication.of_tags [ "a"; "b"; "c"; "a"; "b"; "c" ] in
  Alcotest.(check int) "length" 6 pub.Publication.length;
  let expect = [ "a", 1, 1; "b", 1, 2; "c", 1, 3; "a", 2, 4; "b", 2, 5; "c", 2, 6 ] in
  List.iteri
    (fun i (tag, occurrence, pos) ->
      let tu = pub.Publication.tuples.(i) in
      Alcotest.(check string) "tag" tag (Symbol.name tu.Publication.tag);
      Alcotest.(check int) "occurrence" occurrence tu.Publication.occurrence;
      Alcotest.(check int) "pos" pos tu.Publication.pos)
    expect

let test_pp () =
  let pub = Publication.of_tags [ "a"; "b"; "a" ] in
  Alcotest.(check string) "paper notation"
    "(length,3), (a^1,1), (b^1,2), (a^2,3)"
    (Format.asprintf "%a" Publication.pp pub)

let test_pos_of_occurrence () =
  let pub = Publication.of_tags [ "a"; "b"; "c"; "a"; "b"; "c" ] in
  let sym = Symbol.intern in
  Alcotest.(check (option int)) "a^2" (Some 4)
    (Publication.pos_of_occurrence pub ~tag:(sym "a") ~occurrence:2);
  Alcotest.(check (option int)) "c^1" (Some 3)
    (Publication.pos_of_occurrence pub ~tag:(sym "c") ~occurrence:1);
  Alcotest.(check (option int)) "missing occurrence" None
    (Publication.pos_of_occurrence pub ~tag:(sym "a") ~occurrence:3);
  Alcotest.(check (option int)) "missing tag" None
    (Publication.pos_of_occurrence pub ~tag:(sym "z") ~occurrence:1)

let test_of_path_attrs () =
  let doc = Pf_xml.Sax.parse_document "<a x=\"1\"><b y=\"2\"/></a>" in
  match Pf_xml.Path.of_document doc with
  | [ path ] ->
    let pub = Publication.of_path path in
    Alcotest.(check (list (pair string string))) "attrs at 1" [ "x", "1" ]
      (Publication.attrs_at pub ~pos:1);
    Alcotest.(check (list (pair string string))) "attrs at 2" [ "y", "2" ]
      (Publication.attrs_at pub ~pos:2)
  | _ -> Alcotest.fail "one path expected"

let test_structure () =
  let doc = Pf_xml.Sax.parse_document "<a><b/><b><c/></b></a>" in
  let pubs = List.map Publication.of_path (Pf_xml.Path.of_document doc) in
  let structs = List.map (fun p -> Array.to_list p.Publication.structure) pubs in
  Alcotest.(check (list (list int))) "structure tuples" [ [ 1; 1 ]; [ 1; 2; 1 ] ] structs

let prop_roundtrip_positions =
  QCheck2.Test.make ~name:"pos_of_occurrence inverts tuples" ~count:500
    ~print:Gen_helpers.doc_print Gen_helpers.doc_gen (fun doc ->
      List.for_all
        (fun path ->
          let pub = Publication.of_path path in
          Array.for_all
            (fun tu ->
              Publication.pos_of_occurrence pub ~tag:tu.Publication.tag
                ~occurrence:tu.Publication.occurrence
              = Some tu.Publication.pos)
            pub.Publication.tuples)
        (Pf_xml.Path.of_document doc))

let () =
  Alcotest.run "publication"
    [
      ( "unit",
        [
          Alcotest.test_case "Example 1" `Quick test_example_1;
          Alcotest.test_case "pretty printing" `Quick test_pp;
          Alcotest.test_case "pos_of_occurrence" `Quick test_pos_of_occurrence;
          Alcotest.test_case "attributes" `Quick test_of_path_attrs;
          Alcotest.test_case "structure tuples" `Quick test_structure;
        ] );
      "properties", List.map Gen_helpers.to_alcotest [ prop_roundtrip_positions ];
    ]
