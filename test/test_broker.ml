(* Tests for the dissemination broker. *)

open Pf_broker

let doc = Pf_xml.Sax.parse_document "<a><b n=\"1\"><c/></b><d/></a>"

let delivery_names ds = List.map (fun d -> d.Broker.subscriber) ds

let test_basic_delivery () =
  let b = Broker.create () in
  let _ = Broker.subscribe b ~subscriber:"alice" "/a/b/c" in
  let _ = Broker.subscribe b ~subscriber:"bob" "/a/x" in
  let _ = Broker.subscribe b ~subscriber:"carol" "b[@n = 1]" in
  let ds = Broker.publish b doc in
  Alcotest.(check (list string)) "subscribers" [ "alice"; "carol" ] (delivery_names ds)

let test_delivery_via () =
  let b = Broker.create () in
  let s1 = Broker.subscribe b ~subscriber:"alice" "/a/b/c" in
  let s2 = Broker.subscribe b ~subscriber:"alice" "/a/d" in
  let _s3 = Broker.subscribe b ~subscriber:"alice" "/a/x" in
  match Broker.publish b doc with
  | [ { Broker.subscriber = "alice"; via } ] ->
    Alcotest.(check int) "two matching subscriptions" 2 (List.length via);
    Alcotest.(check bool) "s1 via" true (List.memq s1 via);
    Alcotest.(check bool) "s2 via" true (List.memq s2 via)
  | _ -> Alcotest.fail "expected one delivery to alice"

let test_covering_suppression () =
  let b = Broker.create () in
  let general = Broker.subscribe b ~subscriber:"alice" "/a//c" in
  let specific = Broker.subscribe b ~subscriber:"alice" "/a/b/c" in
  Alcotest.(check bool) "specific suppressed" true (Broker.is_suppressed b specific);
  Alcotest.(check bool) "general active" false (Broker.is_suppressed b general);
  let st = Broker.stats b in
  Alcotest.(check int) "one engine expression" 1 st.Broker.engine_expressions;
  Alcotest.(check int) "two subscriptions" 2 st.Broker.subscriptions;
  (* deliveries unaffected by suppression *)
  Alcotest.(check (list string)) "delivered" [ "alice" ]
    (delivery_names (Broker.publish b doc))

let test_suppression_not_across_subscribers () =
  let b = Broker.create () in
  let _ = Broker.subscribe b ~subscriber:"alice" "/a//c" in
  let bobs = Broker.subscribe b ~subscriber:"bob" "/a/b/c" in
  Alcotest.(check bool) "bob's is active" false (Broker.is_suppressed b bobs)

let test_unsubscribe_reactivates () =
  let b = Broker.create () in
  let general = Broker.subscribe b ~subscriber:"alice" "/a//c" in
  let specific = Broker.subscribe b ~subscriber:"alice" "/a/b/c" in
  Alcotest.(check bool) "suppressed at first" true (Broker.is_suppressed b specific);
  Alcotest.(check bool) "unsubscribe general" true (Broker.unsubscribe b general);
  Alcotest.(check bool) "specific re-activated" false (Broker.is_suppressed b specific);
  Alcotest.(check (list string)) "still delivered via specific" [ "alice" ]
    (delivery_names (Broker.publish b doc));
  Alcotest.(check bool) "double unsubscribe" false (Broker.unsubscribe b general)

let test_reactivation_finds_other_cover () =
  let b = Broker.create () in
  let g1 = Broker.subscribe b ~subscriber:"alice" "/a//c" in
  let g2 = Broker.subscribe b ~subscriber:"alice" "//c" in
  let specific = Broker.subscribe b ~subscriber:"alice" "/a/b/c" in
  (* covered by g1 (insertion order); dropping g1 re-homes it under g2 *)
  Alcotest.(check bool) "g2 is itself covered by nothing... active" false
    (Broker.is_suppressed b g2);
  Alcotest.(check bool) "drop g1" true (Broker.unsubscribe b g1);
  Alcotest.(check bool) "still suppressed (g2 covers)" true (Broker.is_suppressed b specific);
  Alcotest.(check (list string)) "delivery survives" [ "alice" ]
    (delivery_names (Broker.publish b doc))

let test_duplicate_subscription_suppressed () =
  let b = Broker.create () in
  let _ = Broker.subscribe b ~subscriber:"alice" "/a/b" in
  let dup = Broker.subscribe b ~subscriber:"alice" "/a/b" in
  Alcotest.(check bool) "duplicate suppressed (covering is reflexive)" true
    (Broker.is_suppressed b dup)

let test_drop_subscriber () =
  let b = Broker.create () in
  let _ = Broker.subscribe b ~subscriber:"alice" "/a/b/c" in
  let _ = Broker.subscribe b ~subscriber:"alice" "/a//c" in
  let _ = Broker.subscribe b ~subscriber:"bob" "/a/d" in
  Alcotest.(check int) "two cancelled" 2 (Broker.drop_subscriber b "alice");
  Alcotest.(check (list string)) "only bob left" [ "bob" ]
    (delivery_names (Broker.publish b doc));
  Alcotest.(check int) "nothing to drop twice" 0 (Broker.drop_subscriber b "alice")

let test_suppression_disabled () =
  let b =
    Broker.create
      ~config:{ Broker.default_config with Broker.covering_suppression = false }
      ()
  in
  let _ = Broker.subscribe b ~subscriber:"alice" "/a//c" in
  let specific = Broker.subscribe b ~subscriber:"alice" "/a/b/c" in
  Alcotest.(check bool) "not suppressed" false (Broker.is_suppressed b specific);
  Alcotest.(check int) "both in the engine" 2 (Broker.stats b).Broker.engine_expressions

let test_stats () =
  let b = Broker.create () in
  let _ = Broker.subscribe b ~subscriber:"alice" "/a//c" in
  let _ = Broker.subscribe b ~subscriber:"alice" "/a/b/c" in
  let _ = Broker.subscribe b ~subscriber:"bob" "/a/d" in
  ignore (Broker.publish b doc);
  let st = Broker.stats b in
  Alcotest.(check int) "subscribers" 2 st.Broker.subscribers;
  Alcotest.(check int) "subscriptions" 3 st.Broker.subscriptions;
  Alcotest.(check int) "suppressed" 1 st.Broker.suppressed;
  Alcotest.(check int) "engine expressions" 2 st.Broker.engine_expressions;
  Alcotest.(check int) "documents" 1 st.Broker.documents_published;
  Alcotest.(check int) "deliveries" 2 st.Broker.deliveries

(* property: suppression never changes the set of delivered subscribers *)
let prop_suppression_transparent =
  QCheck2.Test.make ~name:"covering suppression is delivery-transparent" ~count:200
    ~print:(fun (paths, d) ->
      String.concat " ; " (List.map Gen_helpers.path_print paths)
      ^ " on " ^ Gen_helpers.doc_print d)
    QCheck2.Gen.(
      pair (list_size (int_range 1 10) Gen_helpers.single_path_gen) Gen_helpers.doc_gen)
    (fun (paths, d) ->
      let run suppression =
        let b =
          Broker.create
            ~config:{ Broker.default_config with Broker.covering_suppression = suppression }
            ()
        in
        (* two subscribers sharing the workload halves *)
        List.iteri
          (fun i p ->
            ignore
              (Broker.subscribe_path b
                 ~subscriber:(if i mod 2 = 0 then "even" else "odd")
                 p))
          paths;
        List.map (fun dl -> dl.Broker.subscriber) (Broker.publish b d)
      in
      run true = run false)

(* property: unsubscribing and resubscribing is delivery-equivalent *)
let prop_churn_consistent =
  QCheck2.Test.make ~name:"unsubscribe all = empty deliveries" ~count:200
    ~print:(fun (paths, d) ->
      String.concat " ; " (List.map Gen_helpers.path_print paths)
      ^ " on " ^ Gen_helpers.doc_print d)
    QCheck2.Gen.(
      pair (list_size (int_range 1 8) Gen_helpers.single_path_gen) Gen_helpers.doc_gen)
    (fun (paths, d) ->
      let b = Broker.create () in
      let subs =
        List.map (fun p -> Broker.subscribe_path b ~subscriber:"s" p) paths
      in
      let before = Broker.publish b d <> [] in
      List.iter (fun s -> ignore (Broker.unsubscribe b s)) subs;
      let after = Broker.publish b d in
      (* after cancelling everything nothing is delivered, regardless of
         what was delivered before *)
      after = [] && (before || true))

let () =
  Alcotest.run "broker"
    [
      ( "unit",
        [
          Alcotest.test_case "basic delivery" `Quick test_basic_delivery;
          Alcotest.test_case "delivery via" `Quick test_delivery_via;
          Alcotest.test_case "covering suppression" `Quick test_covering_suppression;
          Alcotest.test_case "no cross-subscriber suppression" `Quick
            test_suppression_not_across_subscribers;
          Alcotest.test_case "unsubscribe reactivates" `Quick test_unsubscribe_reactivates;
          Alcotest.test_case "reactivation finds another cover" `Quick
            test_reactivation_finds_other_cover;
          Alcotest.test_case "duplicates suppressed" `Quick test_duplicate_subscription_suppressed;
          Alcotest.test_case "drop subscriber" `Quick test_drop_subscriber;
          Alcotest.test_case "suppression disabled" `Quick test_suppression_disabled;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "properties",
        List.map Gen_helpers.to_alcotest
          [ prop_suppression_transparent; prop_churn_consistent ] );
    ]
