(* Tests for the dissemination broker. *)

open Pf_broker

let doc = Pf_xml.Sax.parse_document "<a><b n=\"1\"><c/></b><d/></a>"
let doc_src = "<a><b n=\"1\"><c/></b><d/></a>"

let delivery_names ds = List.map (fun d -> d.Broker.subscriber) ds

let test_basic_delivery () =
  let b = Broker.create () in
  let _ = Broker.subscribe_exn b ~subscriber:"alice" "/a/b/c" in
  let _ = Broker.subscribe_exn b ~subscriber:"bob" "/a/x" in
  let _ = Broker.subscribe_exn b ~subscriber:"carol" "b[@n = 1]" in
  let ds = Broker.publish b doc in
  Alcotest.(check (list string)) "subscribers" [ "alice"; "carol" ] (delivery_names ds)

let test_delivery_via () =
  let b = Broker.create () in
  let s1 = Broker.subscribe_exn b ~subscriber:"alice" "/a/b/c" in
  let s2 = Broker.subscribe_exn b ~subscriber:"alice" "/a/d" in
  let _s3 = Broker.subscribe_exn b ~subscriber:"alice" "/a/x" in
  match Broker.publish b doc with
  | [ { Broker.subscriber = "alice"; via } ] ->
    Alcotest.(check int) "two matching subscriptions" 2 (List.length via);
    Alcotest.(check bool) "s1 via" true (List.memq s1 via);
    Alcotest.(check bool) "s2 via" true (List.memq s2 via)
  | _ -> Alcotest.fail "expected one delivery to alice"

let test_covering_suppression () =
  let b = Broker.create () in
  let general = Broker.subscribe_exn b ~subscriber:"alice" "/a//c" in
  let specific = Broker.subscribe_exn b ~subscriber:"alice" "/a/b/c" in
  Alcotest.(check bool) "specific suppressed" true (Broker.is_suppressed b specific);
  Alcotest.(check bool) "general active" false (Broker.is_suppressed b general);
  let st = Broker.stats b in
  Alcotest.(check int) "one engine expression" 1 st.Broker.engine_expressions;
  Alcotest.(check int) "two subscriptions" 2 st.Broker.subscriptions;
  (* deliveries unaffected by suppression *)
  Alcotest.(check (list string)) "delivered" [ "alice" ]
    (delivery_names (Broker.publish b doc))

let test_suppression_not_across_subscribers () =
  let b = Broker.create () in
  let _ = Broker.subscribe_exn b ~subscriber:"alice" "/a//c" in
  let bobs = Broker.subscribe_exn b ~subscriber:"bob" "/a/b/c" in
  Alcotest.(check bool) "bob's is active" false (Broker.is_suppressed b bobs)

let test_unsubscribe_reactivates () =
  let b = Broker.create () in
  let general = Broker.subscribe_exn b ~subscriber:"alice" "/a//c" in
  let specific = Broker.subscribe_exn b ~subscriber:"alice" "/a/b/c" in
  Alcotest.(check bool) "suppressed at first" true (Broker.is_suppressed b specific);
  Alcotest.(check bool) "unsubscribe general" true (Broker.unsubscribe b general);
  Alcotest.(check bool) "specific re-activated" false (Broker.is_suppressed b specific);
  Alcotest.(check (list string)) "still delivered via specific" [ "alice" ]
    (delivery_names (Broker.publish b doc));
  Alcotest.(check bool) "double unsubscribe" false (Broker.unsubscribe b general)

let test_reactivation_finds_other_cover () =
  let b = Broker.create () in
  let g1 = Broker.subscribe_exn b ~subscriber:"alice" "/a//c" in
  let g2 = Broker.subscribe_exn b ~subscriber:"alice" "//c" in
  let specific = Broker.subscribe_exn b ~subscriber:"alice" "/a/b/c" in
  (* covered by g1 (insertion order); dropping g1 re-homes it under g2 *)
  Alcotest.(check bool) "g2 is itself covered by nothing... active" false
    (Broker.is_suppressed b g2);
  Alcotest.(check bool) "drop g1" true (Broker.unsubscribe b g1);
  Alcotest.(check bool) "still suppressed (g2 covers)" true (Broker.is_suppressed b specific);
  Alcotest.(check (list string)) "delivery survives" [ "alice" ]
    (delivery_names (Broker.publish b doc))

let test_duplicate_subscription_suppressed () =
  let b = Broker.create () in
  let _ = Broker.subscribe_exn b ~subscriber:"alice" "/a/b" in
  let dup = Broker.subscribe_exn b ~subscriber:"alice" "/a/b" in
  Alcotest.(check bool) "duplicate suppressed (covering is reflexive)" true
    (Broker.is_suppressed b dup)

let test_drop_subscriber () =
  let b = Broker.create () in
  let _ = Broker.subscribe_exn b ~subscriber:"alice" "/a/b/c" in
  let _ = Broker.subscribe_exn b ~subscriber:"alice" "/a//c" in
  let _ = Broker.subscribe_exn b ~subscriber:"bob" "/a/d" in
  Alcotest.(check int) "two cancelled" 2 (Broker.drop_subscriber b "alice");
  Alcotest.(check (list string)) "only bob left" [ "bob" ]
    (delivery_names (Broker.publish b doc));
  Alcotest.(check int) "nothing to drop twice" 0 (Broker.drop_subscriber b "alice")

let test_suppression_disabled () =
  let b = Broker.create ~covering_suppression:false () in
  let _ = Broker.subscribe_exn b ~subscriber:"alice" "/a//c" in
  let specific = Broker.subscribe_exn b ~subscriber:"alice" "/a/b/c" in
  Alcotest.(check bool) "not suppressed" false (Broker.is_suppressed b specific);
  Alcotest.(check int) "both in the engine" 2 (Broker.stats b).Broker.engine_expressions

let test_composed_filter () =
  (* the replacement for the old config record: engine options compose
     through the filter builder, including ones the record never had *)
  let b =
    Broker.create
      ~filter:(Pf_core.Engine.filter ~stream:Pf_core.Engine.Stream ~path_cache:true ()
                 :> Pf_intf.filter)
      ()
  in
  let _ = Broker.subscribe_exn b ~subscriber:"alice" "/a/b/c" in
  Alcotest.(check (list string)) "streaming engine delivers" [ "alice" ]
    (delivery_names (Broker.publish_string b doc_src))

(* one release of compatibility for the deprecated record *)
[@@@ocaml.alert "-deprecated"]

let test_legacy_config_compat () =
  let b =
    Broker.create_legacy
      ~config:{ Broker.default_config with Broker.covering_suppression = false }
      ()
  in
  let _ = Broker.subscribe_exn b ~subscriber:"alice" "/a//c" in
  let s = Broker.subscribe_exn b ~subscriber:"alice" "/a/b/c" in
  Alcotest.(check bool) "legacy config honoured" false (Broker.is_suppressed b s)

[@@@ocaml.alert "+deprecated"]

let test_stats () =
  let b = Broker.create () in
  let _ = Broker.subscribe_exn b ~subscriber:"alice" "/a//c" in
  let _ = Broker.subscribe_exn b ~subscriber:"alice" "/a/b/c" in
  let _ = Broker.subscribe_exn b ~subscriber:"bob" "/a/d" in
  ignore (Broker.publish b doc);
  let st = Broker.stats b in
  Alcotest.(check int) "subscribers" 2 st.Broker.subscribers;
  Alcotest.(check int) "subscriptions" 3 st.Broker.subscriptions;
  Alcotest.(check int) "suppressed" 1 st.Broker.suppressed;
  Alcotest.(check int) "engine expressions" 2 st.Broker.engine_expressions;
  Alcotest.(check int) "documents" 1 st.Broker.documents_published;
  Alcotest.(check int) "deliveries" 2 st.Broker.deliveries

let test_gauges () =
  let b = Broker.create () in
  let _ = Broker.subscribe_exn b ~subscriber:"alice" "/a//c" in
  let sub = Broker.subscribe_exn b ~subscriber:"alice" "/a/b/c" in
  let reg = Broker.metrics b in
  let gauge name =
    match Pf_obs.Registry.find_gauge reg name with
    | Some v -> int_of_float v
    | None -> Alcotest.fail ("missing gauge " ^ name)
  in
  Alcotest.(check int) "subscriptions gauge" 2 (gauge "subscriptions");
  Alcotest.(check int) "suppressed gauge" 1 (gauge "suppressed");
  Alcotest.(check int) "engine gauge" 1 (gauge "engine_expressions");
  ignore (Broker.unsubscribe b sub);
  Alcotest.(check int) "subscriptions gauge after unsubscribe" 1 (gauge "subscriptions");
  Alcotest.(check int) "suppressed gauge after unsubscribe" 0 (gauge "suppressed")

(* {1 Result-returning variants} *)

let test_subscribe_errors () =
  let b = Broker.create () in
  (match Broker.subscribe b ~subscriber:"alice" "/a[" with
  | Error (Pf_intf.Bad_expression _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Pf_intf.error_message e)
  | Ok _ -> Alcotest.fail "bad syntax accepted");
  (match Broker.subscribe b ~subscriber:"alice" "/a/b" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid rejected: %s" (Pf_intf.error_message e));
  (* failures consume no ids: the next subscription is dense *)
  let s = Broker.subscribe_exn b ~subscriber:"alice" "/a/c" in
  Alcotest.(check int) "ids stay dense across failures" 1 (Broker.subscription_id s)

let test_unsubscribe_id () =
  let b = Broker.create () in
  let s = Broker.subscribe_exn b ~subscriber:"alice" "/a/b" in
  let id = Broker.subscription_id s in
  Alcotest.(check bool) "cancel" true (Broker.unsubscribe_id b id = Ok true);
  Alcotest.(check bool) "idempotent retry" true (Broker.unsubscribe_id b id = Ok false);
  (match Broker.unsubscribe_id b 999 with
  | Error (Pf_intf.Unknown_subscription 999) -> ()
  | _ -> Alcotest.fail "expected Unknown_subscription");
  (* an id from another tenant's namespace is unknown, not cancellable *)
  let s2 = Broker.subscribe_exn b ~ns:"tenant-a" ~subscriber:"alice" "/a/b" in
  match Broker.unsubscribe_id b ~ns:"tenant-b" (Broker.subscription_id s2) with
  | Error (Pf_intf.Unknown_subscription _) -> ()
  | _ -> Alcotest.fail "cross-tenant cancel must fail"

(* {1 Namespaces} *)

let test_namespace_isolation () =
  let b = Broker.create () in
  let _ = Broker.subscribe_exn b ~ns:"t1" ~subscriber:"alice" "/a/b/c" in
  let _ = Broker.subscribe_exn b ~ns:"t2" ~subscriber:"alice" "/a/b/c" in
  let _ = Broker.subscribe_exn b ~ns:"t2" ~subscriber:"bob" "/a/d" in
  Alcotest.(check (list string)) "t1 sees only t1" [ "alice" ]
    (delivery_names (Broker.publish b ~ns:"t1" doc));
  Alcotest.(check (list string)) "t2 sees only t2" [ "alice"; "bob" ]
    (delivery_names (Broker.publish b ~ns:"t2" doc));
  Alcotest.(check (list string)) "default ns sees nothing" []
    (delivery_names (Broker.publish b doc));
  (* suppression never crosses namespaces even for one subscriber name *)
  let s = Broker.subscribe_exn b ~ns:"t3" ~subscriber:"alice" "/a/b/c" in
  Alcotest.(check bool) "no cross-ns suppression" false (Broker.is_suppressed b s)

(* {1 Command/event state machine} *)

let test_apply_roundtrip () =
  let b = Broker.create () in
  let ev c = Broker.apply b c in
  (match ev (Broker.Subscribe { ns = ""; subscriber = "alice"; expr = "/a//c" }) with
  | [ Broker.Subscribed { id = 0; suppressed = false } ] -> ()
  | _ -> Alcotest.fail "subscribe event");
  (match ev (Broker.Subscribe { ns = ""; subscriber = "alice"; expr = "/a/b/c" }) with
  | [ Broker.Subscribed { id = 1; suppressed = true } ] -> ()
  | _ -> Alcotest.fail "suppressed subscribe event");
  (match ev (Broker.Publish { ns = ""; doc = doc_src }) with
  | [ Broker.Delivered { deliveries = [ ("alice", [ 0 ]) ] } ] -> ()
  | _ -> Alcotest.fail "publish event");
  (match ev (Broker.Subscribe { ns = ""; subscriber = "alice"; expr = "/a[" }) with
  | [ Broker.Failed { error = Pf_intf.Bad_expression _ } ] -> ()
  | _ -> Alcotest.fail "failed subscribe event");
  (match ev (Broker.Publish { ns = ""; doc = "<broken" }) with
  | [ Broker.Failed { error = Pf_intf.Bad_document _ } ] -> ()
  | _ -> Alcotest.fail "failed publish event");
  (match ev (Broker.Unsubscribe { ns = ""; id = 0 }) with
  | [ Broker.Unsubscribed { id = 0; existed = true } ] -> ()
  | _ -> Alcotest.fail "unsubscribe event");
  match ev (Broker.Drop_subscriber { ns = ""; subscriber = "alice" }) with
  | [ Broker.Dropped { count = 1 } ] -> ()
  | _ -> Alcotest.fail "drop event"

let test_replay_determinism () =
  let cmds =
    [
      Broker.Subscribe { ns = ""; subscriber = "alice"; expr = "/a//c" };
      Broker.Subscribe { ns = ""; subscriber = "alice"; expr = "/a/b/c" };
      Broker.Subscribe { ns = "t"; subscriber = "bob"; expr = "/a/d" };
      Broker.Subscribe { ns = ""; subscriber = "carol"; expr = "bad[" };
      Broker.Unsubscribe { ns = ""; id = 0 };
      Broker.Subscribe { ns = ""; subscriber = "carol"; expr = "/a/d" };
      Broker.Publish { ns = ""; doc = doc_src };
      Broker.Publish { ns = "t"; doc = doc_src };
    ]
  in
  let run () =
    let b = Broker.create () in
    List.concat_map (Broker.apply b) cmds
  in
  Alcotest.(check bool) "same command stream, same events" true (run () = run ())

let test_snapshot_roundtrip () =
  let b = Broker.create () in
  let _ = Broker.subscribe_exn b ~subscriber:"alice" "/a//c" in
  let s = Broker.subscribe_exn b ~subscriber:"alice" "/a/b/c" in
  let _ = Broker.subscribe_exn b ~ns:"t2" ~subscriber:"bob" "/a/d" in
  ignore (Broker.unsubscribe_id b (Broker.subscription_id s));
  let s2 = Broker.subscribe_exn b ~subscriber:"carol" "/a/d" in
  let snap = Broker.snapshot b in
  let b2 = Broker.create () in
  Broker.load_snapshot b2 snap;
  Alcotest.(check bool) "deliveries identical" true
    (delivery_names (Broker.publish b doc) = delivery_names (Broker.publish b2 doc));
  Alcotest.(check bool) "t2 deliveries identical" true
    (delivery_names (Broker.publish b ~ns:"t2" doc)
    = delivery_names (Broker.publish b2 ~ns:"t2" doc));
  (* ids continue from where the snapshot left off *)
  let s3 = Broker.subscribe_exn b2 ~subscriber:"dave" "/a/b" in
  Alcotest.(check int) "next id preserved" (Broker.subscription_id s2 + 1)
    (Broker.subscription_id s3)

(* property: suppression never changes the set of delivered subscribers *)
let prop_suppression_transparent =
  QCheck2.Test.make ~name:"covering suppression is delivery-transparent" ~count:200
    ~print:(fun (paths, d) ->
      String.concat " ; " (List.map Gen_helpers.path_print paths)
      ^ " on " ^ Gen_helpers.doc_print d)
    QCheck2.Gen.(
      pair (list_size (int_range 1 10) Gen_helpers.single_path_gen) Gen_helpers.doc_gen)
    (fun (paths, d) ->
      let run suppression =
        let b = Broker.create ~covering_suppression:suppression () in
        (* two subscribers sharing the workload halves *)
        List.iteri
          (fun i p ->
            ignore
              (Broker.subscribe_path_exn b
                 ~subscriber:(if i mod 2 = 0 then "even" else "odd")
                 p))
          paths;
        List.map (fun dl -> dl.Broker.subscriber) (Broker.publish b d)
      in
      run true = run false)

(* property: unsubscribing and resubscribing is delivery-equivalent *)
let prop_churn_consistent =
  QCheck2.Test.make ~name:"unsubscribe all = empty deliveries" ~count:200
    ~print:(fun (paths, d) ->
      String.concat " ; " (List.map Gen_helpers.path_print paths)
      ^ " on " ^ Gen_helpers.doc_print d)
    QCheck2.Gen.(
      pair (list_size (int_range 1 8) Gen_helpers.single_path_gen) Gen_helpers.doc_gen)
    (fun (paths, d) ->
      let b = Broker.create () in
      let subs =
        List.map (fun p -> Broker.subscribe_path_exn b ~subscriber:"s" p) paths
      in
      let before = Broker.publish b d <> [] in
      List.iter (fun s -> ignore (Broker.unsubscribe b s)) subs;
      let after = Broker.publish b d in
      (* after cancelling everything nothing is delivered, regardless of
         what was delivered before *)
      after = [] && (before || true))

(* property: a snapshot of any subscribe/unsubscribe history restores a
   broker with identical deliveries *)
let prop_snapshot_faithful =
  QCheck2.Test.make ~name:"snapshot/load preserves deliveries" ~count:100
    ~print:(fun (paths, d) ->
      String.concat " ; " (List.map Gen_helpers.path_print paths)
      ^ " on " ^ Gen_helpers.doc_print d)
    QCheck2.Gen.(
      pair (list_size (int_range 1 10) Gen_helpers.single_path_gen) Gen_helpers.doc_gen)
    (fun (paths, d) ->
      let b = Broker.create () in
      List.iteri
        (fun i p ->
          let s =
            Broker.subscribe_path_exn b
              ~subscriber:(if i mod 2 = 0 then "even" else "odd")
              p
          in
          (* cancel every third to exercise suppressed/re-homed states *)
          if i mod 3 = 2 then ignore (Broker.unsubscribe b s))
        paths;
      let b2 = Broker.create () in
      Broker.load_snapshot b2 (Broker.snapshot b);
      let shape ds =
        List.map
          (fun dl ->
            (dl.Broker.subscriber, List.map Broker.subscription_id dl.Broker.via))
          ds
      in
      shape (Broker.publish b d) = shape (Broker.publish b2 d))

let () =
  Alcotest.run "broker"
    [
      ( "unit",
        [
          Alcotest.test_case "basic delivery" `Quick test_basic_delivery;
          Alcotest.test_case "delivery via" `Quick test_delivery_via;
          Alcotest.test_case "covering suppression" `Quick test_covering_suppression;
          Alcotest.test_case "no cross-subscriber suppression" `Quick
            test_suppression_not_across_subscribers;
          Alcotest.test_case "unsubscribe reactivates" `Quick test_unsubscribe_reactivates;
          Alcotest.test_case "reactivation finds another cover" `Quick
            test_reactivation_finds_other_cover;
          Alcotest.test_case "duplicates suppressed" `Quick test_duplicate_subscription_suppressed;
          Alcotest.test_case "drop subscriber" `Quick test_drop_subscriber;
          Alcotest.test_case "suppression disabled" `Quick test_suppression_disabled;
          Alcotest.test_case "composed filter" `Quick test_composed_filter;
          Alcotest.test_case "legacy config compat" `Quick test_legacy_config_compat;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "subscribe errors" `Quick test_subscribe_errors;
          Alcotest.test_case "unsubscribe by id" `Quick test_unsubscribe_id;
          Alcotest.test_case "namespace isolation" `Quick test_namespace_isolation;
          Alcotest.test_case "apply round-trip" `Quick test_apply_roundtrip;
          Alcotest.test_case "replay determinism" `Quick test_replay_determinism;
          Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_roundtrip;
        ] );
      ( "properties",
        List.map Gen_helpers.to_alcotest
          [ prop_suppression_transparent; prop_churn_consistent; prop_snapshot_faithful ] );
    ]
