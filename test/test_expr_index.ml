(* Tests for the expression organizations (Section 4.2.2): the four
   variants must report identical match sets, while differing in how many
   occurrence determination runs they need. *)

open Pf_core

let variants =
  Expr_index.[ Basic; Prefix_covering; Access_predicate; Shared ]

(* Build one index per variant over the same expressions and evaluate
   against the same publication; returns (variant, sorted sids, runs). *)
let eval_all exprs tags =
  let idx = Predicate_index.create () in
  let encoded =
    List.map (fun src -> Array.map (Predicate_index.intern idx) (Encoder.encode_string src).Encoder.preds) exprs
  in
  let res = Predicate_index.create_results () in
  Predicate_index.run idx res (Publication.of_tags tags);
  List.map
    (fun variant ->
      let e = Expr_index.create variant in
      List.iteri (fun sid pids -> Expr_index.add e ~sid ~pids) encoded;
      let matched = ref [] in
      Expr_index.eval e res ~sticky:false ~doc_tag:0
        ~on_match:(fun sid -> matched := sid :: !matched);
      variant, List.sort compare !matched, Expr_index.occurrence_runs e)
    variants

let test_variants_agree_simple () =
  let exprs = [ "/a/b"; "/a/b/c"; "/a/b/c/d"; "a//c"; "/a/x"; "b/c" ] in
  let results = eval_all exprs [ "a"; "b"; "c" ] in
  let expected = [ 0; 1; 3; 5 ] in
  List.iter
    (fun (v, sids, _) ->
      Alcotest.(check (list int)) (Expr_index.variant_name v) expected sids)
    results

let test_covering_reduces_runs () =
  (* /a/b is a predicate-prefix of /a/b/c, which matches: with prefix
     covering the shorter expression must not get its own run *)
  let exprs = [ "/a/b"; "/a/b/c" ] in
  let results = eval_all exprs [ "a"; "b"; "c" ] in
  let runs v = match List.find (fun (v', _, _) -> v' = v) results with _, _, r -> r in
  Alcotest.(check int) "basic runs both" 2 (runs Expr_index.Basic);
  Alcotest.(check int) "pc runs the longest only" 1 (runs Expr_index.Prefix_covering);
  Alcotest.(check int) "pc-ap runs the longest only" 1 (runs Expr_index.Access_predicate);
  Alcotest.(check int) "shared needs no runs" 0 (runs Expr_index.Shared)

let test_access_predicate_prunes () =
  (* no x in the path: the whole /x/... cluster is skipped without any
     occurrence run; basic still runs nothing (pid check fails) but pc
     walks the trie *)
  let exprs = [ "/x/y"; "/x/y/z"; "/x/w" ] in
  let results = eval_all exprs [ "a"; "b" ] in
  List.iter
    (fun (v, sids, runs) ->
      Alcotest.(check (list int)) (Expr_index.variant_name v ^ " no match") [] sids;
      Alcotest.(check int) (Expr_index.variant_name v ^ " no runs") 0 runs)
    results

let test_duplicates_share () =
  let e = Expr_index.create Expr_index.Access_predicate in
  let idx = Predicate_index.create () in
  let pids = Array.map (Predicate_index.intern idx) (Encoder.encode_string "/a/b").Encoder.preds in
  Expr_index.add e ~sid:0 ~pids;
  Expr_index.add e ~sid:1 ~pids;
  Expr_index.add e ~sid:2 ~pids;
  Alcotest.(check int) "3 expressions" 3 (Expr_index.expression_count e);
  Alcotest.(check int) "2 trie nodes" 2 (Expr_index.node_count e);
  let res = Predicate_index.create_results () in
  Predicate_index.run idx res (Publication.of_tags [ "a"; "b" ]);
  let matched = ref [] in
  Expr_index.eval e res ~sticky:false ~doc_tag:0
        ~on_match:(fun sid -> matched := sid :: !matched);
  Alcotest.(check (list int)) "all three sids" [ 0; 1; 2 ] (List.sort compare !matched);
  Alcotest.(check int) "one run serves all duplicates" 1 (Expr_index.occurrence_runs e)

let test_variant_names () =
  List.iter
    (fun v ->
      Alcotest.(check (option string))
        "roundtrip"
        (Some (Expr_index.variant_name v))
        (Option.map Expr_index.variant_name (Expr_index.variant_of_name (Expr_index.variant_name v))))
    variants;
  Alcotest.(check bool) "unknown" true (Expr_index.variant_of_name "bogus" = None)

let test_empty_pids_rejected () =
  let e = Expr_index.create Expr_index.Basic in
  match Expr_index.add e ~sid:0 ~pids:[||] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "empty pid sequence should be rejected"

(* property: on random single-path workloads and random linear paths, all
   four variants produce the same match set, and it equals the per-
   expression ground truth *)
let prop_variants_agree =
  let open QCheck2 in
  Test.make ~name:"all variants = ground truth" ~count:500
    ~print:(fun (paths, tags) ->
      String.concat " ; " (List.map Gen_helpers.path_print paths)
      ^ " on " ^ String.concat "/" tags)
    Gen.(
      pair
        (list_size (int_range 1 12) Gen_helpers.single_path_gen)
        (list_size (int_range 1 7) Gen_helpers.tag_gen))
    (fun (paths, tags) ->
      let idx = Predicate_index.create () in
      let encoded =
        List.map
          (fun p -> Array.map (Predicate_index.intern idx) (Encoder.encode p).Encoder.preds)
          paths
      in
      let res = Predicate_index.create_results () in
      let pub = Publication.of_tags tags in
      Predicate_index.run idx res pub;
      let truth =
        List.mapi
          (fun sid pids ->
            let rs = Array.map (Predicate_index.get res) pids in
            if Array.exists (fun l -> l = []) rs then None
            else if Occurrence.matches rs then Some sid
            else None)
          encoded
        |> List.filter_map Fun.id
      in
      List.for_all
        (fun variant ->
          let e = Expr_index.create variant in
          List.iteri (fun sid pids -> Expr_index.add e ~sid ~pids) encoded;
          let matched = ref [] in
          Expr_index.eval e res ~sticky:false ~doc_tag:0
        ~on_match:(fun sid -> matched := sid :: !matched);
          List.sort compare !matched = truth)
        variants)

let () =
  Alcotest.run "expr_index"
    [
      ( "unit",
        [
          Alcotest.test_case "variants agree" `Quick test_variants_agree_simple;
          Alcotest.test_case "covering reduces runs" `Quick test_covering_reduces_runs;
          Alcotest.test_case "access predicate prunes" `Quick test_access_predicate_prunes;
          Alcotest.test_case "duplicates share structure" `Quick test_duplicates_share;
          Alcotest.test_case "variant names" `Quick test_variant_names;
          Alcotest.test_case "empty pids rejected" `Quick test_empty_pids_rejected;
        ] );
      "properties", List.map Gen_helpers.to_alcotest [ prop_variants_agree ];
    ]
