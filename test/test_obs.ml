(* Pf_obs: registry arithmetic, histogram bucketing, exporter round-trips
   and cross-engine metric invariants on a Figure-9-style workload. *)

open Pf_obs

let unlisted name = Registry.create ~list:false name

(* ------------------------------------------------------------------ *)
(* Registry arithmetic *)

let test_counter () =
  let r = unlisted "t" in
  let c = Counter.make ~registry:r "hits" in
  Alcotest.(check int) "fresh" 0 (Counter.get c);
  Counter.incr c;
  Counter.add c 41;
  Alcotest.(check int) "incr+add" 42 (Counter.get c);
  Alcotest.(check string) "name" "hits" (Counter.name c);
  Registry.reset r;
  Alcotest.(check int) "reset" 0 (Counter.get c);
  Alcotest.(check (option int)) "find_counter" (Some 0) (Registry.find_counter r "hits");
  Alcotest.(check (option int)) "find_counter miss" None (Registry.find_counter r "nope")

let test_gauge () =
  let r = unlisted "t" in
  let g = Gauge.make ~registry:r "depth" in
  Gauge.set g 3.;
  Gauge.set_max g 2.;
  Alcotest.(check (float 0.)) "set_max keeps max" 3. (Gauge.get g);
  Gauge.set_max g 7.;
  Alcotest.(check (float 0.)) "set_max raises" 7. (Gauge.get g);
  Registry.reset r;
  Alcotest.(check (float 0.)) "reset" 0. (Gauge.get g)

let test_histogram_buckets () =
  (* power-of-two bounds: observation n lands in the first bucket whose
     bound is >= n *)
  Alcotest.(check int) "0" 0 (Histogram.bucket_index 0);
  Alcotest.(check int) "1" 0 (Histogram.bucket_index 1);
  Alcotest.(check int) "2" 1 (Histogram.bucket_index 2);
  Alcotest.(check int) "3" 2 (Histogram.bucket_index 3);
  Alcotest.(check int) "4" 2 (Histogram.bucket_index 4);
  Alcotest.(check int) "5" 3 (Histogram.bucket_index 5);
  Alcotest.(check int) "1024" 10 (Histogram.bucket_index 1024);
  Alcotest.(check int) "1025" 11 (Histogram.bucket_index 1025);
  Alcotest.(check bool) "huge lands in overflow" true (Histogram.bucket_index max_int >= 30)

let test_histogram_cumulative () =
  let r = unlisted "t" in
  let h = Histogram.make ~registry:r "len" in
  List.iter (Histogram.observe h) [ 1; 2; 2; 5 ];
  Alcotest.(check int) "count" 4 (Histogram.count h);
  Alcotest.(check (float 0.)) "sum" 10. (Histogram.sum h);
  let cum = Histogram.cumulative h in
  (* cumulative counts never decrease and end at the total under +inf *)
  let last_bound, last_count = List.nth cum (List.length cum - 1) in
  Alcotest.(check bool) "last bound is +inf" true (last_bound = infinity);
  Alcotest.(check int) "last count is total" 4 last_count;
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (monotone cum);
  Alcotest.(check int) "le 1" 1 (List.assoc 1. cum);
  Alcotest.(check int) "le 2" 3 (List.assoc 2. cum);
  Alcotest.(check int) "le 8" 4 (List.assoc 8. cum)

let test_span () =
  let r = unlisted "t" in
  let s = Span.make ~registry:r "stage_ns" in
  Span.add s 1_500_000L;
  Span.add s 500_000L;
  Alcotest.(check int64) "ns accumulates" 2_000_000L (Span.ns s);
  Alcotest.(check (float 1e-9)) "ms" 2.0 (Span.ms s);
  let x = Span.time s (fun () -> 42) in
  Alcotest.(check int) "time returns" 42 x;
  Alcotest.(check bool) "time adds" true (Span.ns s >= 2_000_000L);
  Registry.reset r;
  Alcotest.(check int64) "reset" 0L (Span.ns s)

let test_scope_uniquification () =
  let r1 = Registry.create "uniq_test" in
  let r2 = Registry.create "uniq_test" in
  Alcotest.(check string) "first" "uniq_test" (Registry.scope r1);
  Alcotest.(check string) "second" "uniq_test#2" (Registry.scope r2);
  let scopes = List.map Registry.scope (Registry.registries ()) in
  Alcotest.(check bool) "both listed" true
    (List.mem "uniq_test" scopes && List.mem "uniq_test#2" scopes)

(* ------------------------------------------------------------------ *)
(* Exporters *)

let sample_registry () =
  let r = unlisted "sample" in
  let c = Counter.make ~registry:r "runs" ~help:"runs so far" in
  let g = Gauge.make ~registry:r "depth" in
  let h = Histogram.make ~registry:r "chain" in
  let s = Span.make ~registry:r "stage_ns" in
  Counter.add c 17;
  Gauge.set g 4.;
  List.iter (Histogram.observe h) [ 1; 3 ];
  Span.add s 2_000_000L;
  r

let test_jsonl_roundtrip () =
  let r = sample_registry () in
  let lines = String.split_on_char '\n' (String.trim (Export.jsonl r)) in
  Alcotest.(check int) "one line per metric" 4 (List.length lines);
  let parsed = List.map Json.of_string lines in
  List.iter
    (fun j ->
      Alcotest.(check (option string))
        "scope" (Some "sample")
        (match Json.member "scope" j with Some (Json.String s) -> Some s | _ -> None))
    parsed;
  let by_name name =
    List.find
      (fun j -> Json.member "name" j = Some (Json.String name))
      parsed
  in
  Alcotest.(check bool) "counter value" true
    (Json.member "value" (by_name "runs") = Some (Json.Int 17));
  Alcotest.(check bool) "span ns" true
    (Json.member "ns" (by_name "stage_ns") = Some (Json.Int 2_000_000));
  (match Json.member "count" (by_name "chain") with
  | Some (Json.Int 2) -> ()
  | _ -> Alcotest.fail "histogram count");
  (* registry_json compact snapshot parses back too *)
  let snap = Json.of_string (Json.to_string (Export.registry_json r)) in
  Alcotest.(check bool) "snapshot runs" true
    (Json.member "runs" snap = Some (Json.Int 17))

let test_prometheus_format () =
  let r = sample_registry () in
  let text = Export.prometheus r in
  let contains sub =
    let n = String.length sub and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter sample" true (contains "predfilter_sample_runs 17");
  Alcotest.(check bool) "help line" true
    (contains "# HELP predfilter_sample_runs runs so far");
  Alcotest.(check bool) "type line" true (contains "# TYPE predfilter_sample_runs counter");
  Alcotest.(check bool) "span as seconds counter" true
    (contains "predfilter_sample_stage_ns_seconds_total 0.002");
  Alcotest.(check bool) "histogram +Inf bucket" true
    (contains "predfilter_sample_chain_bucket{le=\"+Inf\"} 2")

let test_summary_line () =
  let r = unlisted "digest" in
  let c = Counter.make ~registry:r "hits" in
  let z = Counter.make ~registry:r "misses" in
  ignore z;
  Counter.add c 3;
  let line = Export.summary_line r in
  let contains sub =
    let n = String.length sub and m = String.length line in
    let rec go i = i + n <= m && (String.sub line i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "scope shown" true (contains "[digest]");
  Alcotest.(check bool) "nonzero shown" true (contains "hits=3");
  Alcotest.(check bool) "zeros elided" false (contains "misses")

(* ------------------------------------------------------------------ *)
(* JSON parser *)

let test_json_parser () =
  let rt v = Json.of_string (Json.to_string v) in
  let v =
    Json.Obj
      [
        "a", Json.Int 1;
        "b", Json.List [ Json.Null; Json.Bool true; Json.Float 2.5 ];
        "s", Json.String "he \"said\"\n";
      ]
  in
  Alcotest.(check bool) "roundtrip" true (rt v = v);
  Alcotest.(check bool) "nan is null" true
    (Json.of_string (Json.to_string (Json.Float Float.nan)) = Json.Null);
  Alcotest.(check bool) "trailing garbage rejected" true
    (match Json.of_string "1 2" with
    | _ -> false
    | exception Json.Parse_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Cross-engine invariants on a small Figure-9-style workload: filtered
   expressions over generated documents, run through every engine. *)

let workload () =
  let dtd = Pf_workload.Dtd.nitf_like () in
  let qs =
    Pf_workload.Xpath_gen.generate dtd
      {
        Pf_workload.Presets.paper_queries with
        Pf_workload.Xpath_gen.count = 400;
        filters_per_path = 1;
        seed = 11;
      }
  in
  let docs =
    Pf_workload.Xml_gen.generate_many dtd
      { (Pf_workload.Presets.documents_for "nitf") with Pf_workload.Xml_gen.seed = 12 }
      5
  in
  qs, docs

let counter_of registry name =
  match Registry.find_counter registry name with
  | Some n -> n
  | None -> Alcotest.fail (Printf.sprintf "counter %s not registered" name)

let run_variant variant qs docs =
  let e = Pf_core.Engine.create ~variant () in
  List.iter (fun q -> ignore (Pf_core.Engine.add e q)) qs;
  let matches =
    List.fold_left (fun acc d -> acc + List.length (Pf_core.Engine.match_document e d)) 0 docs
  in
  matches, Pf_core.Engine.metrics e

let test_cross_engine_invariants () =
  let qs, docs = workload () in
  let m_basic, r_basic = run_variant Pf_core.Expr_index.Basic qs docs in
  let m_ap, r_ap = run_variant Pf_core.Expr_index.Access_predicate qs docs in
  Alcotest.(check int) "variants agree on matches" m_basic m_ap;
  let runs_basic = counter_of r_basic "occurrence_runs" in
  let runs_ap = counter_of r_ap "occurrence_runs" in
  Alcotest.(check bool) "runs nonzero" true (runs_basic > 0 && runs_ap > 0);
  (* prefix covering + access predicates can only prune runs *)
  Alcotest.(check bool) "ap prunes runs" true (runs_ap <= runs_basic);
  Alcotest.(check bool) "ap skipped something" true
    (counter_of r_ap "access_skips" + counter_of r_ap "prefix_cover_skips" > 0);
  List.iter
    (fun r ->
      let probes = counter_of r "predicate_probes" in
      let hits = counter_of r "predicate_hits" in
      let paths = counter_of r "paths" in
      let docs_n = counter_of r "documents" in
      Alcotest.(check bool) "hits <= probes" true (hits <= probes);
      Alcotest.(check bool) "documents counted" true (docs_n = List.length docs);
      Alcotest.(check bool) "paths >= documents" true (paths >= docs_n);
      (* each run probes the predicate index at most once per path/expr *)
      let runs = counter_of r "occurrence_runs" in
      Alcotest.(check bool) "runs bounded" true (runs <= paths * List.length qs))
    [ r_basic; r_ap ]

let test_baseline_metrics () =
  let qs, docs = workload () in
  let single_path = List.filter Pf_xpath.Ast.is_single_path qs in
  let y = Pf_yfilter.Yfilter.create () in
  let f = Pf_indexfilter.Index_filter.create () in
  List.iter (fun q -> ignore (Pf_yfilter.Yfilter.add y q)) single_path;
  List.iter (fun q -> ignore (Pf_indexfilter.Index_filter.add f q)) single_path;
  let my =
    List.fold_left
      (fun acc d -> acc + List.length (Pf_yfilter.Yfilter.match_document y d))
      0 docs
  in
  let mf =
    List.fold_left
      (fun acc d -> acc + List.length (Pf_indexfilter.Index_filter.match_document f d))
      0 docs
  in
  Alcotest.(check int) "baselines agree" my mf;
  let ry = Pf_yfilter.Yfilter.metrics y and rf = Pf_indexfilter.Index_filter.metrics f in
  Alcotest.(check int) "yfilter documents" (List.length docs) (counter_of ry "documents");
  Alcotest.(check int) "indexfilter documents" (List.length docs) (counter_of rf "documents");
  Alcotest.(check int) "yfilter matches counter" my (counter_of ry "matches");
  Alcotest.(check int) "indexfilter matches counter" mf (counter_of rf "matches");
  Alcotest.(check bool) "yfilter did work" true
    (counter_of ry "nfa_transitions" > 0 && counter_of ry "state_activations" > 0);
  Alcotest.(check bool) "indexfilter did work" true
    (counter_of rf "stream_advances" >= counter_of rf "nodes_visited")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram cumulative" `Quick test_histogram_cumulative;
          Alcotest.test_case "span" `Quick test_span;
          Alcotest.test_case "scope uniquification" `Quick test_scope_uniquification;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "prometheus format" `Quick test_prometheus_format;
          Alcotest.test_case "summary line" `Quick test_summary_line;
          Alcotest.test_case "json parser" `Quick test_json_parser;
        ] );
      ( "engines",
        [
          Alcotest.test_case "cross-engine invariants" `Quick test_cross_engine_invariants;
          Alcotest.test_case "baseline metrics" `Quick test_baseline_metrics;
        ] );
    ]
