(* Pf_obs: registry arithmetic, histogram bucketing, exporter round-trips
   and cross-engine metric invariants on a Figure-9-style workload. *)

open Pf_obs

let unlisted name = Registry.create ~list:false name

(* ------------------------------------------------------------------ *)
(* Registry arithmetic *)

let test_counter () =
  let r = unlisted "t" in
  let c = Counter.make ~registry:r "hits" in
  Alcotest.(check int) "fresh" 0 (Counter.get c);
  Counter.incr c;
  Counter.add c 41;
  Alcotest.(check int) "incr+add" 42 (Counter.get c);
  Alcotest.(check string) "name" "hits" (Counter.name c);
  Registry.reset r;
  Alcotest.(check int) "reset" 0 (Counter.get c);
  Alcotest.(check (option int)) "find_counter" (Some 0) (Registry.find_counter r "hits");
  Alcotest.(check (option int)) "find_counter miss" None (Registry.find_counter r "nope")

let test_gauge () =
  let r = unlisted "t" in
  let g = Gauge.make ~registry:r "depth" in
  Gauge.set g 3.;
  Gauge.set_max g 2.;
  Alcotest.(check (float 0.)) "set_max keeps max" 3. (Gauge.get g);
  Gauge.set_max g 7.;
  Alcotest.(check (float 0.)) "set_max raises" 7. (Gauge.get g);
  Registry.reset r;
  Alcotest.(check (float 0.)) "reset" 0. (Gauge.get g)

let test_histogram_buckets () =
  (* power-of-two bounds: observation n lands in the first bucket whose
     bound is >= n *)
  Alcotest.(check int) "0" 0 (Histogram.bucket_index 0);
  Alcotest.(check int) "1" 0 (Histogram.bucket_index 1);
  Alcotest.(check int) "2" 1 (Histogram.bucket_index 2);
  Alcotest.(check int) "3" 2 (Histogram.bucket_index 3);
  Alcotest.(check int) "4" 2 (Histogram.bucket_index 4);
  Alcotest.(check int) "5" 3 (Histogram.bucket_index 5);
  Alcotest.(check int) "1024" 10 (Histogram.bucket_index 1024);
  Alcotest.(check int) "1025" 11 (Histogram.bucket_index 1025);
  Alcotest.(check bool) "huge lands in overflow" true (Histogram.bucket_index max_int >= 30)

let test_histogram_cumulative () =
  let r = unlisted "t" in
  let h = Histogram.make ~registry:r "len" in
  List.iter (Histogram.observe h) [ 1; 2; 2; 5 ];
  Alcotest.(check int) "count" 4 (Histogram.count h);
  Alcotest.(check (float 0.)) "sum" 10. (Histogram.sum h);
  let cum = Histogram.cumulative h in
  (* cumulative counts never decrease and end at the total under +inf *)
  let last_bound, last_count = List.nth cum (List.length cum - 1) in
  Alcotest.(check bool) "last bound is +inf" true (last_bound = infinity);
  Alcotest.(check int) "last count is total" 4 last_count;
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (monotone cum);
  Alcotest.(check int) "le 1" 1 (List.assoc 1. cum);
  Alcotest.(check int) "le 2" 3 (List.assoc 2. cum);
  Alcotest.(check int) "le 8" 4 (List.assoc 8. cum)

let test_span () =
  let r = unlisted "t" in
  let s = Span.make ~registry:r "stage_ns" in
  Span.add s 1_500_000L;
  Span.add s 500_000L;
  Alcotest.(check int64) "ns accumulates" 2_000_000L (Span.ns s);
  Alcotest.(check (float 1e-9)) "ms" 2.0 (Span.ms s);
  let x = Span.time s (fun () -> 42) in
  Alcotest.(check int) "time returns" 42 x;
  Alcotest.(check bool) "time adds" true (Span.ns s >= 2_000_000L);
  Registry.reset r;
  Alcotest.(check int64) "reset" 0L (Span.ns s)

let test_scope_uniquification () =
  let r1 = Registry.create "uniq_test" in
  let r2 = Registry.create "uniq_test" in
  Alcotest.(check string) "first" "uniq_test" (Registry.scope r1);
  Alcotest.(check string) "second" "uniq_test#2" (Registry.scope r2);
  let scopes = List.map Registry.scope (Registry.registries ()) in
  Alcotest.(check bool) "both listed" true
    (List.mem "uniq_test" scopes && List.mem "uniq_test#2" scopes)

(* ------------------------------------------------------------------ *)
(* Quantile histograms *)

let test_qhist_basic () =
  let r = unlisted "t" in
  let q = Qhist.make ~registry:r "lat" in
  Alcotest.(check int) "empty quantile" 0 (Qhist.quantile q 0.5);
  Alcotest.(check int) "empty min" 0 (Qhist.min_value q);
  List.iter (Qhist.observe q) [ 5; 7; 7; 30; 1000 ];
  Alcotest.(check int) "count" 5 (Qhist.count q);
  Alcotest.(check (float 0.)) "sum" 1049. (Qhist.sum q);
  Alcotest.(check int) "min" 5 (Qhist.min_value q);
  Alcotest.(check int) "max" 1000 (Qhist.max_value q);
  (* values below 32 get a bucket each, so small quantiles are exact *)
  Alcotest.(check int) "p20 exact" 5 (Qhist.quantile q 0.2);
  Alcotest.(check int) "p50 exact" 7 (Qhist.quantile q 0.5);
  Alcotest.(check int) "p80 exact" 30 (Qhist.quantile q 0.8);
  let p99 = Qhist.quantile q 0.99 in
  Alcotest.(check bool) "p99 within 1/32 above max" true
    (p99 >= 1000 && p99 <= 1000 + (1000 / 32) + 1);
  (* negative observations clamp to 0 *)
  Qhist.observe q (-3);
  Alcotest.(check int) "clamped min" 0 (Qhist.min_value q);
  Registry.reset r;
  Alcotest.(check int) "reset count" 0 (Qhist.count q);
  Alcotest.(check int) "reset quantile" 0 (Qhist.quantile q 0.99)

let test_qhist_buckets () =
  (* every value reads back from its bucket within 1/32 relative error,
     and bucket_value is the largest value mapping to that bucket *)
  List.iter
    (fun v ->
      let i = Qhist.bucket_index v in
      let rep = Qhist.bucket_value i in
      Alcotest.(check bool)
        (Printf.sprintf "v=%d rep>=v" v)
        true (rep >= v);
      Alcotest.(check bool)
        (Printf.sprintf "v=%d rep within 1/32" v)
        true
        (rep - v <= (v / 32) + 1);
      Alcotest.(check int)
        (Printf.sprintf "rep of %d self-maps" v)
        i
        (Qhist.bucket_index rep))
    [ 0; 1; 31; 32; 33; 63; 64; 100; 1023; 1024; 65_537; 1_000_000; max_int / 2 ]

let test_qhist_cumulative () =
  let r = unlisted "t" in
  let q = Qhist.make ~registry:r "lat" in
  List.iter (Qhist.observe q) [ 1; 1; 2; 500 ];
  let cum = Qhist.cumulative q in
  let last_bound, last_count = List.nth cum (List.length cum - 1) in
  Alcotest.(check bool) "terminal +inf" true (last_bound = infinity);
  Alcotest.(check int) "terminal total" 4 last_count;
  let rec monotone = function
    | (b1, c1) :: ((b2, c2) :: _ as rest) ->
      b1 < b2 && c1 <= c2 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone in bound and count" true (monotone cum);
  (* exact small buckets: le(1)=2, le(2)=3 *)
  Alcotest.(check int) "le 1" 2 (List.assoc 1. cum);
  Alcotest.(check int) "le 2" 3 (List.assoc 2. cum)

(* QCheck: quantile readouts against the sorted-sample order statistic,
   and distribution mergeability. *)

let sorted_oracle sample p =
  let sorted = List.sort compare sample in
  let n = List.length sorted in
  let rank = max 1 (min n (int_of_float (ceil (p *. float_of_int n)))) in
  List.nth sorted (rank - 1)

let prop_qhist_quantile_oracle =
  QCheck2.Test.make ~name:"qhist p50/p90/p99 within 1/32 of sorted sample"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 200) (int_bound 2_000_000))
    (fun sample ->
      let q = Qhist.make "lat" in
      List.iter (Qhist.observe q) sample;
      List.for_all
        (fun p ->
          let truth = sorted_oracle sample p in
          let read = Qhist.quantile q p in
          truth <= read && read - truth <= (truth / 32) + 1)
        [ 0.5; 0.9; 0.99; 0.999 ])

let prop_qhist_merge_associative =
  QCheck2.Test.make ~name:"registry merge is associative" ~count:100
    QCheck2.Gen.(
      triple
        (list_size (int_range 0 50) (int_bound 100_000))
        (list_size (int_range 0 50) (int_bound 100_000))
        (list_size (int_range 0 50) (int_bound 100_000)))
    (fun (xs, ys, zs) ->
      let mk obs =
        let r = unlisted "part" in
        let q = Qhist.make ~registry:r "lat" in
        let c = Counter.make ~registry:r "n" in
        let g = Gauge.make ~registry:r "sz" ~merge:Gauge.Sum in
        let w = Gauge.make ~registry:r "hw" in
        List.iter (Qhist.observe q) obs;
        Counter.add c (List.length obs);
        Gauge.set g (float_of_int (List.length obs));
        Gauge.set w (float_of_int (List.fold_left max 0 obs));
        r
      in
      let a = mk xs and b = mk ys and c = mk zs in
      let left =
        Registry.merge ~list:false ~scope:"m"
          [ Registry.merge ~list:false ~scope:"m" [ a; b ]; c ]
      in
      let right =
        Registry.merge ~list:false ~scope:"m"
          [ a; Registry.merge ~list:false ~scope:"m" [ b; c ] ]
      in
      (* prometheus exposition prints every bucket, so equality there is
         equality of the full merged distributions, not just quantiles *)
      Export.prometheus left = Export.prometheus right)

let test_gauge_merge_policy () =
  let mk v =
    let r = unlisted "part" in
    let s = Gauge.make ~registry:r "cache_entries" ~merge:Gauge.Sum in
    let m = Gauge.make ~registry:r "high_water" in
    Gauge.set s v;
    Gauge.set m v;
    r
  in
  let merged = Registry.merge ~list:false ~scope:"m" [ mk 3.; mk 5. ] in
  let value name =
    match Json.member name (Export.registry_json merged) with
    | Some (Json.Float f) -> f
    | Some (Json.Int n) -> float_of_int n
    | _ -> Alcotest.fail (name ^ " missing from merged registry")
  in
  Alcotest.(check (float 0.)) "Sum gauges add" 8. (value "cache_entries");
  Alcotest.(check (float 0.)) "Max gauges keep the max" 5. (value "high_water")

(* ------------------------------------------------------------------ *)
(* Exporters *)

let sample_registry () =
  let r = unlisted "sample" in
  let c = Counter.make ~registry:r "runs" ~help:"runs so far" in
  let g = Gauge.make ~registry:r "depth" in
  let h = Histogram.make ~registry:r "chain" in
  let s = Span.make ~registry:r "stage_ns" in
  Counter.add c 17;
  Gauge.set g 4.;
  List.iter (Histogram.observe h) [ 1; 3 ];
  Span.add s 2_000_000L;
  r

let test_jsonl_roundtrip () =
  let r = sample_registry () in
  let lines = String.split_on_char '\n' (String.trim (Export.jsonl r)) in
  Alcotest.(check int) "one line per metric" 4 (List.length lines);
  let parsed = List.map Json.of_string lines in
  List.iter
    (fun j ->
      Alcotest.(check (option string))
        "scope" (Some "sample")
        (match Json.member "scope" j with Some (Json.String s) -> Some s | _ -> None))
    parsed;
  let by_name name =
    List.find
      (fun j -> Json.member "name" j = Some (Json.String name))
      parsed
  in
  Alcotest.(check bool) "counter value" true
    (Json.member "value" (by_name "runs") = Some (Json.Int 17));
  Alcotest.(check bool) "span ns" true
    (Json.member "ns" (by_name "stage_ns") = Some (Json.Int 2_000_000));
  (match Json.member "count" (by_name "chain") with
  | Some (Json.Int 2) -> ()
  | _ -> Alcotest.fail "histogram count");
  (* registry_json compact snapshot parses back too *)
  let snap = Json.of_string (Json.to_string (Export.registry_json r)) in
  Alcotest.(check bool) "snapshot runs" true
    (Json.member "runs" snap = Some (Json.Int 17))

let test_prometheus_format () =
  let r = sample_registry () in
  let text = Export.prometheus r in
  let contains sub =
    let n = String.length sub and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter sample" true (contains "predfilter_sample_runs 17");
  Alcotest.(check bool) "help line" true
    (contains "# HELP predfilter_sample_runs runs so far");
  Alcotest.(check bool) "type line" true (contains "# TYPE predfilter_sample_runs counter");
  Alcotest.(check bool) "span as seconds counter" true
    (contains "predfilter_sample_stage_ns_seconds_total 0.002");
  Alcotest.(check bool) "histogram +Inf bucket" true
    (contains "predfilter_sample_chain_bucket{le=\"+Inf\"} 2")

let test_summary_line () =
  let r = unlisted "digest" in
  let c = Counter.make ~registry:r "hits" in
  let z = Counter.make ~registry:r "misses" in
  ignore z;
  Counter.add c 3;
  let line = Export.summary_line r in
  let contains sub =
    let n = String.length sub and m = String.length line in
    let rec go i = i + n <= m && (String.sub line i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "scope shown" true (contains "[digest]");
  Alcotest.(check bool) "nonzero shown" true (contains "hits=3");
  Alcotest.(check bool) "zeros elided" false (contains "misses")

let test_build_info () =
  let text = Export.build_info () in
  let contains sub =
    let n = String.length sub and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "gauge type" true (contains "# TYPE predfilter_build_info gauge");
  Alcotest.(check bool) "version label" true
    (contains (Printf.sprintf "version=\"%s\"" Export.version));
  Alcotest.(check bool) "ocaml version label" true
    (contains (Printf.sprintf "ocaml_version=\"%s\"" Sys.ocaml_version));
  Alcotest.(check bool) "value 1" true (contains "} 1");
  (* prometheus_all leads with it *)
  let all = Export.prometheus_all () in
  Alcotest.(check bool) "prometheus_all starts with build info" true
    (String.length all >= String.length text
    && String.sub all 0 (String.length text) = text)

let test_qhist_prometheus () =
  let r = unlisted "qh" in
  let q = Qhist.make ~registry:r "lat_ns" ~help:"latency" in
  List.iter (Qhist.observe q) [ 1; 2; 1000 ];
  let text = Export.prometheus r in
  let contains sub =
    let n = String.length sub and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "histogram type" true
    (contains "# TYPE predfilter_qh_lat_ns histogram");
  Alcotest.(check bool) "buckets" true (contains "predfilter_qh_lat_ns_bucket{le=\"1\"} 1");
  Alcotest.(check bool) "+Inf bucket" true
    (contains "predfilter_qh_lat_ns_bucket{le=\"+Inf\"} 3");
  Alcotest.(check bool) "sum" true (contains "predfilter_qh_lat_ns_sum 1003");
  Alcotest.(check bool) "count" true (contains "predfilter_qh_lat_ns_count 3");
  (* a histogram family may not mix in quantile-labeled series *)
  Alcotest.(check bool) "no quantile series" false (contains "quantile=")

(* ------------------------------------------------------------------ *)
(* Per-document tracing *)

let span_names tr = List.rev_map (fun sp -> sp.Trace.sp_name) tr.Trace.tr_spans

let test_trace_nesting () =
  let t = Trace.create () in
  let ctx = Trace.start ~label:"doc.xml" t in
  Alcotest.(check bool) "no ambient yet" true (Trace.ambient () = None);
  Trace.set_ambient ctx;
  Alcotest.(check bool) "ambient set" true (Trace.ambient () = Some ctx);
  let x =
    Trace.with_span "outer" (fun () ->
        Trace.with_span "inner" (fun () -> 41) + 1)
  in
  Alcotest.(check int) "thunk value" 42 x;
  (* spans record even when the thunk raises *)
  (try Trace.with_span "raiser" (fun () -> failwith "boom") with Failure _ -> ());
  Trace.clear_ambient ();
  Alcotest.(check bool) "ambient cleared" true (Trace.ambient () = None);
  Alcotest.(check int) "with_span outside a trace is a no-op" 7
    (Trace.with_span "ignored" (fun () -> 7));
  Trace.finish ctx;
  match Trace.traces t with
  | [ tr ] ->
    Alcotest.(check string) "label" "doc.xml" tr.Trace.tr_label;
    (* spans append when they close, so the inner span precedes its parent *)
    Alcotest.(check (list string)) "span names" [ "inner"; "outer"; "raiser" ]
      (span_names tr);
    let find name = List.find (fun sp -> sp.Trace.sp_name = name) tr.Trace.tr_spans in
    let outer = find "outer" and inner = find "inner" and raiser = find "raiser" in
    Alcotest.(check int) "outer is a root child" 0 outer.Trace.sp_parent;
    Alcotest.(check int) "inner nests under outer" outer.Trace.sp_id
      inner.Trace.sp_parent;
    Alcotest.(check int) "raiser recorded as root child" 0 raiser.Trace.sp_parent;
    Alcotest.(check bool) "durations non-negative" true
      (List.for_all (fun sp -> sp.Trace.sp_dur_ns >= 0L) tr.Trace.tr_spans);
    Alcotest.(check bool) "trace spans its spans" true
      (List.for_all
         (fun sp -> sp.Trace.sp_t0_ns >= tr.Trace.tr_t0_ns)
         tr.Trace.tr_spans)
  | trs -> Alcotest.fail (Printf.sprintf "expected 1 trace, got %d" (List.length trs))

let test_trace_retention () =
  let t = Trace.create ~keep:(`Slowest 2) () in
  for i = 1 to 5 do
    let ctx = Trace.start ~label:(Printf.sprintf "d%d" i) t in
    Trace.finish ctx
  done;
  Alcotest.(check int) "kept" 2 (List.length (Trace.traces t));
  Alcotest.(check int) "dropped" 3 (Trace.dropped t);
  match Trace.slowest t with
  | None -> Alcotest.fail "slowest empty"
  | Some s ->
    Alcotest.(check bool) "slowest is the max kept" true
      (List.for_all (fun tr -> tr.Trace.tr_dur_ns <= s.Trace.tr_dur_ns) (Trace.traces t))

let test_trace_chrome_export () =
  let t = Trace.create () in
  let ctx = Trace.start ~label:"a.xml" t in
  Trace.set_ambient ctx;
  ignore (Trace.with_span "parse" (fun () -> Sys.opaque_identity 1));
  Trace.clear_ambient ();
  Trace.finish ctx;
  (* the export must survive a JSON round-trip and keep the catapult shape *)
  let j = Json.of_string (Json.to_string (Trace.to_chrome_json t)) in
  let events =
    match Json.member "traceEvents" j with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents"
  in
  let phase e = match Json.member "ph" e with Some (Json.String s) -> s | _ -> "?" in
  Alcotest.(check bool) "has process_name metadata" true
    (List.exists
       (fun e ->
         phase e = "M" && Json.member "name" e = Some (Json.String "process_name"))
       events);
  let xs = List.filter (fun e -> phase e = "X") events in
  Alcotest.(check int) "root + one span" 2 (List.length xs);
  List.iter
    (fun e ->
      List.iter
        (fun key ->
          if Json.member key e = None then Alcotest.fail (key ^ " missing"))
        [ "name"; "ts"; "dur"; "pid"; "tid" ])
    xs;
  Alcotest.(check bool) "span carries gc args" true
    (List.exists
       (fun e ->
         match Json.member "args" e with
         | Some args -> Json.member "gc_minor_words" args <> None
         | None -> false)
       xs)

(* Cross-domain stitching: submit traced documents through the service at
   two domains in both shard modes; every document must come back as one
   trace whose spans cover the pipeline stages, with the expression-
   sharded mode contributing spans from multiple workers plus a merge. *)
let service_traces mode =
  let dtd = Pf_workload.Dtd.nitf_like () in
  let qs =
    Pf_workload.Xpath_gen.generate dtd
      { Pf_workload.Presets.paper_queries with Pf_workload.Xpath_gen.count = 50; seed = 3 }
  in
  let docs =
    Pf_workload.Xml_gen.generate_many dtd
      { (Pf_workload.Presets.documents_for "nitf") with Pf_workload.Xml_gen.seed = 4 }
      4
  in
  let svc =
    Pf_service.create ~mode ~domains:2 (Pf_core.Engine.filter () :> Pf_intf.filter)
  in
  List.iter (fun q -> ignore (Pf_service.subscribe svc q)) qs;
  let t = Trace.create () in
  List.iteri
    (fun i doc ->
      let ctx = Trace.start ~label:(Printf.sprintf "doc%d" i) t in
      Pf_service.submit ~trace:ctx svc doc (fun _ -> ()))
    docs;
  Pf_service.shutdown svc;
  List.length docs, Trace.traces t

let test_trace_service_doc_mode () =
  let ndocs, trs = service_traces Pf_service.Doc in
  Alcotest.(check int) "one finished trace per document" ndocs (List.length trs);
  List.iter
    (fun tr ->
      let names = span_names tr in
      List.iter
        (fun stage ->
          Alcotest.(check bool) (stage ^ " present") true (List.mem stage names))
        [ "scan"; "match"; "occurrence"; "deliver" ])
    trs

let test_trace_service_expr_mode () =
  let ndocs, trs = service_traces Pf_service.Expr in
  Alcotest.(check int) "one finished trace per document" ndocs (List.length trs);
  List.iter
    (fun tr ->
      let names = span_names tr in
      List.iter
        (fun stage ->
          Alcotest.(check bool) (stage ^ " present") true (List.mem stage names))
        [ "scan"; "match"; "merge"; "deliver" ];
      (* both expression shards matched the document, so its stitched
         trace carries spans from at least two distinct domains *)
      let tids =
        List.sort_uniq compare (List.map (fun sp -> sp.Trace.sp_tid) tr.Trace.tr_spans)
      in
      Alcotest.(check bool) "spans from >= 2 domains" true (List.length tids >= 2))
    trs

(* ------------------------------------------------------------------ *)
(* JSON parser *)

let test_json_parser () =
  let rt v = Json.of_string (Json.to_string v) in
  let v =
    Json.Obj
      [
        "a", Json.Int 1;
        "b", Json.List [ Json.Null; Json.Bool true; Json.Float 2.5 ];
        "s", Json.String "he \"said\"\n";
      ]
  in
  Alcotest.(check bool) "roundtrip" true (rt v = v);
  Alcotest.(check bool) "nan is null" true
    (Json.of_string (Json.to_string (Json.Float Float.nan)) = Json.Null);
  Alcotest.(check bool) "trailing garbage rejected" true
    (match Json.of_string "1 2" with
    | _ -> false
    | exception Json.Parse_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Cross-engine invariants on a small Figure-9-style workload: filtered
   expressions over generated documents, run through every engine. *)

let workload () =
  let dtd = Pf_workload.Dtd.nitf_like () in
  let qs =
    Pf_workload.Xpath_gen.generate dtd
      {
        Pf_workload.Presets.paper_queries with
        Pf_workload.Xpath_gen.count = 400;
        filters_per_path = 1;
        seed = 11;
      }
  in
  let docs =
    Pf_workload.Xml_gen.generate_many dtd
      { (Pf_workload.Presets.documents_for "nitf") with Pf_workload.Xml_gen.seed = 12 }
      5
  in
  qs, docs

let counter_of registry name =
  match Registry.find_counter registry name with
  | Some n -> n
  | None -> Alcotest.fail (Printf.sprintf "counter %s not registered" name)

let run_variant variant qs docs =
  let e = Pf_core.Engine.create ~variant () in
  List.iter (fun q -> ignore (Pf_core.Engine.add e q)) qs;
  let matches =
    List.fold_left (fun acc d -> acc + List.length (Pf_core.Engine.match_document e d)) 0 docs
  in
  matches, Pf_core.Engine.metrics e

let test_cross_engine_invariants () =
  let qs, docs = workload () in
  let m_basic, r_basic = run_variant Pf_core.Expr_index.Basic qs docs in
  let m_ap, r_ap = run_variant Pf_core.Expr_index.Access_predicate qs docs in
  Alcotest.(check int) "variants agree on matches" m_basic m_ap;
  let runs_basic = counter_of r_basic "occurrence_runs" in
  let runs_ap = counter_of r_ap "occurrence_runs" in
  Alcotest.(check bool) "runs nonzero" true (runs_basic > 0 && runs_ap > 0);
  (* prefix covering + access predicates can only prune runs *)
  Alcotest.(check bool) "ap prunes runs" true (runs_ap <= runs_basic);
  Alcotest.(check bool) "ap skipped something" true
    (counter_of r_ap "access_skips" + counter_of r_ap "prefix_cover_skips" > 0);
  List.iter
    (fun r ->
      let probes = counter_of r "predicate_probes" in
      let hits = counter_of r "predicate_hits" in
      let paths = counter_of r "paths" in
      let docs_n = counter_of r "documents" in
      Alcotest.(check bool) "hits <= probes" true (hits <= probes);
      Alcotest.(check bool) "documents counted" true (docs_n = List.length docs);
      Alcotest.(check bool) "paths >= documents" true (paths >= docs_n);
      (* each run probes the predicate index at most once per path/expr *)
      let runs = counter_of r "occurrence_runs" in
      Alcotest.(check bool) "runs bounded" true (runs <= paths * List.length qs))
    [ r_basic; r_ap ]

let test_baseline_metrics () =
  let qs, docs = workload () in
  let single_path = List.filter Pf_xpath.Ast.is_single_path qs in
  let y = Pf_yfilter.Yfilter.create () in
  let f = Pf_indexfilter.Index_filter.create () in
  List.iter (fun q -> ignore (Pf_yfilter.Yfilter.add y q)) single_path;
  List.iter (fun q -> ignore (Pf_indexfilter.Index_filter.add f q)) single_path;
  let my =
    List.fold_left
      (fun acc d -> acc + List.length (Pf_yfilter.Yfilter.match_document y d))
      0 docs
  in
  let mf =
    List.fold_left
      (fun acc d -> acc + List.length (Pf_indexfilter.Index_filter.match_document f d))
      0 docs
  in
  Alcotest.(check int) "baselines agree" my mf;
  let ry = Pf_yfilter.Yfilter.metrics y and rf = Pf_indexfilter.Index_filter.metrics f in
  Alcotest.(check int) "yfilter documents" (List.length docs) (counter_of ry "documents");
  Alcotest.(check int) "indexfilter documents" (List.length docs) (counter_of rf "documents");
  Alcotest.(check int) "yfilter matches counter" my (counter_of ry "matches");
  Alcotest.(check int) "indexfilter matches counter" mf (counter_of rf "matches");
  Alcotest.(check bool) "yfilter did work" true
    (counter_of ry "nfa_transitions" > 0 && counter_of ry "state_activations" > 0);
  Alcotest.(check bool) "indexfilter did work" true
    (counter_of rf "stream_advances" >= counter_of rf "nodes_visited")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram cumulative" `Quick test_histogram_cumulative;
          Alcotest.test_case "span" `Quick test_span;
          Alcotest.test_case "scope uniquification" `Quick test_scope_uniquification;
        ] );
      ( "qhist",
        [
          Alcotest.test_case "basics" `Quick test_qhist_basic;
          Alcotest.test_case "bucket error bound" `Quick test_qhist_buckets;
          Alcotest.test_case "cumulative" `Quick test_qhist_cumulative;
          Alcotest.test_case "gauge merge policy" `Quick test_gauge_merge_policy;
          Gen_helpers.to_alcotest prop_qhist_quantile_oracle;
          Gen_helpers.to_alcotest prop_qhist_merge_associative;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_trace_nesting;
          Alcotest.test_case "slowest-n retention" `Quick test_trace_retention;
          Alcotest.test_case "chrome export" `Quick test_trace_chrome_export;
          Alcotest.test_case "service doc mode" `Quick test_trace_service_doc_mode;
          Alcotest.test_case "service expr mode" `Quick test_trace_service_expr_mode;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "prometheus format" `Quick test_prometheus_format;
          Alcotest.test_case "qhist exposition" `Quick test_qhist_prometheus;
          Alcotest.test_case "build info" `Quick test_build_info;
          Alcotest.test_case "summary line" `Quick test_summary_line;
          Alcotest.test_case "json parser" `Quick test_json_parser;
        ] );
      ( "engines",
        [
          Alcotest.test_case "cross-engine invariants" `Quick test_cross_engine_invariants;
          Alcotest.test_case "baseline metrics" `Quick test_baseline_metrics;
        ] );
    ]
