(* pf-fuzz: cross-engine differential fuzzing.

   Generates random (world, document set, XPE set) workloads, runs every
   engine in the roster on identical inputs and reports any divergence
   from the reference evaluator. Divergences are shrunk to minimal
   reproducers; with --save they are written as replayable .case files
   (the committed corpus under test/corpus/difftest is replayed by the
   test_difftest suite). Exit status: 0 = no divergence, 1 = divergence
   found, 2 = usage error. *)

open Cmdliner

let run seed cases time_budget worlds features max_exprs max_docs all_variants save_dir
    json_out replays quiet =
  let features =
    match Pf_difftest.Feature_gen.features_of_string features with
    | Ok f -> f
    | Error msg ->
      Printf.eprintf "--features: %s\n" msg;
      exit 2
  in
  let worlds =
    match worlds with
    | [] -> Pf_difftest.Difftest.all_worlds
    | ws ->
      List.concat_map
        (fun w ->
          match w with
          | "all" -> Pf_difftest.Difftest.all_worlds
          | w when List.mem w Pf_difftest.Difftest.all_worlds -> [ w ]
          | w ->
            Printf.eprintf "--dtd: unknown world %S (expected %s or all)\n" w
              (String.concat ", " Pf_difftest.Difftest.all_worlds);
            exit 2)
        ws
  in
  let log line = if not quiet then Printf.eprintf "%s\n%!" line in
  if replays <> [] then begin
    (* replay mode: check committed cases instead of fuzzing *)
    let cases =
      List.concat_map
        (fun path ->
          if Sys.is_directory path then Pf_difftest.Case.load_dir path
          else [ Pf_difftest.Case.load path ])
        replays
    in
    if cases = [] then begin
      Printf.eprintf "no .case files found under %s\n" (String.concat ", " replays);
      exit 2
    end;
    let bad = ref 0 in
    List.iter
      (fun (c : Pf_difftest.Case.t) ->
        match Pf_difftest.Difftest.check_case ~all_variants c with
        | [] -> log (Printf.sprintf "%s: ok" c.Pf_difftest.Case.name)
        | divs ->
          incr bad;
          List.iter
            (fun d ->
              Printf.printf "%s: %s\n" c.Pf_difftest.Case.name
                (Format.asprintf "%a" Pf_difftest.Difftest.pp_divergence d))
            divs)
      cases;
    Printf.printf "replayed %d cases, %d divergent\n" (List.length cases) !bad;
    exit (if !bad = 0 then 0 else 1)
  end;
  let config =
    {
      Pf_difftest.Difftest.seed;
      cases;
      time_budget;
      worlds;
      features;
      max_exprs;
      max_docs;
      all_variants;
      save_dir;
    }
  in
  let report = Pf_difftest.Difftest.run ~log config in
  let json =
    Pf_obs.Json.to_string (Pf_difftest.Difftest.report_json config report)
  in
  (match json_out with
  | None -> ()
  | Some "-" -> print_endline json
  | Some path ->
    let oc = open_out path in
    output_string oc json;
    output_string oc "\n";
    close_out oc);
  let n_failures = List.length report.Pf_difftest.Difftest.failures in
  Printf.printf "pf_fuzz: %d cases (seed %d, worlds %s, features %s), %d divergent, %.0f ms\n"
    report.Pf_difftest.Difftest.cases_run seed (String.concat "," worlds)
    (Pf_difftest.Feature_gen.features_to_string features)
    n_failures report.Pf_difftest.Difftest.elapsed_ms;
  List.iter
    (fun (name, ms) -> Printf.printf "  %-20s %8.1f ms\n" name ms)
    report.Pf_difftest.Difftest.engine_ms;
  List.iter
    (fun (f : Pf_difftest.Difftest.divergence_report) ->
      Printf.printf "divergent case %d (%s, %d shrink steps)%s:\n%s"
        f.Pf_difftest.Difftest.case_index f.Pf_difftest.Difftest.world
        f.Pf_difftest.Difftest.shrink_steps
        (match f.Pf_difftest.Difftest.saved_to with
        | Some p -> Printf.sprintf " [saved to %s]" p
        | None -> "")
        (Pf_difftest.Case.to_string f.Pf_difftest.Difftest.shrunk))
    report.Pf_difftest.Difftest.failures;
  exit (if n_failures = 0 then 0 else 1)

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let cases_arg =
  Arg.(value & opt int 200 & info [ "cases" ] ~docv:"N" ~doc:"Number of fuzz cases.")

let budget_arg =
  Arg.(
    value
    & opt float 0.
    & info [ "time-budget" ] ~docv:"SECS"
        ~doc:"Stop after this many wall-clock seconds (0 = unlimited).")

let dtd_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "d"; "dtd" ] ~docv:"WORLD"
        ~doc:
          "Workload world (repeatable): $(b,nitf), $(b,psd), $(b,auction) (DTD-driven \
           realistic workloads), $(b,small) (adversarial small-alphabet world) or \
           $(b,all). Default: all, rotating per case.")

let features_arg =
  Arg.(
    value
    & opt string "all"
    & info [ "features" ] ~docv:"LIST"
        ~doc:
          "XPE/document feature toggles: $(b,all), $(b,none), or a comma-separated \
           subset of wildcards,descendants,attrs,nested,text.")

let max_exprs_arg =
  Arg.(value & opt int 24 & info [ "max-exprs" ] ~docv:"N" ~doc:"Expressions per case (1..N).")

let max_docs_arg =
  Arg.(value & opt int 3 & info [ "max-docs" ] ~docv:"N" ~doc:"Documents per case (1..N).")

let all_variants_arg =
  Arg.(
    value & flag
    & info [ "all-variants" ]
        ~doc:
          "Extend the roster with engine-pc, engine-shared-dedup and the streaming \
           pipeline.")

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~docv:"DIR"
        ~doc:
          "Write each shrunk divergence as a .case file under $(docv) (use \
           test/corpus/difftest to promote reproducers into the committed corpus).")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write a machine-readable JSON summary to $(docv) ($(b,-) = stdout).")

let replay_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "replay" ] ~docv:"PATH"
        ~doc:
          "Replay .case files ($(docv) is a file or a directory; repeatable) instead \
           of fuzzing.")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-divergence progress output.")

let cmd =
  let doc = "differential fuzzing of the XPath filtering engines" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates random workloads, runs the reference evaluator, the predicate \
         engine (two configurations), YFilter and Index-Filter on identical inputs, \
         and reports any divergence or crash. Divergences are shrunk to minimal \
         reproducers (drop XPEs/documents, prune subtrees, shorten paths, strip \
         filters) that can be committed as replayable regression cases.";
    ]
  in
  Cmd.v
    (Cmd.info "pf-fuzz" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ seed_arg $ cases_arg $ budget_arg $ dtd_arg $ features_arg
      $ max_exprs_arg $ max_docs_arg $ all_variants_arg $ save_arg $ json_arg
      $ replay_arg $ quiet_arg)

let () = exit (Cmd.eval cmd)
