(* pf-load: load generator and correctness probe for pf-broker.

   Drives a broker over the wire protocol with a deterministic workload:
   a subscription phase (every SUBSCRIBE acknowledged before moving on,
   with optional churn), then a publish phase that keeps a window of
   pipelined PUBLISH frames in flight and records per-document
   end-to-end latency in a quantile histogram.

   Crash tolerance makes this double as the soak-test client: if the
   connection drops mid-stream (broker killed), pf-load reconnects —
   retrying until the broker is back — and republishes exactly the
   documents whose RESULTS frames it never received. The deliveries file
   (--deliveries-out) maps each document index to its deliveries, so an
   interrupted run can be diffed byte-for-byte against an uninterrupted
   one: zero lost, zero duplicated deliveries. *)

open Cmdliner

type cfg = {
  addr : Pf_net.Server.listen;
  ns : string;
  workload : string;
  subscriptions : int;
  churn : int;
  documents : int;
  window : int;
  filters_per_path : int;
  redundant : bool;
  seed : int;
  retry_for : float;
  deliveries_out : string option;
  json : bool;
  quiet : bool;
}

let connect_retrying cfg =
  let deadline = Unix.gettimeofday () +. cfg.retry_for in
  let rec go () =
    match Pf_net.Client.connect ~ns:cfg.ns cfg.addr with
    | c -> c
    | exception Pf_net.Client.Disconnected msg ->
        if Unix.gettimeofday () > deadline then begin
          Printf.eprintf "pf-load: cannot connect: %s\n" msg;
          exit 1
        end;
        Unix.sleepf 0.05;
        go ()
  in
  go ()

let fmt_deliveries ds =
  String.concat ";"
    (List.map
       (fun (subscriber, ids) ->
         Printf.sprintf "%s=%s" subscriber (String.concat "," (List.map string_of_int ids)))
       ds)

let run cfg =
  let dtd =
    match Pf_workload.Dtd.by_name cfg.workload with
    | Some d -> d
    | None ->
        Printf.eprintf "unknown workload %S (try nitf, psd or auction)\n" cfg.workload;
        exit 2
  in
  let exprs =
    (if cfg.redundant then
       (* redundancy-skewed soak: spelling variants and covering pairs of
          a small pool, the workload the broker's covering suppression
          and a subsumed engine are built for *)
       Pf_workload.Xpath_gen.generate_redundant dtd
         { Pf_workload.Presets.redundant_subscriptions with
           Pf_workload.Xpath_gen.count = cfg.subscriptions;
           rseed = cfg.seed }
     else
       Pf_workload.Xpath_gen.generate dtd
         { Pf_workload.Presets.paper_queries with
           count = cfg.subscriptions;
           filters_per_path = cfg.filters_per_path;
           seed = cfg.seed })
    |> List.map Pf_xpath.Parser.to_string
  in
  let docs =
    Pf_workload.Xml_gen.generate_many dtd
      { (Pf_workload.Presets.documents_for cfg.workload) with seed = cfg.seed + 1 }
      cfg.documents
    |> List.map (Pf_xml.Print.to_string ~decl:false)
    |> Array.of_list
  in
  let client = ref (connect_retrying cfg) in
  let reconnects = ref 0 in
  (* {2 Subscription phase} — synchronous, so churn ids are valid and
     the publish phase starts from a settled table *)
  let suppressed = ref 0 in
  let sub_ids = Array.make (List.length exprs) (-1) in
  let resubscribe_failed = ref 0 in
  List.iteri
    (fun i expr ->
      let subscriber = Printf.sprintf "user-%d" (i mod max 1 (cfg.subscriptions / 10)) in
      match Pf_net.Client.subscribe !client ~subscriber expr with
      | Ok (id, sup) ->
          sub_ids.(i) <- id;
          if sup then incr suppressed
      | Error (Pf_intf.Unsupported_expression _) -> incr resubscribe_failed
      | Error e ->
          Printf.eprintf "pf-load: subscribe %d: %s\n" i (Pf_intf.error_message e);
          exit 1)
    exprs;
  (* churn: cancel every k-th granted subscription, acked *)
  let churned = ref 0 in
  if cfg.churn > 0 then begin
    let granted = Array.to_list sub_ids |> List.filter (fun id -> id >= 0) in
    List.iteri
      (fun i id ->
        if i mod (max 1 (List.length granted / cfg.churn)) = 0 && !churned < cfg.churn then begin
          match Pf_net.Client.unsubscribe !client id with
          | Ok _ -> incr churned
          | Error e ->
              Printf.eprintf "pf-load: churn %d: %s\n" id (Pf_intf.error_message e);
              exit 1
        end)
      granted
  end;
  (* {2 Publish phase} — pipelined with reconnect-and-republish *)
  let lat = Pf_obs.Qhist.make "pf_load_latency_ns" in
  let deliveries = Array.make (Array.length docs) None in
  let t_start = Array.make (Array.length docs) 0L in
  let inflight = Queue.create () in
  (* (req_id, doc index) in send order *)
  let t0 = Unix.gettimeofday () in
  let reconnect () =
    incr reconnects;
    (try Pf_net.Client.close !client with _ -> ());
    client := connect_retrying cfg;
    (* everything in flight is in doubt: the broker may have died before
       matching those documents. Republish them all — deliveries are
       recorded per document index, so a duplicate RESULTS for a
       republished document overwrites with an identical value rather
       than double-counting. *)
    let doubted = Queue.to_seq inflight |> Seq.map snd |> List.of_seq in
    Queue.clear inflight;
    doubted
  in
  let rec settle_one () =
    match Queue.take_opt inflight with
    | None -> []
    | Some (req, i) -> (
        match Pf_net.Client.await !client req with
        | Ok ds ->
            deliveries.(i) <- Some ds;
            Pf_obs.Qhist.observe lat
              (Int64.to_int (Int64.sub (Pf_obs.Registry.now_ns ()) t_start.(i)));
            []
        | Error e ->
            Printf.eprintf "pf-load: publish %d rejected: %s\n" i (Pf_intf.error_message e);
            exit 1
        | exception Pf_net.Client.Disconnected _ -> i :: reconnect ())
  and publish_doc i =
    t_start.(i) <- Pf_obs.Registry.now_ns ();
    match Pf_net.Client.publish_async !client docs.(i) with
    | req -> Queue.add (req, i) inflight
    | exception Pf_net.Client.Disconnected _ ->
        let doubted = reconnect () in
        List.iter publish_doc doubted;
        publish_doc i
  in
  let rec drive todo =
    match todo with
    | [] ->
        while Queue.length inflight > 0 do
          List.iter publish_doc (settle_one ())
        done
    | i :: rest ->
        if Queue.length inflight >= cfg.window then begin
          List.iter publish_doc (settle_one ());
          drive todo
        end
        else begin
          publish_doc i;
          drive rest
        end
  in
  drive (List.init (Array.length docs) Fun.id);
  let elapsed = Unix.gettimeofday () -. t0 in
  (* {2 Report} *)
  (match cfg.deliveries_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Array.iteri
        (fun i d ->
          match d with
          | Some ds -> Printf.fprintf oc "doc %06d: %s\n" i (fmt_deliveries ds)
          | None -> Printf.fprintf oc "doc %06d: LOST\n" i)
        deliveries;
      close_out oc);
  let total_deliveries =
    Array.fold_left
      (fun acc d -> match d with Some ds -> acc + List.length ds | None -> acc)
      0 deliveries
  in
  let lost = Array.fold_left (fun acc d -> if d = None then acc + 1 else acc) 0 deliveries in
  let p q = Pf_obs.Qhist.quantile lat q in
  if cfg.json then
    Printf.printf
      "{\"workload\":%S,\"subscriptions\":%d,\"suppressed\":%d,\"unsupported\":%d,\"churned\":%d,\"documents\":%d,\"lost\":%d,\"deliveries\":%d,\"reconnects\":%d,\"elapsed_s\":%.3f,\"docs_per_s\":%.1f,\"latency_ns\":{\"p50\":%d,\"p90\":%d,\"p99\":%d,\"max\":%d}}\n"
      cfg.workload cfg.subscriptions !suppressed !resubscribe_failed !churned
      (Array.length docs) lost total_deliveries !reconnects elapsed
      (float_of_int (Array.length docs) /. elapsed)
      (p 0.5) (p 0.9) (p 0.99) (Pf_obs.Qhist.max_value lat)
  else if not cfg.quiet then begin
    Printf.printf "pf-load: %d subscription(s) (%d suppressed, %d unsupported), %d churned\n"
      cfg.subscriptions !suppressed !resubscribe_failed !churned;
    Printf.printf "pf-load: %d document(s) in %.3fs (%.1f docs/s), %d deliveries, %d reconnect(s)\n"
      (Array.length docs) elapsed
      (float_of_int (Array.length docs) /. elapsed)
      total_deliveries !reconnects;
    Printf.printf "pf-load: latency p50 %.1f us  p90 %.1f us  p99 %.1f us  max %.1f us\n"
      (float_of_int (p 0.5) /. 1e3)
      (float_of_int (p 0.9) /. 1e3)
      (float_of_int (p 0.99) /. 1e3)
      (float_of_int (Pf_obs.Qhist.max_value lat) /. 1e3)
  end;
  if lost > 0 then begin
    Printf.eprintf "pf-load: %d document(s) never resolved\n" lost;
    exit 1
  end

let run_cli connect ns workload subscriptions churn documents window filters redundant
    seed retry_for deliveries_out json quiet =
  let addr =
    match Pf_net.Server.listen_of_string connect with
    | Ok a -> a
    | Error msg ->
        Printf.eprintf "bad --connect: %s\n" msg;
        exit 2
  in
  if subscriptions < 1 || documents < 1 || window < 1 || churn < 0 then begin
    Printf.eprintf "--subscriptions, --documents and --window must be >= 1, --churn >= 0\n";
    exit 2
  end;
  run
    { addr; ns; workload; subscriptions; churn; documents; window;
      filters_per_path = filters; redundant; seed; retry_for; deliveries_out;
      json; quiet }

let connect_arg =
  Arg.(
    value
    & opt string "unix:/tmp/pf-broker.sock"
    & info [ "c"; "connect" ] ~docv:"ADDR" ~doc:"Broker address (unix:/path or tcp:host:port).")

let ns_arg =
  Arg.(value & opt string "" & info [ "ns" ] ~docv:"NS" ~doc:"Tenant namespace.")

let workload_arg =
  Arg.(
    value & opt string "nitf"
    & info [ "w"; "workload" ] ~docv:"NAME"
        ~doc:"Workload DTD: $(b,nitf) (selective), $(b,psd) (matching-heavy) or $(b,auction).")

let subs_arg =
  Arg.(value & opt int 1000 & info [ "n"; "subscriptions" ] ~docv:"N" ~doc:"Subscriptions to register.")

let churn_arg =
  Arg.(
    value & opt int 0
    & info [ "churn" ] ~docv:"N" ~doc:"Unsubscribe $(docv) of the granted subscriptions before publishing.")

let docs_arg =
  Arg.(value & opt int 200 & info [ "docs"; "documents" ] ~docv:"N" ~doc:"Documents to publish.")

let window_arg =
  Arg.(
    value & opt int 32
    & info [ "window" ] ~docv:"N" ~doc:"Publishes kept in flight (pipelining window).")

let filters_arg =
  Arg.(
    value & opt int 1
    & info [ "filters-per-path" ] ~docv:"N" ~doc:"Attribute filters per generated expression.")

let redundant_arg =
  let doc =
    "Generate a redundancy-skewed subscription set (spelling variants and \
     covering pairs over a small pool) instead of independent expressions — \
     the workload the broker's covering suppression and the subsumption \
     index are designed for. Ignores $(b,--filters-per-path)."
  in
  Arg.(value & flag & info [ "redundant" ] ~doc)

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.")

let retry_arg =
  let doc =
    "Keep retrying a failed connection for $(docv) seconds — covers broker \
     restarts mid-stream (documents without RESULTS are republished after \
     reconnecting)."
  in
  Arg.(value & opt float 10.0 & info [ "retry-for" ] ~docv:"SECS" ~doc)

let deliveries_arg =
  let doc =
    "Write one line per document ($(b,doc NNNNNN: subscriber=ids;...)) to \
     $(docv); runs over identical broker state produce byte-identical files, \
     which is how the soak test proves zero lost and zero duplicated \
     deliveries across a kill -9."
  in
  Arg.(value & opt (some string) None & info [ "deliveries-out" ] ~docv:"FILE" ~doc)

let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Print a JSON summary instead of text.")
let quiet_arg = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No summary output.")

let cmd =
  let doc = "generate broker load over the wire protocol and measure latency" in
  let info = Cmd.info "pf-load" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      const run_cli $ connect_arg $ ns_arg $ workload_arg $ subs_arg $ churn_arg $ docs_arg
      $ window_arg $ filters_arg $ redundant_arg $ seed_arg $ retry_arg $ deliveries_arg
      $ json_arg $ quiet_arg)

let () = exit (Cmd.eval cmd)
