(* pf-filter: filter XML documents against a file of XPath expressions.

   Expressions are read one per line (blank lines and #-comments ignored);
   each XML document given on the command line is matched and the matching
   expressions reported. *)

open Cmdliner

let read_expressions path =
  let ic = open_in path in
  let rec go acc lineno =
    match input_line ic with
    | exception End_of_file ->
      close_in ic;
      List.rev acc
    | line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go acc (lineno + 1)
      else go ((lineno, line) :: acc) (lineno + 1)
  in
  go [] 1

let run engine_name quiet count_only metrics_fmt trace_srcs exprs_file docs =
  let metrics_fmt =
    match metrics_fmt with
    | None -> None
    | Some name -> (
      match Pf_obs.Export.format_of_name name with
      | Some f -> Some f
      | None ->
        Printf.eprintf "unknown metrics format %S (try console, json or prom)\n" name;
        exit 2)
  in
  if trace_srcs <> [] then begin
    Pf_obs.Events.install_reporter ();
    List.iter
      (fun name ->
        if not (Pf_obs.Events.enable name) then begin
          Printf.eprintf "unknown trace source %S; known sources: %s\n" name
            (String.concat ", " (Pf_obs.Events.known_sources ()));
          exit 2
        end)
      trace_srcs
  end;
  (* for per-expression reporting keep our own engine handle when possible;
     the baselines go through the uniform adapter *)
  let engine, algo =
    match Pf_core.Expr_index.variant_of_name engine_name with
    | Some variant ->
      (* stage timings are wanted whenever metrics are exported *)
      let collect_stats = metrics_fmt <> None in
      Some (Pf_core.Engine.create ~variant ~collect_stats ()), None
    | None -> (
      match engine_name with
      | "yfilter" -> None, Some (Pf_bench.Bench_util.yfilter ())
      | "index-filter" -> None, Some (Pf_bench.Bench_util.index_filter ())
      | name ->
        Printf.eprintf "unknown engine %S\n" name;
        exit 2)
  in
  let exprs = read_expressions exprs_file in
  let table = Hashtbl.create (List.length exprs) in
  List.iter
    (fun (lineno, src) ->
      match Pf_xpath.Parser.parse src with
      | exception Pf_xpath.Parser.Error msg ->
        Printf.eprintf "%s:%d: %s\n" exprs_file lineno msg;
        exit 2
      | p -> (
        try
          match engine, algo with
          | Some e, _ -> Hashtbl.add table (Pf_core.Engine.add e p) src
          | None, Some a -> a.Pf_bench.Bench_util.add p
          | None, None -> assert false
        with Pf_core.Encoder.Unsupported msg | Invalid_argument msg ->
          Printf.eprintf "%s:%d: unsupported expression: %s\n" exprs_file lineno msg;
          exit 2))
    exprs;
  let exit_code = ref 1 in
  List.iter
    (fun doc_path ->
      match Pf_xml.Sax.parse_document (In_channel.with_open_bin doc_path In_channel.input_all) with
      | exception Pf_xml.Sax.Parse_error (pos, msg) ->
        Printf.eprintf "%s: %s (%s)\n" doc_path msg
          (Format.asprintf "%a" Pf_xml.Sax.pp_position pos);
        exit 2
      | doc -> (
        match engine, algo with
        | Some e, _ ->
          let matched = Pf_core.Engine.match_document e doc in
          if matched <> [] then exit_code := 0;
          if count_only then Printf.printf "%s: %d\n" doc_path (List.length matched)
          else if not quiet then
            List.iter
              (fun sid -> Printf.printf "%s: %s\n" doc_path (Hashtbl.find table sid))
              matched
        | None, Some a ->
          let n = a.Pf_bench.Bench_util.match_doc doc in
          if n > 0 then exit_code := 0;
          Printf.printf "%s: %d\n" doc_path n
        | None, None -> assert false))
    docs;
  (match metrics_fmt with None -> () | Some fmt -> Pf_obs.Export.print fmt);
  exit !exit_code

let engine_arg =
  let doc =
    "Filtering engine: basic, basic-pc, basic-pc-ap, shared, yfilter or \
     index-filter. The baselines only report match counts."
  in
  Arg.(value & opt string "basic-pc-ap" & info [ "e"; "engine" ] ~docv:"ENGINE" ~doc)

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-match output.")

let count_arg =
  Arg.(value & flag & info [ "c"; "count" ] ~doc:"Print match counts only.")

let metrics_arg =
  let doc =
    "After filtering, dump every metric registry to stdout in $(docv) format: \
     $(b,console) (aligned table), $(b,json) (JSON Lines, one object per metric) \
     or $(b,prom) (Prometheus text exposition). Also enables per-stage timing \
     collection in the predicate engine."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FORMAT" ~doc)

let trace_arg =
  let doc =
    "Enable debug tracing for a subsystem (repeatable): engine, \
     predicate_index, nested — or $(b,all). Events go to stderr."
  in
  Arg.(value & opt_all string [] & info [ "trace" ] ~docv:"SRC" ~doc)

let exprs_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"EXPRESSIONS" ~doc:"File of XPath expressions, one per line.")

let docs_arg =
  Arg.(
    non_empty
    & pos_right 0 file []
    & info [] ~docv:"XML" ~doc:"XML documents to filter.")

let cmd =
  let doc = "filter XML documents against a set of XPath expressions" in
  let info = Cmd.info "pf-filter" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      const run $ engine_arg $ quiet_arg $ count_arg $ metrics_arg $ trace_arg
      $ exprs_arg $ docs_arg)

let () = exit (Cmd.eval cmd)
