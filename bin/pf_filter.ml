(* pf-filter: filter XML documents against a file of XPath expressions.

   Expressions are read one per line (blank lines and #-comments ignored);
   each XML document given on the command line is matched and the matching
   expressions reported. *)

open Cmdliner

let read_expressions path =
  let ic = open_in path in
  let rec go acc lineno =
    match input_line ic with
    | exception End_of_file ->
      close_in ic;
      List.rev acc
    | line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go acc (lineno + 1)
      else go ((lineno, line) :: acc) (lineno + 1)
  in
  go [] 1

let run engine_name shard_mode domains batch path_cache subsumption stream quiet
    count_only metrics_fmt trace_srcs trace_out trace_slowest exprs_file docs =
  let path_cache =
    match path_cache with
    | "on" -> true
    | "off" -> false
    | s ->
      Printf.eprintf "bad --path-cache %S (try on or off)\n" s;
      exit 2
  in
  let subsumption =
    match subsumption with
    | "on" -> true
    | "off" -> false
    | s ->
      Printf.eprintf "bad --subsumption %S (try on or off)\n" s;
      exit 2
  in
  if path_cache && Pf_core.Expr_index.variant_of_name engine_name = None then begin
    Printf.eprintf "--path-cache applies to the predicate-engine variants only, not %S\n"
      engine_name;
    exit 2
  end;
  if stream && Pf_core.Expr_index.variant_of_name engine_name = None then begin
    Printf.eprintf "--stream applies to the predicate-engine variants only, not %S\n"
      engine_name;
    exit 2
  end;
  let mode =
    match Pf_service.mode_of_string shard_mode with
    | Some m -> m
    | None ->
      Printf.eprintf "unknown shard mode %S (try doc or expr)\n" shard_mode;
      exit 2
  in
  let metrics_fmt =
    match metrics_fmt with
    | None -> None
    | Some name -> (
      match Pf_obs.Export.format_of_name name with
      | Some f -> Some f
      | None ->
        Printf.eprintf "unknown metrics format %S (try console, json or prom)\n" name;
        exit 2)
  in
  if trace_srcs <> [] then begin
    Pf_obs.Events.install_reporter ();
    List.iter
      (fun name ->
        if not (Pf_obs.Events.enable name) then begin
          Printf.eprintf "unknown trace source %S; known sources: %s\n" name
            (String.concat ", " (Pf_obs.Events.known_sources ()));
          exit 2
        end)
      trace_srcs
  end;
  if domains < 1 || batch < 1 then begin
    Printf.eprintf "--domains and --batch must be >= 1\n";
    exit 2
  end;
  if trace_slowest < 0 then begin
    Printf.eprintf "--trace-slowest must be >= 0\n";
    exit 2
  end;
  (* per-document trace collection, only when an output file is wanted;
     0 (the default) keeps every document's trace *)
  let collector =
    match trace_out with
    | None -> None
    | Some _ ->
      Some
        (Pf_obs.Trace.create
           ~keep:(if trace_slowest = 0 then `All else `Slowest trace_slowest)
           ())
  in
  (* every engine goes through Pf_intf.FILTER now, so per-expression match
     reporting works uniformly — including the yfilter/index-filter
     baselines, which used to report counts only *)
  let filter =
    (* stage timings are wanted whenever metrics are exported *)
    match
      Pf_bench.Bench_util.filter_of_name ~collect_stats:(metrics_fmt <> None)
        ~path_cache
        ~stream:(if stream then Pf_core.Engine.Stream else Pf_core.Engine.Tree)
        engine_name
    with
    | Some f -> f
    | None ->
      Printf.eprintf "unknown engine %S\n" engine_name;
      exit 2
  in
  (* the subsumption index wraps any engine: logical sids out, hash-consed
     physical registration in — match answers are byte-identical *)
  let filter = if subsumption then Pf_core.Subsume.filter filter else filter in
  let svc = Pf_service.create ~mode ~domains ~batch filter in
  let exprs = read_expressions exprs_file in
  let table = Hashtbl.create (List.length exprs) in
  List.iter
    (fun (lineno, src) ->
      match Pf_xpath.Parser.parse src with
      | exception Pf_xpath.Parser.Error msg ->
        Printf.eprintf "%s:%d: %s\n" exprs_file lineno msg;
        exit 2
      | p -> (
        try Hashtbl.add table (Pf_service.subscribe svc p) src
        with Pf_intf.Unsupported msg | Invalid_argument msg ->
          Printf.eprintf "%s:%d: unsupported expression: %s\n" exprs_file lineno msg;
          exit 2))
    exprs;
  (* submit each document as soon as it parses: backpressure on the
     service queue bounds how many parsed trees are alive at once, so a
     long document list streams instead of materializing every tree *)
  let docs = Array.of_list docs in
  let results = Array.make (Array.length docs) [] in
  Array.iteri
    (fun i doc_path ->
      (* the trace opens before the parse so the "parse" span lands in it
         (recorded on this domain); workers stitch their spans in by
         trace id and the delivering worker finishes the trace *)
      let ctx =
        match collector with
        | None -> None
        | Some c ->
          let ctx = Pf_obs.Trace.start ~label:doc_path c in
          Pf_obs.Trace.set_ambient ctx;
          Some ctx
      in
      if stream then begin
        (* --stream: the raw text goes to the workers; a streaming engine
           matches it straight off the SAX event stream, so nothing is
           parsed into a tree anywhere. A malformed document surfaces when
           the worker hits it — reported at shutdown below. *)
        Pf_obs.Trace.clear_ambient ();
        let src = In_channel.with_open_bin doc_path In_channel.input_all in
        Pf_service.submit_raw ?trace:ctx svc src (fun sids -> results.(i) <- sids)
      end
      else
        let parsed =
          Fun.protect ~finally:Pf_obs.Trace.clear_ambient (fun () ->
              try
                Ok
                  (Pf_xml.Sax.parse_document
                     (In_channel.with_open_bin doc_path In_channel.input_all))
              with Pf_xml.Sax.Parse_error (pos, msg) -> Error (pos, msg))
        in
        match parsed with
        | Error (pos, msg) ->
          Printf.eprintf "%s: %s (%s)\n" doc_path msg
            (Format.asprintf "%a" Pf_xml.Sax.pp_position pos);
          exit 2
        | Ok doc -> Pf_service.submit ?trace:ctx svc doc (fun sids -> results.(i) <- sids))
    docs;
  Pf_service.drain svc;
  (match collector, trace_out with
  | Some c, Some path ->
    Pf_obs.Trace.write_chrome c path;
    if not quiet then
      Printf.eprintf "wrote %d trace(s) to %s\n" (List.length (Pf_obs.Trace.traces c)) path
  | _ -> ());
  let exit_code = ref 1 in
  Array.iteri
    (fun i doc_path ->
      let matched = results.(i) in
      if matched <> [] then exit_code := 0;
      if count_only then Printf.printf "%s: %d\n" doc_path (List.length matched)
      else if not quiet then
        List.iter
          (fun sid -> Printf.printf "%s: %s\n" doc_path (Hashtbl.find table sid))
          matched)
    docs;
  (* a worker-side parse error (raw submission) re-raises here: report it
     like the eager parse path does and fail the run *)
  (try Pf_service.shutdown svc
   with Pf_xml.Sax.Parse_error (pos, msg) ->
     Printf.eprintf "parse error in a streamed document: %s (%s)\n" msg
       (Format.asprintf "%a" Pf_xml.Sax.pp_position pos);
     exit 2);
  (match metrics_fmt with
  | None -> ()
  | Some fmt ->
    (* per-stage span timings, summed across the engine replicas (the
       spans are populated because collect_stats is on whenever metrics
       are exported) *)
    let merged = Pf_service.engine_metrics svc in
    let spans =
      List.filter_map
        (fun (s : Pf_obs.Registry.sample) ->
          match s.Pf_obs.Registry.value with
          | Pf_obs.Registry.Sample_span ns -> Some (s.Pf_obs.Registry.name, ns)
          | _ -> None)
        (Pf_obs.Registry.samples merged)
    in
    if spans <> [] then begin
      let ndocs = max 1 (Array.length docs) in
      Printf.printf "# stage timings (%s mode, %d domain(s), summed across replicas)\n"
        (Pf_service.mode_name (Pf_service.mode svc))
        (Pf_service.domains svc);
      List.iter
        (fun (name, ns) ->
          Printf.printf "# %-24s %10.3f ms total %10.1f us/doc\n" name
            (Int64.to_float ns /. 1e6)
            (Int64.to_float ns /. 1e3 /. float ndocs))
        spans
    end;
    Pf_obs.Export.print fmt);
  exit !exit_code

let engine_arg =
  let doc =
    "Filtering engine: basic, basic-pc, basic-pc-ap, shared, yfilter or \
     index-filter."
  in
  Arg.(value & opt string "basic-pc-ap" & info [ "e"; "engine" ] ~docv:"ENGINE" ~doc)

let shard_mode_arg =
  let doc =
    "Service parallelism mode: $(b,doc) (document-replicated — every worker \
     holds every expression, each document is matched by one worker) or \
     $(b,expr) (expression-sharded — the expression set is partitioned \
     across workers, every document is broadcast and the per-shard results \
     merged)."
  in
  Arg.(value & opt string "doc" & info [ "shard-mode" ] ~docv:"MODE" ~doc)

let domains_arg =
  let doc =
    "Worker domains. With $(docv) > 1 the documents are spread over $(docv) \
     engine replicas running in parallel (results stay in input order)."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let batch_arg =
  let doc = "Maximum documents a worker domain dequeues at once." in
  Arg.(value & opt int 8 & info [ "batch" ] ~docv:"B" ~doc)

let path_cache_arg =
  let doc =
    "Cross-document path-result cache: $(b,on) memoizes each root-to-leaf \
     path's matching expression set across documents (invalidated on \
     subscribe/unsubscribe), $(b,off) (default) matches every path. \
     Predicate-engine variants only. Each worker replica owns its cache."
  in
  Arg.(value & opt string "off" & info [ "path-cache" ] ~docv:"on|off" ~doc)

let subsumption_arg =
  let doc =
    "Subsumption index: $(b,on) canonicalizes and hash-conses subscriptions \
     so semantically equal expressions share one physical expression in the \
     engine, with matches fanned back out to the original subscription ids \
     (byte-identical answers); $(b,off) (default) registers every \
     subscription verbatim. Works with every engine and shard mode."
  in
  Arg.(value & opt string "off" & info [ "subsumption" ] ~docv:"on|off" ~doc)

let stream_arg =
  let doc =
    "Fully streaming matching: documents are sent to the workers as raw XML \
     text and matched straight off the SAX event stream — no document tree \
     is ever built, and per-path publications are reused from an arena. \
     Predicate-engine variants only. Malformed documents are reported after \
     the stream drains (exit 2) instead of before submission."
  in
  Arg.(value & flag & info [ "stream" ] ~doc)

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-match output.")

let count_arg =
  Arg.(value & flag & info [ "c"; "count" ] ~doc:"Print match counts only.")

let metrics_arg =
  let doc =
    "After filtering, dump every metric registry to stdout in $(docv) format: \
     $(b,console) (aligned table), $(b,json) (JSON Lines, one object per metric) \
     or $(b,prom) (Prometheus text exposition). Also enables per-stage timing \
     collection in the predicate engine."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FORMAT" ~doc)

let trace_arg =
  let doc =
    "Enable debug tracing for a subsystem (repeatable): engine, \
     predicate_index, nested — or $(b,all). Events go to stderr."
  in
  Arg.(value & opt_all string [] & info [ "trace" ] ~docv:"SRC" ~doc)

let trace_out_arg =
  let doc =
    "Write a per-document trace to $(docv) in Chrome trace-event JSON \
     (load in Perfetto or chrome://tracing): one process row per document \
     with parse/scan/path-cache/match/occurrence/merge/deliver spans, GC \
     word deltas attached."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let trace_slowest_arg =
  let doc =
    "With $(b,--trace-out), retain only the $(docv) slowest documents' \
     traces (0, the default, keeps all)."
  in
  Arg.(value & opt int 0 & info [ "trace-slowest" ] ~docv:"N" ~doc)

let exprs_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"EXPRESSIONS" ~doc:"File of XPath expressions, one per line.")

let docs_arg =
  Arg.(
    non_empty
    & pos_right 0 file []
    & info [] ~docv:"XML" ~doc:"XML documents to filter.")

let cmd =
  let doc = "filter XML documents against a set of XPath expressions" in
  let info = Cmd.info "pf-filter" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      const run $ engine_arg $ shard_mode_arg $ domains_arg $ batch_arg $ path_cache_arg
      $ subsumption_arg $ stream_arg $ quiet_arg $ count_arg $ metrics_arg $ trace_arg
      $ trace_out_arg $ trace_slowest_arg $ exprs_arg $ docs_arg)

let () = exit (Cmd.eval cmd)
