(* pf-broker: serve the dissemination broker over a Unix or TCP socket.

   Speaks the length-prefixed binary protocol of Pf_net.Wire; with
   --data-dir, subscription mutations are write-ahead-logged and
   snapshotted so a restart (or kill -9) resumes with the acknowledged
   subscription state. *)

open Cmdliner

let run listen_str data_dir snapshot_every engine_name shard_mode domains batch
    no_validate no_covering metrics_fmt name =
  let listen =
    match Pf_net.Server.listen_of_string listen_str with
    | Ok l -> l
    | Error msg ->
        Printf.eprintf "bad --listen: %s\n" msg;
        exit 2
  in
  let mode =
    match Pf_service.mode_of_string shard_mode with
    | Some m -> m
    | None ->
        Printf.eprintf "unknown shard mode %S (try doc or expr)\n" shard_mode;
        exit 2
  in
  let metrics_fmt =
    match metrics_fmt with
    | None -> None
    | Some fmt -> (
        match Pf_obs.Export.format_of_name fmt with
        | Some f -> Some f
        | None ->
            Printf.eprintf "unknown metrics format %S (try console, json or prom)\n" fmt;
            exit 2)
  in
  let filter =
    match Pf_bench.Bench_util.filter_of_name engine_name with
    | Some f -> f
    | None ->
        Printf.eprintf "unknown engine %S\n" engine_name;
        exit 2
  in
  if domains < 1 || batch < 1 || snapshot_every < 1 then begin
    Printf.eprintf "--domains, --batch and --snapshot-every must be >= 1\n";
    exit 2
  end;
  let cfg =
    Pf_net.Server.config ?data_dir ~snapshot_every ~filter ~covering_suppression:(not no_covering)
      ~mode ~domains ~batch ~validate_documents:(not no_validate) ~server_name:name listen
  in
  let srv = Pf_net.Server.start cfg in
  Printf.eprintf "pf-broker: listening on %s%s\n%!"
    (Format.asprintf "%a" Pf_net.Server.pp_listen (Pf_net.Server.listen_address srv))
    (match data_dir with Some d -> Printf.sprintf " (data dir %s)" d | None -> " (volatile)");
  let stop_requested = Atomic.make false in
  let request_stop _ = Atomic.set stop_requested true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  while not (Atomic.get stop_requested) do
    Unix.sleepf 0.2
  done;
  Printf.eprintf "pf-broker: shutting down\n%!";
  Pf_net.Server.stop srv;
  (* every listed registry: broker, net, service and engine scopes *)
  match metrics_fmt with None -> () | Some fmt -> Pf_obs.Export.print fmt

let listen_arg =
  let doc =
    "Listen address: $(b,unix:/path/to.sock), $(b,tcp:host:port) (port 0 \
     picks an ephemeral one), or a bare filesystem path (unix)."
  in
  Arg.(value & opt string "unix:/tmp/pf-broker.sock" & info [ "l"; "listen" ] ~docv:"ADDR" ~doc)

let data_dir_arg =
  let doc =
    "Durability directory (WAL + snapshots). Subscription mutations are \
     acknowledged only after the write-ahead log is fsync'd; restarting \
     over the same directory recovers them. Without this flag the broker \
     is volatile."
  in
  Arg.(value & opt (some string) None & info [ "d"; "data-dir" ] ~docv:"DIR" ~doc)

let snapshot_every_arg =
  let doc = "Snapshot and truncate the WAL every $(docv) logged mutations." in
  Arg.(value & opt int 1024 & info [ "snapshot-every" ] ~docv:"N" ~doc)

let engine_arg =
  let doc =
    "Filtering engine (as in pf-filter): basic, basic-pc, basic-pc-ap, shared, \
     yfilter or index-filter."
  in
  Arg.(value & opt string "basic-pc-ap" & info [ "e"; "engine" ] ~docv:"NAME" ~doc)

let shard_mode_arg =
  let doc = "Service parallelism: $(b,doc) (document-replicated) or $(b,expr) (expression-sharded)." in
  Arg.(value & opt string "doc" & info [ "shard-mode" ] ~docv:"MODE" ~doc)

let domains_arg =
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Worker domains.")

let batch_arg =
  Arg.(value & opt int 8 & info [ "batch" ] ~docv:"N" ~doc:"Worker dequeue batch size.")

let no_validate_arg =
  let doc =
    "Skip parsing documents on the connection thread; raw text goes \
     straight into the filtering pipeline (malformed documents then \
     deliver to nobody instead of provoking a BAD_DOCUMENT error)."
  in
  Arg.(value & flag & info [ "no-validate" ] ~doc)

let no_covering_arg =
  Arg.(value & flag & info [ "no-covering" ] ~doc:"Disable covering suppression.")

let metrics_arg =
  let doc = "On shutdown, dump broker and wire metrics in $(docv) format (console, json or prom)." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FORMAT" ~doc)

let name_arg =
  Arg.(value & opt string "pf-broker" & info [ "name" ] ~docv:"NAME" ~doc:"Server name sent in WELCOME.")

let cmd =
  let doc = "serve the XPath dissemination broker over a socket" in
  let info = Cmd.info "pf-broker" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      const run $ listen_arg $ data_dir_arg $ snapshot_every_arg $ engine_arg $ shard_mode_arg
      $ domains_arg $ batch_arg $ no_validate_arg $ no_covering_arg $ metrics_arg $ name_arg)

let () = exit (Cmd.eval cmd)
