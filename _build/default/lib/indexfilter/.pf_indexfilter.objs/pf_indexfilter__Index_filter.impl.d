lib/indexfilter/index_filter.ml: Array Ast Eval Hashtbl List Parser Pf_xml Pf_xpath
