lib/indexfilter/index_filter.mli: Pf_xml Pf_xpath
