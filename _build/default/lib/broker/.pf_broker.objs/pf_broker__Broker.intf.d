lib/broker/broker.mli: Format Pf_core Pf_xml Pf_xpath
