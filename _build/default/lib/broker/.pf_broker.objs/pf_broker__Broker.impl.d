lib/broker/broker.ml: Ast Format Hashtbl List Parser Pf_core Pf_xml Pf_xpath String
