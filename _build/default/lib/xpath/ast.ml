type axis = Child | Descendant

type value = Int of int | Str of string

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type attr_filter = { attr : string; cmp : comparison; value : value }

(* reserved attribute name carrying element text content; '#' cannot occur
   in a parsed attribute name, so it never collides with user attributes *)
let text_attr = "#text"

type node_test = Tag of string | Wildcard

type step = { axis : axis; test : node_test; filters : filter list }

and filter = Attr of attr_filter | Nested of path

and path = { absolute : bool; steps : step list }

let step ?(axis = Child) ?(filters = []) test = { axis; test; filters }

let path ?(absolute = false) steps = { absolute; steps }

let rec is_single_path p = List.for_all step_is_single p.steps

and step_is_single s =
  List.for_all (function Attr _ -> true | Nested _ -> false) s.filters

let rec has_attr_filters p = List.exists step_has_attr p.steps

and step_has_attr s =
  List.exists
    (function Attr _ -> true | Nested p -> has_attr_filters p)
    s.filters

let num_steps p = List.length p.steps

let tag_steps p =
  List.length (List.filter (fun s -> match s.test with Tag _ -> true | Wildcard -> false) p.steps)

let equal (p1 : path) (p2 : path) = p1 = p2

let compare (p1 : path) (p2 : path) = Stdlib.compare p1 p2

let pp_comparison fmt cmp =
  Format.pp_print_string fmt
    (match cmp with
    | Eq -> "="
    | Ne -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">=")

let pp_value fmt = function
  | Int n -> Format.pp_print_int fmt n
  | Str s -> Format.fprintf fmt "%S" s

let rec pp fmt (p : path) =
  List.iteri
    (fun i s ->
      let sep =
        match s.axis, i, p.absolute with
        | Child, 0, false -> ""
        | Child, 0, true -> "/"
        | Child, _, _ -> "/"
        | Descendant, _, _ -> "//"
      in
      Format.fprintf fmt "%s%a" sep pp_step s)
    p.steps

and pp_step fmt s =
  (match s.test with
  | Tag t -> Format.pp_print_string fmt t
  | Wildcard -> Format.pp_print_char fmt '*');
  List.iter (fun f -> Format.fprintf fmt "[%a]" pp_filter f) s.filters

and pp_filter fmt = function
  | Attr { attr; cmp; value } when String.equal attr text_attr ->
    Format.fprintf fmt "text() %a %a" pp_comparison cmp pp_value value
  | Attr { attr; cmp; value } ->
    Format.fprintf fmt "@@%s %a %a" attr pp_comparison cmp pp_value value
  | Nested p -> pp fmt p
