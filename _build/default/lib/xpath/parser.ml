exception Error of string

type cursor = { src : string; mutable pos : int }

let fail cur msg =
  raise (Error (Printf.sprintf "%s at offset %d in %S" msg cur.pos cur.src))

let eof cur = cur.pos >= String.length cur.src

let peek cur = if eof cur then '\000' else cur.src.[cur.pos]

let peek2 cur =
  if cur.pos + 1 >= String.length cur.src then '\000' else cur.src.[cur.pos + 1]

let advance cur = cur.pos <- cur.pos + 1

let skip_space cur =
  while (not (eof cur)) && (peek cur = ' ' || peek cur = '\t') do
    advance cur
  done

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let read_name cur =
  let start = cur.pos in
  while (not (eof cur)) && is_name_char (peek cur) do
    advance cur
  done;
  if cur.pos = start then fail cur "expected a name";
  String.sub cur.src start (cur.pos - start)

(* Leading axis before a step: "/" is Child, "//" is Descendant. *)
let read_axis cur =
  if peek cur = '/' then begin
    advance cur;
    if peek cur = '/' then begin
      advance cur;
      Ast.Descendant
    end
    else Ast.Child
  end
  else fail cur "expected '/' or '//'"

let read_comparison cur =
  skip_space cur;
  match peek cur with
  | '=' ->
    advance cur;
    Ast.Eq
  | '!' ->
    advance cur;
    if peek cur = '=' then begin
      advance cur;
      Ast.Ne
    end
    else fail cur "expected '!='"
  | '<' ->
    advance cur;
    if peek cur = '=' then begin
      advance cur;
      Ast.Le
    end
    else Ast.Lt
  | '>' ->
    advance cur;
    if peek cur = '=' then begin
      advance cur;
      Ast.Ge
    end
    else Ast.Gt
  | _ -> fail cur "expected a comparison operator"

let read_value cur =
  skip_space cur;
  match peek cur with
  | '"' | '\'' ->
    let quote = peek cur in
    advance cur;
    let start = cur.pos in
    while (not (eof cur)) && peek cur <> quote do
      advance cur
    done;
    if eof cur then fail cur "unterminated string literal";
    let s = String.sub cur.src start (cur.pos - start) in
    advance cur;
    Ast.Str s
  | '-' | '0' .. '9' ->
    let start = cur.pos in
    if peek cur = '-' then advance cur;
    while (not (eof cur)) && match peek cur with '0' .. '9' -> true | _ -> false do
      advance cur
    done;
    let s = String.sub cur.src start (cur.pos - start) in
    (try Ast.Int (int_of_string s) with Failure _ -> fail cur "bad integer literal")
  | _ -> fail cur "expected a value (integer or quoted string)"

let rec read_steps cur ~first_axis =
  let first = read_step cur ~axis:first_axis in
  let rec go acc =
    skip_space cur;
    if peek cur = '/' then begin
      let axis = read_axis cur in
      let s = read_step cur ~axis in
      go (s :: acc)
    end
    else List.rev acc
  in
  go [ first ]

and read_step cur ~axis =
  skip_space cur;
  let test =
    if peek cur = '*' then begin
      advance cur;
      Ast.Wildcard
    end
    else Ast.Tag (read_name cur)
  in
  let rec filters acc =
    skip_space cur;
    if peek cur = '[' then begin
      advance cur;
      let f = read_filter cur in
      skip_space cur;
      if peek cur <> ']' then fail cur "expected ']'";
      advance cur;
      filters (f :: acc)
    end
    else List.rev acc
  in
  { Ast.axis; test; filters = filters [] }

and looking_at cur s =
  let n = String.length s in
  cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = s

and read_filter cur =
  skip_space cur;
  if peek cur = '@' then begin
    advance cur;
    let attr = read_name cur in
    let cmp = read_comparison cur in
    let value = read_value cur in
    Ast.Attr { attr; cmp; value }
  end
  else if looking_at cur "text()" then begin
    (* content filter: evaluated through the reserved #text attribute *)
    cur.pos <- cur.pos + 6;
    let cmp = read_comparison cur in
    let value = read_value cur in
    Ast.Attr { attr = Ast.text_attr; cmp; value }
  end
  else begin
    (* nested path filter, relative to the containing node; an optional
       leading "//" selects descendants *)
    let first_axis =
      if peek cur = '/' && peek2 cur = '/' then begin
        advance cur;
        advance cur;
        Ast.Descendant
      end
      else Ast.Child
    in
    let steps = read_steps cur ~first_axis in
    Ast.Nested { absolute = false; steps }
  end

let parse src =
  let cur = { src; pos = 0 } in
  skip_space cur;
  if eof cur then fail cur "empty expression";
  let absolute = peek cur = '/' in
  let first_axis = if absolute then read_axis cur else Ast.Child in
  let steps = read_steps cur ~first_axis in
  skip_space cur;
  if not (eof cur) then fail cur "trailing characters";
  { Ast.absolute; steps }

let parse_opt src = try Some (parse src) with Error _ -> None

let to_string p = Format.asprintf "%a" Ast.pp p
