lib/xpath/ast.ml: Format List Stdlib String
