lib/xpath/parser.ml: Ast Format List Printf String
