lib/xpath/eval.mli: Ast Pf_xml
