lib/xpath/eval.ml: Array Ast List Path Pf_xml String Tree
