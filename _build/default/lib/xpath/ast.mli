(** Abstract syntax of the XPath subset used for filtering.

    The paper's filter language (Sections 3 and 5): location paths built from
    the child ([/]) and descendant ([//]) axes, name tests and wildcards
    ([*]), attribute-based filters ([\[@a op v\]]) and nested path filters
    ([\[p\]]).

    A top-level path is either {e absolute} (written with a leading [/] or
    [//]) or {e relative}; following the paper's matching semantics a
    relative path matches anywhere in a document path, i.e. it behaves like
    an absolute path whose first step uses the descendant axis. *)

type axis =
  | Child  (** [/] — exactly one location step down *)
  | Descendant  (** [//] — one or more location steps down *)

type value =
  | Int of int
  | Str of string

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type attr_filter = { attr : string; cmp : comparison; value : value }

val text_attr : string
(** The reserved attribute name (["#text"]) through which [text()] content
    filters are represented and evaluated; it cannot collide with parsed
    attribute names. *)

type node_test =
  | Tag of string
  | Wildcard

type step = { axis : axis; test : node_test; filters : filter list }

and filter =
  | Attr of attr_filter
  | Nested of path
      (** nested path filter, evaluated relative to the containing node;
          [absolute] is meaningless here and always [false] *)

and path = {
  absolute : bool;  (** written with a leading [/] or [//] *)
  steps : step list;  (** non-empty *)
}

val step : ?axis:axis -> ?filters:filter list -> node_test -> step
val path : ?absolute:bool -> step list -> path

val is_single_path : path -> bool
(** True iff the path contains no nested path filters (attribute filters are
    allowed). The core engine's basic pipeline handles single paths; nested
    paths go through the decomposition of Section 5. *)

val has_attr_filters : path -> bool

val num_steps : path -> int

val tag_steps : path -> int
(** Number of steps whose test is a tag name (not a wildcard). *)

val equal : path -> path -> bool
val compare : path -> path -> int
val pp : Format.formatter -> path -> unit

val pp_comparison : Format.formatter -> comparison -> unit
val pp_value : Format.formatter -> value -> unit
