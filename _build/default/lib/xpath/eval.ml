open Pf_xml

let cmp_holds cmp c =
  match cmp with
  | Ast.Eq -> c = 0
  | Ast.Ne -> c <> 0
  | Ast.Lt -> c < 0
  | Ast.Le -> c <= 0
  | Ast.Gt -> c > 0
  | Ast.Ge -> c >= 0

let attr_satisfies attrs { Ast.attr; cmp; value } =
  match List.assoc_opt attr attrs with
  | None -> false
  | Some v -> (
    match value with
    | Ast.Int n -> (
      match int_of_string_opt (String.trim v) with
      | Some m -> cmp_holds cmp (compare m n)
      | None -> false)
    | Ast.Str s -> cmp_holds cmp (String.compare v s))

let rec descendants (e : Tree.element) =
  List.concat_map
    (fun c -> c :: descendants c)
    (Tree.element_children e)

(* Deduplicate by physical identity, preserving first-occurrence order.
   Quadratic, acceptable for an oracle over small documents. *)
let dedup_phys nodes =
  let rec go seen = function
    | [] -> List.rev seen
    | n :: rest -> if List.memq n seen then go seen rest else go (n :: seen) rest
  in
  go [] nodes

let test_holds test (e : Tree.element) =
  match test with
  | Ast.Wildcard -> true
  | Ast.Tag t -> String.equal t e.Tree.tag

let rec step_selects (s : Ast.step) (e : Tree.element) =
  test_holds s.Ast.test e && List.for_all (filter_holds e) s.Ast.filters

and filter_holds e = function
  | Ast.Attr f when String.equal f.Ast.attr Ast.text_attr -> (
    (* text() filter: compare against the element's immediate content *)
    match Tree.text_content e with
    | "" -> false
    | txt -> attr_satisfies [ Ast.text_attr, txt ] f)
  | Ast.Attr f -> attr_satisfies e.Tree.attrs f
  | Ast.Nested p -> eval_nested e p <> []

(* [run ctx steps]: [ctx] holds the nodes matched by the previous step; each
   step expands by its own axis and filters by its test. *)
and run ctx = function
  | [] -> ctx
  | (s : Ast.step) :: rest ->
    let candidates =
      match s.Ast.axis with
      | Ast.Child -> List.concat_map Tree.element_children ctx
      | Ast.Descendant -> List.concat_map descendants ctx
    in
    let selected = dedup_phys (List.filter (step_selects s) candidates) in
    if selected = [] then [] else run selected rest

and eval_nested containing (p : Ast.path) = run [ containing ] p.Ast.steps

let select (p : Ast.path) (doc : Tree.t) =
  match p.Ast.steps with
  | [] -> []
  | first :: rest ->
    let candidates =
      if p.Ast.absolute && first.Ast.axis = Ast.Child then [ doc.Tree.root ]
      else doc.Tree.root :: descendants doc.Tree.root
    in
    let selected = dedup_phys (List.filter (step_selects first) candidates) in
    if selected = [] then [] else run selected rest

let matches p doc = select p doc <> []

let matches_doc_path (p : Ast.path) (dp : Path.t) =
  if not (Ast.is_single_path p) then
    invalid_arg "Eval.matches_doc_path: nested path filters not supported";
  let n = Array.length dp.Path.steps in
  let ok_at (s : Ast.step) i =
    let st = dp.Path.steps.(i - 1) in
    test_holds s.Ast.test { Tree.tag = st.Path.tag; attrs = st.Path.attrs; children = [] }
    && List.for_all
         (function
           | Ast.Attr f -> attr_satisfies st.Path.attrs f
           | Ast.Nested _ -> assert false)
         s.Ast.filters
  in
  (* [place prev steps]: can the remaining steps be placed at positions
     strictly after [prev]? Child forces position [prev + 1]; Descendant
     allows any later position. *)
  let rec place prev = function
    | [] -> true
    | (s : Ast.step) :: rest -> (
      match s.Ast.axis with
      | Ast.Child ->
        let i = prev + 1 in
        i <= n && ok_at s i && place i rest
      | Ast.Descendant ->
        let rec try_at i =
          if i > n then false
          else if ok_at s i && place i rest then true
          else try_at (i + 1)
        in
        try_at (prev + 1))
  in
  match p.Ast.steps with
  | [] -> false
  | first :: rest ->
    let first =
      (* a relative path matches anywhere: its first step behaves like a
         descendant step from the virtual position 0 *)
      if p.Ast.absolute then first else { first with Ast.axis = Ast.Descendant }
    in
    place 0 (first :: rest)
