(** Reference XPath evaluator — the correctness oracle.

    A direct, unoptimized implementation of the matching semantics every
    engine in this repository must agree with: an XPE matches a document iff
    its evaluation over the document tree yields a non-empty node set
    (Section 3.1). Relative paths match starting at any element (the
    filtering convention), nested path filters are evaluated relative to
    their containing node, and attribute filters compare attribute values
    (numerically when the filter value is an integer and the attribute
    parses as one, as strings otherwise). *)

val select : Ast.path -> Pf_xml.Tree.t -> Pf_xml.Tree.element list
(** All elements selected by the path, in document order, without
    duplicates (physical identity). *)

val matches : Ast.path -> Pf_xml.Tree.t -> bool
(** [matches p doc] iff [select p doc] is non-empty. *)

val matches_doc_path : Ast.path -> Pf_xml.Path.t -> bool
(** Match a {e single-path} XPE against one document path (tag sequence plus
    attributes). This is the per-path semantics the predicate engine
    implements; [matches p doc] for a single-path [p] is the disjunction of
    [matches_doc_path p e] over the root-to-leaf paths [e] of [doc].

    @raise Invalid_argument if [p] contains nested path filters. *)

val attr_satisfies : (string * string) list -> Ast.attr_filter -> bool
(** [attr_satisfies attrs f] checks one attribute filter against an
    attribute list (exposed for the engines' attribute predicate code). *)
