(** Parser for the XPath filter subset.

    Grammar (whitespace allowed between tokens):
    {v
      path    ::= ("/" | "//")? steps
      steps   ::= step (("/" | "//") step)*
      step    ::= ("*" | NAME) filter*
      filter  ::= "[" ( "@" NAME cmp value | nested ) "]"
      nested  ::= "//"? steps            (relative to the containing node)
      cmp     ::= "=" | "!=" | "<" | "<=" | ">" | ">="
      value   ::= INTEGER | '"' chars '"' | "'" chars "'"
      NAME    ::= XML name (letters, digits, "_", "-", ".", ":")
    v}

    A shorthand attribute existence filter [\[@a\]] is accepted and parsed
    as [\[@a != ""\]] is {e not} supported — the paper's filters always
    compare; use an explicit comparison. *)

exception Error of string
(** Raised with a human-readable message on malformed input. *)

val parse : string -> Ast.path
(** Parse an XPath expression. Raises {!Error}. *)

val parse_opt : string -> Ast.path option
(** [parse_opt s] is [Some p] on success, [None] on a parse error. *)

val to_string : Ast.path -> string
(** Print a path in a form [parse] accepts ([parse (to_string p)] equals
    [p] up to the absolute/descendant normalization noted in {!Ast}). *)
