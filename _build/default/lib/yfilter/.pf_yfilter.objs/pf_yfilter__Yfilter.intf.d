lib/yfilter/yfilter.mli: Pf_xml Pf_xpath
