(* Depth-first search over partial chains. [go i prev] asks whether
   predicates i..n-1 can be chained starting from a pair whose first
   occurrence equals [prev]. *)
let matches (rs : (int * int) list array) =
  let n = Array.length rs in
  if n = 0 then false
  else begin
    let rec go i prev =
      if i >= n then true
      else List.exists (fun (o1, o2) -> o1 = prev && go (i + 1) o2) rs.(i)
    in
    List.exists (fun (_, o2) -> go 1 o2) rs.(0)
  end

(* Literal transcription of Algorithm 1. [r'] holds the mutable candidate
   sets R'_i; [chosen.(i)] is the pair currently selected for predicate i. *)
let matches_faithful (rs : (int * int) list array) =
  let n = Array.length rs in
  if n = 0 then false
  else if Array.exists (fun r -> r = []) rs then false (* lines 2-6 *)
  else begin
    let r' = Array.make n [] in
    let chosen = Array.make n (0, 0) in
    (* line 7: R'_1 <- R_1, select one pair and delete it *)
    (match rs.(0) with
    | first :: rest ->
      chosen.(0) <- first;
      r'.(0) <- rest
    | [] -> assert false);
    let current = ref 0 (* 0-based; paper's line 1 sets current <- 1 *) in
    let step = ref 0 in
    let back = ref false in
    let result = ref None in
    while !result = None do
      if not !back then begin
        if !current = n - 1 then result := Some true (* lines 10-11 *)
        else begin
          (* line 13: current++, R'_current <- R_current(o2) *)
          let _, o2 = chosen.(!current) in
          incr current;
          step := !current;
          r'.(!current) <- List.filter (fun (o1, _) -> o1 = o2) rs.(!current)
        end
      end;
      if !result = None then begin
        match r'.(!current) with
        | pair :: rest ->
          (* lines 16-17: select a pair, remove it, go forward *)
          chosen.(!current) <- pair;
          r'.(!current) <- rest;
          back := false
        | [] ->
          (* lines 18-27: backtrack to the deepest level with candidates *)
          decr step;
          while !step >= 0 && r'.(!step) = [] do
            decr step
          done;
          if !step < 0 then result := Some false (* lines 23-24 *)
          else begin
            current := !step;
            back := true
          end
      end
    done;
    match !result with Some r -> r | None -> assert false
  end

let iter_chains (rs : (int * int) list array) accept =
  let n = Array.length rs in
  if n = 0 then false
  else begin
    let chain = Array.make n (0, 0) in
    let rec go i prev =
      if i >= n then accept chain
      else
        List.exists
          (fun (o1, o2) ->
            o1 = prev
            &&
            (chain.(i) <- (o1, o2);
             go (i + 1) o2))
          rs.(i)
    in
    List.exists
      (fun (o1, o2) ->
        chain.(0) <- (o1, o2);
        go 1 o2)
      rs.(0)
  end
