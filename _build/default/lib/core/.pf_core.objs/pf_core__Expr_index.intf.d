lib/core/expr_index.mli: Predicate_index
