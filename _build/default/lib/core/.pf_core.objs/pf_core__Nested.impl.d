lib/core/nested.ml: Array Ast Encoder Hashtbl Lazy List Logs Occurrence Pf_xpath Predicate_index Publication Vec
