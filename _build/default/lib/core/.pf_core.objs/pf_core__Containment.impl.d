lib/core/containment.ml: Array Ast Hashtbl List Pf_xpath String
