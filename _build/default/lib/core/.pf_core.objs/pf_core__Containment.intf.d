lib/core/containment.mli: Pf_xpath
