lib/core/predicate_index.ml: Array Hashtbl List Predicate Publication Vec
