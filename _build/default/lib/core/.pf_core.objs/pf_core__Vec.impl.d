lib/core/vec.ml: Array List Printf
