lib/core/vec.mli:
