lib/core/encoder.ml: Array Ast Format List Parser Pf_xpath Predicate
