lib/core/predicate.mli: Format Pf_xpath
