lib/core/encoder.mli: Format Pf_xpath Predicate
