lib/core/predicate_index.mli: Predicate Publication
