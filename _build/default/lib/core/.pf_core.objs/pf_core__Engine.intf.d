lib/core/engine.mli: Expr_index Format Pf_xml Pf_xpath Predicate
