lib/core/nested.mli: Pf_xpath Predicate_index Publication
