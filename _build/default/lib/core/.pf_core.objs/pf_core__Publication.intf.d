lib/core/publication.mli: Format Pf_xml
