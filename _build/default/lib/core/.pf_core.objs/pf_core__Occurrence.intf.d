lib/core/occurrence.mli:
