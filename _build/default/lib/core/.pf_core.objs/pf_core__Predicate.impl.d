lib/core/predicate.ml: Format Hashtbl List Pf_xpath Stdlib
