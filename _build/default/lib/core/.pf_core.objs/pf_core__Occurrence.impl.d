lib/core/occurrence.ml: Array List
