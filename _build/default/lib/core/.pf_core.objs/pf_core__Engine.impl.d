lib/core/engine.ml: Array Ast Buffer Encoder Expr_index Format Hashtbl List Nested Occurrence Parser Pf_xml Pf_xpath Predicate Predicate_index Publication Unix Vec
