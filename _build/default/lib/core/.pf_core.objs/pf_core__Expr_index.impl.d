lib/core/expr_index.ml: Array Hashtbl List Predicate_index Vec
