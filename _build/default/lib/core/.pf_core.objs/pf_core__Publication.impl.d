lib/core/publication.ml: Array Format Pf_xml String
