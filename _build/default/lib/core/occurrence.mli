(** The occurrence determination algorithm (Section 4.2.1, Algorithm 1).

    Given the ordered matching results [R = (R_1, ..., R_n)] of an
    expression's predicates — each [R_i] a set of occurrence-number pairs —
    the expression is matched iff a chain
    [(o1_1,o2_1), ..., (o1_n,o2_n)] exists with [o2_(i-1) = o1_i] for all
    [i], a constraint satisfaction problem solved by backtracking.

    Two interchangeable implementations are provided: [matches_faithful]
    transcribes Algorithm 1 literally (the [current]/[step]/[back]
    bookkeeping over mutable candidate sets) and [matches] is an equivalent
    recursive depth-first search; the test suite checks they agree on random
    inputs. *)

val matches : (int * int) list array -> bool
(** Recursive DFS. [matches [||]] is [false] (an expression has at least
    one predicate); an empty [R_i] yields [false]. *)

val matches_faithful : (int * int) list array -> bool
(** Literal transcription of Algorithm 1. *)

val iter_chains : (int * int) list array -> ((int * int) array -> bool) -> bool
(** [iter_chains rs accept] enumerates complete chains lazily, calling
    [accept] on each; stops and returns [true] as soon as [accept] does,
    returns [false] if no chain is accepted. The chain array is reused
    between calls — copy it to retain it. Used by the selection-postponed
    attribute mode (re-running the occurrence determination per candidate
    chain, Section 5) and by the nested path matcher. *)
