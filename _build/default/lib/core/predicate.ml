type op = Eq | Ge

type attr_constraint = {
  attr : string;
  cmp : Pf_xpath.Ast.comparison;
  value : Pf_xpath.Ast.value;
}

type tagvar = { name : string; constraints : attr_constraint list }

type t =
  | Absolute of { tag : tagvar; op : op; v : int }
  | Relative of { first : tagvar; second : tagvar; op : op; v : int }
  | End_of_path of { tag : tagvar; v : int }
  | Length of { v : int }

let tagvar ?(constraints = []) name =
  { name; constraints = List.sort_uniq Stdlib.compare constraints }

let strip = function
  | Absolute a -> Absolute { a with tag = { a.tag with constraints = [] } }
  | Relative r ->
    Relative
      {
        r with
        first = { r.first with constraints = [] };
        second = { r.second with constraints = [] };
      }
  | End_of_path e -> End_of_path { e with tag = { e.tag with constraints = [] } }
  | Length _ as p -> p

let constraints_of = function
  | Absolute { tag; _ } | End_of_path { tag; _ } -> tag.constraints, tag.constraints
  | Relative { first; second; _ } -> first.constraints, second.constraints
  | Length _ -> [], []

let has_constraints p =
  let c1, c2 = constraints_of p in
  c1 <> [] || c2 <> []

let check_constraints cs attrs =
  List.for_all
    (fun { attr; cmp; value } ->
      Pf_xpath.Eval.attr_satisfies attrs { Pf_xpath.Ast.attr; cmp; value })
    cs

let equal (p1 : t) (p2 : t) = p1 = p2

let compare (p1 : t) (p2 : t) = Stdlib.compare p1 p2

let hash (p : t) = Hashtbl.hash p

let pp_op fmt = function
  | Eq -> Format.pp_print_string fmt "="
  | Ge -> Format.pp_print_string fmt ">="

let pp_tagvar fmt tv =
  Format.pp_print_string fmt tv.name;
  List.iter
    (fun { attr; cmp; value } ->
      Format.fprintf fmt "[@@%s%a%a]" attr Pf_xpath.Ast.pp_comparison cmp
        Pf_xpath.Ast.pp_value value)
    tv.constraints

let pp fmt = function
  | Absolute { tag; op; v } ->
    Format.fprintf fmt "(p_%a,%a,%d)" pp_tagvar tag pp_op op v
  | Relative { first; second; op; v } ->
    Format.fprintf fmt "(d(p_%a,p_%a),%a,%d)" pp_tagvar first pp_tagvar second pp_op op v
  | End_of_path { tag; v } -> Format.fprintf fmt "(p_%a-|,>=,%d)" pp_tagvar tag v
  | Length { v } -> Format.fprintf fmt "(length,>=,%d)" v

let pp_list fmt ps =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " |-> ")
    pp fmt ps
