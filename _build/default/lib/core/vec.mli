(** Growable arrays (OCaml 5.1 predates [Dynarray]).

    Used for pid-indexed and sid-indexed tables that grow as expressions are
    inserted. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused capacity; it is never observable through the API. *)

val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> int
(** [push v x] appends [x] and returns its index. *)

val ensure : 'a t -> int -> unit
(** [ensure v n] grows [v] with dummies so that indices [0 .. n-1] are
    valid. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
