(** The predicate language of Section 3.2.

    Each XPath expression is encoded as an {e ordered} list of predicates,
    each a constraint over tag positions in a document path:

    - {e absolute} [(p_t, op, v)]: tag [t] occurs at position [= v] (or
      [>= v]);
    - {e relative} [(d(p_t1, p_t2), op, v)]: tag [t2] occurs exactly (or at
      least) [v] location steps after tag [t1];
    - {e end-of-path} [(p_t⊣, >=, v)]: at least [v] steps follow tag [t];
    - {e length-of-expression} [(length, >=, v)]: the document path has at
      least [v] steps.

    Tag variables may carry {e attribute constraints} (Section 5): a
    predicate with constraints is matched only by tuples whose attributes
    satisfy them. Predicates are compared structurally for interning in the
    predicate index, so constraint lists are kept in a normal form (sorted). *)

type op = Eq | Ge

type attr_constraint = {
  attr : string;
  cmp : Pf_xpath.Ast.comparison;
  value : Pf_xpath.Ast.value;
}

type tagvar = {
  name : string;
  constraints : attr_constraint list;  (** sorted; empty when unconstrained *)
}

type t =
  | Absolute of { tag : tagvar; op : op; v : int }
  | Relative of { first : tagvar; second : tagvar; op : op; v : int }
  | End_of_path of { tag : tagvar; v : int }
  | Length of { v : int }

val tagvar : ?constraints:attr_constraint list -> string -> tagvar
(** Builds a tag variable, normalizing the constraint list. *)

val strip : t -> t
(** The same predicate with all attribute constraints removed (used by the
    selection-postponed mode, which stores positional predicates only). *)

val constraints_of : t -> attr_constraint list * attr_constraint list
(** Constraints of the (first, second) tag variables; for one-variable
    predicates both components are that variable's constraints, for
    [Length] both are empty. *)

val has_constraints : t -> bool

val check_constraints : attr_constraint list -> (string * string) list -> bool
(** [check_constraints cs attrs] — all of [cs] hold on [attrs]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
(** Prints in the paper's notation, e.g. [(p_a,=,1) |-> (d(p_a,p_b),>=,1)]. *)
