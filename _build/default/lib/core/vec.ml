type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length v = v.len

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds (length %d)" i v.len)

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let grow_to v capacity =
  if capacity > Array.length v.data then begin
    let cap = max capacity (2 * Array.length v.data) in
    let data = Array.make cap v.dummy in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  grow_to v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1;
  v.len - 1

let ensure v n =
  if n > v.len then begin
    grow_to v n;
    Array.fill v.data v.len (n - v.len) v.dummy;
    v.len <- n
  end

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f init v =
  let acc = ref init in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.rev (fold_left (fun acc x -> x :: acc) [] v)
