type tuple = {
  tag : string;
  pos : int;
  occurrence : int;
  attrs : (string * string) list;
}

type t = {
  length : int;
  tuples : tuple array;
  structure : int array;
}

let of_path (p : Pf_xml.Path.t) =
  let n = Array.length p.Pf_xml.Path.steps in
  let tuples =
    Array.mapi
      (fun i (s : Pf_xml.Path.step) ->
        { tag = s.tag; pos = i + 1; occurrence = s.occurrence; attrs = s.attrs })
      p.Pf_xml.Path.steps
  in
  { length = n; tuples; structure = Pf_xml.Path.structure p }

let of_tags tags = of_path (Pf_xml.Path.of_tags tags)

let pos_of_occurrence t ~tag ~occurrence =
  let n = Array.length t.tuples in
  let rec go i =
    if i >= n then None
    else
      let tu = t.tuples.(i) in
      if String.equal tu.tag tag && tu.occurrence = occurrence then Some tu.pos
      else go (i + 1)
  in
  go 0

let attrs_at t ~pos = t.tuples.(pos - 1).attrs

let pp fmt t =
  Format.fprintf fmt "@[<h>(length,%d)" t.length;
  Array.iter (fun tu -> Format.fprintf fmt ", (%s^%d,%d)" tu.tag tu.occurrence tu.pos) t.tuples;
  Format.fprintf fmt "@]"
