lib/bench_util/bench_util.mli: Pf_core Pf_xml Pf_xpath
