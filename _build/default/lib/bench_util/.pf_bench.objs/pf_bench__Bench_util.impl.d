lib/bench_util/bench_util.ml: Float List Pf_core Pf_indexfilter Pf_xml Pf_xpath Pf_yfilter Printf String Unix
