(** XML document generation from a DTD model.

    Stands in for the IBM XML Generator the paper uses: documents are
    random derivations from the DTD, bounded by [max_levels] (the paper
    varies 6–10, consistent with expression length), with a random number
    of children per element up to [max_fanout] and attributes emitted with
    probability [attr_prob]. Generation is deterministic in [seed]. *)

type params = {
  max_levels : int;  (** maximum document depth (paper: 6–10) *)
  max_fanout : int;  (** maximum element children per element *)
  attr_prob : float;  (** probability each declared attribute is emitted *)
  skew : float;
      (** probability a child is drawn from the first third of its parent's
          candidate list instead of uniformly; skewed documents instantiate
          rare DTD branches rarely, making query workloads selective *)
  text_prob : float;
      (** probability a leaf element receives numeric text content (for
          [text()] filter workloads; 0 by default, matching the paper's
          structure-and-attribute experiments) *)
  seed : int;
}

val default : params
(** [{ max_levels = 8; max_fanout = 4; attr_prob = 0.6; skew = 0.;
    text_prob = 0.; seed = 42 }] — tuned to the paper's reported document
    shape (~140 tags, ~8.8 KB). *)

val generate : Dtd.t -> params -> Pf_xml.Tree.t
(** One random document. *)

val generate_many : Dtd.t -> params -> int -> Pf_xml.Tree.t list
(** [generate_many dtd p n] produces [n] documents (seeds
    [p.seed, p.seed+1, ...]). *)
