type params = {
  max_levels : int;
  max_fanout : int;
  attr_prob : float;
  skew : float;
  text_prob : float;
  seed : int;
}

let default =
  { max_levels = 8; max_fanout = 4; attr_prob = 0.6; skew = 0.; text_prob = 0.; seed = 42 }

(* Child selection: with probability [skew] draw from the first third of
   the candidate list, otherwise uniformly. Skewed documents instantiate
   rare DTD branches rarely while query walks sample uniformly, which is
   what makes a workload selective (low match percentage). *)
let pick_child rng ~skew (candidates : string array) =
  let n = Array.length candidates in
  if skew > 0. && Random.State.float rng 1.0 < skew then
    candidates.(Random.State.int rng (max 1 (n / 3)))
  else candidates.(Random.State.int rng n)

let gen_attrs rng p (decl : Dtd.element_decl) =
  List.filter_map
    (fun (name, bound) ->
      if Random.State.float rng 1.0 < p.attr_prob then
        Some (name, string_of_int (Random.State.int rng (bound + 1)))
      else None)
    decl.Dtd.attrs

let generate dtd p =
  let rng = Random.State.make [| p.seed; 0x9e3779b9 |] in
  let rec build name level =
    let decl = Dtd.decl dtd name in
    let attrs = gen_attrs rng p decl in
    let children =
      if level >= p.max_levels || decl.Dtd.children = [] then
        if p.text_prob > 0. && Random.State.float rng 1.0 < p.text_prob then
          [ Pf_xml.Tree.Text (string_of_int (Random.State.int rng 100)) ]
        else []
      else begin
        let candidates = Array.of_list decl.Dtd.children in
        let n = 1 + Random.State.int rng p.max_fanout in
        List.init n (fun _ ->
            let child = pick_child rng ~skew:p.skew candidates in
            Pf_xml.Tree.Element (build child (level + 1)))
      end
    in
    Pf_xml.Tree.element ~attrs ~children name
  in
  Pf_xml.Tree.doc (build dtd.Dtd.root 1)

let generate_many dtd p n =
  List.init n (fun i -> generate dtd { p with seed = p.seed + i })
