(** DTD models driving the workload generators.

    A simplified document type: per element, the candidate child elements
    and the integer-valued attributes it may carry. The two built-in DTDs
    substitute for the real News Industry Text Format and Protein Sequence
    Database DTDs the paper uses (not redistributable here, see DESIGN.md):
    they preserve the characteristics the evaluation depends on —
    {!nitf_like} has a large tag alphabet with deep, branchy, attribute-rich
    structure (yielding highly selective expression workloads, ~6% matched),
    {!psd_like} a small repetitive alphabet (yielding matching-heavy
    workloads, ~75% matched). *)

type element_decl = {
  name : string;
  children : string list;  (** candidate child element tags, possibly empty *)
  attrs : (string * int) list;
      (** attribute name and value bound; generated values are drawn
          uniformly from [0..bound] *)
}

type t = {
  root : string;
  decls : (string, element_decl) Hashtbl.t;
  names : string array;  (** all element names, in declaration order *)
}

val make : root:string -> element_decl list -> t
(** Raises [Invalid_argument] if a child references an undeclared element
    or the root is undeclared. *)

val decl : t -> string -> element_decl
val element_names : t -> string list

val nitf_like : unit -> t
(** News-like DTD: ~40 elements, depth ≥ 6, many attributes. *)

val psd_like : unit -> t
(** Protein-sequence-like DTD: ~16 elements, shallow repetitive records. *)

val auction_like : unit -> t
(** XMark-style auction-site DTD: ~55 elements with recursive description
    markup — an intermediate regime between {!nitf_like} and {!psd_like}
    (not used by the paper, provided for broader experimentation). *)

val by_name : string -> t option
(** ["nitf"], ["psd"] or ["auction"]. *)
