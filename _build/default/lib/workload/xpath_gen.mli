(** XPath expression workload generation.

    Re-implements the parameterization of the XPath generator of Diao et
    al. that the paper uses: expressions are random walks over the DTD
    graph with maximum length [L = max_depth], each location step turned
    into a wildcard with probability [W = wildcard_prob] and reached
    through a descendant operator with probability [DO = descendant_prob];
    the [distinct] flag selects deduplicated workloads (the paper's [D]).
    Attribute filters ([filters_per_path] per expression, as in Section
    6.4) compare a DTD-declared attribute of a tag step against a random
    value; [nested_prob] optionally grafts nested path filters (the
    Section 5 extension). Deterministic in [seed]. *)

type params = {
  count : int;
  max_depth : int;  (** L; lengths are drawn in [1..L], biased long *)
  wildcard_prob : float;  (** W *)
  descendant_prob : float;  (** DO *)
  distinct : bool;  (** D *)
  filters_per_path : int;
  nested_prob : float;  (** probability a tag step receives a nested filter *)
  seed : int;
}

val default : params
(** [count = 1000; max_depth = 6; wildcard_prob = 0.2;
    descendant_prob = 0.2; distinct = true; filters_per_path = 0;
    nested_prob = 0.; seed = 7] — the paper's Section 6.2 settings. *)

val generate : Dtd.t -> params -> Pf_xpath.Ast.path list
(** Generates [count] expressions. With [distinct = true] the result may be
    shorter than [count] if the DTD cannot supply enough distinct
    expressions under the given parameters (the generator gives up after a
    bounded number of redraws); callers should check the length. *)

val distinct_count : Pf_xpath.Ast.path list -> int
(** Number of distinct expressions in a workload (the paper reports it for
    the duplicate workloads). *)
