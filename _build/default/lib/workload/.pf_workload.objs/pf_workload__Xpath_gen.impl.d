lib/workload/xpath_gen.ml: Ast Dtd Hashtbl List Parser Pf_xpath Random
