lib/workload/dtd.ml: Array Hashtbl List Printf
