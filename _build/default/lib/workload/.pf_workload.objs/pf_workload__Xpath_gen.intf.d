lib/workload/xpath_gen.mli: Dtd Pf_xpath
