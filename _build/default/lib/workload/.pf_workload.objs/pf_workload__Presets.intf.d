lib/workload/presets.mli: Xml_gen Xpath_gen
