lib/workload/xml_gen.mli: Dtd Pf_xml
