lib/workload/xml_gen.ml: Array Dtd List Pf_xml Random
