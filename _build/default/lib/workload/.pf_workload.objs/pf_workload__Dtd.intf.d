lib/workload/dtd.mli: Hashtbl
