lib/workload/presets.ml: Printf Xml_gen Xpath_gen
