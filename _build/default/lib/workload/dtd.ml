type element_decl = {
  name : string;
  children : string list;
  attrs : (string * int) list;
}

type t = {
  root : string;
  decls : (string, element_decl) Hashtbl.t;
  names : string array;
}

let make ~root decl_list =
  let decls = Hashtbl.create (List.length decl_list) in
  List.iter (fun d -> Hashtbl.replace decls d.name d) decl_list;
  if not (Hashtbl.mem decls root) then
    invalid_arg (Printf.sprintf "Dtd.make: undeclared root %S" root);
  List.iter
    (fun d ->
      List.iter
        (fun c ->
          if not (Hashtbl.mem decls c) then
            invalid_arg
              (Printf.sprintf "Dtd.make: element %S references undeclared child %S"
                 d.name c))
        d.children)
    decl_list;
  { root; decls; names = Array.of_list (List.map (fun d -> d.name) decl_list) }

let decl t name =
  match Hashtbl.find_opt t.decls name with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Dtd.decl: unknown element %S" name)

let element_names t = Array.to_list t.names

let e ?(children = []) ?(attrs = []) name = { name; children; attrs }

(* A news-industry-like DTD modeled on the public NITF structure: a wide
   alphabet, documents branch early (head vs. body) so a random query walk
   frequently commits to structure a given document does not instantiate —
   the source of the paper's ~6% match rate on NITF workloads. *)
let nitf_like () =
  make ~root:"nitf"
    [
      (* children lists are ordered with structural containers first: the
         document generator's skew parameter favors the head of the list,
         keeping skewed documents deep while rarely instantiating the
         leaf-heavy tail a uniform query walk still samples *)
      e "nitf" ~children:[ "body"; "head" ] ~attrs:[ "version", 9; "change.date", 30 ];
      e "head" ~children:[ "docdata"; "tobject"; "title"; "meta"; "pubdata"; "revision"; "iim"; "ds"; "rights" ]
        ~attrs:[ "id", 99 ];
      e "iim" ~children:[ "ds" ] ~attrs:[ "ver", 9 ];
      e "ds" ~attrs:[ "num", 999; "value", 99 ];
      e "rights" ~children:[ "rights.owner"; "rights.startdate"; "rights.enddate"; "rights.geography" ];
      e "rights.owner" ~attrs:[ "contact", 99 ];
      e "rights.startdate" ~attrs:[ "norm", 365 ];
      e "rights.enddate" ~attrs:[ "norm", 365 ];
      e "rights.geography" ~attrs:[ "location-code", 99 ];
      e "title" ~attrs:[ "type", 4 ];
      e "meta" ~attrs:[ "name", 49; "content", 99 ];
      e "tobject" ~children:[ "tobject.property"; "tobject.subject" ]
        ~attrs:[ "tobject.type", 9 ];
      e "tobject.property" ~attrs:[ "tobject.property.type", 9 ];
      e "tobject.subject" ~attrs:[ "tobject.subject.code", 99; "tobject.subject.type", 9 ];
      e "docdata" ~children:[ "identified-content"; "key-list"; "doc-id"; "urgency"; "date.issue"; "date.release"; "doc.copyright"; "correction"; "evloc"; "doc-scope"; "series"; "ed-msg"; "du-key"; "doc.rights"; "fixture" ]
        ~attrs:[ "management-status", 4 ];
      e "evloc" ~attrs:[ "county-dist", 99; "iso-cc", 40 ];
      e "doc-scope" ~attrs:[ "scope", 49 ];
      e "ed-msg" ~attrs:[ "info", 99 ];
      e "du-key" ~attrs:[ "generation", 9; "part", 9; "version", 9 ];
      e "doc.rights" ~attrs:[ "owner", 49; "startdate", 365; "enddate", 365; "agent", 49 ];
      e "fixture" ~attrs:[ "fix-id", 99 ];
      e "doc-id" ~attrs:[ "id-string", 999; "regsrc", 9 ];
      e "urgency" ~attrs:[ "ed-urg", 8 ];
      e "date.issue" ~attrs:[ "norm", 365 ];
      e "date.release" ~attrs:[ "norm", 365 ];
      e "doc.copyright" ~attrs:[ "year", 40; "holder", 19 ];
      e "key-list" ~children:[ "keyword" ];
      e "keyword" ~attrs:[ "key", 199 ];
      e "identified-content" ~children:[ "location"; "classifier"; "person"; "org"; "event"; "object.title"; "function"; "money"; "chron"; "num" ];
      e "event" ~children:[ "location" ] ~attrs:[ "start-date", 365; "end-date", 365 ];
      e "object.title" ~attrs:[ "idsrc", 9 ];
      e "function" ~attrs:[ "idsrc", 9; "value", 99 ];
      e "classifier" ~attrs:[ "type", 9; "value", 99 ];
      e "location" ~children:[ "city"; "country"; "region"; "state"; "sublocation" ]
        ~attrs:[ "location-code", 99 ];
      e "city" ~attrs:[ "city-code", 99 ];
      e "country" ~attrs:[ "iso-cc", 40 ];
      e "region" ~attrs:[ "region-code", 99 ];
      e "state" ~attrs:[ "state-code", 60 ];
      e "sublocation" ~attrs:[ "code", 99 ];
      e "person" ~children:[ "name.given"; "name.family"; "function" ] ~attrs:[ "idsrc", 9 ];
      e "name.given" ~attrs:[ "id", 99 ];
      e "name.family" ~attrs:[ "id", 99 ];
      e "org" ~attrs:[ "idsrc", 9; "value", 99 ];
      e "pubdata" ~attrs:[ "edition.area", 9; "item-length", 999 ];
      e "revision" ~attrs:[ "norm", 365 ];
      e "body" ~children:[ "body.head"; "body.content"; "body.end" ];
      e "body.head" ~children:[ "hedline"; "byline"; "abstract"; "dateline"; "note"; "series" ];
      e "hedline" ~children:[ "hl1"; "hl2" ];
      e "hl1" ~attrs:[ "id", 99 ];
      e "hl2" ~attrs:[ "id", 99 ];
      e "note" ~children:[ "p" ] ~attrs:[ "noteclass", 4 ];
      e "byline" ~children:[ "person" ] ~attrs:[ "id", 99 ];
      e "dateline" ~children:[ "location" ];
      e "abstract" ~children:[ "p" ];
      e "series" ~attrs:[ "series.name", 19; "series.part", 9; "series.totalpart", 9 ];
      e "body.content" ~children:[ "block"; "media"; "table"; "ol"; "ul"; "pre"; "bq"; "fn"; "hr" ];
      e "block" ~children:[ "p"; "media"; "datasource"; "ol"; "ul"; "pre"; "bq"; "fn"; "table"; "ednote"; "correction"; "nitf-table" ]
        ~attrs:[ "id", 99 ];
      e "ednote" ~children:[ "p" ];
      e "correction" ~attrs:[ "info", 99; "id-string", 999 ];
      e "nitf-table" ~children:[ "nitf-table-metadata"; "table" ];
      e "nitf-table-metadata" ~children:[ "nitf-col" ] ~attrs:[ "subclass", 9; "status", 3 ];
      e "nitf-col" ~attrs:[ "value", 99; "occurrences", 20 ];
      e "p" ~children:[ "em"; "q"; "lang"; "pronounce"; "num"; "money"; "chron"; "copyrite"; "virtloc"; "br"; "sup"; "sub"; "frac"; "person"; "location"; "org" ]
        ~attrs:[ "lede", 1; "summary", 1; "optional-text", 1 ];
      e "br" ;
      e "sup" ~attrs:[ "id", 99 ];
      e "sub" ~attrs:[ "id", 99 ];
      e "frac" ~children:[ "frac-num"; "frac-den" ];
      e "frac-num" ~attrs:[ "v", 99 ];
      e "frac-den" ~attrs:[ "v", 99 ];
      e "em" ~attrs:[ "class", 4 ];
      e "q" ~attrs:[ "quote-source", 49 ];
      e "lang" ~attrs:[ "iso-lang", 30 ];
      e "pronounce" ~attrs:[ "guide", 19 ];
      e "num" ~attrs:[ "units", 9; "decimals", 4 ];
      e "money" ~attrs:[ "unit", 19; "date", 365 ];
      e "chron" ~attrs:[ "norm", 365 ];
      e "copyrite" ~children:[ "copyrite.year"; "copyrite.holder" ];
      e "copyrite.year" ~attrs:[ "year", 40 ];
      e "copyrite.holder" ~attrs:[ "id", 99 ];
      e "virtloc" ~attrs:[ "idsrc", 9; "value", 99 ];
      e "ol" ~children:[ "li" ] ~attrs:[ "seqnum", 20; "type", 4 ];
      e "ul" ~children:[ "li" ];
      e "li" ~children:[ "p" ] ~attrs:[ "id", 99 ];
      e "pre" ~attrs:[ "id", 99 ];
      e "bq" ~children:[ "block"; "credit" ] ~attrs:[ "nowrap", 1; "quote-source", 49 ];
      e "credit" ~attrs:[ "id", 99 ];
      e "fn" ~children:[ "p" ] ~attrs:[ "id", 99 ];
      e "hr" ~attrs:[ "width", 800 ];
      e "media" ~children:[ "media-reference"; "media-metadata"; "media-caption"; "media-producer" ]
        ~attrs:[ "media-type", 5 ];
      e "media-reference" ~attrs:[ "mime-type", 19; "source", 99; "height", 600; "width", 800 ];
      e "media-metadata" ~attrs:[ "name", 49; "value", 99 ];
      e "media-caption" ~children:[ "p" ];
      e "media-producer" ~attrs:[ "idsrc", 9 ];
      e "datasource" ~attrs:[ "id", 99 ];
      e "table" ~children:[ "table-row" ] ~attrs:[ "width", 800; "border", 1 ];
      e "table-row" ~children:[ "table-cell" ];
      e "table-cell" ~attrs:[ "colspan", 5; "rowspan", 5 ];
      e "body.end" ~children:[ "tagline"; "bibliography" ];
      e "tagline" ~attrs:[ "type", 4 ];
      e "bibliography" ~attrs:[ "idsrc", 9 ];
    ]

(* A protein-sequence-database-like DTD modeled on the public PIR-PSD
   structure: a small alphabet of record fields that almost every entry
   instantiates, so most random query walks are satisfied by most documents
   — the source of the paper's ~75% match rate on PSD workloads. *)
let psd_like () =
  make ~root:"ProteinDatabase"
    [
      e "ProteinDatabase" ~children:[ "ProteinEntry" ];
      e "ProteinEntry" ~children:[ "header"; "protein"; "organism"; "reference"; "genetics"; "sequence" ]
        ~attrs:[ "id", 9999 ];
      e "header" ~children:[ "uid"; "accession" ];
      e "uid" ~attrs:[ "n", 9999 ];
      e "accession" ~attrs:[ "n", 9999 ];
      e "protein" ~children:[ "name"; "classification" ];
      e "name" ~attrs:[ "n", 99 ];
      e "classification" ~children:[ "superfamily" ];
      e "superfamily" ~attrs:[ "n", 99 ];
      e "organism" ~children:[ "source"; "common" ];
      e "source" ~attrs:[ "n", 99 ];
      e "common" ~attrs:[ "n", 99 ];
      e "reference" ~children:[ "refinfo" ];
      e "refinfo" ~children:[ "authors"; "citation"; "year"; "title" ] ~attrs:[ "refid", 999 ];
      e "authors" ~children:[ "author" ];
      e "author" ~attrs:[ "n", 999 ];
      e "citation" ~attrs:[ "n", 99 ];
      e "year" ~attrs:[ "v", 60 ];
      e "title" ~attrs:[ "n", 99 ];
      e "genetics" ~children:[ "gene" ];
      e "gene" ~attrs:[ "n", 999 ];
      e "sequence" ~attrs:[ "length", 2000 ];
    ]

(* An auction-site DTD modeled on the public XMark benchmark schema —
   an intermediate regime between NITF and PSD: moderate alphabet,
   recursive description markup, moderately selective workloads. *)
let auction_like () =
  make ~root:"site"
    [
      e "site"
        ~children:[ "regions"; "categories"; "catgraph"; "people"; "open_auctions"; "closed_auctions" ];
      e "regions" ~children:[ "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" ];
      e "africa" ~children:[ "item" ];
      e "asia" ~children:[ "item" ];
      e "australia" ~children:[ "item" ];
      e "europe" ~children:[ "item" ];
      e "namerica" ~children:[ "item" ];
      e "samerica" ~children:[ "item" ];
      e "item" ~children:[ "location"; "quantity"; "name"; "payment"; "description"; "shipping"; "incategory"; "mailbox" ]
        ~attrs:[ "id", 9999; "featured", 1 ];
      e "location" ~attrs:[ "code", 200 ];
      e "quantity" ~attrs:[ "n", 10 ];
      e "name" ~attrs:[ "n", 999 ];
      e "payment" ~attrs:[ "kind", 4 ];
      e "description" ~children:[ "text"; "parlist" ];
      e "text" ~children:[ "bold"; "keyword"; "emph" ];
      e "bold" ~children:[ "keyword" ];
      e "keyword" ~children:[ "emph" ] ~attrs:[ "k", 499 ];
      e "emph" ~attrs:[ "k", 499 ];
      e "parlist" ~children:[ "listitem" ];
      e "listitem" ~children:[ "text"; "parlist" ];
      e "shipping" ~attrs:[ "kind", 4 ];
      e "incategory" ~attrs:[ "category", 999 ];
      e "mailbox" ~children:[ "mail" ];
      e "mail" ~children:[ "text" ] ~attrs:[ "date", 365 ];
      e "categories" ~children:[ "category" ];
      e "category" ~children:[ "name"; "description" ] ~attrs:[ "id", 999 ];
      e "catgraph" ~children:[ "edge" ];
      e "edge" ~attrs:[ "from", 999; "to", 999 ];
      e "people" ~children:[ "person" ];
      e "person" ~children:[ "name"; "emailaddress"; "phone"; "address"; "homepage"; "creditcard"; "profile"; "watches" ]
        ~attrs:[ "id", 9999 ];
      e "emailaddress" ~attrs:[ "n", 9999 ];
      e "phone" ~attrs:[ "n", 9999 ];
      e "address" ~children:[ "street"; "city"; "country"; "province"; "zipcode" ];
      e "street" ~attrs:[ "n", 999 ];
      e "city" ~attrs:[ "city-code", 99 ];
      e "country" ~attrs:[ "iso-cc", 40 ];
      e "province" ~attrs:[ "n", 99 ];
      e "zipcode" ~attrs:[ "n", 99999 ];
      e "homepage" ~attrs:[ "n", 999 ];
      e "creditcard" ~attrs:[ "n", 9999 ];
      e "profile" ~children:[ "interest"; "education"; "gender"; "business"; "age" ]
        ~attrs:[ "income", 99999 ];
      e "interest" ~attrs:[ "category", 999 ];
      e "education" ~attrs:[ "level", 4 ];
      e "gender" ~attrs:[ "g", 1 ];
      e "business" ~attrs:[ "b", 1 ];
      e "age" ~attrs:[ "years", 99 ];
      e "watches" ~children:[ "watch" ];
      e "watch" ~attrs:[ "open_auction", 9999 ];
      e "open_auctions" ~children:[ "open_auction" ];
      e "open_auction" ~children:[ "initial"; "reserve"; "bidder"; "current"; "privacy"; "itemref"; "seller"; "annotation"; "quantity"; "type"; "interval" ]
        ~attrs:[ "id", 9999 ];
      e "initial" ~attrs:[ "amount", 99999 ];
      e "reserve" ~attrs:[ "amount", 99999 ];
      e "bidder" ~children:[ "date"; "time"; "personref"; "increase" ];
      e "date" ~attrs:[ "d", 365 ];
      e "time" ~attrs:[ "t", 1439 ];
      e "personref" ~attrs:[ "person", 9999 ];
      e "increase" ~attrs:[ "amount", 9999 ];
      e "current" ~attrs:[ "amount", 99999 ];
      e "privacy" ~attrs:[ "p", 1 ];
      e "itemref" ~attrs:[ "item", 9999 ];
      e "seller" ~attrs:[ "person", 9999 ];
      e "annotation" ~children:[ "author"; "description"; "happiness" ];
      e "author" ~attrs:[ "person", 9999 ];
      e "happiness" ~attrs:[ "h", 10 ];
      e "type" ~attrs:[ "t", 3 ];
      e "interval" ~children:[ "start"; "end" ];
      e "start" ~attrs:[ "d", 365 ];
      e "end" ~attrs:[ "d", 365 ];
      e "closed_auctions" ~children:[ "closed_auction" ];
      e "closed_auction" ~children:[ "seller"; "buyer"; "itemref"; "price"; "date"; "quantity"; "type"; "annotation" ];
      e "buyer" ~attrs:[ "person", 9999 ];
      e "price" ~attrs:[ "amount", 99999 ];
    ]

let by_name = function
  | "nitf" | "NITF" -> Some (nitf_like ())
  | "psd" | "PSD" -> Some (psd_like ())
  | "auction" | "AUCTION" | "xmark" -> Some (auction_like ())
  | _ -> None
