open Pf_xpath

type params = {
  count : int;
  max_depth : int;
  wildcard_prob : float;
  descendant_prob : float;
  distinct : bool;
  filters_per_path : int;
  nested_prob : float;
  seed : int;
}

let default =
  {
    count = 1000;
    max_depth = 6;
    wildcard_prob = 0.2;
    descendant_prob = 0.2;
    distinct = true;
    filters_per_path = 0;
    nested_prob = 0.;
    seed = 7;
  }

let pick rng l =
  match l with
  | [] -> invalid_arg "Xpath_gen.pick: empty"
  | l -> List.nth l (Random.State.int rng (List.length l))

(* Random walk down the DTD starting below [from]; returns the tag
   sequence (up to [len] tags) with a per-step flag telling whether the
   step skipped levels (to pair with a descendant operator). *)
let walk dtd rng ~from ~len ~descendant_prob =
  let rec go current remaining acc =
    if remaining = 0 then List.rev acc
    else
      let decl = Dtd.decl dtd current in
      match decl.Dtd.children with
      | [] -> List.rev acc
      | children ->
        let descend = Random.State.float rng 1.0 < descendant_prob in
        let next = pick rng children in
        (* a descendant operator may skip an extra level when possible *)
        let next =
          if descend && Random.State.bool rng then
            match (Dtd.decl dtd next).Dtd.children with
            | [] -> next
            | grandchildren -> pick rng grandchildren
          else next
        in
        go next (remaining - 1) ((next, descend) :: acc)
  in
  go from len []

let gen_filters dtd rng ~per_path steps =
  (* attach attribute filters to randomly chosen tag steps that declare
     attributes *)
  let candidates =
    List.mapi (fun i s -> i, s) steps
    |> List.filter_map (fun (i, (s : Ast.step)) ->
           match s.Ast.test with
           | Ast.Tag name when (Dtd.decl dtd name).Dtd.attrs <> [] -> Some i
           | Ast.Tag _ | Ast.Wildcard -> None)
  in
  if candidates = [] then steps
  else begin
    let chosen = List.init per_path (fun _ -> pick rng candidates) in
    List.mapi
      (fun i (s : Ast.step) ->
        let k = List.length (List.filter (( = ) i) chosen) in
        if k = 0 then s
        else begin
          let name = match s.Ast.test with Ast.Tag n -> n | Ast.Wildcard -> assert false in
          let attrs = (Dtd.decl dtd name).Dtd.attrs in
          let filters =
            List.init k (fun _ ->
                let attr, bound = pick rng attrs in
                let cmp =
                  match Random.State.int rng 4 with
                  | 0 | 1 -> Ast.Eq
                  | 2 -> Ast.Ge
                  | _ -> Ast.Le
                in
                let value = Ast.Int (Random.State.int rng (bound + 1)) in
                Ast.Attr { Ast.attr; cmp; value })
          in
          { s with Ast.filters = s.Ast.filters @ filters }
        end)
      steps
  end

let gen_path dtd rng p ~allow_nested =
  (* expression length biased long, as generated query workloads are *)
  let len =
    1 + max (Random.State.int rng p.max_depth) (Random.State.int rng p.max_depth)
  in
  let root = dtd.Dtd.root in
  let root_descend = Random.State.float rng 1.0 < p.descendant_prob in
  let tags = (root, root_descend) :: walk dtd rng ~from:root ~len:(len - 1) ~descendant_prob:p.descendant_prob in
  let steps =
    List.map
      (fun (tag, descend) ->
        let test =
          if Random.State.float rng 1.0 < p.wildcard_prob then Ast.Wildcard
          else Ast.Tag tag
        in
        let axis = if descend then Ast.Descendant else Ast.Child in
        { Ast.axis; test; filters = [] })
      tags
  in
  let steps =
    if p.filters_per_path > 0 then gen_filters dtd rng ~per_path:p.filters_per_path steps
    else steps
  in
  let steps =
    if allow_nested && p.nested_prob > 0. then
      List.map
        (fun (s : Ast.step) ->
          match s.Ast.test with
          | Ast.Tag name when Random.State.float rng 1.0 < p.nested_prob ->
            (* root the nested filter below this element *)
            let nested_steps =
              walk dtd rng ~from:name ~len:(1 + Random.State.int rng 2)
                ~descendant_prob:p.descendant_prob
              |> List.map (fun (tag, descend) ->
                     {
                       Ast.axis = (if descend then Ast.Descendant else Ast.Child);
                       test = Ast.Tag tag;
                       filters = [];
                     })
            in
            if nested_steps = [] then s
            else
              {
                s with
                Ast.filters =
                  Ast.Nested { Ast.absolute = false; steps = nested_steps } :: s.Ast.filters;
              }
          | Ast.Tag _ | Ast.Wildcard -> s)
        steps
    else steps
  in
  { Ast.absolute = true; steps }

let generate dtd p =
  let rng = Random.State.make [| p.seed; 0x51f15e |] in
  if p.distinct then begin
    let seen = Hashtbl.create (2 * p.count) in
    let acc = ref [] and n = ref 0 and attempts = ref 0 in
    let max_attempts = p.count * 40 in
    while !n < p.count && !attempts < max_attempts do
      incr attempts;
      let path = gen_path dtd rng p ~allow_nested:true in
      let key = Parser.to_string path in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        acc := path :: !acc;
        incr n
      end
    done;
    List.rev !acc
  end
  else List.init p.count (fun _ -> gen_path dtd rng p ~allow_nested:true)

let distinct_count paths =
  let seen = Hashtbl.create 1024 in
  List.iter (fun p -> Hashtbl.replace seen (Parser.to_string p) ()) paths;
  Hashtbl.length seen
