lib/xml/sax.ml: Buffer Char Format List Printf String Tree
