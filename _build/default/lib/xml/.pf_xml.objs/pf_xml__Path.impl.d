lib/xml/path.ml: Array Buffer Format Hashtbl List Sax String Tree
