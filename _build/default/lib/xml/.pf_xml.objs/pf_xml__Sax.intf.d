lib/xml/sax.mli: Format Tree
