(** XML serialization.

    Produces well-formed XML that {!Sax.parse_document} parses back to an
    equal tree (modulo whitespace-only text nodes); the workload generator
    uses it to materialize documents. *)

val escape_text : string -> string
(** Escape ampersand and angle brackets for use in character data. *)

val escape_attr : string -> string
(** Escape ampersand, angle brackets and double quotes for use in a
    double-quoted attribute value. *)

val to_string : ?decl:bool -> Tree.t -> string
(** Serialize a document. [decl] (default [true]) prepends an XML
    declaration. *)

val to_file : ?decl:bool -> string -> Tree.t -> unit
