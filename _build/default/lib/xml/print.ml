let escape buf ~quote s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when quote -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s) in
  escape buf ~quote:false s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  escape buf ~quote:true s;
  Buffer.contents buf

let to_string ?(decl = true) (doc : Tree.t) =
  let buf = Buffer.create 1024 in
  if decl then Buffer.add_string buf "<?xml version=\"1.0\"?>\n";
  let rec emit_element (e : Tree.element) =
    Buffer.add_char buf '<';
    Buffer.add_string buf e.Tree.tag;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        escape buf ~quote:true v;
        Buffer.add_char buf '"')
      e.Tree.attrs;
    match e.Tree.children with
    | [] -> Buffer.add_string buf "/>"
    | children ->
      Buffer.add_char buf '>';
      List.iter emit_node children;
      Buffer.add_string buf "</";
      Buffer.add_string buf e.Tree.tag;
      Buffer.add_char buf '>'
  and emit_node = function
    | Tree.Element e -> emit_element e
    | Tree.Text s -> escape buf ~quote:false s
  in
  emit_element doc.Tree.root;
  Buffer.contents buf

let to_file ?decl path doc =
  let oc = open_out_bin path in
  output_string oc (to_string ?decl doc);
  close_out oc
