type step = {
  tag : string;
  attrs : (string * string) list;
  occurrence : int;
  child_index : int;
}

type t = { steps : step array }

let length t = Array.length t.steps

let tags t = Array.to_list (Array.map (fun s -> s.tag) t.steps)

let structure t = Array.map (fun s -> s.child_index) t.steps

(* Occurrence numbers are computed as the path is extended: [counts] maps a
   tag name to how many times it already occurred on the current root-to-node
   path. Counts are decremented on the way back up, so one table serves the
   whole traversal. *)
let of_document (doc : Tree.t) : t list =
  let counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let bump tag =
    let n = (match Hashtbl.find_opt counts tag with Some n -> n | None -> 0) + 1 in
    Hashtbl.replace counts tag n;
    n
  in
  let unbump tag =
    match Hashtbl.find_opt counts tag with
    | Some 1 -> Hashtbl.remove counts tag
    | Some n -> Hashtbl.replace counts tag (n - 1)
    | None -> assert false
  in
  let paths = ref [] in
  let rec walk (e : Tree.element) child_index prefix =
    let occurrence = bump e.Tree.tag in
    (* text content rides along as the reserved pseudo-attribute #text, so
       text() filters evaluate through the ordinary attribute machinery *)
    let attrs =
      match Tree.text_content e with
      | "" -> e.Tree.attrs
      | txt -> e.Tree.attrs @ [ "#text", txt ]
    in
    let step = { tag = e.Tree.tag; attrs; occurrence; child_index } in
    let prefix = step :: prefix in
    (match Tree.element_children e with
    | [] -> paths := { steps = Array.of_list (List.rev prefix) } :: !paths
    | children ->
      List.iteri (fun i c -> walk c (i + 1) prefix) children);
    unbump e.Tree.tag
  in
  walk doc.Tree.root 1 [];
  List.rev !paths

(* Streaming extraction: maintain the open-element stack; a path is
   complete when an element containing no child elements closes. The stack
   carries each open element's step plus its running element-child count
   (the next child's child_index). *)
type open_element = {
  oe_step : step;
  mutable oe_children : int;  (* element children seen so far *)
  oe_text : Buffer.t;  (* immediate text seen so far *)
}

let fold_of_string src ~init ~f =
  let counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let bump tag =
    let n = (match Hashtbl.find_opt counts tag with Some n -> n | None -> 0) + 1 in
    Hashtbl.replace counts tag n;
    n
  in
  let unbump tag =
    match Hashtbl.find_opt counts tag with
    | Some 1 -> Hashtbl.remove counts tag
    | Some n -> Hashtbl.replace counts tag (n - 1)
    | None -> assert false
  in
  let stack : open_element list ref = ref [] in
  (* Text seen so far becomes the #text pseudo-attribute. For ancestors
     with mixed content this covers only the text preceding the branch
     point — text() on non-leaf steps is best-effort in streaming mode
     (see the interface). *)
  let finalize oe =
    match String.trim (Buffer.contents oe.oe_text) with
    | "" -> oe.oe_step
    | txt -> { oe.oe_step with attrs = oe.oe_step.attrs @ [ "#text", txt ] }
  in
  let emit acc =
    let steps = List.rev_map finalize !stack in
    f acc { steps = Array.of_list steps }
  in
  let on_event acc = function
    | Sax.Start_element (tag, attrs) ->
      let child_index =
        match !stack with
        | [] -> 1
        | parent :: _ ->
          parent.oe_children <- parent.oe_children + 1;
          parent.oe_children
      in
      let step = { tag; attrs; occurrence = bump tag; child_index } in
      stack := { oe_step = step; oe_children = 0; oe_text = Buffer.create 8 } :: !stack;
      acc
    | Sax.End_element _ -> (
      match !stack with
      | [] -> acc
      | top :: rest ->
        let acc = if top.oe_children = 0 then emit acc else acc in
        unbump top.oe_step.tag;
        stack := rest;
        acc)
    | Sax.Chars s -> (
      match !stack with
      | top :: _ ->
        Buffer.add_string top.oe_text s;
        acc
      | [] -> acc)
    | Sax.Comment _ | Sax.Pi _ -> acc
  in
  Sax.fold_events src ~init ~f:on_event

let of_string src =
  List.rev (fold_of_string src ~init:[] ~f:(fun acc p -> p :: acc))

let of_tags tag_list =
  let counts = Hashtbl.create 8 in
  let steps =
    List.map
      (fun tag ->
        let n = (match Hashtbl.find_opt counts tag with Some n -> n | None -> 0) + 1 in
        Hashtbl.replace counts tag n;
        { tag; attrs = []; occurrence = n; child_index = 1 })
      tag_list
  in
  { steps = Array.of_list steps }

let pp fmt t =
  Format.fprintf fmt "@[<h>";
  Array.iteri
    (fun i s ->
      if i > 0 then Format.pp_print_string fmt "/";
      Format.fprintf fmt "%s^%d" s.tag s.occurrence)
    t.steps;
  Format.fprintf fmt "@]"
