(** In-memory XML document model.

    A document is a tree of elements; each element carries a tag name, an
    association list of attributes and an ordered list of child nodes. Text
    nodes are retained (the filtering algorithms ignore them, but the
    serializer and the reference evaluator keep documents faithful). *)

type node =
  | Element of element
  | Text of string

and element = {
  tag : string;  (** element name, namespace prefixes kept verbatim *)
  attrs : (string * string) list;  (** attributes in document order *)
  children : node list;  (** child nodes in document order *)
}

type t = { root : element }

val element : ?attrs:(string * string) list -> ?children:node list -> string -> element
(** [element tag] builds an element; convenience constructor for tests and
    generators. *)

val doc : element -> t

val attr : element -> string -> string option
(** [attr e name] is the value of attribute [name] on [e], if present. *)

val text_content : element -> string
(** Concatenation of the element's immediate text children, trimmed —
    the value [text()] filters compare against. *)

val element_children : element -> element list
(** Child nodes that are elements, in document order. *)

val is_leaf : element -> bool
(** [is_leaf e] is true iff [e] has no element children. *)

val count_elements : t -> int
(** Total number of elements in the document (the paper reports documents of
    ~140 tags on average). *)

val depth : t -> int
(** Length of the longest root-to-leaf element path. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
