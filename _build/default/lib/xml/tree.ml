type node =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;
  children : node list;
}

type t = { root : element }

let element ?(attrs = []) ?(children = []) tag = { tag; attrs; children }

let doc root = { root }

let attr e name = List.assoc_opt name e.attrs

let text_content e =
  let buf = Buffer.create 16 in
  List.iter
    (function
      | Text s -> Buffer.add_string buf s
      | Element _ -> ())
    e.children;
  String.trim (Buffer.contents buf)

let element_children e =
  List.filter_map (function Element c -> Some c | Text _ -> None) e.children

let is_leaf e = element_children e = []

let count_elements t =
  let rec count e = List.fold_left (fun acc c -> acc + count c) 1 (element_children e) in
  count t.root

let depth t =
  let rec go e =
    match element_children e with
    | [] -> 1
    | cs -> 1 + List.fold_left (fun acc c -> max acc (go c)) 0 cs
  in
  go t.root

let rec equal_element e1 e2 =
  String.equal e1.tag e2.tag
  && e1.attrs = e2.attrs
  && List.length e1.children = List.length e2.children
  && List.for_all2 equal_node e1.children e2.children

and equal_node n1 n2 =
  match n1, n2 with
  | Element e1, Element e2 -> equal_element e1 e2
  | Text t1, Text t2 -> String.equal t1 t2
  | Element _, Text _ | Text _, Element _ -> false

let equal t1 t2 = equal_element t1.root t2.root

let rec pp_element fmt e =
  match e.children with
  | [] -> Format.fprintf fmt "@[<h><%s%a/>@]" e.tag pp_attrs e.attrs
  | cs ->
    Format.fprintf fmt "@[<v 2><%s%a>%a@]@,</%s>" e.tag pp_attrs e.attrs
      (fun fmt -> List.iter (fun c -> Format.fprintf fmt "@,%a" pp_node c))
      cs e.tag

and pp_attrs fmt attrs =
  List.iter (fun (k, v) -> Format.fprintf fmt " %s=%S" k v) attrs

and pp_node fmt = function
  | Element e -> pp_element fmt e
  | Text s -> Format.pp_print_string fmt s

let pp fmt t = Format.fprintf fmt "@[<v>%a@]" pp_element t.root
