(* Tests for the workload substrate: DTD models and generators. *)

open Pf_workload

let test_dtd_validity () =
  List.iter
    (fun dtd ->
      (* every child reference resolves; reachable from root *)
      List.iter
        (fun name ->
          let d = Dtd.decl dtd name in
          List.iter (fun c -> ignore (Dtd.decl dtd c)) d.Dtd.children)
        (Dtd.element_names dtd);
      ignore (Dtd.decl dtd dtd.Dtd.root))
    [ Dtd.nitf_like (); Dtd.psd_like (); Dtd.auction_like () ]

let test_dtd_shapes () =
  let nitf = Dtd.nitf_like () and psd = Dtd.psd_like () in
  Alcotest.(check bool) "nitf alphabet is much larger" true
    (List.length (Dtd.element_names nitf) > 2 * List.length (Dtd.element_names psd));
  Alcotest.(check string) "nitf root" "nitf" nitf.Dtd.root;
  Alcotest.(check string) "psd root" "ProteinDatabase" psd.Dtd.root

let test_dtd_by_name () =
  Alcotest.(check bool) "nitf" true (Dtd.by_name "nitf" <> None);
  Alcotest.(check bool) "psd" true (Dtd.by_name "psd" <> None);
  Alcotest.(check bool) "auction" true (Dtd.by_name "auction" <> None);
  Alcotest.(check bool) "unknown" true (Dtd.by_name "bogus" = None)

let test_make_rejects_dangling () =
  match Dtd.make ~root:"a" [ { Dtd.name = "a"; children = [ "ghost" ]; attrs = [] } ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dangling child should be rejected"

(* ------------------------------------------------------------------ *)

let nitf = Dtd.nitf_like ()
let psd = Dtd.psd_like ()

let test_xmlgen_determinism () =
  let p = Xml_gen.default in
  let d1 = Xml_gen.generate nitf p and d2 = Xml_gen.generate nitf p in
  Alcotest.(check bool) "same seed, same doc" true (Pf_xml.Tree.equal d1 d2);
  let d3 = Xml_gen.generate nitf { p with Xml_gen.seed = p.Xml_gen.seed + 1 } in
  Alcotest.(check bool) "different seed, different doc" false (Pf_xml.Tree.equal d1 d3)

let test_xmlgen_respects_levels () =
  List.iter
    (fun lv ->
      let d = Xml_gen.generate psd { Xml_gen.default with Xml_gen.max_levels = lv } in
      Alcotest.(check bool)
        (Printf.sprintf "depth <= %d" lv)
        true
        (Pf_xml.Tree.depth d <= lv))
    [ 1; 2; 4; 6; 10 ]

let test_xmlgen_valid_against_dtd () =
  let d = Xml_gen.generate nitf Presets.nitf_documents in
  let rec check (e : Pf_xml.Tree.element) =
    let decl = Dtd.decl nitf e.Pf_xml.Tree.tag in
    List.iter
      (fun (c : Pf_xml.Tree.element) ->
        Alcotest.(check bool)
          (e.Pf_xml.Tree.tag ^ " may contain " ^ c.Pf_xml.Tree.tag)
          true
          (List.mem c.Pf_xml.Tree.tag decl.Dtd.children);
        check c)
      (Pf_xml.Tree.element_children e);
    List.iter
      (fun (a, v) ->
        Alcotest.(check bool) ("declared attr " ^ a) true
          (List.mem_assoc a decl.Dtd.attrs);
        Alcotest.(check bool) "integer value" true (int_of_string_opt v <> None))
      e.Pf_xml.Tree.attrs
  in
  check d.Pf_xml.Tree.root

let test_xmlgen_wellformed_output () =
  let d = Xml_gen.generate nitf Presets.nitf_documents in
  let d' = Pf_xml.Sax.parse_document (Pf_xml.Print.to_string d) in
  Alcotest.(check bool) "serialization round-trips" true (Pf_xml.Tree.equal d d')

let test_generate_many_distinct () =
  let docs = Xml_gen.generate_many psd Presets.psd_documents 5 in
  Alcotest.(check int) "five docs" 5 (List.length docs);
  let distinct =
    List.length
      (List.sort_uniq compare (List.map (Pf_xml.Print.to_string ~decl:false) docs))
  in
  Alcotest.(check int) "all distinct" 5 distinct

(* ------------------------------------------------------------------ *)

let test_xpathgen_determinism () =
  let p = { Xpath_gen.default with Xpath_gen.count = 50 } in
  Alcotest.(check bool) "same seed, same workload" true
    (Xpath_gen.generate nitf p = Xpath_gen.generate nitf p)

let test_xpathgen_distinct_flag () =
  let p = { Xpath_gen.default with Xpath_gen.count = 300; distinct = true } in
  let paths = Xpath_gen.generate nitf p in
  Alcotest.(check int) "all distinct" (List.length paths) (Xpath_gen.distinct_count paths);
  let p = { p with Xpath_gen.distinct = false; count = 3000 } in
  let paths = Xpath_gen.generate psd p in
  Alcotest.(check int) "exactly count generated" 3000 (List.length paths);
  Alcotest.(check bool) "duplicates arise on a small DTD" true
    (Xpath_gen.distinct_count paths < 3000)

let test_xpathgen_depth_bound () =
  let p = { Xpath_gen.default with Xpath_gen.count = 200; max_depth = 4 } in
  List.iter
    (fun path ->
      Alcotest.(check bool) "within depth" true (Pf_xpath.Ast.num_steps path <= 4))
    (Xpath_gen.generate nitf p)

let test_xpathgen_wildcard_extremes () =
  let p = { Xpath_gen.default with Xpath_gen.count = 100; wildcard_prob = 1.0 } in
  List.iter
    (fun path ->
      List.iter
        (fun (s : Pf_xpath.Ast.step) ->
          Alcotest.(check bool) "all wildcards" true (s.Pf_xpath.Ast.test = Pf_xpath.Ast.Wildcard))
        path.Pf_xpath.Ast.steps)
    (Xpath_gen.generate nitf p);
  let p = { p with Xpath_gen.wildcard_prob = 0.0; descendant_prob = 0.0 } in
  List.iter
    (fun path ->
      List.iter
        (fun (s : Pf_xpath.Ast.step) ->
          Alcotest.(check bool) "no wildcards" true (s.Pf_xpath.Ast.test <> Pf_xpath.Ast.Wildcard);
          Alcotest.(check bool) "no descendants" true (s.Pf_xpath.Ast.axis = Pf_xpath.Ast.Child))
        path.Pf_xpath.Ast.steps)
    (Xpath_gen.generate nitf p)

let test_xpathgen_filters () =
  let p = { Xpath_gen.default with Xpath_gen.count = 200; filters_per_path = 1 } in
  let with_filters =
    List.length (List.filter Pf_xpath.Ast.has_attr_filters (Xpath_gen.generate nitf p))
  in
  Alcotest.(check bool) "most expressions carry a filter" true (with_filters > 150)

let test_xpathgen_parseable () =
  let p = { Xpath_gen.default with Xpath_gen.count = 200; filters_per_path = 1; nested_prob = 0.2 } in
  List.iter
    (fun path ->
      let printed = Pf_xpath.Parser.to_string path in
      match Pf_xpath.Parser.parse printed with
      | _ -> ())
    (Xpath_gen.generate nitf p)

let test_xpathgen_walks_follow_dtd () =
  (* with W=0 and DO=0, generated paths are valid DTD chains *)
  let p = { Xpath_gen.default with Xpath_gen.count = 100; wildcard_prob = 0.; descendant_prob = 0. } in
  List.iter
    (fun path ->
      let tags =
        List.map
          (fun (s : Pf_xpath.Ast.step) ->
            match s.Pf_xpath.Ast.test with Pf_xpath.Ast.Tag t -> t | Pf_xpath.Ast.Wildcard -> assert false)
          path.Pf_xpath.Ast.steps
      in
      let rec chain = function
        | [] | [ _ ] -> true
        | a :: (b :: _ as rest) ->
          List.mem b (Dtd.decl nitf a).Dtd.children && chain rest
      in
      Alcotest.(check bool) "valid chain" true (chain tags))
    (Xpath_gen.generate nitf p)

let test_presets () =
  Alcotest.(check bool) "nitf preset skewed" true (Presets.nitf_documents.Xml_gen.skew > 0.5);
  Alcotest.(check bool) "psd preset uniform" true (Presets.psd_documents.Xml_gen.skew = 0.);
  (match Presets.documents_for "bogus" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown preset should be rejected")

(* match-rate regimes: selective NITF vs matching-heavy PSD *)
let test_auction_workload () =
  (* the third DTD supports the full pipeline: generate, filter, agree *)
  let dtd = Dtd.auction_like () in
  let paths = Xpath_gen.generate dtd { Xpath_gen.default with Xpath_gen.count = 200 } in
  let docs = Xml_gen.generate_many dtd Presets.auction_documents 5 in
  let e = Pf_core.Engine.create () in
  let sids = List.map (fun p -> Pf_core.Engine.add e p, p) paths in
  List.iter
    (fun d ->
      let m = Pf_core.Engine.match_document e d in
      List.iter
        (fun (sid, p) ->
          Alcotest.(check bool) "oracle" (Pf_xpath.Eval.matches p d) (List.mem sid m))
        sids)
    docs

let test_match_regimes () =
  let rate dtd doc_params =
    let paths = Xpath_gen.generate dtd { Xpath_gen.default with Xpath_gen.count = 400 } in
    let docs = Xml_gen.generate_many dtd doc_params 10 in
    let e = Pf_core.Engine.create () in
    List.iter (fun p -> ignore (Pf_core.Engine.add e p)) paths;
    let hits =
      List.fold_left
        (fun acc d -> acc + List.length (Pf_core.Engine.match_document e d))
        0 docs
    in
    float hits /. float (List.length paths * 10)
  in
  let nitf_rate = rate nitf Presets.nitf_documents in
  let psd_rate = rate psd Presets.psd_documents in
  Alcotest.(check bool) "NITF is selective (< 25%)" true (nitf_rate < 0.25);
  Alcotest.(check bool) "PSD is matching-heavy (> 60%)" true (psd_rate > 0.6);
  Alcotest.(check bool) "regimes are far apart" true (psd_rate > 3. *. nitf_rate)

let () =
  Alcotest.run "workload"
    [
      ( "dtd",
        [
          Alcotest.test_case "validity" `Quick test_dtd_validity;
          Alcotest.test_case "shapes" `Quick test_dtd_shapes;
          Alcotest.test_case "by_name" `Quick test_dtd_by_name;
          Alcotest.test_case "dangling child rejected" `Quick test_make_rejects_dangling;
        ] );
      ( "xml_gen",
        [
          Alcotest.test_case "determinism" `Quick test_xmlgen_determinism;
          Alcotest.test_case "respects max_levels" `Quick test_xmlgen_respects_levels;
          Alcotest.test_case "valid against DTD" `Quick test_xmlgen_valid_against_dtd;
          Alcotest.test_case "well-formed output" `Quick test_xmlgen_wellformed_output;
          Alcotest.test_case "generate_many distinct" `Quick test_generate_many_distinct;
        ] );
      ( "xpath_gen",
        [
          Alcotest.test_case "determinism" `Quick test_xpathgen_determinism;
          Alcotest.test_case "distinct flag" `Quick test_xpathgen_distinct_flag;
          Alcotest.test_case "depth bound" `Quick test_xpathgen_depth_bound;
          Alcotest.test_case "wildcard extremes" `Quick test_xpathgen_wildcard_extremes;
          Alcotest.test_case "filters per path" `Quick test_xpathgen_filters;
          Alcotest.test_case "output parseable" `Quick test_xpathgen_parseable;
          Alcotest.test_case "walks follow the DTD" `Quick test_xpathgen_walks_follow_dtd;
        ] );
      ( "regimes",
        [
          Alcotest.test_case "presets" `Quick test_presets;
          Alcotest.test_case "match-rate regimes" `Slow test_match_regimes;
          Alcotest.test_case "auction workload end-to-end" `Slow test_auction_workload;
        ] );
    ]
