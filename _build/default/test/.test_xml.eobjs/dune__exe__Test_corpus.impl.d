test/test_corpus.ml: Alcotest List Pf_core Pf_indexfilter Pf_xml Pf_xpath Pf_yfilter Printf
