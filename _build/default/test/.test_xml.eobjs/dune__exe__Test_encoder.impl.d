test/test_encoder.ml: Alcotest Array Encoder Format Fun Gen_helpers List Pf_core Pf_xpath Predicate QCheck2 QCheck_alcotest String
