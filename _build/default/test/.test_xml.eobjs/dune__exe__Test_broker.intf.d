test/test_broker.mli:
