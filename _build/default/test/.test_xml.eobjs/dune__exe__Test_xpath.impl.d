test/test_xpath.ml: Alcotest Ast Eval Gen Gen_helpers List Parser Pf_xml Pf_xpath Printf QCheck2 QCheck_alcotest String Test
