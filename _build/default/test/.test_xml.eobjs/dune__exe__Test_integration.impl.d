test/test_integration.ml: Alcotest Array Dtd Hashtbl List Pf_core Pf_indexfilter Pf_workload Pf_xml Pf_xpath Pf_yfilter Presets Printf Xml_gen Xpath_gen
