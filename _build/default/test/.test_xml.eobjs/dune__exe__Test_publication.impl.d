test/test_publication.ml: Alcotest Array Format Gen_helpers List Pf_core Pf_xml Publication QCheck2 QCheck_alcotest
