test/test_workload.ml: Alcotest Dtd List Pf_core Pf_workload Pf_xml Pf_xpath Presets Printf Xml_gen Xpath_gen
