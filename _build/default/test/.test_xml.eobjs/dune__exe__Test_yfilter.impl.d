test/test_yfilter.ml: Alcotest Gen_helpers List Pf_core Pf_xpath Pf_yfilter QCheck2 QCheck_alcotest String
