test/test_containment.ml: Alcotest Containment Gen_helpers List Pf_core Pf_xpath Printf QCheck2 QCheck_alcotest
