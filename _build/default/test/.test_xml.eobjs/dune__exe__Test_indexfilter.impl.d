test/test_indexfilter.ml: Alcotest Gen_helpers List Pf_core Pf_indexfilter Pf_xpath QCheck2 QCheck_alcotest String
