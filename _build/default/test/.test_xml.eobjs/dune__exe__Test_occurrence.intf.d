test/test_occurrence.mli:
