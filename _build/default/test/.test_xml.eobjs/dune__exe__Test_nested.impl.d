test/test_nested.ml: Alcotest Encoder Engine Gen_helpers List Nested Pf_core Pf_workload Pf_xml Pf_xpath Predicate_index QCheck2 QCheck_alcotest
