test/test_engine.ml: Alcotest Encoder Engine Expr_index Gen_helpers List Pf_core Pf_xml Pf_xpath Printf QCheck2 QCheck_alcotest String
