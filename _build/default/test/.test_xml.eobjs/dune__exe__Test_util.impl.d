test/test_util.ml: Alcotest Format List Pf_core Pf_xpath Predicate Predicate_index Printf QCheck2 QCheck_alcotest Vec
