test/test_encoder.mli:
