test/test_occurrence.ml: Alcotest Array Gen_helpers List Occurrence Pf_core QCheck2 QCheck_alcotest
