test/test_expr_index.mli:
