test/test_expr_index.ml: Alcotest Array Encoder Expr_index Fun Gen Gen_helpers List Occurrence Option Pf_core Predicate_index Publication QCheck2 QCheck_alcotest String Test
