test/test_yfilter.mli:
