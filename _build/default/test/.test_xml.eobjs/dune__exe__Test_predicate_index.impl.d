test/test_predicate_index.ml: Alcotest Array Encoder Format Gen Gen_helpers List Pf_core Pf_xml Pf_xpath Predicate Predicate_index Publication QCheck2 QCheck_alcotest String Test
