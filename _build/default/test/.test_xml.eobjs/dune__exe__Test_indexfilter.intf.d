test/test_indexfilter.mli:
