test/test_broker.ml: Alcotest Broker Gen_helpers List Pf_broker Pf_xml QCheck2 QCheck_alcotest String
