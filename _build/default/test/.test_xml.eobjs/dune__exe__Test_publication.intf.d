test/test_publication.mli:
