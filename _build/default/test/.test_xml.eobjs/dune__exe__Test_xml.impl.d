test/test_xml.ml: Alcotest Array Bytes Gen Gen_helpers List Path Pf_xml Print Printf QCheck2 QCheck_alcotest Sax String Test Tree
