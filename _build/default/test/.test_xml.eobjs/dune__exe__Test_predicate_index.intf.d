test/test_predicate_index.mli:
