(* Shared QCheck generators for property tests.

   A deliberately small tag alphabet (a..e) maximizes collisions: repeated
   tags on one path exercise occurrence numbers, and overlapping query
   fragments exercise predicate sharing. *)

open QCheck2

let tag_gen = Gen.oneofl [ "a"; "b"; "c"; "d"; "e" ]

let attr_name_gen = Gen.oneofl [ "x"; "y"; "z" ]

let attr_value_gen = Gen.map string_of_int (Gen.int_range 0 5)

(* ------------------------------------------------------------------ *)
(* Documents *)

let rec element_gen ~depth ~fanout =
  let open Gen in
  tag_gen >>= fun tag ->
  list_size (int_range 0 2)
    (pair attr_name_gen attr_value_gen)
  >>= fun attrs ->
  let attrs = List.sort_uniq (fun (a, _) (b, _) -> compare a b) attrs in
  (if depth <= 1 then return []
   else
     list_size (int_range 0 fanout)
       (map (fun e -> Pf_xml.Tree.Element e) (element_gen ~depth:(depth - 1) ~fanout)))
  >>= fun children ->
  (* leaf elements may carry numeric text, exercising text() filters;
     leaves only, so streaming and tree path extraction agree exactly *)
  (if children = [] then
     frequency
       [ 2, return children;
         1, map (fun v -> [ Pf_xml.Tree.Text (string_of_int v) ]) (int_range 0 5) ]
   else return children)
  >>= fun children -> return (Pf_xml.Tree.element ~attrs ~children tag)

let doc_gen =
  Gen.(int_range 1 5 >>= fun depth -> map Pf_xml.Tree.doc (element_gen ~depth ~fanout:3))

let doc_print d = Pf_xml.Print.to_string ~decl:false d

(* ------------------------------------------------------------------ *)
(* XPath expressions *)

let comparison_gen = Gen.oneofl Pf_xpath.Ast.[ Eq; Ne; Lt; Le; Gt; Ge ]

let attr_filter_gen =
  let open Gen in
  frequency [ 3, attr_name_gen; 1, return Pf_xpath.Ast.text_attr ] >>= fun attr ->
  comparison_gen >>= fun cmp ->
  int_range 0 5 >>= fun v ->
  return (Pf_xpath.Ast.Attr { Pf_xpath.Ast.attr; cmp; value = Pf_xpath.Ast.Int v })

let rec step_gen ~nested_depth ~allow_filters =
  let open Gen in
  oneofl Pf_xpath.Ast.[ Child; Child; Child; Descendant ] >>= fun axis ->
  frequency [ 4, map (fun t -> Pf_xpath.Ast.Tag t) tag_gen; 1, return Pf_xpath.Ast.Wildcard ]
  >>= fun test ->
  (match test with
  | Pf_xpath.Ast.Wildcard -> return []
  | Pf_xpath.Ast.Tag _ when allow_filters ->
    let nested =
      if nested_depth > 0 then
        [ ( 1,
            map
              (fun p -> Pf_xpath.Ast.Nested p)
              (relative_path_gen ~nested_depth:(nested_depth - 1) ~allow_filters) ) ]
      else []
    in
    list_size (int_range 0 1) (frequency ((3, attr_filter_gen) :: nested))
  | Pf_xpath.Ast.Tag _ -> return [])
  >>= fun filters -> return { Pf_xpath.Ast.axis; test; filters }

and relative_path_gen ~nested_depth ~allow_filters =
  let open Gen in
  list_size (int_range 1 3) (step_gen ~nested_depth ~allow_filters) >>= fun steps ->
  return { Pf_xpath.Ast.absolute = false; steps }

let path_gen_with ~nested_depth ~allow_filters =
  let open Gen in
  bool >>= fun absolute ->
  list_size (int_range 1 5) (step_gen ~nested_depth ~allow_filters) >>= fun steps ->
  return { Pf_xpath.Ast.absolute; steps }

let single_path_gen = path_gen_with ~nested_depth:0 ~allow_filters:false

let single_path_attr_gen = path_gen_with ~nested_depth:0 ~allow_filters:true

let any_path_gen = path_gen_with ~nested_depth:2 ~allow_filters:true

let path_print p = Pf_xpath.Parser.to_string p

(* ------------------------------------------------------------------ *)

(* Occurrence-pair result sets for the occurrence determination tests. *)
let results_gen =
  let open Gen in
  let pair_gen = pair (int_range 1 4) (int_range 1 4) in
  list_size (int_range 1 5) (list_size (int_range 0 4) pair_gen)
  >>= fun rs -> return (Array.of_list rs)

let results_print rs =
  String.concat " | "
    (Array.to_list
       (Array.map
          (fun l ->
            String.concat ","
              (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) l))
          rs))
