(* Tests for the occurrence determination algorithm (Algorithm 1). *)

open Pf_core

let test_table_1_chains () =
  (* a//b/c on (a,b,c,a,b,c): R1 = {(1,1),(1,2),(2,2)}, R2 = {(1,1),(2,2)} —
     the boldface combination (1,1),(1,1) is a true match *)
  let rs = [| [ 1, 1; 1, 2; 2, 2 ]; [ 1, 1; 2, 2 ] |] in
  Alcotest.(check bool) "match" true (Occurrence.matches rs);
  Alcotest.(check bool) "faithful agrees" true (Occurrence.matches_faithful rs);
  (* c//b//a: R1 = {(1,2)}, R2 = {(1,2)} — 2 <> 1, no chain *)
  let rs = [| [ 1, 2 ]; [ 1, 2 ] |] in
  Alcotest.(check bool) "no match" false (Occurrence.matches rs);
  Alcotest.(check bool) "faithful agrees (no)" false (Occurrence.matches_faithful rs)

let test_empty_cases () =
  Alcotest.(check bool) "no predicates" false (Occurrence.matches [||]);
  Alcotest.(check bool) "faithful no predicates" false (Occurrence.matches_faithful [||]);
  Alcotest.(check bool) "empty R_i" false (Occurrence.matches [| [ 1, 1 ]; [] |]);
  Alcotest.(check bool) "faithful empty R_i" false
    (Occurrence.matches_faithful [| [ 1, 1 ]; [] |]);
  Alcotest.(check bool) "single" true (Occurrence.matches [| [ 3, 4 ] |]);
  Alcotest.(check bool) "faithful single" true (Occurrence.matches_faithful [| [ 3, 4 ] |])

let test_backtracking_needed () =
  (* the first choice (1,2) dead-ends; backtracking must find (1,1)->(1,3) *)
  let rs = [| [ 1, 2; 1, 1 ]; [ 1, 3 ] |] in
  Alcotest.(check bool) "backtrack" true (Occurrence.matches rs);
  Alcotest.(check bool) "faithful backtrack" true (Occurrence.matches_faithful rs);
  (* deep backtracking across three levels *)
  let rs = [| [ 1, 1; 1, 2 ]; [ 1, 5; 2, 3 ]; [ 3, 4 ] |] in
  Alcotest.(check bool) "deep" true (Occurrence.matches rs);
  Alcotest.(check bool) "faithful deep" true (Occurrence.matches_faithful rs)

let test_discontinuous () =
  (* the paper's pruning example: (1,1) then (2,3) is not a candidate *)
  let rs = [| [ 1, 1 ]; [ 2, 3 ] |] in
  Alcotest.(check bool) "discontinuous" false (Occurrence.matches rs)

let test_iter_chains_enumerates () =
  let rs = [| [ 1, 1; 1, 2 ]; [ 1, 3; 2, 3; 2, 4 ] |] in
  let chains = ref [] in
  let found =
    Occurrence.iter_chains rs (fun c ->
        chains := Array.to_list c :: !chains;
        false)
  in
  Alcotest.(check bool) "no chain accepted" false found;
  Alcotest.(check (list (list (pair int int))))
    "all valid chains enumerated"
    [ [ 1, 1; 1, 3 ]; [ 1, 2; 2, 3 ]; [ 1, 2; 2, 4 ] ]
    (List.rev !chains)

let test_iter_chains_stops_on_accept () =
  let rs = [| [ 1, 1; 1, 2 ]; [ 1, 3; 2, 3 ] |] in
  let count = ref 0 in
  let found =
    Occurrence.iter_chains rs (fun _ ->
        incr count;
        true)
  in
  Alcotest.(check bool) "accepted" true found;
  Alcotest.(check int) "stopped after first" 1 !count

let prop_implementations_agree =
  QCheck2.Test.make ~name:"DFS = faithful Algorithm 1" ~count:5000
    ~print:Gen_helpers.results_print Gen_helpers.results_gen (fun rs ->
      Occurrence.matches rs = Occurrence.matches_faithful rs)

let prop_matches_iff_chain_exists =
  QCheck2.Test.make ~name:"matches <=> a valid chain exists (brute force)" ~count:3000
    ~print:Gen_helpers.results_print Gen_helpers.results_gen (fun rs ->
      (* brute force: try all combinations *)
      let n = Array.length rs in
      let rec brute i prev =
        if i >= n then true
        else
          List.exists (fun (o1, o2) -> (i = 0 || o1 = prev) && brute (i + 1) o2) rs.(i)
      in
      Occurrence.matches rs = (n > 0 && brute 0 (-1)))

let prop_iter_chains_consistent =
  QCheck2.Test.make ~name:"iter_chains finds a chain iff matches" ~count:3000
    ~print:Gen_helpers.results_print Gen_helpers.results_gen (fun rs ->
      let found = Occurrence.iter_chains rs (fun _ -> true) in
      found = Occurrence.matches rs)

let prop_chains_are_valid =
  QCheck2.Test.make ~name:"every enumerated chain satisfies the constraints" ~count:2000
    ~print:Gen_helpers.results_print Gen_helpers.results_gen (fun rs ->
      let ok = ref true in
      ignore
        (Occurrence.iter_chains rs (fun chain ->
             for i = 1 to Array.length chain - 1 do
               if fst chain.(i) <> snd chain.(i - 1) then ok := false
             done;
             Array.iteri (fun i pair -> if not (List.mem pair rs.(i)) then ok := false) chain;
             false));
      !ok)

let () =
  Alcotest.run "occurrence"
    [
      ( "unit",
        [
          Alcotest.test_case "Table 1 chains (Example 2)" `Quick test_table_1_chains;
          Alcotest.test_case "empty cases" `Quick test_empty_cases;
          Alcotest.test_case "backtracking" `Quick test_backtracking_needed;
          Alcotest.test_case "discontinuous occurrences" `Quick test_discontinuous;
          Alcotest.test_case "iter_chains enumerates" `Quick test_iter_chains_enumerates;
          Alcotest.test_case "iter_chains stops on accept" `Quick test_iter_chains_stops_on_accept;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_implementations_agree;
            prop_matches_iff_chain_exists;
            prop_iter_chains_consistent;
            prop_chains_are_valid;
          ] );
    ]
