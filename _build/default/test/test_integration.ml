(* Cross-engine integration tests over realistic generated workloads: the
   predicate engine (every variant), YFilter and Index-Filter must produce
   identical match sets, document after document, and agree with the
   reference evaluator. *)

open Pf_workload

let variants =
  Pf_core.Expr_index.[ Basic; Prefix_covering; Access_predicate; Shared ]

let run_workload ~dtd ~doc_params ~query_params ~ndocs =
  let paths = Xpath_gen.generate dtd query_params in
  let docs = Xml_gen.generate_many dtd doc_params ndocs in
  let engines =
    List.map
      (fun v ->
        let e = Pf_core.Engine.create ~variant:v () in
        List.iter (fun p -> ignore (Pf_core.Engine.add e p)) paths;
        Pf_core.Expr_index.variant_name v, fun d -> Pf_core.Engine.match_document e d)
      variants
  in
  let y = Pf_yfilter.Yfilter.create () in
  List.iter (fun p -> ignore (Pf_yfilter.Yfilter.add y p)) paths;
  let f = Pf_indexfilter.Index_filter.create () in
  List.iter (fun p -> ignore (Pf_indexfilter.Index_filter.add f p)) paths;
  let all =
    engines
    @ [ "yfilter", (fun d -> Pf_yfilter.Yfilter.match_document y d);
        "index-filter", (fun d -> Pf_indexfilter.Index_filter.match_document f d) ]
  in
  let arr = Array.of_list paths in
  List.iteri
    (fun di d ->
      let reference = (snd (List.hd all)) d in
      List.iter
        (fun (name, matcher) ->
          Alcotest.(check (list int))
            (Printf.sprintf "doc %d: %s agrees" di name)
            reference (matcher d))
        (List.tl all);
      (* spot-check against the oracle on the first documents *)
      if di < 2 then begin
        let mset = Hashtbl.create 64 in
        List.iter (fun s -> Hashtbl.replace mset s ()) reference;
        Array.iteri
          (fun sid p ->
            Alcotest.(check bool)
              (Printf.sprintf "doc %d sid %d oracle" di sid)
              (Pf_xpath.Eval.matches p d) (Hashtbl.mem mset sid))
          arr
      end)
    docs

let test_nitf_workload () =
  run_workload ~dtd:(Dtd.nitf_like ()) ~doc_params:Presets.nitf_documents
    ~query_params:{ Xpath_gen.default with Xpath_gen.count = 400 }
    ~ndocs:8

let test_psd_workload () =
  run_workload ~dtd:(Dtd.psd_like ()) ~doc_params:Presets.psd_documents
    ~query_params:{ Xpath_gen.default with Xpath_gen.count = 400; seed = 11 }
    ~ndocs:8

let test_duplicate_workload () =
  run_workload ~dtd:(Dtd.psd_like ()) ~doc_params:Presets.psd_documents
    ~query_params:{ Xpath_gen.default with Xpath_gen.count = 1500; distinct = false; seed = 3 }
    ~ndocs:4

let test_wildcard_heavy_workload () =
  run_workload ~dtd:(Dtd.nitf_like ()) ~doc_params:Presets.nitf_documents
    ~query_params:{ Xpath_gen.default with Xpath_gen.count = 300; wildcard_prob = 0.7; seed = 5 }
    ~ndocs:5

let test_descendant_heavy_workload () =
  run_workload ~dtd:(Dtd.nitf_like ()) ~doc_params:Presets.nitf_documents
    ~query_params:{ Xpath_gen.default with Xpath_gen.count = 300; descendant_prob = 0.7; seed = 6 }
    ~ndocs:5

let test_attr_filter_workload_modes () =
  (* inline vs postponed must agree on a filtered workload, and with yfilter *)
  let dtd = Dtd.nitf_like () in
  let paths =
    Xpath_gen.generate dtd
      { Xpath_gen.default with Xpath_gen.count = 400; filters_per_path = 2; seed = 9 }
  in
  let docs = Xml_gen.generate_many dtd Presets.nitf_documents 6 in
  let inline = Pf_core.Engine.create ~attr_mode:Pf_core.Engine.Inline () in
  let post = Pf_core.Engine.create ~attr_mode:Pf_core.Engine.Postponed () in
  let y = Pf_yfilter.Yfilter.create () in
  List.iter
    (fun p ->
      ignore (Pf_core.Engine.add inline p);
      ignore (Pf_core.Engine.add post p);
      ignore (Pf_yfilter.Yfilter.add y p))
    paths;
  List.iteri
    (fun di d ->
      let mi = Pf_core.Engine.match_document inline d in
      Alcotest.(check (list int)) (Printf.sprintf "doc %d postponed" di) mi
        (Pf_core.Engine.match_document post d);
      Alcotest.(check (list int)) (Printf.sprintf "doc %d yfilter" di) mi
        (Pf_yfilter.Yfilter.match_document y d))
    docs

let test_sax_to_engine_pipeline () =
  (* full pipeline: generate -> serialize -> parse -> filter *)
  let dtd = Dtd.psd_like () in
  let docs = Xml_gen.generate_many dtd Presets.psd_documents 4 in
  let e = Pf_core.Engine.create () in
  let paths = Xpath_gen.generate dtd { Xpath_gen.default with Xpath_gen.count = 200 } in
  List.iter (fun p -> ignore (Pf_core.Engine.add e p)) paths;
  List.iter
    (fun d ->
      let via_string = Pf_core.Engine.match_string e (Pf_xml.Print.to_string d) in
      Alcotest.(check (list int)) "tree and string agree" (Pf_core.Engine.match_document e d)
        via_string)
    docs

let () =
  Alcotest.run "integration"
    [
      ( "cross-engine",
        [
          Alcotest.test_case "NITF workload" `Slow test_nitf_workload;
          Alcotest.test_case "PSD workload" `Slow test_psd_workload;
          Alcotest.test_case "duplicate workload" `Slow test_duplicate_workload;
          Alcotest.test_case "wildcard-heavy" `Slow test_wildcard_heavy_workload;
          Alcotest.test_case "descendant-heavy" `Slow test_descendant_heavy_workload;
          Alcotest.test_case "attribute filters, all modes" `Slow test_attr_filter_workload_modes;
          Alcotest.test_case "sax-to-engine pipeline" `Quick test_sax_to_engine_pipeline;
        ] );
    ]
