(* Regression corpus: curated (expression, document, expected) triples, one
   distinct behavior each, run against the reference evaluator AND all
   engines/variants. Complements the randomized properties with cases that
   pin down specific semantics decisions. *)

type case = {
  name : string;
  expr : string;
  doc : string;
  expected : bool;
}

let c name expr doc expected = { name; expr; doc; expected }

let corpus =
  [
    (* --- absolute anchoring --- *)
    c "root tag must match" "/a" "<a/>" true;
    c "root tag mismatch" "/b" "<a><b/></a>" false;
    c "absolute needs position 1" "/b" "<a><b/></a>" false;
    c "leading // reaches any depth" "//b" "<a><x><b/></x></a>" true;
    c "leading // includes the root" "//a" "<a/>" true;
    c "deep absolute chain" "/a/b/c/d" "<a><b><c><d/></c></b></a>" true;
    c "absolute stops at wrong branch" "/a/b/c" "<a><x><c/></x><b/></a>" false;
    (* --- relative matching anywhere --- *)
    c "relative matches at root" "a" "<a/>" true;
    c "relative matches deep" "c" "<a><b><c/></b></a>" true;
    c "relative pair mid-document" "b/c" "<a><b><c/></b></a>" true;
    c "relative pair order matters" "c/b" "<a><b><c/></b></a>" false;
    c "relative pair must be adjacent" "a/c" "<a><b><c/></b></a>" false;
    (* --- selection vs leaf: inner nodes are selectable --- *)
    c "match need not reach a leaf" "/a/b" "<a><b><c><d/></c></b></a>" true;
    c "prefix of a long path" "/a" "<a><b><c/></b></a>" true;
    (* --- wildcards --- *)
    c "wildcard matches any tag" "/a/*" "<a><z/></a>" true;
    c "wildcard requires presence" "/a/*" "<a/>" false;
    c "wildcard chain exact depth" "/*/*/*" "<a><b><c/></b></a>" true;
    c "wildcard chain too deep" "/*/*/*/*" "<a><b><c/></b></a>" false;
    c "wildcard between tags" "/a/*/c" "<a><b><c/></b></a>" true;
    c "wildcard between tags mismatch" "/a/*/c" "<a><b><d/></b></a>" false;
    c "trailing wildcards need depth" "a/*/*" "<a><b/></a>" false;
    c "trailing wildcards satisfied" "a/*/*" "<a><b><c/></b></a>" true;
    c "relative all-wildcards is length" "*/*" "<a><b/></a>" true;
    c "length not satisfied" "*/*/*" "<a><b/></a>" false;
    (* --- descendant operator --- *)
    c "descendant includes child" "a//b" "<a><b/></a>" true;
    c "descendant skips levels" "a//d" "<a><b><c><d/></c></b></a>" true;
    c "descendant direction" "d//a" "<a><d/></a>" false;
    c "descendant then child" "/a//c/d" "<a><b><c><d/></c></b></a>" true;
    c "descendant then child broken" "/a//c/d" "<a><b><c/><d/></b></a>" false;
    c "double descendant" "//b//d" "<a><b><c><d/></c></b></a>" true;
    c "descendant after wildcard" "/a/*//e" "<a><b><c><e/></c></b></a>" true;
    c "descendant after wildcard at distance 1" "a/*//d" "<a><b><d/></b></a>" true;
    c "descendant distance with wildcard too shallow" "a/*//d" "<a><d/></a>" false;
    (* --- repeated tags / occurrence discrimination --- *)
    c "same tag nested" "/a/a" "<a><a/></a>" true;
    c "same tag three deep" "a/a/a" "<a><a><a/></a></a>" true;
    c "same tag not present twice" "a/a" "<a><b/></a>" false;
    c "Example 2 positive" "a//b/c" "<a><b><c><a><b><c/></b></a></c></b></a>" true;
    c "Example 2 negative" "c//b//a" "<a><b><c><a><b><c/></b></a></c></b></a>" false;
    c "occurrence chain must connect" "b/b" "<a><b/><b/></a>" false;
    c "occurrence chain connects" "b/b" "<a><b><b/></b></a>" true;
    (* --- branching documents --- *)
    c "one path suffices" "/a/c" "<a><b/><c/></a>" true;
    c "steps may not span sibling branches" "/a/b/c" "<a><b/><c/></a>" false;
    c "deep branch found among siblings" "//e" "<a><b/><c/><d><e/></d></a>" true;
    (* --- attribute filters --- *)
    c "attr equality" "b[@x = 3]" "<a><b x=\"3\"/></a>" true;
    c "attr equality fails" "b[@x = 3]" "<a><b x=\"4\"/></a>" false;
    c "attr missing" "b[@x = 3]" "<a><b/></a>" false;
    c "attr ge" "b[@x >= 3]" "<a><b x=\"7\"/></a>" true;
    c "attr lt" "b[@x < 3]" "<a><b x=\"2\"/></a>" true;
    c "attr ne" "b[@x != 3]" "<a><b x=\"2\"/></a>" true;
    c "attr ne equal value" "b[@x != 3]" "<a><b x=\"3\"/></a>" false;
    c "attr on inner step" "/a[@k = 1]/b" "<a k=\"1\"><b/></a>" true;
    c "attr on inner step fails" "/a[@k = 1]/b" "<a k=\"2\"><b/></a>" false;
    c "two filters conjunction" "b[@x = 1][@y = 2]" "<a><b x=\"1\" y=\"2\"/></a>" true;
    c "two filters one fails" "b[@x = 1][@y = 2]" "<a><b x=\"1\" y=\"3\"/></a>" false;
    c "string attr" "b[@s = \"hi\"]" "<a><b s=\"hi\"/></a>" true;
    c "numeric filter on non-numeric attr" "b[@s = 3]" "<a><b s=\"three\"/></a>" false;
    c "filter satisfied on other occurrence" "b[@x = 1]" "<a><b x=\"2\"/><b x=\"1\"/></a>" true;
    c "structure and filter must co-locate" "/a/b[@x = 1]/c"
      "<a><b x=\"2\"><c/></b><b x=\"1\"/></a>" false;
    (* --- text() filters --- *)
    c "text equality" "b[text() = 5]" "<a><b>5</b></a>" true;
    c "text comparison" "b[text() > 4]" "<a><b>5</b></a>" true;
    c "text absent" "b[text() = 5]" "<a><b/></a>" false;
    c "text string" "b[text() = \"ok\"]" "<a><b>ok</b></a>" true;
    c "text with attr" "b[@x = 1][text() = 5]" "<a><b x=\"1\">5</b></a>" true;
    (* --- nested path filters --- *)
    c "simple existence" "a[b]" "<a><b/></a>" true;
    c "existence fails" "a[b]" "<a><c/></a>" false;
    c "nested chain" "a[b/c]" "<a><b><c/></b></a>" true;
    c "nested chain not sibling" "a[b/c]" "<a><b/><c/></a>" false;
    c "nested then continue" "/a[b]/c" "<a><b/><c/></a>" true;
    c "nested descendant" "a[//d]" "<a><b><c><d/></c></b></a>" true;
    c "nested on non-root step" "/a/b[c]/d" "<a><b><c/><d/></b></a>" true;
    c "nested must share the node" "/a/b[c]/d" "<a><b><c/></b><b><d/></b></a>" false;
    c "same-path witness allowed" "a[b/c]/b/c" "<a><b><c/></b></a>" true;
    c "two-level nesting" "a[b[c]]" "<a><b><c/></b></a>" true;
    c "two-level nesting fails inside" "a[b[c]]" "<a><b><d/></b></a>" false;
    c "paper Figure 3 expression" "/a[*/c[d]/e]//c[d]/e"
      "<a><x><c><d/><e/></c></x><c><d/><e/></c></a>" true;
    c "nested with attr inside" "a[b[@x = 1]]" "<a><b x=\"1\"/></a>" true;
    c "nested wildcard step" "a[*/d]" "<a><c><d/></c></a>" true;
    (* --- whitespace/structure robustness --- *)
    c "whitespace between elements" "/a/b" "<a>\n  <b/>\n</a>" true;
    c "attributes ignored structurally" "/a/b" "<a x=\"1\"><b y=\"2\"/></a>" true;
    c "comment does not break path" "/a/b" "<a><!-- note --><b/></a>" true;
    c "cdata text content" "b[text() = \"<raw>\"]" "<a><b><![CDATA[<raw>]]></b></a>" true;
    c "entity in attribute" "b[@s = \"a&b\"]" "<a><b s=\"a&amp;b\"/></a>" true;
  ]

let engines_for (expr : Pf_xpath.Ast.path) =
  let mk variant attr_mode dedup =
    let name =
      Printf.sprintf "%s%s%s"
        (Pf_core.Expr_index.variant_name variant)
        (match attr_mode with Pf_core.Engine.Inline -> "" | Pf_core.Engine.Postponed -> "+sp")
        (if dedup then "+dedup" else "")
    in
    ( name,
      fun () ->
        let e = Pf_core.Engine.create ~variant ~attr_mode ~dedup_paths:dedup () in
        let sid = Pf_core.Engine.add e expr in
        fun doc -> List.mem sid (Pf_core.Engine.match_document e doc) )
  in
  let ours =
    [
      mk Pf_core.Expr_index.Basic Pf_core.Engine.Inline false;
      mk Pf_core.Expr_index.Prefix_covering Pf_core.Engine.Inline false;
      mk Pf_core.Expr_index.Access_predicate Pf_core.Engine.Inline false;
      mk Pf_core.Expr_index.Access_predicate Pf_core.Engine.Postponed false;
      mk Pf_core.Expr_index.Shared Pf_core.Engine.Inline true;
    ]
  in
  if Pf_xpath.Ast.is_single_path expr then
    ours
    @ [
        ( "yfilter",
          fun () ->
            let y = Pf_yfilter.Yfilter.create () in
            let sid = Pf_yfilter.Yfilter.add y expr in
            fun doc -> List.mem sid (Pf_yfilter.Yfilter.match_document y doc) );
        ( "index-filter",
          fun () ->
            let f = Pf_indexfilter.Index_filter.create () in
            let sid = Pf_indexfilter.Index_filter.add f expr in
            fun doc -> List.mem sid (Pf_indexfilter.Index_filter.match_document f doc) );
      ]
  else ours

let run_case case () =
  let expr = Pf_xpath.Parser.parse case.expr in
  let doc = Pf_xml.Sax.parse_document case.doc in
  Alcotest.(check bool)
    (Printf.sprintf "oracle: %s on %s" case.expr case.doc)
    case.expected
    (Pf_xpath.Eval.matches expr doc);
  List.iter
    (fun (name, make) ->
      let matcher = make () in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s on %s" name case.expr case.doc)
        case.expected (matcher doc))
    (engines_for expr)

let () =
  Alcotest.run "corpus"
    [
      ( "cases",
        List.map (fun case -> Alcotest.test_case case.name `Quick (run_case case)) corpus );
    ]
