bin/pf_filter.ml: Arg Cmd Cmdliner Format Hashtbl In_channel List Pf_bench Pf_core Pf_xml Pf_xpath Printf String Term
