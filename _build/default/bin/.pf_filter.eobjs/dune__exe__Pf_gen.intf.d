bin/pf_gen.mli:
