bin/pf_filter.mli:
