bin/pf_gen.ml: Arg Cmd Cmdliner Filename List Pf_workload Pf_xml Pf_xpath Printf Sys Term
