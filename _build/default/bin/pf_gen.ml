(* pf-gen: generate XPath expression workloads and XML documents from the
   built-in DTD models (the paper's workload setup, Section 6.1). *)

open Cmdliner

let get_dtd name =
  match Pf_workload.Dtd.by_name name with
  | Some d -> d
  | None ->
    Printf.eprintf "unknown DTD %S (expected nitf or psd)\n" name;
    exit 2

let gen_queries dtd_name count length wildcard descendant distinct filters nested seed out =
  let dtd = get_dtd dtd_name in
  let params =
    {
      Pf_workload.Xpath_gen.count;
      max_depth = length;
      wildcard_prob = wildcard;
      descendant_prob = descendant;
      distinct;
      filters_per_path = filters;
      nested_prob = nested;
      seed;
    }
  in
  let paths = Pf_workload.Xpath_gen.generate dtd params in
  let oc = match out with None -> stdout | Some f -> open_out f in
  List.iter (fun p -> output_string oc (Pf_xpath.Parser.to_string p ^ "\n")) paths;
  if out <> None then close_out oc;
  Printf.eprintf "generated %d expressions (%d distinct)\n" (List.length paths)
    (Pf_workload.Xpath_gen.distinct_count paths)

let gen_docs dtd_name count levels fanout attr_prob skew text_prob seed out_dir =
  let dtd = get_dtd dtd_name in
  let preset = Pf_workload.Presets.documents_for dtd_name in
  let params =
    {
      Pf_workload.Xml_gen.max_levels = (match levels with Some l -> l | None -> preset.Pf_workload.Xml_gen.max_levels);
      max_fanout = (match fanout with Some f -> f | None -> preset.Pf_workload.Xml_gen.max_fanout);
      attr_prob;
      skew = (match skew with Some s -> s | None -> preset.Pf_workload.Xml_gen.skew);
      text_prob;
      seed;
    }
  in
  (match Sys.is_directory out_dir with
  | true -> ()
  | false ->
    Printf.eprintf "%s is not a directory\n" out_dir;
    exit 2
  | exception Sys_error _ -> Sys.mkdir out_dir 0o755);
  let docs = Pf_workload.Xml_gen.generate_many dtd params count in
  List.iteri
    (fun i doc ->
      Pf_xml.Print.to_file (Filename.concat out_dir (Printf.sprintf "%s-%04d.xml" dtd_name i)) doc)
    docs;
  let tags = List.fold_left (fun acc d -> acc + Pf_xml.Tree.count_elements d) 0 docs in
  Printf.eprintf "wrote %d documents to %s (avg %d tags)\n" count out_dir
    (tags / max 1 count)

let dtd_arg =
  Arg.(value & opt string "nitf" & info [ "d"; "dtd" ] ~docv:"DTD" ~doc:"DTD model: nitf or psd.")

let seed_arg = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let queries_cmd =
  let count = Arg.(value & opt int 1000 & info [ "n" ] ~docv:"N" ~doc:"Number of expressions.") in
  let length = Arg.(value & opt int 6 & info [ "L"; "length" ] ~docv:"N" ~doc:"Maximum expression length.") in
  let wildcard = Arg.(value & opt float 0.2 & info [ "W"; "wildcard" ] ~docv:"P" ~doc:"Wildcard probability.") in
  let descendant = Arg.(value & opt float 0.2 & info [ "DO"; "descendant" ] ~docv:"P" ~doc:"Descendant probability.") in
  let distinct = Arg.(value & opt bool true & info [ "D"; "distinct" ] ~docv:"BOOL" ~doc:"Deduplicate expressions.") in
  let filters = Arg.(value & opt int 0 & info [ "filters" ] ~docv:"N" ~doc:"Attribute filters per expression.") in
  let nested = Arg.(value & opt float 0. & info [ "nested" ] ~docv:"P" ~doc:"Nested path filter probability.") in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).") in
  let doc = "generate an XPath expression workload" in
  Cmd.v (Cmd.info "queries" ~doc)
    Term.(
      const gen_queries $ dtd_arg $ count $ length $ wildcard $ descendant $ distinct
      $ filters $ nested $ seed_arg $ out)

let docs_cmd =
  let count = Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc:"Number of documents.") in
  let levels = Arg.(value & opt (some int) None & info [ "levels" ] ~docv:"N" ~doc:"Maximum document depth (default: DTD preset).") in
  let fanout = Arg.(value & opt (some int) None & info [ "fanout" ] ~docv:"N" ~doc:"Maximum children per element (default: DTD preset).") in
  let attr_prob = Arg.(value & opt float 0.6 & info [ "attrs" ] ~docv:"P" ~doc:"Attribute emission probability.") in
  let skew = Arg.(value & opt (some float) None & info [ "skew" ] ~docv:"P" ~doc:"Child-selection skew (default: DTD preset).") in
  let text_prob = Arg.(value & opt float 0. & info [ "text" ] ~docv:"P" ~doc:"Probability a leaf carries numeric text content.") in
  let out_dir = Arg.(value & opt string "generated-docs" & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.") in
  let doc = "generate XML documents" in
  Cmd.v (Cmd.info "docs" ~doc)
    Term.(const gen_docs $ dtd_arg $ count $ levels $ fanout $ attr_prob $ skew $ text_prob $ seed_arg $ out_dir)

let cmd =
  let doc = "generate filtering workloads (Diao-style queries, IBM-generator-style documents)" in
  Cmd.group (Cmd.info "pf-gen" ~version:"1.0.0" ~doc) [ queries_cmd; docs_cmd ]

let () = exit (Cmd.eval cmd)
