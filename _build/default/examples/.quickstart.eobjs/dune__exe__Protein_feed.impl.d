examples/protein_feed.ml: List Pf_bench Pf_core Pf_workload Printf
