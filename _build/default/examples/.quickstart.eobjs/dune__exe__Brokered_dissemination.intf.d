examples/brokered_dissemination.mli:
