examples/subscription_churn.mli:
