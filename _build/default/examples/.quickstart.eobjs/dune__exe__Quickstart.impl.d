examples/quickstart.ml: Format List Pf_core Pf_xml Printf
