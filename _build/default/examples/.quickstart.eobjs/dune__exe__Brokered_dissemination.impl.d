examples/brokered_dissemination.ml: Array Format List Pf_bench Pf_broker Pf_workload Pf_xpath Printf Random
