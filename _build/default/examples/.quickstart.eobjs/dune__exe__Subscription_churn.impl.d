examples/subscription_churn.ml: Array List Pf_bench Pf_core Pf_workload Pf_xml Printf Random
