examples/quickstart.mli:
