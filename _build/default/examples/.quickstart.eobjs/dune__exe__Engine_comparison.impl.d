examples/engine_comparison.ml: Array List Pf_bench Pf_workload Printf Sys
