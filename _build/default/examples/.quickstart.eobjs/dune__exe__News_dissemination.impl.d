examples/news_dissemination.ml: Hashtbl List Pf_bench Pf_core Pf_workload Printf
