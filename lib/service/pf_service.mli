(** Domain-parallel filtering service with two parallelism modes.

    The paper frames filtering as a dissemination problem: millions of
    standing XPath subscriptions, a stream of incoming documents, and the
    requirement to keep up with the stream. Matching one document never
    touches another document's state, so the work can be split two ways,
    and the service implements both over OCaml 5 domains:

    - {e document-replicated} ({!mode} [Doc], the default): every worker
      replica holds every subscription; each document is matched by
      exactly one worker. Throughput parallelism — the stream is sharded.
    - {e expression-sharded} ({!mode} [Expr]): the subscription table is
      partitioned across replicas by sid ([owner sid = sid mod N]); every
      document is broadcast to all workers, each matches it against its
      shard, and the last worker to finish merges the per-shard sorted
      sid lists and delivers. Latency parallelism — each replica's
      working set (index size, candidate sets) is N times smaller, at the
      cost of touching the document N times.

    A service owns [N] worker domains, each holding a private replica of
    one engine (any {!Pf_intf.FILTER}), plus one primary replica used to
    validate subscriptions (in [Expr] mode the primary also keeps the
    full table so validation and sid assignment stay mode-independent).
    Documents are submitted into bounded queues (submission blocks when
    full — backpressure, not unbounded buffering) and workers dequeue
    them in batches, taking the service lock once per batch, not once per
    document. In [Expr] mode a worker buffers the merges it is
    responsible for and performs delivery after its whole batch is
    matched, outside the lock.

    Within a dequeued batch, consecutive jobs that share an epoch and a
    payload kind (all parsed trees, or all raw text) and carry no trace
    context are matched through one engine
    {!Pf_intf.FILTER.match_batch} / [match_string_batch] call per group
    (groups of at least two; single jobs and traced jobs keep the
    per-document path). The replica state is constant across such a group
    — same epoch means no catch-up between its documents — so grouping is
    observationally the per-job loop, while a batching engine (the
    predicate engine in [Tree] ingest) amortizes its cache-flat predicate
    stage across the group. Delivery, latency accounting and (in [Expr]
    mode) per-shard merge countdowns stay per-job.

    {2 Epoch semantics}

    Subscription changes never race a matching engine. [subscribe] and
    [unsubscribe] append to an ordered update log and apply the change
    synchronously to the primary replica only; each submitted document
    carries the log length at submission time as its {e epoch}. A worker
    applies log entries to its own replica — at batch boundaries, between
    documents — until its replica has seen exactly the updates preceding
    the document it is about to match. Hence:

    - a document observes precisely the subscriptions submitted before it,
      no matter which worker matches it or how far that worker lags;
    - results are {e deterministic}: for any interleaving of
      subscribe/remove/submit, every document's match set is identical to
      a sequential engine fed the same operation order, in either mode
      and at any domain count (the property the test suite checks for 1,
      2 and 4 domains in both modes);
    - sids agree across replicas because {!Pf_intf.FILTER} assigns them
      densely in registration order and every replica applies the same
      log prefix. In [Expr] mode this is also what makes the partition
      coordination-free: the log's j-th [Add] entry carries global sid j,
      so every worker derives ownership (and its own dense local sids,
      whose local-to-global map is strictly increasing — sorted local
      match lists translate to sorted global ones) from the log alone.

    Engines are never shared between domains, so they need no locks —
    the service's only synchronization is the queue mutex plus, in [Expr]
    mode, one atomic countdown per in-flight document deciding which
    worker merges (the merge reads the full per-shard array, so the
    result is independent of finish order).

    Engine-internal state composes for free under this design. In
    particular a path-result cache ({!Pf_core.Engine.create}
    [~path_cache:true]) needs no service-side wiring: each replica's
    engine owns a private cache ([Doc] replicas warm theirs on their
    share of the stream, [Expr] shards cache shard-local sid sets the
    merge combines like any other results), and because subscription
    changes reach a replica through the epoch-ordered log, each engine
    bumps its own cache epoch at exactly the log position the sequential
    engine would — sequential equivalence is preserved verbatim. *)

type t

type mode =
  | Doc  (** document-replicated: full table per worker, one worker per doc *)
  | Expr  (** expression-sharded: table split by [sid mod N], doc broadcast *)

val mode_name : mode -> string
(** ["doc"] or ["expr"]. *)

val mode_of_string : string -> mode option
(** Accepts ["doc"]/["replicated"] and ["expr"]/["sharded"]. *)

val create :
  ?mode:mode ->
  ?domains:int ->
  ?queue_capacity:int ->
  ?batch:int ->
  Pf_intf.filter ->
  t
(** [create (module F)] starts the worker domains. [mode] (default
    [Doc]) selects the parallelism strategy; [domains] (default 1) is the
    number of engine replicas / worker domains; [queue_capacity] (default
    [4 * domains * batch]) bounds each work queue; [batch] (default 8) is
    the maximum number of documents a worker dequeues at once. Raises
    [Invalid_argument] for non-positive parameters. *)

val domains : t -> int
val mode : t -> mode

val subscribe : t -> Pf_xpath.Ast.path -> int
(** Register an expression; returns its sid (the engine's dense sid —
    identical on every replica, global across shards in [Expr] mode).
    Takes effect for every document submitted afterwards. Raises
    {!Pf_intf.Unsupported} if the engine rejects the expression (the
    service is then unchanged). *)

val subscribe_string : t -> string -> int
(** Parse then {!subscribe}. *)

val unsubscribe : t -> int -> bool
(** Remove a subscription. Returns [false] for unknown or already-removed
    sids. Takes effect for every document submitted afterwards. *)

val subscription_count : t -> int
(** Subscriptions accepted so far (including removed ones — sids are
    dense and never reused). *)

val submit : ?trace:Pf_obs.Trace.ctx -> t -> Pf_xml.Tree.t -> (int list -> unit) -> unit
(** [submit t doc deliver] enqueues a document; [deliver] receives the
    sorted sids of the matching subscriptions. Blocks while the queue is
    full. [deliver] runs on a worker domain (in [Expr] mode, on whichever
    worker finished the document last): it must be quick, must not call
    back into [t], and must synchronize any shared state it touches
    itself. Raises [Invalid_argument] after {!shutdown}.

    [trace] attaches a per-document trace context: worker domains record
    scan/match/occurrence spans against it (in [Expr] mode from every
    worker, stitched by trace id), the delivering worker adds
    merge/deliver spans and calls {!Pf_obs.Trace.finish} — the caller
    must not finish the context itself. *)

val submit_raw : ?trace:Pf_obs.Trace.ctx -> t -> string -> (int list -> unit) -> unit
(** Like {!submit} but the document is raw XML text, handed to the
    replica engine's [match_string] — a streaming engine
    ({!Pf_core.Engine.filter} [~stream:Stream]) then matches it straight
    off the SAX event stream, so the document is never parsed into a tree
    anywhere in the pipeline. Malformed XML surfaces like any worker-side
    matching exception: the document delivers [] and the first
    {!Pf_xml.Sax.Parse_error} re-raises at {!shutdown}. *)

val filter_batch : t -> Pf_xml.Tree.t list -> int list list
(** Submit every document, wait for all results, and return the match
    sets in input order. Equivalent to a {!submit} per document plus a
    barrier; documents still spread over all workers. *)

val filter_batch_raw : t -> string list -> int list list
(** {!filter_batch} over raw XML text — a {!submit_raw} per document plus
    a barrier. *)

val drain : t -> unit
(** Block until every document submitted so far has been matched and
    delivered. *)

val shutdown : t -> unit
(** Drain in-flight documents, stop the workers and join their domains.
    Idempotent, and safe to call from several threads concurrently: one
    caller joins the workers, the others block until it is done, so every
    call returns only once the workers have exited. After shutdown,
    {!submit} and {!subscribe} raise; metrics remain readable. *)

(** {1 Metrics} *)

val metrics : t -> Pf_obs.Registry.t
(** The service's own registry (scope ["service"]): counters
    ["documents"] (matched and delivered — counted once per document in
    either mode), ["batched_documents"] (documents that went through a
    grouped engine [match_batch] call; in [Expr] mode each worker's shard
    match counts, so the counter can exceed ["documents"]), ["batches"]
    (worker dequeues), ["updates_applied"] (log entries applied across
    replicas, primary excluded), ["subscribes"], ["unsubscribes"],
    ["submit_waits"] (submissions that blocked on a full queue),
    ["merges"] (expression-sharded result merges); gauges ["domains"] and
    ["queue_high_water"]. *)

val engine_metrics : t -> Pf_obs.Registry.t
(** A fresh snapshot (scope ["service-engines"], unlisted) merging the
    per-worker engine registries plus the primary's: counters, histograms
    and spans sum across replicas, gauges keep the maximum — see
    {!Pf_obs.Registry.merge}. Call only while the workers are quiescent
    (after {!drain} or {!shutdown}) for exact totals. *)
