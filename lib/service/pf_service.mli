(** Domain-parallel sharded filtering service.

    The paper frames filtering as a dissemination problem: millions of
    standing XPath subscriptions, a stream of incoming documents, and the
    requirement to keep up with the stream. Matching one document never
    touches another document's state, so the natural scale-out is to
    {e replicate the engine and shard the stream by document} — the same
    replication the FPGA filtering literature applies in hardware, here
    over OCaml 5 domains.

    A service owns [N] worker domains, each holding a private replica of
    one engine (any {!Pf_intf.FILTER}), plus one primary replica used to
    validate subscriptions. Documents are submitted into a bounded queue
    (submission blocks when the queue is full — backpressure, not
    unbounded buffering) and workers dequeue them in batches. Results are
    delivered through per-document callbacks, on the worker domain.

    {2 Epoch semantics}

    Subscription changes never race a matching engine. [subscribe] and
    [unsubscribe] append to an ordered update log and apply the change
    synchronously to the primary replica only; each submitted document
    carries the log length at submission time as its {e epoch}. A worker
    applies log entries to its own replica — at batch boundaries, between
    documents — until its replica has seen exactly the updates preceding
    the document it is about to match. Hence:

    - a document observes precisely the subscriptions submitted before it,
      no matter which worker matches it or how far that worker lags;
    - results are {e deterministic}: for any interleaving of
      subscribe/remove/submit, every document's match set is identical to
      a sequential engine fed the same operation order (the property the
      test suite checks for 1, 2 and 4 domains);
    - sids agree across replicas because {!Pf_intf.FILTER} assigns them
      densely in registration order and every replica applies the same
      log prefix.

    Engines are never shared between domains, so they need no locks —
    the service's only synchronization is the queue mutex. *)

type t

val create :
  ?domains:int -> ?queue_capacity:int -> ?batch:int -> Pf_intf.filter -> t
(** [create (module F)] starts the worker domains. [domains] (default 1)
    is the number of engine replicas / worker domains; [queue_capacity]
    (default [4 * domains * batch]) bounds the work queue; [batch]
    (default 8) is the maximum number of documents a worker dequeues at
    once. Raises [Invalid_argument] for non-positive parameters. *)

val domains : t -> int

val subscribe : t -> Pf_xpath.Ast.path -> int
(** Register an expression; returns its sid (the engine's dense sid —
    identical on every replica). Takes effect for every document
    submitted afterwards. Raises {!Pf_intf.Unsupported} if the engine
    rejects the expression (the service is then unchanged). *)

val subscribe_string : t -> string -> int
(** Parse then {!subscribe}. *)

val unsubscribe : t -> int -> bool
(** Remove a subscription. Returns [false] for unknown or already-removed
    sids. Takes effect for every document submitted afterwards. *)

val subscription_count : t -> int
(** Subscriptions accepted so far (including removed ones — sids are
    dense and never reused). *)

val submit : t -> Pf_xml.Tree.t -> (int list -> unit) -> unit
(** [submit t doc deliver] enqueues a document; [deliver] receives the
    sorted sids of the matching subscriptions. Blocks while the queue is
    full. [deliver] runs on a worker domain: it must be quick, must not
    call back into [t], and must synchronize any shared state it touches
    itself. Raises [Invalid_argument] after {!shutdown}. *)

val filter_batch : t -> Pf_xml.Tree.t list -> int list list
(** Submit every document, wait for all results, and return the match
    sets in input order. Equivalent to a {!submit} per document plus a
    barrier; documents still spread over all workers. *)

val drain : t -> unit
(** Block until every document submitted so far has been matched and
    delivered. *)

val shutdown : t -> unit
(** Drain in-flight documents, stop the workers and join their domains.
    Idempotent, and safe to call from several threads concurrently: one
    caller joins the workers, the others block until it is done, so every
    call returns only once the workers have exited. After shutdown,
    {!submit} and {!subscribe} raise; metrics remain readable. *)

(** {1 Metrics} *)

val metrics : t -> Pf_obs.Registry.t
(** The service's own registry (scope ["service"]): counters
    ["documents"] (matched and delivered), ["batches"] (worker dequeues),
    ["updates_applied"] (log entries applied across replicas, primary
    excluded), ["subscribes"], ["unsubscribes"], ["submit_waits"]
    (submissions that blocked on a full queue); gauges ["domains"] and
    ["queue_high_water"]. *)

val engine_metrics : t -> Pf_obs.Registry.t
(** A fresh snapshot (scope ["service-engines"], unlisted) merging the
    per-worker engine registries plus the primary's: counters, histograms
    and spans sum across replicas, gauges keep the maximum — see
    {!Pf_obs.Registry.merge}. Call only while the workers are quiescent
    (after {!drain} or {!shutdown}) for exact totals. *)
