(* Domain-parallel sharded filtering: N worker domains, each with a private
   engine replica, pulling document batches from one bounded queue.

   Concurrency design, in one paragraph: engines are replicated, never
   shared, so they stay lock-free internally; the only shared mutable state
   is the service record below, and every field of it is read and written
   under [lock]. Subscription changes go into an append-only update log and
   are applied to the primary replica immediately (validation + sid
   assignment) and to each worker's replica lazily, between documents, up
   to exactly the log prefix a document saw when it was submitted — so a
   worker never matches against a replica that is ahead of or behind the
   document's epoch, and match sets are deterministic regardless of the
   number of domains. *)

type update = Add of Pf_xpath.Ast.path | Remove of int

type job = {
  doc : Pf_xml.Tree.t;
  epoch : int;  (* update-log length at submission *)
  deliver : int list -> unit;
}

(* An engine instance packed with its operations; the existential keeps the
   service polymorphic in the engine's representation type. *)
type replica = Replica : (module Pf_intf.FILTER with type t = 'a) * 'a -> replica

type metrics = {
  registry : Pf_obs.Registry.t;
  documents : Pf_obs.Counter.t;
  batches : Pf_obs.Counter.t;
  updates_applied : Pf_obs.Counter.t;
  subscribes : Pf_obs.Counter.t;
  unsubscribes : Pf_obs.Counter.t;
  submit_waits : Pf_obs.Counter.t;
  domains_gauge : Pf_obs.Gauge.t;
  queue_high_water : Pf_obs.Gauge.t;
}

let make_metrics () =
  let registry = Pf_obs.Registry.create "service" in
  {
    registry;
    documents =
      Pf_obs.Counter.make ~registry "documents" ~help:"documents matched and delivered";
    batches = Pf_obs.Counter.make ~registry "batches" ~help:"worker batch dequeues";
    updates_applied =
      Pf_obs.Counter.make ~registry "updates_applied"
        ~help:"subscription log entries applied to worker replicas";
    subscribes = Pf_obs.Counter.make ~registry "subscribes" ~help:"subscriptions accepted";
    unsubscribes =
      Pf_obs.Counter.make ~registry "unsubscribes" ~help:"subscriptions removed";
    submit_waits =
      Pf_obs.Counter.make ~registry "submit_waits"
        ~help:"submissions that blocked on a full queue (backpressure)";
    domains_gauge = Pf_obs.Gauge.make ~registry "domains" ~help:"worker domains";
    queue_high_water =
      Pf_obs.Gauge.make ~registry "queue_high_water" ~help:"maximum queue depth seen";
  }

type t = {
  lock : Mutex.t;
  not_empty : Condition.t;  (* workers wait here for documents *)
  not_full : Condition.t;  (* submitters wait here for queue space *)
  idle : Condition.t;  (* drainers wait here for quiescence; late shutdown
                          callers wait here for the joining one *)
  queue : job Queue.t;
  capacity : int;
  batch : int;
  n_domains : int;
  mutable updates : update array;  (* append-only log, grown under lock *)
  mutable n_updates : int;
  mutable n_subs : int;
  mutable in_flight : int;  (* dequeued, not yet delivered *)
  mutable stopping : bool;
  mutable stopped : bool;
  mutable failure : exn option;  (* first worker-side exception, re-raised at shutdown *)
  primary : replica;
  replica_registries : Pf_obs.Registry.t list;  (* primary first, then workers *)
  mutable workers : unit Domain.t array;
  m : metrics;
}

let log_update t u =
  if t.n_updates >= Array.length t.updates then begin
    let bigger = Array.make (max 16 (2 * Array.length t.updates)) u in
    Array.blit t.updates 0 bigger 0 t.n_updates;
    t.updates <- bigger
  end;
  t.updates.(t.n_updates) <- u;
  t.n_updates <- t.n_updates + 1

(* ------------------------------------------------------------------ *)
(* Worker loop *)

let worker t r =
  match r with
  | Replica ((module F), inst) ->
    (* log entries already applied to this replica; grows monotonically *)
    let applied = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock t.lock;
      while Queue.is_empty t.queue && not t.stopping do
        Condition.wait t.not_empty t.lock
      done;
      if Queue.is_empty t.queue then begin
        (* stopping, and the queue is drained: exit *)
        running := false;
        Mutex.unlock t.lock
      end
      else begin
        let n = min t.batch (Queue.length t.queue) in
        (* explicit pops: the batch must be in FIFO order (Array.init does
           not guarantee evaluation order) for the epoch bound below *)
        let jobs = Array.make n (Queue.pop t.queue) in
        for i = 1 to n - 1 do
          jobs.(i) <- Queue.pop t.queue
        done;
        t.in_flight <- t.in_flight + n;
        (* snapshot the log slice this batch needs: epochs are nondecreasing
           in queue order, so the last job bounds them all *)
        let base = !applied in
        let upto = max base jobs.(n - 1).epoch in
        let pending = Array.sub t.updates base (upto - base) in
        Condition.broadcast t.not_full;
        Mutex.unlock t.lock;
        let first_error = ref None in
        Array.iter
          (fun job ->
            try
              (* batch boundary: catch the replica up to this document's
                 epoch before matching — never further *)
              while !applied < job.epoch do
                (match pending.(!applied - base) with
                | Add p -> ignore (F.add inst p)
                | Remove sid -> ignore (F.remove inst sid));
                incr applied
              done;
              job.deliver (F.match_document inst job.doc)
            with e ->
              if !first_error = None then first_error := Some e;
              (* deliver something so waiters (filter_batch, drain) never
                 hang; the exception resurfaces at shutdown *)
              (try job.deliver [] with _ -> ()))
          jobs;
        Mutex.lock t.lock;
        t.in_flight <- t.in_flight - n;
        Pf_obs.Counter.add t.m.documents n;
        Pf_obs.Counter.incr t.m.batches;
        Pf_obs.Counter.add t.m.updates_applied (!applied - base);
        (match !first_error with
        | Some e when t.failure = None -> t.failure <- Some e
        | _ -> ());
        if Queue.is_empty t.queue && t.in_flight = 0 then Condition.broadcast t.idle;
        Mutex.unlock t.lock
      end
    done

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let create ?(domains = 1) ?queue_capacity ?(batch = 8) (filter : Pf_intf.filter) =
  let (module F) = filter in
  if domains < 1 then invalid_arg "Pf_service.create: domains must be >= 1";
  if batch < 1 then invalid_arg "Pf_service.create: batch must be >= 1";
  let capacity =
    match queue_capacity with
    | None -> 4 * domains * batch
    | Some c when c >= 1 -> c
    | Some _ -> invalid_arg "Pf_service.create: queue_capacity must be >= 1"
  in
  (* every replica is created here, on the caller's domain: registry
     creation mutates the global listed-registry table, which is not
     domain-safe, and doing it eagerly keeps worker startup allocation-free *)
  let primary = Replica ((module F), F.create ()) in
  let worker_replicas = List.init domains (fun _ -> Replica ((module F), F.create ())) in
  let registry_of = function Replica ((module F), inst) -> F.metrics inst in
  let m = make_metrics () in
  let t =
    {
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      capacity;
      batch;
      n_domains = domains;
      updates = [||];
      n_updates = 0;
      n_subs = 0;
      in_flight = 0;
      stopping = false;
      stopped = false;
      failure = None;
      primary;
      replica_registries = List.map registry_of (primary :: worker_replicas);
      workers = [||];
      m;
    }
  in
  Pf_obs.Gauge.set m.domains_gauge (float_of_int domains);
  t.workers <-
    Array.of_list (List.map (fun r -> Domain.spawn (fun () -> worker t r)) worker_replicas);
  t

let domains t = t.n_domains

let shutdown t =
  Mutex.lock t.lock;
  if t.stopping then begin
    (* another caller owns the join (stopping is only ever set here):
       wait until it finishes so shutdown never returns with workers
       still running, and never join the same domain twice *)
    while not t.stopped do
      Condition.wait t.idle t.lock
    done;
    Mutex.unlock t.lock
  end
  else begin
    t.stopping <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers;
    Mutex.lock t.lock;
    t.stopped <- true;
    let failure = t.failure in
    t.failure <- None;
    Condition.broadcast t.idle;
    Mutex.unlock t.lock;
    match failure with Some e -> raise e | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Subscriptions *)

let subscribe t p =
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    invalid_arg "Pf_service.subscribe: service is shut down"
  end;
  match t.primary with
  | Replica ((module F), inst) -> (
    (* the primary validates: if it rejects, nothing is logged and every
       replica stays aligned *)
    match F.add inst p with
    | exception e ->
      Mutex.unlock t.lock;
      raise e
    | sid ->
      log_update t (Add p);
      t.n_subs <- t.n_subs + 1;
      Pf_obs.Counter.incr t.m.subscribes;
      Mutex.unlock t.lock;
      sid)

let subscribe_string t s = subscribe t (Pf_xpath.Parser.parse s)

let unsubscribe t sid =
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    invalid_arg "Pf_service.unsubscribe: service is shut down"
  end;
  match t.primary with
  | Replica ((module F), inst) ->
    let removed = F.remove inst sid in
    if removed then begin
      log_update t (Remove sid);
      Pf_obs.Counter.incr t.m.unsubscribes
    end;
    Mutex.unlock t.lock;
    removed

let subscription_count t =
  Mutex.lock t.lock;
  let n = t.n_subs in
  Mutex.unlock t.lock;
  n

(* ------------------------------------------------------------------ *)
(* Document stream *)

let submit t doc deliver =
  Mutex.lock t.lock;
  let reject () =
    Mutex.unlock t.lock;
    invalid_arg "Pf_service.submit: service is shut down"
  in
  if t.stopping then reject ();
  if Queue.length t.queue >= t.capacity then begin
    Pf_obs.Counter.incr t.m.submit_waits;
    while Queue.length t.queue >= t.capacity && not t.stopping do
      Condition.wait t.not_full t.lock
    done
  end;
  if t.stopping then reject ();
  Queue.add { doc; epoch = t.n_updates; deliver } t.queue;
  Pf_obs.Gauge.set_max t.m.queue_high_water (float_of_int (Queue.length t.queue));
  Condition.signal t.not_empty;
  Mutex.unlock t.lock

let drain t =
  Mutex.lock t.lock;
  while not (Queue.is_empty t.queue && t.in_flight = 0) do
    Condition.wait t.idle t.lock
  done;
  Mutex.unlock t.lock

let filter_batch t docs =
  let docs = Array.of_list docs in
  let n = Array.length docs in
  let results = Array.make n [] in
  let remaining = Atomic.make n in
  let done_lock = Mutex.create () in
  let done_cond = Condition.create () in
  Array.iteri
    (fun i doc ->
      submit t doc (fun sids ->
          results.(i) <- sids;
          if Atomic.fetch_and_add remaining (-1) = 1 then begin
            Mutex.lock done_lock;
            Condition.broadcast done_cond;
            Mutex.unlock done_lock
          end))
    docs;
  Mutex.lock done_lock;
  while Atomic.get remaining > 0 do
    Condition.wait done_cond done_lock
  done;
  Mutex.unlock done_lock;
  Array.to_list results

(* ------------------------------------------------------------------ *)
(* Metrics *)

let metrics t = t.m.registry

let engine_metrics t =
  Pf_obs.Registry.merge ~scope:"service-engines" t.replica_registries
