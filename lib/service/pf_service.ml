(* Domain-parallel filtering: N worker domains, each with a private engine
   replica, in one of two parallelism modes.

   [Doc] (document-replicated): every replica holds every subscription and
   each document goes to exactly one worker — throughput parallelism by
   sharding the stream.

   [Expr] (expression-sharded): subscriptions are partitioned across
   replicas by global sid ([owner g = g mod N]) and every document is
   broadcast to all workers; each matches the document against its shard
   and the last worker to finish merges the per-shard sorted sid lists —
   latency parallelism by sharding the subscription table, with an N-times
   smaller per-replica working set.

   Concurrency design, in one paragraph: engines are replicated, never
   shared, so they stay lock-free internally; the only shared mutable state
   is the service record below, and every field of it is read and written
   under [lock] (per-job merge state uses an [Atomic] countdown). Subscription
   changes go into an append-only update log and are applied to the primary
   replica immediately (validation + sid assignment) and to each worker's
   replica lazily, between documents, up to exactly the log prefix a
   document saw when it was submitted — so a worker never matches against a
   replica that is ahead of or behind the document's epoch, and match sets
   are deterministic regardless of the number of domains or the mode. *)

type update = Add of Pf_xpath.Ast.path | Remove of int

type mode = Doc | Expr

let mode_name = function Doc -> "doc" | Expr -> "expr"

let mode_of_string = function
  | "doc" | "replicated" -> Some Doc
  | "expr" | "sharded" -> Some Expr
  | _ -> None

(* A submitted document: parsed, or raw XML text handed to the replica's
   [match_string] — which a streaming engine matches straight off the SAX
   event stream, so the service never parses it either. Parse errors in a
   [Raw] payload surface on the worker like any other matching exception:
   the job delivers [] and the exception re-raises at [shutdown]. *)
type payload = Tree of Pf_xml.Tree.t | Raw of string

type job = {
  doc : payload;
  epoch : int;  (* update-log length at submission *)
  t_submit : int64;  (* monotonic ns, for end-to-end latency *)
  trace : Pf_obs.Trace.ctx option;
  deliver : int list -> unit;
}

(* One broadcast document in [Expr] mode: every worker fills its slot of
   [parts] with the global sids its shard matched (sorted); the worker
   that takes [remaining] to zero merges and delivers. The merge input is
   the full parts array, so the result is independent of finish order. *)
type ejob = {
  e_doc : payload;
  e_epoch : int;
  parts : int list array;
  remaining : int Atomic.t;
  e_t_submit : int64;
  e_trace : Pf_obs.Trace.ctx option;
  e_deliver : int list -> unit;
}

(* An engine instance packed with its operations; the existential keeps the
   service polymorphic in the engine's representation type. *)
type replica = Replica : (module Pf_intf.FILTER with type t = 'a) * 'a -> replica

type metrics = {
  registry : Pf_obs.Registry.t;
  documents : Pf_obs.Counter.t;
  batched_documents : Pf_obs.Counter.t;
  batches : Pf_obs.Counter.t;
  updates_applied : Pf_obs.Counter.t;
  subscribes : Pf_obs.Counter.t;
  unsubscribes : Pf_obs.Counter.t;
  submit_waits : Pf_obs.Counter.t;
  merges : Pf_obs.Counter.t;
  domains_gauge : Pf_obs.Gauge.t;
  queue_high_water : Pf_obs.Gauge.t;
  latency : Pf_obs.Qhist.t;
}

let make_metrics () =
  let registry = Pf_obs.Registry.create "service" in
  {
    registry;
    documents =
      Pf_obs.Counter.make ~registry "documents" ~help:"documents matched and delivered";
    batched_documents =
      Pf_obs.Counter.make ~registry "batched_documents"
        ~help:"documents matched through a grouped engine match_batch call";
    batches = Pf_obs.Counter.make ~registry "batches" ~help:"worker batch dequeues";
    updates_applied =
      Pf_obs.Counter.make ~registry "updates_applied"
        ~help:"subscription log entries applied to worker replicas";
    subscribes = Pf_obs.Counter.make ~registry "subscribes" ~help:"subscriptions accepted";
    unsubscribes =
      Pf_obs.Counter.make ~registry "unsubscribes" ~help:"subscriptions removed";
    submit_waits =
      Pf_obs.Counter.make ~registry "submit_waits"
        ~help:"submissions that blocked on a full queue (backpressure)";
    merges =
      Pf_obs.Counter.make ~registry "merges"
        ~help:"expression-sharded result merges performed";
    domains_gauge = Pf_obs.Gauge.make ~registry "domains" ~help:"worker domains";
    queue_high_water =
      Pf_obs.Gauge.make ~registry "queue_high_water" ~help:"maximum queue depth seen";
    latency =
      Pf_obs.Qhist.make ~registry "latency_ns"
        ~help:"end-to-end per-document latency, submit to delivery, nanoseconds";
  }

type t = {
  lock : Mutex.t;
  not_empty : Condition.t;  (* workers wait here for documents *)
  not_full : Condition.t;  (* submitters wait here for queue space *)
  idle : Condition.t;  (* drainers wait here for quiescence; late shutdown
                          callers wait here for the joining one *)
  mode : mode;
  queue : job Queue.t;  (* [Doc] mode: one shared queue *)
  equeues : ejob Queue.t array;  (* [Expr] mode: one queue per worker *)
  capacity : int;
  batch : int;
  n_domains : int;
  mutable updates : update array;  (* append-only log, grown under lock *)
  mutable n_updates : int;
  mutable n_subs : int;
  mutable in_flight : int;  (* dequeued worker-jobs, not yet accounted done *)
  mutable stopping : bool;
  mutable stopped : bool;
  mutable failure : exn option;  (* first worker-side exception, re-raised at shutdown *)
  primary : replica;
  replica_registries : Pf_obs.Registry.t list;  (* primary first, then workers *)
  mutable workers : unit Domain.t array;
  m : metrics;
}

let log_update t u =
  if t.n_updates >= Array.length t.updates then begin
    let bigger = Array.make (max 16 (2 * Array.length t.updates)) u in
    Array.blit t.updates 0 bigger 0 t.n_updates;
    t.updates <- bigger
  end;
  t.updates.(t.n_updates) <- u;
  t.n_updates <- t.n_updates + 1

(* ------------------------------------------------------------------ *)
(* Document-replicated worker loop *)

let worker t r =
  match r with
  | Replica ((module F), inst) ->
    (* log entries already applied to this replica; grows monotonically *)
    let applied = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock t.lock;
      while Queue.is_empty t.queue && not t.stopping do
        Condition.wait t.not_empty t.lock
      done;
      if Queue.is_empty t.queue then begin
        (* stopping, and the queue is drained: exit *)
        running := false;
        Mutex.unlock t.lock
      end
      else begin
        let n = min t.batch (Queue.length t.queue) in
        (* explicit pops: the batch must be in FIFO order (Array.init does
           not guarantee evaluation order) for the epoch bound below *)
        let jobs = Array.make n (Queue.pop t.queue) in
        for i = 1 to n - 1 do
          jobs.(i) <- Queue.pop t.queue
        done;
        t.in_flight <- t.in_flight + n;
        (* snapshot the log slice this batch needs: epochs are nondecreasing
           in queue order, so the last job bounds them all *)
        let base = !applied in
        let upto = max base jobs.(n - 1).epoch in
        let pending = Array.sub t.updates base (upto - base) in
        Condition.broadcast t.not_full;
        Mutex.unlock t.lock;
        let first_error = ref None in
        (* worker-local latency buffer: Qhist.observe is unsynchronized,
           so observations flush into the shared histogram under the
           post-batch lock *)
        let lats = ref [] in
        let batched = ref 0 in
        (* batch boundary: catch the replica up to a document's epoch
           before matching — never further *)
        let catch_up epoch =
          while !applied < epoch do
            (match pending.(!applied - base) with
            | Add p -> ignore (F.add inst p)
            | Remove sid -> ignore (F.remove inst sid));
            incr applied
          done
        in
        let finish_job job sids =
          (try
             match job.trace with
             | None -> job.deliver sids
             | Some ctx -> Pf_obs.Trace.span ctx "deliver" (fun () -> job.deliver sids)
           with e ->
             if !first_error = None then first_error := Some e;
             (* deliver something so waiters (filter_batch, drain) never
                hang; the exception resurfaces at shutdown *)
             (try job.deliver [] with _ -> ()));
          (match job.trace with
          | None -> ()
          | Some ctx -> Pf_obs.Trace.finish ctx);
          lats :=
            Int64.to_int (Int64.sub (Pf_obs.Span.now ()) job.t_submit) :: !lats
        in
        let run_single job =
          let sids =
            try
              catch_up job.epoch;
              (match job.trace with
              | None -> ()
              | Some ctx -> Pf_obs.Trace.set_ambient ctx);
              Fun.protect ~finally:Pf_obs.Trace.clear_ambient (fun () ->
                  match job.doc with
                  | Tree d -> F.match_document inst d
                  | Raw s -> F.match_string inst s)
            with e ->
              if !first_error = None then first_error := Some e;
              []
          in
          finish_job job sids
        in
        (* group consecutive untraced jobs of one epoch and one payload
           kind into a single engine match_batch call: the replica state is
           constant across the group (same epoch, no catch-up in between),
           so the grouped call is observationally the per-job loop, and a
           batching engine amortizes its predicate stage across the group *)
        let same_group a b =
          a.trace = None && b.trace = None
          && a.epoch = b.epoch
          &&
          match a.doc, b.doc with
          | Tree _, Tree _ | Raw _, Raw _ -> true
          | Tree _, Raw _ | Raw _, Tree _ -> false
        in
        let i = ref 0 in
        while !i < n do
          let j = !i in
          let job = jobs.(j) in
          let k = ref (j + 1) in
          while !k < n && same_group job jobs.(!k) do
            incr k
          done;
          let len = !k - j in
          if len >= 2 then begin
            (match
               catch_up job.epoch;
               (match job.doc with
               | Tree _ ->
                 F.match_batch inst
                   (List.init len (fun o ->
                        match jobs.(j + o).doc with
                        | Tree d -> d
                        | Raw _ -> assert false))
               | Raw _ ->
                 F.match_string_batch inst
                   (List.init len (fun o ->
                        match jobs.(j + o).doc with
                        | Raw s -> s
                        | Tree _ -> assert false)))
               |> fun results ->
               if List.length results <> len then
                 failwith "match_batch: result count mismatch"
               else results
             with
            | results ->
              batched := !batched + len;
              List.iteri (fun o sids -> finish_job jobs.(j + o) sids) results
            | exception _ ->
              (* a batched engine reports the group's first failure without
                 saying which document raised; re-run the group one document
                 at a time so failures stay per-job (the failing document
                 delivers [], the others their real match sets) *)
              for o = j to !k - 1 do
                run_single jobs.(o)
              done);
            i := !k
          end
          else begin
            run_single job;
            incr i
          end
        done;
        Mutex.lock t.lock;
        t.in_flight <- t.in_flight - n;
        Pf_obs.Counter.add t.m.documents n;
        Pf_obs.Counter.add t.m.batched_documents !batched;
        Pf_obs.Counter.incr t.m.batches;
        Pf_obs.Counter.add t.m.updates_applied (!applied - base);
        List.iter (Pf_obs.Qhist.observe t.m.latency) !lats;
        (match !first_error with
        | Some e when t.failure = None -> t.failure <- Some e
        | _ -> ());
        if Queue.is_empty t.queue && t.in_flight = 0 then Condition.broadcast t.idle;
        Mutex.unlock t.lock
      end
    done

(* ------------------------------------------------------------------ *)
(* Expression-sharded worker loop *)

(* Merge two disjoint sorted sid lists. *)
let rec merge2 a b =
  match a, b with
  | [], r | r, [] -> r
  | x :: xs, y :: ys -> if x < y then x :: merge2 xs b else y :: merge2 a ys

(* Worker [w] owns global sid [g] iff [g mod N = w]. The log's j-th Add
   entry carries global sid j (the primary assigns sids densely and only
   accepted adds are logged), so ownership — and the worker's own dense
   local sid for each owned add — is derivable from the log alone; no
   extra coordination is needed and every worker agrees on the partition
   at every epoch. Local sids are assigned in owned-add order, so the
   local -> global map is strictly increasing and a sorted local match
   list maps to a sorted global one. *)
let eworker t w r =
  match r with
  | Replica ((module F), inst) ->
    let n_dom = t.n_domains in
    let queue = t.equeues.(w) in
    let applied = ref 0 in  (* position in the full update log *)
    let adds_seen = ref 0 in  (* Add entries among them = next global sid *)
    let local_of_global = Hashtbl.create 64 in
    let g_of_l = ref (Array.make 64 0) in
    let n_local = ref 0 in
    let apply_one u =
      match u with
      | Add p ->
        let g = !adds_seen in
        incr adds_seen;
        if g mod n_dom = w then begin
          let l = F.add inst p in
          Hashtbl.replace local_of_global g l;
          if l >= Array.length !g_of_l then begin
            let bigger = Array.make (2 * Array.length !g_of_l) 0 in
            Array.blit !g_of_l 0 bigger 0 (Array.length !g_of_l);
            g_of_l := bigger
          end;
          !g_of_l.(l) <- g;
          n_local := !n_local + 1
        end
      | Remove g ->
        if g mod n_dom = w then begin
          match Hashtbl.find_opt local_of_global g with
          | Some l -> ignore (F.remove inst l : bool)
          | None -> ()
        end
    in
    let running = ref true in
    while !running do
      Mutex.lock t.lock;
      while Queue.is_empty queue && not t.stopping do
        Condition.wait t.not_empty t.lock
      done;
      if Queue.is_empty queue then begin
        running := false;
        Mutex.unlock t.lock
      end
      else begin
        let n = min t.batch (Queue.length queue) in
        let jobs = Array.make n (Queue.pop queue) in
        for i = 1 to n - 1 do
          jobs.(i) <- Queue.pop queue
        done;
        t.in_flight <- t.in_flight + n;
        let base = !applied in
        let upto = max base jobs.(n - 1).e_epoch in
        let pending = Array.sub t.updates base (upto - base) in
        Condition.broadcast t.not_full;
        Mutex.unlock t.lock;
        let first_error = ref None in
        (* jobs whose countdown this worker finished; merged and delivered
           after the whole batch is matched (per-worker result buffer) *)
        let to_deliver = ref [] in
        let n_delivered = ref 0 in
        let lats = ref [] in
        let batched = ref 0 in
        let catch_up epoch =
          while !applied < epoch do
            apply_one pending.(!applied - base);
            incr applied
          done
        in
        let complete job part =
          job.parts.(w) <- part;
          if Atomic.fetch_and_add job.remaining (-1) = 1 then
            to_deliver := job :: !to_deliver
        in
        let run_single job =
          let part =
            try
              catch_up job.e_epoch;
              (* spans recorded here carry this worker's domain id and
                 the job's trace id; the merge side stitches them *)
              (match job.e_trace with
              | None -> ()
              | Some ctx -> Pf_obs.Trace.set_ambient ctx);
              let locals =
                Fun.protect ~finally:Pf_obs.Trace.clear_ambient (fun () ->
                    match job.e_doc with
                    | Tree d -> F.match_document inst d
                    | Raw s -> F.match_string inst s)
              in
              let g = !g_of_l in
              List.map (fun l -> g.(l)) locals
            with e ->
              if !first_error = None then first_error := Some e;
              []
          in
          complete job part
        in
        (* same grouping as the document-replicated worker: consecutive
           untraced same-epoch same-kind broadcasts go through one shard
           match_batch call *)
        let same_group a b =
          a.e_trace = None && b.e_trace = None
          && a.e_epoch = b.e_epoch
          &&
          match a.e_doc, b.e_doc with
          | Tree _, Tree _ | Raw _, Raw _ -> true
          | Tree _, Raw _ | Raw _, Tree _ -> false
        in
        let i = ref 0 in
        while !i < n do
          let j = !i in
          let job = jobs.(j) in
          let k = ref (j + 1) in
          while !k < n && same_group job jobs.(!k) do
            incr k
          done;
          let len = !k - j in
          if len >= 2 then begin
            (match
               catch_up job.e_epoch;
               let locals_per_doc =
                 match job.e_doc with
                 | Tree _ ->
                   F.match_batch inst
                     (List.init len (fun o ->
                          match jobs.(j + o).e_doc with
                          | Tree d -> d
                          | Raw _ -> assert false))
                 | Raw _ ->
                   F.match_string_batch inst
                     (List.init len (fun o ->
                          match jobs.(j + o).e_doc with
                          | Raw s -> s
                          | Tree _ -> assert false))
               in
               if List.length locals_per_doc <> len then
                 failwith "match_batch: result count mismatch";
               let g = !g_of_l in
               List.map (List.map (fun l -> g.(l))) locals_per_doc
             with
            | parts ->
              batched := !batched + len;
              List.iteri (fun o part -> complete jobs.(j + o) part) parts
            | exception _ ->
              (* per-document fallback: failures must stay per-job (see the
                 document-replicated worker) *)
              for o = j to !k - 1 do
                run_single jobs.(o)
              done);
            i := !k
          end
          else begin
            run_single job;
            incr i
          end
        done;
        List.iter
          (fun job ->
            incr n_delivered;
            let merged =
              match job.e_trace with
              | None -> Array.fold_left merge2 [] job.parts
              | Some ctx ->
                Pf_obs.Trace.span ctx "merge" (fun () ->
                    Array.fold_left merge2 [] job.parts)
            in
            (try
               match job.e_trace with
               | None -> job.e_deliver merged
               | Some ctx ->
                 Pf_obs.Trace.span ctx "deliver" (fun () -> job.e_deliver merged)
             with e -> if !first_error = None then first_error := Some e);
            (match job.e_trace with
            | None -> ()
            | Some ctx -> Pf_obs.Trace.finish ctx);
            lats :=
              Int64.to_int (Int64.sub (Pf_obs.Span.now ()) job.e_t_submit) :: !lats)
          (List.rev !to_deliver);
        Mutex.lock t.lock;
        t.in_flight <- t.in_flight - n;
        (* count a document once, at its merging worker; batched shard
           matches are per-worker, so every worker contributes *)
        Pf_obs.Counter.add t.m.documents !n_delivered;
        Pf_obs.Counter.add t.m.batched_documents !batched;
        Pf_obs.Counter.add t.m.merges !n_delivered;
        Pf_obs.Counter.incr t.m.batches;
        Pf_obs.Counter.add t.m.updates_applied (!applied - base);
        List.iter (Pf_obs.Qhist.observe t.m.latency) !lats;
        (match !first_error with
        | Some e when t.failure = None -> t.failure <- Some e
        | _ -> ());
        if
          t.in_flight = 0
          && Array.for_all Queue.is_empty t.equeues
        then Condition.broadcast t.idle;
        Mutex.unlock t.lock
      end
    done

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let create ?(mode = Doc) ?(domains = 1) ?queue_capacity ?(batch = 8)
    (filter : Pf_intf.filter) =
  let (module F) = filter in
  if domains < 1 then invalid_arg "Pf_service.create: domains must be >= 1";
  if batch < 1 then invalid_arg "Pf_service.create: batch must be >= 1";
  let capacity =
    match queue_capacity with
    | None -> 4 * domains * batch
    | Some c when c >= 1 -> c
    | Some _ -> invalid_arg "Pf_service.create: queue_capacity must be >= 1"
  in
  (* every replica is created here, on the caller's domain: registry
     creation mutates the global listed-registry table, which is not
     domain-safe, and doing it eagerly keeps worker startup allocation-free *)
  let primary = Replica ((module F), F.create ()) in
  let worker_replicas = List.init domains (fun _ -> Replica ((module F), F.create ())) in
  let registry_of = function Replica ((module F), inst) -> F.metrics inst in
  let m = make_metrics () in
  let t =
    {
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      idle = Condition.create ();
      mode;
      queue = Queue.create ();
      equeues =
        (match mode with
        | Doc -> [||]
        | Expr -> Array.init domains (fun _ -> Queue.create ()));
      capacity;
      batch;
      n_domains = domains;
      updates = [||];
      n_updates = 0;
      n_subs = 0;
      in_flight = 0;
      stopping = false;
      stopped = false;
      failure = None;
      primary;
      replica_registries = List.map registry_of (primary :: worker_replicas);
      workers = [||];
      m;
    }
  in
  Pf_obs.Gauge.set m.domains_gauge (float_of_int domains);
  t.workers <-
    Array.of_list
      (List.mapi
         (fun w r ->
           Domain.spawn (fun () -> match mode with Doc -> worker t r | Expr -> eworker t w r))
         worker_replicas);
  t

let domains t = t.n_domains
let mode t = t.mode

let shutdown t =
  Mutex.lock t.lock;
  if t.stopping then begin
    (* another caller owns the join (stopping is only ever set here):
       wait until it finishes so shutdown never returns with workers
       still running, and never join the same domain twice *)
    while not t.stopped do
      Condition.wait t.idle t.lock
    done;
    Mutex.unlock t.lock
  end
  else begin
    t.stopping <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers;
    Mutex.lock t.lock;
    t.stopped <- true;
    let failure = t.failure in
    t.failure <- None;
    Condition.broadcast t.idle;
    Mutex.unlock t.lock;
    match failure with Some e -> raise e | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Subscriptions *)

let subscribe t p =
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    invalid_arg "Pf_service.subscribe: service is shut down"
  end;
  match t.primary with
  | Replica ((module F), inst) -> (
    (* the primary validates: if it rejects, nothing is logged and every
       replica stays aligned *)
    match F.add inst p with
    | exception e ->
      Mutex.unlock t.lock;
      raise e
    | sid ->
      log_update t (Add p);
      t.n_subs <- t.n_subs + 1;
      Pf_obs.Counter.incr t.m.subscribes;
      Mutex.unlock t.lock;
      sid)

let subscribe_string t s = subscribe t (Pf_xpath.Parser.parse s)

let unsubscribe t sid =
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    invalid_arg "Pf_service.unsubscribe: service is shut down"
  end;
  match t.primary with
  | Replica ((module F), inst) ->
    let removed = F.remove inst sid in
    if removed then begin
      log_update t (Remove sid);
      Pf_obs.Counter.incr t.m.unsubscribes
    end;
    Mutex.unlock t.lock;
    removed

let subscription_count t =
  Mutex.lock t.lock;
  let n = t.n_subs in
  Mutex.unlock t.lock;
  n

(* ------------------------------------------------------------------ *)
(* Document stream *)

let queue_depth t =
  match t.mode with
  | Doc -> Queue.length t.queue
  | Expr ->
    Array.fold_left (fun acc q -> max acc (Queue.length q)) 0 t.equeues

let submit_payload ?trace t doc deliver =
  Mutex.lock t.lock;
  let reject () =
    Mutex.unlock t.lock;
    invalid_arg "Pf_service.submit: service is shut down"
  in
  if t.stopping then reject ();
  if queue_depth t >= t.capacity then begin
    Pf_obs.Counter.incr t.m.submit_waits;
    while queue_depth t >= t.capacity && not t.stopping do
      Condition.wait t.not_full t.lock
    done
  end;
  if t.stopping then reject ();
  let t_submit = Pf_obs.Span.now () in
  (match t.mode with
  | Doc ->
    Queue.add { doc; epoch = t.n_updates; t_submit; trace; deliver } t.queue;
    Condition.signal t.not_empty
  | Expr ->
    let job =
      {
        e_doc = doc;
        e_epoch = t.n_updates;
        parts = Array.make t.n_domains [];
        remaining = Atomic.make t.n_domains;
        e_t_submit = t_submit;
        e_trace = trace;
        e_deliver = deliver;
      }
    in
    Array.iter (fun q -> Queue.add job q) t.equeues;
    Condition.broadcast t.not_empty);
  Pf_obs.Gauge.set_max t.m.queue_high_water (float_of_int (queue_depth t));
  Mutex.unlock t.lock

let submit ?trace t doc deliver = submit_payload ?trace t (Tree doc) deliver
let submit_raw ?trace t src deliver = submit_payload ?trace t (Raw src) deliver

let drain t =
  Mutex.lock t.lock;
  let quiescent () =
    t.in_flight = 0
    &&
    match t.mode with
    | Doc -> Queue.is_empty t.queue
    | Expr -> Array.for_all Queue.is_empty t.equeues
  in
  while not (quiescent ()) do
    Condition.wait t.idle t.lock
  done;
  Mutex.unlock t.lock

let filter_batch_payload t docs =
  let docs = Array.of_list docs in
  let n = Array.length docs in
  let results = Array.make n [] in
  let remaining = Atomic.make n in
  let done_lock = Mutex.create () in
  let done_cond = Condition.create () in
  Array.iteri
    (fun i doc ->
      submit_payload t doc (fun sids ->
          results.(i) <- sids;
          if Atomic.fetch_and_add remaining (-1) = 1 then begin
            Mutex.lock done_lock;
            Condition.broadcast done_cond;
            Mutex.unlock done_lock
          end))
    docs;
  Mutex.lock done_lock;
  while Atomic.get remaining > 0 do
    Condition.wait done_cond done_lock
  done;
  Mutex.unlock done_lock;
  Array.to_list results

let filter_batch t docs = filter_batch_payload t (List.map (fun d -> Tree d) docs)
let filter_batch_raw t srcs = filter_batch_payload t (List.map (fun s -> Raw s) srcs)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let metrics t = t.m.registry

let engine_metrics t =
  Pf_obs.Registry.merge ~scope:"service-engines" t.replica_registries
