type event =
  | Start_element of string * (string * string) list
  | End_element of string
  | Chars of string
  | Comment of string
  | Pi of string

(* Parser-wide metrics (the SAX layer is stateless, so one registry covers
   every parse in the process). *)
let metrics = Pf_obs.Registry.create "sax"

let m_events =
  Pf_obs.Counter.make ~registry:metrics "events" ~help:"SAX events emitted"

let m_documents =
  Pf_obs.Counter.make ~registry:metrics "documents" ~help:"documents parsed"

let m_max_depth =
  Pf_obs.Gauge.make ~registry:metrics "max_depth"
    ~help:"deepest element nesting observed"

type position = { line : int; column : int }

exception Parse_error of position * string

let pp_position fmt p = Format.fprintf fmt "line %d, column %d" p.line p.column

(* Mutable cursor over the input string. Line/column are tracked for error
   messages only and updated lazily when an error is raised. *)
type cursor = { src : string; mutable pos : int }

let position_of cur =
  let line = ref 1 and col = ref 1 in
  let stop = min cur.pos (String.length cur.src) in
  for i = 0 to stop - 1 do
    if cur.src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  { line = !line; column = !col }

let fail cur msg = raise (Parse_error (position_of cur, msg))

let eof cur = cur.pos >= String.length cur.src

let peek cur = if eof cur then '\000' else cur.src.[cur.pos]

let advance cur = cur.pos <- cur.pos + 1

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space cur =
  while (not (eof cur)) && is_space (peek cur) do
    advance cur
  done

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 128

let is_name_char c =
  is_name_start c
  || match c with '0' .. '9' | '-' | '.' -> true | _ -> false

let read_name cur =
  if not (is_name_start (peek cur)) then fail cur "expected a name";
  let start = cur.pos in
  while (not (eof cur)) && is_name_char (peek cur) do
    advance cur
  done;
  String.sub cur.src start (cur.pos - start)

let expect cur c =
  if peek cur <> c then fail cur (Printf.sprintf "expected %C" c);
  advance cur

let looking_at cur s =
  let n = String.length s in
  cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = s

(* Find [needle] from the current position; returns the index of its first
   character or fails. *)
let find_str cur needle =
  let n = String.length needle and len = String.length cur.src in
  let rec go i =
    if i + n > len then fail cur (Printf.sprintf "unterminated construct, expected %S" needle)
    else if String.sub cur.src i n = needle then i
    else go (i + 1)
  in
  go cur.pos

let decode_entity cur buf =
  (* cursor is positioned just after '&' *)
  let stop = find_str cur ";" in
  let name = String.sub cur.src cur.pos (stop - cur.pos) in
  cur.pos <- stop + 1;
  match name with
  | "lt" -> Buffer.add_char buf '<'
  | "gt" -> Buffer.add_char buf '>'
  | "amp" -> Buffer.add_char buf '&'
  | "apos" -> Buffer.add_char buf '\''
  | "quot" -> Buffer.add_char buf '"'
  | _ ->
    if String.length name > 1 && name.[0] = '#' then begin
      let code =
        try
          if name.[1] = 'x' || name.[1] = 'X' then
            int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
          else int_of_string (String.sub name 1 (String.length name - 1))
        with Failure _ -> fail cur (Printf.sprintf "bad character reference &%s;" name)
      in
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else begin
        (* UTF-8 encode *)
        if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else if code < 0x10000 then begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
      end
    end
    else fail cur (Printf.sprintf "unknown entity &%s;" name)

let read_attr_value cur =
  let quote = peek cur in
  if quote <> '"' && quote <> '\'' then fail cur "expected quoted attribute value";
  advance cur;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof cur then fail cur "unterminated attribute value"
    else
      let c = peek cur in
      if c = quote then advance cur
      else if c = '&' then begin
        advance cur;
        decode_entity cur buf;
        go ()
      end
      else if c = '<' then fail cur "'<' in attribute value"
      else begin
        Buffer.add_char buf c;
        advance cur;
        go ()
      end
  in
  go ();
  Buffer.contents buf

let read_attributes cur =
  let rec go acc =
    skip_space cur;
    match peek cur with
    | '>' | '/' | '?' -> List.rev acc
    | _ ->
      let name = read_name cur in
      skip_space cur;
      expect cur '=';
      skip_space cur;
      let value = read_attr_value cur in
      go ((name, value) :: acc)
  in
  go []

(* Skip a DOCTYPE declaration, including an internal subset in brackets. *)
let skip_doctype cur =
  let rec go depth =
    if eof cur then fail cur "unterminated DOCTYPE"
    else
      match peek cur with
      | '[' ->
        advance cur;
        go (depth + 1)
      | ']' ->
        advance cur;
        go (depth - 1)
      | '>' when depth = 0 -> advance cur
      | '"' | '\'' ->
        let q = peek cur in
        advance cur;
        let stop = find_str cur (String.make 1 q) in
        cur.pos <- stop + 1;
        go depth
      | _ ->
        advance cur;
        go depth
  in
  go 0

let read_text cur =
  let buf = Buffer.create 32 in
  let rec go () =
    if eof cur then ()
    else
      let c = peek cur in
      if c = '<' then ()
      else if c = '&' then begin
        advance cur;
        decode_entity cur buf;
        go ()
      end
      else begin
        Buffer.add_char buf c;
        advance cur;
        go ()
      end
  in
  go ();
  Buffer.contents buf

let fold_events src ~init ~f =
  let cur = { src; pos = 0 } in
  let acc = ref init in
  let n_events = ref 0 in
  let depth = ref 0 and max_depth = ref 0 in
  let emit ev =
    incr n_events;
    (match ev with
    | Start_element _ ->
      incr depth;
      if !depth > !max_depth then max_depth := !depth
    | End_element _ -> decr depth
    | Chars _ | Comment _ | Pi _ -> ());
    acc := f !acc ev
  in
  let stack = ref [] in
  let rec loop () =
    if eof cur then ()
    else if peek cur = '<' then begin
      advance cur;
      (match peek cur with
      | '?' ->
        advance cur;
        let stop = find_str cur "?>" in
        emit (Pi (String.sub cur.src cur.pos (stop - cur.pos)));
        cur.pos <- stop + 2
      | '!' ->
        advance cur;
        if looking_at cur "--" then begin
          cur.pos <- cur.pos + 2;
          let stop = find_str cur "-->" in
          emit (Comment (String.sub cur.src cur.pos (stop - cur.pos)));
          cur.pos <- stop + 3
        end
        else if looking_at cur "[CDATA[" then begin
          cur.pos <- cur.pos + 7;
          let stop = find_str cur "]]>" in
          emit (Chars (String.sub cur.src cur.pos (stop - cur.pos)));
          cur.pos <- stop + 3
        end
        else if looking_at cur "DOCTYPE" then begin
          cur.pos <- cur.pos + 7;
          skip_doctype cur
        end
        else fail cur "unexpected markup declaration"
      | '/' ->
        advance cur;
        let name = read_name cur in
        skip_space cur;
        expect cur '>';
        (match !stack with
        | top :: rest when String.equal top name ->
          stack := rest;
          emit (End_element name)
        | top :: _ ->
          fail cur (Printf.sprintf "mismatched end tag </%s>, expected </%s>" name top)
        | [] -> fail cur (Printf.sprintf "unexpected end tag </%s>" name))
      | _ ->
        let name = read_name cur in
        let attrs = read_attributes cur in
        skip_space cur;
        if peek cur = '/' then begin
          advance cur;
          expect cur '>';
          emit (Start_element (name, attrs));
          emit (End_element name)
        end
        else begin
          expect cur '>';
          stack := name :: !stack;
          emit (Start_element (name, attrs))
        end);
      loop ()
    end
    else begin
      let text = read_text cur in
      if text <> "" then emit (Chars text);
      loop ()
    end
  in
  loop ();
  (match !stack with
  | [] -> ()
  | top :: _ -> fail cur (Printf.sprintf "unclosed element <%s>" top));
  Pf_obs.Counter.add m_events !n_events;
  Pf_obs.Gauge.set_max m_max_depth (float_of_int !max_depth);
  !acc

let is_blank s = String.for_all is_space s

type builder = {
  b_tag : string;
  b_attrs : (string * string) list;
  mutable b_children : Tree.node list;  (* reversed *)
}

let parse_document src =
  (* Stack of open elements being built; [root] is set when the outermost
     element closes. *)
  let stack : builder list ref = ref [] in
  let root : Tree.element option ref = ref None in
  let cur_for_errors = { src; pos = String.length src } in
  let finish (b : builder) : Tree.element =
    { Tree.tag = b.b_tag; attrs = b.b_attrs; children = List.rev b.b_children }
  in
  let on_event () ev =
    match ev with
    | Start_element (tag, attrs) ->
      if !root <> None && !stack = [] then
        fail cur_for_errors "content after the root element";
      stack := { b_tag = tag; b_attrs = attrs; b_children = [] } :: !stack
    | End_element _ -> (
      match !stack with
      | b :: rest ->
        stack := rest;
        let e = finish b in
        (match rest with
        | parent :: _ -> parent.b_children <- Tree.Element e :: parent.b_children
        | [] -> root := Some e)
      | [] -> assert false)
    | Chars s -> (
      match !stack with
      | parent :: _ when not (is_blank s) ->
        parent.b_children <- Tree.Text s :: parent.b_children
      | _ -> ())
    | Comment _ | Pi _ -> ()
  in
  fold_events src ~init:() ~f:on_event;
  Pf_obs.Counter.incr m_documents;
  match !root with
  | Some e -> { Tree.root = e }
  | None -> fail cur_for_errors "no root element"

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_document s
