type event =
  | Start_element of string * (string * string) list
  | End_element of string
  | Chars of string
  | Comment of string
  | Pi of string

(* Parser-wide metrics (the SAX layer is stateless, so one registry covers
   every parse in the process). *)
let metrics = Pf_obs.Registry.create "sax"

let m_events =
  Pf_obs.Counter.make ~registry:metrics "events" ~help:"SAX events emitted"

let m_documents =
  Pf_obs.Counter.make ~registry:metrics "documents" ~help:"documents parsed"

let m_max_depth =
  Pf_obs.Gauge.make ~registry:metrics "max_depth"
    ~help:"deepest element nesting observed"

let m_attr_cache_entries =
  (* per-domain caches: the live total across replicas is the sum of the
     per-domain sizes, not their max *)
  Pf_obs.Gauge.make ~registry:metrics "attr_cache_entries" ~merge:Pf_obs.Gauge.Sum
    ~help:"high-water live entries in a per-domain attribute-list cache"

let m_attr_cache_resets =
  Pf_obs.Counter.make ~registry:metrics "attr_cache_resets"
    ~help:"per-domain attribute-list caches reset after reaching the bound"

type position = { line : int; column : int }

exception Parse_error of position * string

let pp_position fmt p = Format.fprintf fmt "line %d, column %d" p.line p.column

(* Mutable cursor over the input string. Line/column are tracked for error
   messages only and updated lazily when an error is raised. *)
type cursor = { src : string; mutable pos : int }

let position_of cur =
  let line = ref 1 and col = ref 1 in
  let stop = min cur.pos (String.length cur.src) in
  for i = 0 to stop - 1 do
    if cur.src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  { line = !line; column = !col }

let fail cur msg = raise (Parse_error (position_of cur, msg))

let position_at src pos = position_of { src; pos }

let eof cur = cur.pos >= String.length cur.src

let peek cur = if eof cur then '\000' else cur.src.[cur.pos]

let advance cur = cur.pos <- cur.pos + 1

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space cur =
  while (not (eof cur)) && is_space (peek cur) do
    advance cur
  done

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 128

let is_name_char c =
  is_name_start c
  || match c with '0' .. '9' | '-' | '.' -> true | _ -> false

let read_name cur =
  if not (is_name_start (peek cur)) then fail cur "expected a name";
  let start = cur.pos in
  while (not (eof cur)) && is_name_char (peek cur) do
    advance cur
  done;
  String.sub cur.src start (cur.pos - start)

let expect cur c =
  if peek cur <> c then fail cur (Printf.sprintf "expected %C" c);
  advance cur

let looking_at cur s =
  let n = String.length s in
  cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = s

(* Find [needle] from the current position; returns the index of its first
   character or fails. *)
let find_str cur needle =
  let n = String.length needle and len = String.length cur.src in
  let rec go i =
    if i + n > len then fail cur (Printf.sprintf "unterminated construct, expected %S" needle)
    else if String.sub cur.src i n = needle then i
    else go (i + 1)
  in
  go cur.pos

let decode_entity cur buf =
  (* cursor is positioned just after '&' *)
  let stop = find_str cur ";" in
  let name = String.sub cur.src cur.pos (stop - cur.pos) in
  cur.pos <- stop + 1;
  match name with
  | "lt" -> Buffer.add_char buf '<'
  | "gt" -> Buffer.add_char buf '>'
  | "amp" -> Buffer.add_char buf '&'
  | "apos" -> Buffer.add_char buf '\''
  | "quot" -> Buffer.add_char buf '"'
  | _ ->
    if String.length name > 1 && name.[0] = '#' then begin
      let code =
        try
          if name.[1] = 'x' || name.[1] = 'X' then
            int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
          else int_of_string (String.sub name 1 (String.length name - 1))
        with Failure _ -> fail cur (Printf.sprintf "bad character reference &%s;" name)
      in
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else begin
        (* UTF-8 encode *)
        if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else if code < 0x10000 then begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
      end
    end
    else fail cur (Printf.sprintf "unknown entity &%s;" name)

let read_attr_value_into cur buf =
  let quote = peek cur in
  if quote <> '"' && quote <> '\'' then fail cur "expected quoted attribute value";
  advance cur;
  Buffer.clear buf;
  let rec go () =
    if eof cur then fail cur "unterminated attribute value"
    else
      let c = peek cur in
      if c = quote then advance cur
      else if c = '&' then begin
        advance cur;
        decode_entity cur buf;
        go ()
      end
      else if c = '<' then fail cur "'<' in attribute value"
      else begin
        Buffer.add_char buf c;
        advance cur;
        go ()
      end
  in
  go ();
  Buffer.contents buf

let read_attr_value cur = read_attr_value_into cur (Buffer.create 16)

let read_attributes cur =
  let rec go acc =
    skip_space cur;
    match peek cur with
    | '>' | '/' | '?' -> List.rev acc
    | _ ->
      let name = read_name cur in
      skip_space cur;
      expect cur '=';
      skip_space cur;
      let value = read_attr_value cur in
      go ((name, value) :: acc)
  in
  go []

(* Skip a DOCTYPE declaration, including an internal subset in brackets. *)
let skip_doctype cur =
  let rec go depth =
    if eof cur then fail cur "unterminated DOCTYPE"
    else
      match peek cur with
      | '[' ->
        advance cur;
        go (depth + 1)
      | ']' ->
        advance cur;
        go (depth - 1)
      | '>' when depth = 0 -> advance cur
      | '"' | '\'' ->
        let q = peek cur in
        advance cur;
        let stop = find_str cur (String.make 1 q) in
        cur.pos <- stop + 1;
        go depth
      | _ ->
        advance cur;
        go depth
  in
  go 0

let read_text cur =
  let buf = Buffer.create 32 in
  let rec go () =
    if eof cur then ()
    else
      let c = peek cur in
      if c = '<' then ()
      else if c = '&' then begin
        advance cur;
        decode_entity cur buf;
        go ()
      end
      else begin
        Buffer.add_char buf c;
        advance cur;
        go ()
      end
  in
  go ();
  Buffer.contents buf

let fold_events src ~init ~f =
  let cur = { src; pos = 0 } in
  let acc = ref init in
  let n_events = ref 0 in
  let depth = ref 0 and max_depth = ref 0 in
  let emit ev =
    incr n_events;
    (match ev with
    | Start_element _ ->
      incr depth;
      if !depth > !max_depth then max_depth := !depth
    | End_element _ -> decr depth
    | Chars _ | Comment _ | Pi _ -> ());
    acc := f !acc ev
  in
  let stack = ref [] in
  let rec loop () =
    if eof cur then ()
    else if peek cur = '<' then begin
      advance cur;
      (match peek cur with
      | '?' ->
        advance cur;
        let stop = find_str cur "?>" in
        emit (Pi (String.sub cur.src cur.pos (stop - cur.pos)));
        cur.pos <- stop + 2
      | '!' ->
        advance cur;
        if looking_at cur "--" then begin
          cur.pos <- cur.pos + 2;
          let stop = find_str cur "-->" in
          emit (Comment (String.sub cur.src cur.pos (stop - cur.pos)));
          cur.pos <- stop + 3
        end
        else if looking_at cur "[CDATA[" then begin
          cur.pos <- cur.pos + 7;
          let stop = find_str cur "]]>" in
          emit (Chars (String.sub cur.src cur.pos (stop - cur.pos)));
          cur.pos <- stop + 3
        end
        else if looking_at cur "DOCTYPE" then begin
          cur.pos <- cur.pos + 7;
          skip_doctype cur
        end
        else fail cur "unexpected markup declaration"
      | '/' ->
        advance cur;
        let name = read_name cur in
        skip_space cur;
        expect cur '>';
        (match !stack with
        | top :: rest when String.equal top name ->
          stack := rest;
          emit (End_element name)
        | top :: _ ->
          fail cur (Printf.sprintf "mismatched end tag </%s>, expected </%s>" name top)
        | [] -> fail cur (Printf.sprintf "unexpected end tag </%s>" name))
      | _ ->
        let name = read_name cur in
        let attrs = read_attributes cur in
        skip_space cur;
        if peek cur = '/' then begin
          advance cur;
          expect cur '>';
          emit (Start_element (name, attrs));
          emit (End_element name)
        end
        else begin
          expect cur '>';
          stack := name :: !stack;
          emit (Start_element (name, attrs))
        end);
      loop ()
    end
    else begin
      let text = read_text cur in
      if text <> "" then emit (Chars text);
      loop ()
    end
  in
  loop ();
  (match !stack with
  | [] -> ()
  | top :: _ -> fail cur (Printf.sprintf "unclosed element <%s>" top));
  Pf_obs.Counter.add m_events !n_events;
  Pf_obs.Gauge.set_max m_max_depth (float_of_int !max_depth);
  !acc

(* ------------------------------------------------------------------ *)
(* Zero-copy driver.

   [fold_zc] walks the same grammar as [fold_events] — same control flow,
   same error checks in the same order, so errors carry identical
   positions and messages — but never constructs [event] values:

   - tag and attribute names are interned straight out of the source
     buffer with [Symbol.intern_sub]; in the steady state (domain cache
     hit) no name string is allocated at all;
   - end tags are checked against the open element's symbol by comparing
     the span in place — a matching end tag allocates nothing, and a
     mismatched one never pollutes the interner;
   - character data is delivered as [(string, pos, len)] spans of the
     source (or of a small scratch buffer for decoded entities), valid
     only during the callback;
   - attribute lists come from a bounded per-domain cache keyed by the
     whole (name, value)* combination: names are the interner's canonical
     strings and repeated combinations (DTD-driven streams draw values
     from small pools) return the same immutable list with no allocation
     at all.

   The classic [fold_events] stays as-is: tree building wants owned
   strings anyway, and the byte-exact error behavior of both drivers is
   pinned by the test suite. *)

type zc_handler = {
  zc_start : Symbol.t -> (string * string) list -> unit;
  zc_end : Symbol.t -> unit;
  zc_text : string -> int -> int -> unit;
}

(* Does the span [s.[pos..pos+len)] spell [name]? Top-level recursion,
   not a local closure: this runs per end tag and must not allocate. *)
let rec span_eq_loop name s pos i len =
  i = len
  || (String.unsafe_get name i = String.unsafe_get s (pos + i)
     && span_eq_loop name s pos (i + 1) len)

let span_equals name s pos len = String.length name = len && span_eq_loop name s pos 0 len

(* Like [read_name] but without copying: returns the start position; the
   span ends at [cur.pos] (returning a tuple would allocate per name). *)
let read_name_start cur =
  if not (is_name_start (peek cur)) then fail cur "expected a name";
  let start = cur.pos in
  while (not (eof cur)) && is_name_char (peek cur) do
    advance cur
  done;
  start

(* Per-domain zero-copy parse state: a byte arena receiving the current
   element's decoded attribute values plus a bounded open-addressing
   cache of materialized attribute lists. Whole (name, value)*
   combinations repeat heavily across elements and documents of a
   DTD-driven stream, so a hit returns a shared immutable list without
   allocating value strings or list cells. Like the symbol read cache,
   the table is reset wholesale when it reaches [al_bound] live entries,
   so an adversarial stream of distinct values cannot grow it without
   limit. One parse at a time per domain (the invariant the rest of the
   system already maintains: engines, and hence their parsers, are never
   shared between domains). *)
let al_bound = 4096

let al_cap = 8192 (* power of two, = 2 * al_bound *)

type attr_entry = {
  ae_syms : int array;  (* attr name symbols, document order; [||] = empty slot *)
  ae_vals : string array;  (* decoded values, same order *)
  ae_list : (string * string) list;  (* the shared materialized list *)
}

let ae_empty = { ae_syms = [||]; ae_vals = [||]; ae_list = [] }

type zc_state = {
  mutable arena : Bytes.t;  (* decoded values of the current element *)
  mutable arena_len : int;
  mutable a_syms : int array;  (* current element's attr name symbols *)
  mutable a_off : int array;  (* value spans in [arena] *)
  mutable a_len : int array;
  mutable a_count : int;
  entity_buf : Buffer.t;
  al_table : attr_entry array;  (* al_cap slots *)
  mutable al_size : int;
}

let zc_state_key : zc_state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        arena = Bytes.create 256;
        arena_len = 0;
        a_syms = Array.make 8 0;
        a_off = Array.make 8 0;
        a_len = Array.make 8 0;
        a_count = 0;
        entity_buf = Buffer.create 16;
        al_table = Array.make al_cap ae_empty;
        al_size = 0;
      })

let arena_reserve st n =
  if st.arena_len + n > Bytes.length st.arena then begin
    let cap = ref (2 * Bytes.length st.arena) in
    while st.arena_len + n > !cap do
      cap := 2 * !cap
    done;
    let b = Bytes.create !cap in
    Bytes.blit st.arena 0 b 0 st.arena_len;
    st.arena <- b
  end

(* [read_attr_value_into], but decoding into the arena. Same checks in
   the same order, so errors match the classic driver byte for byte. The
   helpers here and below are top-level tail recursions, not local
   closures or refs — this is the per-element hot path and must not
   allocate. *)
let rec attr_value_loop cur st quote =
  if eof cur then fail cur "unterminated attribute value"
  else
    let c = peek cur in
    if c = quote then advance cur
    else if c = '&' then begin
      advance cur;
      Buffer.clear st.entity_buf;
      decode_entity cur st.entity_buf;
      let n = Buffer.length st.entity_buf in
      arena_reserve st n;
      Buffer.blit st.entity_buf 0 st.arena st.arena_len n;
      st.arena_len <- st.arena_len + n;
      attr_value_loop cur st quote
    end
    else if c = '<' then fail cur "'<' in attribute value"
    else begin
      arena_reserve st 1;
      Bytes.unsafe_set st.arena st.arena_len c;
      st.arena_len <- st.arena_len + 1;
      advance cur;
      attr_value_loop cur st quote
    end

(* Reads the value into the arena; the span is
   [(st.arena_len before, st.arena_len after)]. *)
let read_attr_value_zc cur st =
  let quote = peek cur in
  if quote <> '"' && quote <> '\'' then fail cur "expected quoted attribute value";
  advance cur;
  attr_value_loop cur st quote

(* FNV-1a over the pending attrs: name symbols and value bytes. *)
let rec hash_arena b i stop h =
  if i = stop then h
  else
    hash_arena b (i + 1) stop
      ((h lxor Char.code (Bytes.unsafe_get b i)) * 0x01000193 land 0x3FFFFFFF)

let fnv_mix h v = (h lxor v) * 0x01000193 land 0x3FFFFFFF

let rec attr_hash_from st i h =
  if i = st.a_count then h
  else
    let off = st.a_off.(i) and len = st.a_len.(i) in
    let h = hash_arena st.arena off (off + len) (fnv_mix (fnv_mix h st.a_syms.(i)) len) in
    attr_hash_from st (i + 1) h

let attr_hash st = attr_hash_from st 0 0x811c9dc5

let rec bytes_eq_str v b off i len =
  i = len
  || (Char.equal (String.unsafe_get v i) (Bytes.unsafe_get b (off + i))
     && bytes_eq_str v b off (i + 1) len)

let rec attr_entry_matches_from st e i =
  i = st.a_count
  || (e.ae_syms.(i) = st.a_syms.(i)
      &&
      let v = e.ae_vals.(i) and len = st.a_len.(i) in
      String.length v = len
      && bytes_eq_str v st.arena st.a_off.(i) 0 len
      && attr_entry_matches_from st e (i + 1))

let attr_entry_matches st e =
  Array.length e.ae_syms = st.a_count && attr_entry_matches_from st e 0

(* Slot holding the pending attrs, or the empty slot where they belong. *)
let rec al_find st i =
  let e = st.al_table.(i) in
  if Array.length e.ae_syms = 0 || attr_entry_matches st e then i
  else al_find st ((i + 1) land (al_cap - 1))

(* The materialized list for the current element's pending attrs: the
   shared cached list on a hit, a freshly built and inserted one on a
   miss. *)
let attr_list_of st =
  let h = attr_hash st in
  let mask = al_cap - 1 in
  let slot = al_find st (h land mask) in
  let e = st.al_table.(slot) in
  if Array.length e.ae_syms > 0 then e.ae_list
  else begin
    let slot =
      if st.al_size >= al_bound then begin
        Array.fill st.al_table 0 al_cap ae_empty;
        st.al_size <- 0;
        Pf_obs.Counter.incr m_attr_cache_resets;
        h land mask
      end
      else slot
    in
    let syms = Array.sub st.a_syms 0 st.a_count in
    let vals =
      Array.init st.a_count (fun k -> Bytes.sub_string st.arena st.a_off.(k) st.a_len.(k))
    in
    let rec build k =
      if k = st.a_count then [] else (Symbol.name syms.(k), vals.(k)) :: build (k + 1)
    in
    let list = build 0 in
    st.al_table.(slot) <- { ae_syms = syms; ae_vals = vals; ae_list = list };
    st.al_size <- st.al_size + 1;
    Pf_obs.Gauge.set_max m_attr_cache_entries (float_of_int st.al_size);
    list
  end

(* Cold path of [attrs_loop]: double the pending-attr arrays. *)
let grow_pending st =
  let cap = 2 * st.a_count in
  let grow a =
    let b = Array.make cap 0 in
    Array.blit a 0 b 0 st.a_count;
    b
  in
  st.a_syms <- grow st.a_syms;
  st.a_off <- grow st.a_off;
  st.a_len <- grow st.a_len

(* Attribute list in document order, shared from the per-domain cache. *)
let rec attrs_loop cur st =
  skip_space cur;
  match peek cur with
  | '>' | '/' | '?' -> ()
  | _ ->
    let npos = read_name_start cur in
    let nlen = cur.pos - npos in
    skip_space cur;
    expect cur '=';
    skip_space cur;
    let off = st.arena_len in
    read_attr_value_zc cur st;
    let len = st.arena_len - off in
    let sym = Symbol.intern_sub cur.src ~pos:npos ~len:nlen in
    if st.a_count = Array.length st.a_syms then grow_pending st;
    st.a_syms.(st.a_count) <- sym;
    st.a_off.(st.a_count) <- off;
    st.a_len.(st.a_count) <- len;
    st.a_count <- st.a_count + 1;
    attrs_loop cur st

let read_attrs_zc cur st =
  st.a_count <- 0;
  st.arena_len <- 0;
  attrs_loop cur st;
  if st.a_count = 0 then [] else attr_list_of st

(* Character data: raw runs are reported as spans of [src]; decoded
   entities go through the entity buffer one at a time. [n_events] is the
   caller's per-document counter (passing the ref does not allocate). *)
let text_flush cur (h : zc_handler) n_events start =
  if cur.pos > start then begin
    incr n_events;
    h.zc_text cur.src start (cur.pos - start)
  end

let rec text_loop cur st (h : zc_handler) n_events start =
  if eof cur then text_flush cur h n_events start
  else
    let c = peek cur in
    if c = '<' then text_flush cur h n_events start
    else if c = '&' then begin
      text_flush cur h n_events start;
      advance cur;
      Buffer.clear st.entity_buf;
      decode_entity cur st.entity_buf;
      incr n_events;
      h.zc_text (Buffer.contents st.entity_buf) 0 (Buffer.length st.entity_buf);
      text_loop cur st h n_events cur.pos
    end
    else begin
      advance cur;
      text_loop cur st h n_events start
    end

let read_text_zc cur st h n_events = text_loop cur st h n_events cur.pos

let fold_zc src (h : zc_handler) =
  let cur = { src; pos = 0 } in
  let n_events = ref 0 in
  let depth = ref 0 and max_depth = ref 0 in
  let opened () =
    incr n_events;
    incr depth;
    if !depth > !max_depth then max_depth := !depth
  in
  (* open-element stack of interned symbols *)
  let stack = ref (Array.make 16 (-1)) in
  let sp = ref 0 in
  let push sym =
    if !sp = Array.length !stack then begin
      let bigger = Array.make (2 * !sp) (-1) in
      Array.blit !stack 0 bigger 0 !sp;
      stack := bigger
    end;
    !stack.(!sp) <- sym;
    incr sp
  in
  let st = Domain.DLS.get zc_state_key in
  let rec loop () =
    if eof cur then ()
    else if peek cur = '<' then begin
      advance cur;
      (match peek cur with
      | '?' ->
        advance cur;
        let stop = find_str cur "?>" in
        incr n_events;
        cur.pos <- stop + 2
      | '!' ->
        advance cur;
        if looking_at cur "--" then begin
          cur.pos <- cur.pos + 2;
          let stop = find_str cur "-->" in
          incr n_events;
          cur.pos <- stop + 3
        end
        else if looking_at cur "[CDATA[" then begin
          cur.pos <- cur.pos + 7;
          let stop = find_str cur "]]>" in
          incr n_events;
          h.zc_text cur.src cur.pos (stop - cur.pos);
          cur.pos <- stop + 3
        end
        else if looking_at cur "DOCTYPE" then begin
          cur.pos <- cur.pos + 7;
          skip_doctype cur
        end
        else fail cur "unexpected markup declaration"
      | '/' ->
        advance cur;
        let npos = read_name_start cur in
        let nlen = cur.pos - npos in
        skip_space cur;
        expect cur '>';
        if !sp > 0 then begin
          let top = !stack.(!sp - 1) in
          if span_equals (Symbol.name top) cur.src npos nlen then begin
            decr sp;
            incr n_events;
            decr depth;
            h.zc_end top
          end
          else
            fail cur
              (Printf.sprintf "mismatched end tag </%s>, expected </%s>"
                 (String.sub cur.src npos nlen) (Symbol.name top))
        end
        else
          fail cur
            (Printf.sprintf "unexpected end tag </%s>" (String.sub cur.src npos nlen))
      | _ ->
        let npos = read_name_start cur in
        let nlen = cur.pos - npos in
        let sym = Symbol.intern_sub cur.src ~pos:npos ~len:nlen in
        let attrs = read_attrs_zc cur st in
        skip_space cur;
        if peek cur = '/' then begin
          advance cur;
          expect cur '>';
          opened ();
          h.zc_start sym attrs;
          incr n_events;
          decr depth;
          h.zc_end sym
        end
        else begin
          expect cur '>';
          push sym;
          opened ();
          h.zc_start sym attrs
        end);
      loop ()
    end
    else begin
      read_text_zc cur st h n_events;
      loop ()
    end
  in
  loop ();
  if !sp > 0 then
    fail cur (Printf.sprintf "unclosed element <%s>" (Symbol.name !stack.(!sp - 1)));
  Pf_obs.Counter.add m_events !n_events;
  Pf_obs.Gauge.set_max m_max_depth (float_of_int !max_depth)

let is_blank s = String.for_all is_space s

type builder = {
  b_tag : string;
  b_attrs : (string * string) list;
  mutable b_children : Tree.node list;  (* reversed *)
}

let parse_document src =
  (* Stack of open elements being built; [root] is set when the outermost
     element closes. *)
  let stack : builder list ref = ref [] in
  let root : Tree.element option ref = ref None in
  let cur_for_errors = { src; pos = String.length src } in
  let finish (b : builder) : Tree.element =
    { Tree.tag = b.b_tag; attrs = b.b_attrs; children = List.rev b.b_children }
  in
  let on_event () ev =
    match ev with
    | Start_element (tag, attrs) ->
      if !root <> None && !stack = [] then
        fail cur_for_errors "content after the root element";
      stack := { b_tag = tag; b_attrs = attrs; b_children = [] } :: !stack
    | End_element _ -> (
      match !stack with
      | b :: rest ->
        stack := rest;
        let e = finish b in
        (match rest with
        | parent :: _ -> parent.b_children <- Tree.Element e :: parent.b_children
        | [] -> root := Some e)
      | [] -> assert false)
    | Chars s -> (
      match !stack with
      | parent :: _ when not (is_blank s) ->
        parent.b_children <- Tree.Text s :: parent.b_children
      | _ -> ())
    | Comment _ | Pi _ -> ()
  in
  Pf_obs.Trace.with_span "parse" (fun () -> fold_events src ~init:() ~f:on_event);
  Pf_obs.Counter.incr m_documents;
  match !root with
  | Some e -> { Tree.root = e }
  | None -> fail cur_for_errors "no root element"

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_document s
