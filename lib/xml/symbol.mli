(** Global, domain-safe tag interner.

    Tag names are hashconsed to dense integers once — at SAX parse and at
    expression compile time — so the engines' hot structures key on
    machine ints and the match loops never hash or compare strings.

    The mapping is {e global and stable across domains}: interning the
    same name on any domain, in any order, yields the same symbol, and
    distinct names always yield distinct symbols (the property the test
    suite checks by interning concurrently from several domains). Each
    domain keeps a private read cache in front of the mutex-guarded
    authoritative table, so steady-state interning is an uncontended
    domain-local probe with no allocation.

    The per-domain read cache is bounded: it holds at most
    {!dls_cache_bound} entries and is reset wholesale when the bound is
    reached (the authoritative table keeps every assignment, so a reset
    only costs re-probing the locked path). Its high-water size and reset
    count are exported through the ["symbol"] metrics registry as the
    [dls_cache_entries] gauge and [dls_cache_resets] counter.

    Symbols are never reclaimed; the global table grows with the number
    of distinct tag names seen by the process (bounded by the vocabulary,
    not the document stream). *)

type t = int
(** A dense symbol: [0 <= sym < count ()]. *)

val intern : string -> t
(** Return the symbol for a name, assigning the next dense id on first
    sight. Safe to call from any domain. *)

val intern_sub : string -> pos:int -> len:int -> t
(** [intern_sub s ~pos ~len] interns the substring [s.[pos..pos+len-1]]
    without materializing it: on a domain-cache hit (the steady state for
    a DTD-driven stream) no string is allocated at all. Equivalent to
    [intern (String.sub s pos len)]. Raises [Invalid_argument] if the
    range is out of bounds. *)

val find : string -> t option
(** Lookup without inserting: [None] if the name was never interned. *)

val name : t -> string
(** Inverse mapping. Raises [Invalid_argument] on an id never returned by
    {!intern}. The returned string is the canonical interned spelling and
    is shared, never a fresh copy. *)

val count : unit -> int
(** Number of symbols interned so far, process-wide. *)

val dls_cache_bound : int
(** Maximum live entries in a per-domain read cache before it is reset. *)

val metrics : Pf_obs.Registry.t
(** The ["symbol"] registry: [dls_cache_entries] gauge (high-water live
    entries in any domain's cache) and [dls_cache_resets] counter. *)

val pp : Format.formatter -> t -> unit
