(** Global, domain-safe tag interner.

    Tag names are hashconsed to dense integers once — at SAX parse and at
    expression compile time — so the engines' hot structures key on
    machine ints and the match loops never hash or compare strings.

    The mapping is {e global and stable across domains}: interning the
    same name on any domain, in any order, yields the same symbol, and
    distinct names always yield distinct symbols (the property the test
    suite checks by interning concurrently from several domains). Each
    domain keeps a private read cache in front of the mutex-guarded
    authoritative table, so steady-state interning is an uncontended
    domain-local hashtable hit.

    Symbols are never reclaimed; the table grows with the number of
    distinct tag names seen by the process (bounded by the vocabulary,
    not the document stream). *)

type t = int
(** A dense symbol: [0 <= sym < count ()]. *)

val intern : string -> t
(** Return the symbol for a name, assigning the next dense id on first
    sight. Safe to call from any domain. *)

val find : string -> t option
(** Lookup without inserting: [None] if the name was never interned. *)

val name : t -> string
(** Inverse mapping. Raises [Invalid_argument] on an id never returned by
    {!intern}. *)

val count : unit -> int
(** Number of symbols interned so far, process-wide. *)

val pp : Format.formatter -> t -> unit
