(* Global, domain-safe tag interner (string <-> dense int).

   Interning must agree across domains: the service's worker replicas
   compile expressions and parse documents on their own domains, and a
   symbol assigned on one domain has to denote the same tag everywhere.
   The authoritative table is guarded by a mutex; every domain keeps a
   private read cache (Domain.DLS) in front of it, so the steady-state
   cost of [intern] is one lookup in an uncontended, domain-local table —
   no lock, no cross-domain traffic.

   The read cache is a fixed-capacity open-addressing table rather than a
   Hashtbl for two reasons. First, lookups must work on a substring of
   the source buffer without materializing it ([intern_sub] is the SAX
   cursor's hot path; a Hashtbl probe would need the key string to
   exist). Second, the cache must be bounded: an adversarial or
   pathological stream of distinct names would otherwise grow every
   domain's cache without limit. When a domain's cache reaches
   [dls_cache_bound] live entries it is reset wholesale — the global
   table still holds every assignment, so a reset only costs re-probing
   the mutex-guarded path until the working set is cached again.

   The sym -> name direction is an immutable array republished (copy on
   insert) through an Atomic: readers never observe a partially filled
   slot, and a symbol can only reach another domain through some
   synchronizing channel that also orders the publish before the read. *)

type t = int

(* Interner-wide metrics. Counters/gauges are monitoring-grade plain
   mutable fields; concurrent bumps from several domains may drop an
   increment, which is acceptable for cache telemetry. *)
let metrics = Pf_obs.Registry.create "symbol"

let m_cache_entries =
  (* per-domain caches: replica totals sum, they are not a shared high-water *)
  Pf_obs.Gauge.make ~registry:metrics "dls_cache_entries" ~merge:Pf_obs.Gauge.Sum
    ~help:"high-water live entries in a per-domain symbol read cache"

let m_cache_resets =
  Pf_obs.Counter.make ~registry:metrics "dls_cache_resets"
    ~help:"per-domain symbol read caches reset after reaching the bound"

let lock = Mutex.create ()
let global : (string, int) Hashtbl.t = Hashtbl.create 256 (* guarded by [lock] *)
let names : string array Atomic.t = Atomic.make [||] (* length = #symbols *)

(* Per-domain read cache: open addressing, linear probing, power-of-two
   capacity. [vals.(i) >= 0] marks a live slot; [keys.(i)] is then the
   canonical name string. Capacity is 2x the bound so the load factor
   never exceeds 1/2 and probe chains stay short. *)
let dls_cache_bound = 4096

let cache_capacity = 8192 (* power of two, = 2 * dls_cache_bound *)

type cache = {
  keys : string array;
  vals : int array;
  mutable size : int;
}

let cache_key : cache Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { keys = Array.make cache_capacity ""; vals = Array.make cache_capacity (-1); size = 0 })

(* FNV-1a over a substring: no allocation, decent avalanche for the short
   ASCII names that dominate tag vocabularies. The helpers are top-level
   tail recursions, not local closures or refs — this is the per-name hot
   path of the zero-copy SAX cursor and must not allocate. *)
let rec hash_sub_loop s i stop h =
  if i = stop then h
  else
    hash_sub_loop s (i + 1) stop
      ((h lxor Char.code (String.unsafe_get s i)) * 0x01000193 land 0x3FFFFFFF)

let hash_sub s pos len = hash_sub_loop s pos (pos + len) 0x811c9dc5

let rec span_eq_from key s pos i len =
  i = len || (String.unsafe_get key i = String.unsafe_get s (pos + i) && span_eq_from key s pos (i + 1) len)

let key_equals key s pos len = String.length key = len && span_eq_from key s pos 0 len

(* Index of the slot holding [s.[pos..pos+len)] or of the empty slot where
   it would go. The load factor bound guarantees an empty slot exists. *)
let rec find_slot_from c s pos len i =
  if c.vals.(i) < 0 || key_equals c.keys.(i) s pos len then i
  else find_slot_from c s pos len ((i + 1) land (cache_capacity - 1))

let find_slot c s pos len h = find_slot_from c s pos len (h land (cache_capacity - 1))

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
    Mutex.unlock lock;
    v
  | exception e ->
    Mutex.unlock lock;
    raise e

let global_intern name =
  locked (fun () ->
      match Hashtbl.find_opt global name with
      | Some s -> s
      | None ->
        let s = Hashtbl.length global in
        Hashtbl.add global name s;
        let old = Atomic.get names in
        let bigger = Array.make (s + 1) name in
        Array.blit old 0 bigger 0 s;
        Atomic.set names bigger;
        s)

(* Insert into the domain cache, resetting first if the bound is hit.
   [slot] is the probe result for the current table state. *)
let cache_insert c slot name sym s pos len h =
  let slot =
    if c.size >= dls_cache_bound then begin
      Array.fill c.vals 0 cache_capacity (-1);
      (* drop the string refs so evicted names can be collected *)
      Array.fill c.keys 0 cache_capacity "";
      c.size <- 0;
      Pf_obs.Counter.incr m_cache_resets;
      find_slot c s pos len h
    end
    else slot
  in
  c.keys.(slot) <- name;
  c.vals.(slot) <- sym;
  c.size <- c.size + 1;
  Pf_obs.Gauge.set_max m_cache_entries (float_of_int c.size)

let intern_sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Symbol.intern_sub";
  let c = Domain.DLS.get cache_key in
  let h = hash_sub s pos len in
  let slot = find_slot c s pos len h in
  let v = c.vals.(slot) in
  if v >= 0 then v
  else begin
    (* miss: materialize the name once, then take the mutex-guarded path *)
    let name = if pos = 0 && len = String.length s then s else String.sub s pos len in
    let sym = global_intern name in
    (* store the canonical interned spelling, not the caller's buffer *)
    let name = (Atomic.get names).(sym) in
    cache_insert c slot name sym s pos len h;
    sym
  end

let intern name = intern_sub name ~pos:0 ~len:(String.length name)

let find s =
  let len = String.length s in
  let c = Domain.DLS.get cache_key in
  let h = hash_sub s 0 len in
  let slot = find_slot c s 0 len h in
  let v = c.vals.(slot) in
  if v >= 0 then Some v
  else
    match locked (fun () -> Hashtbl.find_opt global s) with
    | Some sym ->
      cache_insert c slot (Atomic.get names).(sym) sym s 0 len h;
      Some sym
    | None -> None

let name s =
  let ns = Atomic.get names in
  if s < 0 || s >= Array.length ns then
    invalid_arg (Printf.sprintf "Symbol.name: unknown symbol %d" s)
  else ns.(s)

let count () = Array.length (Atomic.get names)

let pp fmt s = Format.pp_print_string fmt (name s)
