(* Global, domain-safe tag interner (string <-> dense int).

   Interning must agree across domains: the service's worker replicas
   compile expressions and parse documents on their own domains, and a
   symbol assigned on one domain has to denote the same tag everywhere.
   The authoritative table is guarded by a mutex; every domain keeps a
   private read cache (Domain.DLS) in front of it, so the steady-state
   cost of [intern] is one lookup in an uncontended, domain-local
   hashtable — no lock, no cross-domain traffic.

   The sym -> name direction is an immutable array republished (copy on
   insert) through an Atomic: readers never observe a partially filled
   slot, and a symbol can only reach another domain through some
   synchronizing channel that also orders the publish before the read. *)

type t = int

let lock = Mutex.create ()
let global : (string, int) Hashtbl.t = Hashtbl.create 256 (* guarded by [lock] *)
let names : string array Atomic.t = Atomic.make [||] (* length = #symbols *)

let cache_key : (string, int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
    Mutex.unlock lock;
    v
  | exception e ->
    Mutex.unlock lock;
    raise e

let intern name =
  let cache = Domain.DLS.get cache_key in
  match Hashtbl.find_opt cache name with
  | Some s -> s
  | None ->
    let s =
      locked (fun () ->
          match Hashtbl.find_opt global name with
          | Some s -> s
          | None ->
            let s = Hashtbl.length global in
            Hashtbl.add global name s;
            let old = Atomic.get names in
            let bigger = Array.make (s + 1) name in
            Array.blit old 0 bigger 0 s;
            Atomic.set names bigger;
            s)
    in
    Hashtbl.add cache name s;
    s

let find name =
  let cache = Domain.DLS.get cache_key in
  match Hashtbl.find_opt cache name with
  | Some s -> Some s
  | None -> (
    match locked (fun () -> Hashtbl.find_opt global name) with
    | Some s ->
      Hashtbl.add cache name s;
      Some s
    | None -> None)

let name s =
  let ns = Atomic.get names in
  if s < 0 || s >= Array.length ns then
    invalid_arg (Printf.sprintf "Symbol.name: unknown symbol %d" s)
  else ns.(s)

let count () = Array.length (Atomic.get names)

let pp fmt s = Format.pp_print_string fmt (name s)
