type step = {
  tag : string;
  sym : Symbol.t;
  attrs : (string * string) list;
  occurrence : int;
  child_index : int;
}

type t = { steps : step array }

let length t = Array.length t.steps

let tags t = Array.to_list (Array.map (fun s -> s.tag) t.steps)

let structure t = Array.map (fun s -> s.child_index) t.steps

(* Occurrence numbers are computed as the path is extended: [counts.(sym)]
   is how many times the tag already occurred on the current root-to-node
   path. Counts are decremented on the way back up, so one array serves the
   whole traversal — and because tags are interned to dense symbols the
   bookkeeping is a bounds-checked array access, not a string hash. *)
type counter = { mutable counts : int array }

let make_counter () = { counts = Array.make 64 0 }

let bump c sym =
  if sym >= Array.length c.counts then begin
    let bigger = Array.make (max (sym + 1) (2 * Array.length c.counts)) 0 in
    Array.blit c.counts 0 bigger 0 (Array.length c.counts);
    c.counts <- bigger
  end;
  let n = c.counts.(sym) + 1 in
  c.counts.(sym) <- n;
  n

let unbump c sym = c.counts.(sym) <- c.counts.(sym) - 1

let of_document (doc : Tree.t) : t list =
  let counter = make_counter () in
  let paths = ref [] in
  let rec walk (e : Tree.element) child_index prefix =
    let sym = Symbol.intern e.Tree.tag in
    let occurrence = bump counter sym in
    (* text content rides along as the reserved pseudo-attribute #text, so
       text() filters evaluate through the ordinary attribute machinery *)
    let attrs =
      match Tree.text_content e with
      | "" -> e.Tree.attrs
      | txt -> e.Tree.attrs @ [ "#text", txt ]
    in
    let step = { tag = e.Tree.tag; sym; attrs; occurrence; child_index } in
    let prefix = step :: prefix in
    (match Tree.element_children e with
    | [] -> paths := { steps = Array.of_list (List.rev prefix) } :: !paths
    | children ->
      List.iteri (fun i c -> walk c (i + 1) prefix) children);
    unbump counter sym
  in
  walk doc.Tree.root 1 [];
  List.rev !paths

(* Streaming extraction: maintain the open-element stack; a path is
   complete when an element containing no child elements closes. The stack
   carries each open element's step plus its running element-child count
   (the next child's child_index). *)
type open_element = {
  oe_step : step;
  mutable oe_children : int;  (* element children seen so far *)
  oe_text : Buffer.t;  (* immediate text seen so far *)
}

let fold_of_string src ~init ~f =
  let counter = make_counter () in
  let stack : open_element list ref = ref [] in
  (* Text seen so far becomes the #text pseudo-attribute. For ancestors
     with mixed content this covers only the text preceding the branch
     point — text() on non-leaf steps is best-effort in streaming mode
     (see the interface). *)
  let finalize oe =
    match String.trim (Buffer.contents oe.oe_text) with
    | "" -> oe.oe_step
    | txt -> { oe.oe_step with attrs = oe.oe_step.attrs @ [ "#text", txt ] }
  in
  let emit acc =
    let steps = List.rev_map finalize !stack in
    f acc { steps = Array.of_list steps }
  in
  let on_event acc = function
    | Sax.Start_element (tag, attrs) ->
      let child_index =
        match !stack with
        | [] -> 1
        | parent :: _ ->
          parent.oe_children <- parent.oe_children + 1;
          parent.oe_children
      in
      let sym = Symbol.intern tag in
      let step = { tag; sym; attrs; occurrence = bump counter sym; child_index } in
      stack := { oe_step = step; oe_children = 0; oe_text = Buffer.create 8 } :: !stack;
      acc
    | Sax.End_element _ -> (
      match !stack with
      | [] -> acc
      | top :: rest ->
        let acc = if top.oe_children = 0 then emit acc else acc in
        unbump counter top.oe_step.sym;
        stack := rest;
        acc)
    | Sax.Chars s -> (
      match !stack with
      | top :: _ ->
        Buffer.add_string top.oe_text s;
        acc
      | [] -> acc)
    | Sax.Comment _ | Sax.Pi _ -> acc
  in
  Sax.fold_events src ~init ~f:on_event

let of_string src =
  List.rev (fold_of_string src ~init:[] ~f:(fun acc p -> p :: acc))

let of_tags tag_list =
  let counter = make_counter () in
  let steps =
    List.map
      (fun tag ->
        let sym = Symbol.intern tag in
        { tag; sym; attrs = []; occurrence = bump counter sym; child_index = 1 })
      tag_list
  in
  { steps = Array.of_list steps }

let pp fmt t =
  Format.fprintf fmt "@[<h>";
  Array.iteri
    (fun i s ->
      if i > 0 then Format.pp_print_string fmt "/";
      Format.fprintf fmt "%s^%d" s.tag s.occurrence)
    t.steps;
  Format.fprintf fmt "@]"
