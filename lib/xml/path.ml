type step = {
  mutable tag : string;
  mutable sym : Symbol.t;
  mutable attrs : (string * string) list;
  mutable occurrence : int;
  mutable child_index : int;
}

type t = { steps : step array }

let length t = Array.length t.steps

let tags t = Array.to_list (Array.map (fun s -> s.tag) t.steps)

let structure t = Array.map (fun s -> s.child_index) t.steps

let dummy_step = { tag = ""; sym = 0; attrs = []; occurrence = 0; child_index = 0 }

(* Occurrence numbers are computed as the path is extended: [counts.(sym)]
   is how many times the tag already occurred on the current root-to-node
   path. Counts are decremented on the way back up, so one array serves the
   whole traversal — and because tags are interned to dense symbols the
   bookkeeping is a bounds-checked array access, not a string hash. *)
type counter = { mutable counts : int array }

let make_counter () = { counts = Array.make 64 0 }

let bump c sym =
  if sym >= Array.length c.counts then begin
    let bigger = Array.make (max (sym + 1) (2 * Array.length c.counts)) 0 in
    Array.blit c.counts 0 bigger 0 (Array.length c.counts);
    c.counts <- bigger
  end;
  let n = c.counts.(sym) + 1 in
  c.counts.(sym) <- n;
  n

let unbump c sym = c.counts.(sym) <- c.counts.(sym) - 1

(* Append the #text pseudo-attribute, keeping it last. Same cell count as
   [attrs @ [ "#text", txt ]] but in one pass. *)
let rec attrs_with_text attrs txt =
  match attrs with
  | [] -> [ ("#text", txt) ]
  | a :: tl -> a :: attrs_with_text tl txt

let of_document (doc : Tree.t) : t list =
  let counter = make_counter () in
  (* steps of the path currently being walked, indexed by depth; each leaf
     snapshots its prefix with one Array.sub — no per-leaf list append,
     reverse or of_list *)
  let scratch = ref (Array.make 16 dummy_step) in
  let paths = ref [] in
  let rec walk (e : Tree.element) child_index depth =
    let sym = Symbol.intern e.Tree.tag in
    let occurrence = bump counter sym in
    (* text content rides along as the reserved pseudo-attribute #text, so
       text() filters evaluate through the ordinary attribute machinery *)
    let attrs =
      match Tree.text_content e with
      | "" -> e.Tree.attrs
      | txt -> attrs_with_text e.Tree.attrs txt
    in
    if depth >= Array.length !scratch then begin
      let bigger = Array.make (2 * Array.length !scratch) dummy_step in
      Array.blit !scratch 0 bigger 0 (Array.length !scratch);
      scratch := bigger
    end;
    !scratch.(depth) <- { tag = e.Tree.tag; sym; attrs; occurrence; child_index };
    (match Tree.element_children e with
    | [] -> paths := { steps = Array.sub !scratch 0 (depth + 1) } :: !paths
    | children -> List.iteri (fun i c -> walk c (i + 1) (depth + 1)) children);
    unbump counter sym
  in
  walk doc.Tree.root 1 0;
  List.rev !paths

(* ------------------------------------------------------------------ *)
(* Streaming extraction over the zero-copy SAX driver.

   All per-element state lives in a reusable arena indexed by depth: two
   owned step records (the element as opened, and its #text-augmented
   form) whose fields are overwritten in place, a byte-array text
   accumulator, and the running element-child count. The emitted path is
   a per-depth cached record whose steps array is overwritten in place.
   Two bounded pools make even a stream of {e distinct} documents
   allocation-free once warm: trimmed text spans are canonicalized to
   shared strings, and the #text-augmented attribute lists are memoized
   per (attribute list, text) pair — together with the SAX driver's
   attribute-list cache, a steady-state document is extracted with zero
   per-element and per-path allocation. *)

let pool_bound = 2048

let pool_cap = 4096 (* power of two, = 2 * pool_bound *)

type scan_cell = {
  sc_base : step;  (* owned; fields overwritten at element open (no #text) *)
  sc_final : step;  (* owned; the #text-augmented form *)
  mutable sc_fin_attrs : (string * string) list;  (* attrs [sc_final] derives from *)
  mutable sc_fin_txt : string;  (* canonical text [sc_final] carries; "" = invalid *)
  mutable sc_text : Bytes.t;  (* immediate text seen so far *)
  mutable sc_text_len : int;
  mutable sc_children : int;  (* element children seen so far *)
}

(* #text-augmented attribute lists, memoized per (attrs, text) identity
   pair. Both keys are canonical instances (the SAX attr cache and the
   text pool), so physical equality is the right comparison; an instance
   recreated after a cache reset merely costs a duplicate entry. *)
type fin_entry = {
  fe_attrs : (string * string) list;  (* key: the attrs instance *)
  fe_txt : string;  (* key: the canonical text instance; "" = empty slot *)
  fe_list : (string * string) list;  (* fe_attrs with ("#text", fe_txt) last *)
}

let fe_empty = { fe_attrs = []; fe_txt = ""; fe_list = [] }

type scanner = {
  sk_counter : counter;
  mutable sk_cells : scan_cell array;
  mutable sk_ncells : int;  (* cells initialized *)
  mutable sk_depth : int;
  (* per-depth reusable emission targets: [sk_emit_paths.(d)] is a path of
     length d+1 whose steps array is [sk_emit_steps.(d)] *)
  mutable sk_emit_steps : step array array;
  mutable sk_emit_paths : t array;
  (* bounded span -> canonical-string pool for trimmed element text *)
  sk_txt_keys : string array;  (* pool_cap slots; "" = empty *)
  mutable sk_txt_size : int;
  (* bounded (attrs, text) -> #text-augmented attrs pool *)
  sk_fin_table : fin_entry array;  (* pool_cap slots *)
  mutable sk_fin_size : int;
}

let create_scanner () =
  {
    sk_counter = make_counter ();
    sk_cells = [||];
    sk_ncells = 0;
    sk_depth = 0;
    sk_emit_steps = [||];
    sk_emit_paths = [||];
    sk_txt_keys = Array.make pool_cap "";
    sk_txt_size = 0;
    sk_fin_table = Array.make pool_cap fe_empty;
    sk_fin_size = 0;
  }

let new_step () = { tag = ""; sym = 0; attrs = []; occurrence = 0; child_index = 0 }

let ensure_cell sk d =
  if d >= Array.length sk.sk_cells then begin
    let cap = max 16 (max (d + 1) (2 * Array.length sk.sk_cells)) in
    let fresh_cell () =
      {
        sc_base = new_step ();
        sc_final = new_step ();
        sc_fin_attrs = [];
        sc_fin_txt = "";
        sc_text = Bytes.create 16;
        sc_text_len = 0;
        sc_children = 0;
      }
    in
    let bigger = Array.init cap (fun i ->
        if i < sk.sk_ncells then sk.sk_cells.(i) else fresh_cell ())
    in
    sk.sk_cells <- bigger;
    sk.sk_ncells <- cap
  end

let ensure_emit sk d =
  (* index d holds the emission pair for paths of length d+1 *)
  if d >= Array.length sk.sk_emit_steps then begin
    let old = Array.length sk.sk_emit_steps in
    let cap = max 16 (max (d + 1) (2 * old)) in
    let steps = Array.init cap (fun i ->
        if i < old then sk.sk_emit_steps.(i) else Array.make (i + 1) dummy_step)
    in
    let paths = Array.init cap (fun i ->
        if i < old then sk.sk_emit_paths.(i) else { steps = steps.(i) })
    in
    sk.sk_emit_steps <- steps;
    sk.sk_emit_paths <- paths
  end

(* FNV-1a over a substring, as in Symbol's read cache. The pool helpers
   are top-level tail recursions, not local closures or refs — they run
   per emitted step and must not allocate on a hit. *)
let rec hash_span_loop s i stop h =
  if i = stop then h
  else
    hash_span_loop s (i + 1) stop
      ((h lxor Char.code (String.unsafe_get s i)) * 0x01000193 land 0x3FFFFFFF)

let hash_span s pos len = hash_span_loop s pos (pos + len) 0x811c9dc5

let rec span_eq_from key s pos i len =
  i = len
  || (String.unsafe_get key i = String.unsafe_get s (pos + i)
     && span_eq_from key s pos (i + 1) len)

let span_eq key s pos len = String.length key = len && span_eq_from key s pos 0 len

(* Slot holding the span's canonical string, or the empty slot for it. *)
let rec txt_find sk s pos len i =
  let k = sk.sk_txt_keys.(i) in
  if String.length k = 0 || span_eq k s pos len then i
  else txt_find sk s pos len ((i + 1) land (pool_cap - 1))

(* Canonical shared string for a (non-empty) text span: zero allocation
   on a pool hit. The pool resets wholesale at [pool_bound] entries. *)
let text_pool_get sk s pos len =
  let h = hash_span s pos len in
  let slot = txt_find sk s pos len (h land (pool_cap - 1)) in
  let k = sk.sk_txt_keys.(slot) in
  if String.length k > 0 then k
  else begin
    let slot =
      if sk.sk_txt_size >= pool_bound then begin
        Array.fill sk.sk_txt_keys 0 pool_cap "";
        sk.sk_txt_size <- 0;
        h land (pool_cap - 1)
      end
      else slot
    in
    let fresh = String.sub s pos len in
    sk.sk_txt_keys.(slot) <- fresh;
    sk.sk_txt_size <- sk.sk_txt_size + 1;
    fresh
  end

(* Slot holding the (attrs, txt) entry, or the empty slot for it. Both
   keys are canonical instances, so physical equality is the comparison. *)
let rec fin_find sk attrs txt i =
  let e = sk.sk_fin_table.(i) in
  if String.length e.fe_txt = 0 || (e.fe_txt == txt && e.fe_attrs == attrs) then i
  else fin_find sk attrs txt ((i + 1) land (pool_cap - 1))

let fin_pool_get sk attrs txt =
  (* [txt] is canonical, so hashing its contents is stable; the attrs
     instance cannot be hashed — same-text different-attrs entries
     resolve by probing *)
  let h = hash_span txt 0 (String.length txt) in
  let slot = fin_find sk attrs txt (h land (pool_cap - 1)) in
  let e = sk.sk_fin_table.(slot) in
  if String.length e.fe_txt > 0 then e.fe_list
  else begin
    let slot =
      if sk.sk_fin_size >= pool_bound then begin
        Array.fill sk.sk_fin_table 0 pool_cap fe_empty;
        sk.sk_fin_size <- 0;
        h land (pool_cap - 1)
      end
      else slot
    in
    let list = attrs_with_text attrs txt in
    sk.sk_fin_table.(slot) <- { fe_attrs = attrs; fe_txt = txt; fe_list = list };
    sk.sk_fin_size <- sk.sk_fin_size + 1;
    list
  end

(* Mirrors [String.trim]'s whitespace set. *)
let is_trim_space = function
  | ' ' | '\012' | '\n' | '\r' | '\t' -> true
  | _ -> false

let rec trim_lo b i hi =
  if i < hi && is_trim_space (Bytes.unsafe_get b i) then trim_lo b (i + 1) hi else i

let rec trim_hi b lo i =
  if i > lo && is_trim_space (Bytes.unsafe_get b (i - 1)) then trim_hi b lo (i - 1) else i

(* The step for depth [i] as it should appear in an emitted path: the base
   step, augmented with the (trimmed) text accumulated so far. For
   ancestors with mixed content this covers only the text preceding the
   branch point — text() on non-leaf steps is best-effort in streaming
   mode (see the interface). *)
let finalize_cell sk cell =
  if cell.sc_text_len = 0 then cell.sc_base
  else begin
    let b = cell.sc_text in
    let lo = trim_lo b 0 cell.sc_text_len in
    let hi = trim_hi b lo cell.sc_text_len in
    if hi = lo then cell.sc_base
    else begin
      let txt = text_pool_get sk (Bytes.unsafe_to_string b) lo (hi - lo) in
      let base = cell.sc_base in
      if not (cell.sc_fin_txt == txt && cell.sc_fin_attrs == base.attrs) then begin
        cell.sc_final.attrs <- fin_pool_get sk base.attrs txt;
        cell.sc_fin_attrs <- base.attrs;
        cell.sc_fin_txt <- txt
      end;
      let fin = cell.sc_final in
      fin.tag <- base.tag;
      fin.sym <- base.sym;
      fin.occurrence <- base.occurrence;
      fin.child_index <- base.child_index;
      fin
    end
  end

let stream_body sk src ~f =
  (* a previous scan that raised mid-document leaves stale state behind;
     start from a clean slate *)
  if sk.sk_depth <> 0 then begin
    Array.fill sk.sk_counter.counts 0 (Array.length sk.sk_counter.counts) 0;
    sk.sk_depth <- 0
  end;
  (* document-level validation mirroring [Sax.parse_document]: exactly one
     root element, rejected at the same positions (end of input) so a
     streaming engine raises byte-identical errors to the tree oracle *)
  let seen_root = ref false in
  let doc_fail msg =
    raise (Sax.Parse_error (Sax.position_at src (String.length src), msg))
  in
  let zc_start sym attrs =
    let d = sk.sk_depth in
    if d = 0 && !seen_root then doc_fail "content after the root element";
    ensure_cell sk d;
    let cell = sk.sk_cells.(d) in
    let child_index =
      if d = 0 then 1
      else begin
        let parent = sk.sk_cells.(d - 1) in
        parent.sc_children <- parent.sc_children + 1;
        parent.sc_children
      end
    in
    let base = cell.sc_base in
    base.tag <- Symbol.name sym;
    base.sym <- sym;
    base.attrs <- attrs;
    base.occurrence <- bump sk.sk_counter sym;
    base.child_index <- child_index;
    cell.sc_text_len <- 0;
    cell.sc_children <- 0;
    sk.sk_depth <- d + 1
  in
  let zc_text s pos len =
    if sk.sk_depth > 0 then begin
      let cell = sk.sk_cells.(sk.sk_depth - 1) in
      let need = cell.sc_text_len + len in
      if need > Bytes.length cell.sc_text then begin
        let cap = ref (2 * Bytes.length cell.sc_text) in
        while need > !cap do
          cap := 2 * !cap
        done;
        let bigger = Bytes.create !cap in
        Bytes.blit cell.sc_text 0 bigger 0 cell.sc_text_len;
        cell.sc_text <- bigger
      end;
      Bytes.blit_string s pos cell.sc_text cell.sc_text_len len;
      cell.sc_text_len <- need
    end
  in
  let zc_end _sym =
    let d = sk.sk_depth - 1 in
    let cell = sk.sk_cells.(d) in
    if cell.sc_children = 0 then begin
      ensure_emit sk d;
      let out = sk.sk_emit_steps.(d) in
      for i = 0 to d do
        out.(i) <- finalize_cell sk sk.sk_cells.(i)
      done;
      f out (d + 1)
    end;
    unbump sk.sk_counter cell.sc_base.sym;
    sk.sk_depth <- d;
    if d = 0 then seen_root := true
  in
  Sax.fold_zc src { Sax.zc_start; zc_end; zc_text };
  if not !seen_root then doc_fail "no root element"

(* The lowest-level driver: no span of its own, the matching layers wrap
   it (the engine's fully streaming mode records a "stream-match" span
   covering the whole fused parse+match drive). *)
let stream sk src ~f = stream_body sk src ~f

(* [stream] just filled [sk_emit_steps.(n - 1)], which is the steps array
   of the per-depth cached path record — handing that record out costs
   nothing on top of the raw driver. *)
let scan_body sk src ~f =
  stream_body sk src ~f:(fun _steps n -> f sk.sk_emit_paths.(n - 1))

(* In the streaming pipeline parse and path scan are fused — fold_zc
   drives the scanner directly — so one "scan" span covers both. *)
let scan sk src ~f = Pf_obs.Trace.with_span "scan" (fun () -> scan_body sk src ~f)

let scan_string src ~f = scan (create_scanner ()) src ~f

let copy_step (s : step) =
  {
    tag = s.tag;
    sym = s.sym;
    attrs = s.attrs;
    occurrence = s.occurrence;
    child_index = s.child_index;
  }

let fold_of_string src ~init ~f =
  let acc = ref init in
  (* the scanner overwrites the emitted records in place; snapshot them
     (attribute lists and strings are immutable and safely shared) *)
  scan_string src ~f:(fun p -> acc := f !acc { steps = Array.map copy_step p.steps });
  !acc

let of_string src =
  List.rev (fold_of_string src ~init:[] ~f:(fun acc p -> p :: acc))

let of_tags tag_list =
  let counter = make_counter () in
  let steps =
    List.map
      (fun tag ->
        let sym = Symbol.intern tag in
        { tag; sym; attrs = []; occurrence = bump counter sym; child_index = 1 })
      tag_list
  in
  { steps = Array.of_list steps }

let pp fmt t =
  Format.fprintf fmt "@[<h>";
  Array.iteri
    (fun i s ->
      if i > 0 then Format.pp_print_string fmt "/";
      Format.fprintf fmt "%s^%d" s.tag s.occurrence)
    t.steps;
  Format.fprintf fmt "@]"
