(** Root-to-leaf document paths.

    The filtering algorithms of the paper operate on the set of root-to-leaf
    element paths of a document (Section 3.1). Each step records the tag, its
    attributes, its per-path {e occurrence number} (how many times this tag
    name has appeared in the path so far, used by the occurrence
    determination algorithm) and its {e child index} (the structure tuple
    entry [m_k] of Section 5: this element is the [m_k]-th element child of
    its parent, used for nested path filters). *)

type step = {
  mutable tag : string;
  mutable sym : Symbol.t;  (** [Symbol.intern tag], computed once at parse time *)
  mutable attrs : (string * string) list;
      (** attributes in document order; the element's (trimmed) immediate
          text content, if any, is appended as the reserved
          pseudo-attribute [#text], through which [text()] filters are
          evaluated *)
  mutable occurrence : int;  (** 1-based occurrence number of [tag] within the path *)
  mutable child_index : int;  (** 1-based index among parent's element children; 1 for the root *)
}
(** Fields are mutable {e only} so the streaming {!scan} arena can reuse
    records in place; everything else builds steps once and never mutates
    them. Paths from {!of_document}, {!of_string} and {!fold_of_string}
    are fresh and safe to retain. *)

type t = { steps : step array }

val of_document : Tree.t -> t list
(** All root-to-leaf element paths in document order. A document with a
    single element yields one path of length 1. *)

val fold_of_string : string -> init:'a -> f:('a -> t -> 'a) -> 'a
(** Extract paths directly from XML text, one at a time as their leaves
    close, without materializing the document tree — the paper's SAX
    pipeline ("we use a SAX parser and extract one path at a time").
    Paths are visited in document order. Raises {!Sax.Parse_error}.
    Each path is freshly snapshotted and safe to retain; for the
    allocation-free variant see {!scan}. *)

type scanner
(** Reusable streaming-extraction state: the open-element step arena,
    per-depth text accumulators and emission buffers. Reusing one scanner
    across a document stream makes extraction allocation-free in the
    steady state. Not domain-safe; use one scanner per domain. *)

val create_scanner : unit -> scanner

val stream : scanner -> string -> f:(step array -> int -> unit) -> unit
(** [stream sk src ~f] is the lowest-level streaming driver: the current
    root-to-leaf step stack is maintained incrementally over
    {!Sax.fold_zc}, and at each {e leaf's} end-tag event [f steps n] is
    called with the finalized steps of the root-to-leaf path in
    [steps.(0 .. n - 1)]. The array and the step records are arena-owned
    and overwritten after [f] returns — exactly {!scan}'s reuse contract,
    minus the path record. Entries at [n] and beyond are stale; ignore
    them. Feeding publications straight out of this callback is what
    makes the engine's fully streaming match mode tree-free {e and}
    allocation-free. Raises {!Sax.Parse_error} at the same positions as
    the tree parser, including the document-level errors
    {!Sax.parse_document} checks itself ("no root element", "content
    after the root element") — a streaming engine therefore rejects
    exactly the inputs the tree oracle rejects. Unlike {!scan} it records
    no trace span of its own — the matching layer wraps the whole drive
    in one. *)

val scan : scanner -> string -> f:(t -> unit) -> unit
(** [scan sk src ~f] extracts root-to-leaf paths like {!fold_of_string}
    but reuses [sk]'s arenas: the path passed to [f], its steps array
    {e and the step records themselves} are overwritten after [f]
    returns and must not be retained — copy per-step fields you need
    (the tag strings and attribute lists are immutable and safely
    shared). Built on {!Sax.fold_zc}, so tag/attr names are interned
    straight from [src], attribute lists come from a bounded shared
    cache, and character data never becomes intermediate event strings:
    once the caches are warm, extracting a document allocates nothing
    per element or per path. Raises {!Sax.Parse_error}. *)

val scan_string : string -> f:(t -> unit) -> unit
(** [scan (create_scanner ()) src ~f] — one-shot convenience. *)

val of_string : string -> t list
(** [of_string s = fold_of_string s ~init:[] ~f:(fun acc p -> p :: acc)
    |> List.rev]; agrees with [of_document (Sax.parse_document s)], except
    that for mixed-content {e ancestors} the streaming [#text] covers only
    the text preceding the emitted leaf (a leaf's own text is always
    complete). *)

val length : t -> int

val tags : t -> string list
(** Tag names in root-to-leaf order. *)

val structure : t -> int array
(** The structure tuple [<m_1, ..., m_n>] of Section 5. *)

val of_tags : string list -> t
(** Build a bare path from tag names (no attributes, child indices all 1);
    convenience for tests mirroring the paper's examples. *)

val pp : Format.formatter -> t -> unit
