(** Root-to-leaf document paths.

    The filtering algorithms of the paper operate on the set of root-to-leaf
    element paths of a document (Section 3.1). Each step records the tag, its
    attributes, its per-path {e occurrence number} (how many times this tag
    name has appeared in the path so far, used by the occurrence
    determination algorithm) and its {e child index} (the structure tuple
    entry [m_k] of Section 5: this element is the [m_k]-th element child of
    its parent, used for nested path filters). *)

type step = {
  tag : string;
  sym : Symbol.t;  (** [Symbol.intern tag], computed once at parse time *)
  attrs : (string * string) list;
      (** attributes in document order; the element's (trimmed) immediate
          text content, if any, is appended as the reserved
          pseudo-attribute [#text], through which [text()] filters are
          evaluated *)
  occurrence : int;  (** 1-based occurrence number of [tag] within the path *)
  child_index : int;  (** 1-based index among parent's element children; 1 for the root *)
}

type t = { steps : step array }

val of_document : Tree.t -> t list
(** All root-to-leaf element paths in document order. A document with a
    single element yields one path of length 1. *)

val fold_of_string : string -> init:'a -> f:('a -> t -> 'a) -> 'a
(** Extract paths directly from XML text, one at a time as their leaves
    close, without materializing the document tree — the paper's SAX
    pipeline ("we use a SAX parser and extract one path at a time").
    Paths are visited in document order. Raises {!Sax.Parse_error}. *)

val of_string : string -> t list
(** [of_string s = fold_of_string s ~init:[] ~f:(fun acc p -> p :: acc)
    |> List.rev]; agrees with [of_document (Sax.parse_document s)], except
    that for mixed-content {e ancestors} the streaming [#text] covers only
    the text preceding the emitted leaf (a leaf's own text is always
    complete). *)

val length : t -> int

val tags : t -> string list
(** Tag names in root-to-leaf order. *)

val structure : t -> int array
(** The structure tuple [<m_1, ..., m_n>] of Section 5. *)

val of_tags : string list -> t
(** Build a bare path from tag names (no attributes, child indices all 1);
    convenience for tests mirroring the paper's examples. *)

val pp : Format.formatter -> t -> unit
