(** Streaming (SAX-style) XML parser.

    A small, dependency-free parser covering the XML subset the filtering
    workloads exercise: elements, attributes (single or double quoted),
    character data, CDATA sections, comments, processing instructions, a
    DOCTYPE declaration (skipped, including an internal subset) and the five
    predefined entities plus numeric character references.

    The parser reports events in document order; [parse_document] folds the
    events into a {!Tree.t}. Errors carry a line/column position. *)

type event =
  | Start_element of string * (string * string) list
  | End_element of string
  | Chars of string  (** character data; adjacent runs may be split *)
  | Comment of string
  | Pi of string  (** processing instruction, raw content *)

val metrics : Pf_obs.Registry.t
(** Parser-wide metric registry (scope ["sax"]): counters ["events"] and
    ["documents"], gauge ["max_depth"]. The SAX layer is stateless, so one
    registry covers every parse in the process. *)

type position = { line : int; column : int }

exception Parse_error of position * string
(** Raised on malformed input. *)

val pp_position : Format.formatter -> position -> unit

val position_at : string -> int -> position
(** Line/column of byte offset [pos] in [src] (clamped to the end).
    Lets streaming layers above the parser report document-level errors
    — e.g. a missing root element — at the same positions
    {!parse_document} uses. *)

val fold_events : string -> init:'a -> f:('a -> event -> 'a) -> 'a
(** [fold_events s ~init ~f] parses the XML document in [s], calling [f] on
    each event in document order. Raises {!Parse_error} on malformed input.
    Verifies that start and end tags balance. *)

type zc_handler = {
  zc_start : Symbol.t -> (string * string) list -> unit;
      (** element opened: interned tag symbol plus its attributes in
          document order. Attribute {e names} are the interner's canonical
          shared strings; the list (values included) is immutable, safe to
          retain, and shared from a bounded per-domain cache keyed by the
          whole (name, value)* combination — an element whose combination
          was seen before allocates nothing. The list is [[]] for
          attribute-less elements. The cache's high-water size and reset
          count are the ["sax"] registry's [attr_cache_entries] gauge and
          [attr_cache_resets] counter. *)
  zc_end : Symbol.t -> unit;  (** element closed (same symbol as its start) *)
  zc_text : string -> int -> int -> unit;
      (** [zc_text s pos len]: a run of character data as a substring of
          [s]. The span is only valid during the callback — [s] is either
          the source buffer or a reused scratch buffer (decoded entities,
          which are reported as their own runs). Adjacent runs may be
          split; callers accumulate. *)
}

val fold_zc : string -> zc_handler -> unit
(** Zero-copy variant of {!fold_events}: same grammar, same errors at the
    same positions, but tag/attribute names are interned directly from the
    source buffer ({!Symbol.intern_sub}) and character data is delivered
    as in-place spans, so a document whose vocabulary is already interned
    parses without allocating per-element name strings or event values.
    Comments and processing instructions are skipped (counted, not
    reported). *)

val parse_document : string -> Tree.t
(** Parse a complete document into a tree. Whitespace-only text between
    elements is dropped; other text is kept. Raises {!Parse_error}. *)

val parse_file : string -> Tree.t
(** [parse_file path] reads and parses the file at [path]. *)
