(** Streaming (SAX-style) XML parser.

    A small, dependency-free parser covering the XML subset the filtering
    workloads exercise: elements, attributes (single or double quoted),
    character data, CDATA sections, comments, processing instructions, a
    DOCTYPE declaration (skipped, including an internal subset) and the five
    predefined entities plus numeric character references.

    The parser reports events in document order; [parse_document] folds the
    events into a {!Tree.t}. Errors carry a line/column position. *)

type event =
  | Start_element of string * (string * string) list
  | End_element of string
  | Chars of string  (** character data; adjacent runs may be split *)
  | Comment of string
  | Pi of string  (** processing instruction, raw content *)

val metrics : Pf_obs.Registry.t
(** Parser-wide metric registry (scope ["sax"]): counters ["events"] and
    ["documents"], gauge ["max_depth"]. The SAX layer is stateless, so one
    registry covers every parse in the process. *)

type position = { line : int; column : int }

exception Parse_error of position * string
(** Raised on malformed input. *)

val pp_position : Format.formatter -> position -> unit

val fold_events : string -> init:'a -> f:('a -> event -> 'a) -> 'a
(** [fold_events s ~init ~f] parses the XML document in [s], calling [f] on
    each event in document order. Raises {!Parse_error} on malformed input.
    Verifies that start and end tags balance. *)

val parse_document : string -> Tree.t
(** Parse a complete document into a tree. Whitespace-only text between
    elements is dropped; other text is kept. Raises {!Parse_error}. *)

val parse_file : string -> Tree.t
(** [parse_file path] reads and parses the file at [path]. *)
