(** Calibrated workload presets reproducing the paper's two regimes.

    The paper's evaluation hinges on two contrasting workloads: a highly
    selective one (NITF, ~6% of expressions matched per document) and a
    matching-heavy one (PSD, ~75%). With the substitute DTDs these presets
    yield ~14–16% and ~75% respectively (see EXPERIMENTS.md for the
    calibration record); documents average ~100–130 tags, matching the
    paper's reported ~140. *)

val nitf_documents : Xml_gen.params
(** [max_levels = 8; max_fanout = 4; skew = 0.95] — selective regime. *)

val psd_documents : Xml_gen.params
(** [max_levels = 8; max_fanout = 6; skew = 0.] — matching-heavy regime. *)

val auction_documents : Xml_gen.params
(** [max_levels = 8; max_fanout = 4; skew = 0.5] — the intermediate
    XMark-style regime (our extension, not a paper workload). *)

val documents_for : string -> Xml_gen.params
(** ["nitf"], ["psd"] or ["auction"]; raises [Invalid_argument]
    otherwise. *)

val paper_queries : Xpath_gen.params
(** Section 6.2 settings: L=6, W=0.2, DO=0.2, distinct. Set [count] (and
    [distinct], [filters_per_path], ...) per experiment. *)

val heavy_subscriptions : Xpath_gen.params
(** The subscription-heavy regime: {!paper_queries} with
    [count = 100_000] and [distinct = false] (duplicates allowed — real
    dissemination workloads repeat popular feeds). Pair with
    {!nitf_documents}: a skewed, selective stream against a very large
    subscription table, where per-document fixed costs dominate and the
    service's expr-mode sharding plus the engine's batched predicate
    stage are supposed to pay off. *)

val redundant_subscriptions : Xpath_gen.redundant_params
(** The redundancy-skewed regime: {!Xpath_gen.default_redundant} with
    [count = 100_000] — 100k logical subscriptions over a 1000-expression
    pool, mutated by spelling variants and small widenings/narrowings.
    The distinct-shape count lands around 10–15% of the logical count,
    the regime [Pf_core.Subsume] (physical sharing + containment DAG) is
    built for. *)
