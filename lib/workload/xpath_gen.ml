open Pf_xpath

type params = {
  count : int;
  max_depth : int;
  wildcard_prob : float;
  descendant_prob : float;
  distinct : bool;
  filters_per_path : int;
  nested_prob : float;
  seed : int;
}

let default =
  {
    count = 1000;
    max_depth = 6;
    wildcard_prob = 0.2;
    descendant_prob = 0.2;
    distinct = true;
    filters_per_path = 0;
    nested_prob = 0.;
    seed = 7;
  }

let pick rng l =
  match l with
  | [] -> invalid_arg "Xpath_gen.pick: empty"
  | l -> List.nth l (Random.State.int rng (List.length l))

(* Random walk down the DTD starting below [from]; returns the tag
   sequence (up to [len] tags) with a per-step flag telling whether the
   step skipped levels (to pair with a descendant operator). *)
let walk dtd rng ~from ~len ~descendant_prob =
  let rec go current remaining acc =
    if remaining = 0 then List.rev acc
    else
      let decl = Dtd.decl dtd current in
      match decl.Dtd.children with
      | [] -> List.rev acc
      | children ->
        let descend = Random.State.float rng 1.0 < descendant_prob in
        let next = pick rng children in
        (* a descendant operator may skip an extra level when possible *)
        let next =
          if descend && Random.State.bool rng then
            match (Dtd.decl dtd next).Dtd.children with
            | [] -> next
            | grandchildren -> pick rng grandchildren
          else next
        in
        go next (remaining - 1) ((next, descend) :: acc)
  in
  go from len []

let gen_filters dtd rng ~per_path steps =
  (* attach attribute filters to randomly chosen tag steps that declare
     attributes *)
  let candidates =
    List.mapi (fun i s -> i, s) steps
    |> List.filter_map (fun (i, (s : Ast.step)) ->
           match s.Ast.test with
           | Ast.Tag name when (Dtd.decl dtd name).Dtd.attrs <> [] -> Some i
           | Ast.Tag _ | Ast.Wildcard -> None)
  in
  if candidates = [] then steps
  else begin
    let chosen = List.init per_path (fun _ -> pick rng candidates) in
    List.mapi
      (fun i (s : Ast.step) ->
        let k = List.length (List.filter (( = ) i) chosen) in
        if k = 0 then s
        else begin
          let name = match s.Ast.test with Ast.Tag n -> n | Ast.Wildcard -> assert false in
          let attrs = (Dtd.decl dtd name).Dtd.attrs in
          let filters =
            List.init k (fun _ ->
                let attr, bound = pick rng attrs in
                let cmp =
                  match Random.State.int rng 4 with
                  | 0 | 1 -> Ast.Eq
                  | 2 -> Ast.Ge
                  | _ -> Ast.Le
                in
                let value = Ast.Int (Random.State.int rng (bound + 1)) in
                Ast.Attr { Ast.attr; cmp; value })
          in
          { s with Ast.filters = s.Ast.filters @ filters }
        end)
      steps
  end

let gen_path dtd rng p ~allow_nested =
  (* expression length biased long, as generated query workloads are *)
  let len =
    1 + max (Random.State.int rng p.max_depth) (Random.State.int rng p.max_depth)
  in
  let root = dtd.Dtd.root in
  let root_descend = Random.State.float rng 1.0 < p.descendant_prob in
  let tags = (root, root_descend) :: walk dtd rng ~from:root ~len:(len - 1) ~descendant_prob:p.descendant_prob in
  let steps =
    List.map
      (fun (tag, descend) ->
        let test =
          if Random.State.float rng 1.0 < p.wildcard_prob then Ast.Wildcard
          else Ast.Tag tag
        in
        let axis = if descend then Ast.Descendant else Ast.Child in
        { Ast.axis; test; filters = [] })
      tags
  in
  let steps =
    if p.filters_per_path > 0 then gen_filters dtd rng ~per_path:p.filters_per_path steps
    else steps
  in
  let steps =
    if allow_nested && p.nested_prob > 0. then
      List.map
        (fun (s : Ast.step) ->
          match s.Ast.test with
          | Ast.Tag name when Random.State.float rng 1.0 < p.nested_prob ->
            (* root the nested filter below this element *)
            let nested_steps =
              walk dtd rng ~from:name ~len:(1 + Random.State.int rng 2)
                ~descendant_prob:p.descendant_prob
              |> List.map (fun (tag, descend) ->
                     {
                       Ast.axis = (if descend then Ast.Descendant else Ast.Child);
                       test = Ast.Tag tag;
                       filters = [];
                     })
            in
            if nested_steps = [] then s
            else
              {
                s with
                Ast.filters =
                  Ast.Nested { Ast.absolute = false; steps = nested_steps } :: s.Ast.filters;
              }
          | Ast.Tag _ | Ast.Wildcard -> s)
        steps
    else steps
  in
  { Ast.absolute = true; steps }

let generate dtd p =
  let rng = Random.State.make [| p.seed; 0x51f15e |] in
  if p.distinct then begin
    let seen = Hashtbl.create (2 * p.count) in
    let acc = ref [] and n = ref 0 and attempts = ref 0 in
    let max_attempts = p.count * 40 in
    while !n < p.count && !attempts < max_attempts do
      incr attempts;
      let path = gen_path dtd rng p ~allow_nested:true in
      let key = Parser.to_string path in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        acc := path :: !acc;
        incr n
      end
    done;
    List.rev !acc
  end
  else List.init p.count (fun _ -> gen_path dtd rng p ~allow_nested:true)

let distinct_count paths =
  let seen = Hashtbl.create 1024 in
  List.iter (fun p -> Hashtbl.replace seen (Parser.to_string p) ()) paths;
  Hashtbl.length seen

(* ------------------------------------------------------------------ *)
(* Redundancy-skewed workloads *)

type redundant_params = {
  pool_params : params;
  pool : int;
  count : int;
  mutation_prob : float;
  rseed : int;
}

let default_redundant =
  {
    pool_params =
      { default with
        filters_per_path = 2;
        (* wild, descendant-heavy pool: interior gaps give the respell
           ops room to spell one canonical form many ways *)
        wildcard_prob = 0.35;
        descendant_prob = 0.35;
      };
    pool = 300;
    count = 100_000;
    mutation_prob = 0.85;
    rseed = 23;
  }

let map_step (p : Ast.path) i f =
  { p with Ast.steps = List.mapi (fun j s -> if j = i then f s else s) p.Ast.steps }

let pick_opt rng = function
  | [] -> None
  | l -> Some (List.nth l (Random.State.int rng (List.length l)))

(* positions (step index, filter index) of attribute filters *)
let attr_positions (p : Ast.path) =
  List.concat
    (List.mapi
       (fun i (s : Ast.step) ->
         List.concat
           (List.mapi
              (fun j -> function Ast.Attr _ -> [ i, j ] | Ast.Nested _ -> [])
              s.Ast.filters))
       p.Ast.steps)

let map_attr p (i, j) f =
  map_step p i (fun (s : Ast.step) ->
      {
        s with
        Ast.filters =
          List.mapi
            (fun k fl ->
              if k = j then match fl with Ast.Attr a -> Ast.Attr (f a) | x -> x
              else fl)
            s.Ast.filters;
      })

(* Spelling variants: the canonical form (Canonical.normalize) is
   unchanged, so the subsumption index folds the mutant onto its base's
   shape. These exercise the canonicalizer, not the containment test. *)
let respell_once rng (p : Ast.path) =
  let ops =
    [
      (fun (p : Ast.path) ->
        (* //a... <-> relative a... *)
        match p.Ast.steps with
        | s :: tl when p.Ast.absolute && s.Ast.axis = Ast.Descendant ->
          Some { Ast.absolute = false; steps = { s with Ast.axis = Ast.Child } :: tl }
        | _ -> None);
      (fun p ->
        (* duplicate an attribute filter *)
        match pick_opt rng (attr_positions p) with
        | Some (i, j) ->
          Some
            (map_step p i (fun (s : Ast.step) ->
                 { s with Ast.filters = s.Ast.filters @ [ List.nth s.Ast.filters j ] }))
        | None -> None);
      (fun (p : Ast.path) ->
        (* reorder a step's filters *)
        let multi =
          List.concat
            (List.mapi
               (fun i (s : Ast.step) ->
                 if List.length s.Ast.filters >= 2 then [ i ] else [])
               p.Ast.steps)
        in
        match pick_opt rng multi with
        | Some i ->
          Some
            (map_step p i (fun (s : Ast.step) ->
                 { s with Ast.filters = List.rev s.Ast.filters }))
        | None -> None);
      (fun p ->
        (* integer adjacency: @x<=v <-> @x<v+1, @x>=v <-> @x>v-1 *)
        match pick_opt rng (attr_positions p) with
        | Some pos ->
          Some
            (map_attr p pos (fun (a : Ast.attr_filter) ->
                 match a.Ast.cmp, a.Ast.value with
                 | Ast.Le, Ast.Int v when v < max_int ->
                   { a with Ast.cmp = Ast.Lt; value = Ast.Int (v + 1) }
                 | Ast.Ge, Ast.Int v when v > min_int ->
                   { a with Ast.cmp = Ast.Gt; value = Ast.Int (v - 1) }
                 | _ -> a))
        | None -> None);
      (fun (p : Ast.path) ->
        (* trailing filter-free wildcard: child <-> descendant axis *)
        match List.rev p.Ast.steps with
        | ({ Ast.axis = Ast.Child; test = Ast.Wildcard; filters = [] } as s) :: tl ->
          Some { p with Ast.steps = List.rev ({ s with Ast.axis = Ast.Descendant } :: tl) }
        | _ -> None);
      (fun (p : Ast.path) ->
        (* interior gap re-edging: a maximal filter-free wildcard run with
           an anchored step above, a bounding step below and at least one
           descendant edge among the run's and bound's axes collapses
           (Canonical.normalize) to child-wilds + a descendant bound no
           matter which of those edges are descendant — so any other
           non-empty descendant pattern spells the same canonical form *)
        let steps = Array.of_list p.Ast.steps in
        let n = Array.length steps in
        let is_gap (s : Ast.step) =
          s.Ast.test = Ast.Wildcard && s.Ast.filters = []
        in
        let runs = ref [] in
        let i = ref 0 in
        while !i < n do
          if is_gap steps.(!i) then begin
            let j = ref !i in
            while !j + 1 < n && is_gap steps.(!j + 1) do
              incr j
            done;
            (* started below an anchor, bounded by a non-gap step below *)
            if !i > 0 && !j + 1 < n then runs := (!i, !j + 1) :: !runs;
            i := !j + 2
          end
          else incr i
        done;
        let has_desc (lo, hi) =
          let rec go k =
            k <= hi && (steps.(k).Ast.axis = Ast.Descendant || go (k + 1))
          in
          go lo
        in
        match pick_opt rng (List.filter has_desc !runs) with
        | Some (lo, hi) ->
          let any = ref false in
          for k = lo to hi do
            let axis =
              if Random.State.bool rng then Ast.Descendant else Ast.Child
            in
            if axis = Ast.Descendant then any := true;
            steps.(k) <- { (steps.(k)) with Ast.axis = axis }
          done;
          if not !any then begin
            let k = lo + Random.State.int rng (hi - lo + 1) in
            steps.(k) <- { (steps.(k)) with Ast.axis = Ast.Descendant }
          end;
          Some { p with Ast.steps = Array.to_list steps }
        | None -> None);
    ]
  in
  let n = List.length ops in
  let start = Random.State.int rng n in
  let rec try_from k =
    if k = n then p
    else
      match (List.nth ops ((start + k) mod n)) p with
      | Some p' -> p'
      | None -> try_from (k + 1)
  in
  try_from 0

(* Two to four composed rewrites: single-op variants barely outnumber
   the ops themselves, so an expression trie still shares most of them;
   composition multiplies the distinct-spelling space while the canonical
   form stays fixed. *)
let respell rng (p : Ast.path) =
  let rec go k p = if k = 0 then p else go (k - 1) (respell_once rng p) in
  go (2 + Random.State.int rng 3) p

let small_delta rng = 1 + Random.State.int rng 2

(* Widening: the mutant covers the base (its value set is a superset). *)
let widen rng (p : Ast.path) =
  match pick_opt rng (attr_positions p) with
  | None -> p
  | Some ((i, j) as pos) ->
    if Random.State.bool rng then
      (* drop the filter *)
      map_step p i (fun (s : Ast.step) ->
          { s with Ast.filters = List.filteri (fun k _ -> k <> j) s.Ast.filters })
    else
      let d = small_delta rng in
      map_attr p pos (fun (a : Ast.attr_filter) ->
          match a.Ast.cmp, a.Ast.value with
          | Ast.Ge, Ast.Int v -> { a with Ast.value = Ast.Int (v - d) }
          | Ast.Le, Ast.Int v -> { a with Ast.value = Ast.Int (v + d) }
          | Ast.Eq, Ast.Int v ->
            (* @x=v widens into a ray containing it *)
            if Random.State.bool rng then { a with Ast.cmp = Ast.Ge; value = Ast.Int (v - d) }
            else { a with Ast.cmp = Ast.Le; value = Ast.Int (v + d) }
          | _ -> a)

(* Narrowing: the base covers the mutant. *)
let narrow dtd rng (p : Ast.path) =
  match Random.State.int rng 3 with
  | 0 ->
    (* tighten a bound *)
    (match pick_opt rng (attr_positions p) with
    | None -> p
    | Some pos ->
      let d = small_delta rng in
      map_attr p pos (fun (a : Ast.attr_filter) ->
          match a.Ast.cmp, a.Ast.value with
          | Ast.Ge, Ast.Int v -> { a with Ast.value = Ast.Int (v + d) }
          | Ast.Le, Ast.Int v -> { a with Ast.value = Ast.Int (v - d) }
          | _ -> a))
  | 1 ->
    (* demand an extra level below the result node *)
    let axis = if Random.State.bool rng then Ast.Child else Ast.Descendant in
    { p with Ast.steps = p.Ast.steps @ [ { Ast.axis; test = Ast.Wildcard; filters = [] } ] }
  | _ -> (
    (* add an attribute filter to a tag step that declares attributes *)
    let candidates =
      List.concat
        (List.mapi
           (fun i (s : Ast.step) ->
             match s.Ast.test with
             | Ast.Tag name when (Dtd.decl dtd name).Dtd.attrs <> [] -> [ i, name ]
             | Ast.Tag _ | Ast.Wildcard -> [])
           p.Ast.steps)
    in
    match pick_opt rng candidates with
    | None -> p
    | Some (i, name) ->
      let attr, bound = pick rng (Dtd.decl dtd name).Dtd.attrs in
      let cmp = if Random.State.bool rng then Ast.Ge else Ast.Le in
      let value = Ast.Int (Random.State.int rng (bound + 1)) in
      map_step p i (fun (s : Ast.step) ->
          { s with Ast.filters = s.Ast.filters @ [ Ast.Attr { Ast.attr; cmp; value } ] }))

let generate_redundant dtd rp =
  let pool_params =
    { rp.pool_params with count = rp.pool; distinct = true; seed = rp.rseed }
  in
  let pool = Array.of_list (generate dtd pool_params) in
  if Array.length pool = 0 then
    invalid_arg "Xpath_gen.generate_redundant: the DTD yielded an empty pool";
  let rng = Random.State.make [| rp.rseed; 0x12ed0d |] in
  List.init rp.count (fun _ ->
      let base = pool.(Random.State.int rng (Array.length pool)) in
      if Random.State.float rng 1.0 >= rp.mutation_prob then base
      else
        match Random.State.int rng 7 with
        | 0 | 1 | 2 | 3 | 4 -> respell rng base
        | 5 -> widen rng base
        | _ -> narrow dtd rng base)
