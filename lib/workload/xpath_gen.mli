(** XPath expression workload generation.

    Re-implements the parameterization of the XPath generator of Diao et
    al. that the paper uses: expressions are random walks over the DTD
    graph with maximum length [L = max_depth], each location step turned
    into a wildcard with probability [W = wildcard_prob] and reached
    through a descendant operator with probability [DO = descendant_prob];
    the [distinct] flag selects deduplicated workloads (the paper's [D]).
    Attribute filters ([filters_per_path] per expression, as in Section
    6.4) compare a DTD-declared attribute of a tag step against a random
    value; [nested_prob] optionally grafts nested path filters (the
    Section 5 extension). Deterministic in [seed]. *)

type params = {
  count : int;
  max_depth : int;  (** L; lengths are drawn in [1..L], biased long *)
  wildcard_prob : float;  (** W *)
  descendant_prob : float;  (** DO *)
  distinct : bool;  (** D *)
  filters_per_path : int;
  nested_prob : float;  (** probability a tag step receives a nested filter *)
  seed : int;
}

val default : params
(** [count = 1000; max_depth = 6; wildcard_prob = 0.2;
    descendant_prob = 0.2; distinct = true; filters_per_path = 0;
    nested_prob = 0.; seed = 7] — the paper's Section 6.2 settings. *)

val generate : Dtd.t -> params -> Pf_xpath.Ast.path list
(** Generates [count] expressions. With [distinct = true] the result may be
    shorter than [count] if the DTD cannot supply enough distinct
    expressions under the given parameters (the generator gives up after a
    bounded number of redraws); callers should check the length. *)

val distinct_count : Pf_xpath.Ast.path list -> int
(** Number of distinct expressions in a workload (the paper reports it for
    the duplicate workloads). *)

(** {1 Redundancy-skewed workloads}

    What a large dissemination system's subscription table actually looks
    like: a modest pool of popular feeds, each spelled and perturbed many
    ways by independent subscribers. Expressions are drawn from a
    generated pool and, with probability [mutation_prob], mutated by one
    of three moves: a {e respelling} (relative/absolute-descendant form,
    filter duplication and reordering, integer-adjacency comparison
    spelling, trailing child/descendant wildcard) that preserves the
    canonical form exactly; a {e widening} (relax or drop a bound) that
    makes the mutant cover its base; or a {e narrowing} (tighten a bound,
    demand an extra level, add a filter) covered by its base. Mutation
    deltas are small, so mutants collide with each other too — the
    distinct-shape count stays far below [count], which is the regime the
    subsumption index ([Pf_core.Subsume]) is built for. *)

type redundant_params = {
  pool_params : params;  (** generator for the base pool ([count], [distinct], [seed] overridden) *)
  pool : int;  (** distinct base expressions to draw from *)
  count : int;  (** expressions emitted *)
  mutation_prob : float;  (** chance an emitted expression is mutated *)
  rseed : int;  (** seed for pool generation and mutation draws *)
}

val default_redundant : redundant_params
(** [pool_params = { default with filters_per_path = 2 }; pool = 500;
    count = 100_000; mutation_prob = 0.7; rseed = 23]. Mutations are
    respell-heavy (5/7 respell, 1/7 widen, 1/7 narrow): spelling variants
    are what a syntactic expression trie cannot share and the
    canonicalizer can. *)

val generate_redundant : Dtd.t -> redundant_params -> Pf_xpath.Ast.path list
(** Generates [count] expressions (deterministic in [rseed]). All
    expressions are single paths when [pool_params.nested_prob = 0]. *)
