let nitf_documents =
  { Xml_gen.default with Xml_gen.max_levels = 8; max_fanout = 4; skew = 0.95 }

let psd_documents =
  { Xml_gen.default with Xml_gen.max_levels = 8; max_fanout = 6; skew = 0. }

let auction_documents =
  { Xml_gen.default with Xml_gen.max_levels = 8; max_fanout = 4; skew = 0.5 }

let documents_for = function
  | "nitf" | "NITF" -> nitf_documents
  | "psd" | "PSD" -> psd_documents
  | "auction" | "AUCTION" | "xmark" -> auction_documents
  | s -> invalid_arg (Printf.sprintf "Presets.documents_for: unknown DTD %S" s)

let paper_queries = Xpath_gen.default

(* Subscription-heavy regime: far more expressions than the paper's sweeps
   (duplicates allowed, as in a real dissemination system where many
   subscribers register the same feeds), against the skewed NITF-style
   documents. The regime where per-document fixed costs — predicate-image
   freshness checks, cache refills between expression evaluation and the
   predicate stage — dominate, i.e. what the batched match path is for. *)
let heavy_subscriptions =
  { Xpath_gen.default with Xpath_gen.count = 100_000; distinct = false }

(* Redundancy-skewed regime: 100k logical subscriptions drawn from a
   1000-expression pool with spelling/widening/narrowing mutations — the
   workload the subsumption index (Pf_core.Subsume) collapses to a few
   thousand physical shapes. *)
let redundant_subscriptions =
  { Xpath_gen.default_redundant with Xpath_gen.count = 100_000 }
