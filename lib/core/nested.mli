(** Nested path filters (Section 5).

    A nested path expression (tree pattern) is decomposed into a {e main}
    sub-expression and {e extended} sub-expressions: for each nested filter
    [\[q\]] on step [k], the extended sub-expression is the main path's
    prefix up to step [k] followed by [q]'s steps, with a branch-position
    predicate [(pos,=,k)] recording where it forks; decomposition recurses
    when nested filters themselves contain nested paths (the paper's
    two-level example [/a\[*/c\[d\]/e\]//c\[d\]/e]).

    Sub-expressions are encoded as ordered predicate sets interned in the
    {e shared} predicate index — overlap with single-path expressions and
    between sub-expressions is exploited exactly as in the basic engine.

    Per document, each sub-expression's occurrence chains are collected per
    path; chains locate the document {e node} bound to each branch step
    (identified by depth plus the structure-tuple prefix [<m_1, ..., m_d>]
    of Section 5 — two paths pass through the same node iff their structure
    tuples agree up to its depth). Bottom-up combination then requires, for
    every extended sub-expression, a match binding its branch step to the
    same node as the parent's.

    Semantics note: nested filters are existential (standard XPath) — a
    child match may lie on the same root-to-leaf path as the parent match.
    The paper's example prose suggests extended matches must "show a
    difference after" the branch; that reading would make [a\[b/c\]/b/c]
    unsatisfiable on a single-branch document, contradicting XPath, so we
    follow XPath (the reference evaluator agrees).

    Unsupported (raises {!Encoder.Unsupported} at {!add} time): nested
    filters attached to wildcard steps (no tag variable locates the branch
    node). *)

type t

val create : Predicate_index.t -> t

val add : t -> sid:int -> Pf_xpath.Ast.path -> unit
(** Decompose and register a nested path expression. The path must contain
    at least one nested filter ({!Pf_xpath.Ast.is_single_path} is false);
    single paths belong in the main pipeline. The whole decomposition is
    validated before anything is registered, so a raising [add] leaves the
    filter and the shared predicate index unchanged. *)

val remove : t -> sid:int -> bool
(** Unregister a nested expression. Returns false if [sid] is unknown.
    Its sub-expressions remain in the registry (their predicates are
    shared and interned anyway); only the result mapping is dropped. *)

val is_empty : t -> bool
val expression_count : t -> int
val sub_expression_count : t -> int

(** {1 Per-document matching protocol}

    The engine drives one document as:
    [begin_document]; for each path: run the predicate index, then
    [observe_path]; finally [finish_document]. *)

val begin_document : t -> unit

val observe_path : t -> Predicate_index.results -> Publication.t -> unit
(** Record, for every sub-expression, the occurrence chains the current
    path admits (using the predicate matching results just produced for
    it). *)

val finish_document : t -> on_match:(int -> unit) -> unit
(** Combine observations bottom-up and report each matched nested
    expression's sid once. *)
