type variant = Basic | Prefix_covering | Access_predicate | Shared

let variant_name = function
  | Basic -> "basic"
  | Prefix_covering -> "basic-pc"
  | Access_predicate -> "basic-pc-ap"
  | Shared -> "shared"

let variant_of_name = function
  | "basic" -> Some Basic
  | "basic-pc" | "pc" -> Some Prefix_covering
  | "basic-pc-ap" | "pc-ap" | "ap" -> Some Access_predicate
  | "shared" -> Some Shared
  | _ -> None

(* Trie nodes keep children in an association list and promote to a
   hashtable past a small fan-out, keeping millions of mostly-linear chains
   cheap while root-level fan-out stays O(1). *)
type node = {
  pid : int;
  depth : int;  (* 0 at roots *)
  parent : node option;
  mutable sids : int list;
  mutable children : children;
  mutable child_list : node list;
      (* the same children as a plain list (newest first): the
         access-predicate pass walks it with closure-free recursion — a
         [Hashtbl.fold] over promoted fan-out allocated its callback per
         node visit, i.e. per document path. Nodes are never removed, so
         the list only grows alongside [children]. *)
  mutable covered_epoch : int;  (* prefix-covering mark, per eval pass *)
  mutable mark_epoch : int;
      (* document tag of the last sticky sid report: a document has many
         paths, and once a node's sids are reported for one path they need
         not be re-reported for the document's remaining paths (valid only
         when on_match marks unconditionally, i.e. no postponed checks) *)
}

and children =
  | Small of (int * node) list
  | Big of (int, node) Hashtbl.t

let promote_threshold = 16

let child_find children pid =
  match children with
  | Small l -> List.assoc_opt pid l
  | Big tbl -> Hashtbl.find_opt tbl pid

let child_add n pid child =
  n.child_list <- child :: n.child_list;
  match n.children with
  | Small l ->
    if List.length l >= promote_threshold then begin
      let tbl = Hashtbl.create 32 in
      List.iter (fun (p, c) -> Hashtbl.add tbl p c) l;
      Hashtbl.add tbl pid child;
      n.children <- Big tbl
    end
    else n.children <- Small ((pid, child) :: l)
  | Big tbl -> Hashtbl.add tbl pid child

let child_iter f = function
  | Small l -> List.iter (fun (_, c) -> f c) l
  | Big tbl -> Hashtbl.iter (fun _ c -> f c) tbl


(* Evaluation counters, typically registered in the owning engine's
   registry. [runs] is the quantity the Section 4.2.2 optimizations
   minimize; [cover_skips]/[access_skips] count how often prefix covering
   and access predicates avoided work; [chain_len] observes the predicate
   chain length of each occurrence determination run. *)
type metrics = {
  runs : Pf_obs.Counter.t;
  steps : Pf_obs.Counter.t;
  cover_skips : Pf_obs.Counter.t;
  access_skips : Pf_obs.Counter.t;
  chain_len : Pf_obs.Histogram.t;
}

let make_metrics ?registry () =
  {
    runs =
      Pf_obs.Counter.make ?registry "occurrence_runs"
        ~help:"occurrence determination runs";
    steps =
      Pf_obs.Counter.make ?registry "backtrack_steps"
        ~help:"nodes visited by the occurrence determination backtracking search";
    cover_skips =
      Pf_obs.Counter.make ?registry "prefix_cover_skips"
        ~help:"expressions reported through prefix covering without a run";
    access_skips =
      Pf_obs.Counter.make ?registry "access_skips"
        ~help:"trie subtrees skipped because their access predicate had no match";
    chain_len =
      Pf_obs.Histogram.make ?registry "chain_length"
        ~help:"predicate chain length per occurrence determination run";
  }

type t = {
  variant : variant;
  (* Basic *)
  flat : (int * int array) Vec.t;  (* (sid, pids); removed entries have pids = [||] *)
  flat_pos : (int, int) Hashtbl.t;  (* sid -> index in [flat] *)
  (* trie variants *)
  roots : (int, node) Hashtbl.t;
  mutable root_list : node list;
      (* the same roots as a list: the access-predicate pass walks it with
         a closure-free recursion (a Hashtbl.iter callback would allocate
         per evaluation, i.e. per document path). Roots are never removed,
         so the list only grows, newest first. *)
  (* prefix covering: sid-bearing nodes bucketed by depth, evaluated
     longest-first so a deep match covers its prefixes *)
  by_depth : node Vec.t Vec.t;
  (* candidate-set scratch reused across documents (Occurrence arena);
     one per index — engine instances are single-domain *)
  arena : Occurrence.arena;
  mutable pc_epoch : int;
  mutable n_exprs : int;
  mutable n_nodes : int;
  m : metrics;
}

let dummy_node =
  { pid = -1; depth = 0; parent = None; sids = []; children = Small []; child_list = [];
    covered_epoch = 0; mark_epoch = 0 }

(* Shared placeholder filling unused [by_depth] slots (Vec.ensure fills with
   one dummy value); recognized by physical identity and replaced by a fresh
   bucket on first use. Never written through. *)
let dummy_bucket : node Vec.t = Vec.create ~dummy:dummy_node ()

let create ?metrics variant =
  {
    variant;
    flat = Vec.create ~dummy:(0, [||]) ();
    flat_pos = Hashtbl.create 16;
    roots = Hashtbl.create 256;
    root_list = [];
    by_depth = Vec.create ~dummy:dummy_bucket ();
    arena = Occurrence.create_arena ();
    pc_epoch = 0;
    n_exprs = 0;
    n_nodes = 0;
    m = (match metrics with Some m -> m | None -> make_metrics ());
  }

let add t ~sid ~pids =
  if Array.length pids = 0 then invalid_arg "Expr_index.add: empty pid sequence";
  t.n_exprs <- t.n_exprs + 1;
  match t.variant with
  | Basic ->
    t.n_nodes <- t.n_nodes + 1;
    Hashtbl.replace t.flat_pos sid (Vec.push t.flat (sid, pids))
  | Prefix_covering | Access_predicate | Shared ->
    let register node =
      (* index sid-bearing nodes by depth for longest-first evaluation *)
      if node.sids = [] then begin
        Vec.ensure t.by_depth (node.depth + 1);
        let bucket = Vec.get t.by_depth node.depth in
        let bucket =
          if bucket == dummy_bucket then begin
            let fresh = Vec.create ~dummy:dummy_node () in
            Vec.set t.by_depth node.depth fresh;
            fresh
          end
          else bucket
        in
        ignore (Vec.push bucket node)
      end;
      node.sids <- sid :: node.sids
    in
    let root =
      match Hashtbl.find_opt t.roots pids.(0) with
      | Some node -> node
      | None ->
        let node =
          { pid = pids.(0); depth = 0; parent = None; sids = []; children = Small [];
            child_list = []; covered_epoch = 0; mark_epoch = 0 }
        in
        t.n_nodes <- t.n_nodes + 1;
        Hashtbl.add t.roots pids.(0) node;
        t.root_list <- node :: t.root_list;
        node
    in
    let rec descend node i =
      if i >= Array.length pids then register node
      else begin
        let child =
          match child_find node.children pids.(i) with
          | Some c -> c
          | None ->
            let c =
              { pid = pids.(i); depth = i; parent = Some node; sids = [];
                children = Small []; child_list = []; covered_epoch = 0; mark_epoch = 0 }
            in
            t.n_nodes <- t.n_nodes + 1;
            child_add node pids.(i) c;
            c
        in
        descend child (i + 1)
      end
    in
    descend root 1

let expression_count t = t.n_exprs
let node_count t = t.n_nodes
let occurrence_runs t = Pf_obs.Counter.get t.m.runs

let remove t ~sid ~pids =
  match t.variant with
  | Basic -> (
    match Hashtbl.find_opt t.flat_pos sid with
    | None -> false
    | Some i ->
      Hashtbl.remove t.flat_pos sid;
      Vec.set t.flat i (sid, [||]);
      t.n_exprs <- t.n_exprs - 1;
      true)
  | Prefix_covering | Access_predicate | Shared -> (
    let rec descend node i =
      if i >= Array.length pids then
        if List.mem sid node.sids then begin
          node.sids <- List.filter (fun s -> s <> sid) node.sids;
          true
        end
        else false
      else
        match child_find node.children pids.(i) with
        | Some c -> descend c (i + 1)
        | None -> false
    in
    match
      if Array.length pids = 0 then false
      else
        match Hashtbl.find_opt t.roots pids.(0) with
        | Some root -> descend root 1
        | None -> false
    with
    | true ->
      t.n_exprs <- t.n_exprs - 1;
      true
    | false -> false)

(* ------------------------------------------------------------------ *)

(* Fill arena row [i] with pid's recorded pairs; true iff non-empty. The
   copy into contiguous memory is what the backtracking search — which
   revisits rows repeatedly — then runs over. *)
let fill_row a res i pid =
  Occurrence.start_row a i;
  Occurrence.push_chain a (Predicate_index.cells res) (Predicate_index.head res pid);
  Occurrence.row_len a i > 0

(* One occurrence determination run is about to happen over a chain of
   [len] predicates. *)
let note_run t len =
  Pf_obs.Counter.incr t.m.runs;
  Pf_obs.Histogram.observe t.m.chain_len len

let eval_basic t res ~on_match =
  let a = t.arena in
  (* backtracking steps: the arena's monotone counter, flushed as a delta
     once per pass (a [~steps] ref would allocate a [Some] per run) *)
  let s0 = Occurrence.search_steps a in
  Vec.iter
    (fun (sid, pids) ->
      let n = Array.length pids in
      if n > 0 then begin
        Occurrence.clear a;
        (* fetch each predicate's results; stop at the first empty one *)
        let rec fetch i = i >= n || (fill_row a res i pids.(i) && fetch (i + 1)) in
        if fetch 0 then begin
          note_run t n;
          if Occurrence.matches_packed a then on_match sid
        end
      end)
    t.flat;
  Pf_obs.Counter.add t.m.steps (Occurrence.search_steps a - s0)

(* Prefix covering (without access predicates). Sid-bearing trie nodes are
   evaluated longest-first (by descending depth): each gets the flat
   algorithm's treatment — check its own predicate chain for dead results
   leaf-to-root, fill the arena root-to-leaf, then one occurrence
   determination run — but a match marks every ancestor node covered, so
   prefix expressions (and all duplicates, which share the node) are
   reported without evaluation. Unlike the access-predicate variant, a
   dead predicate does not rule out anything beyond the one expression
   being checked. *)
let eval_pc t res ~sticky ~doc_tag ~on_match =
  t.pc_epoch <- t.pc_epoch + 1;
  let epoch = t.pc_epoch in
  let report node =
    if sticky then node.mark_epoch <- doc_tag;
    List.iter on_match node.sids
  in
  let a = t.arena in
  let s0 = Occurrence.search_steps a in
  let rec alive n =
    Predicate_index.is_matched res n.pid
    && match n.parent with None -> true | Some p -> alive p
  in
  let rec fill n =
    (match n.parent with None -> true | Some p -> fill p)
    && fill_row a res n.depth n.pid
  in
  let evaluate node =
    alive node
    && begin
         Occurrence.clear a;
         ignore (fill node : bool);
         note_run t (node.depth + 1);
         Occurrence.matches_to a node.depth
       end
  in
  let rec cover = function
    | None -> ()
    | Some p ->
      if p.covered_epoch <> epoch then begin
        p.covered_epoch <- epoch;
        cover p.parent
      end
  in
  for depth = Vec.length t.by_depth - 1 downto 0 do
    let bucket = Vec.get t.by_depth depth in
    Vec.iter
      (fun node ->
        if node.sids <> [] && not (sticky && node.mark_epoch = doc_tag) then
          if node.covered_epoch = epoch then begin
            Pf_obs.Counter.add t.m.cover_skips (List.length node.sids);
            report node
          end
          else if evaluate node then begin
            report node;
            node.covered_epoch <- epoch;
            cover node.parent
          end)
      bucket
  done;
  Pf_obs.Counter.add t.m.steps (Occurrence.search_steps a - s0)

(* Access predicates on top of prefix covering: a subtree whose entry
   predicate has no matching result is ruled out without visiting it (at
   the root this is the paper's clustering by first predicate; applying it
   at every node generalizes the same rule recursively). The per-depth
   arena rows are filled on the way down — stack discipline — so an
   occurrence run at a sid node reuses the fetches of all its ancestors. *)
(* The recursion is written as top-level functions taking everything as
   arguments rather than closures inside [eval_ap]: the visit runs once
   per trie node per document path, and a closure allocation per node
   (the old [child_fold] callback) used to dominate the match path's
   allocation — with these, the whole evaluation allocates nothing. *)
let rec ap_visit t res ~sticky ~doc_tag ~on_match node depth =
  if not (Predicate_index.is_matched res node.pid) then begin
    (* dead access predicate: the whole subtree is ruled out *)
    Pf_obs.Counter.incr t.m.access_skips;
    false
  end
  else begin
    let a = t.arena in
    ignore (fill_row a res depth node.pid : bool);
    let below =
      ap_visit_children t res ~sticky ~doc_tag ~on_match node.child_list (depth + 1) false
    in
    if node.sids = [] then below
    else if sticky && node.mark_epoch = doc_tag then
      (* already fully reported for this document: no run needed *)
      below
    else if below then begin
      (* a longer expression below matched: covered, no run needed *)
      Pf_obs.Counter.add t.m.cover_skips (List.length node.sids);
      if sticky then node.mark_epoch <- doc_tag;
      List.iter on_match node.sids;
      true
    end
    else begin
      note_run t (depth + 1);
      if Occurrence.matches_to a depth then begin
        if sticky then node.mark_epoch <- doc_tag;
        List.iter on_match node.sids;
        true
      end
      else false
    end
  end

and ap_visit_children t res ~sticky ~doc_tag ~on_match l depth acc =
  match l with
  | [] -> acc
  | c :: rest ->
    let matched = ap_visit t res ~sticky ~doc_tag ~on_match c depth in
    ap_visit_children t res ~sticky ~doc_tag ~on_match rest depth (acc || matched)

let rec ap_roots t res ~sticky ~doc_tag ~on_match = function
  | [] -> ()
  | root :: rest ->
    Occurrence.clear t.arena;
    ignore (ap_visit t res ~sticky ~doc_tag ~on_match root 0 : bool);
    ap_roots t res ~sticky ~doc_tag ~on_match rest

let eval_ap t res ~sticky ~doc_tag ~on_match =
  let s0 = Occurrence.search_steps t.arena in
  ap_roots t res ~sticky ~doc_tag ~on_match t.root_list;
  Pf_obs.Counter.add t.m.steps (Occurrence.search_steps t.arena - s0)

(* Shared: propagate the set of reachable chain endings down the trie. A
   node is reachable with endings S iff a chain exists through the pids on
   the root path ending with some o2 in S; its expressions match iff S is
   non-empty. Sets are tiny (bounded by occurrence counts in one path), so
   sorted int lists suffice. *)
let eval_shared t res roots ~sticky ~doc_tag ~on_match =
  let report node =
    if sticky then node.mark_epoch <- doc_tag;
    List.iter on_match node.sids
  in
  let rec visit node incoming =
    match Predicate_index.get_packed res node.pid with
    | [] ->
      (* same pruning rule as the access-predicate variant *)
      Pf_obs.Counter.incr t.m.access_skips
    | pairs ->
      let reach =
        match incoming with
        | None ->
          List.sort_uniq compare (List.map Predicate_index.packed_second pairs)
        | Some s ->
          List.sort_uniq compare
            (List.filter_map
               (fun p ->
                 if List.mem (Predicate_index.packed_first p) s then
                   Some (Predicate_index.packed_second p)
                 else None)
               pairs)
      in
      if reach <> [] then begin
        if node.sids <> [] && not (sticky && node.mark_epoch = doc_tag) then report node;
        child_iter (fun c -> visit c (Some reach)) node.children
      end
  in
  Hashtbl.iter (fun _ root -> visit root None) roots

let eval t res ~sticky ~doc_tag ~on_match =
  match t.variant with
  | Basic -> eval_basic t res ~on_match
  | Prefix_covering -> eval_pc t res ~sticky ~doc_tag ~on_match
  | Access_predicate -> eval_ap t res ~sticky ~doc_tag ~on_match
  | Shared -> eval_shared t res t.roots ~sticky ~doc_tag ~on_match
