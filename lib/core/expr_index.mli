(** Expression organizations (Section 4.2.2).

    Expressions are registered as ordered pid sequences; after the predicate
    matching stage, {!eval} reports every structurally matched expression.
    Four organizations trade off how many occurrence determination runs they
    need:

    - {!Basic}: a flat list; every expression whose predicates all matched
      gets its own occurrence determination run.
    - {!Prefix_covering}: expressions share a trie over pid sequences;
      within a covering chain the longest expression is evaluated first and
      a match covers all its prefixes (which are then not evaluated).
    - {!Access_predicate}: prefix covering plus clustering — a trie subtree
      is skipped entirely when its entry predicate (the {e access
      predicate}; at the root this is the paper's first-predicate
      clustering) has no matching result.
    - {!Shared}: our ablation extension — instead of per-expression
      backtracking runs, sets of reachable chain endings (occurrence
      numbers) are propagated down the trie once, so the work of the
      occurrence determination itself is shared across expressions with
      common prefixes. *)

type variant = Basic | Prefix_covering | Access_predicate | Shared

val variant_name : variant -> string
(** ["basic"], ["basic-pc"], ["basic-pc-ap"], ["shared"] — the paper's
    algorithm labels. *)

val variant_of_name : string -> variant option

type metrics = {
  runs : Pf_obs.Counter.t;  (** occurrence determination runs *)
  steps : Pf_obs.Counter.t;  (** backtracking search steps *)
  cover_skips : Pf_obs.Counter.t;
      (** expressions reported through prefix covering without a run *)
  access_skips : Pf_obs.Counter.t;
      (** subtrees/clusters skipped on a dead access predicate *)
  chain_len : Pf_obs.Histogram.t;  (** chain length per run *)
}

val make_metrics : ?registry:Pf_obs.Registry.t -> unit -> metrics
(** Counters named ["occurrence_runs"], ["backtrack_steps"],
    ["prefix_cover_skips"], ["access_skips"] and the ["chain_length"]
    histogram, registered in [registry] when given. *)

type t

val create : ?metrics:metrics -> variant -> t
(** [metrics] defaults to fresh unregistered counters, so a standalone
    index still counts but exports nothing. *)

val add : t -> sid:int -> pids:int array -> unit
(** Register expression [sid] with its ordered predicate ids (non-empty).
    Duplicate pid sequences share all per-expression structure in the trie
    variants. *)

val remove : t -> sid:int -> pids:int array -> bool
(** Unregister an expression; [pids] must be the sequence it was added
    with. Returns false if it was not (or no longer) registered. Constant
    time in the number of expressions (a tombstone for {!Basic}, a sid-list
    removal at one trie node otherwise); interned predicates are not
    reclaimed. *)

val eval :
  t -> Predicate_index.results -> sticky:bool -> doc_tag:int -> on_match:(int -> unit) -> unit
(** Report each structurally matched sid exactly once for this publication.
    [on_match] receives sids in an unspecified order. The flags are plain
    labelled arguments (not optional): optional arguments box a [Some] per
    call, and [eval] runs once per document path on the streaming fast
    path. Pass [~sticky:false ~doc_tag:0] when stickiness is unused.

    [sticky]/[doc_tag] (trie variants): a document is many publications;
    when [sticky] is true, a node whose sids were already reported under
    the same [doc_tag] is neither re-reported nor re-evaluated on the
    document's later paths, making per-document collection linear in the
    number of matched expressions rather than paths × expressions. Only
    sound when [on_match] accepts unconditionally (the engine's inline
    mode; with postponed attribute checks a later path may succeed where
    an earlier one failed). *)

val expression_count : t -> int
val node_count : t -> int
(** Trie nodes (= stored expressions for {!Basic}); an indicator of the
    sharing achieved. *)

val occurrence_runs : t -> int
(** Cumulative number of occurrence determination runs performed by
    {!eval} since creation — the quantity the Section 4.2.2 optimizations
    minimize (0 for {!Shared}). Reads the ["occurrence_runs"] counter of
    the metrics record, so it always agrees with the exported value and
    is zeroed by a registry reset. *)
