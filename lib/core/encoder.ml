open Pf_xpath

exception Unsupported = Pf_intf.Unsupported

type side = First | Second

type t = {
  source : Ast.path;
  preds : Predicate.t array;
  step_vars : (int * side) option array;
}

let constraints_of_step (s : Ast.step) =
  List.map
    (function
      | Ast.Attr { attr; cmp; value } -> { Predicate.attr; cmp; value }
      | Ast.Nested _ ->
        raise (Unsupported "nested path filter (decompose with Nested first)"))
    s.Ast.filters

let encode (p : Ast.path) =
  let steps = Array.of_list p.Ast.steps in
  let n = Array.length steps in
  if n = 0 then raise (Unsupported "empty path");
  (* Tag variables per step; wildcard steps must be unconstrained. *)
  let vars =
    Array.map
      (fun (s : Ast.step) ->
        match s.Ast.test with
        | Ast.Tag name -> Some (Predicate.tagvar ~constraints:(constraints_of_step s) name)
        | Ast.Wildcard ->
          if s.Ast.filters <> [] then
            raise (Unsupported "attribute filter on a wildcard step");
          None)
      steps
  in
  let tag_indices =
    Array.to_list vars
    |> List.mapi (fun i v -> i, v)
    |> List.filter_map (function i, Some v -> Some (i, v) | _, None -> None)
  in
  (* A tag variable may occur in several predicates; its constraints are
     attached only to the first occurrence (see interface). [fresh] yields a
     constrained variable once, then unconstrained copies. *)
  let used = Array.make n false in
  let fresh i (tv : Predicate.tagvar) =
    if used.(i) then { tv with Predicate.constraints = [] }
    else begin
      used.(i) <- true;
      tv
    end
  in
  let desc_within lo hi =
    (* is there a descendant axis on any step in [lo..hi] (0-based)? *)
    let rec go i = i <= hi && (steps.(i).Ast.axis = Ast.Descendant || go (i + 1)) in
    go lo
  in
  let preds = ref [] in
  let step_vars = Array.make n None in
  let npred = ref 0 in
  let emit pred refs =
    let idx = !npred in
    preds := pred :: !preds;
    incr npred;
    List.iter
      (fun (step_idx, side) ->
        if step_vars.(step_idx) = None then step_vars.(step_idx) <- Some (idx, side))
      refs
  in
  (match tag_indices with
  | [] ->
    (* all wildcards: a single length predicate *)
    emit (Predicate.Length { v = n }) []
  | (u, tv1) :: rest ->
    let trailing = n - 1 - (match List.rev tag_indices with (z, _) :: _ -> z | [] -> assert false) in
    let first_abs =
      if p.Ast.absolute then
        let op = if desc_within 0 u then Predicate.Ge else Predicate.Eq in
        Some op
      else if u > 0 || desc_within 0 u then Some Predicate.Ge
      else if rest = [] && trailing = 0 then Some Predicate.Ge
      else None
    in
    (match first_abs with
    | Some op ->
      emit (Predicate.Absolute { tag = fresh u tv1; op; v = u + 1 }) [ u, First ]
    | None -> ());
    (* relative predicates between adjacent tags *)
    let rec relatives (prev_i, prev_tv) = function
      | [] -> prev_i
      | (w, tvw) :: more ->
        let op = if desc_within (prev_i + 1) w then Predicate.Ge else Predicate.Eq in
        emit
          (Predicate.Relative
             { first = fresh prev_i prev_tv; second = fresh w tvw; op; v = w - prev_i })
          [ prev_i, First; w, Second ];
        relatives (w, tvw) more
    in
    let last_i = relatives (u, tv1) rest in
    let last_tv =
      match vars.(last_i) with Some tv -> tv | None -> assert false
    in
    if trailing > 0 then
      emit (Predicate.End_of_path { tag = fresh last_i last_tv; v = trailing }) [ last_i, First ]);
  { source = p; preds = Array.of_list (List.rev !preds); step_vars }

let encode_string s = encode (Parser.parse s)

let pp fmt t =
  Format.fprintf fmt "@[<h>%a : %a@]" Ast.pp t.source Predicate.pp_list
    (Array.to_list t.preds)
