(** XPE → ordered predicate encoding (Section 3.2).

    The mapping records the position of the first non-wildcard location step
    and the relative positions of every two adjacent tags:

    - leading wildcards shift the first tag's absolute predicate value;
      the first tag gets an absolute predicate iff the expression is
      absolute, has leading wildcards or descendants before the tag, or
      consists of a single tag with nothing after it (the paper's rule:
      emit just enough to uniquely represent the expression, e.g.
      [a/a/b/c] needs no [(p_a,>=,1)]);
    - between adjacent tags the distance counts every intervening location
      step once, with [>=] iff a descendant operator occurs between them
      (e.g. [a/*//b] → [(d(p_a,p_b),>=,2)], the proof's [k-u+1] form);
    - trailing wildcards yield an end-of-path predicate;
    - all-wildcard expressions collapse to a single length predicate
      ([/*/*] and [*/*] are deliberately identified).

    Attribute filters become attribute constraints on the {e first}
    predicate occurrence of the filtered tag's variable (one constrained
    occurrence suffices: occurrence-number chaining propagates the
    restriction to the other occurrences). *)

exception Unsupported of string
(** Raised for expressions outside the encodable subset: nested path
    filters (decompose with {!Nested} first) and attribute filters on
    wildcard steps (no tag variable to attach them to).

    This is {!Pf_intf.Unsupported}, re-exported: one handler catches the
    rejections of every engine behind {!Pf_intf.FILTER}. *)

type side = First | Second

type t = {
  source : Pf_xpath.Ast.path;
  preds : Predicate.t array;  (** the ordered predicate set; non-empty *)
  step_vars : (int * side) option array;
      (** for each location step (0-based), the predicate index and variable
          side that represents its tag; [None] for wildcard steps and for
          tags of all-wildcard (length-only) encodings *)
}

val encode : Pf_xpath.Ast.path -> t
(** Raises {!Unsupported}. The result has at least one predicate. *)

val encode_string : string -> t
(** Parse then encode. Raises {!Pf_xpath.Parser.Error} or {!Unsupported}. *)

val pp : Format.formatter -> t -> unit
