type tuple = {
  tag : Symbol.t;
  pos : int;
  occurrence : int;
  attrs : (string * string) list;
}

type t = {
  length : int;
  tuples : tuple array;
  structure : int array;
  mutable pos_index : (int, int) Hashtbl.t option;
      (* packed (tag, occurrence) -> pos, built on first lookup *)
}

let of_path (p : Pf_xml.Path.t) =
  let n = Array.length p.Pf_xml.Path.steps in
  let tuples =
    Array.mapi
      (fun i (s : Pf_xml.Path.step) ->
        { tag = s.sym; pos = i + 1; occurrence = s.occurrence; attrs = s.attrs })
      p.Pf_xml.Path.steps
  in
  { length = n; tuples; structure = Pf_xml.Path.structure p; pos_index = None }

let of_tags tags = of_path (Pf_xml.Path.of_tags tags)

(* Occurrence numbers are bounded by the path length, far below 2^16 (the
   same bound the predicate index's pair packing relies on). *)
let pos_key tag occurrence = (tag lsl 16) lor occurrence

let pos_of_occurrence t ~tag ~occurrence =
  let index =
    match t.pos_index with
    | Some index -> index
    | None ->
      let index = Hashtbl.create (2 * t.length) in
      Array.iter
        (fun tu -> Hashtbl.replace index (pos_key tu.tag tu.occurrence) tu.pos)
        t.tuples;
      t.pos_index <- Some index;
      index
  in
  Hashtbl.find_opt index (pos_key tag occurrence)

let attrs_at t ~pos = t.tuples.(pos - 1).attrs

let pp fmt t =
  Format.fprintf fmt "@[<h>(length,%d)" t.length;
  Array.iter
    (fun tu ->
      Format.fprintf fmt ", (%s^%d,%d)" (Symbol.name tu.tag) tu.occurrence tu.pos)
    t.tuples;
  Format.fprintf fmt "@]"
