type tuple = {
  mutable tag : Symbol.t;
  pos : int;
  mutable occurrence : int;
  mutable attrs : (string * string) list;
}

type t = {
  length : int;
  tuples : tuple array;
  structure : int array;
  mutable pos_index : (int, int) Hashtbl.t option;
      (* packed (tag, occurrence) -> pos, built on first lookup *)
}

let of_path (p : Pf_xml.Path.t) =
  let n = Array.length p.Pf_xml.Path.steps in
  let tuples =
    Array.mapi
      (fun i (s : Pf_xml.Path.step) ->
        { tag = s.sym; pos = i + 1; occurrence = s.occurrence; attrs = s.attrs })
      p.Pf_xml.Path.steps
  in
  { length = n; tuples; structure = Pf_xml.Path.structure p; pos_index = None }

let of_tags tags = of_path (Pf_xml.Path.of_tags tags)

(* ------------------------------------------------------------------ *)
(* Streaming publication arena: per-depth tuple records shared by
   per-length cached publications, so converting a streamed step stack
   into the paper's tuple set allocates nothing in the steady state. *)

type arena = {
  mutable cells : tuple array;  (* shared per-depth records; cells.(i).pos = i + 1 *)
  mutable pubs : t array;  (* pubs.(d): length d + 1, tuples = prefix of cells *)
}

let create_arena () = { cells = [||]; pubs = [||] }

let ensure_arena ar n =
  if n > Array.length ar.cells then begin
    let old = Array.length ar.cells in
    let cap = max 16 (max n (2 * old)) in
    let cells =
      Array.init cap (fun i ->
          if i < old then ar.cells.(i)
          else { tag = 0; pos = i + 1; occurrence = 0; attrs = [] })
    in
    let pubs =
      Array.init cap (fun d ->
          if d < old then ar.pubs.(d)
          else
            {
              length = d + 1;
              tuples = Array.sub cells 0 (d + 1);
              structure = Array.make (d + 1) 0;
              pos_index = None;
            })
    in
    ar.cells <- cells;
    ar.pubs <- pubs
  end

let of_steps ar (steps : Pf_xml.Path.step array) n =
  ensure_arena ar n;
  let cells = ar.cells in
  let pub = ar.pubs.(n - 1) in
  for i = 0 to n - 1 do
    let s = steps.(i) in
    let tu = cells.(i) in
    tu.tag <- s.Pf_xml.Path.sym;
    tu.occurrence <- s.Pf_xml.Path.occurrence;
    tu.attrs <- s.Pf_xml.Path.attrs;
    pub.structure.(i) <- s.Pf_xml.Path.child_index
  done;
  (* the lazy (tag, occurrence) -> pos index of any previous occupant of
     this length is stale now *)
  pub.pos_index <- None;
  pub

(* Occurrence numbers are bounded by the path length, far below 2^16 (the
   same bound the predicate index's pair packing relies on). *)
let pos_key tag occurrence = (tag lsl 16) lor occurrence

let pos_of_occurrence t ~tag ~occurrence =
  let index =
    match t.pos_index with
    | Some index -> index
    | None ->
      let index = Hashtbl.create (2 * t.length) in
      Array.iter
        (fun tu -> Hashtbl.replace index (pos_key tu.tag tu.occurrence) tu.pos)
        t.tuples;
      t.pos_index <- Some index;
      index
  in
  Hashtbl.find_opt index (pos_key tag occurrence)

let attrs_at t ~pos = t.tuples.(pos - 1).attrs

let pp fmt t =
  Format.fprintf fmt "@[<h>(length,%d)" t.length;
  Array.iter
    (fun tu ->
      Format.fprintf fmt ", (%s^%d,%d)" (Symbol.name tu.tag) tu.occurrence tu.pos)
    t.tuples;
  Format.fprintf fmt "@]"
