open Pf_xpath

(* ------------------------------------------------------------------ *)
(* Filter implication *)

(* The single-filter implication primitives live in Pf_xpath.Canonical —
   the canonicalizer uses them to merge sibling filters and cannot depend
   on this library — and are re-exported here under their historical
   name. *)
let implied_filter = Canonical.implied_filter

(* ------------------------------------------------------------------ *)
(* Homomorphism test *)

let attr_filters (s : Ast.step) =
  List.filter_map (function Ast.Attr f -> Some f | Ast.Nested _ -> None) s.Ast.filters

let check_single name (p : Ast.path) =
  if not (Ast.is_single_path p) then
    invalid_arg (name ^ ": nested path filters are not supported")

let all_wild (p : Ast.path) =
  List.for_all (fun (s : Ast.step) -> s.Ast.test = Ast.Wildcard && s.Ast.filters = []) p.Ast.steps

let rooted (p : Ast.path) =
  p.Ast.absolute
  && match p.Ast.steps with s :: _ -> s.Ast.axis = Ast.Child | [] -> false

(* Can step [a] of the general pattern land on step [b] of the specific
   one? Name tests must agree exactly (a wildcard target admits documents
   with any tag there) and every filter of [a] must be implied by some
   filter of [b]. *)
let step_compat (a : Ast.step) (b : Ast.step) =
  (match a.Ast.test with
  | Ast.Wildcard -> true
  | Ast.Tag t -> ( match b.Ast.test with Ast.Tag t' -> String.equal t t' | Ast.Wildcard -> false))
  &&
  let fb = attr_filters b in
  List.for_all (fun f -> List.exists (fun g -> implied_filter f g) fb) (attr_filters a)

let covers (s1 : Ast.path) (s2 : Ast.path) =
  check_single "Containment.covers" s1;
  check_single "Containment.covers" s2;
  if all_wild s1 then
    (* pure length constraint: s2 pins at least as many location steps *)
    List.length s2.Ast.steps >= List.length s1.Ast.steps
  else begin
    let a1 = Array.of_list s1.Ast.steps and a2 = Array.of_list s2.Ast.steps in
    let n1 = Array.length a1 and n2 = Array.length a2 in
    let memo = Hashtbl.create 64 in
    (* [place i j]: steps i.. of s1 can map onto steps of s2 starting with
       step i on step j. *)
    let rec place i j =
      match Hashtbl.find_opt memo (i, j) with
      | Some r -> r
      | None ->
        let r =
          step_compat a1.(i) a2.(j)
          &&
          (i = n1 - 1
          ||
          match a1.(i + 1).Ast.axis with
          | Ast.Child ->
            (* an exact-distance edge must ride an exact-distance edge *)
            j + 1 < n2 && a2.(j + 1).Ast.axis = Ast.Child && place (i + 1) (j + 1)
          | Ast.Descendant ->
            (* any later landing keeps document distance >= 1 *)
            let rec try_from j' = j' < n2 && (place (i + 1) j' || try_from (j' + 1)) in
            try_from (j + 1))
        in
        Hashtbl.add memo (i, j) r;
        r
    in
    if rooted s1 then rooted s2 && n2 > 0 && place 0 0
    else begin
      (* unanchored: the first step may land anywhere; if s1's first step
         is reachable only at depth >= 1 that always holds in documents *)
      let rec try_start j = j < n2 && (place 0 j || try_start (j + 1)) in
      n2 > 0 && try_start 0
    end
  end

let redundant exprs =
  let arr = Array.of_list exprs in
  let n = Array.length arr in
  let singles = Array.map Ast.is_single_path arr in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && singles.(i) && singles.(j) && covers arr.(i) arr.(j) then
        acc := (i, j) :: !acc
    done
  done;
  List.rev !acc
