type pid = int

(* Per-operator arrays of pid lists, indexed by predicate value. A slot
   holds a list because predicates sharing (tags, op, value) but differing
   in attribute constraints are distinct. *)
type slots = {
  eq : pid list Vec.t;
  ge : pid list Vec.t;
}

let make_slots () =
  { eq = Vec.create ~dummy:[] (); ge = Vec.create ~dummy:[] () }

let slot_vec slots (op : Predicate.op) =
  match op with Predicate.Eq -> slots.eq | Predicate.Ge -> slots.ge

(* Stage counters, typically registered in the owning engine's registry:
   [probes] counts candidate predicate inspections (slot-list entries
   visited by a run), [hits] the occurrence pairs recorded. *)
type metrics = { probes : Pf_obs.Counter.t; hits : Pf_obs.Counter.t }

let make_metrics ?registry () =
  {
    probes =
      Pf_obs.Counter.make ?registry "predicate_probes"
        ~help:"candidate predicates inspected during predicate matching";
    hits =
      Pf_obs.Counter.make ?registry "predicate_hits"
        ~help:"occurrence pairs recorded during predicate matching";
  }

type t = {
  preds : Predicate.t Vec.t;  (* pid -> predicate *)
  cons1 : Predicate.attr_constraint list Vec.t;  (* pid -> first-var constraints *)
  cons2 : Predicate.attr_constraint list Vec.t;
  absolute : (string, slots) Hashtbl.t;
  relative : (string, (string, slots) Hashtbl.t) Hashtbl.t;
  end_of_path : (string, pid list Vec.t) Hashtbl.t;
  length_slots : pid list Vec.t;  (* value-indexed; op is always >= *)
  m : metrics;
}

let src = Pf_obs.Events.src "predicate_index" ~doc:"Predicate index interning"

module Log = (val Logs.src_log src : Logs.LOG)

let create ?metrics () =
  {
    preds = Vec.create ~dummy:(Predicate.Length { v = 0 }) ();
    cons1 = Vec.create ~dummy:[] ();
    cons2 = Vec.create ~dummy:[] ();
    absolute = Hashtbl.create 64;
    relative = Hashtbl.create 64;
    end_of_path = Hashtbl.create 64;
    length_slots = Vec.create ~dummy:[] ();
    m = (match metrics with Some m -> m | None -> make_metrics ());
  }

let predicate t pid = Vec.get t.preds pid

let size t = Vec.length t.preds

(* The value-indexed slot vector and value for a predicate. *)
let locate t (p : Predicate.t) : pid list Vec.t * int =
  match p with
  | Predicate.Absolute { tag; op; v } ->
    let slots =
      match Hashtbl.find_opt t.absolute tag.name with
      | Some s -> s
      | None ->
        let s = make_slots () in
        Hashtbl.add t.absolute tag.name s;
        s
    in
    slot_vec slots op, v
  | Predicate.Relative { first; second; op; v } ->
    let tbl2 =
      match Hashtbl.find_opt t.relative first.name with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.add t.relative first.name tbl;
        tbl
    in
    let slots =
      match Hashtbl.find_opt tbl2 second.name with
      | Some s -> s
      | None ->
        let s = make_slots () in
        Hashtbl.add tbl2 second.name s;
        s
    in
    slot_vec slots op, v
  | Predicate.End_of_path { tag; v } ->
    let vec =
      match Hashtbl.find_opt t.end_of_path tag.name with
      | Some vec -> vec
      | None ->
        let vec = Vec.create ~dummy:[] () in
        Hashtbl.add t.end_of_path tag.name vec;
        vec
    in
    vec, v
  | Predicate.Length { v } -> t.length_slots, v

let find t p =
  let vec, v = locate t p in
  if v >= Vec.length vec then None
  else
    List.find_opt (fun pid -> Predicate.equal (Vec.get t.preds pid) p) (Vec.get vec v)

let intern t p =
  let vec, v = locate t p in
  Vec.ensure vec (v + 1);
  match List.find_opt (fun pid -> Predicate.equal (Vec.get t.preds pid) p) (Vec.get vec v) with
  | Some pid -> pid
  | None ->
    let pid = Vec.push t.preds p in
    let c1, c2 = Predicate.constraints_of p in
    let (_ : int) = Vec.push t.cons1 c1 in
    let (_ : int) = Vec.push t.cons2 c2 in
    Vec.set vec v (pid :: Vec.get vec v);
    Log.debug (fun m -> m "interned pid %d: %a" pid Predicate.pp p);
    pid

(* ------------------------------------------------------------------ *)
(* Predicate matching                                                   *)

(* Occurrence pairs are packed into single immediate ints ((o1 << 16) | o2)
   so result lists are plain int lists: one cons cell per match, no tuple
   boxes, and the chain search compares unboxed ints. Occurrence numbers
   are bounded by the document path length, far below 2^16. *)
let pack o1 o2 = (o1 lsl 16) lor o2

let packed_first p = p lsr 16
let packed_second p = p land 0xffff

type results = {
  mutable epoch : int;
  mutable stamp : int array;  (* pid -> epoch of last match *)
  mutable pairs : int list array;  (* pid -> packed occurrence pairs, reversed *)
  mutable matched : int;  (* matched predicates this epoch *)
}

let create_results () = { epoch = 0; stamp = [||]; pairs = [||]; matched = 0 }

let ensure_capacity res n =
  if Array.length res.stamp < n then begin
    let cap = max n (2 * Array.length res.stamp) in
    let stamp = Array.make cap 0 and pairs = Array.make cap [] in
    Array.blit res.stamp 0 stamp 0 (Array.length res.stamp);
    Array.blit res.pairs 0 pairs 0 (Array.length res.pairs);
    res.stamp <- stamp;
    res.pairs <- pairs
  end

let record res pid packed =
  if res.stamp.(pid) = res.epoch then res.pairs.(pid) <- packed :: res.pairs.(pid)
  else begin
    res.stamp.(pid) <- res.epoch;
    res.pairs.(pid) <- [ packed ];
    res.matched <- res.matched + 1
  end

let get_packed res pid =
  if pid < Array.length res.stamp && res.stamp.(pid) = res.epoch then res.pairs.(pid)
  else []

let get res pid =
  List.map (fun p -> packed_first p, packed_second p) (get_packed res pid)

let is_matched res pid =
  pid < Array.length res.stamp && res.stamp.(pid) = res.epoch

let matched_count res = res.matched

(* Check the attribute constraints of [pid]'s first/second variable against
   tuple attributes. Unconstrained predicates skip the list traversal. *)
let cons_ok t pid ~first ~second =
  (match Vec.get t.cons1 pid with
  | [] -> true
  | cs -> Predicate.check_constraints cs first)
  &&
  match Vec.get t.cons2 pid with
  | [] -> true
  | cs -> Predicate.check_constraints cs second

let run t res (pub : Publication.t) =
  ensure_capacity res (Vec.length t.preds);
  res.epoch <- res.epoch + 1;
  res.matched <- 0;
  (* candidate inspections / recorded pairs; accumulated locally and
     flushed to the counters once per run to keep the loops tight *)
  let probes = ref 0 and hits = ref 0 in
  let l = pub.Publication.length in
  (* length-of-expression predicates: (length,>=,v) matches iff l >= v *)
  let stop = min l (Vec.length t.length_slots - 1) in
  for v = 1 to stop do
    List.iter
      (fun pid ->
        incr probes;
        incr hits;
        record res pid (pack 0 0))
      (Vec.get t.length_slots v)
  done;
  let tuples = pub.Publication.tuples in
  let n = Array.length tuples in
  for i = 0 to n - 1 do
    let tu = tuples.(i) in
    let o = tu.Publication.occurrence in
    (* absolute predicates *)
    (match Hashtbl.find_opt t.absolute tu.Publication.tag with
    | None -> ()
    | Some slots ->
      let pos = tu.Publication.pos in
      if pos < Vec.length slots.eq then
        List.iter
          (fun pid ->
            incr probes;
            if cons_ok t pid ~first:tu.Publication.attrs ~second:tu.Publication.attrs
            then begin
              incr hits;
              record res pid (pack o o)
            end)
          (Vec.get slots.eq pos);
      let stop = min pos (Vec.length slots.ge - 1) in
      for v = 1 to stop do
        List.iter
          (fun pid ->
            incr probes;
            if cons_ok t pid ~first:tu.Publication.attrs ~second:tu.Publication.attrs
            then begin
              incr hits;
              record res pid (pack o o)
            end)
          (Vec.get slots.ge v)
      done);
    (* end-of-path predicates: (p_t-|,>=,v) matches iff l - pos >= v *)
    (match Hashtbl.find_opt t.end_of_path tu.Publication.tag with
    | None -> ()
    | Some vec ->
      let stop = min (l - tu.Publication.pos) (Vec.length vec - 1) in
      for v = 1 to stop do
        List.iter
          (fun pid ->
            incr probes;
            if cons_ok t pid ~first:tu.Publication.attrs ~second:tu.Publication.attrs
            then begin
              incr hits;
              record res pid (pack o o)
            end)
          (Vec.get vec v)
      done);
    (* relative predicates: pair this tuple with every later tuple *)
    match Hashtbl.find_opt t.relative tu.Publication.tag with
    | None -> ()
    | Some tbl2 ->
      for j = i + 1 to n - 1 do
        let tu2 = tuples.(j) in
        match Hashtbl.find_opt tbl2 tu2.Publication.tag with
        | None -> ()
        | Some slots ->
          let d = tu2.Publication.pos - tu.Publication.pos in
          let o2 = tu2.Publication.occurrence in
          if d < Vec.length slots.eq then
            List.iter
              (fun pid ->
                incr probes;
                if cons_ok t pid ~first:tu.Publication.attrs ~second:tu2.Publication.attrs
                then begin
                  incr hits;
                  record res pid (pack o o2)
                end)
              (Vec.get slots.eq d);
          let stop = min d (Vec.length slots.ge - 1) in
          for v = 1 to stop do
            List.iter
              (fun pid ->
                incr probes;
                if cons_ok t pid ~first:tu.Publication.attrs ~second:tu2.Publication.attrs
                then begin
                  incr hits;
                  record res pid (pack o o2)
                end)
              (Vec.get slots.ge v)
          done
      done
  done;
  Pf_obs.Counter.add t.m.probes !probes;
  Pf_obs.Counter.add t.m.hits !hits
