type pid = int

(* Stage counters, typically registered in the owning engine's registry:
   [probes] counts candidate predicate inspections (arena slots visited by
   a run), [hits] the occurrence pairs recorded. *)
type metrics = { probes : Pf_obs.Counter.t; hits : Pf_obs.Counter.t }

let make_metrics ?registry () =
  {
    probes =
      Pf_obs.Counter.make ?registry "predicate_probes"
        ~help:"candidate predicates inspected during predicate matching";
    hits =
      Pf_obs.Counter.make ?registry "predicate_hits"
        ~help:"occurrence pairs recorded during predicate matching";
  }

let src = Pf_obs.Events.src "predicate_index" ~doc:"Predicate index interning"

module Log = (val Logs.src_log src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Storage layout

   The index keeps two representations. The build side records, per pid,
   which of six logical tables the predicate belongs to plus its key
   symbols and value — cheap to append to, never read while matching. The
   match side is a flat image of contiguous int arrays rebuilt lazily
   (once per subscription change, not per document): per table a CSR
   layout of key rows over dense value columns over one shared pid arena,
   so the inner match loop is sequential array walks with no boxing, no
   hashing and no closures. *)

(* Logical tables. Every predicate lives in exactly one. *)
let tab_abs_eq = 0 (* Absolute, op = Eq; key = tag symbol *)
let tab_abs_ge = 1 (* Absolute, op = Ge *)
let tab_eop = 2 (* End_of_path (always >=); key = tag symbol *)
let tab_rel_eq = 3 (* Relative, op = Eq; key = dense (first,second) pair id *)
let tab_rel_ge = 4 (* Relative, op = Ge *)
let tab_length = 5 (* Length (always >=); single key 0 *)

(* One flattened table. [rows.(k)] is the first column of key [k]: row [k]
   spans columns [rows.(k) .. rows.(k+1)-1] and column [rows.(k) + v]
   holds exactly the pids stored under value [v] (dense value columns, so
   an Eq probe is a bounds check plus one contiguous slice). [starts] is
   globally cumulative over the columns, and columns of one row are
   consecutive in value order — a Ge probe over values [1..stop] is
   therefore the single slice
   [starts.(rows.(k)+1) .. starts.(rows.(k)+stop+1)] of [tpids]. *)
type table = {
  rows : int array; (* key -> first column; length nkeys+1 *)
  starts : int array; (* column -> first slot of tpids; length ncols+1 *)
  tpids : int array; (* flat pid arena, column-major *)
}

type flat = {
  nsym : int; (* symbol bound shared by every symbol-indexed array *)
  abs_eq : table;
  abs_ge : table;
  eop : table;
  rel_eq : table;
  rel_ge : table;
  len_tab : table;
  rel_row : int array;
      (* first symbol -> dense row index among relative predicates, -1 if
         no relative predicate names it; length nsym *)
  rel_pair : int array;
      (* row-major [row * nsym + second symbol] -> dense pair id, -1;
         replaces the per-symbol hashtable probe of the O(n^2) tuple-pair
         loop with one array read *)
  cmask : int array;
      (* packed per-pid constraint bitmap (32 bits per element): bit set
         iff the pid carries attribute constraints, so the unconstrained
         common case never touches the cons1/cons2 vectors *)
}

let empty_table = { rows = [| 0; 0 |]; starts = [| 0 |]; tpids = [||] }

let empty_flat =
  {
    nsym = 0;
    abs_eq = empty_table;
    abs_ge = empty_table;
    eop = empty_table;
    rel_eq = empty_table;
    rel_ge = empty_table;
    len_tab = empty_table;
    rel_row = [||];
    rel_pair = [||];
    cmask = [||];
  }

module Ptbl = Hashtbl.Make (struct
  type t = Predicate.t

  let equal = Predicate.equal
  let hash = Predicate.hash
end)

type t = {
  preds : Predicate.t Vec.t; (* pid -> predicate *)
  cons1 : Predicate.attr_constraint list Vec.t; (* pid -> first-var constraints *)
  cons2 : Predicate.attr_constraint list Vec.t;
  by_pred : pid Ptbl.t; (* structural dedup at intern time *)
  ptab : int Vec.t; (* pid -> logical table *)
  psym1 : int Vec.t; (* pid -> first key symbol (0 for Length) *)
  psym2 : int Vec.t; (* pid -> second key symbol (relative only) *)
  pval : int Vec.t; (* pid -> predicate value *)
  mutable dirty : bool; (* a new predicate invalidated the flat image *)
  mutable flat : flat;
  m : metrics;
}

let create ?metrics () =
  {
    preds = Vec.create ~dummy:(Predicate.Length { v = 0 }) ();
    cons1 = Vec.create ~dummy:[] ();
    cons2 = Vec.create ~dummy:[] ();
    by_pred = Ptbl.create 256;
    ptab = Vec.create ~dummy:0 ();
    psym1 = Vec.create ~dummy:0 ();
    psym2 = Vec.create ~dummy:0 ();
    pval = Vec.create ~dummy:0 ();
    (* dirty so the first run builds the (empty) flat image too *)
    dirty = true;
    flat = empty_flat;
    m = (match metrics with Some m -> m | None -> make_metrics ());
  }

let predicate t pid = Vec.get t.preds pid

let size t = Vec.length t.preds

let find t p = Ptbl.find_opt t.by_pred p

let intern t p =
  match Ptbl.find_opt t.by_pred p with
  | Some pid -> pid
  | None ->
    let pid = Vec.push t.preds p in
    Ptbl.add t.by_pred p pid;
    let c1, c2 = Predicate.constraints_of p in
    let (_ : int) = Vec.push t.cons1 c1 in
    let (_ : int) = Vec.push t.cons2 c2 in
    (* tag names are interned here, at expression-compile time; the match
       loop below only ever sees symbols *)
    let tab, s1, s2, v =
      match p with
      | Predicate.Absolute { tag; op = Predicate.Eq; v } ->
        tab_abs_eq, Symbol.intern tag.name, 0, v
      | Predicate.Absolute { tag; op = Predicate.Ge; v } ->
        tab_abs_ge, Symbol.intern tag.name, 0, v
      | Predicate.End_of_path { tag; v } -> tab_eop, Symbol.intern tag.name, 0, v
      | Predicate.Relative { first; second; op; v } ->
        ( (match op with Predicate.Eq -> tab_rel_eq | Predicate.Ge -> tab_rel_ge),
          Symbol.intern first.name,
          Symbol.intern second.name,
          v )
      | Predicate.Length { v } -> tab_length, 0, 0, v
    in
    let (_ : int) = Vec.push t.ptab tab in
    let (_ : int) = Vec.push t.psym1 s1 in
    let (_ : int) = Vec.push t.psym2 s2 in
    let (_ : int) = Vec.push t.pval v in
    t.dirty <- true;
    Log.debug (fun m -> m "interned pid %d: %a" pid Predicate.pp p);
    pid

(* ------------------------------------------------------------------ *)
(* Flat-image construction (cold path: once per subscription change) *)

let is_rel tab = tab = tab_rel_eq || tab = tab_rel_ge

let rebuild t =
  let n = Vec.length t.preds in
  let nsym = ref 0 in
  for pid = 0 to n - 1 do
    if Vec.get t.ptab pid <> tab_length then begin
      nsym := max !nsym (Vec.get t.psym1 pid + 1);
      nsym := max !nsym (Vec.get t.psym2 pid + 1)
    end
  done;
  let nsym = !nsym in
  (* dense rows for the first symbols of relative predicates, then dense
     pair ids for their (first, second) combinations *)
  let rel_row = Array.make (max nsym 1) (-1) in
  let nrows = ref 0 in
  for pid = 0 to n - 1 do
    if is_rel (Vec.get t.ptab pid) then begin
      let s1 = Vec.get t.psym1 pid in
      if rel_row.(s1) < 0 then begin
        rel_row.(s1) <- !nrows;
        incr nrows
      end
    end
  done;
  let rel_pair = Array.make (max 1 (!nrows * nsym)) (-1) in
  let npairs = ref 0 in
  for pid = 0 to n - 1 do
    if is_rel (Vec.get t.ptab pid) then begin
      let cell = (rel_row.(Vec.get t.psym1 pid) * nsym) + Vec.get t.psym2 pid in
      if rel_pair.(cell) < 0 then begin
        rel_pair.(cell) <- !npairs;
        incr npairs
      end
    end
  done;
  let npairs = !npairs in
  let key_of pid =
    let tab = Vec.get t.ptab pid in
    if tab = tab_length then 0
    else if is_rel tab then
      rel_pair.((rel_row.(Vec.get t.psym1 pid) * nsym) + Vec.get t.psym2 pid)
    else Vec.get t.psym1 pid
  in
  (* counting sort of one table's pids into its CSR image *)
  let build tab nkeys =
    let width = Array.make (max 1 nkeys) 0 in
    for pid = 0 to n - 1 do
      if Vec.get t.ptab pid = tab then begin
        let k = key_of pid in
        width.(k) <- max width.(k) (Vec.get t.pval pid + 1)
      end
    done;
    let rows = Array.make (nkeys + 1) 0 in
    for k = 0 to nkeys - 1 do
      rows.(k + 1) <- rows.(k) + width.(k)
    done;
    let ncols = rows.(nkeys) in
    let starts = Array.make (ncols + 1) 0 in
    for pid = 0 to n - 1 do
      if Vec.get t.ptab pid = tab then begin
        let col = rows.(key_of pid) + Vec.get t.pval pid in
        starts.(col + 1) <- starts.(col + 1) + 1
      end
    done;
    for c = 0 to ncols - 1 do
      starts.(c + 1) <- starts.(c) + starts.(c + 1)
    done;
    let tpids = Array.make (max 1 starts.(ncols)) 0 in
    let cursor = Array.copy starts in
    for pid = 0 to n - 1 do
      if Vec.get t.ptab pid = tab then begin
        let col = rows.(key_of pid) + Vec.get t.pval pid in
        tpids.(cursor.(col)) <- pid;
        cursor.(col) <- cursor.(col) + 1
      end
    done;
    { rows; starts; tpids }
  in
  let cmask = Array.make (max 1 ((n + 31) lsr 5)) 0 in
  for pid = 0 to n - 1 do
    if Vec.get t.cons1 pid <> [] || Vec.get t.cons2 pid <> [] then
      cmask.(pid lsr 5) <- cmask.(pid lsr 5) lor (1 lsl (pid land 31))
  done;
  t.flat <-
    {
      nsym;
      abs_eq = build tab_abs_eq nsym;
      abs_ge = build tab_abs_ge nsym;
      eop = build tab_eop nsym;
      rel_eq = build tab_rel_eq npairs;
      rel_ge = build tab_rel_ge npairs;
      len_tab = build tab_length 1;
      rel_row;
      rel_pair;
      cmask;
    };
  t.dirty <- false;
  Log.debug (fun m ->
      m "rebuilt flat image: %d predicates, %d symbols, %d relative pairs" n nsym
        npairs)

(* ------------------------------------------------------------------ *)
(* Predicate matching                                                   *)

(* Occurrence pairs are packed into single immediate ints ((o1 << 16) | o2)
   so the chain search compares unboxed ints. Occurrence numbers are
   bounded by the document path length, far below 2^16. *)
let pack o1 o2 = (o1 lsl 16) lor o2

let packed_first p = p lsr 16
let packed_second p = p land 0xffff

(* Result pairs live in a flat cell arena reused across documents: cell [c]
   occupies slots [2c] (packed pair) and [2c+1] (index of the next cell of
   the same pid, -1 at the end). One [run] resets the arena with a cursor
   bump, so the steady state allocates nothing — no cons cell per pair, no
   list boxing, and traversal walks contiguous memory. *)
type results = {
  mutable epoch : int;
  mutable stamp : int array; (* pid -> epoch of last match *)
  mutable heads : int array; (* pid -> newest cell index (valid iff stamped) *)
  mutable cells : int array;
  mutable n_cells : int; (* cells used this epoch *)
  mutable matched : int; (* matched predicates this epoch *)
  mutable r_probes : int;
      (* [run]'s scratch counters — fields rather than refs so a run
         allocates nothing; flushed to the metrics once per run *)
  mutable r_hits : int;
}

let create_results () =
  {
    epoch = 0;
    stamp = [||];
    heads = [||];
    cells = [||];
    n_cells = 0;
    matched = 0;
    r_probes = 0;
    r_hits = 0;
  }

let ensure_capacity res n =
  if Array.length res.stamp < n then begin
    let cap = max n (2 * Array.length res.stamp) in
    let stamp = Array.make cap 0 and heads = Array.make cap (-1) in
    Array.blit res.stamp 0 stamp 0 (Array.length res.stamp);
    Array.blit res.heads 0 heads 0 (Array.length res.heads);
    res.stamp <- stamp;
    res.heads <- heads
  end

let record res pid packed =
  let c = res.n_cells in
  if 2 * c + 1 >= Array.length res.cells then begin
    let bigger = Array.make (max 64 (2 * Array.length res.cells)) (-1) in
    Array.blit res.cells 0 bigger 0 (Array.length res.cells);
    res.cells <- bigger
  end;
  res.cells.(2 * c) <- packed;
  if res.stamp.(pid) = res.epoch then res.cells.((2 * c) + 1) <- res.heads.(pid)
  else begin
    res.stamp.(pid) <- res.epoch;
    res.cells.((2 * c) + 1) <- -1;
    res.matched <- res.matched + 1
  end;
  res.heads.(pid) <- c;
  res.n_cells <- c + 1

let is_matched res pid =
  pid < Array.length res.stamp && res.stamp.(pid) = res.epoch

let head res pid = if is_matched res pid then res.heads.(pid) else -1

let cells res = res.cells

let iter_pairs res pid f =
  if is_matched res pid then begin
    let cells = res.cells in
    let c = ref res.heads.(pid) in
    while !c >= 0 do
      f cells.(2 * !c);
      c := cells.((2 * !c) + 1)
    done
  end

let get_packed res pid =
  let acc = ref [] in
  iter_pairs res pid (fun p -> acc := p :: !acc);
  List.rev !acc

let get res pid =
  List.map (fun p -> packed_first p, packed_second p) (get_packed res pid)

let matched_count res = res.matched

(* Check the attribute constraints of [pid]'s first/second variable against
   tuple attributes. Only reached when the constraint bitmap says the pid
   is constrained, so one side is always non-empty. *)
let cons_ok t pid ~first ~second =
  (match Vec.get t.cons1 pid with
  | [] -> true
  | cs -> Predicate.check_constraints cs first)
  &&
  match Vec.get t.cons2 pid with
  | [] -> true
  | cs -> Predicate.check_constraints cs second

(* Visit one contiguous pid-arena slice: count each probe, gate the
   attribute-constraint check on the bitmap, record the packed pair on
   success. A top-level function rather than a closure inside [run_flat]'s
   loops — the slices execute per (tuple, value range) and a closure
   allocation there would dominate the whole match path's allocation (the
   loops themselves are allocation-free, so this keeps the streaming
   mode's steady state at zero words per path). Probe/hit tallies go to
   [res.r_probes]/[res.r_hits] — mutable scratch fields, not refs — and
   are flushed to the metrics once per run. *)
let visit t cmask tpids res first second packed lo hi =
  for s = lo to hi - 1 do
    let pid = tpids.(s) in
    res.r_probes <- res.r_probes + 1;
    if
      cmask.(pid lsr 5) land (1 lsl (pid land 31)) = 0
      || cons_ok t pid ~first ~second
    then begin
      res.r_hits <- res.r_hits + 1;
      record res pid packed
    end
  done

(* Match one publication against the current flat image. The caller has
   already reset the probe/hit scratch and ensured the image is fresh. *)
let run_flat t res (pub : Publication.t) =
  ensure_capacity res (Vec.length t.preds);
  res.epoch <- res.epoch + 1;
  res.n_cells <- 0;
  res.matched <- 0;
  let fl = t.flat in
  let cmask = fl.cmask in
  let l = pub.Publication.length in
  (* length-of-expression predicates: (length,>=,v) matches iff l >= v;
     the single row's columns are value-ascending, so values 1..stop are
     one contiguous slice (Length predicates never carry constraints, so
     the bitmap branch in [visit] always takes the fast side) *)
  let lt = fl.len_tab in
  let stop = min l (lt.rows.(1) - 1) in
  if stop >= 1 then
    visit t cmask lt.tpids res [] [] (pack 0 0) lt.starts.(1) lt.starts.(stop + 1);
  let tuples = pub.Publication.tuples in
  let nsym = fl.nsym in
  let abs_eq = fl.abs_eq and abs_ge = fl.abs_ge and eop = fl.eop in
  let rel_eq = fl.rel_eq and rel_ge = fl.rel_ge in
  let rel_row = fl.rel_row and rel_pair = fl.rel_pair in
  for i = 0 to l - 1 do
    let tu = tuples.(i) in
    let sym = tu.Publication.tag in
    (* a symbol interned after the last rebuild cannot be named by any
       stored predicate — neither as a first nor (below) second variable *)
    if sym < nsym then begin
      let o = tu.Publication.occurrence in
      let attrs = tu.Publication.attrs in
      let pos = tu.Publication.pos in
      let packed = pack o o in
      (* absolute =: the value must equal the tuple position *)
      let base = abs_eq.rows.(sym) in
      if pos < abs_eq.rows.(sym + 1) - base then begin
        let col = base + pos in
        visit t cmask abs_eq.tpids res attrs attrs packed abs_eq.starts.(col)
          abs_eq.starts.(col + 1)
      end;
      (* absolute >=: values 1..min(pos, width-1) — one slice *)
      let base = abs_ge.rows.(sym) in
      let stop = min pos (abs_ge.rows.(sym + 1) - base - 1) in
      if stop >= 1 then
        visit t cmask abs_ge.tpids res attrs attrs packed
          abs_ge.starts.(base + 1)
          abs_ge.starts.(base + stop + 1);
      (* end-of-path: (p_t-|,>=,v) matches iff l - pos >= v *)
      let base = eop.rows.(sym) in
      let stop = min (l - pos) (eop.rows.(sym + 1) - base - 1) in
      if stop >= 1 then
        visit t cmask eop.tpids res attrs attrs packed
          eop.starts.(base + 1)
          eop.starts.(base + stop + 1);
      (* relative predicates: pair this tuple with every later tuple; the
         dense row/pair arrays replace the per-symbol hashtable probe *)
      let r = rel_row.(sym) in
      if r >= 0 then begin
        let prow = r * nsym in
        for j = i + 1 to l - 1 do
          let tu2 = tuples.(j) in
          let s2 = tu2.Publication.tag in
          if s2 < nsym then begin
            let k = rel_pair.(prow + s2) in
            if k >= 0 then begin
              let d = tu2.Publication.pos - pos in
              let packed2 = pack o tu2.Publication.occurrence in
              let attrs2 = tu2.Publication.attrs in
              let base = rel_eq.rows.(k) in
              if d < rel_eq.rows.(k + 1) - base then begin
                let col = base + d in
                visit t cmask rel_eq.tpids res attrs attrs2 packed2
                  rel_eq.starts.(col)
                  rel_eq.starts.(col + 1)
              end;
              let base = rel_ge.rows.(k) in
              let stop = min d (rel_ge.rows.(k + 1) - base - 1) in
              if stop >= 1 then
                visit t cmask rel_ge.tpids res attrs attrs2 packed2
                  rel_ge.starts.(base + 1)
                  rel_ge.starts.(base + stop + 1)
            end
          end
        done
      end
    end
  done

let run t res pub =
  if t.dirty then rebuild t;
  res.r_probes <- 0;
  res.r_hits <- 0;
  run_flat t res pub;
  Pf_obs.Counter.add t.m.probes res.r_probes;
  Pf_obs.Counter.add t.m.hits res.r_hits

let run_batch t ress pubs =
  let n = Array.length pubs in
  if Array.length ress <> n then
    invalid_arg "Predicate_index.run_batch: results/publications length mismatch";
  (* one freshness check for the whole batch: the flat image stays hot in
     cache across the publications instead of alternating with downstream
     per-document work *)
  if t.dirty then rebuild t;
  for i = 0 to n - 1 do
    let res = ress.(i) in
    res.r_probes <- 0;
    res.r_hits <- 0;
    run_flat t res pubs.(i);
    Pf_obs.Counter.add t.m.probes res.r_probes;
    Pf_obs.Counter.add t.m.hits res.r_hits
  done
