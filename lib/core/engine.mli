(** The predicate-based XPath filtering engine — public API.

    Usage:
    {[
      let engine = Engine.create () in
      let sid = Engine.add_string engine "/nitf/head//title" in
      let doc = Pf_xml.Sax.parse_document xml_text in
      let matched = Engine.match_document engine doc in
      (* matched = sorted sids of all matching expressions *)
    ]}

    The engine implements the two-stage algorithm of Section 4 over the
    shared predicate index, with the expression organization selected by
    {!Expr_index.variant} and attribute filters evaluated inline or
    selection-postponed (Section 5). Nested path expressions are accepted
    transparently and processed by the decomposition of Section 5. *)

type attr_mode =
  | Inline
      (** attribute constraints are part of stored predicates and checked
          during predicate matching *)
  | Postponed
      (** predicates are stored position-only; attribute filters are checked
          after structural matching by re-running the occurrence
          determination over candidate chains *)

(** How documents reach the matching loop. *)
type ingest =
  | Tree
      (** materialize the document tree, then extract all paths — the
          difftest oracle's mode *)
  | Scan
      (** extract paths off the SAX event stream and snapshot each into a
          fresh publication (no tree; one allocation per path) *)
  | Stream
      (** fully streaming: arena publications are refilled in place
          straight from the step stack at each leaf's end-tag event, so
          matching allocates neither a tree nor per-path tuples *)

type t

val create :
  ?variant:Expr_index.variant ->
  ?attr_mode:attr_mode ->
  ?collect_stats:bool ->
  ?dedup_paths:bool ->
  ?path_cache:bool ->
  ?path_cache_capacity:int ->
  unit ->
  t
(** Defaults: [variant = Access_predicate] (the paper's best variant,
    "basic-pc-ap"), [attr_mode = Inline], [collect_stats = false],
    [dedup_paths = false], [path_cache = false],
    [path_cache_capacity = 65536].

    [dedup_paths] is an extension beyond the paper: sibling subtrees
    produce literally identical publications (occurrence numbers are
    per-path), so tag-identical paths of one document can be matched once.
    The optimization is sound only while no registered expression carries
    attribute filters and none is nested (it disables itself otherwise)
    and speeds up repetitive documents severalfold — see the [ablation]
    benchmark. Off by default to keep the default engine the paper's
    algorithm.

    [path_cache] enables the cross-document path-result cache: the
    complete sorted sid set the predicate+occurrence stages produce for a
    root-to-leaf path is memoized under the path's interned symbol
    sequence (plus its attribute tuples once any registered expression
    carries attribute filters), so DTD-driven streams that repeat paths
    across documents skip both stages on a hit. Entries are versioned by
    the subscription epoch — every successful {!add}/{!remove} lazily
    invalidates the whole cache — and results are always identical to the
    uncached engine. Nested path expressions need whole-document state;
    while any is registered, matching bypasses the cache. At
    [path_cache_capacity] entries the cache is reset wholesale. Hits,
    misses, evictions and invalidations are exported as
    [path_cache_hits]/[path_cache_misses]/[path_cache_evictions]/
    [path_cache_invalidations] counters in the engine registry. *)

val variant : t -> Expr_index.variant
val attr_mode : t -> attr_mode

val path_cache_enabled : t -> bool
(** True iff the engine was created with [path_cache:true]. *)

(** {1 The unified engine signature} *)

val filter :
  ?variant:Expr_index.variant ->
  ?attr_mode:attr_mode ->
  ?collect_stats:bool ->
  ?dedup_paths:bool ->
  ?path_cache:bool ->
  ?path_cache_capacity:int ->
  ?stream:ingest ->
  unit ->
  (module Pf_intf.FILTER with type t = t)
(** A first-class {!Pf_intf.FILTER} whose [create] builds engines with the
    given configuration (defaults as {!create}; [stream] defaults to
    {!Tree}). With [stream:Scan] the module matches through {!match_scan}
    and with [stream:Stream] through {!match_stream} — documents are
    serialized and consumed as SAX events, never materialized on the
    matching side. Generic layers ({!Pf_service}, the difftest roster,
    the benchmark harness) consume engines through this signature. *)

module Filter : Pf_intf.FILTER with type t = t
(** [filter ()] applied: the default configuration as a named module. *)

val filter_subsumed :
  ?variant:Expr_index.variant ->
  ?attr_mode:attr_mode ->
  ?collect_stats:bool ->
  ?dedup_paths:bool ->
  ?path_cache:bool ->
  ?path_cache_capacity:int ->
  ?stream:ingest ->
  ?subsumption:bool ->
  unit ->
  Pf_intf.filter
(** {!filter} wrapped in the subsumption index ({!Subsume.filter}):
    semantically equal expressions share one physical engine expression
    and match results fan back out to logical sids, byte-identical to the
    unwrapped engine. With [~subsumption:false] (default [true]) the
    wrapper is omitted — same module shape either way, for call sites
    toggling the optimization. Returns a plain [Pf_intf.filter] (the
    wrapper's [t] is not the engine's [t], so it cannot share {!filter}'s
    signature). *)

val add : t -> Pf_xpath.Ast.path -> int
(** Register an expression; returns its sid (dense, starting at 0).
    Duplicate expressions receive distinct sids but share all predicate
    and trie structure. Insertion is constant-time per predicate.
    Raises {!Encoder.Unsupported} for expressions outside the supported
    subset. *)

val add_string : t -> string -> int
(** Parse then {!add}. Raises {!Pf_xpath.Parser.Error} on bad syntax. *)

val expression : t -> int -> Pf_xpath.Ast.path
(** The expression registered under a sid. Raises [Invalid_argument] for
    unknown sids. *)

val remove : t -> int -> bool
(** Unregister an expression. Returns false if the sid is unknown or was
    already removed. Constant-time (like insertion — one of the approach's
    advantages over compiled automata such as XPush); the predicates it
    interned are not reclaimed, so {!distinct_predicate_count} does not
    decrease. *)

val is_active : t -> int -> bool
(** True iff the sid is registered and not removed. *)

val match_document : t -> Pf_xml.Tree.t -> int list
(** Sids of all expressions matched by the document, sorted ascending.
    An expression matches iff its evaluation over the document yields a
    non-empty node set (single-path expressions: iff some root-to-leaf
    path matches). *)

val match_string : t -> string -> int list
(** Parse the XML (raises {!Pf_xml.Sax.Parse_error}) then
    {!match_document}. *)

val match_scan : t -> string -> int list
(** Like {!match_string}, but never materializes the document tree: paths
    are extracted from the SAX event stream one at a time and matched as
    their leaves close — the pipeline the paper describes. Each path is
    snapshotted into a fresh publication. Equivalent results to
    {!match_string}. *)

val match_stream : t -> string -> int list
(** The fully streaming match path: like {!match_scan} but the per-path
    publication is not allocated either — the engine-owned
    {!Publication.arena} is refilled in place from the step stack at each
    leaf's end-tag event, so matching a document allocates neither a tree
    nor per-path tuples once the arenas are warm. Records a
    ["stream-match"] trace span covering the fused parse+extract+match
    drive and bumps the ["stream_documents"] counter. Equivalent results
    to {!match_string} (the streaming [#text] caveat of
    {!Pf_xml.Path.of_string} applies to mixed-content ancestors).
    Raises {!Pf_xml.Sax.Parse_error} at the same positions as the tree
    parser. *)

val match_path : t -> Pf_xml.Path.t -> int list
(** Match the single-path expressions against one document path (nested
    expressions need whole documents and are not reported here). *)

val match_batch : t -> Pf_xml.Tree.t list -> int list list
(** Match several documents, batching the predicate stage: each document's
    publications go through {!Predicate_index.run_batch} in chunks, so the
    flat predicate image is walked for a whole chunk back-to-back instead
    of alternating with expression evaluation. Match sets are identical to
    [List.map (match_document t)] — the batched plan is only taken when
    per-path processing is independent (no nested expressions, no path
    cache, no path dedup, no ambient trace, no stage timing); otherwise
    each document goes through {!match_document}. *)

val match_string_batch : t -> string list -> int list list
(** Parse each document (raises {!Pf_xml.Sax.Parse_error}) then
    {!match_batch}. *)

(** {1 Match provenance} *)

type explanation = {
  expl_path : Pf_xml.Path.t;  (** the matching document path *)
  expl_chain : (Predicate.t * (int * int)) list;
      (** the expression's ordered predicates, each with the occurrence
          pair it matched through (the chain the occurrence determination
          found) *)
}

val explain : t -> Pf_xml.Tree.t -> int -> explanation option
(** [explain t doc sid] produces a witness for why the single-path
    expression [sid] matches [doc]: the document path and the occurrence
    chain. [None] if it does not match (or was removed). Nested path
    expressions are not explained ([None]). Runs an independent match —
    intended for debugging subscriptions, not for the hot path. *)

val pp_explanation : Format.formatter -> explanation -> unit

(** {1 Introspection} *)

val expression_count : t -> int
val distinct_predicate_count : t -> int
(** Distinct predicates stored — the sharing metric of Figure 10. *)

val occurrence_runs : t -> int
(** Reads the engine registry's ["occurrence_runs"] counter; always agrees
    with the exported metric and is zeroed by {!reset_stats}. *)

(** {1 Metrics}

    Every engine owns a {!Pf_obs.Registry.t} (scope ["engine"]) holding
    its counters, histograms and per-stage span timers:

    - counters ["paths"], ["documents"], ["stream_documents"],
      ["dedup_path_hits"],
      ["path_cache_hits"], ["path_cache_misses"], ["path_cache_evictions"],
      ["path_cache_invalidations"], ["predicate_probes"],
      ["predicate_hits"], ["occurrence_runs"], ["backtrack_steps"],
      ["prefix_cover_skips"], ["access_skips"];
    - histogram ["chain_length"] (predicate chain length per occurrence
      determination run);
    - spans ["predicate_stage_ns"], ["expr_stage_ns"],
      ["collect_stage_ns"] (populated only with [collect_stats:true]).

    Render it with {!Pf_obs.Export}. *)

val metrics : t -> Pf_obs.Registry.t

(** {1 Timing breakdown (Figure 10)}

    When created with [collect_stats:true] the engine accumulates
    monotonic wall-clock time per stage. [stats] is a compatibility view
    over the metric registry: each call builds a fresh record from the
    current counter and span values. *)

type stats = {
  mutable predicate_ns : float;  (** predicate matching stage *)
  mutable expr_ns : float;  (** expression matching (occurrence determination) *)
  mutable collect_ns : float;  (** result collection and attribute post-checks *)
  mutable paths : int;
  mutable documents : int;
}

val stats : t -> stats

val reset_stats : t -> unit
(** Reset the engine's metric registry: every counter, histogram and span
    — including ["occurrence_runs"] — is zeroed together. *)
