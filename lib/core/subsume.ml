(* Subsumption index over any FILTER (see the mli for the design). The
   load-bearing distinction throughout: physical sharing requires *equal*
   match sets (canonical-form equality or mutual containment), while
   strict containment only adds a DAG edge — a covered expression's
   matches are a subset of its cover's, so sharing evaluation across a
   strict pair would change the fan-out. *)

open Pf_xpath

(* ------------------------------------------------------------------ *)
(* Candidate probing *)

module Probe = struct
  type 'a entry = { e_key : int; e_len : int; e_sig : int; e_val : 'a }

  type 'a t = {
    by_tag : (string, 'a entry list ref) Hashtbl.t;
    mutable tagless : 'a entry list;
    mutable n : int;
  }

  let create () = { by_tag = Hashtbl.create 64; tagless = []; n = 0 }

  let step_tags (p : Ast.path) =
    List.filter_map
      (fun (s : Ast.step) ->
        match s.Ast.test with Ast.Tag t -> Some t | Ast.Wildcard -> None)
      p.Ast.steps

  let distinct_tags p = List.sort_uniq String.compare (step_tags p)

  (* 61 usable bits: a Bloom-style tag-set signature. A false bit-subset
     positive only costs one covers test; a miss is impossible. *)
  let tag_bit tag = 1 lsl (Hashtbl.hash tag mod 61)
  let signature tags = List.fold_left (fun acc tag -> acc lor tag_bit tag) 0 tags

  (* Each entry lives in every one of its distinct tag buckets (or the
     tagless bucket when it has no tag step). [covers c target] maps every
     tag step of [c] onto an equal tag of [target], so:

     - cover direction ({!iter_candidates}): a cover of [target] carries
       only tags of [target], hence sits in (all of) [target]'s tag
       buckets, or in the tagless bucket — probing those is complete;
     - covered direction ({!iter_covered}): anything [target] covers
       carries {e all} of [target]'s tags, hence sits in any single one of
       [target]'s tag buckets (a tagless target needs the full scan).

     Multi-bucket storage means an entry can be enumerated through several
     buckets; both iterators dedup by key. *)
  let add t (p : Ast.path) ~key v =
    let tags = distinct_tags p in
    let e =
      { e_key = key; e_len = List.length p.Ast.steps; e_sig = signature tags; e_val = v }
    in
    (match tags with
    | [] -> t.tagless <- e :: t.tagless
    | _ ->
      List.iter
        (fun tag ->
          match Hashtbl.find_opt t.by_tag tag with
          | Some b -> b := e :: !b
          | None -> Hashtbl.add t.by_tag tag (ref [ e ]))
        tags);
    t.n <- t.n + 1

  let remove t (p : Ast.path) ~key =
    let removed = ref false in
    let drop l =
      List.filter
        (fun e ->
          if e.e_key = key then begin
            removed := true;
            false
          end
          else true)
        l
    in
    (match distinct_tags p with
    | [] -> t.tagless <- drop t.tagless
    | tags ->
      List.iter
        (fun tag ->
          match Hashtbl.find_opt t.by_tag tag with
          | Some b ->
            b := drop !b;
            if !b = [] then Hashtbl.remove t.by_tag tag
          | None -> ())
        tags);
    if !removed then t.n <- t.n - 1

  let size t = t.n

  let iter_candidates t (target : Ast.path) f =
    let tags = distinct_tags target in
    let tsig = signature tags in
    let tlen = List.length target.Ast.steps in
    let seen = Hashtbl.create 16 in
    (* a cover never has more steps than the expression it covers (the
       homomorphism is injective and order-preserving; the all-wild case
       is a pure length lower bound) *)
    let visit e =
      if e.e_len <= tlen && e.e_sig land tsig = e.e_sig && not (Hashtbl.mem seen e.e_key)
      then begin
        Hashtbl.add seen e.e_key ();
        f e.e_key e.e_val
      end
    in
    List.iter
      (fun tag ->
        match Hashtbl.find_opt t.by_tag tag with
        | Some b -> List.iter visit !b
        | None -> ())
      tags;
    List.iter visit t.tagless

  let iter_covered t (target : Ast.path) f =
    let tags = distinct_tags target in
    let tsig = signature tags in
    let tlen = List.length target.Ast.steps in
    let seen = Hashtbl.create 16 in
    let visit e =
      if e.e_len >= tlen && e.e_sig land tsig = tsig && not (Hashtbl.mem seen e.e_key)
      then begin
        Hashtbl.add seen e.e_key ();
        f e.e_key e.e_val
      end
    in
    match tags with
    | tag :: _ -> (
      (* every covered entry carries [tag]; one bucket is complete *)
      match Hashtbl.find_opt t.by_tag tag with
      | Some b -> List.iter visit !b
      | None -> ())
    | [] ->
      (* an all-wild target covers by length alone: full scan *)
      Hashtbl.iter (fun _ b -> List.iter visit !b) t.by_tag;
      List.iter visit t.tagless
end

(* ------------------------------------------------------------------ *)
(* Stats *)

type stats = {
  shapes : int;
  logical : int;
  dag_edges : int;
  covered_shapes : int;
  dedup_hits : int;
  alias_hits : int;
  covers_probes : int;
  probe_truncations : int;
  retirements : int;
  promotions : int;
}

let default_probe_cap = 64

(* ------------------------------------------------------------------ *)
(* Growable int vector, arrival order *)

(* Each shape's logical sids live in one flat array instead of a cons
   list: a million-subscription index would otherwise pin ~n list cells
   in the major heap interleaved with the wrapped engine's own long-lived
   structures, and that allocation interleaving (measured on the
   subsumption bench) costs the inner engine double-digit percent of
   match throughput in locality alone. Sids are handed out monotonically
   and removals shift in place, so the array is always sorted
   ascending — the fan-out reads it with no comparison sort. *)
module Ivec = struct
  type t = {
    mutable a : int array;
    mutable len : int;
  }

  let create () = { a = [||]; len = 0 }
  let length v = v.len
  let is_empty v = v.len = 0

  let first v =
    if v.len = 0 then invalid_arg "Subsume.Ivec.first";
    v.a.(0)

  let push v x =
    if v.len = Array.length v.a then begin
      let bigger = Array.make (max 4 (2 * v.len)) 0 in
      Array.blit v.a 0 bigger 0 v.len;
      v.a <- bigger
    end;
    v.a.(v.len) <- x;
    v.len <- v.len + 1

  (* remove the (single) occurrence of [x], preserving order *)
  let remove v x =
    let i = ref 0 in
    while !i < v.len && v.a.(!i) <> x do
      incr i
    done;
    if !i < v.len then begin
      Array.blit v.a (!i + 1) v.a !i (v.len - !i - 1);
      v.len <- v.len - 1
    end

  let mem v x =
    let rec go i = i < v.len && (v.a.(i) = x || go (i + 1)) in
    go 0

  let iter f v =
    for i = 0 to v.len - 1 do
      f v.a.(i)
    done

  let to_list_asc v =
    let acc = ref [] in
    for i = v.len - 1 downto 0 do
      acc := v.a.(i) :: !acc
    done;
    !acc

  let sorted_ascending v =
    let rec go i = i + 1 >= v.len || (v.a.(i) < v.a.(i + 1) && go (i + 1)) in
    go 0
end

(* ------------------------------------------------------------------ *)
(* The functor *)

module Make (F : Pf_intf.FILTER) = struct
  type shape = {
    sh_uid : int;
    sh_canonical : Ast.path;
    sh_single : bool;
    sh_physical : int;  (* sid inside F *)
    mutable sh_keys : string list;  (* canonical key, plus alias keys *)
    sh_logicals : Ivec.t;  (* live logical sids, ascending *)
    mutable sh_parents : shape list;  (* shapes strictly covering this one *)
    mutable sh_children : shape list;  (* shapes this one strictly covers *)
  }

  type t = {
    inner : F.t;
    probe_cap : int;
    by_key : (string, shape list ref) Hashtbl.t;
    by_physical : (int, shape) Hashtbl.t;
    probe : shape Probe.t;
    mutable slots : shape option array;  (* logical sid -> live shape *)
    mutable next_sid : int;
    mutable fan_scratch : Bytes.t;  (* sid bitmap for dense fan-out *)
    mutable live : int;
    mutable uid : int;
    mutable dag_edges : int;
    registry : Pf_obs.Registry.t;
    g_shapes : Pf_obs.Gauge.t;
    g_logical : Pf_obs.Gauge.t;
    g_edges : Pf_obs.Gauge.t;
    c_dedup : Pf_obs.Counter.t;
    c_alias : Pf_obs.Counter.t;
    c_probes : Pf_obs.Counter.t;
    c_trunc : Pf_obs.Counter.t;
    c_retire : Pf_obs.Counter.t;
    c_promote : Pf_obs.Counter.t;
  }

  let create_with ?(probe_cap = default_probe_cap) () =
    let registry = Pf_obs.Registry.create "subsume" in
    {
      inner = F.create ();
      probe_cap;
      by_key = Hashtbl.create 1024;
      by_physical = Hashtbl.create 1024;
      probe = Probe.create ();
      slots = [||];
      next_sid = 0;
      fan_scratch = Bytes.create 0;
      live = 0;
      uid = 0;
      dag_edges = 0;
      registry;
      g_shapes =
        Pf_obs.Gauge.make ~registry ~merge:Sum "shapes"
          ~help:"live physical shapes (engine expressions)";
      g_logical =
        Pf_obs.Gauge.make ~registry ~merge:Sum "logical_subscriptions"
          ~help:"live logical subscriptions";
      g_edges =
        Pf_obs.Gauge.make ~registry ~merge:Sum "dag_edges"
          ~help:"strict-containment edges between live shapes";
      c_dedup =
        Pf_obs.Counter.make ~registry "dedup_hits"
          ~help:"adds hash-consed onto an existing canonical form";
      c_alias =
        Pf_obs.Counter.make ~registry "alias_hits"
          ~help:"adds merged by mutual containment";
      c_probes =
        Pf_obs.Counter.make ~registry "covers_probes"
          ~help:"containment tests made during insertion";
      c_trunc =
        Pf_obs.Counter.make ~registry "probe_truncations"
          ~help:"insertions whose candidate probe hit the cap";
      c_retire =
        Pf_obs.Counter.make ~registry "physical_retirements"
          ~help:"physical expressions removed with their last logical";
      c_promote =
        Pf_obs.Counter.make ~registry "representative_promotions"
          ~help:"oldest logical of a shape removed with survivors remaining";
    }

  let create () = create_with ()

  let sync_gauges t =
    Pf_obs.Gauge.set t.g_shapes (float_of_int (Hashtbl.length t.by_physical));
    Pf_obs.Gauge.set t.g_logical (float_of_int t.live);
    Pf_obs.Gauge.set t.g_edges (float_of_int t.dag_edges)

  let fresh_sid t shape =
    let sid = t.next_sid in
    if sid >= Array.length t.slots then begin
      let bigger = Array.make (max 16 (2 * Array.length t.slots)) None in
      Array.blit t.slots 0 bigger 0 t.next_sid;
      t.slots <- bigger
    end;
    t.slots.(sid) <- Some shape;
    t.next_sid <- sid + 1;
    Ivec.push shape.sh_logicals sid;
    t.live <- t.live + 1;
    sync_gauges t;
    sid

  let bucket_add t key shape =
    match Hashtbl.find_opt t.by_key key with
    | Some b -> b := shape :: !b
    | None -> Hashtbl.add t.by_key key (ref [ shape ])

  let covers_counted t a b =
    Pf_obs.Counter.incr t.c_probes;
    Containment.covers a b

  let add t path =
    let canonical = Canonical.normalize path in
    let key = Parser.to_string canonical in
    let single = Ast.is_single_path canonical in
    (* 1. Hash-cons on the canonical print key. A bucket member with a
       different structure (print-key collision) that mutually contains
       the new expression still has an equal match set: alias it. *)
    let existing =
      match Hashtbl.find_opt t.by_key key with
      | None -> None
      | Some b ->
        List.find_map
          (fun s ->
            if Ast.equal s.sh_canonical canonical then Some (s, `Dedup)
            else if
              single && s.sh_single
              && covers_counted t s.sh_canonical canonical
              && covers_counted t canonical s.sh_canonical
            then Some (s, `Alias)
            else None)
          !b
    in
    match existing with
    | Some (shape, `Dedup) ->
      Pf_obs.Counter.incr t.c_dedup;
      fresh_sid t shape
    | Some (shape, `Alias) ->
      Pf_obs.Counter.incr t.c_alias;
      fresh_sid t shape
    | None -> (
      (* 2. Read-only candidate probes, both directions — shapes that may
         cover the new expression and shapes it may cover — so the DAG is
         exact (up to the cap) regardless of insertion order. Nothing is
         mutated until F.add below succeeds, so an Unsupported expression
         leaves the index exactly as it was. Mutual containment makes the
         new expression an alias of an existing shape; one-directional
         containment becomes a DAG edge wired in at step 3. *)
      let alias = ref None and parents = ref [] and children = ref [] in
      if single then begin
        let budget = ref t.probe_cap in
        let seen = Hashtbl.create 16 in
        let consider uid c =
          if not (Hashtbl.mem seen uid) then begin
            Hashtbl.add seen uid ();
            if !budget <= 0 then begin
              Pf_obs.Counter.incr t.c_trunc;
              raise_notrace Exit
            end;
            decr budget;
            let fwd = covers_counted t c.sh_canonical canonical in
            let bwd = covers_counted t canonical c.sh_canonical in
            if fwd && bwd then begin
              alias := Some c;
              raise_notrace Exit
            end
            else if fwd then parents := c :: !parents
            else if bwd then children := c :: !children
          end
        in
        try
          Probe.iter_candidates t.probe canonical consider;
          Probe.iter_covered t.probe canonical consider
        with Exit -> ()
      end;
      match !alias with
      | Some shape ->
        Pf_obs.Counter.incr t.c_alias;
        shape.sh_keys <- key :: shape.sh_keys;
        bucket_add t key shape;
        fresh_sid t shape
      | None ->
        (* 3. A genuinely new shape: register the physical expression
           (first mutation point) and wire it into the table and DAG.
           Edges only ever connect a new shape to shapes that existed
           before it, after both directions tested non-mutual, so the
           DAG is acyclic by construction (covers is transitive). *)
        let physical = F.add t.inner canonical in
        let shape =
          {
            sh_uid = t.uid;
            sh_canonical = canonical;
            sh_single = single;
            sh_physical = physical;
            sh_keys = [ key ];
            sh_logicals = Ivec.create ();
            sh_parents = !parents;
            sh_children = !children;
          }
        in
        t.uid <- t.uid + 1;
        List.iter (fun p -> p.sh_children <- shape :: p.sh_children) !parents;
        List.iter (fun c -> c.sh_parents <- shape :: c.sh_parents) !children;
        t.dag_edges <- t.dag_edges + List.length !parents + List.length !children;
        bucket_add t key shape;
        Hashtbl.replace t.by_physical physical shape;
        if single then Probe.add t.probe canonical ~key:shape.sh_uid shape;
        fresh_sid t shape)

  let add_string t s = add t (Parser.parse s)

  let retire t shape =
    ignore (F.remove t.inner shape.sh_physical : bool);
    Hashtbl.remove t.by_physical shape.sh_physical;
    List.iter
      (fun key ->
        match Hashtbl.find_opt t.by_key key with
        | Some b ->
          b := List.filter (fun s -> s != shape) !b;
          if !b = [] then Hashtbl.remove t.by_key key
        | None -> ())
      shape.sh_keys;
    if shape.sh_single then Probe.remove t.probe shape.sh_canonical ~key:shape.sh_uid;
    List.iter
      (fun p -> p.sh_children <- List.filter (fun c -> c != shape) p.sh_children)
      shape.sh_parents;
    List.iter
      (fun c -> c.sh_parents <- List.filter (fun p -> p != shape) c.sh_parents)
      shape.sh_children;
    t.dag_edges <- t.dag_edges - List.length shape.sh_parents - List.length shape.sh_children;
    shape.sh_parents <- [];
    shape.sh_children <- [];
    Pf_obs.Counter.incr t.c_retire

  let remove t sid =
    if sid < 0 || sid >= t.next_sid then false
    else
      match t.slots.(sid) with
      | None -> false
      | Some shape ->
        t.slots.(sid) <- None;
        (* ascending order: the representative is the first element *)
        let was_representative = Ivec.first shape.sh_logicals = sid in
        Ivec.remove shape.sh_logicals sid;
        t.live <- t.live - 1;
        if Ivec.is_empty shape.sh_logicals then retire t shape
        else if was_representative then Pf_obs.Counter.incr t.c_promote;
        sync_gauges t;
        true

  (* Physical match sids -> sorted logical sids. Shapes partition the
     logical sids, so concatenation has no duplicates; a single shape's
     sid vector is already ascending. On the redundancy-skewed workloads
     this index targets, the fan-out is an order of magnitude larger than
     the physical match set and dense in the sid space, so the
     multi-shape path marks a sid bitmap and scans it — sorted output
     with no comparison sort. When the fan-out is sparse relative to
     [next_sid] (heavy churn, selective documents) the O(next_sid) scan
     would dominate, so it falls back to sorting. *)
  let fan_out t phys =
    match phys with
    | [] -> []
    | [ p ] -> (
      match Hashtbl.find_opt t.by_physical p with
      | Some s -> Ivec.to_list_asc s.sh_logicals
      | None -> [])
    | _ ->
      let shapes =
        List.filter_map (fun p -> Hashtbl.find_opt t.by_physical p) phys
      in
      let total =
        List.fold_left (fun n s -> n + Ivec.length s.sh_logicals) 0 shapes
      in
      if total = 0 then []
      else if total >= t.next_sid / 256 then begin
        let nbytes = (t.next_sid + 7) / 8 in
        if Bytes.length t.fan_scratch < nbytes then t.fan_scratch <- Bytes.create nbytes;
        let b = t.fan_scratch in
        Bytes.fill b 0 nbytes '\000';
        List.iter
          (fun s ->
            Ivec.iter
              (fun sid ->
                let i = sid lsr 3 in
                Bytes.unsafe_set b i
                  (Char.unsafe_chr
                     (Char.code (Bytes.unsafe_get b i) lor (1 lsl (sid land 7)))))
              s.sh_logicals)
          shapes;
        (* byte-at-a-time scan skipping zero bytes: the pass over the sid
           space costs O(next_sid / 8) loads plus work proportional to the
           actual matches, so the bitmap wins even for thin fan-outs *)
        let acc = ref [] in
        for i = nbytes - 1 downto 0 do
          let byte = Char.code (Bytes.unsafe_get b i) in
          if byte <> 0 then
            for bit = 7 downto 0 do
              if byte land (1 lsl bit) <> 0 then acc := ((i lsl 3) lor bit) :: !acc
            done
        done;
        !acc
      end
      else
        List.sort Int.compare
          (List.fold_left
             (fun acc s ->
               let acc = ref acc in
               Ivec.iter (fun sid -> acc := sid :: !acc) s.sh_logicals;
               !acc)
             [] shapes)

  let match_document t doc = fan_out t (F.match_document t.inner doc)
  let match_string t src = fan_out t (F.match_string t.inner src)
  let match_batch t docs = List.map (fan_out t) (F.match_batch t.inner docs)

  let match_string_batch t srcs =
    List.map (fan_out t) (F.match_string_batch t.inner srcs)

  let metrics t = F.metrics t.inner
  let subsume_metrics t = t.registry

  let stats t =
    let covered =
      Hashtbl.fold
        (fun _ s acc -> if s.sh_parents <> [] then acc + 1 else acc)
        t.by_physical 0
    in
    {
      shapes = Hashtbl.length t.by_physical;
      logical = t.live;
      dag_edges = t.dag_edges;
      covered_shapes = covered;
      dedup_hits = Pf_obs.Counter.get t.c_dedup;
      alias_hits = Pf_obs.Counter.get t.c_alias;
      covers_probes = Pf_obs.Counter.get t.c_probes;
      probe_truncations = Pf_obs.Counter.get t.c_trunc;
      retirements = Pf_obs.Counter.get t.c_retire;
      promotions = Pf_obs.Counter.get t.c_promote;
    }

  let validate t =
    let fail fmt = Format.kasprintf failwith fmt in
    for sid = 0 to t.next_sid - 1 do
      match t.slots.(sid) with
      | None -> ()
      | Some s -> (
        if not (Ivec.mem s.sh_logicals sid) then
          fail "sid %d missing from its shape's logicals" sid;
        match Hashtbl.find_opt t.by_physical s.sh_physical with
        | Some s' when s' == s -> ()
        | _ -> fail "sid %d points at a retired shape" sid)
    done;
    Hashtbl.iter
      (fun phys s ->
        if Ivec.is_empty s.sh_logicals then fail "shape %d has no logicals" phys;
        Ivec.iter
          (fun sid ->
            if sid < 0 || sid >= t.next_sid then
              fail "shape %d holds out-of-range sid %d" phys sid;
            match t.slots.(sid) with
            | Some s' when s' == s -> ()
            | _ -> fail "shape %d holds dead sid %d" phys sid)
          s.sh_logicals;
        if not (Ivec.sorted_ascending s.sh_logicals) then
          fail "shape %d logicals not ascending" phys;
        List.iter
          (fun p ->
            if not (List.memq s p.sh_children) then
              fail "asymmetric parent edge at shape %d" phys;
            if not (Hashtbl.mem t.by_physical p.sh_physical) then
              fail "shape %d has a retired parent" phys)
          s.sh_parents;
        List.iter
          (fun c ->
            if not (List.memq s c.sh_parents) then
              fail "asymmetric child edge at shape %d" phys)
          s.sh_children;
        List.iter
          (fun key ->
            match Hashtbl.find_opt t.by_key key with
            | Some b when List.memq s !b -> ()
            | _ -> fail "shape %d missing from bucket %s" phys key)
          s.sh_keys)
      t.by_physical;
    let parent_edges =
      Hashtbl.fold (fun _ s acc -> acc + List.length s.sh_parents) t.by_physical 0
    in
    if parent_edges <> t.dag_edges then
      fail "edge count drift: %d recorded, %d present" t.dag_edges parent_edges;
    (* acyclicity: DFS over child edges with an active/done coloring *)
    let state = Hashtbl.create 64 in
    let rec dfs s =
      match Hashtbl.find_opt state s.sh_uid with
      | Some `Done -> ()
      | Some `Active -> fail "containment DAG has a cycle through shape uid %d" s.sh_uid
      | None ->
        Hashtbl.add state s.sh_uid `Active;
        List.iter dfs s.sh_children;
        Hashtbl.replace state s.sh_uid `Done
    in
    Hashtbl.iter (fun _ s -> dfs s) t.by_physical
end

(* ------------------------------------------------------------------ *)
(* First-class wrapper *)

let filter (f : Pf_intf.filter) : Pf_intf.filter =
  let module F = (val f : Pf_intf.FILTER) in
  let module M = Make (F) in
  (module M : Pf_intf.FILTER)

(* ------------------------------------------------------------------ *)
(* Workload diagnostics *)

type redundancy = {
  red_exprs : int;
  red_shapes : int;
  red_duplicates : int;
  red_dag_edges : int;
  red_covered_shapes : int;
  red_covers_probes : int;
  red_probe_truncations : int;
}

module Indexed = Make (Pf_intf.Reference)

let redundant_indexed ?probe_cap exprs =
  let t = Indexed.create_with ?probe_cap () in
  List.iter (fun p -> ignore (Indexed.add t p : int)) exprs;
  let s = Indexed.stats t in
  {
    red_exprs = s.logical;
    red_shapes = s.shapes;
    red_duplicates = s.logical - s.shapes;
    red_dag_edges = s.dag_edges;
    red_covered_shapes = s.covered_shapes;
    red_covers_probes = s.covers_probes;
    red_probe_truncations = s.probe_truncations;
  }

let pp_redundancy fmt r =
  Format.fprintf fmt
    "@[<v>expressions      %d@,distinct shapes  %d (%.1f%%)@,duplicates       %d@,\
     dag edges        %d@,covered shapes   %d@,covers probes    %d@,\
     probe truncated  %d@]"
    r.red_exprs r.red_shapes
    (if r.red_exprs = 0 then 100.0
     else 100.0 *. float_of_int r.red_shapes /. float_of_int r.red_exprs)
    r.red_duplicates r.red_dag_edges r.red_covered_shapes r.red_covers_probes
    r.red_probe_truncations
