(** The global tag interner, re-exported from {!Pf_xml.Symbol}.

    The interner lives in [pf_xml] because hashconsing happens at SAX
    parse time, below the core library in the dependency order; engine
    code refers to it as [Pf_core.Symbol]. See {!Pf_xml.Symbol} for the
    domain-safety contract. *)

type t = Pf_xml.Symbol.t

val intern : string -> t
val find : string -> t option
val name : t -> string
val count : unit -> int
val pp : Format.formatter -> t -> unit
