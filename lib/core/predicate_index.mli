(** The predicate index (Section 4.1.2, Figure 1) and the predicate
    matching stage (Section 4.1).

    Distinct predicates are stored once and identified by dense integer
    {e pids}. The match side is a {e cache-flat image} of contiguous int
    arrays, rebuilt lazily once per subscription change: per logical table
    (absolute/relative × =/>=, end-of-path, length) a CSR layout of
    symbol- or symbol-pair-keyed rows over dense value columns over one
    shared flat pid arena. An = probe is a bounds check plus one
    contiguous slice; a >= probe over values [1..stop] collapses to a
    single contiguous arena slice because a row's columns are
    value-ascending; relative predicates dispatch through dense
    row/pair-id arrays instead of per-symbol hashtables; and a packed
    per-pid constraint bitmap keeps the unconstrained common case away
    from the constraint vectors. The inner match loop is sequential array
    walks with no boxing, no hashing and no closures.

    Matching results (the occurrence pairs of Section 4.2) are stored in a
    reusable {!results} cell arena; an epoch counter makes resets free and
    pairs are appended with a cursor bump, so the steady state of {!run}
    allocates nothing and the per-document cost is proportional to the
    number of {e matched} predicates, not the number of stored ones. *)

type pid = int

type metrics = { probes : Pf_obs.Counter.t; hits : Pf_obs.Counter.t }
(** Stage counters: [probes] counts candidate predicate inspections
    (slot-list entries visited by {!run}), [hits] the occurrence pairs
    recorded. *)

val make_metrics : ?registry:Pf_obs.Registry.t -> unit -> metrics
(** Counters named ["predicate_probes"] / ["predicate_hits"], registered
    in [registry] when given. *)

type t

val create : ?metrics:metrics -> unit -> t
(** [metrics] defaults to fresh unregistered counters, so a standalone
    index still counts but exports nothing. *)

val intern : t -> Predicate.t -> pid
(** [intern idx p] returns the pid of [p], allocating one if [p] was not
    yet stored. Structural identity includes attribute constraints. Tag
    names are interned into the global {!Symbol} table here, at
    expression-compile time. *)

val find : t -> Predicate.t -> pid option
(** Lookup without inserting. *)

val predicate : t -> pid -> Predicate.t

val size : t -> int
(** Number of distinct predicates stored (the paper's Figure 10 reports
    this count). *)

(** {1 Predicate matching} *)

type results

val create_results : unit -> results

val run : t -> results -> Publication.t -> unit
(** Evaluate every stored predicate against the publication per the rules
    of Section 4.1.1, recording occurrence pairs. Previous contents of
    [results] are discarded (O(1)). Predicates with attribute constraints
    only match tuples whose attributes satisfy them (inline evaluation).
    The first run after a subscription change rebuilds the flat match
    image; steady-state runs allocate nothing. *)

val run_batch : t -> results array -> Publication.t array -> unit
(** [run_batch idx ress pubs] matches [pubs.(i)] into [ress.(i)] for every
    [i], exactly as [Array.iter2 (run idx) ress pubs] would — same match
    sets, same pair order, same probe/hit counter totals — but checks the
    flat image's freshness once for the whole batch and keeps it hot in
    cache across the publications instead of alternating with downstream
    per-document work. The arrays must have equal length
    ([Invalid_argument] otherwise); steady state allocates nothing. *)

val get : results -> pid -> (int * int) list
(** Matching occurrence pairs for [pid] in the last {!run}; [[]] if the
    predicate was not matched. One-variable predicates duplicate the
    occurrence ([(o, o)]); length predicates report [(0, 0)]. Pairs are
    listed newest-first (reverse recording order). Allocates — meant for
    tests and explanation output, not the match loop. *)

val get_packed : results -> pid -> int list
(** Like {!get} but with each pair packed as [(o1 lsl 16) lor o2] (see
    {!packed_first}/{!packed_second}). Allocates the list. *)

val iter_pairs : results -> pid -> (int -> unit) -> unit
(** [iter_pairs res pid f] calls [f] on each packed pair recorded for
    [pid], newest first, without allocating. The hot path of the
    expression organizations uses this (or the raw {!head}/{!cells}
    traversal) to fill its occurrence arenas. *)

val head : results -> pid -> int
(** Index of the newest cell recorded for [pid], or [-1] if the predicate
    was not matched. Cell [c] holds its packed pair at [(cells res).(2*c)]
    and the index of the next (older) cell at [(cells res).(2*c+1)]
    ([-1] terminates). *)

val cells : results -> int array
(** The backing cell arena for {!head} traversals. Only indices reached
    from a {!head} of the current epoch are meaningful. *)

val packed_first : int -> int
val packed_second : int -> int
val pack : int -> int -> int

val is_matched : results -> pid -> bool

val matched_count : results -> int
(** Number of predicates matched by the last {!run}. *)
