(** The predicate index (Section 4.1.2, Figure 1) and the predicate
    matching stage (Section 4.1).

    Distinct predicates are stored once and identified by dense integer
    {e pids}. The index is staged: predicates are first dispatched on their
    type, then hashed on tag name(s), then stored in per-operator arrays
    indexed by the predicate value — insertion and exact lookup are
    constant-time, and matching a publication touches exactly the array
    slots its tuples can satisfy.

    Matching results (the occurrence pairs of Section 4.2) are stored in a
    reusable {!results} buffer; an epoch counter makes resets free so the
    per-document cost is proportional to the number of {e matched}
    predicates, not the number of stored ones. *)

type pid = int

type metrics = { probes : Pf_obs.Counter.t; hits : Pf_obs.Counter.t }
(** Stage counters: [probes] counts candidate predicate inspections
    (slot-list entries visited by {!run}), [hits] the occurrence pairs
    recorded. *)

val make_metrics : ?registry:Pf_obs.Registry.t -> unit -> metrics
(** Counters named ["predicate_probes"] / ["predicate_hits"], registered
    in [registry] when given. *)

type t

val create : ?metrics:metrics -> unit -> t
(** [metrics] defaults to fresh unregistered counters, so a standalone
    index still counts but exports nothing. *)

val intern : t -> Predicate.t -> pid
(** [intern idx p] returns the pid of [p], allocating one if [p] was not
    yet stored. Structural identity includes attribute constraints. *)

val find : t -> Predicate.t -> pid option
(** Lookup without inserting. *)

val predicate : t -> pid -> Predicate.t

val size : t -> int
(** Number of distinct predicates stored (the paper's Figure 10 reports
    this count). *)

(** {1 Predicate matching} *)

type results

val create_results : unit -> results

val run : t -> results -> Publication.t -> unit
(** Evaluate every stored predicate against the publication per the rules
    of Section 4.1.1, recording occurrence pairs. Previous contents of
    [results] are discarded (O(1)). Predicates with attribute constraints
    only match tuples whose attributes satisfy them (inline evaluation). *)

val get : results -> pid -> (int * int) list
(** Matching occurrence pairs for [pid] in the last {!run}; [[]] if the
    predicate was not matched. One-variable predicates duplicate the
    occurrence ([(o, o)]); length predicates report [(0, 0)]. *)

val get_packed : results -> pid -> int list
(** Allocation-free variant of {!get}: each pair is packed as
    [(o1 lsl 16) lor o2] (see {!packed_first}/{!packed_second}). The hot
    path of the expression organizations uses this form. *)

val packed_first : int -> int
val packed_second : int -> int
val pack : int -> int -> int

val is_matched : results -> pid -> bool

val matched_count : results -> int
(** Number of predicates matched by the last {!run}. *)
