(** Publications: the tuple encoding of document paths (Section 3.3).

    A document path [e = (t1, ..., tn)] becomes the tuple set
    [(length, n), (t1, 1), ..., (tn, n)], with each tag annotated with its
    per-path {e occurrence number} (the paper's superscripts: how many times
    the tag name has already appeared in this path). Tags are carried as
    interned {!Symbol.t}s, so the predicate matching loop indexes arrays
    instead of hashing strings. Attributes are kept on each tuple for
    attribute-predicate evaluation, and the structure tuple
    [<m1, ..., mn>] of Section 5 is carried along for nested path
    matching. *)

type tuple = {
  mutable tag : Symbol.t;  (** interned tag name *)
  pos : int;  (** 1-based position in the path *)
  mutable occurrence : int;  (** 1-based occurrence number of [tag] in the path *)
  mutable attrs : (string * string) list;
}
(** Fields are mutable {e only} so the streaming {!arena} can refill its
    records in place; {!of_path} and {!of_tags} build fresh tuples that
    are never mutated afterwards and are safe to retain. *)

type t = {
  length : int;
  tuples : tuple array;  (** in position order; [tuples.(i).pos = i + 1] *)
  structure : int array;  (** the structure tuple [<m1, ..., mn>] *)
  mutable pos_index : (int, int) Hashtbl.t option;
      (** packed [(tag, occurrence)] -> [pos], built lazily by
          {!pos_of_occurrence}; [None] until the first lookup *)
}

val of_path : Pf_xml.Path.t -> t

val of_tags : string list -> t
(** Convenience for tests, mirroring the paper's examples
    (e.g. [of_tags ["a";"b";"c";"a";"b";"c"]]). *)

type arena
(** Reusable publication storage for the fully streaming match path: one
    tuple record per depth, shared by one cached publication per path
    length, so a step stack streamed out of {!Pf_xml.Path.stream} becomes
    a publication with zero allocation once the arena is warm. Not
    domain-safe; use one arena per engine. *)

val create_arena : unit -> arena

val of_steps : arena -> Pf_xml.Path.step array -> int -> t
(** [of_steps ar steps n] refills the arena's length-[n] publication from
    [steps.(0 .. n - 1)] (tag symbol, occurrence, attributes, child index)
    and returns it. The returned publication — tuples, structure array and
    lazy position index included — is overwritten by the next call and
    must not be retained; the attribute lists and strings it points at are
    immutable and safely shared. *)

val pos_of_occurrence : t -> tag:Symbol.t -> occurrence:int -> int option
(** Position of the [occurrence]-th occurrence of [tag], if any — the
    inverse annotation used to map occurrence chains back to depths.
    The first call builds a hashed [(tag, occurrence)] -> [pos] index on
    the publication; subsequent lookups are O(1). *)

val attrs_at : t -> pos:int -> (string * string) list

val pp : Format.formatter -> t -> unit
