open Pf_xpath

let src = Pf_obs.Events.src "nested" ~doc:"Nested path filter matching"

module Log = (val Logs.src_log src : Logs.LOG)

type child = { sub : int; at_step : int }

type sub = {
  enc : Encoder.t;
  pids : int array;
  mutable children : child list;
  relevant : int array;  (* step indices whose bound node matters, sorted *)
  relevant_syms : Symbol.t array;
      (* interned tag of each relevant step, computed once at commit *)
  self_slot : int;  (* index into [relevant] of the branch step; -1 for roots *)
  (* per-document state *)
  mutable obs : int array list;  (* node ids per relevant slot *)
  mutable seen : (int array, unit) Hashtbl.t;
  mutable matched_nodes : (int, unit) Hashtbl.t;  (* node ids at self_slot *)
  mutable root_matched : bool;
}

type t = {
  index : Predicate_index.t;
  subs : sub Vec.t;
  mutable roots : (int * int) list;  (* (sid, root sub id) *)
  mutable n_exprs : int;
  (* per-document node identification: node at depth d is (parent node, m_d) *)
  mutable node_tbl : (int * int, int) Hashtbl.t;
  mutable next_node : int;
  arena : Occurrence.arena;  (* candidate-set scratch reused across paths *)
}

let max_chains_per_path = 4096

let dummy_sub =
  {
    enc =
      {
        Encoder.source = Ast.path [ Ast.step (Ast.Tag "x") ];
        preds = [||];
        step_vars = [||];
      };
    pids = [||];
    children = [];
    relevant = [||];
    relevant_syms = [||];
    self_slot = -1;
    obs = [];
    seen = Hashtbl.create 1;
    matched_nodes = Hashtbl.create 1;
    root_matched = false;
  }

let create index =
  {
    index;
    subs = Vec.create ~dummy:dummy_sub ();
    roots = [];
    n_exprs = 0;
    node_tbl = Hashtbl.create 64;
    next_node = 0;
    arena = Occurrence.create_arena ();
  }

let is_empty t = t.roots = []
let expression_count t = t.n_exprs
let sub_expression_count t = Vec.length t.subs

let strip_nested (s : Ast.step) =
  {
    s with
    Ast.filters =
      List.filter (function Ast.Attr _ -> true | Ast.Nested _ -> false) s.Ast.filters;
  }

(* Decomposition runs in two phases so a rejected expression leaves the
   filter — and the shared predicate index — untouched: [plan_path] walks
   the whole sub-expression tree and performs every check that can raise
   [Encoder.Unsupported]; [commit] then interns and registers the planned
   subs and cannot fail. *)
type plan = {
  pl_enc : Encoder.t;
  pl_relevant : int array;  (* step indices whose bound node matters, sorted *)
  pl_self_slot : int;  (* index into [pl_relevant] of the branch step; -1 for roots *)
  pl_children : (plan * int) list;  (* child plan, branch step *)
}

(* Plan the decomposition of [p] into a sub-expression tree. [branch_step]
   is the 0-based step index at which [p] forks from its parent (-1 for
   the root). *)
let rec plan_path (p : Ast.path) ~branch_step =
  let steps = Array.of_list p.Ast.steps in
  let main = { p with Ast.steps = List.map strip_nested p.Ast.steps } in
  let enc = Encoder.encode main in
  (* collect (step index, nested filter) pairs *)
  let forks = ref [] in
  Array.iteri
    (fun i (s : Ast.step) ->
      List.iter
        (function
          | Ast.Attr _ -> ()
          | Ast.Nested q ->
            (match s.Ast.test with
            | Ast.Tag _ -> ()
            | Ast.Wildcard ->
              raise (Encoder.Unsupported "nested path filter on a wildcard step"));
            forks := (i, q) :: !forks)
        s.Ast.filters)
    steps;
  let forks = List.rev !forks in
  let fork_steps = List.map fst forks in
  let relevant =
    List.sort_uniq compare
      (if branch_step >= 0 then branch_step :: fork_steps else fork_steps)
  in
  (* every relevant step must be locatable from an occurrence chain *)
  List.iter
    (fun k ->
      match enc.Encoder.step_vars.(k) with
      | Some _ -> ()
      | None -> raise (Encoder.Unsupported "nested path filter on a wildcard step"))
    relevant;
  let relevant = Array.of_list relevant in
  let slot_of k =
    let rec go i = if relevant.(i) = k then i else go (i + 1) in
    go 0
  in
  let self_slot = if branch_step >= 0 then slot_of branch_step else -1 in
  let children =
    List.map
      (fun (i, (q : Ast.path)) ->
        let prefix =
          List.filteri (fun j _ -> j <= i) (Array.to_list steps) |> List.map strip_nested
        in
        let ext = { Ast.absolute = p.Ast.absolute; steps = prefix @ q.Ast.steps } in
        plan_path ext ~branch_step:i, i)
      forks
  in
  { pl_enc = enc; pl_relevant = relevant; pl_self_slot = self_slot; pl_children = children }

(* Parents are pushed before their children, so descending sub ids remain
   a bottom-up order for [finish_document]. *)
let rec commit t pl =
  let pids = Array.map (Predicate_index.intern t.index) pl.pl_enc.Encoder.preds in
  let steps = Array.of_list pl.pl_enc.Encoder.source.Ast.steps in
  let relevant_syms =
    Array.map
      (fun k ->
        match steps.(k).Ast.test with
        | Ast.Tag tag -> Symbol.intern tag
        | Ast.Wildcard -> assert false (* rejected by plan_path *))
      pl.pl_relevant
  in
  let s =
    {
      enc = pl.pl_enc;
      pids;
      children = [];
      relevant = pl.pl_relevant;
      relevant_syms;
      self_slot = pl.pl_self_slot;
      obs = [];
      seen = Hashtbl.create 8;
      matched_nodes = Hashtbl.create 8;
      root_matched = false;
    }
  in
  let id = Vec.push t.subs s in
  s.children <-
    List.map (fun (cp, at_step) -> { sub = commit t cp; at_step }) pl.pl_children;
  id

let add t ~sid (p : Ast.path) =
  if Ast.is_single_path p then
    invalid_arg "Nested.add: single-path expression (use the main pipeline)";
  let plan = plan_path p ~branch_step:(-1) in
  let root = commit t plan in
  t.roots <- (sid, root) :: t.roots;
  t.n_exprs <- t.n_exprs + 1

let remove t ~sid =
  if List.mem_assoc sid t.roots then begin
    t.roots <- List.filter (fun (s, _) -> s <> sid) t.roots;
    t.n_exprs <- t.n_exprs - 1;
    true
  end
  else false

let begin_document t =
  Vec.iter
    (fun s ->
      s.obs <- [];
      Hashtbl.reset s.seen;
      Hashtbl.reset s.matched_nodes;
      s.root_matched <- false)
    t.subs;
  Hashtbl.reset t.node_tbl;
  t.next_node <- 0

(* Node ids along one path: node at depth d (1-based) is identified by its
   parent's id and its child index, so any two paths through the same
   document node compute the same id. *)
let node_ids t (pub : Publication.t) =
  let n = pub.Publication.length in
  let ids = Array.make n 0 in
  let parent = ref (-1) in
  for d = 0 to n - 1 do
    let key = !parent, pub.Publication.structure.(d) in
    let id =
      match Hashtbl.find_opt t.node_tbl key with
      | Some id -> id
      | None ->
        let id = t.next_node in
        t.next_node <- id + 1;
        Hashtbl.add t.node_tbl key id;
        id
    in
    ids.(d) <- id;
    parent := id
  done;
  ids

let observe_path t res (pub : Publication.t) =
  if t.roots <> [] then begin
    let ids = lazy (node_ids t pub) in
    Vec.iter
      (fun s ->
        let n = Array.length s.pids in
        let rec all_matched i =
          i >= n || (Predicate_index.is_matched res s.pids.(i) && all_matched (i + 1))
        in
        if all_matched 0 then begin
          let a = t.arena in
          Occurrence.clear a;
          let cells = Predicate_index.cells res in
          Array.iteri
            (fun i pid ->
              Occurrence.start_row a i;
              Occurrence.push_chain a cells (Predicate_index.head res pid))
            s.pids;
          let ids = Lazy.force ids in
          let count = ref 0 in
          let record chain (_ : int) =
            incr count;
            if !count = max_chains_per_path then
              Log.warn (fun m ->
                  m
                    "occurrence chain enumeration capped at %d for %a on a path; \
                     nested matching may under-report on this document"
                    max_chains_per_path Ast.pp s.enc.Encoder.source);
            let nodes =
              Array.mapi
                (fun slot k ->
                  let pred_idx, side =
                    match s.enc.Encoder.step_vars.(k) with
                    | Some v -> v
                    | None -> assert false
                  in
                  let p = chain.(pred_idx) in
                  let occ =
                    match side with
                    | Encoder.First -> Predicate_index.packed_first p
                    | Encoder.Second -> Predicate_index.packed_second p
                  in
                  match
                    Publication.pos_of_occurrence pub ~tag:s.relevant_syms.(slot)
                      ~occurrence:occ
                  with
                  | Some pos -> ids.(pos - 1)
                  | None -> assert false)
                s.relevant
            in
            if not (Hashtbl.mem s.seen nodes) then begin
              Hashtbl.add s.seen nodes ();
              s.obs <- nodes :: s.obs
            end;
            !count >= max_chains_per_path (* true stops the enumeration *)
          in
          if Array.length s.relevant = 0 then begin
            (* no branch bookkeeping needed: one successful chain suffices *)
            if Occurrence.matches_packed a then s.obs <- [||] :: s.obs
          end
          else ignore (Occurrence.iter_chains_packed a record)
        end)
      t.subs
  end

let finish_document t ~on_match =
  (* children were created after their parents, so descending ids is a
     bottom-up order *)
  for id = Vec.length t.subs - 1 downto 0 do
    let s = Vec.get t.subs id in
    let child_ok nodes { sub; at_step } =
      let c = Vec.get t.subs sub in
      let slot =
        let rec go i = if s.relevant.(i) = at_step then i else go (i + 1) in
        go 0
      in
      Hashtbl.mem c.matched_nodes nodes.(slot)
    in
    List.iter
      (fun nodes ->
        if List.for_all (child_ok nodes) s.children then begin
          if s.self_slot >= 0 then Hashtbl.replace s.matched_nodes nodes.(s.self_slot) ()
          else s.root_matched <- true
        end)
      s.obs
  done;
  List.iter (fun (sid, root) -> if (Vec.get t.subs root).root_matched then on_match sid) t.roots
