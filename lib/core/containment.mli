(** Covering (containment) analysis between XPath expressions.

    Section 4.2.2 defines: [s1] {e covers} [s2] iff every publication
    matching [s2] also matches [s1] — then a match of [s2] implies a match
    of [s1] for free. The paper exploits the prefix special case (through
    the expression trie) and "postpones suffix and containment covering to
    future work"; this module implements that future work for single-path
    expressions over the [/], [//], [*] fragment (with attribute filters).

    The test is the classic {e homomorphism} check: [s1] covers [s2] if
    [s1]'s steps can be mapped, order-preserving and axis-respecting, onto
    [s2]'s steps, with every name test of [s1] landing on an equal name
    test of [s2] and every attribute filter of [s1] implied by filters of
    [s2] at the target step. For the [*]-free fragment the homomorphism
    test is exact; with wildcards and descendants it is {e sound but
    incomplete} (Miklau & Suciu showed exact containment for the child/descendant/wildcard fragment is
    coNP-complete), so [covers] may answer [false] for some true covering
    pairs — safe for every optimization built on it. The property test
    suite checks soundness against randomized documents.

    Beyond the matching-time optimization, covering analysis is useful for
    workload diagnostics: {!redundant} finds expressions subsumed by
    others, which an operator can drop without changing any match set
    semantics (the subsumed expression matches {e at least} whenever the
    subsuming one does... note the direction: dropping [s1] is safe only
    if a reported match of [s2] can stand in for it, i.e. when match
    results are unioned per user, as in the dissemination scenario). *)

val covers : Pf_xpath.Ast.path -> Pf_xpath.Ast.path -> bool
(** [covers s1 s2]: sound test that every document path matching [s2]
    matches [s1]. Both must be single paths ([Invalid_argument]
    otherwise). Reflexive; transitive. *)

val implied_filter :
  Pf_xpath.Ast.attr_filter -> Pf_xpath.Ast.attr_filter -> bool
(** [implied_filter f g]: does filter [g] (on the same step) imply filter
    [f]? E.g. [@x >= 5] implies [@x >= 3]; [@x = 4] implies [@x < 10].
    Sound and complete for integer comparisons on a single attribute;
    filters on different attributes never imply each other. *)

val redundant : Pf_xpath.Ast.path list -> (int * int) list
(** [redundant exprs] lists pairs [(i, j)], [i <> j], such that
    [covers (nth i) (nth j)] holds: every match of expression [j] is also
    a match of expression [i] (restricted to single-path expressions;
    others are skipped). Quadratic; intended for offline analysis of
    {e small} workloads only — at dissemination scale (100k–1M
    expressions) use {!Subsume.redundant_indexed}, which canonicalizes
    into a shape table and probes shape buckets instead of testing all
    pairs. *)
