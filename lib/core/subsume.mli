(** The subsumption index: O(distinct semantic shapes) registration over
    any {!Pf_intf.FILTER}.

    The paper's Section 4.2.2 exploits {e syntactic} prefix covering
    through the expression trie and postpones containment covering to
    future work. This module is the registration-side half of that future
    work: logical subscriptions are canonicalized
    ({!Pf_xpath.Canonical.normalize}) and hash-consed into a {e shape
    table}, so semantically equal expressions — spelling variants,
    filter-order variants, gap-form variants, and mutually containing
    pairs discovered by {!Containment.covers} probes — share one
    {e physical} expression in the wrapped engine. Matching runs over
    physical expressions only; a fan-out layer translates each physical
    match back to the sorted logical sid set, byte-identical to an
    unsubsumed engine.

    Strict (one-directional) containment does not merge physical
    expressions — a contained expression's matches are a subset, not an
    equal set, of its cover's — but every strict pair between live shapes
    is recorded as a subsumption DAG edge (exact, up to the probe cap:
    insertion probes both directions, so edge discovery does not depend
    on insertion order). The DAG drives {!redundant_indexed}, the
    broker's covering-suppression probe ({!Probe}), and the observability
    counters.

    Insertion probes candidate shapes from per-tag buckets (a cover's tag
    steps must all appear in the covered expression, so probing the
    target's tag buckets plus the tagless bucket covers one direction and
    a single tag bucket the other), prefiltered by step count and a
    tag-set signature, and capped per insertion — so registering n
    subscriptions makes O(n) covers probes, not O(n²). A truncated probe
    only loses sharing and DAG edges, never correctness.

    All metrics are exported in a registry with scope ["subsume"]:
    gauges [shapes], [logical_subscriptions], [dag_edges]; counters
    [dedup_hits], [alias_hits], [covers_probes], [probe_truncations],
    [physical_retirements], [representative_promotions]. *)

(** {1 Shape-bucket candidate probing} *)

(** A candidate index for covering probes: entries are bucketed by every
    distinct tag step they carry (tagless entries — all-wild or
    wildcard-only expressions — in a separate bucket), each carrying a
    step count and a tag-set signature. [covers c target] requires every
    tag step of [c] to land on an equal tag of [target], which yields a
    complete enumeration in both directions: possible covers of a target
    sit in the target's tag buckets or the tagless bucket
    ({!iter_candidates}), and everything a target covers carries all of
    the target's tags, so any single tag bucket of the target holds them
    all ({!iter_covered}). The broker replaces its per-subscribe linear
    scan with this probe. *)
module Probe : sig
  type 'a t

  val create : unit -> 'a t

  val add : 'a t -> Pf_xpath.Ast.path -> key:int -> 'a -> unit
  (** Index a value under an expression. [key] identifies the entry for
      {!remove}. *)

  val remove : 'a t -> Pf_xpath.Ast.path -> key:int -> unit
  (** Remove the entry added under the same expression and [key]
      (no-op if absent). *)

  val size : 'a t -> int

  val iter_candidates : 'a t -> Pf_xpath.Ast.path -> (int -> 'a -> unit) -> unit
  (** [iter_candidates t target f] calls [f key value] on every entry
      whose expression could cover [target] (complete: every actual cover
      is enumerated; the caller still tests {!Containment.covers}).
      Entries whose step count exceeds the target's or whose tag
      signature is not a subset of the target's are skipped without a
      covers test. *)

  val iter_covered : 'a t -> Pf_xpath.Ast.path -> (int -> 'a -> unit) -> unit
  (** [iter_covered t target f] — the other direction: every entry whose
      expression [target] could cover (complete; the caller still tests
      {!Containment.covers}). Entries with fewer steps than the target or
      whose tag signature is not a superset of the target's are skipped
      without a covers test. An all-wild target scans every bucket. *)
end

(** {1 The subsumed filter} *)

type stats = {
  shapes : int;  (** live physical shapes (= expressions in the engine) *)
  logical : int;  (** live logical subscriptions *)
  dag_edges : int;  (** strict-containment edges between live shapes *)
  covered_shapes : int;  (** shapes with at least one covering shape *)
  dedup_hits : int;  (** adds hash-consed onto an existing shape by canonical form *)
  alias_hits : int;  (** adds merged by mutual containment (equal match sets) *)
  covers_probes : int;  (** {!Containment.covers} calls made by insertions *)
  probe_truncations : int;  (** insertions whose candidate probe hit the cap *)
  retirements : int;  (** physical expressions removed when their last logical left *)
  promotions : int;
      (** representative hand-offs: the oldest logical of a shape was
          removed and a surviving logical took over *)
}

module Make (F : Pf_intf.FILTER) : sig
  include Pf_intf.FILTER

  val create_with : ?probe_cap:int -> unit -> t
  (** [probe_cap] bounds candidate shapes probed per insertion
      (default 64). [create ()] = [create_with ()]. *)

  val stats : t -> stats

  val fan_out : t -> int list -> int list
  (** Translate a physical match set (sids of the wrapped engine) to the
      sorted logical sid set — the translation [match_document] applies
      to the wrapped engine's answer. Exposed for integrations that run
      the physical engine out-of-band (a broker shard, a replayed match
      journal) and need the logical answer after the fact. *)

  val subsume_metrics : t -> Pf_obs.Registry.t
  (** The ["subsume"] registry (gauges and counters mirroring {!stats});
      {!metrics} returns the wrapped engine's registry, per the [FILTER]
      contract. *)

  val validate : t -> unit
  (** Check the index invariants — logical slots and shape membership
      agree, parent/child edge lists are symmetric and acyclic, key
      buckets are consistent, every live shape has a representative.
      Raises [Failure] with a description on violation. Test hook. *)
end

val filter : Pf_intf.filter -> Pf_intf.filter
(** [filter f] — {!Make} applied to a first-class filter: logical sids
    out, deduplicated physical registration in. Composes with the path
    cache, batching, both [Pf_service] shard modes and the broker, since
    it is itself a [FILTER]. *)

(** {1 Workload diagnostics} *)

type redundancy = {
  red_exprs : int;  (** expressions analyzed *)
  red_shapes : int;  (** distinct semantic shapes (canonical + aliases merged) *)
  red_duplicates : int;  (** expressions sharing a previously seen shape *)
  red_dag_edges : int;  (** strict-containment edges discovered *)
  red_covered_shapes : int;  (** shapes covered by at least one other shape *)
  red_covers_probes : int;  (** covers tests spent building the table *)
  red_probe_truncations : int;  (** insertions that hit the probe cap *)
}

val redundant_indexed : ?probe_cap:int -> Pf_xpath.Ast.path list -> redundancy
(** Shape-table redundancy analysis of a workload: the scalable
    counterpart of {!Containment.redundant} (which stays the documented
    small-input path — it enumerates every covering pair, quadratically).
    [redundant_indexed] reports aggregate redundancy in O(n) probes; with
    a larger [probe_cap] the DAG is denser but never exceeds the probed
    candidates. *)

val pp_redundancy : Format.formatter -> redundancy -> unit
