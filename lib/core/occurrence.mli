(** The occurrence determination algorithm (Section 4.2.1, Algorithm 1).

    Given the ordered matching results [R = (R_1, ..., R_n)] of an
    expression's predicates — each [R_i] a set of occurrence-number pairs —
    the expression is matched iff a chain
    [(o1_1,o2_1), ..., (o1_n,o2_n)] exists with [o2_(i-1) = o1_i] for all
    [i], a constraint satisfaction problem solved by backtracking.

    Two representations are provided. The list-based functions take the
    candidate sets as [(int * int) list array] — convenient, and the form
    the paper writes. The packed {!arena} stores the same sets flat in a
    reusable [int array] of packed pairs ([(o1 lsl 16) lor o2]), so the
    engines' match loops run allocation-free in the steady state; the test
    suite pins both representations (and the faithful Algorithm 1
    transcriptions) to agree on random inputs. *)

val matches : (int * int) list array -> bool
(** Recursive DFS. [matches [||]] is [false] (an expression has at least
    one predicate); an empty [R_i] yields [false]. *)

val matches_faithful : (int * int) list array -> bool
(** Literal transcription of Algorithm 1. *)

val iter_chains : (int * int) list array -> ((int * int) array -> bool) -> bool
(** [iter_chains rs accept] enumerates complete chains lazily, calling
    [accept] on each; stops and returns [true] as soon as [accept] does,
    returns [false] if no chain is accepted. The chain array is reused
    between calls — copy it to retain it. Used by the selection-postponed
    attribute mode (re-running the occurrence determination per candidate
    chain, Section 5) and by the nested path matcher. *)

(** {1 Packed candidate arena} *)

type arena
(** Candidate sets stored flat: row [i] holds predicate [i]'s packed
    pairs contiguously. Create one per engine and reuse it across
    documents; after warm-up, filling and searching allocate nothing.
    Rows obey a stack discipline: {!start_row}[ a i] discards every row
    [> i], matching the trie descent that fills them. *)

val create_arena : unit -> arena
val clear : arena -> unit

val start_row : arena -> int -> unit
(** [start_row a i] begins (re)filling row [i], discarding rows [>= i].
    Rows must be started in order: [i <= rows a]. *)

val push : arena -> int -> unit
(** Append a packed pair to the row most recently started. *)

val push_chain : arena -> int array -> int -> unit
(** [push_chain a cells c] appends every packed pair of the cell chain
    starting at index [c] (-1 for none) into the current row. [cells] is
    a {!Pf_core.Predicate_index.cells} store: cell [c] holds its packed
    pair at [cells.(2c)] and the next cell index at [cells.(2c+1)].
    Allocation-free, unlike folding a closure over the chain. *)

val rows : arena -> int
val row_len : arena -> int -> int

val load : arena -> (int * int) list array -> unit
(** Fill the arena from list-based candidate sets (tests, convenience). *)

val matches_packed : ?steps:int ref -> arena -> bool
(** DFS over all rows; equivalent to {!matches} on the same sets. When
    [steps] is given, the number of search steps is added to it (the
    engines' backtracking counter). *)

val search_steps : arena -> int
(** Monotone DFS step counter, advanced by {!matches_to} and
    {!matches_packed}. Reading deltas of this counter is the
    allocation-free alternative to passing [~steps] (whose [Some]
    wrapper is allocated at every call site). *)

val matches_to : ?steps:int ref -> arena -> int -> bool
(** [matches_to a d] searches rows [0..d] only — the prefix form the trie
    organizations need when deeper rows hold a sibling subtree's data. *)

val matches_faithful_packed : arena -> bool
(** Algorithm 1 on the packed rows, using reusable cursor scratch instead
    of filtered lists; step-for-step equivalent to {!matches_faithful}. *)

val iter_chains_packed : arena -> (int array -> int -> bool) -> bool
(** [iter_chains_packed a accept] enumerates complete chains; [accept]
    receives a scratch array of packed pairs and the chain length (the
    array may be longer — only the first [n] entries are the chain). Same
    contract as {!iter_chains} otherwise. *)
