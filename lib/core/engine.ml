open Pf_xpath

let src = Pf_obs.Events.src "engine" ~doc:"Predicate-based filtering engine"

module Log = (val Logs.src_log src : Logs.LOG)

type attr_mode = Inline | Postponed

(* How documents reach the matching loop. [Tree] materializes the
   document tree (the difftest oracle's mode); [Scan] extracts paths off
   the SAX event stream and snapshots each into a fresh publication;
   [Stream] is fully streaming — reusable publications are refilled
   straight from the step stack at each leaf's end-tag event, so matching
   a document allocates neither a tree nor per-path tuples. *)
type ingest = Tree | Scan | Stream

(* Postponed attribute constraints for one expression: per predicate, the
   variable tag symbols and the constraints to check once a structural
   match is found. A name slot is -1 when its constraint list is empty
   (never consulted). *)
type post = {
  names1 : Symbol.t array;
  names2 : Symbol.t array;
  pcons1 : Predicate.attr_constraint list array;
  pcons2 : Predicate.attr_constraint list array;
}

type kind =
  | Single of { pids : int array; post : post option }
  | Nested_expr

type expr_info = { source : Ast.path; kind : kind; mutable active : bool }

type stats = {
  mutable predicate_ns : float;
  mutable expr_ns : float;
  mutable collect_ns : float;
  mutable paths : int;
  mutable documents : int;
}

(* All engine metrics live in one registry (scope "engine"), so one
   registry reset zeroes every counter, histogram and stage timer of this
   engine — including the counters owned by the predicate and expression
   indexes. *)
type metrics = {
  registry : Pf_obs.Registry.t;
  paths : Pf_obs.Counter.t;
  documents : Pf_obs.Counter.t;
  dedup_hits : Pf_obs.Counter.t;
  cache_hits : Pf_obs.Counter.t;
  cache_misses : Pf_obs.Counter.t;
  cache_evictions : Pf_obs.Counter.t;
  cache_invalidations : Pf_obs.Counter.t;
  stream_documents : Pf_obs.Counter.t;
  predicate_span : Pf_obs.Span.t;
  expr_span : Pf_obs.Span.t;
  collect_span : Pf_obs.Span.t;
  latency : Pf_obs.Qhist.t;
  cache_entries : Pf_obs.Gauge.t;
  distinct_preds : Pf_obs.Gauge.t;
  pm : Predicate_index.metrics;
  em : Expr_index.metrics;
}

let make_metrics () =
  let registry = Pf_obs.Registry.create "engine" in
  {
    registry;
    paths = Pf_obs.Counter.make ~registry "paths" ~help:"document paths processed";
    documents = Pf_obs.Counter.make ~registry "documents" ~help:"documents processed";
    dedup_hits =
      Pf_obs.Counter.make ~registry "dedup_path_hits"
        ~help:"tag-identical paths skipped by duplicate-path elimination";
    cache_hits =
      Pf_obs.Counter.make ~registry "path_cache_hits"
        ~help:"paths answered from the cross-document path-result cache";
    cache_misses =
      Pf_obs.Counter.make ~registry "path_cache_misses"
        ~help:"paths computed and inserted into the path-result cache";
    cache_evictions =
      Pf_obs.Counter.make ~registry "path_cache_evictions"
        ~help:"path-result cache entries dropped by a capacity reset";
    cache_invalidations =
      Pf_obs.Counter.make ~registry "path_cache_invalidations"
        ~help:"subscription epoch bumps invalidating the path-result cache";
    stream_documents =
      Pf_obs.Counter.make ~registry "stream_documents"
        ~help:"documents matched fully streaming (no tree, arena publications)";
    predicate_span =
      Pf_obs.Span.make ~registry "predicate_stage_ns"
        ~help:"predicate matching stage time";
    expr_span =
      Pf_obs.Span.make ~registry "expr_stage_ns"
        ~help:"expression matching (occurrence determination) stage time";
    collect_span =
      Pf_obs.Span.make ~registry "collect_stage_ns"
        ~help:"result collection, nested finish and attribute post-checks";
    latency =
      Pf_obs.Qhist.make ~registry "doc_latency_ns"
        ~help:"end-to-end per-document match latency, nanoseconds";
    cache_entries =
      Pf_obs.Gauge.make ~registry "path_cache_entries" ~merge:Pf_obs.Gauge.Sum
        ~help:"live path-result cache entries";
    distinct_preds =
      (* Max: document-replicated workers hold identical predicate tables,
         so their merged value is the table size, not N times it *)
      Pf_obs.Gauge.make ~registry "distinct_predicates" ~merge:Pf_obs.Gauge.Max
        ~help:"distinct predicates stored in the shared predicate index";
    pm = Predicate_index.make_metrics ~registry ();
    em = Expr_index.make_metrics ~registry ();
  }

(* Cross-document path-result cache: the complete, sorted sid set the
   predicate+occurrence stages produce for one publication, keyed by the
   path's interned symbol sequence (plus its attribute tuples once any
   registered expression carries attribute filters — see [cache_key]).
   Entries are versioned by the subscription epoch: add/remove bump
   [pc_epoch], and an entry stamped with an older epoch is recomputed on
   next touch (lazy invalidation — nothing is swept eagerly). *)
type cache_entry = { ce_epoch : int; ce_sids : int array }

type path_cache = {
  pc_table : (string, cache_entry) Hashtbl.t;
  pc_capacity : int;  (* live entries before a wholesale reset *)
  mutable pc_epoch : int;  (* subscription epoch *)
  pc_key : Buffer.t;  (* reusable key scratch *)
}

type t = {
  variant : Expr_index.variant;
  attr_mode : attr_mode;
  collect_stats : bool;
  dedup_paths : bool;
  pidx : Predicate_index.t;
  results : Predicate_index.results;
  eidx : Expr_index.t;
  nested : Nested.t;
  exprs : expr_info Vec.t;
  chains : Occurrence.arena;
      (* scratch for postponed-mode chain enumeration; distinct from the
         expression index's own arena, which is live mid-descent when the
         on_match callback fires *)
  m : metrics;
  mutable sid_stamp : int array;
  mutable doc_stamp : int array;
      (* cached-mode document-level accumulation marks; separate from
         [sid_stamp], which cached mode repurposes for per-path result
         computation (see [match_iter]) *)
  mutable doc_epoch : int;
  mutable constrained : bool;
      (* some expression carries attribute filters: publications are then
         attribute-sensitive and duplicate-path elimination must not apply *)
  seen_paths : (string, unit) Hashtbl.t;  (* per-document duplicate-path filter *)
  cache : path_cache option;
  scanner : Pf_xml.Path.scanner;
      (* reused by match_scan/match_stream across documents *)
  pub_arena : Publication.arena;  (* reused by match_stream across documents *)
  mutable batch_res : Predicate_index.results array;
      (* results pool for the batched predicate stage, one slot per
         publication of a chunk; grown once, reused across documents *)
}

let create ?(variant = Expr_index.Access_predicate) ?(attr_mode = Inline)
    ?(collect_stats = false) ?(dedup_paths = false) ?(path_cache = false)
    ?(path_cache_capacity = 65536) () =
  let m = make_metrics () in
  let pidx = Predicate_index.create ~metrics:m.pm () in
  {
    variant;
    attr_mode;
    collect_stats;
    dedup_paths;
    pidx;
    results = Predicate_index.create_results ();
    eidx = Expr_index.create ~metrics:m.em variant;
    nested = Nested.create pidx;
    exprs =
      Vec.create
        ~dummy:{ source = Ast.path [ Ast.step (Ast.Tag "x") ]; kind = Nested_expr; active = false }
        ();
    chains = Occurrence.create_arena ();
    m;
    sid_stamp = [||];
    doc_stamp = [||];
    doc_epoch = 0;
    constrained = false;
    seen_paths = Hashtbl.create 64;
    cache =
      (if path_cache then
         Some
           {
             pc_table = Hashtbl.create 1024;
             pc_capacity = max 1 path_cache_capacity;
             pc_epoch = 0;
             pc_key = Buffer.create 128;
           }
       else None);
    scanner = Pf_xml.Path.create_scanner ();
    pub_arena = Publication.create_arena ();
    batch_res = [||];
  }

let variant t = t.variant
let attr_mode t = t.attr_mode
let metrics t = t.m.registry
let path_cache_enabled t = t.cache <> None

(* Any successful subscription change makes every cached entry stale. *)
let bump_cache_epoch t =
  match t.cache with
  | None -> ()
  | Some c ->
    c.pc_epoch <- c.pc_epoch + 1;
    Pf_obs.Counter.incr t.m.cache_invalidations

(* Compatibility view over the registry: a fresh record per call, with the
   same fields the old mutable [stats] had. *)
let stats t =
  {
    predicate_ns = Int64.to_float (Pf_obs.Span.ns t.m.predicate_span);
    expr_ns = Int64.to_float (Pf_obs.Span.ns t.m.expr_span);
    collect_ns = Int64.to_float (Pf_obs.Span.ns t.m.collect_span);
    paths = Pf_obs.Counter.get t.m.paths;
    documents = Pf_obs.Counter.get t.m.documents;
  }

let reset_stats t = Pf_obs.Registry.reset t.m.registry

let expression_count t = Vec.length t.exprs
let distinct_predicate_count t = Predicate_index.size t.pidx
let occurrence_runs t = Expr_index.occurrence_runs t.eidx

let expression t sid = (Vec.get t.exprs sid).source

let build_post (enc : Encoder.t) =
  if Array.exists Predicate.has_constraints enc.Encoder.preds then begin
    let n = Array.length enc.Encoder.preds in
    let names1 = Array.make n (-1) and names2 = Array.make n (-1) in
    let pcons1 = Array.make n [] and pcons2 = Array.make n [] in
    Array.iteri
      (fun i p ->
        let c1, c2 = Predicate.constraints_of p in
        (match p with
        | Predicate.Absolute { tag; _ } | Predicate.End_of_path { tag; _ } ->
          let sym = Symbol.intern tag.Predicate.name in
          names1.(i) <- sym;
          names2.(i) <- sym
        | Predicate.Relative { first; second; _ } ->
          names1.(i) <- Symbol.intern first.Predicate.name;
          names2.(i) <- Symbol.intern second.Predicate.name
        | Predicate.Length _ -> ());
        (* constraints_of duplicates one-variable constraints on both
           sides; checking one side suffices *)
        match p with
        | Predicate.Relative _ ->
          pcons1.(i) <- c1;
          pcons2.(i) <- c2
        | Predicate.Absolute _ | Predicate.End_of_path _ ->
          pcons1.(i) <- c1
        | Predicate.Length _ -> ())
      enc.Encoder.preds;
    Some { names1; names2; pcons1; pcons2 }
  end
  else None

let add t (p : Ast.path) =
  let info =
    if Ast.is_single_path p then begin
      let enc = Encoder.encode p in
      match t.attr_mode with
      | Inline ->
        let pids = Array.map (Predicate_index.intern t.pidx) enc.Encoder.preds in
        { source = p; kind = Single { pids; post = None }; active = true }
      | Postponed ->
        let pids =
          Array.map
            (fun pred -> Predicate_index.intern t.pidx (Predicate.strip pred))
            enc.Encoder.preds
        in
        { source = p; kind = Single { pids; post = build_post enc }; active = true }
    end
    else { source = p; kind = Nested_expr; active = true }
  in
  (* register in the matching index *before* consuming a sid: Nested.add
     validates the decomposition and can raise Unsupported, and a rejected
     add must leave the engine unchanged (the Pf_intf.FILTER contract —
     otherwise a service primary would run one sid ahead of its worker
     replicas after a rejected subscribe) *)
  let sid = Vec.length t.exprs in
  (match info.kind with
  | Single { pids; _ } -> Expr_index.add t.eidx ~sid ~pids
  | Nested_expr -> Nested.add t.nested ~sid p);
  ignore (Vec.push t.exprs info : int);
  if Ast.has_attr_filters p then t.constrained <- true;
  Pf_obs.Gauge.set t.m.distinct_preds (float_of_int (Predicate_index.size t.pidx));
  bump_cache_epoch t;
  Log.debug (fun m -> m "registered sid %d: %s" sid (Parser.to_string p));
  sid

let add_string t s = add t (Parser.parse s)

let remove t sid =
  if sid < 0 || sid >= Vec.length t.exprs then false
  else begin
    let info = Vec.get t.exprs sid in
    if not info.active then false
    else begin
      let removed =
        match info.kind with
        | Single { pids; _ } -> Expr_index.remove t.eidx ~sid ~pids
        | Nested_expr -> Nested.remove t.nested ~sid
      in
      if removed then begin
        info.active <- false;
        bump_cache_epoch t
      end;
      removed
    end
  end

let is_active t sid = sid >= 0 && sid < Vec.length t.exprs && (Vec.get t.exprs sid).active

let ensure_stamp t =
  let n = Vec.length t.exprs in
  if Array.length t.sid_stamp < n then begin
    let bigger = Array.make (max n (2 * Array.length t.sid_stamp)) 0 in
    Array.blit t.sid_stamp 0 bigger 0 (Array.length t.sid_stamp);
    t.sid_stamp <- bigger
  end;
  if t.cache <> None && Array.length t.doc_stamp < n then begin
    let bigger = Array.make (max n (2 * Array.length t.doc_stamp)) 0 in
    Array.blit t.doc_stamp 0 bigger 0 (Array.length t.doc_stamp);
    t.doc_stamp <- bigger
  end

(* Check an expression's postponed attribute constraints against one
   occurrence chain (packed pairs, length [n]): each constrained
   variable's occurrence is mapped back to its tuple and the tuple's
   attributes are tested. *)
let chain_satisfies post pub chain n =
  let ok_side names cons i occ =
    match cons.(i) with
    | [] -> true
    | cs -> (
      match Publication.pos_of_occurrence pub ~tag:names.(i) ~occurrence:occ with
      | Some pos -> Predicate.check_constraints cs (Publication.attrs_at pub ~pos)
      | None -> false)
  in
  let rec go i =
    i >= n
    ||
    let p = chain.(i) in
    ok_side post.names1 post.pcons1 i (Predicate_index.packed_first p)
    && ok_side post.names2 post.pcons2 i (Predicate_index.packed_second p)
    && go (i + 1)
  in
  go 0

(* Fill the engine's chain arena with the candidate sets of [pids] from
   [res]; false (short-circuiting) if any predicate recorded no pair. *)
let fill_chains t res pids =
  let a = t.chains in
  Occurrence.clear a;
  let cells = Predicate_index.cells res in
  let n = Array.length pids in
  let rec fetch i =
    i >= n
    || (Occurrence.start_row a i;
        Occurrence.push_chain a cells (Predicate_index.head res pids.(i));
        Occurrence.row_len a i > 0 && fetch (i + 1))
  in
  fetch 0

(* Cache key for one publication. The symbol sequence is length-prefixed
   and fixed-width, and every attribute name/value is length-prefixed, so
   the encoding is injective: equal keys imply an identical symbol
   sequence (which determines the occurrence numbers — they are a running
   count over it) and, when attributes participate, identical attribute
   tuples. Attributes are included exactly when some registered
   expression carries attribute filters ([t.constrained]) — in both
   Inline and Postponed modes the per-path result then depends on them;
   with only structural expressions it cannot. Structure tuples (child
   indices) never key: only nested expressions consult them, and nested
   expressions disable the cache entirely (their matches need
   whole-document state, not per-path sets). The key copies every byte it
   needs, so an arena-backed publication may be overwritten afterwards
   without invalidating cached entries. *)
let cache_key t c (pub : Publication.t) =
  let buf = c.pc_key in
  Buffer.clear buf;
  let tuples = pub.Publication.tuples in
  Buffer.add_int32_le buf (Int32.of_int pub.Publication.length);
  Array.iter
    (fun (tu : Publication.tuple) ->
      Buffer.add_int32_le buf (Int32.of_int tu.Publication.tag))
    tuples;
  if t.constrained then
    Array.iter
      (fun (tu : Publication.tuple) ->
        Buffer.add_int32_le buf (Int32.of_int (List.length tu.Publication.attrs));
        List.iter
          (fun (n, v) ->
            Buffer.add_int32_le buf (Int32.of_int (String.length n));
            Buffer.add_string buf n;
            Buffer.add_int32_le buf (Int32.of_int (String.length v));
            Buffer.add_string buf v)
          tu.Publication.attrs)
      tuples;
  Buffer.contents buf

(* Core per-document matching loop; [iter_pubs] drives the document's
   root-to-leaf publications through it — materialized from a tree, or
   streamed off a SAX parse (snapshotted or arena-refilled). A streamed
   publication only needs to stay valid while its own callback runs:
   everything below either finishes with the publication before
   returning or copies the bytes it keeps (dedup keys, cache keys and
   entries, match sets). *)
let empty_pub = Publication.of_tags []

let match_iter t iter_pubs =
  let lat0 = Pf_obs.Span.now () in
  (* read the ambient trace once per document; the untraced fast path
     then pays only these branch tests, never a closure allocation *)
  let traced = Pf_obs.Trace.ambient () <> None in
  ensure_stamp t;
  t.doc_epoch <- t.doc_epoch + 1;
  let doc_id = t.doc_epoch in
  let acc = ref [] in
  let mark sid =
    if t.sid_stamp.(sid) <> t.doc_epoch then begin
      t.sid_stamp.(sid) <- t.doc_epoch;
      acc := sid :: !acc
    end
  in
  let timed = t.collect_stats in
  let nested_active = not (Nested.is_empty t.nested) in
  if nested_active then Nested.begin_document t.nested;
  (* nested expressions need whole-document structure state; per-path
     caching is unsound for them, so their presence bypasses the cache *)
  let cache = if nested_active then None else t.cache in
  (* Sibling subtrees yield literally identical publications (occurrence
     numbers are per path), so a tag-identical path cannot change the match
     set and is skipped — unless attributes matter (constrained
     expressions) or per-path structure tuples do (nested expressions). *)
  let dedup = t.dedup_paths && (not t.constrained) && not nested_active in
  if dedup then Hashtbl.reset t.seen_paths;
  let fresh_pub (pub : Publication.t) =
    (not dedup)
    ||
    (* fixed-width symbol encoding: injective, no string contents *)
    let buf = Buffer.create 64 in
    Array.iter
      (fun (tu : Publication.tuple) ->
        Buffer.add_int32_le buf (Int32.of_int tu.Publication.tag))
      pub.Publication.tuples;
    let key = Buffer.contents buf in
    if Hashtbl.mem t.seen_paths key then begin
      Pf_obs.Counter.incr t.m.dedup_hits;
      false
    end
    else begin
      Hashtbl.add t.seen_paths key ();
      true
    end
  in
  (* The publication the uncached [on_match] below consults for postponed
     attribute checks. A mutable slot (written by [process_uncached])
     rather than a captured argument, so [on_match] is one closure per
     document instead of one per path — on the streaming path, per-path
     closures were the residual allocation after the arenas. *)
  let cur_pub = ref empty_pub in
  let on_match sid =
    if t.sid_stamp.(sid) <> t.doc_epoch then
      match (Vec.get t.exprs sid).kind with
      | Single { post = None; _ } -> mark sid
      | Single { pids; post = Some post } ->
        if
          fill_chains t t.results pids
          && Occurrence.iter_chains_packed t.chains (chain_satisfies post !cur_pub)
        then mark sid
      | Nested_expr -> assert false
  in
  let sticky = t.attr_mode = Inline in
  let process_uncached pub =
      Pf_obs.Counter.incr t.m.paths;
      cur_pub := pub;
      let t0 = if timed then Pf_obs.Span.now () else 0L in
      if traced then
        Pf_obs.Trace.with_span "match" (fun () ->
            Predicate_index.run t.pidx t.results pub)
      else Predicate_index.run t.pidx t.results pub;
      let t1 = if timed then Pf_obs.Span.now () else 0L in
      (* the traced path pays a closure for the span; the plain path calls
         the evaluator directly and allocates nothing *)
      if traced then
        Pf_obs.Trace.with_span "occurrence" (fun () ->
            Expr_index.eval t.eidx t.results ~sticky ~doc_tag:t.doc_epoch ~on_match)
      else Expr_index.eval t.eidx t.results ~sticky ~doc_tag:t.doc_epoch ~on_match;
      if nested_active then Nested.observe_path t.nested t.results pub;
      if timed then begin
        let t2 = Pf_obs.Span.now () in
        Pf_obs.Span.add t.m.predicate_span (Int64.sub t1 t0);
        Pf_obs.Span.add t.m.expr_span (Int64.sub t2 t1)
      end
  in
  (* Document-level accumulation in cached mode. [sid_stamp] is reused by
     the per-path computation under per-path tags, so the document marks
     need their own array; [doc_id] values come from the same monotonic
     clock, so a stale stamp can never alias the current document. *)
  let mark_doc sid =
    if t.doc_stamp.(sid) <> doc_id then begin
      t.doc_stamp.(sid) <- doc_id;
      acc := sid :: !acc
    end
  in
  let process_cached c pub =
    Pf_obs.Counter.incr t.m.paths;
    let lookup () =
      let key = cache_key t c pub in
      key, Hashtbl.find_opt c.pc_table key
    in
    let key, found =
      if traced then Pf_obs.Trace.with_span "path-cache" lookup else lookup ()
    in
    match found with
    | Some e when e.ce_epoch = c.pc_epoch ->
      Pf_obs.Counter.incr t.m.cache_hits;
      Array.iter mark_doc e.ce_sids
    | prior ->
      Pf_obs.Counter.incr t.m.cache_misses;
      let t0 = if timed then Pf_obs.Span.now () else 0L in
      if traced then
        Pf_obs.Trace.with_span "match" (fun () ->
            Predicate_index.run t.pidx t.results pub)
      else Predicate_index.run t.pidx t.results pub;
      let t1 = if timed then Pf_obs.Span.now () else 0L in
      (* compute the *complete* per-path sid set under a fresh clock tick:
         the cached value must not be truncated by what already matched
         this document, and the expression index's sticky dedup scopes to
         the path, which is exactly what makes the entry reusable *)
      t.doc_epoch <- t.doc_epoch + 1;
      let ptag = t.doc_epoch in
      let matched = ref [] in
      let hit sid =
        t.sid_stamp.(sid) <- ptag;
        matched := sid :: !matched
      in
      let on_match sid =
        if t.sid_stamp.(sid) <> ptag then
          match (Vec.get t.exprs sid).kind with
          | Single { post = None; _ } -> hit sid
          | Single { pids; post = Some post } ->
            if
              fill_chains t t.results pids
              && Occurrence.iter_chains_packed t.chains (chain_satisfies post pub)
            then hit sid
          | Nested_expr -> assert false
      in
      let eval () =
        Expr_index.eval t.eidx t.results ~sticky:(t.attr_mode = Inline) ~doc_tag:ptag
          ~on_match
      in
      if traced then Pf_obs.Trace.with_span "occurrence" eval else eval ();
      if timed then begin
        let t2 = Pf_obs.Span.now () in
        Pf_obs.Span.add t.m.predicate_span (Int64.sub t1 t0);
        Pf_obs.Span.add t.m.expr_span (Int64.sub t2 t1)
      end;
      let sids = Array.of_list (List.sort compare !matched) in
      if prior = None && Hashtbl.length c.pc_table >= c.pc_capacity then begin
        (* capacity: drop everything rather than track recency — resets
           are rare and the next documents repopulate the working set *)
        Pf_obs.Counter.add t.m.cache_evictions (Hashtbl.length c.pc_table);
        Hashtbl.reset c.pc_table
      end;
      Hashtbl.replace c.pc_table key { ce_epoch = c.pc_epoch; ce_sids = sids };
      Pf_obs.Gauge.set t.m.cache_entries (float_of_int (Hashtbl.length c.pc_table));
      Array.iter mark_doc sids
  in
  iter_pubs
    (fun pub ->
      if fresh_pub pub then
        match cache with
        | None -> process_uncached pub
        | Some c -> process_cached c pub);
  let t2 = if timed then Pf_obs.Span.now () else 0L in
  if nested_active then Nested.finish_document t.nested ~on_match:mark;
  let result = List.sort compare !acc in
  if timed then
    Pf_obs.Span.add t.m.collect_span (Int64.sub (Pf_obs.Span.now ()) t2);
  Pf_obs.Counter.incr t.m.documents;
  Pf_obs.Qhist.observe t.m.latency
    (Int64.to_int (Int64.sub (Pf_obs.Span.now ()) lat0));
  Log.debug (fun m ->
      m "document %d: %d expressions matched (%d paths so far)" t.doc_epoch
        (List.length result)
        (Pf_obs.Counter.get t.m.paths));
  result

let match_paths t paths =
  match_iter t (fun f -> List.iter (fun p -> f (Publication.of_path p)) paths)

let match_document t doc =
  match_paths t (Pf_obs.Trace.with_span "scan" (fun () -> Pf_xml.Path.of_document doc))

let match_string t s = match_document t (Pf_xml.Sax.parse_document s)

let match_scan t src =
  (* zero-copy path extraction: the engine-owned scanner is reused across
     documents and each emitted path is snapshotted into a fresh
     publication — no tree, but still one allocation per path *)
  match_iter t (fun f ->
      Pf_xml.Path.scan t.scanner src ~f:(fun p -> f (Publication.of_path p)))

let match_stream t src =
  (* fully streaming: the step stack from [Path.stream] refills the
     engine-owned publication arena in place, so matching a document
     allocates neither a tree nor per-path tuples. Sound because the
     matching loop finishes with each publication before its callback
     returns (see [match_iter]); the span covers the fused
     parse+extract+match drive, which has no separable "scan" phase. *)
  Pf_obs.Counter.incr t.m.stream_documents;
  Pf_obs.Trace.with_span "stream-match" (fun () ->
      match_iter t (fun f ->
          Pf_xml.Path.stream t.scanner src ~f:(fun steps n ->
              f (Publication.of_steps t.pub_arena steps n))))

(* ------------------------------------------------------------------ *)
(* Batched matching: the predicate stage runs over a whole chunk of a
   document's publications in one [Predicate_index.run_batch] pass (the
   flat index image stays hot in cache instead of alternating with
   expression-stage work), then each publication's results are evaluated
   in order. Observationally identical to the per-publication loop of
   [match_iter]: the predicate stage has no dependence on downstream
   evaluation, per-publication results objects are private to the chunk,
   and evaluation order over publications is preserved. *)

let batch_chunk = 16

let ensure_batch_res t n =
  if Array.length t.batch_res < n then begin
    let old = t.batch_res in
    t.batch_res <-
      Array.init n (fun i ->
          if i < Array.length old then old.(i) else Predicate_index.create_results ())
  end

(* One document's publications, batched. Callers guarantee the fast-path
   preconditions: no nested expressions, no path cache, no path dedup, no
   ambient trace, no stage timing — every configuration that makes
   per-path processing independent of its neighbours. *)
let match_pubs_batched t (pubs : Publication.t array) =
  ensure_stamp t;
  t.doc_epoch <- t.doc_epoch + 1;
  let acc = ref [] in
  let cur_pub = ref empty_pub in
  let cur_res = ref t.results in
  let on_match sid =
    if t.sid_stamp.(sid) <> t.doc_epoch then
      match (Vec.get t.exprs sid).kind with
      | Single { post = None; _ } ->
        t.sid_stamp.(sid) <- t.doc_epoch;
        acc := sid :: !acc
      | Single { pids; post = Some post } ->
        if
          fill_chains t !cur_res pids
          && Occurrence.iter_chains_packed t.chains (chain_satisfies post !cur_pub)
        then begin
          t.sid_stamp.(sid) <- t.doc_epoch;
          acc := sid :: !acc
        end
      | Nested_expr -> assert false
  in
  let sticky = t.attr_mode = Inline in
  let n = Array.length pubs in
  let chunk = ref 0 in
  while !chunk < n do
    let len = min batch_chunk (n - !chunk) in
    ensure_batch_res t len;
    let cres =
      if Array.length t.batch_res = len then t.batch_res
      else Array.sub t.batch_res 0 len
    in
    let cpubs = Array.sub pubs !chunk len in
    Predicate_index.run_batch t.pidx cres cpubs;
    for i = 0 to len - 1 do
      Pf_obs.Counter.incr t.m.paths;
      cur_pub := cpubs.(i);
      cur_res := cres.(i);
      Expr_index.eval t.eidx cres.(i) ~sticky ~doc_tag:t.doc_epoch ~on_match
    done;
    chunk := !chunk + len
  done;
  Pf_obs.Counter.incr t.m.documents;
  List.sort compare !acc

let match_batch t docs =
  let fast =
    Nested.is_empty t.nested
    && t.cache = None
    && (not t.dedup_paths)
    && (not t.collect_stats)
    && Pf_obs.Trace.ambient () = None
  in
  if not fast then List.map (fun d -> match_document t d) docs
  else
    List.map
      (fun doc ->
        let lat0 = Pf_obs.Span.now () in
        let pubs =
          Array.of_list
            (List.map Publication.of_path (Pf_xml.Path.of_document doc))
        in
        let r = match_pubs_batched t pubs in
        Pf_obs.Qhist.observe t.m.latency
          (Int64.to_int (Int64.sub (Pf_obs.Span.now ()) lat0));
        r)
      docs

let match_string_batch t srcs =
  match_batch t (List.map Pf_xml.Sax.parse_document srcs)

type explanation = {
  expl_path : Pf_xml.Path.t;
  expl_chain : (Predicate.t * (int * int)) list;
}

let explain t doc sid =
  if sid < 0 || sid >= Vec.length t.exprs then None
  else
    let info = Vec.get t.exprs sid in
    match info.kind with
    | Nested_expr -> None
    | Single _ when not info.active -> None
    | Single { pids; post } ->
      let paths = Pf_xml.Path.of_document doc in
      let witness = ref None in
      let try_path path =
        let pub = Publication.of_path path in
        Predicate_index.run t.pidx t.results pub;
        if fill_chains t t.results pids then
          ignore
            (Occurrence.iter_chains_packed t.chains (fun chain n ->
                 let ok =
                   match post with
                   | None -> true
                   | Some post -> chain_satisfies post pub chain n
                 in
                 if ok then begin
                   let preds =
                     Array.to_list
                       (Array.mapi
                          (fun i pid ->
                            ( Predicate_index.predicate t.pidx pid,
                              ( Predicate_index.packed_first chain.(i),
                                Predicate_index.packed_second chain.(i) ) ))
                          pids)
                   in
                   witness := Some { expl_path = path; expl_chain = preds }
                 end;
                 ok))
      in
      let rec first = function
        | [] -> ()
        | path :: rest ->
          try_path path;
          if !witness = None then first rest
      in
      first paths;
      !witness

let pp_explanation fmt e =
  Format.fprintf fmt "@[<v>path: %a@," Pf_xml.Path.pp e.expl_path;
  List.iter
    (fun (pred, (o1, o2)) ->
      Format.fprintf fmt "  %a matched by occurrences (%d,%d)@," Predicate.pp pred o1 o2)
    e.expl_chain;
  Format.fprintf fmt "@]"

let match_path t path =
  (* single-path matching: nested expressions need whole documents *)
  ensure_stamp t;
  t.doc_epoch <- t.doc_epoch + 1;
  let acc = ref [] in
  Pf_obs.Counter.incr t.m.paths;
  let pub = Publication.of_path path in
  Predicate_index.run t.pidx t.results pub;
  let on_match sid =
    if t.sid_stamp.(sid) <> t.doc_epoch then begin
      match (Vec.get t.exprs sid).kind with
      | Single { post = None; _ } ->
        t.sid_stamp.(sid) <- t.doc_epoch;
        acc := sid :: !acc
      | Single { pids; post = Some post } ->
        if
          fill_chains t t.results pids
          && Occurrence.iter_chains_packed t.chains (chain_satisfies post pub)
        then begin
          t.sid_stamp.(sid) <- t.doc_epoch;
          acc := sid :: !acc
        end
      | Nested_expr -> assert false
    end
  in
  Expr_index.eval t.eidx t.results ~sticky:(t.attr_mode = Inline) ~doc_tag:t.doc_epoch
    ~on_match;
  List.sort compare !acc

(* ------------------------------------------------------------------ *)
(* The unified engine signature (Pf_intf.FILTER) *)

let filter ?variant ?attr_mode ?collect_stats ?dedup_paths ?path_cache
    ?path_cache_capacity ?(stream = Tree) () : (module Pf_intf.FILTER with type t = t) =
  (module struct
    type nonrec t = t

    let create () =
      create ?variant ?attr_mode ?collect_stats ?dedup_paths ?path_cache
        ?path_cache_capacity ()
    let add = add
    let add_string = add_string
    let remove = remove

    (* [Scan] and [Stream] route matching through the SAX pipeline: the
       document is serialized and re-matched from the event stream without
       ever materializing the tree on the matching side ([Stream]
       additionally refills arena publications instead of snapshotting). *)
    let match_document =
      match stream with
      | Tree -> match_document
      | Scan -> fun t doc -> match_scan t (Pf_xml.Print.to_string ~decl:false doc)
      | Stream -> fun t doc -> match_stream t (Pf_xml.Print.to_string ~decl:false doc)

    let match_string =
      match stream with
      | Tree -> match_string
      | Scan -> match_scan
      | Stream -> match_stream

    (* [Tree] batches the predicate stage across each document's
       publications; the SAX modes match per document — [Stream]'s arena
       publications alias per-length slots, so a deferred batch would read
       overwritten tuples *)
    let match_batch =
      match stream with
      | Tree -> match_batch
      | Scan | Stream -> fun t docs -> List.map (match_document t) docs

    let match_string_batch =
      match stream with
      | Tree -> match_string_batch
      | Scan | Stream -> fun t srcs -> List.map (match_string t) srcs

    let metrics = metrics
  end)

module Filter = (val filter ())

(* [filter] pins [type t = t] in its result, which a subsumption wrapper
   (logical sids over a private shape table) cannot satisfy — so the
   subsumed variant is a separate constructor returning a plain
   [Pf_intf.filter]. *)
let filter_subsumed ?variant ?attr_mode ?collect_stats ?dedup_paths ?path_cache
    ?path_cache_capacity ?stream ?(subsumption = true) () : Pf_intf.filter =
  let base =
    (filter ?variant ?attr_mode ?collect_stats ?dedup_paths ?path_cache
       ?path_cache_capacity ?stream ()
      : (module Pf_intf.FILTER with type t = t)
      :> Pf_intf.filter)
  in
  if subsumption then Subsume.filter base else base
