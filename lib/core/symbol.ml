(* Re-export: the interner lives in Pf_xml so tags are hashconsed at SAX
   parse time (pf_xml cannot depend on pf_core); engine code refers to it
   as Pf_core.Symbol. *)
include Pf_xml.Symbol
