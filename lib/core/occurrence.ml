(* Depth-first search over partial chains. [go i prev] asks whether
   predicates i..n-1 can be chained starting from a pair whose first
   occurrence equals [prev]. *)
let matches (rs : (int * int) list array) =
  let n = Array.length rs in
  if n = 0 then false
  else begin
    let rec go i prev =
      if i >= n then true
      else List.exists (fun (o1, o2) -> o1 = prev && go (i + 1) o2) rs.(i)
    in
    List.exists (fun (_, o2) -> go 1 o2) rs.(0)
  end

(* Literal transcription of Algorithm 1. [r'] holds the mutable candidate
   sets R'_i; [chosen.(i)] is the pair currently selected for predicate i. *)
let matches_faithful (rs : (int * int) list array) =
  let n = Array.length rs in
  if n = 0 then false
  else if Array.exists (fun r -> r = []) rs then false (* lines 2-6 *)
  else begin
    let r' = Array.make n [] in
    let chosen = Array.make n (0, 0) in
    (* line 7: R'_1 <- R_1, select one pair and delete it *)
    (match rs.(0) with
    | first :: rest ->
      chosen.(0) <- first;
      r'.(0) <- rest
    | [] -> assert false);
    let current = ref 0 (* 0-based; paper's line 1 sets current <- 1 *) in
    let step = ref 0 in
    let back = ref false in
    let result = ref None in
    while !result = None do
      if not !back then begin
        if !current = n - 1 then result := Some true (* lines 10-11 *)
        else begin
          (* line 13: current++, R'_current <- R_current(o2) *)
          let _, o2 = chosen.(!current) in
          incr current;
          step := !current;
          r'.(!current) <- List.filter (fun (o1, _) -> o1 = o2) rs.(!current)
        end
      end;
      if !result = None then begin
        match r'.(!current) with
        | pair :: rest ->
          (* lines 16-17: select a pair, remove it, go forward *)
          chosen.(!current) <- pair;
          r'.(!current) <- rest;
          back := false
        | [] ->
          (* lines 18-27: backtrack to the deepest level with candidates *)
          decr step;
          while !step >= 0 && r'.(!step) = [] do
            decr step
          done;
          if !step < 0 then result := Some false (* lines 23-24 *)
          else begin
            current := !step;
            back := true
          end
      end
    done;
    match !result with Some r -> r | None -> assert false
  end

let iter_chains (rs : (int * int) list array) accept =
  let n = Array.length rs in
  if n = 0 then false
  else begin
    let chain = Array.make n (0, 0) in
    let rec go i prev =
      if i >= n then accept chain
      else
        List.exists
          (fun (o1, o2) ->
            o1 = prev
            &&
            (chain.(i) <- (o1, o2);
             go (i + 1) o2))
          rs.(i)
    in
    List.exists
      (fun (o1, o2) ->
        chain.(0) <- (o1, o2);
        go 1 o2)
      rs.(0)
  end

(* ------------------------------------------------------------------ *)
(* Packed candidate arena                                               *)

(* The candidate sets R_1..R_n of one run stored flat: row i (one per
   predicate) occupies data.(off.(i)) .. data.(off.(i) + len.(i) - 1),
   each entry a packed pair ((o1 << 16) | o2). The arena is a per-engine
   scratch reused across documents, so the steady state of the match loop
   allocates nothing — no pair lists, no per-document arrays. Rows obey a
   stack discipline: starting row i discards rows > i, which is exactly
   the shape of the trie descent that fills them. *)
type arena = {
  mutable data : int array;
  mutable off : int array;
  mutable len : int array;
  mutable n_rows : int;
  (* scratch buffers for the packed traversals *)
  mutable chain : int array;
  mutable cursor : int array;
  mutable constr : int array;
  mutable chosen : int array;
  mutable search_steps : int;  (* monotone DFS step counter; read as deltas *)
}

let create_arena () =
  {
    data = Array.make 64 0;
    off = Array.make 16 0;
    len = Array.make 16 0;
    n_rows = 0;
    chain = [||];
    cursor = [||];
    constr = [||];
    chosen = [||];
    search_steps = 0;
  }

let clear a = a.n_rows <- 0

let rows a = a.n_rows

let row_len a i = a.len.(i)

let start_row a i =
  if i > a.n_rows then invalid_arg "Occurrence.start_row: row out of sequence";
  if i >= Array.length a.off then begin
    let cap = 2 * (i + 1) in
    let off = Array.make cap 0 and len = Array.make cap 0 in
    Array.blit a.off 0 off 0 (Array.length a.off);
    Array.blit a.len 0 len 0 (Array.length a.len);
    a.off <- off;
    a.len <- len
  end;
  a.off.(i) <- (if i = 0 then 0 else a.off.(i - 1) + a.len.(i - 1));
  a.len.(i) <- 0;
  a.n_rows <- i + 1

let push a packed =
  let r = a.n_rows - 1 in
  let pos = a.off.(r) + a.len.(r) in
  if pos >= Array.length a.data then begin
    let bigger = Array.make (2 * Array.length a.data) 0 in
    Array.blit a.data 0 bigger 0 (Array.length a.data);
    a.data <- bigger
  end;
  a.data.(pos) <- packed;
  a.len.(r) <- a.len.(r) + 1

(* Append a whole candidate chain from a {!Predicate_index} cell store
   (cell [c] holds its packed pair at [cells.(2c)] and the previous cell's
   index — or -1 — at [cells.(2c+1)]). A direct loop rather than
   [Predicate_index.iter_pairs (push a)]: the partial application would
   allocate a closure per row, and filling rows is the innermost loop of
   every engine's fast path. *)
let rec push_chain a cells c =
  if c >= 0 then begin
    push a (Array.unsafe_get cells (2 * c));
    push_chain a cells (Array.unsafe_get cells ((2 * c) + 1))
  end

let load a (rs : (int * int) list array) =
  clear a;
  Array.iteri
    (fun i r ->
      start_row a i;
      List.iter (fun (o1, o2) -> push a ((o1 lsl 16) lor o2)) r)
    rs

(* The DFS is split into top-level mutually recursive functions (state
   threaded through the arena and explicit parameters) rather than local
   closures over [data]/[off]/[len]: a local [let rec] would allocate its
   closure and a step-counter ref on every call, and this runs once per
   candidate expression per publication. Steps accumulate monotonically
   in [a.search_steps]; callers read deltas. *)
let rec search a depth i prev =
  a.search_steps <- a.search_steps + 1;
  i > depth
  ||
  let o = a.off.(i) and l = a.len.(i) in
  search_scan a depth i prev o l 0

and search_scan a depth i prev o l k =
  k < l
  && ((let p = Array.unsafe_get a.data (o + k) in
       p lsr 16 = prev && search a depth (i + 1) (p land 0xffff))
     || search_scan a depth i prev o l (k + 1))

let rec search_root a depth o l k =
  k < l
  && ((a.search_steps <- a.search_steps + 1;
       let p = Array.unsafe_get a.data (o + k) in
       search a depth 1 (p land 0xffff))
     || search_root a depth o l (k + 1))

let search_steps a = a.search_steps

let matches_to ?steps a depth =
  let s0 = a.search_steps in
  let r = depth >= 0 && search_root a depth a.off.(0) a.len.(0) 0 in
  (match steps with Some s -> s := !s + (a.search_steps - s0) | None -> ());
  r

let matches_packed ?steps a = a.n_rows > 0 && matches_to ?steps a (a.n_rows - 1)

let iter_chains_packed a accept =
  let n = a.n_rows in
  if n = 0 then false
  else begin
    if Array.length a.chain < n then a.chain <- Array.make (max 16 (2 * n)) 0;
    let chain = a.chain in
    let data = a.data and off = a.off and len = a.len in
    let rec go i prev =
      if i >= n then accept chain n
      else
        let o = off.(i) and l = len.(i) in
        let rec scan k =
          k < l
          && ((let p = data.(o + k) in
               p lsr 16 = prev
               && (chain.(i) <- p;
                   go (i + 1) (p land 0xffff)))
             || scan (k + 1))
        in
        scan 0
    in
    let o = off.(0) and l = len.(0) in
    let rec scan k =
      k < l
      && ((let p = data.(o + k) in
           chain.(0) <- p;
           go 1 (p land 0xffff))
         || scan (k + 1))
    in
    scan 0
  end

(* Algorithm 1 over the packed arena. The mutable candidate sets R'_i are
   represented without allocation: row i's remaining candidates are the
   entries at index >= cursor.(i) whose first occurrence equals
   constr.(i) (row 0 is unconstrained). Selection scans forward from the
   cursor — the same visit order as filtering the list and taking its
   head, so this is step-for-step the list-based [matches_faithful]. *)
let matches_faithful_packed a =
  let n = a.n_rows in
  if n = 0 then false
  else begin
    let some_empty = ref false in
    for i = 0 to n - 1 do
      if a.len.(i) = 0 then some_empty := true
    done;
    if !some_empty then false (* lines 2-6 *)
    else begin
      if Array.length a.cursor < n then begin
        let cap = max 16 (2 * n) in
        a.cursor <- Array.make cap 0;
        a.constr <- Array.make cap 0;
        a.chosen <- Array.make cap 0
      end;
      let data = a.data and off = a.off and len = a.len in
      let cursor = a.cursor and constr = a.constr and chosen = a.chosen in
      (* select-and-delete the next candidate of row i; -1 if none *)
      let select i =
        let c = constr.(i) and o = off.(i) and l = len.(i) in
        let rec scan k =
          if k >= l then -1
          else
            let p = data.(o + k) in
            if i = 0 || p lsr 16 = c then begin
              cursor.(i) <- k + 1;
              p
            end
            else scan (k + 1)
        in
        scan cursor.(i)
      in
      (* is R'_i non-empty? (peek without consuming) *)
      let has_candidates i =
        let c = constr.(i) and o = off.(i) and l = len.(i) in
        let rec scan k = k < l && (i = 0 || data.(o + k) lsr 16 = c || scan (k + 1)) in
        scan cursor.(i)
      in
      (* line 7: R'_1 <- R_1, select one pair and delete it *)
      cursor.(0) <- 0;
      chosen.(0) <- select 0;
      let current = ref 0 in
      let step = ref 0 in
      let back = ref false in
      let result = ref None in
      while !result = None do
        if not !back then begin
          if !current = n - 1 then result := Some true (* lines 10-11 *)
          else begin
            (* line 13: current++, R'_current <- R_current(o2) *)
            let o2 = chosen.(!current) land 0xffff in
            incr current;
            step := !current;
            constr.(!current) <- o2;
            cursor.(!current) <- 0
          end
        end;
        if !result = None then begin
          let p = select !current in
          if p >= 0 then begin
            (* lines 16-17: select a pair, remove it, go forward *)
            chosen.(!current) <- p;
            back := false
          end
          else begin
            (* lines 18-27: backtrack to the deepest level with candidates *)
            decr step;
            while !step >= 0 && not (has_candidates !step) do
              decr step
            done;
            if !step < 0 then result := Some false (* lines 23-24 *)
            else begin
              current := !step;
              back := true
            end
          end
        end
      done;
      match !result with Some r -> r | None -> assert false
    end
  end
