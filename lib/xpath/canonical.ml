(* Normal form for XPath expressions (see the mli for the rewrite rules
   and why each one is exact for existential matching). The subsumption
   index hash-conses expressions by this form, so every rule here turns
   syntactic variety into physical sharing. *)

(* ------------------------------------------------------------------ *)
(* Filter implication (shared with Pf_core.Containment) *)

(* Does the value set selected by (c2, v2) lie inside the one selected by
   (c1, v1)? Integer sets are points, punctured lines or rays; the integer
   cases exploit adjacency (x < v  <=>  x <= v - 1). *)
let int_subset (c2, v2) (c1, v1) =
  match c1 with
  | Ast.Eq -> (
    match c2 with Ast.Eq -> v2 = v1 | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> false)
  | Ast.Ne -> (
    match c2 with
    | Ast.Eq -> v2 <> v1
    | Ast.Ne -> v2 = v1
    | Ast.Lt -> v2 <= v1
    | Ast.Le -> v2 < v1
    | Ast.Gt -> v2 >= v1
    | Ast.Ge -> v2 > v1)
  | Ast.Lt -> (
    match c2 with
    | Ast.Eq -> v2 < v1
    | Ast.Lt -> v2 <= v1
    | Ast.Le -> v2 < v1
    | Ast.Ne | Ast.Gt | Ast.Ge -> false)
  | Ast.Le -> (
    match c2 with
    | Ast.Eq -> v2 <= v1
    | Ast.Lt -> v2 <= v1 + 1
    | Ast.Le -> v2 <= v1
    | Ast.Ne | Ast.Gt | Ast.Ge -> false)
  | Ast.Gt -> (
    match c2 with
    | Ast.Eq -> v2 > v1
    | Ast.Gt -> v2 >= v1
    | Ast.Ge -> v2 > v1
    | Ast.Ne | Ast.Lt | Ast.Le -> false)
  | Ast.Ge -> (
    match c2 with
    | Ast.Eq -> v2 >= v1
    | Ast.Gt -> v2 >= v1 - 1
    | Ast.Ge -> v2 >= v1
    | Ast.Ne | Ast.Lt | Ast.Le -> false)

(* Sound (adjacency-free) version for string-ordered domains. *)
let str_subset (c2, v2) (c1, v1) =
  match c1 with
  | Ast.Eq -> c2 = Ast.Eq && String.equal v2 v1
  | Ast.Ne -> (
    match c2 with
    | Ast.Eq -> not (String.equal v2 v1)
    | Ast.Ne -> String.equal v2 v1
    | Ast.Lt -> String.compare v2 v1 <= 0
    | Ast.Le -> String.compare v2 v1 < 0
    | Ast.Gt -> String.compare v2 v1 >= 0
    | Ast.Ge -> String.compare v2 v1 > 0)
  | Ast.Lt -> (
    match c2 with
    | Ast.Eq -> String.compare v2 v1 < 0
    | Ast.Lt | Ast.Le -> String.compare v2 v1 < 0 || (c2 = Ast.Lt && String.equal v2 v1)
    | Ast.Ne | Ast.Gt | Ast.Ge -> false)
  | Ast.Le -> (
    match c2 with
    | Ast.Eq | Ast.Le -> String.compare v2 v1 <= 0
    | Ast.Lt -> String.compare v2 v1 <= 0
    | Ast.Ne | Ast.Gt | Ast.Ge -> false)
  | Ast.Gt -> (
    match c2 with
    | Ast.Eq -> String.compare v2 v1 > 0
    | Ast.Gt | Ast.Ge -> String.compare v2 v1 > 0 || (c2 = Ast.Gt && String.equal v2 v1)
    | Ast.Ne | Ast.Lt | Ast.Le -> false)
  | Ast.Ge -> (
    match c2 with
    | Ast.Eq | Ast.Ge -> String.compare v2 v1 >= 0
    | Ast.Gt -> String.compare v2 v1 >= 0
    | Ast.Ne | Ast.Lt | Ast.Le -> false)

let implied_filter (f : Ast.attr_filter) (g : Ast.attr_filter) =
  String.equal f.Ast.attr g.Ast.attr
  &&
  match f.Ast.value, g.Ast.value with
  | Ast.Int v1, Ast.Int v2 -> int_subset (g.Ast.cmp, v2) (f.Ast.cmp, v1)
  | Ast.Str v1, Ast.Str v2 -> str_subset (g.Ast.cmp, v2) (f.Ast.cmp, v1)
  | Ast.Int _, Ast.Str _ | Ast.Str _, Ast.Int _ -> false

(* ------------------------------------------------------------------ *)
(* Attribute filter normalization *)

(* Adjacency: over the integers, x < v iff x <= v - 1, so Lt/Gt filters
   have a Le/Ge spelling with identical semantics (document attribute
   values are compared as parsed integers). Guard the overflow corners. *)
let normalize_attr (f : Ast.attr_filter) =
  match f.Ast.cmp, f.Ast.value with
  | Ast.Lt, Ast.Int v when v > min_int -> { f with Ast.cmp = Ast.Le; value = Ast.Int (v - 1) }
  | Ast.Gt, Ast.Int v when v < max_int -> { f with Ast.cmp = Ast.Ge; value = Ast.Int (v + 1) }
  | _ -> f

let cmp_rank = function
  | Ast.Eq -> 0
  | Ast.Ne -> 1
  | Ast.Le -> 2
  | Ast.Lt -> 3
  | Ast.Ge -> 4
  | Ast.Gt -> 5

let value_key = function Ast.Int n -> 0, n, "" | Ast.Str s -> 1, 0, s

let attr_order (f : Ast.attr_filter) (g : Ast.attr_filter) =
  compare
    (f.Ast.attr, cmp_rank f.Ast.cmp, value_key f.Ast.value)
    (g.Ast.attr, cmp_rank g.Ast.cmp, value_key g.Ast.value)

(* Deduplicate, then drop every filter implied by a surviving sibling: a
   filter goes when another one selects a strictly smaller value set, or
   an equal set with a smaller sort position (the tie-break keeps exactly
   one member of a mutual-implication group). Implication is transitive,
   so a dropped filter is always implied by some kept one. *)
let reduce_attrs fs =
  let fs = List.sort_uniq attr_order (List.map normalize_attr fs) in
  let arr = Array.of_list fs in
  let n = Array.length arr in
  let keep i f =
    let implied = ref false in
    for j = 0 to n - 1 do
      if
        (not !implied) && j <> i
        && implied_filter f arr.(j)
        && ((not (implied_filter arr.(j) f)) || j < i)
      then implied := true
    done;
    not !implied
  in
  List.filteri keep fs

(* ------------------------------------------------------------------ *)
(* Gap collapsing *)

(* A gap is a maximal run of filter-free wildcard steps: pure distance
   constraints between the anchored steps around them. *)
let is_gap (s : Ast.step) = s.Ast.test = Ast.Wildcard && s.Ast.filters = []

let child_wilds k =
  List.init k (fun _ -> { Ast.axis = Ast.Child; test = Ast.Wildcard; filters = [] })

let split_gap steps =
  let rec go acc = function
    | s :: rest when is_gap s -> go (s :: acc) rest
    | rest -> List.rev acc, rest
  in
  go [] steps

(* [collapse_tail steps]: [steps] sits immediately below an anchored
   position (a matched step, or the containing element of a nested
   filter). A trailing gap of k steps demands a node at distance >= k or
   exactly k below the anchor — equivalent existentially, since any deep
   node has an ancestor at the exact distance — so it always becomes k
   child steps. An interior gap with any descendant edge (including the
   following anchor's axis) demands the next anchor at distance >= k + 1,
   spelled as k child wildcards plus a descendant edge into the anchor;
   an all-child interior gap is an exact distance and stays. *)
let rec collapse_tail steps =
  let gap, rest = split_gap steps in
  let k = List.length gap in
  match rest with
  | [] -> child_wilds k
  | b :: tl ->
    let any_desc =
      List.exists (fun (s : Ast.step) -> s.Ast.axis = Ast.Descendant) gap
      || b.Ast.axis = Ast.Descendant
    in
    if k = 0 then b :: collapse_tail tl
    else if any_desc then
      child_wilds k @ ({ b with Ast.axis = Ast.Descendant } :: collapse_tail tl)
    else gap @ (b :: collapse_tail tl)

(* The top of the path is the one place relative/absolute matters. A
   relative path starts at any element (Eval seeds the candidate set with
   every node), which is the absolute-descendant form; an all-wild path
   is a pure depth constraint. A leading gap is exact only when the path
   is absolute and every edge through the gap into the first anchor is a
   child edge. *)
let collapse_path (p : Ast.path) =
  let gap, rest = split_gap p.Ast.steps in
  let k = List.length gap in
  match rest with
  | [] -> { Ast.absolute = true; steps = child_wilds k }
  | b :: tl ->
    let tail = collapse_tail tl in
    let exact =
      p.Ast.absolute
      && List.for_all (fun (s : Ast.step) -> s.Ast.axis = Ast.Child) gap
      && b.Ast.axis = Ast.Child
    in
    if exact then { Ast.absolute = true; steps = gap @ (b :: tail) }
    else
      {
        Ast.absolute = true;
        steps = child_wilds k @ ({ b with Ast.axis = Ast.Descendant } :: tail);
      }

(* ------------------------------------------------------------------ *)
(* Putting it together *)

let rec normalize_step (s : Ast.step) =
  let attrs, nested =
    List.partition_map
      (function Ast.Attr f -> Either.Left f | Ast.Nested p -> Either.Right p)
      s.Ast.filters
  in
  let attrs = reduce_attrs attrs in
  let nested = List.sort_uniq Ast.compare (List.map normalize_nested nested) in
  {
    s with
    Ast.filters =
      List.map (fun f -> Ast.Attr f) attrs @ List.map (fun p -> Ast.Nested p) nested;
  }

(* A nested path is evaluated from its containing element — the element
   is a virtual anchor above the first step (Eval ignores a nested path's
   [absolute] flag), so its leading gap follows the interior rule and no
   relative-to-absolute rewrite applies. *)
and normalize_nested (p : Ast.path) =
  { Ast.absolute = false; steps = collapse_tail (List.map normalize_step p.Ast.steps) }

let normalize (p : Ast.path) =
  match p.Ast.steps with
  | [] -> p
  | _ -> collapse_path { p with Ast.steps = List.map normalize_step p.Ast.steps }

let key p = Parser.to_string (normalize p)
