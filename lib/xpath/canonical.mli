(** Canonicalization of XPath expressions: a normal form under which
    semantically equal expressions become structurally equal.

    [normalize] rewrites an expression without changing its match
    semantics (existential matching over documents, {!Eval.matches}):

    - a relative path is rewritten to an absolute path whose first step
      uses the descendant axis ([a/b] -> [//a/b]) — {!Eval} starts a
      relative path at any element, which is exactly what [//] means;
    - maximal runs of filter-free wildcard steps ("gaps") collapse into
      length constraints: a trailing gap always becomes child-axis steps
      ([a//*//*] -> [a/*/*] — in a tree, a descendant at depth >= k
      exists iff one at depth exactly k does), and an interior gap with
      any descendant edge becomes child-axis steps with the descendant
      axis pushed onto the following anchored step ([a//*/b] ->
      [a/*//b]); all-child gaps are exact-depth constraints and stay;
    - integer comparisons are normalized by adjacency
      ([@x < 5] -> [@x <= 4], [@x > 4] -> [@x >= 5]);
    - each step's attribute filters are deduplicated, filters implied by
      a sibling filter are dropped ([@x >= 3][@x >= 5] -> [@x >= 5]),
      and the survivors are sorted;
    - nested path filters are normalized recursively (without the
      relative-to-absolute rewrite: a nested path is anchored at its
      containing element, so its leading gap is an interior gap) and
      sorted.

    Normalization is idempotent, never moves a filter onto a wildcard
    step, and preserves {!Ast.is_single_path} — an expression accepted
    by an engine stays accepted in canonical form. The property suite
    pins idempotence and semantics preservation against {!Eval}. *)

val normalize : Ast.path -> Ast.path
(** The canonical form. [Eval.matches p d = Eval.matches (normalize p) d]
    for every document [d], and [normalize (normalize p) = normalize p]. *)

val key : Ast.path -> string
(** [Parser.to_string (normalize p)] — the hash-consing key used by the
    subsumption index's shape table. *)

(** {1 Filter implication}

    The single-filter implication primitives (shared with
    [Pf_core.Containment], which re-exports {!implied_filter}). *)

val implied_filter : Ast.attr_filter -> Ast.attr_filter -> bool
(** [implied_filter f g]: does filter [g] (on the same step) imply filter
    [f]? Sound and complete for integer comparisons on one attribute;
    filters on different attributes never imply each other. *)

val int_subset : Ast.comparison * int -> Ast.comparison * int -> bool
(** [int_subset (c2, v2) (c1, v1)]: is the integer set selected by
    [(c2, v2)] contained in the one selected by [(c1, v1)]? Exploits
    adjacency ([x < v] iff [x <= v - 1]). *)

val str_subset : Ast.comparison * string -> Ast.comparison * string -> bool
(** The string-ordered counterpart of {!int_subset} (adjacency-free,
    sound). *)
