let src = Logs.Src.create "predfilter.net" ~doc:"Broker wire server"

module Log = (val Logs.src_log src : Logs.LOG)
module Broker = Pf_broker.Broker
module Registry = Pf_obs.Registry

type listen = Unix_sock of string | Tcp of string * int

let pp_listen fmt = function
  | Unix_sock path -> Format.fprintf fmt "unix:%s" path
  | Tcp (host, port) -> Format.fprintf fmt "tcp:%s:%d" host port

let listen_of_string s =
  match String.index_opt s ':' with
  | None -> Ok (Unix_sock s)
  | Some i -> (
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match scheme with
      | "unix" -> Ok (Unix_sock rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> Error (Printf.sprintf "tcp address %S needs host:port" rest)
          | Some j -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some p when p >= 0 && p < 65536 -> Ok (Tcp (host, p))
              | _ -> Error (Printf.sprintf "bad port %S" port)))
      | _ -> Ok (Unix_sock s))

type config = {
  listen : listen;
  data_dir : string option;
  snapshot_every : int;
  filter : Pf_intf.filter;
  covering_suppression : bool;
  mode : Pf_service.mode;
  domains : int;
  batch : int;
  validate_documents : bool;
  send_timeout : float;
  server_name : string;
}

let config ?data_dir ?(snapshot_every = 1024)
    ?(filter = (Pf_core.Engine.filter ~dedup_paths:true () :> Pf_intf.filter))
    ?(covering_suppression = true) ?(mode = Pf_service.Doc) ?(domains = 1) ?(batch = 8)
    ?(validate_documents = true) ?(send_timeout = 15.) ?(server_name = "pf-broker") listen =
  { listen; data_dir; snapshot_every; filter; covering_suppression; mode; domains; batch;
    validate_documents; send_timeout; server_name }

type metrics = {
  c_connections : Pf_obs.Counter.t;
  c_frames_in : Pf_obs.Counter.t;
  c_frames_out : Pf_obs.Counter.t;
  c_bytes_in : Pf_obs.Counter.t;
  c_bytes_out : Pf_obs.Counter.t;
  c_publishes : Pf_obs.Counter.t;
  c_mutations : Pf_obs.Counter.t;
  c_proto_errors : Pf_obs.Counter.t;
  c_send_errors : Pf_obs.Counter.t;
  c_bad_documents : Pf_obs.Counter.t;
  g_open : Pf_obs.Gauge.t;
  g_wal_bytes : Pf_obs.Gauge.t;
  q_latency : Pf_obs.Qhist.t;
}

let make_metrics reg =
  let c name help = Pf_obs.Counter.make ~registry:reg ~help name in
  {
    c_connections = c "net_connections" "connections accepted";
    c_frames_in = c "net_frames_in" "frames received";
    c_frames_out = c "net_frames_out" "frames sent";
    c_bytes_in = c "net_bytes_in" "bytes received";
    c_bytes_out = c "net_bytes_out" "bytes sent";
    c_publishes = c "net_publishes" "publish commands received";
    c_mutations = c "net_mutations" "mutation commands applied";
    c_proto_errors = c "net_protocol_errors" "connections dropped for protocol violations";
    c_send_errors = c "net_send_errors" "frames lost to dead peer sockets";
    c_bad_documents = c "net_bad_documents" "publishes rejected as malformed XML";
    g_open =
      Pf_obs.Gauge.make ~registry:reg ~help:"connections currently open"
        ~merge:Pf_obs.Gauge.Sum "net_connections_open";
    g_wal_bytes =
      Pf_obs.Gauge.make ~registry:reg ~help:"write-ahead log size" ~merge:Pf_obs.Gauge.Max
        "net_wal_bytes";
    q_latency =
      Pf_obs.Qhist.make ~registry:reg ~help:"publish submit-to-resolution latency"
        "net_publish_latency_ns";
  }

type conn = {
  fd : Unix.file_descr;
  peer : string;
  wlock : Mutex.t;  (* reader thread and worker domains both send *)
  mutable ns : string;
  mutable greeted : bool;
  mutable alive : bool;
  ilock : Mutex.t;
  icond : Condition.t;
  mutable inflight : int;  (* publishes submitted, results not yet sent *)
}

type t = {
  cfg : config;
  lsock : Unix.file_descr;
  resolved : listen;
  svc : Pf_service.t;
  b : Broker.t;
  st : Store.t option;
  store_lock : Mutex.t;  (* serializes apply + WAL append across connections *)
  reg : Registry.t;
  m : metrics;
  conns_lock : Mutex.t;
  mutable conns : (conn * Thread.t) list;
  running : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  stop_lock : Mutex.t;
  mutable stopped : bool;
}

(* {1 Sending} *)

let write_all fd bytes len =
  let rec go off = if off < len then go (off + Unix.write fd bytes off (len - off)) in
  go 0

let send t conn ~req_id msg =
  let buf = Buffer.create 128 in
  Wire.encode buf ~req_id msg;
  let bytes = Buffer.to_bytes buf in
  Mutex.lock conn.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wlock)
    (fun () ->
      if conn.alive then
        try
          write_all conn.fd bytes (Bytes.length bytes);
          Pf_obs.Counter.incr t.m.c_frames_out;
          Pf_obs.Counter.add t.m.c_bytes_out (Bytes.length bytes)
        with Unix.Unix_error _ | Sys_error _ ->
          (* peer went away mid-delivery; the reader thread notices on
             its next read and tears the connection down *)
          conn.alive <- false;
          Pf_obs.Counter.incr t.m.c_send_errors)

(* {1 Command handling} *)

(* Commands with an empty namespace inherit the connection's HELLO
   namespace; an explicit namespace wins (multi-tenant clients can proxy
   for several tenants over one connection). *)
let scoped conn (cmd : Broker.command) : Broker.command =
  match cmd with
  | Broker.Subscribe { ns = ""; subscriber; expr } ->
      Broker.Subscribe { ns = conn.ns; subscriber; expr }
  | Broker.Unsubscribe { ns = ""; id } -> Broker.Unsubscribe { ns = conn.ns; id }
  | Broker.Drop_subscriber { ns = ""; subscriber } ->
      Broker.Drop_subscriber { ns = conn.ns; subscriber }
  | Broker.Publish { ns = ""; doc } -> Broker.Publish { ns = conn.ns; doc }
  | cmd -> cmd

let handle_mutation t conn ~req_id cmd =
  Pf_obs.Counter.incr t.m.c_mutations;
  let events =
    Mutex.lock t.store_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.store_lock)
      (fun () ->
        match t.st with
        | Some st ->
            let events = Store.log st cmd in
            Pf_obs.Gauge.set t.m.g_wal_bytes (float_of_int (Store.wal_size st));
            events
        | None -> Broker.apply t.b cmd)
  in
  List.iter (fun e -> send t conn ~req_id (Wire.Event e)) events

let handle_publish t conn ~req_id ~ns doc =
  Pf_obs.Counter.incr t.m.c_publishes;
  let deliver sids t0 =
    let deliveries = Broker.deliveries_of_sids t.b ~ns sids in
    Broker.count_publish t.b ~deliveries:(List.length deliveries);
    Pf_obs.Qhist.observe t.m.q_latency
      (Int64.to_int (Int64.sub (Registry.now_ns ()) t0));
    send t conn ~req_id (Wire.Event (Broker.Delivered { deliveries }));
    Mutex.lock conn.ilock;
    conn.inflight <- conn.inflight - 1;
    Condition.broadcast conn.icond;
    Mutex.unlock conn.ilock
  in
  let submit_checked f =
    Mutex.lock conn.ilock;
    conn.inflight <- conn.inflight + 1;
    Mutex.unlock conn.ilock;
    match f () with
    | () -> ()
    | exception e ->
        Mutex.lock conn.ilock;
        conn.inflight <- conn.inflight - 1;
        Condition.broadcast conn.icond;
        Mutex.unlock conn.ilock;
        raise e
  in
  if t.cfg.validate_documents then
    match Pf_xml.Sax.parse_document doc with
    | tree ->
        let t0 = Registry.now_ns () in
        submit_checked (fun () -> Pf_service.submit t.svc tree (fun sids -> deliver sids t0))
    | exception Pf_xml.Sax.Parse_error (_, msg) ->
        Pf_obs.Counter.incr t.m.c_bad_documents;
        send t conn ~req_id (Wire.Event (Broker.Failed { error = Pf_intf.Bad_document msg }))
  else begin
    let t0 = Registry.now_ns () in
    submit_checked (fun () -> Pf_service.submit_raw t.svc doc (fun sids -> deliver sids t0))
  end

exception Protocol of Wire.error

let handle_frame t conn ~req_id msg =
  match msg with
  | Wire.Hello { version; ns } ->
      if version <> Wire.version then
        raise (Protocol { offset = 0; reason = Printf.sprintf "unsupported version %d" version });
      conn.ns <- ns;
      conn.greeted <- true;
      send t conn ~req_id (Wire.Welcome { version = Wire.version; server = t.cfg.server_name })
  | _ when not conn.greeted ->
      raise (Protocol { offset = 0; reason = "first frame must be HELLO" })
  | Wire.Command cmd -> (
      match scoped conn cmd with
      | Broker.Publish { ns; doc } -> handle_publish t conn ~req_id ~ns doc
      | cmd -> handle_mutation t conn ~req_id cmd)
  | Wire.Welcome _ | Wire.Event _ ->
      raise (Protocol { offset = 0; reason = "client sent a server-side frame" })

(* {1 Connection reader} *)

let drain_inflight conn =
  Mutex.lock conn.ilock;
  while conn.inflight > 0 do
    Condition.wait conn.icond conn.ilock
  done;
  Mutex.unlock conn.ilock

let reader_loop t conn =
  let buf = ref (Bytes.create 8192) in
  let start = ref 0 in
  (* consumed prefix *)
  let fill = ref 0 in
  (* filled extent *)
  let eof = ref false in
  (try
     while conn.alive && not !eof do
       match Wire.decode !buf ~off:!start ~len:!fill with
       | `Frame (consumed, req_id, msg) ->
           Pf_obs.Counter.incr t.m.c_frames_in;
           start := !start + consumed;
           handle_frame t conn ~req_id msg
       | `Error e -> raise (Protocol e)
       | `Need n ->
           (* compact, grow if the frame cannot fit, then read *)
           if !start > 0 then begin
             Bytes.blit !buf !start !buf 0 (!fill - !start);
             fill := !fill - !start;
             start := 0
           end;
           if !fill + n > Bytes.length !buf then begin
             let bigger = Bytes.create (max (!fill + n) (2 * Bytes.length !buf)) in
             Bytes.blit !buf 0 bigger 0 !fill;
             buf := bigger
           end;
           let got = Unix.read conn.fd !buf !fill (Bytes.length !buf - !fill) in
           if got = 0 then eof := true
           else begin
             fill := !fill + got;
             Pf_obs.Counter.add t.m.c_bytes_in got
           end
     done
   with
  | Protocol e ->
      Pf_obs.Counter.incr t.m.c_proto_errors;
      Log.warn (fun m -> m "%s: protocol error %a, closing" conn.peer Wire.pp_error e);
      send t conn ~req_id:0
        (Wire.Event
           (Broker.Failed
              { error = Pf_intf.Protocol_error (Format.asprintf "%a" Wire.pp_error e) }))
  | Unix.Unix_error (err, _, _) ->
      Log.debug (fun m -> m "%s: read error %s" conn.peer (Unix.error_message err))
  | e ->
      (* anything else (a decoder bug, an engine failure) must still fall
         through to the cleanup below, or the fd and conns entry leak *)
      Pf_obs.Counter.incr t.m.c_proto_errors;
      Log.warn (fun m -> m "%s: connection failed: %s, closing" conn.peer (Printexc.to_string e)));
  (* let in-flight publishes resolve before the write side goes away *)
  drain_inflight conn;
  Mutex.lock conn.wlock;
  conn.alive <- false;
  Mutex.unlock conn.wlock;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.lock t.conns_lock;
  t.conns <- List.filter (fun (c, _) -> c != conn) t.conns;
  (* the gauge mirrors the list it is updated under: no read-modify-write
     race with the accept thread *)
  Pf_obs.Gauge.set t.m.g_open (float_of_int (List.length t.conns));
  Mutex.unlock t.conns_lock

let accept_loop t =
  while Atomic.get t.running do
    (* select with a timeout rather than a bare accept: closing the
       listener does not wake a thread blocked in accept on Linux, so
       stop relies on this loop observing the flag *)
    match Unix.select [ t.lsock ] [] [] 0.25 with
    | [], _, _ -> ()
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | _ :: _, _, _ -> (
        match Unix.accept t.lsock with
        | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
        (* listener closed by stop *)
        | exception Unix.Unix_error (err, _, _) ->
            if Atomic.get t.running then
              Log.warn (fun m -> m "accept failed: %s" (Unix.error_message err))
        | fd, addr ->
        let peer =
          match addr with
          | Unix.ADDR_UNIX _ -> "unix-peer"
          | Unix.ADDR_INET (host, port) ->
              Printf.sprintf "%s:%d" (Unix.string_of_inet_addr host) port
        in
        (* bound blocked sends so a peer that stops reading cannot wedge a
           worker domain (and thereby shutdown) forever; a timed-out write
           raises and the connection is marked dead like any send error *)
        if t.cfg.send_timeout > 0. then
          (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.send_timeout
           with Unix.Unix_error _ | Invalid_argument _ -> ());
        let conn =
          { fd; peer; wlock = Mutex.create (); ns = Broker.default_ns; greeted = false;
            alive = true; ilock = Mutex.create (); icond = Condition.create (); inflight = 0 }
        in
        Pf_obs.Counter.incr t.m.c_connections;
        (* spawn under conns_lock: the reader's cleanup also takes it, so
           the conn is in the list (and counted) before it can remove
           itself — no ghost entry when a connection dies instantly *)
        Mutex.lock t.conns_lock;
        let thr = Thread.create (fun () -> reader_loop t conn) () in
        t.conns <- (conn, thr) :: t.conns;
        Pf_obs.Gauge.set t.m.g_open (float_of_int (List.length t.conns));
        Mutex.unlock t.conns_lock)
  done

(* {1 Lifecycle} *)

let service_port svc =
  {
    Broker.port_subscribe = Pf_service.subscribe svc;
    port_unsubscribe = Pf_service.unsubscribe svc;
    port_match =
      (fun doc ->
        match Pf_service.filter_batch svc [ doc ] with [ r ] -> r | _ -> assert false);
    port_match_string =
      (fun s ->
        match Pf_service.filter_batch_raw svc [ s ] with [ r ] -> r | _ -> assert false);
    (* worker replicas are only quiescent at shutdown, so there is no
       one registry to hand out while serving *)
    port_engine_metrics = (fun () -> None);
  }

let bind_listen = function
  | Unix_sock path ->
      (match Unix.stat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> (try Unix.unlink path with Unix.Unix_error _ -> ())
      | _ -> ()
      | exception Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, Unix_sock path)
  | Tcp (host, port) ->
      let addr =
        if host = "" || host = "*" then Unix.inet_addr_any
        else try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      let resolved =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (a, p) -> Tcp (Unix.string_of_inet_addr a, p)
        | _ -> Tcp (host, port)
      in
      (fd, resolved)

let start cfg =
  let svc = Pf_service.create ~mode:cfg.mode ~domains:cfg.domains ~batch:cfg.batch cfg.filter in
  let make_broker () =
    Broker.create_over ~covering_suppression:cfg.covering_suppression (service_port svc)
  in
  let st, b =
    match cfg.data_dir with
    | Some dir ->
        let st = Store.open_store ~snapshot_every:cfg.snapshot_every ~dir make_broker in
        (Some st, Store.broker st)
    | None -> (None, make_broker ())
  in
  let lsock, resolved = bind_listen cfg.listen in
  let reg = Registry.create "net" in
  let m = make_metrics reg in
  (match st with
  | Some st -> Pf_obs.Gauge.set m.g_wal_bytes (float_of_int (Store.wal_size st))
  | None -> ());
  let t =
    { cfg; lsock; resolved; svc; b; st; store_lock = Mutex.create (); reg; m;
      conns_lock = Mutex.create (); conns = []; running = Atomic.make true;
      accept_thread = None; stop_lock = Mutex.create (); stopped = false }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  Log.info (fun m -> m "listening on %a" pp_listen resolved);
  t

let listen_address t = t.resolved
let broker t = t.b
let store t = t.st
let metrics t = t.reg

let stop t =
  let first =
    Mutex.lock t.stop_lock;
    let first = not t.stopped in
    t.stopped <- true;
    Mutex.unlock t.stop_lock;
    first
  in
  if first then begin
    Atomic.set t.running false;
    (try Unix.close t.lsock with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some thr -> Thread.join thr | None -> ());
    (* half-close: readers see EOF, wait out their in-flight publishes
       (results still flow on the write side), then close *)
    let conns =
      Mutex.lock t.conns_lock;
      let cs = t.conns in
      Mutex.unlock t.conns_lock;
      cs
    in
    List.iter
      (fun (conn, _) ->
        try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      conns;
    List.iter (fun (_, thr) -> Thread.join thr) conns;
    (try Pf_service.shutdown t.svc
     with Pf_xml.Sax.Parse_error (_, msg) ->
       Log.warn (fun m -> m "unvalidated malformed document in stream: %s" msg));
    (match t.st with
    | Some st ->
        Mutex.lock t.store_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.store_lock)
          (fun () ->
            Store.snapshot_now st;
            Store.close st)
    | None -> ());
    match t.resolved with
    | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ()
  end
