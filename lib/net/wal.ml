let src = Logs.Src.create "predfilter.wal" ~doc:"Broker write-ahead log"

module Log = (val Logs.src_log src : Logs.LOG)

let magic = "PFWAL\x00\x00\x01"
let header_len = String.length magic

type t = {
  fd : Unix.file_descr;
  path : string;
  mutable seq : int;  (* last sequence number written or recovered *)
  mutable file_len : int;
}

let write_all fd bytes =
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then
      let n = Unix.write fd bytes off (len - off) in
      go (off + n)
  in
  go 0

let read_file fd =
  let len = (Unix.fstat fd).Unix.st_size in
  let buf = Bytes.create len in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET : int);
  let rec go off =
    if off < len then begin
      let n = Unix.read fd buf off (len - off) in
      if n = 0 then off else go (off + n)
    end
    else off
  in
  let got = go 0 in
  if got < len then Bytes.sub buf 0 got else buf

(* Validate [buf] front to back; return (records, valid_length, last_seq). *)
let scan path buf =
  let len = Bytes.length buf in
  let records = ref [] in
  let last_seq = ref 0 in
  let pos = ref header_len in
  let valid = ref header_len in
  let stop reason =
    Log.warn (fun m ->
        m "%s: truncating invalid tail at byte %d (%s), keeping %d record(s)" path !pos reason
          (List.length !records));
    raise Exit
  in
  (try
     if len < header_len || Bytes.sub_string buf 0 header_len <> magic then begin
       if len > 0 then
         Log.warn (fun m -> m "%s: bad or missing header, starting a fresh log" path);
       raise Exit
     end;
     while !pos < len do
       let start = !pos in
       if start + 8 > len then stop "torn record header";
       let r = Wire.Prim.reader buf ~pos:start ~limit:len in
       let rlen = Wire.Prim.u32 r ~what:"record length" in
       let crc = Wire.Prim.u32 r ~what:"record crc" in
       let body = start + 8 in
       if rlen <= 0 || body + rlen > len then stop "torn record body";
       if Wire.crc32 buf ~pos:body ~len:rlen <> crc then stop "crc mismatch";
       let br = Wire.Prim.reader buf ~pos:body ~limit:(body + rlen) in
       (match
          let seq = Wire.Prim.varint br ~what:"record seq" in
          (seq, Wire.decode_command buf ~pos:(Wire.Prim.pos br) ~limit:(body + rlen))
        with
       | seq, Ok (cmd, _) ->
           if seq <= !last_seq then stop "sequence number not increasing";
           records := (seq, cmd) :: !records;
           last_seq := seq
       | _, Error e -> stop (Format.asprintf "%a" Wire.pp_error e)
       | exception Wire.Prim.Short (_, what) -> stop ("record truncates " ^ what));
       pos := body + rlen;
       valid := !pos
     done
   with Exit -> ());
  (List.rev !records, !valid, !last_seq)

let open_log path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let buf = read_file fd in
  let records, valid, last_seq = scan path buf in
  let header_ok =
    Bytes.length buf >= header_len && Bytes.sub_string buf 0 header_len = magic
  in
  if not header_ok then begin
    (* empty file, or a corrupt header scan just discarded: rewrite the
       magic so appends land after a valid header — appending after
       garbage would make every fsync'd record invisible to recovery *)
    ignore (Unix.lseek fd 0 Unix.SEEK_SET : int);
    Unix.ftruncate fd 0;
    write_all fd (Bytes.of_string magic);
    Unix.fsync fd
  end
  else if valid < Bytes.length buf then begin
    Unix.ftruncate fd valid;
    Unix.fsync fd
  end;
  let file_len = if header_ok then valid else header_len in
  ignore (Unix.lseek fd file_len Unix.SEEK_SET : int);
  ({ fd; path; seq = last_seq; file_len }, records)

let next_seq t = t.seq + 1
let last_seq t = t.seq

let append t cmd =
  let seq = t.seq + 1 in
  let payload = Buffer.create 64 in
  Wire.Prim.put_varint payload seq;
  Wire.encode_command payload cmd;
  let plen = Buffer.length payload in
  let record = Buffer.create (plen + 8) in
  Wire.Prim.put_u32 record plen;
  let pbytes = Buffer.to_bytes payload in
  Wire.Prim.put_u32 record (Wire.crc32 pbytes ~pos:0 ~len:plen);
  Buffer.add_bytes record pbytes;
  write_all t.fd (Buffer.to_bytes record);
  t.seq <- seq;
  t.file_len <- t.file_len + plen + 8;
  seq

let sync t = Unix.fsync t.fd

let reset t =
  Unix.ftruncate t.fd header_len;
  ignore (Unix.lseek t.fd header_len Unix.SEEK_SET : int);
  t.file_len <- header_len;
  Unix.fsync t.fd

let size t = t.file_len
let close t = Unix.close t.fd
