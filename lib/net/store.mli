(** Durable broker state: snapshot + write-ahead-log tail.

    The store owns a {!Pf_broker.Broker.t} and a data directory holding

    - [broker.snap] — the most recent {!Pf_broker.Broker.snapshot},
      written atomically (tmp file, fsync, rename, directory fsync) and
      stamped with the WAL sequence number it covers;
    - [broker.wal] — successful subscription mutations appended and
      fsync'd {e after} they were applied, each stamped with an
      ever-increasing sequence number ({!Pf_net.Wal}).

    {!open_store} recovers: load the snapshot if present and valid,
    then replay WAL records with sequence numbers beyond the snapshot's.
    A crash anywhere — mid-record, between snapshot rename and WAL
    truncation, mid-snapshot-write — recovers to exactly the state of
    the last synced mutation, because replay is deterministic
    (documented on {!Pf_broker.Broker.apply}) and the WAL is only
    truncated after the covering snapshot is on disk; records whose
    sequence the snapshot already covers are skipped on replay, so the
    rename-then-truncate window is safe.

    Every [snapshot_every] logged mutations the store snapshots and
    truncates the log, bounding both file size and recovery time. *)

type t

val open_store :
  ?snapshot_every:int -> dir:string -> (unit -> Pf_broker.Broker.t) -> t
(** [open_store ~dir make] creates [dir] if needed, builds a fresh
    broker with [make] (which must return an {e empty} broker — the
    store loads state into it) and recovers snapshot + WAL tail.
    [snapshot_every] defaults to 1024 mutations; it counts mutations
    logged since the last snapshot, so recovery replays at most that
    many records. *)

val broker : t -> Pf_broker.Broker.t

val log : t -> Pf_broker.Broker.command -> Pf_broker.Broker.event list
(** Apply one command; if it is a successful mutation, append it to the
    WAL and fsync before returning (write-behind of the in-memory apply,
    but ahead of the caller's reply — a client that saw the ack will see
    the subscription after a crash). [Publish] and failed commands pass
    through unlogged. Not itself thread-safe: callers serialize (the
    server holds one store lock across mutations). *)

val wal_seq : t -> int
(** Sequence number of the last logged mutation. *)

val snapshot_now : t -> unit
(** Force a snapshot + WAL truncation. *)

val snapshots_taken : t -> int
val recovered_records : t -> int
(** How many WAL records the opening recovery replayed. *)

val wal_size : t -> int
(** Current WAL file size in bytes (observability: exported by the
    server as a gauge). *)

val close : t -> unit
(** Close file handles. Does {e not} snapshot; call {!snapshot_now}
    first for a fast next recovery. *)

(** {1 Snapshot codec} — exposed for the crash-recovery property tests *)

val encode_snapshot : seq:int -> Pf_broker.Broker.snapshot -> Bytes.t
val decode_snapshot : Bytes.t -> (int * Pf_broker.Broker.snapshot, string) result
(** Returns [(covered_seq, snapshot)]; [Error] on bad magic, bad CRC or
    malformed payload — recovery treats all three as "no snapshot". *)
