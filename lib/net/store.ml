let src = Logs.Src.create "predfilter.store" ~doc:"Broker durability store"

module Log = (val Logs.src_log src : Logs.LOG)
module Broker = Pf_broker.Broker

let snap_magic = "PFSNAP\x00\x01"

type t = {
  dir : string;
  b : Broker.t;
  wal : Wal.t;
  snapshot_every : int;
  mutable muts_since_snap : int;
  mutable taken : int;
  recovered : int;
}

let snap_path dir = Filename.concat dir "broker.snap"
let wal_path dir = Filename.concat dir "broker.wal"

(* {1 Snapshot codec} *)

let encode_snapshot ~seq (s : Broker.snapshot) =
  let payload = Buffer.create 256 in
  let open Wire.Prim in
  put_varint payload seq;
  put_varint payload s.Broker.snap_next_id;
  put_varint payload (List.length s.Broker.snap_subs);
  List.iter
    (fun (r : Broker.sub_record) ->
      put_varint payload r.Broker.sr_id;
      put_str payload r.Broker.sr_ns;
      put_str payload r.Broker.sr_subscriber;
      put_str payload r.Broker.sr_expr;
      match r.Broker.sr_suppressed_by with
      | None -> put_u8 payload 0
      | Some by ->
          put_u8 payload 1;
          put_varint payload by)
    s.Broker.snap_subs;
  let plen = Buffer.length payload in
  let out = Buffer.create (plen + 16) in
  Buffer.add_string out snap_magic;
  put_u32 out plen;
  let pbytes = Buffer.to_bytes payload in
  put_u32 out (Wire.crc32 pbytes ~pos:0 ~len:plen);
  Buffer.add_bytes out pbytes;
  Buffer.to_bytes out

let decode_snapshot buf =
  let open Wire.Prim in
  let mlen = String.length snap_magic in
  if Bytes.length buf < mlen + 8 then Error "snapshot too short"
  else if Bytes.sub_string buf 0 mlen <> snap_magic then Error "bad snapshot magic"
  else
    let hr = reader buf ~pos:mlen ~limit:(Bytes.length buf) in
    match
      let plen = u32 hr ~what:"payload length" in
      let crc = u32 hr ~what:"payload crc" in
      let body = pos hr in
      if body + plen <> Bytes.length buf then Error "snapshot length mismatch"
      else if Wire.crc32 buf ~pos:body ~len:plen <> crc then Error "snapshot crc mismatch"
      else begin
        let r = reader buf ~pos:body ~limit:(body + plen) in
        let seq = varint r ~what:"covered seq" in
        let snap_next_id = varint r ~what:"next id" in
        let n = varint r ~what:"subscription count" in
        let snap_subs =
          List.init n (fun _ ->
              let sr_id = varint r ~what:"sub id" in
              let sr_ns = str r ~what:"sub ns" in
              let sr_subscriber = str r ~what:"sub subscriber" in
              let sr_expr = str r ~what:"sub expr" in
              let sr_suppressed_by =
                if u8 r ~what:"suppressed flag" = 0 then None
                else Some (varint r ~what:"suppressed by")
              in
              { Broker.sr_id; sr_ns; sr_subscriber; sr_expr; sr_suppressed_by })
        in
        if pos r <> body + plen then Error "trailing bytes in snapshot payload"
        else Ok (seq, { Broker.snap_next_id; snap_subs })
      end
    with
    | result -> result
    | exception Short (_, what) -> Error ("snapshot truncates " ^ what)

(* {1 File helpers} *)

let read_whole path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          let buf = Bytes.create len in
          really_input ic buf 0 len;
          Some buf)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let write_atomic ~dir path bytes =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let len = Bytes.length bytes in
      let rec go off =
        if off < len then go (off + Unix.write fd bytes off (len - off))
      in
      go 0;
      Unix.fsync fd);
  Unix.rename tmp path;
  fsync_dir dir

(* {1 Store} *)

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let open_store ?(snapshot_every = 1024) ~dir make =
  if snapshot_every < 1 then invalid_arg "Store.open_store: snapshot_every < 1";
  mkdir_p dir;
  let b = make () in
  let snap_seq =
    match read_whole (snap_path dir) with
    | None -> 0
    | Some buf -> (
        match decode_snapshot buf with
        | Ok (seq, snap) ->
            Broker.load_snapshot b snap;
            Log.info (fun m ->
                m "%s: loaded snapshot covering seq %d (%d subscription(s))" dir seq
                  (List.length snap.Broker.snap_subs));
            seq
        | Error reason ->
            Log.warn (fun m -> m "%s: ignoring snapshot: %s" dir reason);
            0)
  in
  let wal, records = Wal.open_log (wal_path dir) in
  let replayed = ref 0 in
  List.iter
    (fun (seq, cmd) ->
      if seq > snap_seq then begin
        incr replayed;
        let events = Broker.apply b cmd in
        List.iter
          (function
            | Broker.Failed { error } ->
                (* A logged mutation succeeded when written; failing on
                   replay means the snapshot/log pair is inconsistent. *)
                Log.err (fun m ->
                    m "%s: WAL seq %d failed on replay (%a) — state may be stale" dir seq
                      Pf_intf.pp_error error)
            | _ -> ())
          events
      end)
    records;
  if !replayed > 0 then
    Log.info (fun m -> m "%s: replayed %d WAL record(s) past seq %d" dir !replayed snap_seq);
  { dir; b; wal; snapshot_every; muts_since_snap = !replayed; taken = 0; recovered = !replayed }

let broker t = t.b
let wal_seq t = Wal.last_seq t.wal
let snapshots_taken t = t.taken
let recovered_records t = t.recovered
let wal_size t = Wal.size t.wal

let snapshot_now t =
  let snap = Broker.snapshot t.b in
  let seq = Wal.last_seq t.wal in
  write_atomic ~dir:t.dir (snap_path t.dir) (encode_snapshot ~seq snap);
  (* The snapshot is durable; the log records it covers are redundant.
     A crash before this truncate is fine: recovery skips seq <= snap. *)
  Wal.reset t.wal;
  t.muts_since_snap <- 0;
  t.taken <- t.taken + 1;
  Log.debug (fun m -> m "%s: snapshot at seq %d" t.dir seq)

let log t cmd =
  let events = Broker.apply t.b cmd in
  let failed = List.exists (function Broker.Failed _ -> true | _ -> false) events in
  if Broker.is_mutation cmd && not failed then begin
    ignore (Wal.append t.wal cmd : int);
    Wal.sync t.wal;
    t.muts_since_snap <- t.muts_since_snap + 1;
    if t.muts_since_snap >= t.snapshot_every then snapshot_now t
  end;
  events

let close t = Wal.close t.wal
