(** The broker's binary wire protocol.

    One serialization for two consumers: socket frames ({!Pf_net.Server},
    {!Pf_net.Client}) and the durability log ({!Pf_net.Wal} records the
    {!Pf_broker.Broker.command} payload encoding verbatim), so a WAL
    replay and a wire replay are byte-for-byte the same command stream.

    {2 Frame layout}

    {v
    offset  size  field
    0       4     u32 BE  n — bytes following this field (6 + payload)
    4       1     u8      protocol version (= {!version})
    5       1     u8      message tag
    6       4     u32 BE  request id (echoed verbatim in responses)
    10      n-6           payload
    v}

    Payload scalars are unsigned LEB128 varints; strings are a varint
    byte length followed by the bytes (no terminator). Tags: 1 HELLO,
    2 WELCOME, 3 SUBSCRIBE, 4 UNSUBSCRIBE, 5 DROP_SUBSCRIBER, 6 PUBLISH,
    16 SUBSCRIBED, 17 UNSUBSCRIBED, 18 DROPPED, 19 RESULTS, 20 ERROR.

    {!decode} is incremental and exact: a buffer holding less than one
    frame reports how many bytes are still missing ([`Need]); a complete
    frame whose declared length cuts a payload field short, or leaves
    bytes unconsumed, is rejected with the exact byte offset of the
    violation — the property the codec test suite pins. *)

val version : int
(** Wire protocol version, 1. *)

val max_frame : int
(** Upper bound on the frame length field [n] (16 MiB): anything larger
    is rejected before buffering, so a corrupt length cannot make a
    reader allocate unboundedly. *)

type msg =
  | Hello of { version : int; ns : string }
      (** first client frame: protocol version and the connection's
          default namespace (multi-tenancy) *)
  | Welcome of { version : int; server : string }
  | Command of Pf_broker.Broker.command
  | Event of Pf_broker.Broker.event

type error = { offset : int; reason : string }
(** [offset] is absolute in the buffer handed to {!decode}. *)

val pp_error : Format.formatter -> error -> unit

val encode : Buffer.t -> req_id:int -> msg -> unit
(** Append one complete frame. [req_id] must fit in 32 bits. *)

val decode :
  Bytes.t -> off:int -> len:int ->
  [ `Need of int  (** this many more bytes before the frame completes *)
  | `Frame of int * int * msg  (** (bytes consumed, request id, message) *)
  | `Error of error ]
(** Decode the frame starting at [off]; [len] is the buffer's filled
    extent ([len - off] bytes are readable). Never raises. *)

(** {1 Payload primitives}

    Exposed for the WAL and snapshot files, which reuse the payload
    encoding under their own record framing. *)

module Prim : sig
  val put_u8 : Buffer.t -> int -> unit
  val put_u32 : Buffer.t -> int -> unit
  val put_varint : Buffer.t -> int -> unit
  (** Non-negative ints only. *)

  val put_str : Buffer.t -> string -> unit

  exception Short of int * string
  (** [(offset, field)] — the field starting at [offset] ran past the
      readable limit. *)

  type reader

  val reader : Bytes.t -> pos:int -> limit:int -> reader
  val pos : reader -> int
  val u8 : reader -> what:string -> int
  val u32 : reader -> what:string -> int
  val varint : reader -> what:string -> int
  (** Rejects (with {!Short}) encodings that would overflow a
      non-negative OCaml int. *)

  val str : reader -> what:string -> string
end

val encode_command : Buffer.t -> Pf_broker.Broker.command -> unit
(** The payload encoding of a command frame (tag byte + payload, no
    frame header) — the WAL record body. *)

val decode_command :
  Bytes.t -> pos:int -> limit:int -> (Pf_broker.Broker.command * int, error) result
(** Inverse of {!encode_command}; returns the command and the end
    position. Rejects trailing bytes before [limit]. *)

val crc32 : Bytes.t -> pos:int -> len:int -> int
(** CRC-32 (IEEE 802.3, the zlib polynomial) of a byte range, as a
    non-negative int — integrity check for WAL records and snapshots. *)
