module Broker = Pf_broker.Broker

let version = 1
let max_frame = 1 lsl 24

type msg =
  | Hello of { version : int; ns : string }
  | Welcome of { version : int; server : string }
  | Command of Broker.command
  | Event of Broker.event

type error = { offset : int; reason : string }

let pp_error fmt e = Format.fprintf fmt "at byte %d: %s" e.offset e.reason

(* Message tags. Commands and events keep disjoint ranges so a stray
   frame from a confused peer (client speaking the server's half) fails
   loudly instead of aliasing. *)
let tag_hello = 1
let tag_welcome = 2
let tag_subscribe = 3
let tag_unsubscribe = 4
let tag_drop = 5
let tag_publish = 6
let tag_subscribed = 16
let tag_unsubscribed = 17
let tag_dropped = 18
let tag_results = 19
let tag_error = 20

module Prim = struct
  let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let put_u32 b v =
    put_u8 b (v lsr 24);
    put_u8 b (v lsr 16);
    put_u8 b (v lsr 8);
    put_u8 b v

  let put_varint b v =
    if v < 0 then invalid_arg "Wire.Prim.put_varint: negative";
    let rec go v =
      if v < 0x80 then put_u8 b v
      else begin
        put_u8 b (0x80 lor (v land 0x7f));
        go (v lsr 7)
      end
    in
    go v

  let put_str b s =
    put_varint b (String.length s);
    Buffer.add_string b s

  exception Short of int * string

  type reader = { buf : Bytes.t; mutable pos : int; limit : int }

  let reader buf ~pos ~limit = { buf; pos; limit }
  let pos r = r.pos

  let u8 r ~what =
    if r.pos >= r.limit then raise (Short (r.pos, what));
    let v = Char.code (Bytes.get r.buf r.pos) in
    r.pos <- r.pos + 1;
    v

  let u32 r ~what =
    let start = r.pos in
    if start + 4 > r.limit then raise (Short (start, what));
    let b i = Char.code (Bytes.get r.buf (start + i)) in
    r.pos <- start + 4;
    (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

  let varint r ~what =
    let start = r.pos in
    let rec go shift acc =
      if r.pos >= r.limit then raise (Short (start, what));
      let byte = Char.code (Bytes.get r.buf r.pos) in
      (* bit 62 is the OCaml sign bit: at shift 56 anything past the low
         6 bits would flip the sign (or demand a 10th byte) *)
      if shift = 56 && byte > 0x3f then
        raise (Short (start, what ^ " (varint overflows)"));
      r.pos <- r.pos + 1;
      let acc = acc lor ((byte land 0x7f) lsl shift) in
      if byte land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let str r ~what =
    let start = r.pos in
    let n = varint r ~what in
    if n < 0 || n > r.limit - r.pos then raise (Short (start, what));
    let s = Bytes.sub_string r.buf r.pos n in
    r.pos <- r.pos + n;
    s

  (* An element-count prefix: every element costs at least one byte, so a
     count beyond the remaining payload is a truncation, caught here
     before List.init walks (or rejects) a hostile count. *)
  let count r ~what =
    let start = r.pos in
    let n = varint r ~what in
    if n < 0 || n > r.limit - r.pos then raise (Short (start, what));
    n
end

open Prim

(* CRC-32 (IEEE 802.3 / zlib polynomial 0xEDB88320), table-driven. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 buf ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.get buf i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* {1 Payload encoders} *)

let encode_error b (err : Pf_intf.error) =
  let code, aux, msg =
    match err with
    | Pf_intf.Bad_expression m -> (1, 0, m)
    | Pf_intf.Unsupported_expression m -> (2, 0, m)
    | Pf_intf.Unknown_subscription id -> (3, id, "")
    | Pf_intf.Bad_document m -> (4, 0, m)
    | Pf_intf.Protocol_error m -> (5, 0, m)
  in
  put_u8 b code;
  put_varint b aux;
  put_str b msg

let decode_error r : (Pf_intf.error, error) result =
  let start = r.pos in
  let code = u8 r ~what:"error code" in
  let aux = varint r ~what:"error aux" in
  let msg = str r ~what:"error message" in
  match code with
  | 1 -> Ok (Pf_intf.Bad_expression msg)
  | 2 -> Ok (Pf_intf.Unsupported_expression msg)
  | 3 -> Ok (Pf_intf.Unknown_subscription aux)
  | 4 -> Ok (Pf_intf.Bad_document msg)
  | 5 -> Ok (Pf_intf.Protocol_error msg)
  | _ -> Error { offset = start; reason = Printf.sprintf "unknown error code %d" code }

let command_tag = function
  | Broker.Subscribe _ -> tag_subscribe
  | Broker.Unsubscribe _ -> tag_unsubscribe
  | Broker.Drop_subscriber _ -> tag_drop
  | Broker.Publish _ -> tag_publish

let encode_command_payload b = function
  | Broker.Subscribe { ns; subscriber; expr } ->
      put_str b ns;
      put_str b subscriber;
      put_str b expr
  | Broker.Unsubscribe { ns; id } ->
      put_str b ns;
      put_varint b id
  | Broker.Drop_subscriber { ns; subscriber } ->
      put_str b ns;
      put_str b subscriber
  | Broker.Publish { ns; doc } ->
      put_str b ns;
      put_str b doc

let decode_command_payload tag r : (Broker.command, error) result =
  if tag = tag_subscribe then begin
    let ns = str r ~what:"subscribe ns" in
    let subscriber = str r ~what:"subscribe subscriber" in
    let expr = str r ~what:"subscribe expr" in
    Ok (Broker.Subscribe { ns; subscriber; expr })
  end
  else if tag = tag_unsubscribe then begin
    let ns = str r ~what:"unsubscribe ns" in
    let id = varint r ~what:"unsubscribe id" in
    Ok (Broker.Unsubscribe { ns; id })
  end
  else if tag = tag_drop then begin
    let ns = str r ~what:"drop ns" in
    let subscriber = str r ~what:"drop subscriber" in
    Ok (Broker.Drop_subscriber { ns; subscriber })
  end
  else if tag = tag_publish then begin
    let ns = str r ~what:"publish ns" in
    let doc = str r ~what:"publish doc" in
    Ok (Broker.Publish { ns; doc })
  end
  else Error { offset = r.pos - 1; reason = Printf.sprintf "unknown command tag %d" tag }

let event_tag = function
  | Broker.Subscribed _ -> tag_subscribed
  | Broker.Unsubscribed _ -> tag_unsubscribed
  | Broker.Dropped _ -> tag_dropped
  | Broker.Delivered _ -> tag_results
  | Broker.Failed _ -> tag_error

let encode_event_payload b = function
  | Broker.Subscribed { id; suppressed } ->
      put_varint b id;
      put_u8 b (if suppressed then 1 else 0)
  | Broker.Unsubscribed { id; existed } ->
      put_varint b id;
      put_u8 b (if existed then 1 else 0)
  | Broker.Dropped { count } -> put_varint b count
  | Broker.Delivered { deliveries } ->
      put_varint b (List.length deliveries);
      List.iter
        (fun (subscriber, ids) ->
          put_str b subscriber;
          put_varint b (List.length ids);
          List.iter (put_varint b) ids)
        deliveries
  | Broker.Failed { error } -> encode_error b error

let decode_event_payload tag r : (Broker.event, error) result =
  if tag = tag_subscribed then begin
    let id = varint r ~what:"subscribed id" in
    let suppressed = u8 r ~what:"subscribed flag" <> 0 in
    Ok (Broker.Subscribed { id; suppressed })
  end
  else if tag = tag_unsubscribed then begin
    let id = varint r ~what:"unsubscribed id" in
    let existed = u8 r ~what:"unsubscribed flag" <> 0 in
    Ok (Broker.Unsubscribed { id; existed })
  end
  else if tag = tag_dropped then begin
    let count = varint r ~what:"dropped count" in
    Ok (Broker.Dropped { count })
  end
  else if tag = tag_results then begin
    let n = count r ~what:"results count" in
    let deliveries =
      List.init n (fun _ ->
          let subscriber = str r ~what:"results subscriber" in
          let k = count r ~what:"results id count" in
          let ids = List.init k (fun _ -> varint r ~what:"results id") in
          (subscriber, ids))
    in
    Ok (Broker.Delivered { deliveries })
  end
  else if tag = tag_error then
    match decode_error r with
    | Ok error -> Ok (Broker.Failed { error })
    | Error e -> Error e
  else Error { offset = r.pos - 1; reason = Printf.sprintf "unknown event tag %d" tag }

(* {1 Frames} *)

let msg_tag = function
  | Hello _ -> tag_hello
  | Welcome _ -> tag_welcome
  | Command c -> command_tag c
  | Event e -> event_tag e

let encode_payload b = function
  | Hello { version; ns } ->
      put_varint b version;
      put_str b ns
  | Welcome { version; server } ->
      put_varint b version;
      put_str b server
  | Command c -> encode_command_payload b c
  | Event e -> encode_event_payload b e

let encode b ~req_id msg =
  if req_id < 0 || req_id > 0xFFFFFFFF then invalid_arg "Wire.encode: req_id out of range";
  let payload = Buffer.create 64 in
  encode_payload payload msg;
  let n = 6 + Buffer.length payload in
  if n > max_frame then invalid_arg "Wire.encode: frame exceeds max_frame";
  put_u32 b n;
  put_u8 b version;
  put_u8 b (msg_tag msg);
  put_u32 b req_id;
  Buffer.add_buffer b payload

let decode_msg tag ~tag_off r : (msg, error) result =
  if tag = tag_hello then begin
    let version = varint r ~what:"hello version" in
    let ns = str r ~what:"hello ns" in
    Ok (Hello { version; ns })
  end
  else if tag = tag_welcome then begin
    let version = varint r ~what:"welcome version" in
    let server = str r ~what:"welcome server" in
    Ok (Welcome { version; server })
  end
  else if tag >= tag_subscribe && tag <= tag_publish then
    match decode_command_payload tag r with
    | Ok c -> Ok (Command c)
    | Error e -> Error e
  else if tag >= tag_subscribed && tag <= tag_error then
    match decode_event_payload tag r with
    | Ok e -> Ok (Event e)
    | Error e -> Error e
  else Error { offset = tag_off; reason = Printf.sprintf "unknown message tag %d" tag }

let decode buf ~off ~len =
  let avail = len - off in
  if avail < 4 then `Need (4 - avail)
  else begin
    let r = reader buf ~pos:off ~limit:len in
    let n = u32 r ~what:"frame length" in
    if n < 6 then `Error { offset = off; reason = Printf.sprintf "frame length %d below minimum 6" n }
    else if n > max_frame then
      `Error { offset = off; reason = Printf.sprintf "frame length %d exceeds max %d" n max_frame }
    else if avail < 4 + n then `Need (4 + n - avail)
    else begin
      let frame_end = off + 4 + n in
      let r = reader buf ~pos:(off + 4) ~limit:frame_end in
      match
        let v = u8 r ~what:"version" in
        if v <> version then
          Error { offset = off + 4; reason = Printf.sprintf "unsupported protocol version %d" v }
        else begin
          let tag_off = r.pos in
          let tag = u8 r ~what:"tag" in
          let req_id = u32 r ~what:"request id" in
          match decode_msg tag ~tag_off r with
          | Ok msg ->
              if r.pos <> frame_end then
                Error
                  { offset = r.pos;
                    reason = Printf.sprintf "%d trailing bytes after payload" (frame_end - r.pos) }
              else Ok (req_id, msg)
          | Error e -> Error e
        end
      with
      | Ok (req_id, msg) -> `Frame (4 + n, req_id, msg)
      | Error e -> `Error e
      | exception Short (offset, what) ->
          `Error { offset; reason = Printf.sprintf "frame truncates %s" what }
    end
  end

let encode_command b cmd =
  put_u8 b (command_tag cmd);
  encode_command_payload b cmd

let decode_command buf ~pos ~limit =
  let r = reader buf ~pos ~limit in
  match
    let tag = u8 r ~what:"command tag" in
    decode_command_payload tag r
  with
  | Ok cmd ->
      if r.pos <> limit then
        Error
          { offset = r.pos;
            reason = Printf.sprintf "%d trailing bytes after command" (limit - r.pos) }
      else Ok (cmd, r.pos)
  | Error e -> Error e
  | exception Short (offset, what) ->
      Error { offset; reason = Printf.sprintf "record truncates %s" what }
