(** The networked dissemination broker.

    Accepts connections on a Unix-domain or TCP socket, speaks the
    {!Pf_net.Wire} protocol, and drives one {!Pf_broker.Broker} state
    machine layered over a domain-parallel {!Pf_service}:

    - {e mutations} (SUBSCRIBE / UNSUBSCRIBE / DROP_SUBSCRIBER) are
      applied under one server lock and, when a data directory is
      configured, logged through {!Pf_net.Store} — the reply frame is
      sent only after the WAL fsync, so an acknowledged mutation
      survives [kill -9];
    - {e publishes} are submitted to the service's bounded queues from
      the connection's reader thread, so when the filtering pipeline
      falls behind, [submit] blocks, the reader stops draining its
      socket, and TCP/socket flow control pushes the backpressure all
      the way to the publisher. RESULTS frames are sent from worker
      domains as documents finish, correlated by request id — they may
      overtake each other, and they may overtake replies to later
      mutations.

    Each connection is handled by one reader thread; writes are
    serialized per connection with a mutex because worker domains and
    the reader thread both send. A connection's default namespace is
    fixed by its HELLO frame; commands carrying an explicit namespace
    override it per command. *)

type listen =
  | Unix_sock of string  (** path of a Unix-domain socket *)
  | Tcp of string * int  (** bind address and port; port 0 picks one *)

val pp_listen : Format.formatter -> listen -> unit

val listen_of_string : string -> (listen, string) result
(** ["unix:/path"], ["tcp:host:port"], or a bare path (treated as
    [unix:]). *)

type config = {
  listen : listen;
  data_dir : string option;  (** [None] — volatile broker, no WAL *)
  snapshot_every : int;
  filter : Pf_intf.filter;
  covering_suppression : bool;
  mode : Pf_service.mode;
  domains : int;
  batch : int;
  validate_documents : bool;
      (** parse documents on the reader thread and reject malformed ones
          with a BAD_DOCUMENT error frame; when off, raw text goes
          straight into the streaming pipeline and malformed documents
          silently deliver to nobody *)
  send_timeout : float;
      (** [SO_SNDTIMEO] in seconds on accepted sockets: a peer that stops
          reading cannot block a worker domain's delivery (or graceful
          shutdown) for longer than this — the write fails and the
          connection is marked dead. [0.] means block forever. *)
  server_name : string;
}

val config :
  ?data_dir:string ->
  ?snapshot_every:int ->
  ?filter:Pf_intf.filter ->
  ?covering_suppression:bool ->
  ?mode:Pf_service.mode ->
  ?domains:int ->
  ?batch:int ->
  ?validate_documents:bool ->
  ?send_timeout:float ->
  ?server_name:string ->
  listen ->
  config
(** Defaults: no data dir, [snapshot_every] 1024, the broker's default
    filter, suppression on, [Doc] mode, 1 domain, batch 8, validation
    on, send timeout 15 s, name ["pf-broker"]. *)

type t

val start : config -> t
(** Bind, recover (if a data dir is configured) and start the accept
    thread. Raises [Unix.Unix_error] if the address cannot be bound. *)

val listen_address : t -> listen
(** The bound address — with the actual port when [Tcp (_, 0)] was
    requested. *)

val broker : t -> Pf_broker.Broker.t
val store : t -> Store.t option

val metrics : t -> Pf_obs.Registry.t
(** Scope ["net"]: counters ["net_connections"], ["net_frames_in"],
    ["net_frames_out"], ["net_bytes_in"], ["net_bytes_out"],
    ["net_publishes"], ["net_mutations"], ["net_protocol_errors"],
    ["net_send_errors"], ["net_bad_documents"]; gauges
    ["net_connections_open"] (Sum), ["net_wal_bytes"] (Max); quantile
    histogram ["net_publish_latency_ns"] (submit-to-delivery-resolution,
    the p50/p99 the load generator and the soak gate read). *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, half-close every connection, let
    in-flight publishes deliver, join connection threads, drain and shut
    down the service, snapshot (when durable) and close the store,
    unlink a Unix-domain socket. Idempotent. *)
