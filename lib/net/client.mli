(** Blocking wire-protocol client.

    One socket, one thread of control: the synchronous helpers
    ({!subscribe}, {!publish}, ...) send a command and read frames until
    its reply arrives, stashing out-of-order results; the asynchronous
    pair ({!publish_async} / {!await}) pipelines publishes without
    waiting — the load generator keeps a window of them in flight and
    lets the server's bounded queues set the pace.

    Transport failures raise {!Disconnected}; broker-level failures come
    back as [Error _] {!Pf_intf.error} values. Not thread-safe — use one
    client per thread. *)

type t

exception Disconnected of string
(** Connection lost or the peer broke the protocol. *)

val connect : ?ns:string -> Server.listen -> t
(** Connect, send HELLO with namespace [ns] (default
    {!Pf_broker.Broker.default_ns}) and wait for WELCOME. Every command
    this client sends carries [ns]. *)

val ns : t -> string
val server_name : t -> string
(** From the WELCOME frame. *)

val close : t -> unit

(** {1 Synchronous commands} *)

val subscribe :
  t -> subscriber:string -> string -> (int * bool, Pf_intf.error) result
(** [Ok (id, suppressed)]. *)

val unsubscribe : t -> int -> (bool, Pf_intf.error) result
val drop_subscriber : t -> string -> (int, Pf_intf.error) result

val publish : t -> string -> ((string * int list) list, Pf_intf.error) result
(** Blocks until this document's RESULTS (or ERROR) frame arrives;
    results of other pipelined publishes arriving meanwhile are stashed
    for their own {!await}. *)

(** {1 Pipelined publishing} *)

val publish_async : t -> string -> int
(** Send PUBLISH and return its request id without waiting. *)

val await : t -> int -> ((string * int list) list, Pf_intf.error) result
(** Block until the RESULTS frame for this request id arrives. *)

val poll : t -> int -> ((string * int list) list, Pf_intf.error) result option
(** Non-blocking {!await}: [None] if the reply has not arrived yet (only
    already-buffered frames are drained, the socket is not read). *)

val pending : t -> int
(** Replies stashed but not yet collected with {!await}/{!poll}. *)
