(** Write-ahead log of broker subscription mutations.

    Append-only file of {!Pf_broker.Broker.command} records — only the
    mutations {!Pf_broker.Broker.is_mutation} selects, and only when
    they succeeded, so replaying the log through [Broker.apply] is
    deterministic (failed commands consume no subscription ids and are
    never logged).

    {2 File format}

    An 8-byte magic header ["PFWAL\x00\x00\x01"], then records:

    {v
    u32 BE  len    — payload length
    u32 BE  crc    — CRC-32 of the payload
    payload        — varint sequence number, then Wire.encode_command
    v}

    Sequence numbers are assigned by the log, start at 1 and never
    reset — {!reset} truncates the file but the next record continues
    the sequence, which is how recovery pairs a snapshot (which stores
    the last sequence it covers) with the surviving tail.

    {2 Crash tolerance}

    {!open_log} validates the file front to back and truncates at the
    first record whose length, CRC or payload fails to decode — a torn
    final write (the expected crash artifact) loses at most the record
    being written, never earlier ones. {!append} does not fsync;
    {!sync} does, so the caller chooses the durability point (the store
    syncs once per logged command, after the write). *)

type t

val open_log : string -> t * (int * Pf_broker.Broker.command) list
(** [open_log path] opens (creating if absent) the log, truncates any
    invalid tail and returns the handle plus the surviving records as
    [(seq, command)] pairs in ascending sequence order. *)

val next_seq : t -> int
(** Sequence number the next {!append} will write. *)

val last_seq : t -> int
(** Sequence number of the most recently appended (or recovered)
    record; 0 if none. *)

val append : t -> Pf_broker.Broker.command -> int
(** Append one record; returns its sequence number. Not yet durable —
    call {!sync}. *)

val sync : t -> unit
(** fsync the log file. *)

val reset : t -> unit
(** Truncate to the bare header (after a snapshot has made the records
    redundant) and fsync. Sequence numbering continues unchanged. *)

val size : t -> int
(** Current file size in bytes, header included. *)

val close : t -> unit
