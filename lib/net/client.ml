module Broker = Pf_broker.Broker

exception Disconnected of string

type t = {
  fd : Unix.file_descr;
  mutable buf : Bytes.t;
  mutable start : int;
  mutable fill : int;
  mutable next_req : int;
  stash : (int, Broker.event) Hashtbl.t;
  cns : string;
  mutable server : string;
}

let write_all fd bytes =
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then
      match Unix.write fd bytes off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (err, _, _) ->
          raise (Disconnected (Unix.error_message err))
  in
  go 0

let send t ~req_id msg =
  let buf = Buffer.create 128 in
  Wire.encode buf ~req_id msg;
  write_all t.fd (Buffer.to_bytes buf)

(* Decode one frame out of the buffer; [read_more = false] makes it
   non-blocking over already-buffered bytes. *)
let rec next_frame t ~read_more =
  match Wire.decode t.buf ~off:t.start ~len:t.fill with
  | `Frame (consumed, req_id, msg) ->
      t.start <- t.start + consumed;
      Some (req_id, msg)
  | `Error e -> raise (Disconnected (Format.asprintf "%a" Wire.pp_error e))
  | `Need n ->
      if not read_more then None
      else begin
        if t.start > 0 then begin
          Bytes.blit t.buf t.start t.buf 0 (t.fill - t.start);
          t.fill <- t.fill - t.start;
          t.start <- 0
        end;
        if t.fill + n > Bytes.length t.buf then begin
          let bigger = Bytes.create (max (t.fill + n) (2 * Bytes.length t.buf)) in
          Bytes.blit t.buf 0 bigger 0 t.fill;
          t.buf <- bigger
        end;
        let got =
          try Unix.read t.fd t.buf t.fill (Bytes.length t.buf - t.fill)
          with Unix.Unix_error (err, _, _) -> raise (Disconnected (Unix.error_message err))
        in
        if got = 0 then raise (Disconnected "connection closed by server");
        t.fill <- t.fill + got;
        next_frame t ~read_more
      end

let fresh_req t =
  let id = t.next_req in
  t.next_req <- (if id >= 0xFFFFFFFF then 1 else id + 1);
  id

(* Read frames until the reply for [req_id] shows up, stashing others. *)
let rec wait_reply t req_id =
  match Hashtbl.find_opt t.stash req_id with
  | Some ev ->
      Hashtbl.remove t.stash req_id;
      ev
  | None -> (
      match next_frame t ~read_more:true with
      | None -> assert false
      | Some (rid, Wire.Event ev) ->
          if rid = req_id then ev
          else begin
            Hashtbl.replace t.stash rid ev;
            wait_reply t req_id
          end
      | Some (_, (Wire.Hello _ | Wire.Welcome _ | Wire.Command _)) ->
          raise (Disconnected "server sent a client-side frame"))

let connect ?(ns = Broker.default_ns) (addr : Server.listen) =
  let fd =
    match addr with
    | Server.Unix_sock path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_UNIX path)
         with Unix.Unix_error (err, _, _) ->
           Unix.close fd;
           raise (Disconnected (Unix.error_message err)));
        fd
    | Server.Tcp (host, port) ->
        let inet =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_INET (inet, port))
         with Unix.Unix_error (err, _, _) ->
           Unix.close fd;
           raise (Disconnected (Unix.error_message err)));
        fd
  in
  let t =
    { fd; buf = Bytes.create 8192; start = 0; fill = 0; next_req = 1;
      stash = Hashtbl.create 16; cns = ns; server = "" }
  in
  let req_id = fresh_req t in
  send t ~req_id (Wire.Hello { version = Wire.version; ns });
  (match next_frame t ~read_more:true with
  | Some (_, Wire.Welcome { server; _ }) -> t.server <- server
  | Some (_, Wire.Event (Broker.Failed { error })) ->
      Unix.close t.fd;
      raise (Disconnected (Pf_intf.error_message error))
  | _ ->
      Unix.close t.fd;
      raise (Disconnected "expected WELCOME"));
  t

let ns t = t.cns
let server_name t = t.server
let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let unexpected ev =
  raise (Disconnected (Format.asprintf "unexpected reply %a" Broker.pp_event ev))

let subscribe t ~subscriber expr =
  let req_id = fresh_req t in
  send t ~req_id (Wire.Command (Broker.Subscribe { ns = t.cns; subscriber; expr }));
  match wait_reply t req_id with
  | Broker.Subscribed { id; suppressed } -> Ok (id, suppressed)
  | Broker.Failed { error } -> Error error
  | ev -> unexpected ev

let unsubscribe t id =
  let req_id = fresh_req t in
  send t ~req_id (Wire.Command (Broker.Unsubscribe { ns = t.cns; id }));
  match wait_reply t req_id with
  | Broker.Unsubscribed { existed; _ } -> Ok existed
  | Broker.Failed { error } -> Error error
  | ev -> unexpected ev

let drop_subscriber t subscriber =
  let req_id = fresh_req t in
  send t ~req_id (Wire.Command (Broker.Drop_subscriber { ns = t.cns; subscriber }));
  match wait_reply t req_id with
  | Broker.Dropped { count } -> Ok count
  | Broker.Failed { error } -> Error error
  | ev -> unexpected ev

let publish_async t doc =
  let req_id = fresh_req t in
  send t ~req_id (Wire.Command (Broker.Publish { ns = t.cns; doc }));
  req_id

let await t req_id =
  match wait_reply t req_id with
  | Broker.Delivered { deliveries } -> Ok deliveries
  | Broker.Failed { error } -> Error error
  | ev -> unexpected ev

let publish t doc = await t (publish_async t doc)

let poll t req_id =
  (* drain whatever frames are already buffered, then check the stash *)
  let rec drain () =
    match next_frame t ~read_more:false with
    | Some (rid, Wire.Event ev) ->
        Hashtbl.replace t.stash rid ev;
        drain ()
    | Some (_, (Wire.Hello _ | Wire.Welcome _ | Wire.Command _)) ->
        raise (Disconnected "server sent a client-side frame")
    | None -> ()
  in
  drain ();
  match Hashtbl.find_opt t.stash req_id with
  | None -> None
  | Some ev ->
      Hashtbl.remove t.stash req_id;
      Some
        (match ev with
        | Broker.Delivered { deliveries } -> Ok deliveries
        | Broker.Failed { error } -> Error error
        | ev -> unexpected ev)

let pending t = Hashtbl.length t.stash
