open Pf_xpath

let src = Pf_obs.Events.src "broker" ~doc:"Selective-dissemination broker"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  variant : Pf_core.Expr_index.variant;
  attr_mode : Pf_core.Engine.attr_mode;
  dedup_paths : bool;
  covering_suppression : bool;
}

let default_config =
  {
    variant = Pf_core.Expr_index.Access_predicate;
    attr_mode = Pf_core.Engine.Inline;
    dedup_paths = true;
    covering_suppression = true;
  }

type state =
  | Active of int  (* engine sid *)
  | Suppressed of int  (* uid of the covering subscription *)
  | Cancelled

type subscription = {
  uid : int;
  subscriber : string;
  expr : Ast.path;
  mutable state : state;
}

type metrics = {
  registry : Pf_obs.Registry.t;
  documents : Pf_obs.Counter.t;
  deliveries : Pf_obs.Counter.t;
  suppressions : Pf_obs.Counter.t;
}

let make_metrics () =
  let registry = Pf_obs.Registry.create "broker" in
  {
    registry;
    documents =
      Pf_obs.Counter.make ~registry "documents_published" ~help:"documents published";
    deliveries =
      Pf_obs.Counter.make ~registry "deliveries" ~help:"per-subscriber deliveries";
    suppressions =
      Pf_obs.Counter.make ~registry "covering_suppressions"
        ~help:"subscriptions suppressed by a covering subscription at subscribe time";
  }

type t = {
  config : config;
  engine : Pf_core.Engine.t;
  by_sid : (int, subscription) Hashtbl.t;
  by_subscriber : (string, subscription list ref) Hashtbl.t;
  mutable next_uid : int;
  m : metrics;
}

let create ?(config = default_config) () =
  {
    config;
    engine =
      Pf_core.Engine.create ~variant:config.variant ~attr_mode:config.attr_mode
        ~dedup_paths:config.dedup_paths ();
    by_sid = Hashtbl.create 1024;
    by_subscriber = Hashtbl.create 64;
    next_uid = 0;
    m = make_metrics ();
  }

let metrics t = t.m.registry

let subscriber_of sub = sub.subscriber
let expression_of sub = sub.expr

let is_suppressed _t sub = match sub.state with Suppressed _ -> true | Active _ | Cancelled -> false

let subscriber_subs t subscriber =
  match Hashtbl.find_opt t.by_subscriber subscriber with
  | Some l -> !l
  | None -> []

(* An active single-path subscription of the same subscriber that covers
   [expr] makes it redundant: it can never add a delivery. *)
let find_cover t ~subscriber (expr : Ast.path) =
  if (not t.config.covering_suppression) || not (Ast.is_single_path expr) then None
  else
    List.find_opt
      (fun sub ->
        match sub.state with
        | Active _ ->
          Ast.is_single_path sub.expr && Pf_core.Containment.covers sub.expr expr
        | Suppressed _ | Cancelled -> false)
      (subscriber_subs t subscriber)

let activate t sub =
  let sid = Pf_core.Engine.add t.engine sub.expr in
  sub.state <- Active sid;
  Hashtbl.replace t.by_sid sid sub

let subscribe_path t ~subscriber (expr : Ast.path) =
  let sub = { uid = t.next_uid; subscriber; expr; state = Cancelled } in
  t.next_uid <- t.next_uid + 1;
  (match find_cover t ~subscriber expr with
  | Some cover ->
    Pf_obs.Counter.incr t.m.suppressions;
    Log.debug (fun m ->
        m "subscription %d of %s suppressed by covering subscription %d" sub.uid
          subscriber cover.uid);
    sub.state <- Suppressed cover.uid
  | None ->
    activate t sub;
    Log.debug (fun m -> m "subscription %d of %s active" sub.uid subscriber));
  (match Hashtbl.find_opt t.by_subscriber subscriber with
  | Some l -> l := sub :: !l
  | None -> Hashtbl.add t.by_subscriber subscriber (ref [ sub ]));
  sub

let subscribe t ~subscriber expr = subscribe_path t ~subscriber (Parser.parse expr)

let deactivate t sub =
  match sub.state with
  | Active sid ->
    ignore (Pf_core.Engine.remove t.engine sid);
    Hashtbl.remove t.by_sid sid;
    sub.state <- Cancelled
  | Suppressed _ | Cancelled -> sub.state <- Cancelled

let unsubscribe t sub =
  match sub.state with
  | Cancelled -> false
  | Suppressed _ ->
    sub.state <- Cancelled;
    true
  | Active _ ->
    let uid = sub.uid in
    deactivate t sub;
    (* re-home the subscriptions this one was suppressing: another active
       subscription may still cover them, otherwise they enter the engine *)
    List.iter
      (fun dependent ->
        match dependent.state with
        | Suppressed cover_uid when cover_uid = uid -> (
          match find_cover t ~subscriber:dependent.subscriber dependent.expr with
          | Some cover -> dependent.state <- Suppressed cover.uid
          | None -> activate t dependent)
        | Suppressed _ | Active _ | Cancelled -> ())
      (subscriber_subs t sub.subscriber);
    true

let drop_subscriber t subscriber =
  let subs = subscriber_subs t subscriber in
  let n =
    List.fold_left
      (fun acc sub ->
        match sub.state with
        | Cancelled -> acc
        | Active _ | Suppressed _ ->
          deactivate t sub;
          acc + 1)
      0 subs
  in
  Hashtbl.remove t.by_subscriber subscriber;
  n

type delivery = {
  subscriber : string;
  via : subscription list;
}

let publish t doc =
  Pf_obs.Counter.incr t.m.documents;
  let sids = Pf_core.Engine.match_document t.engine doc in
  let per_subscriber : (string, subscription list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun sid ->
      match Hashtbl.find_opt t.by_sid sid with
      | Some sub -> (
        match Hashtbl.find_opt per_subscriber sub.subscriber with
        | Some l -> l := sub :: !l
        | None -> Hashtbl.add per_subscriber sub.subscriber (ref [ sub ]))
      | None -> ())
    sids;
  let deliveries =
    Hashtbl.fold
      (fun subscriber via acc -> { subscriber; via = List.rev !via } :: acc)
      per_subscriber []
    |> List.sort (fun d1 d2 -> String.compare d1.subscriber d2.subscriber)
  in
  Pf_obs.Counter.add t.m.deliveries (List.length deliveries);
  Log.debug (fun m ->
      m "published document: %d matching sids, %d deliveries" (List.length sids)
        (List.length deliveries));
  deliveries

let publish_string t src = publish t (Pf_xml.Sax.parse_document src)

type stats = {
  subscribers : int;
  subscriptions : int;
  suppressed : int;
  engine_expressions : int;
  distinct_predicates : int;
  documents_published : int;
  deliveries : int;
}

let stats t =
  let subscribers = ref 0 and subscriptions = ref 0 and suppressed = ref 0 in
  Hashtbl.iter
    (fun _ subs ->
      let live =
        List.filter
          (fun s -> match s.state with Cancelled -> false | Active _ | Suppressed _ -> true)
          !subs
      in
      if live <> [] then incr subscribers;
      subscriptions := !subscriptions + List.length live;
      suppressed :=
        !suppressed
        + List.length
            (List.filter (fun s -> match s.state with Suppressed _ -> true | _ -> false) live))
    t.by_subscriber;
  {
    subscribers = !subscribers;
    subscriptions = !subscriptions;
    suppressed = !suppressed;
    engine_expressions = Hashtbl.length t.by_sid;
    distinct_predicates = Pf_core.Engine.distinct_predicate_count t.engine;
    documents_published = Pf_obs.Counter.get t.m.documents;
    deliveries = Pf_obs.Counter.get t.m.deliveries;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>subscribers: %d@,subscriptions: %d (%d suppressed by covering)@,\
     engine expressions: %d@,distinct predicates: %d@,documents published: %d@,\
     deliveries: %d@]"
    s.subscribers s.subscriptions s.suppressed s.engine_expressions s.distinct_predicates
    s.documents_published s.deliveries
