(* The dissemination broker as a transport-agnostic command/event state
   machine (see the mli): subscriber bookkeeping, multi-tenant namespaces
   and covering suppression over any Pf_intf.FILTER, reached through a
   small [port] record so an in-process engine and a domain-parallel
   service plug in the same way.

   Two invariants the networked front-end leans on:

   - [by_sid] is append-only: a cancelled subscription stays resolvable,
     so sids reported by a pipeline the document entered before the
     cancellation still map to deliveries (epoch ordering decided the
     match; the broker only translates it);
   - subscription ids ([uid]) are dense, never reused, and assigned only
     on success — replaying the same command sequence into a fresh broker
     reproduces them exactly, which is what makes the write-ahead log a
     faithful serialization of the state machine. *)

open Pf_xpath

let src = Pf_obs.Events.src "broker" ~doc:"Selective-dissemination broker"

module Log = (val Logs.src_log src : Logs.LOG)

let default_ns = ""

module Probe = Pf_core.Subsume.Probe

type state =
  | Active of int  (* engine sid *)
  | Suppressed of int  (* uid of the covering subscription *)
  | Cancelled

type subscription = {
  uid : int;
  ns : string;
  subscriber : string;
  expr : Ast.path;
  mutable state : state;
}

type port = {
  port_subscribe : Ast.path -> int;
  port_unsubscribe : int -> bool;
  port_match : Pf_xml.Tree.t -> int list;
  port_match_string : string -> int list;
  port_engine_metrics : unit -> Pf_obs.Registry.t option;
}

let port_of_filter (module F : Pf_intf.FILTER) =
  let e = F.create () in
  {
    port_subscribe = F.add e;
    port_unsubscribe = F.remove e;
    port_match = F.match_document e;
    port_match_string = F.match_string e;
    port_engine_metrics = (fun () -> Some (F.metrics e));
  }

type metrics = {
  registry : Pf_obs.Registry.t;
  documents : Pf_obs.Counter.t;
  deliveries : Pf_obs.Counter.t;
  suppressions : Pf_obs.Counter.t;
  covers_probes : Pf_obs.Counter.t;
  promotions : Pf_obs.Counter.t;
  subscriptions_g : Pf_obs.Gauge.t;
  suppressed_g : Pf_obs.Gauge.t;
  engine_exprs_g : Pf_obs.Gauge.t;
}

let make_metrics () =
  let registry = Pf_obs.Registry.create "broker" in
  {
    registry;
    documents =
      Pf_obs.Counter.make ~registry "documents_published" ~help:"documents published";
    deliveries =
      Pf_obs.Counter.make ~registry "deliveries" ~help:"per-subscriber deliveries";
    suppressions =
      Pf_obs.Counter.make ~registry "covering_suppressions"
        ~help:"subscriptions suppressed by a covering subscription at subscribe time";
    covers_probes =
      Pf_obs.Counter.make ~registry "covers_probes"
        ~help:"containment tests made by covering-suppression probes";
    promotions =
      Pf_obs.Counter.make ~registry "promotions"
        ~help:"suppressed subscriptions re-activated after their cover left";
    (* populations add up across broker shards: Sum, not the gauge
       default Max (which is for high-water marks) *)
    subscriptions_g =
      Pf_obs.Gauge.make ~registry "subscriptions" ~merge:Pf_obs.Gauge.Sum
        ~help:"live subscriptions (active + suppressed)";
    suppressed_g =
      Pf_obs.Gauge.make ~registry "suppressed" ~merge:Pf_obs.Gauge.Sum
        ~help:"live subscriptions suppressed by a covering subscription";
    engine_exprs_g =
      Pf_obs.Gauge.make ~registry "engine_expressions" ~merge:Pf_obs.Gauge.Sum
        ~help:"expressions registered in the engine (live subscriptions minus suppressed)";
  }

type t = {
  covering_suppression : bool;
  port : port;
  lock : Mutex.t;
  by_sid : (int, subscription) Hashtbl.t;  (* append-only *)
  by_uid : (int, subscription) Hashtbl.t;
  by_subscriber : (string * string, subscription list ref) Hashtbl.t;  (* (ns, name) *)
  (* shape-bucket candidate index per (ns, subscriber): holds exactly the
     active single-path subscriptions, so find_cover probes the
     expression's tag buckets instead of scanning every subscription *)
  probes : (string * string, subscription Probe.t) Hashtbl.t;
  mutable next_uid : int;
  mutable active_count : int;
  mutable suppressed_count : int;
  m : metrics;
}

let default_filter () = (Pf_core.Engine.filter ~dedup_paths:true () :> Pf_intf.filter)

let create_over ?(covering_suppression = true) port =
  {
    covering_suppression;
    port;
    lock = Mutex.create ();
    by_sid = Hashtbl.create 1024;
    by_uid = Hashtbl.create 1024;
    by_subscriber = Hashtbl.create 64;
    probes = Hashtbl.create 64;
    next_uid = 0;
    active_count = 0;
    suppressed_count = 0;
    m = make_metrics ();
  }

let create ?filter ?covering_suppression () =
  let filter = match filter with Some f -> f | None -> default_filter () in
  create_over ?covering_suppression (port_of_filter filter)

type config = {
  variant : Pf_core.Expr_index.variant;
  attr_mode : Pf_core.Engine.attr_mode;
  dedup_paths : bool;
  covering_suppression : bool;
}

let default_config =
  {
    variant = Pf_core.Expr_index.Access_predicate;
    attr_mode = Pf_core.Engine.Inline;
    dedup_paths = true;
    covering_suppression = true;
  }

let create_legacy ?(config = default_config) () =
  create
    ~filter:
      (Pf_core.Engine.filter ~variant:config.variant ~attr_mode:config.attr_mode
         ~dedup_paths:config.dedup_paths ()
        :> Pf_intf.filter)
    ~covering_suppression:config.covering_suppression ()

let metrics t = t.m.registry

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set_gauges t =
  Pf_obs.Gauge.set t.m.subscriptions_g
    (float_of_int (t.active_count + t.suppressed_count));
  Pf_obs.Gauge.set t.m.suppressed_g (float_of_int t.suppressed_count);
  Pf_obs.Gauge.set t.m.engine_exprs_g (float_of_int t.active_count)

let subscription_id sub = sub.uid
let subscriber_of sub = sub.subscriber
let ns_of sub = sub.ns
let expression_of sub = sub.expr

let is_suppressed _t sub =
  match sub.state with Suppressed _ -> true | Active _ | Cancelled -> false

let subscriber_subs t ~ns subscriber =
  match Hashtbl.find_opt t.by_subscriber (ns, subscriber) with
  | Some l -> !l
  | None -> []

let probe_key sub = sub.ns, sub.subscriber

let probe_add (t : t) sub =
  if t.covering_suppression && Ast.is_single_path sub.expr then begin
    let probe =
      match Hashtbl.find_opt t.probes (probe_key sub) with
      | Some p -> p
      | None ->
        let p = Probe.create () in
        Hashtbl.add t.probes (probe_key sub) p;
        p
    in
    Probe.add probe sub.expr ~key:sub.uid sub
  end

let probe_remove (t : t) sub =
  if t.covering_suppression && Ast.is_single_path sub.expr then
    match Hashtbl.find_opt t.probes (probe_key sub) with
    | Some probe -> Probe.remove probe sub.expr ~key:sub.uid
    | None -> ()

(* An active single-path subscription of the same (namespace, subscriber)
   that covers [expr] makes it redundant: it can never add a delivery.
   Candidates come from the shape-bucket probe, uncapped and complete, so
   the suppression decision — and the chosen cover: the newest (largest
   uid) covering subscription, as the former newest-first linear scan
   picked — is identical; only the cost drops from every live
   subscription to the expression's tag buckets. Replayed command logs
   therefore reproduce the same suppression graph. *)
let find_cover (t : t) ~ns ~subscriber (expr : Ast.path) =
  if (not t.covering_suppression) || not (Ast.is_single_path expr) then None
  else
    match Hashtbl.find_opt t.probes (ns, subscriber) with
    | None -> None
    | Some probe ->
      let best = ref None in
      Probe.iter_candidates probe expr (fun uid sub ->
          if
            (match !best with Some b -> uid > b.uid | None -> true)
            && match sub.state with
               | Active _ -> true
               | Suppressed _ | Cancelled -> false
          then begin
            Pf_obs.Counter.incr t.m.covers_probes;
            if Pf_core.Containment.covers sub.expr expr then best := Some sub
          end);
      !best

(* ------------------------------------------------------------------ *)
(* Internal transitions (caller holds the lock). *)

let enroll t sub =
  Hashtbl.add t.by_uid sub.uid sub;
  match Hashtbl.find_opt t.by_subscriber (sub.ns, sub.subscriber) with
  | Some l -> l := sub :: !l
  | None -> Hashtbl.add t.by_subscriber (sub.ns, sub.subscriber) (ref [ sub ])

(* Register in the engine. Called both for fresh subscriptions and when a
   cancelled cover re-homes its dependents. *)
let activate t sub =
  let sid = t.port.port_subscribe sub.expr in
  sub.state <- Active sid;
  t.active_count <- t.active_count + 1;
  Hashtbl.replace t.by_sid sid sub;
  probe_add t sub

(* Raises Pf_intf.Unsupported when the engine rejects the expression; the
   broker is left unchanged and no uid is consumed (covering check and
   engine registration both precede the uid allocation). *)
let subscribe_in t ~ns ~subscriber (expr : Ast.path) =
  match find_cover t ~ns ~subscriber expr with
  | Some cover ->
    let sub = { uid = t.next_uid; ns; subscriber; expr; state = Suppressed cover.uid } in
    t.next_uid <- t.next_uid + 1;
    t.suppressed_count <- t.suppressed_count + 1;
    Pf_obs.Counter.incr t.m.suppressions;
    Log.debug (fun m ->
        m "subscription %d of %s suppressed by covering subscription %d" sub.uid
          subscriber cover.uid);
    enroll t sub;
    set_gauges t;
    sub
  | None ->
    let sub = { uid = t.next_uid; ns; subscriber; expr; state = Cancelled } in
    activate t sub;
    (* uid consumed only after the engine accepted the expression *)
    t.next_uid <- t.next_uid + 1;
    Log.debug (fun m -> m "subscription %d of %s active" sub.uid subscriber);
    enroll t sub;
    set_gauges t;
    sub

let deactivate t sub =
  (match sub.state with
  | Active sid ->
    ignore (t.port.port_unsubscribe sid : bool);
    t.active_count <- t.active_count - 1;
    probe_remove t sub
    (* by_sid keeps the entry: in-flight documents may still report it *)
  | Suppressed _ -> t.suppressed_count <- t.suppressed_count - 1
  | Cancelled -> ());
  sub.state <- Cancelled

let unsubscribe_in t sub =
  match sub.state with
  | Cancelled -> false
  | Suppressed _ ->
    deactivate t sub;
    set_gauges t;
    true
  | Active _ ->
    let uid = sub.uid in
    deactivate t sub;
    (* re-home the subscriptions this one was suppressing: another active
       subscription may still cover them, otherwise they enter the engine *)
    List.iter
      (fun dependent ->
        match dependent.state with
        | Suppressed cover_uid when cover_uid = uid -> (
          match
            find_cover t ~ns:dependent.ns ~subscriber:dependent.subscriber dependent.expr
          with
          | Some cover -> dependent.state <- Suppressed cover.uid
          | None -> (
            t.suppressed_count <- t.suppressed_count - 1;
            try
              activate t dependent;
              Pf_obs.Counter.incr t.m.promotions
            with Pf_intf.Unsupported msg ->
              (* only reachable with an engine whose subset is narrower
                 than the containment checker's (never the default
                 engine): the dependent cannot be registered, so it is
                 cancelled rather than silently kept *)
              dependent.state <- Cancelled;
              Log.warn (fun m ->
                  m "subscription %d could not re-activate (%s); cancelled"
                    dependent.uid msg)))
        | Suppressed _ | Active _ | Cancelled -> ())
      (subscriber_subs t ~ns:sub.ns sub.subscriber);
    set_gauges t;
    true

let unsubscribe_id_in t ~ns id =
  match Hashtbl.find_opt t.by_uid id with
  | Some sub when sub.ns = ns -> Ok (unsubscribe_in t sub)
  | Some _ | None -> Error (Pf_intf.Unknown_subscription id)

let drop_subscriber_in t ~ns subscriber =
  let subs = subscriber_subs t ~ns subscriber in
  let n =
    List.fold_left
      (fun acc sub ->
        match sub.state with
        | Cancelled -> acc
        | Active _ | Suppressed _ ->
          (* no re-homing: a cover's dependents belong to the same
             (namespace, subscriber) and are dropped in this same pass *)
          deactivate t sub;
          acc + 1)
      0 subs
  in
  Hashtbl.remove t.by_subscriber (ns, subscriber);
  Hashtbl.remove t.probes (ns, subscriber);
  set_gauges t;
  n

(* ------------------------------------------------------------------ *)
(* Delivery resolution *)

(* Group matching sids into per-subscriber deliveries within [ns]. [sids]
   arrive sorted; via-lists are re-sorted by uid because re-activated
   subscriptions hold fresh sids (sid order /= uid order), and uids are
   the identity that survives recovery. *)
let resolve_in t ~ns sids =
  let per_subscriber : (string, subscription list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun sid ->
      match Hashtbl.find_opt t.by_sid sid with
      | Some sub when sub.ns = ns -> (
        match Hashtbl.find_opt per_subscriber sub.subscriber with
        | Some l -> l := sub :: !l
        | None -> Hashtbl.add per_subscriber sub.subscriber (ref [ sub ]))
      | Some _ | None -> ())
    sids;
  Hashtbl.fold
    (fun subscriber via acc ->
      (subscriber, List.sort (fun s1 s2 -> compare s1.uid s2.uid) !via) :: acc)
    per_subscriber []
  |> List.sort (fun (s1, _) (s2, _) -> String.compare s1 s2)

type delivery = {
  subscriber : string;
  via : subscription list;
}

let publish_sids_in t ~ns sids =
  Pf_obs.Counter.incr t.m.documents;
  let deliveries =
    List.map (fun (subscriber, via) -> { subscriber; via }) (resolve_in t ~ns sids)
  in
  Pf_obs.Counter.add t.m.deliveries (List.length deliveries);
  Log.debug (fun m ->
      m "published document: %d matching sids, %d deliveries" (List.length sids)
        (List.length deliveries));
  deliveries

(* ------------------------------------------------------------------ *)
(* Public operations *)

let subscribe_path_exn t ?(ns = default_ns) ~subscriber expr =
  with_lock t (fun () -> subscribe_in t ~ns ~subscriber expr)

let subscribe_exn t ?ns ~subscriber expr =
  subscribe_path_exn t ?ns ~subscriber (Parser.parse expr)

let subscribe_path t ?(ns = default_ns) ~subscriber expr =
  with_lock t (fun () ->
      match subscribe_in t ~ns ~subscriber expr with
      | sub -> Ok sub
      | exception Pf_intf.Unsupported msg -> Error (Pf_intf.Unsupported_expression msg))

let subscribe t ?ns ~subscriber expr =
  match Parser.parse expr with
  | exception Parser.Error msg -> Error (Pf_intf.Bad_expression msg)
  | path -> subscribe_path t ?ns ~subscriber path

let unsubscribe t sub = with_lock t (fun () -> unsubscribe_in t sub)

let unsubscribe_id t ?(ns = default_ns) id =
  with_lock t (fun () -> unsubscribe_id_in t ~ns id)

let drop_subscriber t ?(ns = default_ns) subscriber =
  with_lock t (fun () -> drop_subscriber_in t ~ns subscriber)

let find_subscription t ?(ns = default_ns) id =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.by_uid id with
      | Some sub when sub.ns = ns -> Some sub
      | Some _ | None -> None)

let publish t ?(ns = default_ns) doc =
  (* the match runs under the broker lock: the synchronous in-process
     path serializes publishes against mutations by construction (the
     wire server pipelines through Pf_service instead and only takes
     this lock to resolve sids) *)
  with_lock t (fun () -> publish_sids_in t ~ns (t.port.port_match doc))

let publish_string t ?(ns = default_ns) src =
  with_lock t (fun () -> publish_sids_in t ~ns (t.port.port_match_string src))

let deliveries_of_sids t ~ns sids =
  with_lock t (fun () ->
      List.map (fun (s, via) -> s, List.map (fun sub -> sub.uid) via) (resolve_in t ~ns sids))

let count_publish t ~deliveries =
  Pf_obs.Counter.incr t.m.documents;
  Pf_obs.Counter.add t.m.deliveries deliveries

(* ------------------------------------------------------------------ *)
(* Command/event state machine *)

type command =
  | Subscribe of { ns : string; subscriber : string; expr : string }
  | Unsubscribe of { ns : string; id : int }
  | Drop_subscriber of { ns : string; subscriber : string }
  | Publish of { ns : string; doc : string }

type event =
  | Subscribed of { id : int; suppressed : bool }
  | Unsubscribed of { id : int; existed : bool }
  | Dropped of { count : int }
  | Delivered of { deliveries : (string * int list) list }
  | Failed of { error : Pf_intf.error }

let is_mutation = function
  | Subscribe _ | Unsubscribe _ | Drop_subscriber _ -> true
  | Publish _ -> false

let apply t command =
  with_lock t (fun () ->
      match command with
      | Subscribe { ns; subscriber; expr } -> (
        match Parser.parse expr with
        | exception Parser.Error msg -> [ Failed { error = Pf_intf.Bad_expression msg } ]
        | path -> (
          match subscribe_in t ~ns ~subscriber path with
          | sub ->
            [ Subscribed { id = sub.uid; suppressed = is_suppressed t sub } ]
          | exception Pf_intf.Unsupported msg ->
            [ Failed { error = Pf_intf.Unsupported_expression msg } ]))
      | Unsubscribe { ns; id } -> (
        match unsubscribe_id_in t ~ns id with
        | Ok existed -> [ Unsubscribed { id; existed } ]
        | Error error -> [ Failed { error } ])
      | Drop_subscriber { ns; subscriber } ->
        [ Dropped { count = drop_subscriber_in t ~ns subscriber } ]
      | Publish { ns; doc } -> (
        match t.port.port_match_string doc with
        | exception Pf_xml.Sax.Parse_error (pos, msg) ->
          [ Failed
              {
                error =
                  Pf_intf.Bad_document
                    (Format.asprintf "%s (%a)" msg Pf_xml.Sax.pp_position pos);
              };
          ]
        | sids ->
          let deliveries = publish_sids_in t ~ns sids in
          [ Delivered
              {
                deliveries =
                  List.map
                    (fun d -> d.subscriber, List.map (fun s -> s.uid) d.via)
                    deliveries;
              };
          ]))

let pp_command fmt = function
  | Subscribe { ns; subscriber; expr } ->
    Format.fprintf fmt "subscribe[%s] %s: %s" ns subscriber expr
  | Unsubscribe { ns; id } -> Format.fprintf fmt "unsubscribe[%s] #%d" ns id
  | Drop_subscriber { ns; subscriber } -> Format.fprintf fmt "drop[%s] %s" ns subscriber
  | Publish { ns; doc } -> Format.fprintf fmt "publish[%s] (%d bytes)" ns (String.length doc)

let pp_event fmt = function
  | Subscribed { id; suppressed } ->
    Format.fprintf fmt "subscribed #%d%s" id (if suppressed then " (suppressed)" else "")
  | Unsubscribed { id; existed } ->
    Format.fprintf fmt "unsubscribed #%d%s" id (if existed then "" else " (already)")
  | Dropped { count } -> Format.fprintf fmt "dropped %d" count
  | Delivered { deliveries } -> Format.fprintf fmt "delivered to %d" (List.length deliveries)
  | Failed { error } -> Format.fprintf fmt "failed: %s" (Pf_intf.error_message error)

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type sub_record = {
  sr_id : int;
  sr_ns : string;
  sr_subscriber : string;
  sr_expr : string;
  sr_suppressed_by : int option;
}

type snapshot = {
  snap_next_id : int;
  snap_subs : sub_record list;
}

let snapshot t =
  with_lock t (fun () ->
      let subs =
        Hashtbl.fold
          (fun _ sub acc ->
            match sub.state with
            | Cancelled -> acc
            | Active _ ->
              {
                sr_id = sub.uid;
                sr_ns = sub.ns;
                sr_subscriber = sub.subscriber;
                sr_expr = Parser.to_string sub.expr;
                sr_suppressed_by = None;
              }
              :: acc
            | Suppressed cover ->
              {
                sr_id = sub.uid;
                sr_ns = sub.ns;
                sr_subscriber = sub.subscriber;
                sr_expr = Parser.to_string sub.expr;
                sr_suppressed_by = Some cover;
              }
              :: acc)
          t.by_uid []
        |> List.sort (fun a b -> compare a.sr_id b.sr_id)
      in
      { snap_next_id = t.next_uid; snap_subs = subs })

let load_snapshot t snap =
  with_lock t (fun () ->
      if t.next_uid <> 0 || Hashtbl.length t.by_uid <> 0 then
        invalid_arg "Broker.load_snapshot: broker is not fresh";
      List.iter
        (fun sr ->
          if sr.sr_id < 0 || sr.sr_id >= snap.snap_next_id then
            invalid_arg
              (Printf.sprintf "Broker.load_snapshot: subscription id %d out of range"
                 sr.sr_id);
          let expr =
            match Parser.parse sr.sr_expr with
            | exception Parser.Error msg ->
              invalid_arg
                (Printf.sprintf "Broker.load_snapshot: unparsable expression %S: %s"
                   sr.sr_expr msg)
            | p -> p
          in
          let sub =
            { uid = sr.sr_id; ns = sr.sr_ns; subscriber = sr.sr_subscriber; expr;
              state = Cancelled }
          in
          (match sr.sr_suppressed_by with
          | None -> (
            try activate t sub
            with Pf_intf.Unsupported msg ->
              invalid_arg
                (Printf.sprintf
                   "Broker.load_snapshot: engine rejected %S (%s) — snapshot taken \
                    with a wider engine?"
                   sr.sr_expr msg))
          | Some cover ->
            (match Hashtbl.find_opt t.by_uid cover with
            | Some c
              when c.ns = sr.sr_ns
                   && c.subscriber = sr.sr_subscriber
                   && (match c.state with Active _ -> true | _ -> false) ->
              ()
            | _ ->
              invalid_arg
                (Printf.sprintf
                   "Broker.load_snapshot: subscription %d suppressed by %d, which is \
                    not an earlier active subscription of the same subscriber"
                   sr.sr_id cover));
            sub.state <- Suppressed cover;
            t.suppressed_count <- t.suppressed_count + 1);
          enroll t sub)
        snap.snap_subs;
      t.next_uid <- snap.snap_next_id;
      set_gauges t;
      Log.debug (fun m ->
          m "loaded snapshot: %d subscriptions, next id %d" (List.length snap.snap_subs)
            snap.snap_next_id))

(* ------------------------------------------------------------------ *)
(* Statistics *)

type stats = {
  subscribers : int;
  subscriptions : int;
  suppressed : int;
  engine_expressions : int;
  distinct_predicates : int;
  documents_published : int;
  deliveries : int;
}

let stats t =
  with_lock t (fun () ->
      let subscribers = ref 0 in
      Hashtbl.iter
        (fun _ subs ->
          if
            List.exists
              (fun s ->
                match s.state with Cancelled -> false | Active _ | Suppressed _ -> true)
              !subs
          then incr subscribers)
        t.by_subscriber;
      let distinct_predicates =
        match t.port.port_engine_metrics () with
        | None -> 0
        | Some reg -> (
          match Pf_obs.Registry.find_gauge reg "distinct_predicates" with
          | Some v -> int_of_float v
          | None -> 0)
      in
      {
        subscribers = !subscribers;
        subscriptions = t.active_count + t.suppressed_count;
        suppressed = t.suppressed_count;
        engine_expressions = t.active_count;
        distinct_predicates;
        documents_published = Pf_obs.Counter.get t.m.documents;
        deliveries = Pf_obs.Counter.get t.m.deliveries;
      })

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>subscribers: %d@,subscriptions: %d (%d suppressed by covering)@,\
     engine expressions: %d@,distinct predicates: %d@,documents published: %d@,\
     deliveries: %d@]"
    s.subscribers s.subscriptions s.suppressed s.engine_expressions s.distinct_predicates
    s.documents_published s.deliveries
